// Package repro_test holds the benchmark harness that regenerates every
// table and figure of the paper (benchmarks E1-E7) plus the ablation
// studies for the design choices DESIGN.md calls out. Key reproduced
// quantities are attached to each benchmark as custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints the same rows the paper reports alongside host-side costs.
package repro_test

import (
	"context"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/agency"
	"repro/internal/apps/cg"
	"repro/internal/apps/ep"
	"repro/internal/apps/nbody"
	"repro/internal/apps/shallow"
	"repro/internal/apps/stencil"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/funding"
	"repro/internal/harness"
	"repro/internal/linpack"
	"repro/internal/machine"
	"repro/internal/mesh"
	"repro/internal/nren"
	"repro/internal/nx"
	"repro/internal/topo"
)

// BenchmarkE1FundingTable regenerates the FY92-93 funding table and reports
// the two totals the paper prints (in $M).
func BenchmarkE1FundingTable(b *testing.B) {
	var fy92, fy93 float64
	for i := 0; i < b.N; i++ {
		tbl := funding.Table()
		if tbl.Render() == "" {
			b.Fatal("empty table")
		}
		lines := funding.FY9293()
		fy92 = funding.Total(lines, 1992)
		fy93 = funding.Total(lines, 1993)
	}
	b.ReportMetric(fy92, "FY92-total-$M")
	b.ReportMetric(fy93, "FY93-total-$M")
}

// BenchmarkE2Responsibilities regenerates the agencies x components matrix
// and reports its dimensions.
func BenchmarkE2Responsibilities(b *testing.B) {
	var agencies, marks int
	for i := 0; i < b.N; i++ {
		all := agency.All()
		agencies = len(all)
		marks = 0
		for _, a := range all {
			for _, c := range agency.Components() {
				if a.HasRole(c) {
					marks++
				}
			}
		}
		if agency.Matrix().Render() == "" {
			b.Fatal("empty matrix")
		}
	}
	b.ReportMetric(float64(agencies), "agencies")
	b.ReportMetric(float64(marks), "matrix-entries")
}

// BenchmarkE3DeltaPeak reports the Delta's aggregate peak: the paper's
// "32 GFLOPS using the 528 numeric processors".
func BenchmarkE3DeltaPeak(b *testing.B) {
	var peak float64
	var nodes int
	for i := 0; i < b.N; i++ {
		d := machine.Delta()
		peak = d.PeakGFlops()
		nodes = d.Nodes()
	}
	b.ReportMetric(peak, "peak-GFLOPS")
	b.ReportMetric(float64(nodes), "nodes")
}

// BenchmarkE4LinpackDelta runs the paper's headline experiment: LINPACK of
// order 25,000 on the 528-node Delta model (paper: 13 GFLOPS). One
// iteration simulates the full factorization (~3s host time).
func BenchmarkE4LinpackDelta(b *testing.B) {
	cfg := linpack.Config{
		N: 25000, NB: 16, GridRows: 16, GridCols: 33,
		Model: machine.Delta(), Phantom: true, Seed: 1992,
	}
	var gflops, eff, vtime float64
	for i := 0; i < b.N; i++ {
		out, err := linpack.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		gflops, eff, vtime = out.GFlops, out.Efficiency, out.FactTime
	}
	b.ReportMetric(gflops, "GFLOPS")
	b.ReportMetric(eff*100, "efficiency-%")
	b.ReportMetric(vtime, "simulated-s")
	b.ReportMetric(linpack.PredictGFlops(cfg), "model-GFLOPS")
}

// BenchmarkE4LinpackDeltaSharded is BenchmarkE4LinpackDelta with the
// simulation's collective engine split across four shards
// (nx.Config.Shards): same bit-identical virtual times, but the
// deferred-settlement work spreads over host cores. The ratio against the
// unsharded run is the sharding speedup on this host (1.0 on one core).
func BenchmarkE4LinpackDeltaSharded(b *testing.B) {
	cfg := linpack.Config{
		N: 25000, NB: 16, GridRows: 16, GridCols: 33,
		Model: machine.Delta(), Phantom: true, Seed: 1992,
		Shards: 4,
	}
	var gflops, vtime float64
	for i := 0; i < b.N; i++ {
		out, err := linpack.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		gflops, vtime = out.GFlops, out.FactTime
	}
	b.ReportMetric(gflops, "GFLOPS")
	b.ReportMetric(vtime, "simulated-s")
}

// BenchmarkE4LinpackDeltaTreeCollectives is BenchmarkE4LinpackDelta on
// the legacy tree-message collective path: the ratio against the fused
// default is the fused engine's speedup, tracked in BENCH_report.json.
func BenchmarkE4LinpackDeltaTreeCollectives(b *testing.B) {
	prev := nx.DefaultCollectives()
	nx.SetDefaultCollectives(nx.CollectivesTree)
	defer nx.SetDefaultCollectives(prev)
	cfg := linpack.Config{
		N: 25000, NB: 16, GridRows: 16, GridCols: 33,
		Model: machine.Delta(), Phantom: true, Seed: 1992,
	}
	var vtime float64
	for i := 0; i < b.N; i++ {
		out, err := linpack.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		vtime = out.FactTime
	}
	b.ReportMetric(vtime, "simulated-s")
}

// BenchmarkE5ConsortiumNetwork reproduces the network figure: a 10 MB
// transfer over each of the six link classes; reports the extreme times.
func BenchmarkE5ConsortiumNetwork(b *testing.B) {
	var hippiTime, k56Time float64
	for i := 0; i < b.N; i++ {
		for _, c := range topo.Classes() {
			g := topo.NewGraph()
			g.AddLink("a", "b", c.BytesPerSec(), 1e-3, c.Name)
			s := nren.New(g)
			f, err := s.Transfer("a", "b", 10e6, 0)
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Run(); err != nil {
				b.Fatal(err)
			}
			switch c.Name {
			case topo.CASAHippi.Name:
				hippiTime = f.Duration()
			case topo.Regional56.Name:
				k56Time = f.Duration()
			}
		}
	}
	b.ReportMetric(hippiTime, "HIPPI-10MB-s")
	b.ReportMetric(k56Time, "56kbps-10MB-s")
	b.ReportMetric(k56Time/hippiTime, "slowdown-x")
}

// BenchmarkE6AeroStencilScaling measures the CFD kernel's strong scaling to
// all 528 Delta nodes and reports the full-machine speedup.
func BenchmarkE6AeroStencilScaling(b *testing.B) {
	var speedup, eff float64
	for i := 0; i < b.N; i++ {
		pts, err := stencil.StrongScaling(machine.Delta(), 1056, 1056, 10,
			[]int{1, 528})
		if err != nil {
			b.Fatal(err)
		}
		last := pts[len(pts)-1]
		speedup, eff = last.Speedup, last.Efficiency
	}
	b.ReportMetric(speedup, "speedup-528")
	b.ReportMetric(eff*100, "efficiency-%")
}

// BenchmarkE7ShallowScaling measures the shallow-water model's strong
// scaling on the Delta model.
func BenchmarkE7ShallowScaling(b *testing.B) {
	params := shallow.DefaultParams()
	run := func(procs int) float64 {
		out, err := shallow.RunDistributed(shallow.Config{
			NX: 1056, NY: 1056, Steps: 10, Procs: procs,
			Params: params, Model: machine.Delta(), Phantom: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		return out.Time
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		t1 := run(1)
		t528 := run(528)
		speedup = t1 / t528
	}
	b.ReportMetric(speedup, "speedup-528")
}

// BenchmarkGrandChallengeKernels runs each Grand-Challenge kernel on 64
// Delta nodes (phantom mode) and reports its simulated time — the
// application-suite view of the machine the testbed program funded.
func BenchmarkGrandChallengeKernels(b *testing.B) {
	delta := machine.Delta()
	kernels := []struct {
		name string
		run  func() (float64, error)
	}{
		{"cfd-stencil", func() (float64, error) {
			o, err := stencil.RunDistributed2D(stencil.Config2D{
				NX: 512, NY: 512, Iters: 20, PR: 8, PC: 8, Model: delta, Phantom: true})
			if err != nil {
				return 0, err
			}
			return o.Time, nil
		}},
		{"shallow-water", func() (float64, error) {
			o, err := shallow.RunDistributed(shallow.Config{
				NX: 512, NY: 512, Steps: 20, Procs: 64,
				Params: shallow.DefaultParams(), Model: delta, Phantom: true})
			if err != nil {
				return 0, err
			}
			return o.Time, nil
		}},
		{"nbody-ring", func() (float64, error) {
			o, err := nbody.RingForces(nbody.Config{
				N: 4096, Procs: 64, Model: delta, Phantom: true})
			if err != nil {
				return 0, err
			}
			return o.Time, nil
		}},
		{"nas-ep", func() (float64, error) {
			o, err := ep.Distributed(ep.Config{
				N: 50_000_000, Procs: 64, Model: delta, Phantom: true})
			if err != nil {
				return 0, err
			}
			return o.Time, nil
		}},
		{"poisson-cg", func() (float64, error) {
			o, err := cg.SolveDistributed(cg.Config{
				N: 512, MaxIters: 50, Procs: 64, Model: delta, Phantom: true})
			if err != nil {
				return 0, err
			}
			return o.Time, nil
		}},
	}
	for _, k := range kernels {
		k := k
		b.Run(k.name, func(b *testing.B) {
			var vtime float64
			for i := 0; i < b.N; i++ {
				t, err := k.run()
				if err != nil {
					b.Fatal(err)
				}
				vtime = t
			}
			b.ReportMetric(vtime, "simulated-s")
		})
	}
}

// BenchmarkAblationBlockSize sweeps the LU block size at N=8192 on the
// Delta model: the panel/update balance the block size controls.
func BenchmarkAblationBlockSize(b *testing.B) {
	for _, nb := range []int{4, 8, 16, 32, 64} {
		nb := nb
		b.Run(benchName("nb", nb), func(b *testing.B) {
			cfg := linpack.Config{
				N: 8192, NB: nb, GridRows: 16, GridCols: 33,
				Model: machine.Delta(), Phantom: true, Seed: 1,
			}
			var gflops float64
			for i := 0; i < b.N; i++ {
				out, err := linpack.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				gflops = out.GFlops
			}
			b.ReportMetric(gflops, "GFLOPS")
		})
	}
}

// BenchmarkAblationGridShape sweeps the process-grid aspect ratio at fixed
// P=528: row-heavy grids pay in the panel, column-heavy in the broadcasts.
func BenchmarkAblationGridShape(b *testing.B) {
	for _, g := range [][2]int{{4, 132}, {8, 66}, {16, 33}, {22, 24}} {
		g := g
		b.Run(benchName("grid", g[0]), func(b *testing.B) {
			cfg := linpack.Config{
				N: 8192, NB: 16, GridRows: g[0], GridCols: g[1],
				Model: machine.Delta(), Phantom: true, Seed: 1,
			}
			var gflops float64
			for i := 0; i < b.N; i++ {
				out, err := linpack.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				gflops = out.GFlops
			}
			b.ReportMetric(gflops, "GFLOPS")
		})
	}
}

// BenchmarkAblationBroadcast compares the binomial-tree broadcast against
// the naive linear baseline on a 64-node group (100 KB payload).
func BenchmarkAblationBroadcast(b *testing.B) {
	model := machine.SubMesh(machine.Delta(), 8, 8)
	for _, algo := range []string{"tree", "flat"} {
		algo := algo
		b.Run(algo, func(b *testing.B) {
			var vtime float64
			for i := 0; i < b.N; i++ {
				res, err := nx.Run(nx.Config{Model: model}, func(p *nx.Proc) {
					g := p.World()
					if algo == "tree" {
						g.BcastPhantom(0, 100_000)
					} else {
						g.BcastFlatPhantom(0, 100_000)
					}
				})
				if err != nil {
					b.Fatal(err)
				}
				vtime = res.Makespan
			}
			b.ReportMetric(vtime*1e3, "simulated-ms")
		})
	}
}

// BenchmarkAblationAllreduce compares the tree (reduce+broadcast) and ring
// allreduce algorithms across payload sizes on 64 nodes: the tree wins the
// latency regime, the ring the bandwidth regime.
func BenchmarkAblationAllreduce(b *testing.B) {
	model := machine.SubMesh(machine.Delta(), 8, 8)
	for _, bytes := range []int{8, 100_000, 1 << 20} {
		for _, algo := range []string{"tree", "ring"} {
			bytes, algo := bytes, algo
			b.Run(algo+"-"+itoa(bytes)+"B", func(b *testing.B) {
				var vtime float64
				for i := 0; i < b.N; i++ {
					res, err := nx.Run(nx.Config{Model: model}, func(p *nx.Proc) {
						g := p.World()
						if algo == "tree" {
							g.ReducePhantom(0, bytes)
							g.BcastPhantom(0, bytes)
						} else {
							g.RingAllreducePhantom(bytes)
						}
					})
					if err != nil {
						b.Fatal(err)
					}
					vtime = res.Makespan
				}
				b.ReportMetric(vtime*1e3, "simulated-ms")
			})
		}
	}
}

// BenchmarkAblationMachineGeneration runs the same LINPACK problem on each
// generation of the DARPA series (iPSC/860 -> Delta -> Paragon), the
// paper's "one of a series" framing quantified.
func BenchmarkAblationMachineGeneration(b *testing.B) {
	pts, err := linpack.GenerationSweep(8192, 16, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, pt := range pts {
		pt := pt
		b.Run(sanitize(pt.Config.Model.Name), func(b *testing.B) {
			var gflops float64
			for i := 0; i < b.N; i++ {
				out, err := linpack.Run(pt.Config)
				if err != nil {
					b.Fatal(err)
				}
				gflops = out.GFlops
			}
			b.ReportMetric(gflops, "GFLOPS")
		})
	}
}

// BenchmarkAblationRouting compares XY against YX dimension-order routing
// under transpose traffic on the Delta's asymmetric 16x33 mesh.
func BenchmarkAblationRouting(b *testing.B) {
	for _, order := range []string{"XY", "YX"} {
		order := order
		b.Run(order, func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				net := mesh.New(16, 33, 12e6, 1e-6)
				if order == "YX" {
					net.UseYXRouting()
				}
				rng := newRand(1992)
				for src := 0; src < net.Nodes(); src++ {
					for k := 0; k < 10; k++ {
						dst := mesh.Transpose(rng, net, src)
						net.Inject(src, dst, 1024, float64(k)*1e-4)
					}
				}
				net.Run()
				lat = net.Stats().AvgLatency
			}
			b.ReportMetric(lat*1e6, "avg-latency-us")
		})
	}
}

// BenchmarkAblationMeshTraffic compares traffic patterns on the Delta's
// 16x33 mesh at 40% offered load.
func BenchmarkAblationMeshTraffic(b *testing.B) {
	patterns := []struct {
		name string
		p    mesh.Pattern
	}{
		{"uniform", mesh.Uniform},
		{"transpose", mesh.Transpose},
		{"hotspot", mesh.Hotspot},
		{"neighbor", mesh.NearestNeighbor},
	}
	for _, pat := range patterns {
		pat := pat
		b.Run(pat.name, func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				r := mesh.OfferLoad(16, 33, 12e6, 1e-6, pat.p, 20, 1024, 0.4*12e6, 1992)
				lat = r.AvgLatency
			}
			b.ReportMetric(lat*1e6, "avg-latency-us")
		})
	}
}

// BenchmarkAblationDecomposition compares 1D strip against 2D block
// decomposition of the CFD kernel at 64 and 528 processes: the
// surface-to-volume effect that decided data layouts on the Delta.
func BenchmarkAblationDecomposition(b *testing.B) {
	delta := machine.Delta()
	cases := []struct {
		name string
		run  func() (float64, error)
	}{
		{"1D-64", func() (float64, error) {
			o, err := stencil.RunDistributed(stencil.Config{
				NX: 1056, NY: 1056, Iters: 10, Procs: 64, Model: delta, Phantom: true})
			if err != nil {
				return 0, err
			}
			return o.Time, nil
		}},
		{"2D-64", func() (float64, error) {
			o, err := stencil.RunDistributed2D(stencil.Config2D{
				NX: 1056, NY: 1056, Iters: 10, PR: 8, PC: 8, Model: delta, Phantom: true})
			if err != nil {
				return 0, err
			}
			return o.Time, nil
		}},
		{"1D-528", func() (float64, error) {
			o, err := stencil.RunDistributed(stencil.Config{
				NX: 1056, NY: 1056, Iters: 10, Procs: 528, Model: delta, Phantom: true})
			if err != nil {
				return 0, err
			}
			return o.Time, nil
		}},
		{"2D-528", func() (float64, error) {
			o, err := stencil.RunDistributed2D(stencil.Config2D{
				NX: 1056, NY: 1056, Iters: 10, PR: 16, PC: 33, Model: delta, Phantom: true})
			if err != nil {
				return 0, err
			}
			return o.Time, nil
		}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var vtime float64
			for i := 0; i < b.N; i++ {
				t, err := c.run()
				if err != nil {
					b.Fatal(err)
				}
				vtime = t
			}
			b.ReportMetric(vtime*1e3, "simulated-ms")
		})
	}
}

// BenchmarkAblationLinkUpgrade quantifies the NREN upgrade path: the same
// 10 MB transfer across successive 1992 link generations.
func BenchmarkAblationLinkUpgrade(b *testing.B) {
	for _, c := range topo.Classes() {
		c := c
		b.Run(sanitize(c.Name), func(b *testing.B) {
			var dur float64
			for i := 0; i < b.N; i++ {
				g := topo.NewGraph()
				g.AddLink("a", "b", c.BytesPerSec(), 1e-3, c.Name)
				s := nren.New(g)
				f, err := s.Transfer("a", "b", 10e6, 0)
				if err != nil {
					b.Fatal(err)
				}
				if err := s.Run(); err != nil {
					b.Fatal(err)
				}
				dur = f.Duration()
			}
			b.ReportMetric(dur, "transfer-s")
		})
	}
}

// BenchmarkReportParallel regenerates the full report (quick mode, all
// seven exhibits) through the harness sweep engine at one worker and at
// one worker per host core. The output is byte-identical either way; the
// wall-clock gap is the sweep engine's speedup over the sequential path.
func BenchmarkReportParallel(b *testing.B) {
	ctx := context.Background()
	counts := []int{1, 2, runtime.NumCPU()}
	seen := map[int]bool{}
	var sweep []int
	for _, w := range counts {
		if !seen[w] {
			seen[w] = true
			sweep = append(sweep, w)
		}
	}
	for _, workers := range sweep {
		workers := workers
		b.Run(benchName("j", workers), func(b *testing.B) {
			p := core.NewProgram()
			p.Quick = true
			for i := 0; i < b.N; i++ {
				if err := p.WriteReportJobs(ctx, io.Discard, workers); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(workers), "workers")
		})
	}
}

// BenchmarkReportCached regenerates the full quick report through a warm
// result cache: every exhibit is served from disk through the same
// in-order emit path, so the bytes match BenchmarkReportParallel's while
// the cost drops from simulation time to a handful of file reads. The
// cold/warm gap against BenchmarkReportParallel is the result cache's
// speedup (BENCH_report.json tracks it across PRs).
func BenchmarkReportCached(b *testing.B) {
	ctx := context.Background()
	c, err := cache.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	ex := &harness.CachingExecutor{
		Inner: harness.LocalExecutor{Workers: runtime.NumCPU()},
		Cache: c,
	}
	p := core.NewProgram()
	p.Quick = true
	warm := func() {
		results, err := p.ReportResultsExec(ctx, ex, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := core.WriteResults(io.Discard, results); err != nil {
			b.Fatal(err)
		}
	}
	warm() // populate: everything after this is cache hits
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		warm()
	}
	b.ReportMetric(float64(ex.Hits), "hits")
	b.ReportMetric(float64(ex.Misses), "misses")
}

func benchName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r == ' ' || r == '/':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}
