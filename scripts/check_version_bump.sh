#!/usr/bin/env bash
# check_version_bump.sh — CI half of the version-bump discipline.
#
# docs/WORKLOADS.md: when a code change alters what a versioned kernel
# returns, the kernel version must be bumped — the version participates
# in the result-cache key and the remote-fleet handshake. The hpccvet
# hpccversion analyzer proves every version is a compile-time constant
# on a diffable source line; this script does the diffing: for each
# package that declares a version constant, if its non-test Go code
# changed relative to the merge base, some version line must have
# changed too.
#
# Usage: scripts/check_version_bump.sh [base-ref]   (default origin/main)
# Run from the repo root with full history (fetch-depth: 0 in CI).
set -euo pipefail

base_ref="${1:-origin/main}"
if ! mb=$(git merge-base HEAD "$base_ref" 2>/dev/null); then
    echo "check_version_bump: cannot resolve merge base with $base_ref; skipping" >&2
    exit 0
fi
if [ "$mb" = "$(git rev-parse HEAD)" ]; then
    exit 0 # nothing to diff
fi

# A package is versioned when it declares a version as a string constant
# (the shape hpccvet enforces): `const kernelVersion = "lu-1"`,
# `Version: "v2"`. Fixtures and tests don't count.
versioned_dirs=$(grep -rlE --include='*.go' \
        'const[[:space:]]+[A-Za-z_]*[Vv]ersion[A-Za-z_]* = "|Version:[[:space:]]*"' \
        cmd internal 2>/dev/null |
    grep -v '_test\.go$' | grep -v '/testdata/' |
    xargs -r -n1 dirname | sort -u)

fail=0
for dir in $versioned_dirs; do
    changed=$(git diff --name-only "$mb" HEAD -- "$dir" |
        grep -E '\.go$' | grep -v '_test\.go$' || true)
    # Only same-directory files: diff paths recurse into subpackages,
    # which version independently.
    changed=$(echo "$changed" | awk -v d="$dir" 'index($0, d"/") == 1 && $0 !~ ("^" d "/.*/")' || true)
    [ -n "$changed" ] || continue

    # Comment-only and blank-line churn does not alter kernel output and
    # needs no bump.
    substantive=$(git diff -U0 "$mb" HEAD -- $changed |
        grep -E '^[-+][^-+]' |
        grep -vE '^[-+][[:space:]]*(//|$)' || true)
    [ -n "$substantive" ] || continue

    bumped=$(git diff -U0 "$mb" HEAD -- "$dir" |
        grep -E '^[-+].*([Vv]ersion[A-Za-z_]* = "|Version:[[:space:]]*")' || true)
    if [ -z "$bumped" ]; then
        echo "version bump missing: $dir changed since $(git rev-parse --short "$mb") but no version constant did" >&2
        echo "  changed files:" >&2
        echo "$changed" | sed 's/^/    /' >&2
        echo "  bump the version constant (docs/WORKLOADS.md, 'Versioning'), or split the refactor from behavior changes" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "check_version_bump: ok"
