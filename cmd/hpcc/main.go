// Command hpcc is the single front door to the HPCC reproduction: it
// lists, runs and sweeps every registered workload — the paper exhibits
// E1-E7, the Grand Challenge kernels, the LINPACK and NREN experiments —
// and carries the legacy single-purpose tools as subcommands.
//
// Usage:
//
//	hpcc report [-quick] [-j N] [-e E4] [-json]
//	hpcc list [-json]
//	hpcc run <workload-id> [-quick] [-seed S] [-p name=value] [-json]
//	hpcc sweep [-ids a,b,c] [-j N] [-json]
//	hpcc sweep -param nb -values 4,8,16 linpack/delta
//	hpcc linpack | nren | delta | funding   # the old binaries
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Main(os.Args[1:], os.Stdout, os.Stderr))
}
