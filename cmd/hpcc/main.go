// Command hpcc is the single front door to the HPCC reproduction: it
// lists, runs and sweeps every registered workload — the paper exhibits
// E1-E7, the Grand Challenge kernels, the LINPACK and NREN experiments —
// persists results to a run store, diffs snapshots across commits, and
// carries the legacy single-purpose tools as subcommands.
//
// Usage:
//
//	hpcc report [-quick] [-j N] [-shards N] [-e E4] [-json] [-store DIR]
//	hpcc list [-json]
//	hpcc run <workload-id> [-quick] [-seed S] [-p name=value] [-json] [-store DIR]
//	hpcc sweep [-ids a,b,c] [-j N] [-shards N] [-json] [-store DIR]
//	hpcc sweep -param nb -values 4,8,16 linpack/delta
//	hpcc worker   # shard child: JSONL jobs on stdin, results on stdout
//	hpcc worker -listen 127.0.0.1:7841   # remote fleet worker over TCP
//	hpcc sweep -remote host1:7841,host2:7841   # sweep across a fleet
//	hpcc serve -addr 127.0.0.1:8080 -cache .hpcc-cache -store .hpcc-store
//	hpcc diff [-store DIR] [-threshold 0.05] [-json] [old-ref [new-ref]]
//	hpcc linpack | nren | delta | funding   # the old binaries
//
// The longitudinal loop the paper itself ran — measure, record, compare
// against last time — is two commands:
//
//	hpcc run app/nas-ep -store .hpcc-store
//	hpcc diff latest~1 latest   # exit 1 if a metric regressed past 5%
package main

import (
	"context"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cli"
)

func main() {
	// Interrupts cancel the context instead of killing the process, so
	// the long-lived modes (serve, worker -listen) drain gracefully and
	// sweeps stop their workers; a second interrupt kills hard as usual.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(cli.MainContext(ctx, os.Args[1:], os.Stdout, os.Stderr))
}
