// Command hpcc is the single front door to the HPCC reproduction: it
// lists, runs and sweeps every registered workload — the paper exhibits
// E1-E7, the Grand Challenge kernels, the LINPACK and NREN experiments —
// persists results to a run store, diffs snapshots across commits, and
// carries the legacy single-purpose tools as subcommands.
//
// Usage:
//
//	hpcc report [-quick] [-j N] [-shards N] [-e E4] [-json] [-store DIR]
//	hpcc list [-json]
//	hpcc run <workload-id> [-quick] [-seed S] [-p name=value] [-json] [-store DIR]
//	hpcc sweep [-ids a,b,c] [-j N] [-shards N] [-json] [-store DIR]
//	hpcc sweep -param nb -values 4,8,16 linpack/delta
//	hpcc sweep -journal .hpcc-journal ...   # crash-safe: checkpoint each job
//	hpcc resume -journal .hpcc-journal      # finish an interrupted sweep
//	hpcc worker   # shard child: JSONL jobs on stdin, results on stdout
//	hpcc worker -listen 127.0.0.1:7841   # remote fleet worker over TCP
//	hpcc sweep -remote host1:7841,host2:7841   # sweep across a fleet
//	hpcc serve -addr 127.0.0.1:8080 -cache .hpcc-cache -store .hpcc-store
//	hpcc diff [-store DIR] [-threshold 0.05] [-json] [old-ref [new-ref]]
//	hpcc linpack | nren | delta | funding   # the old binaries
//
// The longitudinal loop the paper itself ran — measure, record, compare
// against last time — is two commands:
//
//	hpcc run app/nas-ep -store .hpcc-store
//	hpcc diff latest~1 latest   # exit 1 if a metric regressed past 5%
package main

import (
	"context"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"

	"repro/internal/cli"
)

// exitCode maps a termination signal to the conventional 128+N shell
// exit code (130 for SIGINT, 143 for SIGTERM).
func exitCode(sig os.Signal) int {
	if s, ok := sig.(syscall.Signal); ok {
		return 128 + int(s)
	}
	return 130
}

func main() {
	// A first interrupt cancels the context instead of killing the
	// process, so the long-lived modes (serve, worker -listen) drain
	// gracefully and sweeps stop dispatch, finish in-flight jobs within
	// their -drain grace, and flush journal/store; the process then
	// exits with the conventional 128+signal code so callers (and the CI
	// drain gates) can tell an interrupted run from a completed or
	// failed one. A second interrupt kills hard immediately.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	var sigCode atomic.Int64
	go func() {
		sig := <-sigs
		sigCode.Store(int64(exitCode(sig)))
		cancel()
		sig = <-sigs
		os.Exit(exitCode(sig))
	}()
	code := cli.MainContext(ctx, os.Args[1:], os.Stdout, os.Stderr)
	// A signal-interrupted invocation reports the signal even when the
	// drained command itself wound down cleanly: "finished because asked
	// to stop" must stay distinguishable from "finished".
	if n := sigCode.Load(); n != 0 {
		code = int(n)
	}
	os.Exit(code)
}
