// Command nrensim exercises the consortium wide-area network model: the
// link-class table of the paper's figure, site-to-site transfer times, and
// link utilization under a concurrent-transfer storm.
//
// Usage:
//
//	nrensim                 # link classes + transfer matrix
//	nrensim -bytes 1e8      # larger reference transfer
//	nrensim -storm          # all-pairs concurrent transfers with fair sharing
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/nren"
	"repro/internal/report"
	"repro/internal/topo"
)

func main() {
	bytes := flag.Float64("bytes", 10e6, "reference transfer size in bytes")
	storm := flag.Bool("storm", false, "run all-pairs concurrent transfers")
	flag.Parse()

	tbl, err := nren.LinkClassTable(*bytes)
	fail(err)
	fmt.Print(tbl.Render())
	fmt.Println()

	g := topo.Consortium()
	sites := []string{
		topo.SiteCaltech, topo.SiteJPL, topo.SiteSDSC, topo.SiteLANL,
		topo.SiteRice, topo.SiteDARPA, topo.SiteRegional,
	}
	m, err := nren.TransferMatrix(g, sites, *bytes)
	fail(err)
	fmt.Print(nren.MatrixTable(
		fmt.Sprintf("%.0f MB transfer times between consortium sites (seconds)", *bytes/1e6),
		sites, m).Render())

	if !*storm {
		return
	}
	fmt.Println()
	s := nren.New(g)
	all := topo.ConsortiumSites()
	for i, a := range all {
		for j, b := range all {
			if i == j {
				continue
			}
			_, err := s.Transfer(a, b, *bytes, 0)
			fail(err)
		}
	}
	fail(s.Run())
	fmt.Printf("storm of %d concurrent transfers drained in %.1f s\n\n", len(all)*(len(all)-1), s.Now())

	util := s.Utilization()
	keys := make([]string, 0, len(util))
	for k := range util {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return util[keys[i]] > util[keys[j]] })
	t := report.NewTable("Busiest links during the storm", "Link", "Utilization %")
	for i, k := range keys {
		if i == 8 {
			break
		}
		t.AddRow(k, report.Cellf("%.1f", util[k]*100))
	}
	fmt.Print(t.Render())
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
