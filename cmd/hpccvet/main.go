// Command hpccvet runs the repo's static-analysis suite
// (internal/analysis): hpccdet, hpcclock, hpccversion, hpccwire.
//
// It speaks two protocols:
//
//	hpccvet [-a names] [patterns]       standalone, e.g. hpccvet ./...
//	go vet -vettool=$PWD/hpccvet ./...  cmd/go's vet-tool protocol
//
// The vet-tool protocol (the same one golang.org/x/tools' unitchecker
// implements) is: cmd/go invokes the tool once with -V=full to fold the
// tool's identity into its build cache key, once with -flags to learn
// the tool's flags, and then once per package with a JSON config file
// argument ending in .cfg that carries the file list, the import map
// and the export-data locations. The tool must write the (possibly
// empty) facts file named by VetxOutput, print findings to stderr, and
// exit 2 when it found anything. cmd/go runs the tool for every package
// in the build graph including the standard library, so anything
// outside this module is skipped by ModulePath.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// cmd/go's handshake calls come before normal flag parsing.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			printVersion()
			return 0
		case "-flags", "--flags":
			fmt.Println("[]")
			return 0
		}
	}
	fs := flag.NewFlagSet("hpccvet", flag.ExitOnError)
	names := fs.String("a", "", "comma-separated analyzers to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: hpccvet [-a analyzers] [patterns]\n")
		fmt.Fprintf(fs.Output(), "       go vet -vettool=$(pwd)/hpccvet ./...\n\nanalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetTool(rest[0], analyzers)
	}
	return runStandalone(rest, analyzers)
}

// printVersion answers -V=full: a line whose content changes whenever
// the tool binary does, so cmd/go's cache never serves findings from a
// stale analyzer.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("hpccvet version devel buildID=%x\n", h.Sum(nil)[:12])
}

// runStandalone loads patterns through go list and analyzes them.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer) int {
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// vetConfig is the slice of cmd/go's vet config file the tool reads.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ModulePath                string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetTool analyzes one package under the vet-tool protocol.
func runVetTool(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpccvet: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hpccvet: parse %s: %v\n", cfgFile, err)
		return 2
	}
	// cmd/go always expects the facts file, even from packages the tool
	// has nothing to say about.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "hpccvet: %v\n", err)
			return 2
		}
	}
	// The suite's contracts bind this module only; the build graph also
	// contains std and any vendored modules.
	if cfg.ModulePath != "repro" || cfg.VetxOnly {
		return 0
	}
	diags, err := analyzeVetPackage(&cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "hpccvet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d.String())
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func analyzeVetPackage(cfg *vetConfig, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	fset := token.NewFileSet()
	imp := analysis.ExportImporter(fset, func(path string) (string, bool) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	var files []string
	for _, f := range cfg.GoFiles {
		if filepath.IsAbs(f) {
			files = append(files, f)
		} else {
			files = append(files, filepath.Join(cfg.Dir, f))
		}
	}
	// Test variants list as "pkg [pkg.test]"; the analyzers' scope lists
	// match on the plain import path.
	importPath := cfg.ImportPath
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
	}
	pkg, err := analysis.TypeCheck(fset, importPath, cfg.Dir, files, imp, goVersionFor(cfg.GoVersion))
	if err != nil {
		return nil, err
	}
	return analysis.RunAnalyzers([]*analysis.Package{pkg}, analyzers)
}

// goVersionFor maps cmd/go's GoVersion value to what go/types accepts:
// a "goX.Y"-prefixed language version, or empty for the toolchain
// default.
func goVersionFor(v string) string {
	if strings.HasPrefix(v, "go1") {
		return v
	}
	return ""
}
