// Command linpack runs the distributed LINPACK benchmark on a simulated
// machine and prints the standard report row, or sweeps a parameter.
//
// Usage:
//
//	linpack                          # the paper's Delta configuration
//	linpack -n 8192 -nb 32 -pr 8 -pc 16
//	linpack -sweep n                 # GFLOPS vs matrix order
//	linpack -sweep nb                # GFLOPS vs block size
//	linpack -sweep grid              # GFLOPS vs grid shape
//	linpack -sweep machines          # iPSC/860 vs Delta vs Paragon
//	linpack -real -n 512             # real numerics with residual check
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/linpack"
	"repro/internal/machine"
)

func main() {
	n := flag.Int("n", 25000, "matrix order")
	nb := flag.Int("nb", 16, "block size")
	pr := flag.Int("pr", 16, "process grid rows")
	pc := flag.Int("pc", 33, "process grid columns")
	sweep := flag.String("sweep", "", "sweep a parameter: n, nb or grid")
	real := flag.Bool("real", false, "real numerics (small N) with residual check")
	flag.Parse()

	model := machine.Delta()
	base := linpack.Config{
		N: *n, NB: *nb, GridRows: *pr, GridCols: *pc,
		Model: model, Phantom: !*real, Seed: 1992,
	}

	switch *sweep {
	case "":
		out, err := linpack.Run(base)
		fail(err)
		fmt.Print(linpack.Table("LINPACK", []linpack.Point{{Config: base, Outcome: out}}).Render())
		if *real {
			fmt.Printf("normalized residual: %.3f\n", out.Residual)
		}
	case "n":
		var cfgs []linpack.Config
		for _, nn := range []int{2000, 5000, 10000, 15000, 20000, 25000} {
			c := base
			c.N = nn
			cfgs = append(cfgs, c)
		}
		pts, err := linpack.Sweep(cfgs)
		fail(err)
		fmt.Print(linpack.Table("LINPACK GFLOPS vs matrix order (Delta model)", pts).Render())
	case "nb":
		var cfgs []linpack.Config
		for _, b := range []int{4, 8, 16, 32, 64} {
			c := base
			c.NB = b
			cfgs = append(cfgs, c)
		}
		pts, err := linpack.Sweep(cfgs)
		fail(err)
		fmt.Print(linpack.Table("LINPACK GFLOPS vs block size (Delta model)", pts).Render())
	case "grid":
		var cfgs []linpack.Config
		for _, g := range [][2]int{{1, 528}, {2, 264}, {4, 132}, {8, 66}, {16, 33}, {22, 24}} {
			c := base
			c.GridRows, c.GridCols = g[0], g[1]
			cfgs = append(cfgs, c)
		}
		pts, err := linpack.Sweep(cfgs)
		fail(err)
		fmt.Print(linpack.Table("LINPACK GFLOPS vs process grid shape (Delta model)", pts).Render())
	case "machines":
		pts, err := linpack.GenerationSweep(8192, *nb, 1992)
		fail(err)
		fmt.Print(linpack.Table("LINPACK N=8192 across the DARPA machine series", pts).Render())
	default:
		fmt.Fprintf(os.Stderr, "unknown sweep %q (want n, nb or grid)\n", *sweep)
		os.Exit(2)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
