// Command deltasim characterizes the Delta's 2D mesh interconnect:
// latency/throughput versus offered load for the classical traffic
// patterns, plus the bisection bandwidth of the paper's 16x33 mesh.
//
// Usage:
//
//	deltasim                      # uniform traffic sweep on the 16x33 mesh
//	deltasim -pattern transpose
//	deltasim -rows 8 -cols 8 -bytes 4096
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/mesh"
	"repro/internal/report"
)

func main() {
	rows := flag.Int("rows", 16, "mesh rows")
	cols := flag.Int("cols", 33, "mesh columns")
	pattern := flag.String("pattern", "uniform", "traffic pattern: uniform, transpose, hotspot, neighbor")
	bytes := flag.Int("bytes", 1024, "packet size")
	packets := flag.Int("packets", 50, "packets per node")
	flag.Parse()

	var pat mesh.Pattern
	switch *pattern {
	case "uniform":
		pat = mesh.Uniform
	case "transpose":
		pat = mesh.Transpose
	case "hotspot":
		pat = mesh.Hotspot
	case "neighbor":
		pat = mesh.NearestNeighbor
	default:
		fmt.Fprintf(os.Stderr, "unknown pattern %q\n", *pattern)
		os.Exit(2)
	}

	const linkBps = 10e6 // Delta sustained channel rate
	const routerDelay = 1e-6

	net := mesh.New(*rows, *cols, linkBps, routerDelay)
	fmt.Printf("mesh %dx%d, %d nodes, bisection bandwidth %.1f MB/s\n\n",
		*rows, *cols, net.Nodes(), net.BisectionBandwidthBps()/1e6)

	fractions := []float64{0.05, 0.1, 0.2, 0.4, 0.6, 0.8}
	results := mesh.SaturationSweep(*rows, *cols, linkBps, routerDelay,
		pat, fractions, *packets, *bytes, 1992)

	t := report.NewTable(
		fmt.Sprintf("%s traffic, %d-byte packets", *pattern, *bytes),
		"Offered (frac of link)", "Accepted (KB/s/node)", "Avg latency (us)", "Max latency (us)")
	for i, r := range results {
		t.AddRow(
			report.Cellf("%.2f", fractions[i]),
			report.Cellf("%.1f", r.AcceptedBps/1e3),
			report.Cellf("%.1f", r.AvgLatency*1e6),
			report.Cellf("%.1f", r.MaxLatency*1e6),
		)
	}
	fmt.Print(t.Render())
}
