// Command hpccreport regenerates every exhibit of the paper (experiments
// E1-E7): the funding table, the responsibilities matrix, the Delta peak
// and LINPACK numbers, the consortium network figure and the application
// scaling tables.
//
// Usage:
//
//	hpccreport              # full report (Delta-scale E4; a few seconds)
//	hpccreport -quick       # scaled-down smoke version
//	hpccreport -e E4        # a single exhibit
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	quick := flag.Bool("quick", false, "scale down the expensive experiments")
	exp := flag.String("e", "", "run a single experiment by ID (E1..E7)")
	flag.Parse()

	prog := core.NewProgram()
	prog.Quick = *quick

	if *exp != "" {
		out, err := prog.RunExperiment(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}
	if err := prog.WriteReport(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
