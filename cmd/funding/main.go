// Command funding prints the paper's federal HPCC budget table and the
// derived growth/share analytics, plus the responsibilities matrix and the
// program goals.
package main

import (
	"flag"
	"fmt"

	"repro/internal/agency"
	"repro/internal/funding"
	"repro/internal/report"
)

func main() {
	csv := flag.Bool("csv", false, "emit the funding table as CSV")
	flag.Parse()

	if *csv {
		fmt.Print(funding.Table().CSV())
		return
	}
	fmt.Print(funding.Table().Render())
	fmt.Println()
	fmt.Print(funding.GrowthTable().Render())
	fmt.Println()

	lines := funding.FY9293()
	labels := make([]string, len(lines))
	vals := make([]float64, len(lines))
	for i, l := range lines {
		labels[i] = l.Agency
		vals[i] = l.FY93
	}
	fmt.Print(report.BarChart("FY 1993 request ($M)", labels, vals, 40))
	fmt.Println()
	fmt.Print(agency.Matrix().Render())
	fmt.Println()
	fmt.Println("Program goals:")
	for i, g := range agency.Goals() {
		fmt.Printf("  %d. %s\n", i+1, g)
	}
}
