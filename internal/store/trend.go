package store

// Longitudinal queries over the run store: one metric for one workload,
// followed across snapshots. This is the read side of the paper's own
// methodology — the exhibits were tracked across machines and years, not
// measured once — and what `hpcc serve`'s /api/v1/trend endpoint returns.

import "fmt"

// TrendPoint is one snapshot's value of a tracked metric.
type TrendPoint struct {
	RunID     string  `json:"run_id"`
	Tag       string  `json:"tag,omitempty"`
	Commit    string  `json:"commit,omitempty"`
	Time      string  `json:"time"`
	ParamsKey string  `json:"params_key"`
	Metric    string  `json:"metric"`
	Value     float64 `json:"value"`
	Unit      string  `json:"unit,omitempty"`
}

// Trend extracts workloadID's metric from each snapshot, oldest first.
// An empty metric name selects each record's first metric (the headline
// number). Snapshots without the workload are skipped; a snapshot with
// several parameter points for the workload yields one TrendPoint per
// point, distinguished by ParamsKey. An error means the metric name
// never matched anywhere — a misspelling, not an empty store.
func Trend(snaps []Snapshot, workloadID, metric string) ([]TrendPoint, error) {
	var out []TrendPoint
	sawWorkload := false
	for _, snap := range snaps {
		for _, rec := range snap.Records {
			if rec.WorkloadID != workloadID {
				continue
			}
			sawWorkload = true
			for _, m := range rec.Result.Metrics {
				if metric != "" && m.Name != metric {
					continue
				}
				out = append(out, TrendPoint{
					RunID:     snap.RunID,
					Tag:       snap.Tag,
					Commit:    snap.Commit,
					Time:      rec.Time.UTC().Format("2006-01-02T15:04:05Z"),
					ParamsKey: rec.ParamsKey,
					Metric:    m.Name,
					Value:     m.Value,
					Unit:      m.Unit,
				})
				break // one metric per record: the named one, or the headline
			}
		}
	}
	if !sawWorkload {
		return nil, fmt.Errorf("store: no snapshot records workload %q", workloadID)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("store: workload %q records no metric %q", workloadID, metric)
	}
	return out, nil
}
