// Package store persists harness results across invocations, turning the
// one-shot sweep engine into a longitudinal benchmarking system — the
// paper's own method, which tracks Grand Challenge workloads against
// targets year over year.
//
// # Position in the pipeline
//
// Workloads (repro/internal/harness) produce Results; the sweep engine
// runs them; this package records them; the delta reporter
// (repro/internal/report) compares them. The hpcc CLI
// (repro/internal/cli) wires `run`/`sweep`/`report -json` to Append via
// the -store flag and `hpcc diff` to Resolve + Diff.
//
// # Layout
//
// A store is a directory holding one append-only JSONL file, runs.jsonl.
// Each line is a Record: one workload result plus the identity that makes
// it comparable across time —
//
//   - Key: a content address, sha256 over the workload ID and the
//     canonical parameter encoding (harness.Params.Canonical), truncated
//     to 16 hex digits. Two runs of the same workload point share a Key
//     however their Params maps were built, which is what lets Diff pair
//     them.
//   - RunID: the snapshot the record belongs to. Every Append call
//     creates one snapshot; all records written by it share the RunID,
//     commit, tag and timestamp.
//   - Digest: sha256 (truncated likewise) of the result's JSON, so a
//     byte-level change in a stored result is detectable without parsing.
//
// The file is plain JSONL so it diffs, greps, and commits cleanly. The
// store assumes a single writer at a time (the normal CI and CLI case);
// concurrent appends from separate processes are not coordinated.
package store

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
)

// DefaultDir is where the hpcc CLI keeps its run store unless -store
// points elsewhere.
const DefaultDir = ".hpcc-store"

// Schema is the record format version written by this package. Readers
// reject records from a newer schema rather than misinterpreting them.
const Schema = 1

// fileName is the single JSONL file inside the store directory.
const fileName = "runs.jsonl"

// keyHexLen truncates content addresses to 64 bits — far beyond collision
// range for a store of benchmark runs, and short enough to read in diffs.
const keyHexLen = 16

// Record is one stored workload result plus the identity that makes it
// comparable across snapshots.
type Record struct {
	Schema     int            `json:"schema"`
	RunID      string         `json:"run_id"`
	Key        string         `json:"key"`
	WorkloadID string         `json:"workload"`
	ParamsKey  string         `json:"params_key"`
	Params     harness.Params `json:"params"`
	Commit     string         `json:"commit,omitempty"`
	Tag        string         `json:"tag,omitempty"`
	Time       time.Time      `json:"time"`
	Digest     string         `json:"digest"`
	Result     harness.Result `json:"result"`
}

// Entry is one result to append: the parameters it ran with and what it
// produced.
type Entry struct {
	Params harness.Params
	Result harness.Result
}

// Meta describes the snapshot an Append call creates. A zero Time means
// now.
type Meta struct {
	Commit string
	Tag    string
	Time   time.Time
}

// Snapshot is one Append call's worth of records: the unit `hpcc diff`
// compares.
type Snapshot struct {
	RunID   string
	Commit  string
	Tag     string
	Time    time.Time
	Records []Record
}

// Desc names the snapshot for report headers: run ID plus commit and tag
// when present.
func (s Snapshot) Desc() string {
	d := s.RunID
	if s.Commit != "" && s.Commit != "unknown" {
		c := s.Commit
		if len(c) > 12 {
			c = c[:12]
		}
		d += " @" + c
	}
	if s.Tag != "" {
		d += " [" + s.Tag + "]"
	}
	return d
}

// Store is a handle on a store directory. Open it with Open; the zero
// value is not usable.
type Store struct {
	dir string
	// warn receives recovery notes (a torn final line from a crash
	// mid-append being ignored or truncated); nil discards them.
	warn io.Writer
}

// SetWarnWriter directs recovery warnings (torn-tail notices) to w. The
// default, nil, discards them.
func (s *Store) SetWarnWriter(w io.Writer) { s.warn = w }

func (s *Store) warnf(format string, args ...any) {
	if s.warn != nil {
		fmt.Fprintf(s.warn, format, args...)
	}
}

// Open returns a handle on the store in dir. The directory is created on
// first Append, not here, so Open on a missing store is cheap and
// read-only commands can report "no store" precisely.
func Open(dir string) (*Store, error) {
	if strings.TrimSpace(dir) == "" {
		return nil, errors.New("store: empty store directory")
	}
	return &Store{dir: dir}, nil
}

// ErrNoStore marks a read against a store directory that has never been
// created: a different failure from "the store exists but holds no
// snapshots", and the one read-only surfaces (hpcc trend, /api/v1/trend)
// map to a not-found answer instead of a generic failure.
var ErrNoStore = errors.New("store: store directory does not exist")

// Check reports whether the store directory actually exists on disk. A
// missing directory wraps ErrNoStore; a path that exists but is not a
// directory is its own error. Open stays lazy (a store is created on
// first Append), so read-only commands call Check to distinguish "never
// created" from "created but empty".
func (s *Store) Check() error {
	fi, err := os.Stat(s.dir)
	if errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("%w: %s (run with -store %s first)", ErrNoStore, s.dir, s.dir)
	}
	if err != nil {
		return fmt.Errorf("store: stat %s: %w", s.dir, err)
	}
	if !fi.IsDir() {
		return fmt.Errorf("store: %s exists but is not a directory", s.dir)
	}
	return nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) file() string { return filepath.Join(s.dir, fileName) }

// PointKey computes the content address shared by every run of one
// workload point: sha256 over the workload ID and the canonical parameter
// encoding, truncated to 16 hex digits.
func PointKey(workloadID string, p harness.Params) string {
	return shortHash(workloadID + "\x00" + p.Canonical())
}

func shortHash(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])[:keyHexLen]
}

// Append writes one snapshot holding the entries and returns its RunID.
// The store directory and file are created as needed; records are written
// as one JSONL line each in entry order.
func (s *Store) Append(meta Meta, entries []Entry) (string, error) {
	if len(entries) == 0 {
		return "", errors.New("store: nothing to append")
	}
	if err := ValidateTag(meta.Tag); err != nil {
		return "", err
	}
	if meta.Time.IsZero() {
		meta.Time = time.Now()
	}
	meta.Time = meta.Time.UTC()

	// Heal a torn tail from a crashed earlier append before anything
	// reads the file: nextSeq's tail scan and load both want a clean
	// final line.
	if err := s.repairTail(); err != nil {
		return "", err
	}

	seq, err := s.nextSeq()
	if err != nil {
		return "", err
	}
	runID := fmt.Sprintf("%s-%03d", meta.Time.Format("20060102T150405"), seq)

	// Encode the whole snapshot before touching the file: an encode
	// failure (a NaN metric, say — encoding/json rejects it) must not
	// leave a partial snapshot as `latest`.
	var buf bytes.Buffer
	for _, e := range entries {
		rec, err := newRecord(runID, meta, e)
		if err != nil {
			return "", err
		}
		line, err := json.Marshal(rec)
		if err != nil {
			return "", fmt.Errorf("store: encode record %s: %w", rec.WorkloadID, err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}

	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return "", fmt.Errorf("store: create %s: %w", s.dir, err)
	}
	f, err := os.OpenFile(s.file(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return "", fmt.Errorf("store: open %s: %w", s.file(), err)
	}
	defer f.Close()
	if _, err := f.Write(buf.Bytes()); err != nil {
		return "", fmt.Errorf("store: write %s: %w", s.file(), err)
	}
	// fsync before reporting success: the store is the system of record,
	// and a snapshot the caller was told about must survive a crash.
	if err := f.Sync(); err != nil {
		return "", fmt.Errorf("store: sync %s: %w", s.file(), err)
	}
	return runID, nil
}

// repairTail heals the store file after a crash mid-append left a final
// line without its terminating newline. A fragment that parses as a
// complete record just gets its newline back; anything else is a torn
// write and is truncated away with a warning — the records before it
// are intact, and failing here would wedge the store for good. A
// missing file is healthy.
func (s *Store) repairTail() error {
	f, err := os.OpenFile(s.file(), os.O_RDWR, 0o644)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: open %s: %w", s.file(), err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("store: stat %s: %w", s.file(), err)
	}
	size := st.Size()
	if size == 0 {
		return nil
	}
	last := make([]byte, 1)
	if _, err := f.ReadAt(last, size-1); err != nil {
		return fmt.Errorf("store: read %s: %w", s.file(), err)
	}
	if last[0] == '\n' {
		return nil
	}

	// Unterminated final line: scan back to its start.
	const chunk = 64 * 1024
	var frag []byte
	off := size
	for off > 0 {
		n := int64(chunk)
		if n > off {
			n = off
		}
		off -= n
		head := make([]byte, n)
		if _, err := f.ReadAt(head, off); err != nil {
			return fmt.Errorf("store: read %s: %w", s.file(), err)
		}
		frag = append(head, frag...)
		if i := bytes.LastIndexByte(frag, '\n'); i >= 0 {
			off += int64(i + 1)
			frag = frag[i+1:]
			break
		}
	}

	var rec Record
	if json.Unmarshal(bytes.TrimSpace(frag), &rec) == nil {
		// The record landed whole; only its newline is missing.
		if _, err := f.WriteAt([]byte{'\n'}, size); err != nil {
			return fmt.Errorf("store: repair %s: %w", s.file(), err)
		}
	} else {
		s.warnf("store: dropping torn final line in %s (%d bytes, crash mid-append)\n", s.file(), len(frag))
		if err := f.Truncate(off); err != nil {
			return fmt.Errorf("store: truncate torn tail of %s: %w", s.file(), err)
		}
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: sync %s: %w", s.file(), err)
	}
	return nil
}

// ValidateTag rejects tags the ref grammar cannot reach: "latest" and
// "latest~N" would silently resolve to the newest snapshot instead of the
// tag, and a leading '-' reads as a flag to every CLI parser, so storing
// either would create an unreachable label.
func ValidateTag(tag string) error {
	if tag == "latest" || strings.HasPrefix(tag, "latest~") {
		return fmt.Errorf("store: tag %q collides with the ref grammar (latest, latest~N are reserved)", tag)
	}
	if strings.HasPrefix(tag, "-") {
		return fmt.Errorf("store: tag %q starts with '-' and could never be passed as a ref", tag)
	}
	return nil
}

func newRecord(runID string, meta Meta, e Entry) (Record, error) {
	resJSON, err := json.Marshal(e.Result)
	if err != nil {
		return Record{}, fmt.Errorf("store: encode result %s: %w", e.Result.WorkloadID, err)
	}
	return Record{
		Schema:     Schema,
		RunID:      runID,
		Key:        PointKey(e.Result.WorkloadID, e.Params),
		WorkloadID: e.Result.WorkloadID,
		ParamsKey:  e.Params.Canonical(),
		Params:     e.Params,
		Commit:     meta.Commit,
		Tag:        meta.Tag,
		Time:       meta.Time,
		Digest:     shortHash(string(resJSON)),
		Result:     e.Result,
	}, nil
}

// load reads every record in file order. A missing file is an empty
// store, not an error, and neither is a torn final line: a crash
// mid-append can leave a partial record with no terminating newline,
// which load skips with a warning (the next Append truncates it away)
// instead of poisoning every read of the system of record. A *complete*
// line that fails to parse is still a hard error — that is corruption,
// not a crash artifact.
func (s *Store) load() ([]Record, error) {
	f, err := os.Open(s.file())
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", s.file(), err)
	}
	defer f.Close()

	var out []Record
	br := bufio.NewReaderSize(f, 1<<20)
	line := 0
	for {
		raw, err := br.ReadBytes('\n')
		terminated := err == nil
		if err != nil && !errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("store: read %s: %w", s.file(), err)
		}
		text := strings.TrimSpace(string(raw))
		if text == "" {
			if !terminated {
				break
			}
			line++
			continue
		}
		line++
		var rec Record
		if uerr := json.Unmarshal([]byte(text), &rec); uerr != nil {
			if !terminated {
				s.warnf("store: ignoring torn final line in %s (%d bytes, crash mid-append); the next append will repair it\n",
					s.file(), len(text))
				break
			}
			return nil, fmt.Errorf("store: %s line %d: %w", s.file(), line, uerr)
		}
		if rec.Schema > Schema {
			return nil, fmt.Errorf("store: %s line %d: schema %d is newer than supported %d",
				s.file(), line, rec.Schema, Schema)
		}
		out = append(out, rec)
		if !terminated {
			break
		}
	}
	return out, nil
}

// nextSeq picks the sequence number for a new snapshot. The file is
// append-only and every RunID this package writes ends in "-NNN" with NNN
// strictly increasing, so reading just the final line gives the next
// number in O(tail) instead of O(history); a store with unparseable run
// IDs falls back to counting distinct RunIDs with a minimal per-line
// decode.
func (s *Store) nextSeq() (int, error) {
	line, err := s.lastLine()
	if err != nil {
		return 0, err
	}
	if line == nil {
		return 0, nil
	}
	var rec struct {
		RunID string `json:"run_id"`
	}
	if json.Unmarshal(line, &rec) == nil {
		if i := strings.LastIndexByte(rec.RunID, '-'); i >= 0 {
			if n, err := strconv.Atoi(rec.RunID[i+1:]); err == nil && n >= 0 {
				return n + 1, nil
			}
		}
	}
	return s.countSnapshots()
}

// lastLine reads the final non-empty line of the store file by scanning
// backwards in chunks from the end, so it touches only the tail however
// long the history is. It returns nil for a missing or empty file.
func (s *Store) lastLine() ([]byte, error) {
	f, err := os.Open(s.file())
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", s.file(), err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("store: stat %s: %w", s.file(), err)
	}

	const chunk = 64 * 1024
	var buf []byte
	off := st.Size()
	for off > 0 {
		n := int64(chunk)
		if n > off {
			n = off
		}
		off -= n
		head := make([]byte, n)
		if _, err := f.ReadAt(head, off); err != nil {
			return nil, fmt.Errorf("store: read %s: %w", s.file(), err)
		}
		buf = append(head, buf...)
		tail := bytes.TrimRight(buf, " \t\r\n")
		if len(tail) == 0 {
			continue
		}
		if i := bytes.LastIndexByte(tail, '\n'); i >= 0 {
			return bytes.TrimSpace(tail[i+1:]), nil
		}
	}
	tail := bytes.TrimSpace(buf)
	if len(tail) == 0 {
		return nil, nil
	}
	return tail, nil
}

// countSnapshots counts distinct RunIDs with a minimal per-line decode —
// the fallback when the tail's RunID does not carry a usable sequence
// suffix.
func (s *Store) countSnapshots() (int, error) {
	f, err := os.Open(s.file())
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: open %s: %w", s.file(), err)
	}
	defer f.Close()

	seen := make(map[string]bool)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec struct {
			RunID string `json:"run_id"`
		}
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return 0, fmt.Errorf("store: %s: %w", s.file(), err)
		}
		seen[rec.RunID] = true
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("store: read %s: %w", s.file(), err)
	}
	return len(seen), nil
}

// Snapshots groups the store's records by RunID, oldest first (append
// order, which is how `latest` and `latest~N` count).
func (s *Store) Snapshots() ([]Snapshot, error) {
	recs, err := s.load()
	if err != nil {
		return nil, err
	}
	var out []Snapshot
	index := make(map[string]int)
	for _, r := range recs {
		i, ok := index[r.RunID]
		if !ok {
			i = len(out)
			index[r.RunID] = i
			out = append(out, Snapshot{RunID: r.RunID, Commit: r.Commit, Tag: r.Tag, Time: r.Time})
		}
		out[i].Records = append(out[i].Records, r)
	}
	return out, nil
}

// Resolve maps a ref to a snapshot. A ref is one of:
//
//   - "latest" (or ""): the newest snapshot
//   - "latest~N": N snapshots before the newest
//   - an exact RunID
//   - a tag: the newest snapshot labeled with it
//   - a commit hash or a prefix of one (at least 4 characters): the
//     newest snapshot recorded at that commit
func (s *Store) Resolve(ref string) (Snapshot, error) {
	snaps, err := s.Snapshots()
	if err != nil {
		return Snapshot{}, err
	}
	if len(snaps) == 0 {
		return Snapshot{}, NoSnapshotsError(s.dir)
	}
	return Resolve(snaps, ref)
}

// NoSnapshotsError is the uniform "empty store" failure, shared with the
// CLI so the guidance reads the same wherever a diff hits a bare store.
func NoSnapshotsError(dir string) error {
	return fmt.Errorf("store: no snapshots in %s (run with -store %s first)", dir, dir)
}

// Resolve maps a ref to a snapshot within an already-loaded slice, so
// callers resolving several refs (hpcc diff resolves two) load the store
// once. The ref grammar is Store.Resolve's.
func Resolve(snaps []Snapshot, ref string) (Snapshot, error) {
	if len(snaps) == 0 {
		return Snapshot{}, errors.New("store: no snapshots")
	}
	var err error
	if ref == "" {
		ref = "latest"
	}
	if ref == "latest" || strings.HasPrefix(ref, "latest~") {
		back := 0
		if tail, ok := strings.CutPrefix(ref, "latest~"); ok {
			// Digits only: strconv.Atoi would also accept signed forms
			// like "latest~-1" and "latest~+1", which either have no
			// sensible meaning or silently alias "latest~1".
			if tail == "" || strings.TrimLeft(tail, "0123456789") != "" {
				return Snapshot{}, fmt.Errorf("store: bad ref %q (want latest~N with N a non-negative integer)", ref)
			}
			back, err = strconv.Atoi(tail)
			if err != nil {
				return Snapshot{}, fmt.Errorf("store: bad ref %q: %w", ref, err)
			}
		}
		i := len(snaps) - 1 - back
		if i < 0 {
			return Snapshot{}, fmt.Errorf("store: ref %q reaches past the oldest of %d snapshot(s)", ref, len(snaps))
		}
		return snaps[i], nil
	}
	// Exact RunID, then tag, then commit (exact or prefix), newest first.
	for i := len(snaps) - 1; i >= 0; i-- {
		if snaps[i].RunID == ref {
			return snaps[i], nil
		}
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		if snaps[i].Tag != "" && snaps[i].Tag == ref {
			return snaps[i], nil
		}
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		c := snaps[i].Commit
		if c == "" {
			continue
		}
		if c == ref || (len(ref) >= 4 && strings.HasPrefix(c, ref)) {
			return snaps[i], nil
		}
	}
	return Snapshot{}, fmt.Errorf("store: no snapshot matches %q (have %s)", ref, refSummary(snaps))
}

// refSummary lists the resolvable refs for the error message, newest
// first, capped so a deep store doesn't flood the terminal.
func refSummary(snaps []Snapshot) string {
	const maxListed = 8
	var parts []string
	for i := len(snaps) - 1; i >= 0 && len(parts) < maxListed; i-- {
		parts = append(parts, snaps[i].Desc())
	}
	if len(snaps) > maxListed {
		parts = append(parts, fmt.Sprintf("... %d more", len(snaps)-maxListed))
	}
	return strings.Join(parts, ", ")
}

// Prune keeps the newest `keep` snapshots and drops the rest, rewriting
// the store file atomically. It returns how many snapshots were removed.
func (s *Store) Prune(keep int) (removed int, err error) {
	if keep < 1 {
		return 0, fmt.Errorf("store: prune must keep at least 1 snapshot (got %d)", keep)
	}
	snaps, err := s.Snapshots()
	if err != nil {
		return 0, err
	}
	if len(snaps) <= keep {
		return 0, nil
	}
	kept := snaps[len(snaps)-keep:]

	tmp, err := os.CreateTemp(s.dir, fileName+".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("store: prune: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	for _, snap := range kept {
		for _, rec := range snap.Records {
			line, err := json.Marshal(rec)
			if err != nil {
				tmp.Close()
				return 0, fmt.Errorf("store: prune: encode record: %w", err)
			}
			w.Write(line)
			w.WriteByte('\n')
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("store: prune: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("store: prune: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.file()); err != nil {
		return 0, fmt.Errorf("store: prune: %w", err)
	}
	return len(snaps) - keep, nil
}

// SortedKeys returns the distinct point keys in a snapshot, sorted — a
// stable iteration aid for reports and tests.
func (s Snapshot) SortedKeys() []string {
	seen := make(map[string]bool)
	var keys []string
	for _, r := range s.Records {
		if !seen[r.Key] {
			seen[r.Key] = true
			keys = append(keys, r.Key)
		}
	}
	sort.Strings(keys)
	return keys
}
