package store

import (
	"strings"
	"testing"

	"repro/internal/harness"
)

// trendStore builds a store with three snapshots of workload "w" (gflops
// 10, 11, 12) plus an unrelated workload mixed into each snapshot.
func trendStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := harness.Params{Quick: true}
	for i := 0; i < 3; i++ {
		mustAppend(t, s, Meta{Commit: "aaaa111" + string(rune('0'+i)), Time: at(i)},
			Entry{Params: p, Result: testResult("w", float64(10+i))},
			Entry{Params: p, Result: testResult("other", 99)},
		)
	}
	return s
}

func TestTrendFollowsMetricAcrossSnapshots(t *testing.T) {
	s := trendStore(t)
	snaps, err := s.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	points, err := Trend(snaps, "w", "gflops")
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points, want 3", len(points))
	}
	for i, pt := range points {
		if pt.Value != float64(10+i) {
			t.Fatalf("point %d value %v, want %d (oldest first)", i, pt.Value, 10+i)
		}
		if pt.Metric != "gflops" || pt.Unit != "GFLOPS" {
			t.Fatalf("point %d metric %q unit %q", i, pt.Metric, pt.Unit)
		}
		if pt.RunID == "" || pt.ParamsKey == "" || pt.Time == "" {
			t.Fatalf("point %d missing identity: %+v", i, pt)
		}
	}
}

func TestTrendEmptyMetricPicksHeadline(t *testing.T) {
	s := trendStore(t)
	snaps, err := s.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	points, err := Trend(snaps, "w", "")
	if err != nil {
		t.Fatal(err)
	}
	// testResult's first metric is gflops; exactly one point per record.
	if len(points) != 3 || points[0].Metric != "gflops" {
		t.Fatalf("headline selection wrong: %+v", points)
	}
}

func TestTrendNamesTheMissingThing(t *testing.T) {
	s := trendStore(t)
	snaps, err := s.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Trend(snaps, "nope", "gflops"); err == nil || !strings.Contains(err.Error(), `"nope"`) {
		t.Fatalf("unknown workload error unhelpful: %v", err)
	}
	if _, err := Trend(snaps, "w", "watts"); err == nil || !strings.Contains(err.Error(), `"watts"`) {
		t.Fatalf("unknown metric error unhelpful: %v", err)
	}
}
