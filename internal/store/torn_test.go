package store

// Torn-tail tolerance: a crash mid-append leaves a partial final line
// in runs.jsonl. The store must warn and keep reading the intact
// snapshots, and the next Append must repair the file — never refuse
// to load, never duplicate, never corrupt.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func tornStore(t *testing.T) (*Store, string, *bytes.Buffer) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "store")
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var warn bytes.Buffer
	s.SetWarnWriter(&warn)
	return s, filepath.Join(dir, fileName), &warn
}

func TestTornTailLoadWarnsAndKeepsIntactSnapshots(t *testing.T) {
	s, path, warn := tornStore(t)
	mustAppend(t, s, Meta{Commit: "aaaa1111", Time: at(0)},
		Entry{Result: testResult("bench/x", 10)})
	mustAppend(t, s, Meta{Commit: "bbbb2222", Time: at(1)},
		Entry{Result: testResult("bench/x", 11)})
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"schema":1,"run_id":"torn-cra`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	snaps, err := s.Snapshots()
	if err != nil {
		t.Fatalf("torn tail made the store unreadable: %v", err)
	}
	if len(snaps) != 2 {
		t.Fatalf("got %d snapshots across the tear, want 2", len(snaps))
	}
	if !strings.Contains(warn.String(), "torn") {
		t.Fatalf("tear never surfaced as a warning: %q", warn.String())
	}
}

func TestTornTailNextAppendRepairsFile(t *testing.T) {
	s, path, warn := tornStore(t)
	mustAppend(t, s, Meta{Commit: "aaaa1111", Time: at(0)},
		Entry{Result: testResult("bench/x", 10)})
	if err := os.WriteFile(path, append(readAll(t, path), []byte(`{"schema":1,"run_`)...), 0o644); err != nil {
		t.Fatal(err)
	}

	mustAppend(t, s, Meta{Commit: "bbbb2222", Time: at(1)},
		Entry{Result: testResult("bench/x", 11)})
	if !strings.Contains(warn.String(), "torn") {
		t.Fatalf("repair never surfaced as a warning: %q", warn.String())
	}

	// The repaired file reads back clean — no warning, both snapshots —
	// even through a fresh handle.
	s2, err := Open(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	var warn2 bytes.Buffer
	s2.SetWarnWriter(&warn2)
	snaps, err := s2.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("repaired store has %d snapshots, want 2", len(snaps))
	}
	if warn2.Len() != 0 {
		t.Fatalf("repaired store still warns: %q", warn2.String())
	}
	for i, want := range []string{"aaaa1111", "bbbb2222"} {
		if snaps[i].Commit != want {
			t.Fatalf("snapshot %d commit = %q, want %q", i, snaps[i].Commit, want)
		}
	}
}

// TestUnterminatedParseableTailRepaired: the gentler corruption — the
// final record is complete JSON but the trailing newline never landed.
// The record must be kept (not dropped as torn) and Append must just
// terminate it.
func TestUnterminatedParseableTailRepaired(t *testing.T) {
	s, path, warn := tornStore(t)
	mustAppend(t, s, Meta{Commit: "aaaa1111", Time: at(0)},
		Entry{Result: testResult("bench/x", 10)})
	if err := os.WriteFile(path, bytes.TrimRight(readAll(t, path), "\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	snaps, err := s.Snapshots()
	if err != nil || len(snaps) != 1 {
		t.Fatalf("unterminated record dropped: %v, %d snapshots", err, len(snaps))
	}
	mustAppend(t, s, Meta{Commit: "bbbb2222", Time: at(1)},
		Entry{Result: testResult("bench/x", 11)})
	if strings.Contains(warn.String(), "torn") {
		t.Fatalf("a merely-unterminated record was reported torn: %q", warn.String())
	}
	snaps, err = s.Snapshots()
	if err != nil || len(snaps) != 2 {
		t.Fatalf("after repair: %v, %d snapshots (want 2)", err, len(snaps))
	}
}

// TestMidFileCorruptionStillFails: tolerance is for the tail only. A
// mangled record with intact records after it means real corruption,
// and silently skipping it would quietly amputate history.
func TestMidFileCorruptionStillFails(t *testing.T) {
	s, path, _ := tornStore(t)
	mustAppend(t, s, Meta{Commit: "aaaa1111", Time: at(0)},
		Entry{Result: testResult("bench/x", 10)})
	mustAppend(t, s, Meta{Commit: "bbbb2222", Time: at(1)},
		Entry{Result: testResult("bench/x", 11)})
	data := readAll(t, path)
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 2 {
		t.Fatal("test bug: want at least two lines")
	}
	lines[0] = []byte("{\"schema\":1,BROKEN\n")
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Snapshots(); err == nil {
		t.Fatal("mid-file corruption read back as a healthy store")
	}
}

func readAll(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
