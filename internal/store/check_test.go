package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestCheckDistinguishesMissingFromEmpty(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "never-created")
	st, err := Open(missing)
	if err != nil {
		t.Fatal(err)
	}
	err = st.Check()
	if !errors.Is(err, ErrNoStore) {
		t.Fatalf("missing directory: got %v, want ErrNoStore in the chain", err)
	}

	existing := t.TempDir()
	st, err = Open(existing)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Check(); err != nil {
		t.Fatalf("existing empty store failed Check: %v", err)
	}

	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err = Open(file)
	if err != nil {
		t.Fatal(err)
	}
	err = st.Check()
	if err == nil || errors.Is(err, ErrNoStore) {
		t.Fatalf("file-as-store: got %v, want a non-ErrNoStore error", err)
	}
}
