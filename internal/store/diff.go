package store

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/harness"
	"repro/internal/report"
)

// Diff compares two snapshots metric by metric. Records are paired by
// point key (workload ID + canonical params); within a pair, metrics are
// matched by (name, occurrence index) in the newer result's order, and
// metrics present on only one side are recorded in
// MetricsAdded/MetricsRemoved rather than dropped (a vanished metric
// fails the diff gate). A paired point whose baseline had no metrics — a
// pure-text exhibit — is compared by rendered text instead and recorded
// in TextChanged when it moved. Points
// present in only one snapshot are listed as added or removed rather
// than compared. The
// threshold is the relative change (as a fraction) beyond which a metric
// counts as regressed or improved; the good direction per metric comes
// from report.LowerIsBetter.
func Diff(oldSnap, newSnap Snapshot, threshold float64) *report.DeltaReport {
	d := &report.DeltaReport{
		OldRef:    oldSnap.Desc(),
		NewRef:    newSnap.Desc(),
		Threshold: threshold,
	}

	// Last record wins when a snapshot holds the same point twice (a
	// re-run within one append).
	oldByKey := make(map[string]Record)
	for _, r := range oldSnap.Records {
		oldByKey[r.Key] = r
	}
	newByKey := make(map[string]Record)
	for _, r := range newSnap.Records {
		newByKey[r.Key] = r
	}

	seen := make(map[string]bool)
	for _, newRec := range newSnap.Records {
		if seen[newRec.Key] {
			continue
		}
		seen[newRec.Key] = true
		newRec = newByKey[newRec.Key]
		oldRec, ok := oldByKey[newRec.Key]
		if !ok {
			d.Added = append(d.Added, pointLabel(newRec))
			continue
		}
		point := pointLabel(newRec)
		// A point that was metric-less in the baseline (the pure-text
		// exhibits) has only its rendered output to compare; compare the
		// text itself so the check still fires if the point gained a
		// metric in the same change that corrupted its rendering.
		if len(oldRec.Result.Metrics) == 0 &&
			newRec.Result.Text != oldRec.Result.Text {
			d.TextChanged = append(d.TextChanged, point)
		}
		// Pair metrics by (name, occurrence index): nothing stops a
		// workload from emitting two metrics with one name, and pairing
		// only the first would silently drop the rest from the gate.
		oldByName := make(map[string][]harness.Metric)
		for _, m := range oldRec.Result.Metrics {
			oldByName[m.Name] = append(oldByName[m.Name], m)
		}
		used := make(map[string]int)
		for _, m := range newRec.Result.Metrics {
			k := used[m.Name]
			used[m.Name] = k + 1
			olds := oldByName[m.Name]
			if k >= len(olds) {
				d.MetricsAdded = append(d.MetricsAdded, point+": "+m.Name)
				continue
			}
			oldM := olds[k]
			pct, status := report.Classify(oldM.Value, m.Value, threshold,
				metricLowerIsBetter(m))
			d.Rows = append(d.Rows, report.DeltaRow{
				Point:  point,
				Metric: m.Name,
				Unit:   m.Unit,
				Old:    oldM.Value,
				New:    m.Value,
				Delta:  m.Value - oldM.Value,
				Pct:    pct,
				Status: status,
			})
		}
		occ := make(map[string]int)
		for _, oldM := range oldRec.Result.Metrics {
			i := occ[oldM.Name]
			occ[oldM.Name] = i + 1
			if i >= used[oldM.Name] {
				d.MetricsRemoved = append(d.MetricsRemoved, point+": "+oldM.Name)
			}
		}
	}
	for _, key := range oldSnap.SortedKeys() {
		if _, ok := newByKey[key]; !ok {
			d.Removed = append(d.Removed, pointLabel(oldByKey[key]))
		}
	}
	return d
}

// metricLowerIsBetter resolves one metric's good direction: an explicit
// per-workload declaration (harness.Metric.Dir, stamped by the workload's
// Spec.MetricDirs) wins; otherwise the name/unit heuristic decides. The
// newer record's metric carries the declaration used, so updating a
// workload's declaration takes effect on the next diff without rewriting
// history.
func metricLowerIsBetter(m harness.Metric) bool {
	switch m.Dir {
	case harness.DirLower:
		return true
	case harness.DirHigher:
		return false
	}
	return report.LowerIsBetter(m.Name, m.Unit)
}

// pointLabel names a workload point for report rows: the workload ID plus
// any non-default parameters, e.g. "linpack/delta [nb=8 quick]".
func pointLabel(r Record) string {
	var parts []string
	keys := make([]string, 0, len(r.Params.Values))
	for k := range r.Params.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		parts = append(parts, k+"="+r.Params.Values[k])
	}
	if r.Params.Quick {
		parts = append(parts, "quick")
	}
	if r.Params.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", r.Params.Seed))
	}
	if len(parts) == 0 {
		return r.WorkloadID
	}
	return r.WorkloadID + " [" + strings.Join(parts, " ") + "]"
}
