package store

import (
	"encoding/json"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/report"
)

func testResult(id string, gflops float64) harness.Result {
	r := harness.Result{WorkloadID: id, Title: "t-" + id, Text: "body of " + id + "\n"}
	r.AddMetric("gflops", gflops, "GFLOPS")
	r.AddMetric("simulated-s", 100/gflops, "s")
	return r
}

func mustAppend(t *testing.T, s *Store, meta Meta, entries ...Entry) string {
	t.Helper()
	runID, err := s.Append(meta, entries)
	if err != nil {
		t.Fatal(err)
	}
	return runID
}

func at(sec int) time.Time {
	return time.Date(2026, 7, 28, 12, 0, sec, 0, time.UTC)
}

// TestRoundTripByteIdentical: a Result written to the store and read back
// marshals to byte-identical JSON — the store does not lossily transform
// what the harness produced.
func TestRoundTripByteIdentical(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	params := harness.Params{Quick: true, Seed: 3}
	params = params.WithValue("nb", "16").WithValue("n", "25000")
	res := testResult("linpack/delta", 13.9)
	res.Paper = "13.9 GFLOPS on the full Delta"

	before, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, Meta{Commit: "abc1234def", Tag: "seed", Time: at(0)},
		Entry{Params: params, Result: res})

	snap, err := s.Resolve("latest")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Records) != 1 {
		t.Fatalf("got %d records, want 1", len(snap.Records))
	}
	rec := snap.Records[0]
	after, err := json.Marshal(rec.Result)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Errorf("result JSON changed through the store:\nbefore %s\nafter  %s", before, after)
	}
	if rec.Key != PointKey("linpack/delta", params) {
		t.Errorf("record key %q != PointKey %q", rec.Key, PointKey("linpack/delta", params))
	}
	if rec.ParamsKey != params.Canonical() {
		t.Errorf("params key %q != canonical %q", rec.ParamsKey, params.Canonical())
	}
	if rec.Commit != "abc1234def" || rec.Tag != "seed" || rec.Schema != Schema {
		t.Errorf("metadata not preserved: %+v", rec)
	}
}

// TestKeyStableUnderInsertionOrder: the same parameter point built in two
// map orders lands on one key, so runs pair up across snapshots.
func TestKeyStableUnderInsertionOrder(t *testing.T) {
	a := harness.Params{}.WithValue("n", "512").WithValue("nb", "8").WithValue("procs", "64")
	b := harness.Params{}.WithValue("procs", "64").WithValue("nb", "8").WithValue("n", "512")
	if PointKey("w", a) != PointKey("w", b) {
		t.Errorf("keys differ for identical params: %q vs %q", PointKey("w", a), PointKey("w", b))
	}
	if PointKey("w", a) == PointKey("x", a) {
		t.Error("different workloads share a key")
	}
}

func TestResolveRefs(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := harness.Params{}
	r1 := mustAppend(t, s, Meta{Commit: "aaaa1111bbbb", Time: at(1)}, Entry{Params: p, Result: testResult("w", 10)})
	r2 := mustAppend(t, s, Meta{Commit: "cccc2222dddd", Tag: "release", Time: at(2)}, Entry{Params: p, Result: testResult("w", 11)})
	r3 := mustAppend(t, s, Meta{Commit: "cccc2222dddd", Time: at(3)}, Entry{Params: p, Result: testResult("w", 12)})

	if r1 == r2 || r2 == r3 || r1 == r3 {
		t.Fatalf("run IDs must be distinct: %s %s %s", r1, r2, r3)
	}
	cases := []struct {
		ref  string
		want string
	}{
		{"latest", r3},
		{"", r3},
		{"latest~1", r2},
		{"latest~2", r1},
		{r1, r1},
		{"release", r2},
		{"aaaa1111bbbb", r1},
		{"aaaa", r1},         // commit prefix
		{"cccc2222dddd", r3}, // newest at that commit
	}
	for _, c := range cases {
		snap, err := s.Resolve(c.ref)
		if err != nil {
			t.Errorf("Resolve(%q): %v", c.ref, err)
			continue
		}
		if snap.RunID != c.want {
			t.Errorf("Resolve(%q) = %s, want %s", c.ref, snap.RunID, c.want)
		}
	}
	for _, bad := range []string{"latest~3", "latest~x", "nosuchtag", "ffff"} {
		if _, err := s.Resolve(bad); err == nil {
			t.Errorf("Resolve(%q) succeeded, want error", bad)
		}
	}
}

// Regression test for the ref grammar: strconv.Atoi alone accepts signed
// forms, so "latest~-1" (meaningless) and "latest~+1" (a silent alias of
// "latest~1") used to sneak through the digit check. All of them must be
// rejected with a message naming the expected form.
func TestResolveRejectsSignedLatestOffsets(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := harness.Params{}
	mustAppend(t, s, Meta{Time: at(1)}, Entry{Params: p, Result: testResult("w", 10)})
	mustAppend(t, s, Meta{Time: at(2)}, Entry{Params: p, Result: testResult("w", 11)})

	for _, bad := range []string{"latest~-1", "latest~+1", "latest~", "latest~ 1", "latest~1.0"} {
		_, err := s.Resolve(bad)
		if err == nil {
			t.Errorf("Resolve(%q) succeeded, want error", bad)
			continue
		}
		if !strings.Contains(err.Error(), "latest~N") {
			t.Errorf("Resolve(%q) error %q does not name the expected form", bad, err)
		}
	}
	// The digit-only check must not break the valid forms.
	if snap, err := s.Resolve("latest~1"); err != nil || len(snap.Records) == 0 {
		t.Fatalf("latest~1 broken: %v", err)
	}
	if _, err := s.Resolve("latest~0"); err != nil {
		t.Fatalf("latest~0 broken: %v", err)
	}
}

func TestResolveEmptyStore(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "never-written"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Resolve("latest"); err == nil {
		t.Error("Resolve on an empty store succeeded, want error")
	}
}

func TestPrune(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := harness.Params{}
	for i := 0; i < 5; i++ {
		mustAppend(t, s, Meta{Time: at(i)}, Entry{Params: p, Result: testResult("w", float64(10+i))})
	}
	removed, err := s.Prune(2)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 {
		t.Errorf("Prune removed %d, want 3", removed)
	}
	snaps, err := s.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("after prune: %d snapshots, want 2", len(snaps))
	}
	// The survivors are the newest two, still in order, still diffable.
	if m, _ := snaps[0].Records[0].Result.Metric("gflops"); m.Value != 13 {
		t.Errorf("oldest surviving snapshot has gflops=%g, want 13", m.Value)
	}
	if removed, err = s.Prune(10); err != nil || removed != 0 {
		t.Errorf("no-op prune: removed=%d err=%v", removed, err)
	}
	if _, err := s.Prune(0); err == nil {
		t.Error("Prune(0) succeeded, want error")
	}
}

func TestDiff(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := harness.Params{}
	pq := harness.Params{Quick: true}.WithValue("nb", "8")
	mustAppend(t, s, Meta{Time: at(0)},
		Entry{Params: p, Result: testResult("w/stable", 10)},
		Entry{Params: pq, Result: testResult("w/hot", 20)},
		Entry{Params: p, Result: testResult("w/gone", 5)})
	mustAppend(t, s, Meta{Time: at(1)},
		Entry{Params: p, Result: testResult("w/stable", 10.01)}, // within threshold
		Entry{Params: pq, Result: testResult("w/hot", 10)},      // halved rate: regression
		Entry{Params: p, Result: testResult("w/new", 7)})

	oldSnap, err := s.Resolve("latest~1")
	if err != nil {
		t.Fatal(err)
	}
	newSnap, err := s.Resolve("latest")
	if err != nil {
		t.Fatal(err)
	}
	d := Diff(oldSnap, newSnap, 0.05)

	// w/hot: gflops halves (regressed) and simulated-s doubles (regressed).
	regs := d.Regressions()
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2: %+v", len(regs), regs)
	}
	for _, r := range regs {
		if r.Point != "w/hot [nb=8 quick]" {
			t.Errorf("regression on unexpected point %q", r.Point)
		}
	}
	if len(d.Added) != 1 || d.Added[0] != "w/new" {
		t.Errorf("Added = %v, want [w/new]", d.Added)
	}
	if len(d.Removed) != 1 || d.Removed[0] != "w/gone" {
		t.Errorf("Removed = %v, want [w/gone]", d.Removed)
	}

	var stable []report.DeltaRow
	for _, r := range d.Rows {
		if r.Point == "w/stable" && r.Metric == "gflops" {
			stable = append(stable, r)
		}
	}
	if len(stable) != 1 || stable[0].Status != report.DeltaOK {
		t.Errorf("w/stable gflops should be ok: %+v", stable)
	}

	// Self-diff is all-ok by construction.
	self := Diff(newSnap, newSnap, 0.05)
	if len(self.Regressions()) != 0 || len(self.Added) != 0 || len(self.Removed) != 0 ||
		len(self.MetricsAdded) != 0 || len(self.MetricsRemoved) != 0 {
		t.Errorf("self-diff not clean: %+v", self)
	}
}

// TestDiffHonorsMetricDirOverride: a workload's declared metric
// direction (harness.Metric.Dir, stamped by Spec.MetricDirs) overrides
// the name/unit heuristic in both directions.
func TestDiffHonorsMetricDirOverride(t *testing.T) {
	snap := func(metrics ...harness.Metric) Snapshot {
		r := harness.Result{WorkloadID: "w", Text: "x\n", Metrics: metrics}
		rec, err := newRecord("run", Meta{Time: at(0)}, Entry{Params: harness.Params{}, Result: r})
		if err != nil {
			t.Fatal(err)
		}
		return Snapshot{RunID: "run", Records: []Record{rec}}
	}
	rowStatus := func(d *report.DeltaReport, metric string) report.DeltaStatus {
		for _, row := range d.Rows {
			if row.Metric == metric {
				return row.Status
			}
		}
		t.Fatalf("no row for %s in %+v", metric, d.Rows)
		return ""
	}

	// "score" reads as higher-is-better to the heuristic; the workload
	// declares it lower-is-better, so a big increase must regress.
	oldSnap := snap(harness.Metric{Name: "score", Value: 10})
	newSnap := snap(harness.Metric{Name: "score", Value: 20, Dir: harness.DirLower})
	if got := rowStatus(Diff(oldSnap, newSnap, 0.05), "score"); got != report.DeltaRegressed {
		t.Fatalf("declared-lower score doubled: status %s, want regressed", got)
	}
	// Without the declaration the heuristic calls the same move improved.
	if got := rowStatus(Diff(oldSnap, snap(harness.Metric{Name: "score", Value: 20}), 0.05),
		"score"); got != report.DeltaImproved {
		t.Fatalf("undeclared score doubled: status %s, want improved (heuristic)", got)
	}

	// "drain-time" reads as lower-is-better to the heuristic; a workload
	// measuring, say, sustained drain throughput-seconds can declare
	// higher-is-better and an increase must improve.
	oldSnap = snap(harness.Metric{Name: "drain-time", Value: 10, Unit: "s"})
	newSnap = snap(harness.Metric{Name: "drain-time", Value: 20, Unit: "s", Dir: harness.DirHigher})
	if got := rowStatus(Diff(oldSnap, newSnap, 0.05), "drain-time"); got != report.DeltaImproved {
		t.Fatalf("declared-higher drain-time doubled: status %s, want improved", got)
	}
}

// TestDiffMetricDisappears: a metric present in the old snapshot but
// missing from the new one must be reported, not silently dropped — it is
// the failure mode where a code change stops emitting a tracked number.
func TestDiffMetricDisappears(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := harness.Params{}
	old := harness.Result{WorkloadID: "w", Text: "x\n"}
	old.AddMetric("gflops", 10, "GFLOPS")
	old.AddMetric("simulated-s", 1, "s")
	neu := harness.Result{WorkloadID: "w", Text: "x\n"}
	neu.AddMetric("simulated-s", 1, "s")
	neu.AddMetric("efficiency", 0.9, "")
	mustAppend(t, s, Meta{Time: at(0)}, Entry{Params: p, Result: old})
	mustAppend(t, s, Meta{Time: at(1)}, Entry{Params: p, Result: neu})

	oldSnap, _ := s.Resolve("latest~1")
	newSnap, _ := s.Resolve("latest")
	d := Diff(oldSnap, newSnap, 0.05)
	if len(d.MetricsRemoved) != 1 || d.MetricsRemoved[0] != "w: gflops" {
		t.Errorf("MetricsRemoved = %v, want [w: gflops]", d.MetricsRemoved)
	}
	if len(d.MetricsAdded) != 1 || d.MetricsAdded[0] != "w: efficiency" {
		t.Errorf("MetricsAdded = %v, want [w: efficiency]", d.MetricsAdded)
	}
	if len(d.Rows) != 1 || d.Rows[0].Metric != "simulated-s" {
		t.Errorf("still-shared metric not compared: %+v", d.Rows)
	}
	if !strings.Contains(d.Summary(), "REMOVED") {
		t.Errorf("summary does not flag the removed metric: %q", d.Summary())
	}
	if !d.Gates() {
		t.Error("a removed metric must fail the gate")
	}
}

// TestDiffTextOnlyExhibit: a point with no metrics at all (the pure-text
// exhibits) is compared by digest — a changed rendering gates, an
// identical one does not.
func TestDiffTextOnlyExhibit(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := harness.Params{}
	mk := func(text string) harness.Result {
		return harness.Result{WorkloadID: "E1", Text: text}
	}
	mustAppend(t, s, Meta{Time: at(0)}, Entry{Params: p, Result: mk("table v1\n")})
	mustAppend(t, s, Meta{Time: at(1)}, Entry{Params: p, Result: mk("table v1\n")})
	mustAppend(t, s, Meta{Time: at(2)}, Entry{Params: p, Result: mk("table v2\n")})

	s0, _ := s.Resolve("latest~2")
	s1, _ := s.Resolve("latest~1")
	s2, _ := s.Resolve("latest")

	same := Diff(s0, s1, 0.05)
	if len(same.TextChanged) != 0 || same.Gates() {
		t.Errorf("identical text exhibit gated: %+v", same)
	}
	changed := Diff(s1, s2, 0.05)
	if len(changed.TextChanged) != 1 || changed.TextChanged[0] != "E1" {
		t.Errorf("TextChanged = %v, want [E1]", changed.TextChanged)
	}
	if !changed.Gates() {
		t.Error("a changed text exhibit must fail the gate")
	}
	if !strings.Contains(changed.Summary(), "CHANGED") {
		t.Errorf("summary does not flag the text change: %q", changed.Summary())
	}

	// Gaining a metric in the same change that corrupted the text must
	// not hide the text change; gaining one with identical text must.
	grown := harness.Result{WorkloadID: "E1", Text: "table v3\n"}
	grown.AddMetric("rows", 5, "")
	mustAppend(t, s, Meta{Time: at(3)}, Entry{Params: p, Result: grown})
	s3, _ := s.Resolve("latest")
	d := Diff(s2, s3, 0.05)
	if len(d.TextChanged) != 1 {
		t.Errorf("text change hidden by a newly added metric: %+v", d)
	}
	sameText := harness.Result{WorkloadID: "E1", Text: "table v2\n"}
	sameText.AddMetric("rows", 5, "")
	mustAppend(t, s, Meta{Time: at(4)}, Entry{Params: p, Result: sameText})
	s4, _ := s.Resolve("latest")
	d2 := Diff(s2, s4, 0.05)
	if len(d2.TextChanged) != 0 {
		t.Errorf("identical text flagged as changed after gaining a metric: %+v", d2.TextChanged)
	}
}

// TestAppendAtomicOnEncodeError: an unencodable entry (NaN metric) must
// not leave a partial snapshot behind.
func TestAppendAtomicOnEncodeError(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := harness.Params{}
	mustAppend(t, s, Meta{Time: at(0)}, Entry{Params: p, Result: testResult("w", 10)})

	bad := harness.Result{WorkloadID: "w2", Text: "x\n"}
	bad.AddMetric("gflops", math.NaN(), "GFLOPS")
	_, err = s.Append(Meta{Time: at(1)}, []Entry{
		{Params: p, Result: testResult("w", 11)},
		{Params: p, Result: bad},
	})
	if err == nil {
		t.Fatal("Append with a NaN metric succeeded, want error")
	}
	snaps, err := s.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("partial snapshot leaked: %d snapshots, want 1", len(snaps))
	}
}

// TestAppendRejectsReservedTags: tags the ref grammar reserves are
// refused at write time, when the label would otherwise be unreachable.
func TestAppendRejectsReservedTags(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, tag := range []string{"latest", "latest~1"} {
		_, err := s.Append(Meta{Tag: tag, Time: at(0)},
			[]Entry{{Result: testResult("w", 10)}})
		if err == nil {
			t.Errorf("Append with tag %q succeeded, want error", tag)
		}
	}
	if err := ValidateTag("release-2026"); err != nil {
		t.Errorf("ValidateTag rejected a normal tag: %v", err)
	}
	if err := ValidateTag("-v2"); err == nil {
		t.Error("ValidateTag accepted a dash-prefixed tag no ref can express")
	}
}

// TestDiffDuplicateMetricNames: duplicate metric names pair by occurrence
// index, so a regression in the second same-named metric still gates and
// a dropped duplicate is reported removed.
func TestDiffDuplicateMetricNames(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := harness.Params{}
	mk := func(vals ...float64) harness.Result {
		r := harness.Result{WorkloadID: "w", Text: "x\n"}
		for _, v := range vals {
			r.AddMetric("gflops", v, "GFLOPS")
		}
		return r
	}
	mustAppend(t, s, Meta{Time: at(0)}, Entry{Params: p, Result: mk(10, 20, 30)})
	mustAppend(t, s, Meta{Time: at(1)}, Entry{Params: p, Result: mk(10, 10)})

	oldSnap, _ := s.Resolve("latest~1")
	newSnap, _ := s.Resolve("latest")
	d := Diff(oldSnap, newSnap, 0.05)
	if len(d.Rows) != 2 {
		t.Fatalf("got %d rows, want 2 (one per occurrence): %+v", len(d.Rows), d.Rows)
	}
	if d.Rows[0].Status != report.DeltaOK {
		t.Errorf("first occurrence (10->10) should be ok: %+v", d.Rows[0])
	}
	if d.Rows[1].Status != report.DeltaRegressed || d.Rows[1].Old != 20 {
		t.Errorf("second occurrence (20->10) should regress: %+v", d.Rows[1])
	}
	if len(d.MetricsRemoved) != 1 {
		t.Errorf("dropped third occurrence not reported: %v", d.MetricsRemoved)
	}
}

// TestNextSeqSurvivesPrune: sequence numbers keep increasing after a
// prune, so RunIDs never collide even though older snapshots are gone.
func TestNextSeqSurvivesPrune(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := harness.Params{}
	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, mustAppend(t, s, Meta{Time: at(i)}, Entry{Params: p, Result: testResult("w", 10)}))
	}
	if _, err := s.Prune(1); err != nil {
		t.Fatal(err)
	}
	id4 := mustAppend(t, s, Meta{Time: at(3)}, Entry{Params: p, Result: testResult("w", 10)})
	for _, old := range ids {
		if id4 == old {
			t.Fatalf("RunID %s reused after prune", id4)
		}
	}
}
