package mesh

import "testing"

// BenchmarkPacketSimulation measures the host cost of simulating one packet
// through the loaded 16x33 Delta mesh.
func BenchmarkPacketSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := New(16, 33, 12e6, 1e-6)
		rngFree := 0 // deterministic round-robin destinations
		for src := 0; src < n.Nodes(); src++ {
			dst := (src + 1 + rngFree) % n.Nodes()
			if dst == src {
				dst = (dst + 1) % n.Nodes()
			}
			n.Inject(src, dst, 1024, 0)
		}
		n.Run()
	}
}

// BenchmarkOfferLoadUniform measures a complete offered-load experiment on
// an 8x8 mesh.
func BenchmarkOfferLoadUniform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		OfferLoad(8, 8, 12e6, 1e-6, Uniform, 20, 1024, 0.4*12e6, 7)
	}
}
