package mesh

import (
	"context"
	"fmt"

	"repro/internal/harness"
	"repro/internal/report"
)

// The Delta mesh interconnect characterization as a registry workload:
// latency/throughput versus offered load for the classical traffic
// patterns on the paper's 16x33 mesh.
func init() {
	harness.MustRegister(harness.Spec{
		WorkloadID: "mesh/saturation",
		Desc:       "Delta 2D mesh saturation sweep under a traffic pattern",
		Space: []harness.Param{
			{Name: "rows", Default: "16", Doc: "mesh rows"},
			{Name: "cols", Default: "33", Doc: "mesh columns"},
			{Name: "pattern", Default: "uniform", Doc: "uniform, transpose, hotspot or neighbor"},
			{Name: "bytes", Default: "1024", Doc: "packet size"},
			{Name: "packets", Default: "50", Doc: "packets per node"},
		},
		RunFunc: runSaturation,
	})
}

// PatternByName maps CLI/workload pattern names to traffic patterns.
func PatternByName(name string) (Pattern, error) {
	switch name {
	case "uniform":
		return Uniform, nil
	case "transpose":
		return Transpose, nil
	case "hotspot":
		return Hotspot, nil
	case "neighbor":
		return NearestNeighbor, nil
	default:
		return nil, fmt.Errorf("mesh: unknown pattern %q (want uniform, transpose, hotspot or neighbor)", name)
	}
}

func runSaturation(ctx context.Context, p harness.Params) (harness.Result, error) {
	if err := ctx.Err(); err != nil {
		return harness.Result{}, err
	}
	rows, err := p.Int("rows", 16)
	if err != nil {
		return harness.Result{}, err
	}
	cols, err := p.Int("cols", 33)
	if err != nil {
		return harness.Result{}, err
	}
	bytes, err := p.Int("bytes", 1024)
	if err != nil {
		return harness.Result{}, err
	}
	defPackets := 50
	if p.Quick {
		defPackets = 10
	}
	packets, err := p.Int("packets", defPackets)
	if err != nil {
		return harness.Result{}, err
	}
	pat, err := PatternByName(p.Value("pattern", "uniform"))
	if err != nil {
		return harness.Result{}, err
	}
	seed := p.Seed
	if seed == 0 {
		seed = 1992
	}

	const linkBps = 10e6 // Delta sustained channel rate
	const routerDelay = 1e-6

	net := New(rows, cols, linkBps, routerDelay)
	fractions := []float64{0.05, 0.1, 0.2, 0.4, 0.6, 0.8}
	results, err := SaturationSweepContext(ctx, rows, cols, linkBps, routerDelay, pat, fractions, packets, bytes, seed)
	if err != nil {
		return harness.Result{}, err
	}

	t := report.NewTable(
		report.Cellf("%s traffic, %d-byte packets on the %dx%d mesh", p.Value("pattern", "uniform"), bytes, rows, cols),
		"Offered (frac of link)", "Accepted (KB/s/node)", "Avg latency (us)", "Max latency (us)")
	for i, r := range results {
		t.AddRow(
			report.Cellf("%.2f", fractions[i]),
			report.Cellf("%.1f", r.AcceptedBps/1e3),
			report.Cellf("%.1f", r.AvgLatency*1e6),
			report.Cellf("%.1f", r.MaxLatency*1e6),
		)
	}
	text := fmt.Sprintf("mesh %dx%d, %d nodes, bisection bandwidth %.1f MB/s\n\n%s",
		rows, cols, net.Nodes(), net.BisectionBandwidthBps()/1e6, t.Render())
	res := harness.Result{Title: "Delta mesh saturation sweep", Text: text}
	res.AddMetric("bisection-MBps", net.BisectionBandwidthBps()/1e6, "MB/s")
	res.AddMetric("nodes", float64(net.Nodes()), "")
	return res, nil
}
