// Package mesh simulates the Touchstone Delta's 2D mesh interconnect at
// packet granularity: dimension-order (XY) wormhole routing with per-link
// occupancy, so that link contention — the phenomenon that set the Delta's
// effective NX bandwidth well below the hardware channel rate — emerges
// from the simulation rather than being assumed.
//
// The model is virtual cut-through: a packet's head advances one router per
// RouterDelay, each traversed link is held for the packet's serialization
// time, and a packet queues when its next link is busy.
package mesh

import (
	"context"
	"fmt"
	"math"

	"repro/internal/sim"
)

// Packet is one simulated message traversing the mesh.
type Packet struct {
	ID        int
	Src, Dst  int
	Bytes     int
	InjectAt  float64
	DeliverAt float64 // set when the tail arrives at Dst
	Hops      int
}

// Latency returns the packet's total in-network time.
func (p *Packet) Latency() float64 { return p.DeliverAt - p.InjectAt }

// Network is a rows x cols mesh. Create with New, inject packets, then Run.
type Network struct {
	rows, cols  int
	byteTime    float64 // seconds per byte on a link
	routerDelay float64 // per-hop head latency
	yFirst      bool    // YX dimension order instead of the default XY
	kern        sim.Kernel
	nextFree    map[int64]float64 // directed link -> earliest availability
	packets     []*Packet
	nextID      int
}

// UseYXRouting switches the network to YX dimension order (rows first,
// then columns). The Delta routed XY; the alternative is the classical
// ablation for dimension-order routing on asymmetric meshes. It must be
// called before any Inject.
func (n *Network) UseYXRouting() {
	if len(n.packets) > 0 {
		panic("mesh: UseYXRouting after Inject")
	}
	n.yFirst = true
}

// New creates a mesh with the given link bandwidth (bytes/s) and per-hop
// router delay (seconds).
func New(rows, cols int, linkBandwidthBps, routerDelay float64) *Network {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("mesh: invalid dims %dx%d", rows, cols))
	}
	if linkBandwidthBps <= 0 || routerDelay < 0 {
		panic("mesh: bandwidth must be positive and router delay non-negative")
	}
	return &Network{
		rows: rows, cols: cols,
		byteTime:    1 / linkBandwidthBps,
		routerDelay: routerDelay,
		nextFree:    make(map[int64]float64),
	}
}

// Nodes returns the node count.
func (n *Network) Nodes() int { return n.rows * n.cols }

// Coord converts a node id to (row, col).
func (n *Network) Coord(id int) (r, c int) { return id / n.cols, id % n.cols }

// NodeAt converts (row, col) to a node id.
func (n *Network) NodeAt(r, c int) int { return r*n.cols + c }

func (n *Network) linkKey(from, to int) int64 {
	return int64(from)*int64(n.Nodes()) + int64(to)
}

// Route returns the dimension-order path from src to dst as the sequence
// of nodes visited (inclusive of both endpoints): columns first then rows
// (XY, the Delta's order), or rows first with UseYXRouting.
func (n *Network) Route(src, dst int) []int {
	sr, sc := n.Coord(src)
	dr, dc := n.Coord(dst)
	path := []int{src}
	r, c := sr, sc
	stepCols := func() {
		for c != dc {
			if c < dc {
				c++
			} else {
				c--
			}
			path = append(path, n.NodeAt(r, c))
		}
	}
	stepRows := func() {
		for r != dr {
			if r < dr {
				r++
			} else {
				r--
			}
			path = append(path, n.NodeAt(r, c))
		}
	}
	if n.yFirst {
		stepRows()
		stepCols()
	} else {
		stepCols()
		stepRows()
	}
	return path
}

// Inject schedules a packet for injection at the given time. Run must be
// called afterwards to simulate delivery. Self-sends are rejected.
func (n *Network) Inject(src, dst, bytes int, at float64) *Packet {
	if src < 0 || src >= n.Nodes() || dst < 0 || dst >= n.Nodes() {
		panic(fmt.Sprintf("mesh: inject with invalid endpoint %d->%d", src, dst))
	}
	if src == dst {
		panic("mesh: self-send has no network component")
	}
	if bytes < 1 {
		bytes = 1
	}
	p := &Packet{ID: n.nextID, Src: src, Dst: dst, Bytes: bytes, InjectAt: at, DeliverAt: math.NaN()}
	n.nextID++
	n.packets = append(n.packets, p)
	path := n.Route(src, dst)
	p.Hops = len(path) - 1
	n.kern.At(at, func() { n.advance(p, path, 0) })
	return p
}

// advance moves packet p from path[idx] toward path[idx+1].
func (n *Network) advance(p *Packet, path []int, idx int) {
	if idx == len(path)-1 {
		// head has arrived at destination; tail lands after serialization
		p.DeliverAt = n.kern.Now() + float64(p.Bytes)*n.byteTime
		return
	}
	key := n.linkKey(path[idx], path[idx+1])
	depart := n.kern.Now()
	if free := n.nextFree[key]; free > depart {
		depart = free
	}
	depart += n.routerDelay
	n.nextFree[key] = depart + float64(p.Bytes)*n.byteTime
	n.kern.At(depart, func() { n.advance(p, path, idx+1) })
}

// Run simulates until every injected packet is delivered.
func (n *Network) Run() {
	n.kern.Run()
}

// RunContext is Run with cancellation: the event loop checks ctx every
// ctxCheckEvery events (a packet-hop is one event, so the check costs a
// fraction of a percent while still cancelling within microseconds of
// host time), returning ctx.Err() when cancelled — the same ctx-threading
// contract the linpack kernels follow (nx.Config.Ctx). A cancelled
// network is torn mid-flight; Stats would panic on undelivered packets,
// so callers must stop at the error.
func (n *Network) RunContext(ctx context.Context) error {
	const ctxCheckEvery = 1024
	i := 0
	for n.kern.Step() {
		i++
		if i >= ctxCheckEvery {
			i = 0
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	// The queue drained: the simulation completed, so a cancellation
	// racing the last event does not discard the finished result (the
	// same contract as nren's Sim.RunContext).
	return nil
}

// Stats summarizes delivered packets.
type Stats struct {
	Delivered     int
	AvgLatency    float64
	MaxLatency    float64
	TotalBytes    int64
	Makespan      float64 // last delivery time
	ThroughputBps float64
}

// Stats computes summary statistics. It panics if Run has not completed.
func (n *Network) Stats() Stats {
	var s Stats
	for _, p := range n.packets {
		if math.IsNaN(p.DeliverAt) {
			panic("mesh: Stats before Run completed")
		}
		s.Delivered++
		l := p.Latency()
		s.AvgLatency += l
		if l > s.MaxLatency {
			s.MaxLatency = l
		}
		s.TotalBytes += int64(p.Bytes)
		if p.DeliverAt > s.Makespan {
			s.Makespan = p.DeliverAt
		}
	}
	if s.Delivered > 0 {
		s.AvgLatency /= float64(s.Delivered)
	}
	if s.Makespan > 0 {
		s.ThroughputBps = float64(s.TotalBytes) / s.Makespan
	}
	return s
}

// BisectionBandwidthBps returns the analytic bisection bandwidth of the
// mesh: the aggregate one-way bandwidth of the links crossing a cut that
// halves the machine across its longer dimension.
func (n *Network) BisectionBandwidthBps() float64 {
	cut := n.rows
	if n.cols < n.rows {
		cut = n.cols
	}
	return float64(cut) / n.byteTime
}
