package mesh

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/harness"
)

// TestRunContextPreCancelled: a cancelled ctx stops the packet simulation
// at its first check instead of draining the event queue.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := OfferLoadContext(ctx, 8, 8, 10e6, 1e-6, Uniform, 50, 1024, 4e6, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestOfferLoadContextCancelMidRun: cancelling mid-simulation abandons a
// Delta-scale packet run promptly.
func TestOfferLoadContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := OfferLoadContext(ctx, 16, 33, 12e6, 1e-6, Uniform, 2000, 1024, 0.8*12e6, 1992)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v, want prompt teardown", elapsed)
	}
}

// TestSaturationWorkloadCancelled: the registry workload threads the
// sweep engine's per-job ctx into the saturation sweep.
func TestSaturationWorkloadCancelled(t *testing.T) {
	w, err := harness.Lookup("mesh/saturation")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.Run(ctx, harness.Params{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunContextCompletesUncancelled: RunContext with a live ctx delivers
// everything and reports the same stats Run would.
func TestRunContextCompletesUncancelled(t *testing.T) {
	res, err := OfferLoadContext(context.Background(), 4, 4, 10e6, 1e-6, NearestNeighbor, 10, 512, 2e6, 3)
	if err != nil {
		t.Fatal(err)
	}
	plain := OfferLoad(4, 4, 10e6, 1e-6, NearestNeighbor, 10, 512, 2e6, 3)
	if res != plain {
		t.Fatalf("ctx run %+v != plain run %+v", res, plain)
	}
}
