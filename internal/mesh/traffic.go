package mesh

import (
	"context"
	"fmt"
	"math/rand"
)

// Pattern selects a destination for a source node in a synthetic traffic
// workload. Patterns are the classical interconnection-network benchmarks.
type Pattern func(rng *rand.Rand, net *Network, src int) int

// Uniform sends to a destination chosen uniformly among all other nodes.
func Uniform(rng *rand.Rand, net *Network, src int) int {
	d := rng.Intn(net.Nodes() - 1)
	if d >= src {
		d++
	}
	return d
}

// Transpose sends node (r, c) to node (c, r) mapped onto the mesh shape;
// it stresses the bisection. Nodes on the diagonal pick their horizontal
// neighbour.
func Transpose(_ *rand.Rand, net *Network, src int) int {
	r, c := net.Coord(src)
	dr := c % net.rows
	dc := r % net.cols
	d := net.NodeAt(dr, dc)
	if d == src {
		d = net.NodeAt(dr, (dc+1)%net.cols)
	}
	if d == src { // 1x1 guard; callers use larger meshes
		d = (src + 1) % net.Nodes()
	}
	return d
}

// Hotspot sends to node 0 with 20% probability and uniformly otherwise,
// modelling a shared-service bottleneck (an I/O node on the real Delta).
func Hotspot(rng *rand.Rand, net *Network, src int) int {
	if src != 0 && rng.Float64() < 0.2 {
		return 0
	}
	return Uniform(rng, net, src)
}

// NearestNeighbor sends to the next column neighbour (wrapping), the
// halo-exchange-like pattern of grid applications.
func NearestNeighbor(_ *rand.Rand, net *Network, src int) int {
	r, c := net.Coord(src)
	return net.NodeAt(r, (c+1)%net.cols)
}

// LoadResult summarizes an offered-load experiment.
type LoadResult struct {
	OfferedBps  float64 // per-node injection rate in bytes/s
	AcceptedBps float64 // delivered throughput per node
	AvgLatency  float64
	MaxLatency  float64
}

// OfferLoad injects packetsPerNode packets of the given size from every
// node with exponential inter-arrival times at the given per-node offered
// rate (bytes/s), runs the simulation and reports delivered throughput and
// latency. The experiment is deterministic for a fixed seed.
func OfferLoad(rows, cols int, linkBps, routerDelay float64,
	pattern Pattern, packetsPerNode, bytes int, offeredBps float64, seed int64) LoadResult {
	res, err := OfferLoadContext(context.Background(), rows, cols, linkBps, routerDelay,
		pattern, packetsPerNode, bytes, offeredBps, seed)
	if err != nil {
		// A background context never cancels; any error would be a bug.
		panic(err)
	}
	return res
}

// OfferLoadContext is OfferLoad with cancellation threaded into the
// packet simulation (see Network.RunContext).
func OfferLoadContext(ctx context.Context, rows, cols int, linkBps, routerDelay float64,
	pattern Pattern, packetsPerNode, bytes int, offeredBps float64, seed int64) (LoadResult, error) {
	if offeredBps <= 0 {
		panic("mesh: offered load must be positive")
	}
	net := New(rows, cols, linkBps, routerDelay)
	rng := rand.New(rand.NewSource(seed))
	meanGap := float64(bytes) / offeredBps
	for src := 0; src < net.Nodes(); src++ {
		t := 0.0
		for k := 0; k < packetsPerNode; k++ {
			t += rng.ExpFloat64() * meanGap
			net.Inject(src, pattern(rng, net, src), bytes, t)
		}
	}
	if err := net.RunContext(ctx); err != nil {
		return LoadResult{}, err
	}
	s := net.Stats()
	res := LoadResult{
		OfferedBps: offeredBps,
		AvgLatency: s.AvgLatency,
		MaxLatency: s.MaxLatency,
	}
	if s.Makespan > 0 {
		res.AcceptedBps = float64(s.TotalBytes) / s.Makespan / float64(net.Nodes())
	}
	return res, nil
}

// SaturationSweep measures latency and accepted throughput across a range
// of offered loads (fractions of link bandwidth), the standard
// interconnection-network characterization plot.
func SaturationSweep(rows, cols int, linkBps, routerDelay float64,
	pattern Pattern, fractions []float64, packetsPerNode, bytes int, seed int64) []LoadResult {
	out, err := SaturationSweepContext(context.Background(), rows, cols, linkBps, routerDelay,
		pattern, fractions, packetsPerNode, bytes, seed)
	if err != nil {
		panic(err) // background context never cancels
	}
	return out
}

// SaturationSweepContext is SaturationSweep with cancellation checked at
// every offered-load point and inside each point's packet simulation.
func SaturationSweepContext(ctx context.Context, rows, cols int, linkBps, routerDelay float64,
	pattern Pattern, fractions []float64, packetsPerNode, bytes int, seed int64) ([]LoadResult, error) {
	out := make([]LoadResult, 0, len(fractions))
	for _, f := range fractions {
		if f <= 0 {
			panic(fmt.Sprintf("mesh: non-positive load fraction %g", f))
		}
		r, err := OfferLoadContext(ctx, rows, cols, linkBps, routerDelay,
			pattern, packetsPerNode, bytes, f*linkBps, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
