package mesh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const (
	testBps   = 10e6 // 10 MB/s links
	testDelay = 1e-6 // 1 us per hop
)

func TestSinglePacketLatency(t *testing.T) {
	n := New(4, 4, testBps, testDelay)
	// 0 -> 3: three hops along the row
	p := n.Inject(0, 3, 1000, 0)
	n.Run()
	want := 3*testDelay + 1000/testBps
	if math.Abs(p.Latency()-want) > 1e-12 {
		t.Fatalf("latency = %g, want %g", p.Latency(), want)
	}
	if p.Hops != 3 {
		t.Fatalf("hops = %d, want 3", p.Hops)
	}
}

func TestRouteIsXYDimensionOrder(t *testing.T) {
	n := New(4, 4, testBps, testDelay)
	// from (0,0) to (2,3): move along columns first, then rows
	path := n.Route(n.NodeAt(0, 0), n.NodeAt(2, 3))
	want := []int{
		n.NodeAt(0, 0), n.NodeAt(0, 1), n.NodeAt(0, 2), n.NodeAt(0, 3),
		n.NodeAt(1, 3), n.NodeAt(2, 3),
	}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestYXRoutingOrder(t *testing.T) {
	n := New(4, 4, testBps, testDelay)
	n.UseYXRouting()
	// from (0,0) to (2,3): rows first under YX
	path := n.Route(n.NodeAt(0, 0), n.NodeAt(2, 3))
	want := []int{
		n.NodeAt(0, 0), n.NodeAt(1, 0), n.NodeAt(2, 0),
		n.NodeAt(2, 1), n.NodeAt(2, 2), n.NodeAt(2, 3),
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("YX path = %v, want %v", path, want)
		}
	}
}

func TestYXRoutingSameHopCount(t *testing.T) {
	xy := New(5, 7, testBps, testDelay)
	yx := New(5, 7, testBps, testDelay)
	yx.UseYXRouting()
	for src := 0; src < xy.Nodes(); src++ {
		for dst := 0; dst < xy.Nodes(); dst++ {
			if src == dst {
				continue
			}
			if len(xy.Route(src, dst)) != len(yx.Route(src, dst)) {
				t.Fatalf("hop count differs for %d->%d", src, dst)
			}
		}
	}
}

func TestUseYXAfterInjectPanics(t *testing.T) {
	n := New(2, 2, testBps, testDelay)
	n.Inject(0, 1, 100, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("UseYXRouting after Inject should panic")
		}
	}()
	n.UseYXRouting()
}

func TestRoutePathLengthIsManhattan(t *testing.T) {
	n := New(5, 7, testBps, testDelay)
	f := func(a, b uint16) bool {
		src := int(a) % n.Nodes()
		dst := int(b) % n.Nodes()
		if src == dst {
			return true
		}
		sr, sc := n.Coord(src)
		dr, dc := n.Coord(dst)
		manhattan := abs(sr-dr) + abs(sc-dc)
		return len(n.Route(src, dst))-1 == manhattan
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestContentionSerializesSharedLink(t *testing.T) {
	n := New(1, 3, testBps, testDelay)
	// both packets cross link 1->2
	p1 := n.Inject(0, 2, 10000, 0)
	p2 := n.Inject(1, 2, 10000, 0)
	n.Run()
	service := 10000 / testBps
	// One of them must be delayed by roughly the other's serialization.
	first, second := p1, p2
	if p2.DeliverAt < p1.DeliverAt {
		first, second = p2, p1
	}
	gap := second.DeliverAt - first.DeliverAt
	if gap < service*0.9 {
		t.Fatalf("no serialization on shared link: gap %g, service %g", gap, service)
	}
}

func TestDisjointPathsDoNotInterfere(t *testing.T) {
	n := New(2, 2, testBps, testDelay)
	// row 0: 0->1; row 1: 2->3 — no shared links
	p1 := n.Inject(0, 1, 10000, 0)
	p2 := n.Inject(2, 3, 10000, 0)
	n.Run()
	want := testDelay + 10000/testBps
	for _, p := range []*Packet{p1, p2} {
		if math.Abs(p.Latency()-want) > 1e-12 {
			t.Fatalf("disjoint packet delayed: %g vs %g", p.Latency(), want)
		}
	}
}

func TestInjectValidation(t *testing.T) {
	n := New(2, 2, testBps, testDelay)
	for _, fn := range []func(){
		func() { n.Inject(0, 0, 100, 0) },  // self-send
		func() { n.Inject(-1, 1, 100, 0) }, // bad src
		func() { n.Inject(0, 99, 100, 0) }, // bad dst
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestNewValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 4, testBps, testDelay) },
		func() { New(4, 4, 0, testDelay) },
		func() { New(4, 4, testBps, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestStatsBeforeRunPanics(t *testing.T) {
	n := New(2, 2, testBps, testDelay)
	n.Inject(0, 1, 100, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Stats before Run should panic")
		}
	}()
	n.Stats()
}

func TestStats(t *testing.T) {
	n := New(1, 4, testBps, testDelay)
	n.Inject(0, 1, 1000, 0)
	n.Inject(2, 3, 2000, 0)
	n.Run()
	s := n.Stats()
	if s.Delivered != 2 {
		t.Fatalf("delivered = %d", s.Delivered)
	}
	if s.TotalBytes != 3000 {
		t.Fatalf("bytes = %d", s.TotalBytes)
	}
	if s.AvgLatency <= 0 || s.MaxLatency < s.AvgLatency {
		t.Fatalf("latency stats inconsistent: %+v", s)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Stats {
		res := OfferLoad(4, 4, testBps, testDelay, Uniform, 20, 1000, 0.3*testBps, 7)
		return Stats{AvgLatency: res.AvgLatency, MaxLatency: res.MaxLatency}
	}
	a, b := run(), run()
	if a.AvgLatency != b.AvgLatency || a.MaxLatency != b.MaxLatency {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	// The canonical network characterization: average latency increases
	// (sharply near saturation) as offered load rises.
	lo := OfferLoad(4, 4, testBps, testDelay, Uniform, 50, 1000, 0.05*testBps, 3)
	hi := OfferLoad(4, 4, testBps, testDelay, Uniform, 50, 1000, 0.9*testBps, 3)
	if hi.AvgLatency <= lo.AvgLatency {
		t.Fatalf("latency did not grow with load: low %g, high %g",
			lo.AvgLatency, hi.AvgLatency)
	}
}

func TestTransposeSuffersMoreThanNearestNeighbor(t *testing.T) {
	// Transpose traffic crosses the bisection; nearest-neighbour does not.
	// At equal moderate load, transpose must see higher latency.
	tr := OfferLoad(8, 8, testBps, testDelay, Transpose, 30, 4000, 0.5*testBps, 5)
	nn := OfferLoad(8, 8, testBps, testDelay, NearestNeighbor, 30, 4000, 0.5*testBps, 5)
	if tr.AvgLatency <= nn.AvgLatency {
		t.Fatalf("transpose (%g) should beat nearest-neighbour (%g) in latency",
			tr.AvgLatency, nn.AvgLatency)
	}
}

func TestHotspotCongestsTarget(t *testing.T) {
	hs := OfferLoad(4, 4, testBps, testDelay, Hotspot, 40, 2000, 0.5*testBps, 9)
	un := OfferLoad(4, 4, testBps, testDelay, Uniform, 40, 2000, 0.5*testBps, 9)
	if hs.MaxLatency <= un.MaxLatency {
		t.Fatalf("hotspot max latency %g should exceed uniform %g",
			hs.MaxLatency, un.MaxLatency)
	}
}

func TestBisectionBandwidth(t *testing.T) {
	n := New(4, 8, testBps, testDelay)
	if got := n.BisectionBandwidthBps(); math.Abs(got-4*testBps) > 1 {
		t.Fatalf("bisection = %g, want %g", got, 4*testBps)
	}
	sq := New(16, 33, testBps, testDelay) // Delta shape
	if got := sq.BisectionBandwidthBps(); math.Abs(got-16*testBps) > 1 {
		t.Fatalf("Delta bisection = %g, want %g", got, 16*testBps)
	}
}

func TestSaturationSweepMonotoneOffered(t *testing.T) {
	rs := SaturationSweep(4, 4, testBps, testDelay, Uniform,
		[]float64{0.1, 0.3, 0.6}, 20, 1000, 11)
	if len(rs) != 3 {
		t.Fatalf("got %d results", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].OfferedBps <= rs[i-1].OfferedBps {
			t.Fatal("offered loads not increasing")
		}
	}
}

func TestTransposeNeverSelfSends(t *testing.T) {
	n := New(4, 4, testBps, testDelay)
	rng := rand.New(rand.NewSource(1))
	for src := 0; src < n.Nodes(); src++ {
		if d := Transpose(rng, n, src); d == src {
			t.Fatalf("transpose self-send at %d", src)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
