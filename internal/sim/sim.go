// Package sim is a minimal discrete-event simulation kernel: a priority
// queue of timestamped events and a clock. Both the mesh interconnect
// simulator and the wide-area network simulator are built on it.
//
// Events scheduled at the same instant fire in scheduling order (FIFO),
// which makes simulations deterministic without requiring callers to add
// epsilon jitter.
package sim

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback.
type event struct {
	at  float64
	seq uint64 // tie-break: FIFO among equal timestamps
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulator. The zero value is ready to use.
// Kernel is not safe for concurrent use.
type Kernel struct {
	pq   eventHeap
	now  float64
	seq  uint64
	nrun uint64
}

// Now returns the current simulation time in seconds.
func (k *Kernel) Now() float64 { return k.now }

// Processed returns the number of events executed so far.
func (k *Kernel) Processed() uint64 { return k.nrun }

// Pending returns the number of events not yet executed.
func (k *Kernel) Pending() int { return len(k.pq) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a modelling bug.
func (k *Kernel) At(t float64, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %g before now %g", t, k.now))
	}
	k.seq++
	heap.Push(&k.pq, event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d seconds from now. Negative d panics.
func (k *Kernel) After(d float64, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", d))
	}
	k.At(k.now+d, fn)
}

// Step executes the earliest pending event and returns true, or returns
// false if the queue is empty.
func (k *Kernel) Step() bool {
	if len(k.pq) == 0 {
		return false
	}
	e := heap.Pop(&k.pq).(event)
	k.now = e.at
	k.nrun++
	e.fn()
	return true
}

// Run executes events until the queue is empty.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t (if it is ahead of the last event). Events scheduled during execution
// are honoured if they fall within the horizon.
func (k *Kernel) RunUntil(t float64) {
	for len(k.pq) > 0 && k.pq[0].at <= t {
		k.Step()
	}
	if t > k.now {
		k.now = t
	}
}
