package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroValueReady(t *testing.T) {
	var k Kernel
	if k.Now() != 0 || k.Pending() != 0 || k.Processed() != 0 {
		t.Fatal("zero Kernel not pristine")
	}
	if k.Step() {
		t.Fatal("Step on empty kernel should return false")
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	var k Kernel
	var got []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		k.At(at, func() { got = append(got, at) })
	}
	k.Run()
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events out of order: %v", got)
	}
	if k.Now() != 5 {
		t.Fatalf("final time %g, want 5", k.Now())
	}
	if k.Processed() != 5 {
		t.Fatalf("processed %d, want 5", k.Processed())
	}
}

func TestTiesFireFIFO(t *testing.T) {
	var k Kernel
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(1.0, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order broken: %v", got)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	var k Kernel
	var at float64
	k.At(2, func() {
		k.After(3, func() { at = k.Now() })
	})
	k.Run()
	if at != 5 {
		t.Fatalf("After fired at %g, want 5", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var k Kernel
	k.At(5, func() {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At in the past should panic")
		}
	}()
	k.At(1, func() {})
}

func TestNegativeAfterPanics(t *testing.T) {
	var k Kernel
	defer func() {
		if recover() == nil {
			t.Fatal("negative After should panic")
		}
	}()
	k.After(-1, func() {})
}

func TestEventsCanScheduleEvents(t *testing.T) {
	var k Kernel
	depth := 0
	var recurse func()
	recurse = func() {
		if depth < 100 {
			depth++
			k.After(1, recurse)
		}
	}
	k.At(0, recurse)
	k.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if k.Now() != 100 {
		t.Fatalf("Now = %g, want 100", k.Now())
	}
}

func TestRunUntilHorizon(t *testing.T) {
	var k Kernel
	fired := map[float64]bool{}
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		k.At(at, func() { fired[at] = true })
	}
	k.RunUntil(2.5)
	if !fired[1] || !fired[2] || fired[3] || fired[4] {
		t.Fatalf("wrong events fired: %v", fired)
	}
	if k.Now() != 2.5 {
		t.Fatalf("Now = %g, want 2.5 (clock advances to horizon)", k.Now())
	}
	if k.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", k.Pending())
	}
	k.Run()
	if !fired[3] || !fired[4] {
		t.Fatal("remaining events lost after RunUntil")
	}
}

func TestRunUntilHonoursNewlyScheduled(t *testing.T) {
	var k Kernel
	var hit bool
	k.At(1, func() { k.After(0.5, func() { hit = true }) })
	k.RunUntil(2)
	if !hit {
		t.Fatal("event scheduled during RunUntil within horizon did not fire")
	}
}

func TestOrderingPropertyRandomSchedules(t *testing.T) {
	// Property: for any random set of timestamps, execution order is a
	// stable sort of the schedule order by time.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var k Kernel
		n := 50
		times := make([]float64, n)
		for i := range times {
			times[i] = float64(rng.Intn(10)) // many collisions
		}
		type rec struct {
			at  float64
			idx int
		}
		var got []rec
		for i, at := range times {
			i, at := i, at
			k.At(at, func() { got = append(got, rec{at, i}) })
		}
		k.Run()
		if len(got) != n {
			return false
		}
		for i := 1; i < n; i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].idx < got[i-1].idx {
				return false // FIFO violated among ties
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
