package nx

// Engine sharding: one simulation spread across host cores.
//
// Every process is its own goroutine, so the host scheduler already
// spreads the *bodies* of a run across cores. What serializes a phantom
// run on a multi-core host is the fused-collective engine: PR 5's
// deferred-settlement machinery guards every slot, rendezvous, cascade
// and wake list with a single runtime-wide mutex, so all 528 Delta
// processes funnel their collective traffic through one lock (and one
// set of cache lines).
//
// Config.Shards partitions that engine. Processes are split into
// contiguous rank ranges — the mesh is row-major, so contiguous ranks
// are whole mesh rows, and the LINPACK grid-row groups (the panel
// broadcast, the hottest collective) fall entirely inside one shard.
// Each shard owns a full engine instance: its own mutex, slot map,
// pooled cascade worklist, wake list, and the Proc structs (mailboxes
// included) of its rank range, allocated as one contiguous block. A
// member list that lives inside one shard rendezvouses entirely under
// that shard's lock; member lists that span shards (the LINPACK
// grid-column groups, batched swap wavefronts between distant rows) go
// through one extra "cross" engine instance — the sharded rendezvous
// layer. Cross-engine symbolic dependencies (a member entering a
// cross-shard collective while its release from an intra-shard one is
// still outstanding) are resolved by a hand-off protocol that never
// holds two engine locks at once; see fusedPost and drainCross in
// fused.go.
//
// The safety rail is the same bit-identity contract the fused engine
// shipped under: virtual times, ProcStats and traces are pure functions
// of the program and the machine model, so every shard count produces
// byte-identical output to Shards=1 (differential-tested in
// shard_test.go, cmp-gated in CI). Shards=1 is exactly the PR 5 engine:
// one instance, one lock.

import (
	"os"
	"strconv"
	"sync"
	"sync/atomic"
)

// engineShard is one shard of the fused-collective engine together with
// the processes homed on it. With Config.Shards <= 1 a run has exactly
// one shard and the engine behaves as the single-lock PR 5 design.
type engineShard struct {
	// mu guards this shard's slice of the fused-collective engine: its
	// slot map and every slot's and rendezvous' state, plus the pooled
	// cascade worklist and the wake list drained after mu drops.
	mu      sync.Mutex
	slots   map[string]*groupSlot
	cascade []*rendezvous
	wake    []*Proc

	// procs are the processes homed on this shard (a contiguous rank
	// range); the watchdog aggregates its counters shard by shard.
	procs []*Proc
}

// defaultShards is what Config.Shards == 0 resolves to. Like the
// collective mode, it is atomic so a CLI flag handler can set it once
// while worker pools are quiescent without racing the runtime's readers.
var defaultShards atomic.Int32

func init() {
	defaultShards.Store(1)
	// Worker processes inherit the parent's -sim-shards choice through
	// the environment (the shard executor re-execs the binary without
	// re-passing flags).
	if n, err := strconv.Atoi(os.Getenv("HPCC_SIM_SHARDS")); err == nil && n >= 1 {
		defaultShards.Store(int32(n))
	}
}

// SetDefaultShards sets how many engine shards a run with
// Config.Shards == 0 uses. It is meant to be called once at process
// start (the hpcc -sim-shards flag); mid-run calls affect only runs
// started afterwards. Values below 1 reset to 1.
func SetDefaultShards(n int) {
	if n < 1 {
		n = 1
	}
	defaultShards.Store(int32(n))
}

// DefaultShards returns what Config.Shards == 0 currently resolves to.
func DefaultShards() int {
	return int(defaultShards.Load())
}

// shardOf returns the index of the engine shard homing rank r: the
// balanced contiguous partition rank*S/n, precomputed per rank so the
// slot-homing decision and the constructor can never disagree.
func (rt *runtime) shardOf(r int) int {
	return int(rt.shardIdx[r])
}

// homeOf returns the engine instance a member list rendezvouses on: the
// homing shard when every member lives there, the cross engine
// otherwise. Called once per slot; the result is cached on the slot.
func (rt *runtime) homeOf(members []int) *engineShard {
	if len(rt.shards) == 1 {
		return rt.shards[0]
	}
	s := rt.shardOf(members[0])
	for _, m := range members[1:] {
		if rt.shardOf(m) != s {
			return rt.cross
		}
	}
	return rt.shards[s]
}

// adaptivePendLimit sizes a member's deferred-settlement window from the
// process count. The window bounds in-flight rendezvous per slot (memory)
// and how much work a cancelled run finishes before parking (latency),
// while deeper windows batch more collective chains per host park. Small
// runs keep a modest floor so tests still exercise deferral; large runs
// saturate at 64 — on cold E4 a 128-deep window measured ~15% slower
// than 64 (more live rendezvous per slot than the cache likes) while 32
// and 64 tie, so the cap sits at the shallowest depth that keeps the
// batching win.
func adaptivePendLimit(n int) int {
	l := n / 4
	if l < 16 {
		l = 16
	}
	if l > 64 {
		l = 64
	}
	return l
}
