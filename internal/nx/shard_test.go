package nx

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/trace"
)

// The shard differential suite: every program below runs once on the
// single-engine path (Shards=1, exactly the pre-sharding engine) and once
// per higher shard count, and all runs must agree bit for bit — exit
// clocks observed inside the program, final ProcStats, Makespan and trace
// spans. This is the contract that lets -sim-shards default to any value
// without changing a single reported number.

// runSharded runs body in fused mode with the given shard count and
// deferred-window override (0 = adaptive default).
func runSharded(t *testing.T, model machine.Model, procs, shards, window int, body func(p *Proc)) *Result {
	t.Helper()
	res, err := Run(Config{
		Model:       model,
		Procs:       procs,
		Collectives: CollectivesFused,
		Shards:      shards,
		pendLimit:   window,
	}, body)
	if err != nil {
		t.Fatalf("shards=%d window=%d run: %v", shards, window, err)
	}
	return res
}

// assertSameResult demands bitwise equality of everything a Result
// carries.
func assertSameResult(t *testing.T, want, got *Result, label string) {
	t.Helper()
	if want.Makespan != got.Makespan {
		t.Fatalf("%s: makespan %v, want %v (diff %g)", label, got.Makespan, want.Makespan, got.Makespan-want.Makespan)
	}
	if want.TotalFlops != got.TotalFlops || want.TotalBytes != got.TotalBytes || want.TotalMsgs != got.TotalMsgs {
		t.Fatalf("%s: totals %+v, want %+v", label, got, want)
	}
	for i := range want.Procs {
		if want.Procs[i] != got.Procs[i] {
			t.Fatalf("%s: proc %d stats:\n got  %+v\n want %+v", label, i, got.Procs[i], want.Procs[i])
		}
	}
}

// TestShardDifferentialRandomPrograms sweeps random collective scripts —
// member subsets spanning shard boundaries, a contiguous block group that
// is intra-shard at low counts and split at high ones, pairwise exchange
// batches, point-to-point traffic, per-member compute skew, mid-program
// clock samples — across shard counts and asserts bit-identical results
// against Shards=1.
func TestShardDifferentialRandomPrograms(t *testing.T) {
	shapes := [][2]int{{1, 2}, {2, 2}, {1, 7}, {3, 5}, {4, 8}, {2, 16}}
	for trial := 0; trial < 24; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			shape := shapes[trial%len(shapes)]
			model := diffModel(shape[0], shape[1])
			procs := model.Nodes()
			rng := rand.New(rand.NewSource(int64(4000 + trial)))
			members := randMembers(rng, procs)
			// block is a contiguous rank range: one shard's worth at some
			// counts, straddling a boundary at others.
			block := make([]int, 1+procs/3)
			for i := range block {
				block[i] = i
			}
			type op struct {
				kind   int
				root   int
				size   int
				exch   int // pairwise exchange batch length (0 = none)
				sample bool
				skews  []float64
			}
			ops := make([]op, 8+rng.Intn(8))
			for i := range ops {
				o := &ops[i]
				o.kind = rng.Intn(6)
				o.root = rng.Intn(len(members))
				o.size = rng.Intn(5)
				if rng.Intn(3) == 0 {
					o.exch = 1 + rng.Intn(5)
				}
				o.sample = rng.Intn(3) == 0
				o.skews = make([]float64, procs)
				for r := range o.skews {
					if rng.Intn(2) == 0 {
						o.skews[r] = rng.Float64() * 1e-3
					}
				}
			}

			run := func(shards int) ([]float64, [][]float64) {
				exits := make([][]float64, procs)
				body := func(p *Proc) {
					me := -1
					for i, m := range members {
						if m == p.Rank() {
							me = i
						}
					}
					var g, bg *Group
					if me >= 0 {
						g = p.Group(members)
					}
					if p.Rank() < len(block) {
						bg = p.Group(block)
					}
					for _, o := range ops {
						p.Compute(machine.OpVector, o.skews[p.Rank()]*1e9)
						if o.exch > 0 {
							if peer := p.Rank() ^ 1; peer < procs {
								p.ExchangeBatchPhantom(peer, Tag(5), 8*o.exch, o.exch)
							}
						}
						switch {
						case g != nil:
							switch o.kind {
							case 0:
								g.Barrier()
							case 1:
								g.BcastPhantom(o.root, 64+o.size)
							case 2:
								g.ReducePhantom(o.root, 8*(1+o.size))
							case 3:
								g.AllreducePhantom(o.root, 16)
							case 4:
								xs := []float64{float64(me) * 0.25, float64(o.size)}
								got := g.AllreduceFloats(xs, SumOp)
								exits[p.Rank()] = append(exits[p.Rank()], got...)
							case 5:
								g.BcastFlatPhantom(o.root, 32+o.size)
							}
						default:
							p.Compute(machine.OpScalar, 500)
						}
						if bg != nil && o.kind%2 == 0 {
							bg.BcastPhantom(0, 128)
						}
						if o.sample {
							exits[p.Rank()] = append(exits[p.Rank()], p.Now())
						}
					}
					exits[p.Rank()] = append(exits[p.Rank()], p.Now())
				}
				res := runSharded(t, model, procs, shards, 0, body)
				return []float64{res.Makespan}, exits
			}

			baseFlat, baseExits := run(1)
			for _, shards := range []int{2, 4, 8} {
				flat, exits := run(shards)
				if !reflect.DeepEqual(baseFlat, flat) {
					t.Fatalf("shards=%d makespan diverges: %v vs %v", shards, flat, baseFlat)
				}
				for r := 0; r < procs; r++ {
					if !reflect.DeepEqual(baseExits[r], exits[r]) {
						t.Fatalf("shards=%d proc %d exit clocks diverge:\n got  %v\n want %v",
							shards, r, exits[r], baseExits[r])
					}
				}
			}
		})
	}
}

// TestShardDifferentialResults pins the full Result (stats, totals,
// makespan) across shard counts on one fixed collective-heavy program.
func TestShardDifferentialResults(t *testing.T) {
	model := diffModel(4, 8)
	procs := model.Nodes()
	body := func(p *Proc) {
		w := p.World()
		var row *Group
		lo := (p.Rank() / 8) * 8
		rowMembers := []int{lo, lo + 1, lo + 2, lo + 3, lo + 4, lo + 5, lo + 6, lo + 7}
		row = p.Group(rowMembers)
		for it := 0; it < 30; it++ {
			p.Compute(machine.OpGemm, float64(1+p.Rank()%5)*1e4)
			row.BcastPhantom(it%8, 256)
			w.AllreducePhantom(0, 16)
			if it%4 == 0 {
				if peer := p.Rank() ^ 8; peer < procs {
					p.ExchangeBatchPhantom(peer, Tag(3), 64, 3)
				}
			}
		}
	}
	base := runSharded(t, model, procs, 1, 0, body)
	for _, shards := range []int{2, 4, 8} {
		got := runSharded(t, model, procs, shards, 0, body)
		assertSameResult(t, base, got, fmt.Sprintf("shards=%d", shards))
	}
}

// TestShardPendLimitWindows pins bit-identical virtual times across
// deferred-settlement window sizes — the adaptive maxPend must be a pure
// host-side batching knob.
func TestShardPendLimitWindows(t *testing.T) {
	model := diffModel(2, 8)
	procs := model.Nodes()
	body := func(p *Proc) {
		w := p.World()
		for it := 0; it < 200; it++ {
			p.Compute(machine.OpVector, float64(p.Rank()*100+it))
			w.BcastPhantom(it%procs, 64)
			w.ReducePhantom(0, 8)
			if it%17 == 0 {
				if peer := p.Rank() ^ 1; peer < procs {
					p.ExchangeBatchPhantom(peer, Tag(2), 16, 2)
				}
			}
		}
	}
	base := runSharded(t, model, procs, 1, 64, body)
	for _, window := range []int{1, 2, 7, 128, 1024} {
		for _, shards := range []int{1, 4} {
			got := runSharded(t, model, procs, shards, window, body)
			assertSameResult(t, base, got, fmt.Sprintf("window=%d shards=%d", window, shards))
		}
	}
}

// TestShardExchangeBatchDifferential: a fused exchange batch must be
// bit-identical to the hand-written SendPhantom/Recv loop on the tree
// path, on the single-engine fused path, and across shards (the exchange
// pair straddles the shard boundary at shards>=2).
func TestShardExchangeBatchDifferential(t *testing.T) {
	model := diffModel(2, 4)
	procs := model.Nodes()
	script := func(batched bool) func(p *Proc) {
		return func(p *Proc) {
			peer := procs - 1 - p.Rank() // distant peer: crosses shards
			w := p.World()
			for it := 0; it < 12; it++ {
				p.Compute(machine.OpVector, float64(1000*(p.Rank()+1)))
				if batched {
					p.ExchangeBatchPhantom(peer, Tag(9), 8*(1+it%3), 4)
				} else {
					for k := 0; k < 4; k++ {
						p.SendPhantom(peer, Tag(9), 8*(1+it%3))
						p.Recv(peer, Tag(9))
					}
				}
				w.AllreducePhantom(0, 16)
			}
		}
	}
	tree, err := Run(Config{Model: model, Collectives: CollectivesTree}, script(true))
	if err != nil {
		t.Fatalf("tree run: %v", err)
	}
	loop, err := Run(Config{Model: model, Collectives: CollectivesFused}, script(false))
	if err != nil {
		t.Fatalf("fused loop run: %v", err)
	}
	assertSameResult(t, tree, loop, "fused hand-written loop vs tree")
	for _, shards := range []int{1, 2, 4} {
		got := runSharded(t, model, procs, shards, 0, script(true))
		assertSameResult(t, tree, got, fmt.Sprintf("batched shards=%d", shards))
	}
}

// TestShardTraceDifferential: with a Recorder attached, every shard count
// must emit the identical span stream.
func TestShardTraceDifferential(t *testing.T) {
	model := diffModel(2, 4)
	run := func(shards int) []trace.Record {
		rec := trace.NewRecorder(model.Nodes())
		_, err := Run(Config{Model: model, Trace: rec, Collectives: CollectivesFused, Shards: shards}, func(p *Proc) {
			g := p.World()
			p.Compute(machine.OpGemm, float64(1e6*(p.Rank()+1)))
			g.Barrier()
			g.BcastPhantom(0, 1024)
			if peer := p.Rank() ^ 1; peer < p.Size() {
				p.ExchangeBatchPhantom(peer, Tag(1), 32, 2)
			}
			g.AllreducePhantom(0, 8)
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return rec.Records()
	}
	base := run(1)
	for _, shards := range []int{2, 4, 8} {
		got := run(shards)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("shards=%d trace records diverge: %d records, want %d", shards, len(got), len(base))
		}
	}
}

// TestShardCancelPromptlyStopsShards: cancelling the Ctx of a sharded run
// must unblock every shard's processes and return promptly — Run's own
// WaitGroup guarantees no process goroutine outlives the return.
func TestShardCancelPromptlyStopsShards(t *testing.T) {
	model := diffModel(4, 8)
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(30*time.Millisecond, cancel)
	start := time.Now()
	_, err := Run(Config{Model: model, Ctx: ctx, Collectives: CollectivesFused, Shards: 4}, func(p *Proc) {
		w := p.World()
		for {
			p.Compute(machine.OpVector, 100)
			w.AllreducePhantom(0, 8)
			w.Barrier() // settles: parks in the fused wait across shards
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancelled run took %v to return", d)
	}
}

// TestShardConfigValidation: negative shard counts are rejected; counts
// above the process count clamp rather than fail.
func TestShardConfigValidation(t *testing.T) {
	model := diffModel(1, 4)
	if _, err := Run(Config{Model: model, Shards: -3}, func(p *Proc) {}); err == nil {
		t.Fatal("Shards=-3: expected error")
	}
	res, err := Run(Config{Model: model, Shards: 64, Collectives: CollectivesFused}, func(p *Proc) {
		p.World().Barrier()
	})
	if err != nil || res == nil {
		t.Fatalf("Shards=64 on 4 procs: %v", err)
	}
}

// TestShardDefaultShards: the process-wide default drives Config.Shards=0
// and survives round-trips through the setter.
func TestShardDefaultShards(t *testing.T) {
	old := DefaultShards()
	defer SetDefaultShards(old)
	SetDefaultShards(3)
	if got := DefaultShards(); got != 3 {
		t.Fatalf("DefaultShards() = %d, want 3", got)
	}
	SetDefaultShards(0) // resets to 1
	if got := DefaultShards(); got != 1 {
		t.Fatalf("DefaultShards() after 0 = %d, want 1", got)
	}
}
