package nx

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/trace"
)

// tiny returns a small fast machine model for unit tests.
func tiny(rows, cols int) machine.Model {
	m := machine.Delta()
	m.Rows, m.Cols = rows, cols
	return m
}

func mustRun(t *testing.T, cfg Config, body func(*Proc)) *Result {
	t.Helper()
	res, err := Run(cfg, body)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunValidatesConfig(t *testing.T) {
	if _, err := Run(Config{}, func(*Proc) {}); err == nil {
		t.Fatal("empty config should fail validation")
	}
	if _, err := Run(Config{Model: tiny(2, 2), Procs: 5}, func(*Proc) {}); err == nil {
		t.Fatal("Procs > nodes should fail")
	}
	if _, err := Run(Config{Model: tiny(2, 2), Procs: -1}, func(*Proc) {}); err == nil {
		t.Fatal("negative Procs should fail")
	}
}

func TestRanksAndSize(t *testing.T) {
	seen := make([]bool, 4)
	var mu sync.Mutex
	mustRun(t, Config{Model: tiny(2, 2)}, func(p *Proc) {
		if p.Size() != 4 {
			t.Errorf("Size = %d, want 4", p.Size())
		}
		mu.Lock()
		seen[p.Rank()] = true
		mu.Unlock()
	})
	for r, ok := range seen {
		if !ok {
			t.Fatalf("rank %d never ran", r)
		}
	}
}

func TestSendRecvBytes(t *testing.T) {
	mustRun(t, Config{Model: tiny(1, 2)}, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 7, []byte("delta"))
		} else {
			m := p.Recv(0, 7)
			if string(m.Data) != "delta" {
				t.Errorf("payload = %q", m.Data)
			}
			if m.Src != 0 || m.Tag != 7 || m.Bytes != 5 {
				t.Errorf("metadata wrong: %+v", m)
			}
		}
	})
}

func TestSendCopiesPayload(t *testing.T) {
	mustRun(t, Config{Model: tiny(1, 2)}, func(p *Proc) {
		if p.Rank() == 0 {
			buf := []byte{1, 2, 3}
			p.Send(1, 0, buf)
			buf[0] = 99 // mutation after send must not be visible
		} else {
			m := p.Recv(0, 0)
			if m.Data[0] != 1 {
				t.Error("send did not copy payload")
			}
		}
	})
}

func TestSendRecvFloats(t *testing.T) {
	want := []float64{1.5, -2.25, 3.75}
	mustRun(t, Config{Model: tiny(1, 2)}, func(p *Proc) {
		if p.Rank() == 0 {
			p.SendFloats(1, 3, want)
		} else {
			got := p.RecvFloats(0, 3)
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("floats[%d] = %g, want %g", i, got[i], want[i])
				}
			}
		}
	})
}

func TestPhantomMessageCarriesSizeOnly(t *testing.T) {
	res := mustRun(t, Config{Model: tiny(1, 2)}, func(p *Proc) {
		if p.Rank() == 0 {
			p.SendPhantom(1, 0, 1<<20)
		} else {
			m := p.Recv(0, 0)
			if m.Data != nil || m.Floats != nil {
				t.Error("phantom message should carry no payload")
			}
			if m.Bytes != 1<<20 {
				t.Errorf("Bytes = %d, want 1MiB", m.Bytes)
			}
		}
	})
	if res.TotalBytes != 1<<20 {
		t.Fatalf("TotalBytes = %d, want 1MiB", res.TotalBytes)
	}
}

func TestFIFOPerSenderPair(t *testing.T) {
	const k = 50
	mustRun(t, Config{Model: tiny(1, 2)}, func(p *Proc) {
		if p.Rank() == 0 {
			for i := 0; i < k; i++ {
				p.SendFloats(1, 5, []float64{float64(i)})
			}
		} else {
			for i := 0; i < k; i++ {
				got := p.RecvFloats(0, 5)
				if got[0] != float64(i) {
					t.Fatalf("message %d arrived out of order: %g", i, got[0])
				}
			}
		}
	})
}

func TestTagMatching(t *testing.T) {
	mustRun(t, Config{Model: tiny(1, 2)}, func(p *Proc) {
		if p.Rank() == 0 {
			p.SendFloats(1, 1, []float64{1})
			p.SendFloats(1, 2, []float64{2})
		} else {
			// receive tag 2 first even though tag 1 was sent first
			if got := p.RecvFloats(0, 2); got[0] != 2 {
				t.Errorf("tag 2 payload = %g", got[0])
			}
			if got := p.RecvFloats(0, 1); got[0] != 1 {
				t.Errorf("tag 1 payload = %g", got[0])
			}
		}
	})
}

func TestWildcardRecv(t *testing.T) {
	mustRun(t, Config{Model: tiny(1, 3)}, func(p *Proc) {
		switch p.Rank() {
		case 0, 1:
			p.SendFloats(2, Tag(p.Rank()), []float64{float64(p.Rank())})
		case 2:
			got := map[int]bool{}
			for i := 0; i < 2; i++ {
				m := p.Recv(AnySrc, AnyTag)
				got[m.Src] = true
			}
			if !got[0] || !got[1] {
				t.Errorf("wildcard recv missed a source: %v", got)
			}
		}
	})
}

func TestProbe(t *testing.T) {
	mustRun(t, Config{Model: tiny(1, 2)}, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 4, []byte{1})
		} else {
			// spin until delivered (host-level), then probe
			for !p.Probe(0, 4) {
			}
			if p.Probe(0, 5) {
				t.Error("probe matched wrong tag")
			}
			p.Recv(0, 4)
			if p.Probe(AnySrc, AnyTag) {
				t.Error("probe matched after queue drained")
			}
		}
	})
}

func TestVirtualTimePointToPoint(t *testing.T) {
	model := tiny(1, 2)
	res := mustRun(t, Config{Model: model}, func(p *Proc) {
		if p.Rank() == 0 {
			p.SendFloats(1, 0, make([]float64, 1000))
		} else {
			p.RecvFloats(0, 0)
		}
	})
	// Receiver finish time must equal the full modelled point-to-point time.
	want := model.PointToPointTime(0, 1, 8000)
	got := res.Procs[1].Finish
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("receiver finish = %g, want %g", got, want)
	}
	if res.Makespan != got {
		t.Fatalf("makespan = %g, want receiver finish %g", res.Makespan, got)
	}
}

func TestVirtualTimeScalesWithHops(t *testing.T) {
	model := tiny(1, 8)
	timeFor := func(dst int) float64 {
		res := mustRun(t, Config{Model: model}, func(p *Proc) {
			if p.Rank() == 0 {
				p.SendPhantom(dst, 0, 0)
			} else if p.Rank() == dst {
				p.Recv(0, 0)
			}
		})
		return res.Procs[dst].Finish
	}
	near, far := timeFor(1), timeFor(7)
	wantDiff := 6 * model.Net.PerHop
	if math.Abs((far-near)-wantDiff) > 1e-12 {
		t.Fatalf("hop scaling: far-near = %g, want %g", far-near, wantDiff)
	}
}

func TestComputeAdvancesClockAndCountsFlops(t *testing.T) {
	model := tiny(1, 1)
	flops := model.Compute.GemmMFlops * 1e6 // exactly 1 virtual second
	res := mustRun(t, Config{Model: model}, func(p *Proc) {
		p.Compute(machine.OpGemm, flops)
	})
	if math.Abs(res.Makespan-1) > 1e-9 {
		t.Fatalf("makespan = %g, want 1", res.Makespan)
	}
	if res.TotalFlops != flops {
		t.Fatalf("flops = %g", res.TotalFlops)
	}
	if math.Abs(res.GFlops()-flops/1e9) > 1e-9 {
		t.Fatalf("GFlops = %g, want %g", res.GFlops(), flops/1e9)
	}
}

func TestElapse(t *testing.T) {
	res := mustRun(t, Config{Model: tiny(1, 1)}, func(p *Proc) {
		p.Elapse(2.5)
		p.Elapse(-1) // ignored
	})
	if math.Abs(res.Makespan-2.5) > 1e-12 {
		t.Fatalf("makespan = %g, want 2.5", res.Makespan)
	}
}

func TestRecvWaitAccounted(t *testing.T) {
	model := tiny(1, 2)
	res := mustRun(t, Config{Model: model}, func(p *Proc) {
		if p.Rank() == 0 {
			p.Compute(machine.OpScalar, 6e6) // 1 virtual second of work first
			p.SendPhantom(1, 0, 0)
		} else {
			p.Recv(0, 0) // immediately blocks; waits ~1s of virtual time
		}
	})
	if res.Procs[1].RecvWait < 0.9 {
		t.Fatalf("RecvWait = %g, want ~1s", res.Procs[1].RecvWait)
	}
}

func TestSendToSelf(t *testing.T) {
	mustRun(t, Config{Model: tiny(1, 1)}, func(p *Proc) {
		p.SendFloats(0, 0, []float64{42})
		if got := p.RecvFloats(0, 0); got[0] != 42 {
			t.Errorf("self-send payload = %g", got[0])
		}
	})
}

func TestInvalidDestinationPanics(t *testing.T) {
	_, err := Run(Config{Model: tiny(1, 2)}, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(5, 0, nil)
		} else {
			p.Recv(0, 0)
		}
	})
	var pe *PanicError
	if !asErr(err, &pe) {
		t.Fatalf("want PanicError, got %v", err)
	}
}

func TestReservedTagPanics(t *testing.T) {
	_, err := Run(Config{Model: tiny(1, 1)}, func(p *Proc) {
		p.Send(0, TagUserMax, nil)
	})
	var pe *PanicError
	if !asErr(err, &pe) {
		t.Fatalf("want PanicError for reserved tag, got %v", err)
	}
}

func TestBodyPanicPropagates(t *testing.T) {
	_, err := Run(Config{Model: tiny(2, 2)}, func(p *Proc) {
		if p.Rank() == 3 {
			panic("boom")
		}
		// everyone else blocks forever; the abort must unblock them
		p.Recv(AnySrc, AnyTag)
	})
	var pe *PanicError
	if !asErr(err, &pe) {
		t.Fatalf("want PanicError, got %v", err)
	}
	if pe.Rank != 3 || !strings.Contains(pe.Error(), "boom") {
		t.Fatalf("wrong panic error: %v", pe)
	}
}

func TestDeadlockDetected(t *testing.T) {
	_, err := Run(Config{Model: tiny(1, 2), DeadlockAfter: 200 * time.Millisecond},
		func(p *Proc) {
			// classic cycle: both receive before sending
			p.Recv(1-p.Rank(), 0)
		})
	var de *DeadlockError
	if !asErr(err, &de) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if len(de.Waiters) != 2 {
		t.Fatalf("waiters = %v, want 2 entries", de.Waiters)
	}
}

func TestNoFalseDeadlockUnderLoad(t *testing.T) {
	// A run that is slow but progressing must not trip the watchdog.
	_, err := Run(Config{Model: tiny(1, 2), DeadlockAfter: 100 * time.Millisecond},
		func(p *Proc) {
			for i := 0; i < 20; i++ {
				if p.Rank() == 0 {
					time.Sleep(20 * time.Millisecond) // host-slow sender
					p.SendPhantom(1, 0, 0)
				} else {
					p.Recv(0, 0)
				}
			}
		})
	if err != nil {
		t.Fatalf("false positive deadlock: %v", err)
	}
}

func TestTraceRecorded(t *testing.T) {
	rec := trace.NewRecorder(2)
	res := mustRun(t, Config{Model: tiny(1, 2), Trace: rec}, func(p *Proc) {
		if p.Rank() == 0 {
			p.Compute(machine.OpGemm, 1e6)
			p.SendPhantom(1, 0, 100)
		} else {
			p.Recv(0, 0)
		}
	})
	totals := rec.PhaseTotals(-1)
	if totals[trace.PhaseCompute] <= 0 {
		t.Fatal("no compute recorded")
	}
	if totals[trace.PhaseRecvWait] <= 0 {
		t.Fatal("no recv wait recorded")
	}
	if res.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
}

func TestIRecvOverlapHidesFlightTime(t *testing.T) {
	// Posting the receive early and computing before Wait must hide the
	// message flight time; receiving first and computing afterwards pays
	// both in full. This is the overlap idiom NX applications relied on.
	model := tiny(1, 2)
	const flops = 6e6 // 1 virtual second of scalar work

	overlapped := mustRun(t, Config{Model: model}, func(p *Proc) {
		if p.Rank() == 0 {
			p.SendPhantom(1, 0, 10_000_000) // ~0.83 s of serialization
		} else {
			req := p.IRecv(0, 0)
			p.Compute(machine.OpScalar, flops)
			req.Wait()
		}
	})
	sequential := mustRun(t, Config{Model: model}, func(p *Proc) {
		if p.Rank() == 0 {
			p.SendPhantom(1, 0, 10_000_000)
		} else {
			p.Recv(0, 0)
			p.Compute(machine.OpScalar, flops)
		}
	})
	if overlapped.Makespan >= sequential.Makespan {
		t.Fatalf("overlap (%g) should beat sequential (%g)",
			overlapped.Makespan, sequential.Makespan)
	}
	// the win should be roughly the compute duration (1 s)
	gain := sequential.Makespan - overlapped.Makespan
	if gain < 0.5 {
		t.Fatalf("overlap gain %g too small", gain)
	}
}

func TestWaitTwicePanics(t *testing.T) {
	_, err := Run(Config{Model: tiny(1, 2)}, func(p *Proc) {
		if p.Rank() == 0 {
			p.SendPhantom(1, 0, 0)
		} else {
			req := p.IRecv(0, 0)
			req.Wait()
			req.Wait()
		}
	})
	var pe *PanicError
	if !asErr(err, &pe) {
		t.Fatalf("want PanicError, got %v", err)
	}
}

func TestHockneyFitRecoversModelParameters(t *testing.T) {
	// End-to-end validation of the timing model: measure simulated one-way
	// times across message sizes, fit the Hockney model (package stats),
	// and recover the machine parameters that generated them.
	model := tiny(1, 2)
	sizes := []float64{64, 512, 4096, 32768, 262144}
	times := make([]float64, len(sizes))
	for i, sz := range sizes {
		n := int(sz)
		res := mustRun(t, Config{Model: model}, func(p *Proc) {
			if p.Rank() == 0 {
				p.SendPhantom(1, 0, n)
			} else {
				p.Recv(0, 0)
			}
		})
		times[i] = res.Procs[1].Finish
	}
	fit, err := stats.FitHockney(sizes, times)
	if err != nil {
		t.Fatal(err)
	}
	wantLat := model.Net.SendOverhead + model.Net.Latency + model.Net.PerHop + model.Net.RecvOverhead
	wantBW := 1 / model.Net.ByteTime
	if stats.RelErr(fit.Latency, wantLat) > 1e-6 {
		t.Fatalf("fitted latency %g, model %g", fit.Latency, wantLat)
	}
	if stats.RelErr(fit.BandwidthBps, wantBW) > 1e-6 {
		t.Fatalf("fitted bandwidth %g, model %g", fit.BandwidthBps, wantBW)
	}
}

// asErr is errors.As without importing errors in every call site.
func asErr(err error, target any) bool {
	switch tp := target.(type) {
	case **PanicError:
		pe, ok := err.(*PanicError)
		if ok {
			*tp = pe
		}
		return ok
	case **DeadlockError:
		de, ok := err.(*DeadlockError)
		if ok {
			*tp = de
		}
		return ok
	}
	return false
}
