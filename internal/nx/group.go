package nx

import (
	"fmt"
	"hash/fnv"
)

// Group is an ordered set of process ranks that performs collective
// operations, analogous to NX process groups (and MPI communicators). Every
// member must construct the group with the identical member list and then
// call the same sequence of collective operations.
//
// Collective messages use reserved tags derived from a hash of the member
// list and a per-group operation counter, so collectives on disjoint or
// row/column-overlapping groups do not interfere. Two *different* groups
// with the same member list used concurrently from the same process would
// collide; construct one group per concurrent use instead.
type Group struct {
	p       *Proc
	members []int
	me      int // index of p.rank within members
	base    Tag
	seq     Tag
	slot    *groupSlot // fused-collective rendezvous anchor, resolved lazily
}

// payload is the value a collective moves around: a byte slice, a float
// slice, or a phantom byte count.
type payload struct {
	data   []byte
	floats []float64
	bytes  int
}

func (pl payload) send(p *Proc, dst int, tag Tag) {
	p.sendRaw(dst, tag, pl.data, pl.floats, pl.bytes)
}

func payloadOf(m Msg) payload {
	return payload{data: m.Data, floats: m.Floats, bytes: m.Bytes}
}

// Group creates a collective group from an ordered member list. The calling
// process must be a member; members must be valid, distinct ranks.
func (p *Proc) Group(members []int) *Group {
	if len(members) == 0 {
		panic("nx: empty group")
	}
	me := -1
	seen := make(map[int]bool, len(members))
	h := fnv.New32a()
	var buf [4]byte
	for i, m := range members {
		if m < 0 || m >= p.size {
			panic(fmt.Sprintf("nx: group member %d out of range [0,%d)", m, p.size))
		}
		if seen[m] {
			panic(fmt.Sprintf("nx: duplicate group member %d", m))
		}
		seen[m] = true
		if m == p.rank {
			me = i
		}
		buf[0], buf[1], buf[2], buf[3] = byte(m), byte(m>>8), byte(m>>16), byte(m>>24)
		h.Write(buf[:])
	}
	if me < 0 {
		panic(fmt.Sprintf("nx: rank %d constructing group it is not a member of", p.rank))
	}
	base := TagUserMax + Tag(h.Sum32()%(1<<19))<<8
	return &Group{p: p, members: append([]int(nil), members...), me: me, base: base}
}

// World returns the group of all processes in rank order.
func (p *Proc) World() *Group {
	members := make([]int, p.size)
	for i := range members {
		members[i] = i
	}
	return p.Group(members)
}

// Size returns the number of group members.
func (g *Group) Size() int { return len(g.members) }

// Rank returns the calling process's index within the group.
func (g *Group) Rank() int { return g.me }

// Members returns a copy of the ordered member list.
func (g *Group) Members() []int {
	return append([]int(nil), g.members...)
}

// nextTag advances the per-group collective sequence number.
func (g *Group) nextTag() Tag {
	t := g.base + g.seq%256
	g.seq++
	return t
}

func (g *Group) global(idx int) int { return g.members[idx] }

// Barrier blocks until every group member has entered it, using the
// dissemination algorithm (ceil(log2 n) zero-byte rounds).
func (g *Group) Barrier() {
	n := len(g.members)
	if n == 1 {
		return
	}
	if g.p.fused {
		// Not deferred: Barrier keeps its host-side rendezvous so user
		// code may rely on it for memory ordering, as on the tree path.
		g.fusedCollective(fusedBarrier, 0, 0, payload{}, nil, false)
		return
	}
	tag := g.nextTag()
	for k := 1; k < n; k <<= 1 {
		to := g.global((g.me + k) % n)
		from := g.global((g.me - k%n + n) % n)
		g.p.sendRaw(to, tag, nil, nil, 0)
		g.p.recvRaw(from, tag)
	}
}

// bcast runs a binomial-tree broadcast of pl from the group-rank root and
// returns the payload (the root's own on the root). phantom marks the
// payload-free variant, whose fused release may be deferred (no member
// consumes a result).
func (g *Group) bcast(root int, pl payload, phantom bool) payload {
	n := len(g.members)
	if root < 0 || root >= n {
		panic(fmt.Sprintf("nx: bcast root %d out of range [0,%d)", root, n))
	}
	if n == 1 {
		return pl
	}
	if g.p.fused {
		return g.fusedCollective(fusedBcast, root, pl.bytes, pl, nil, phantom)
	}
	tag := g.nextTag()
	vrank := (g.me - root + n) % n
	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			src := g.global(((vrank - mask) + root) % n)
			pl = payloadOf(g.p.recvRaw(src, tag))
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vrank+mask < n {
			dst := g.global(((vrank + mask) + root) % n)
			pl.send(g.p, dst, tag)
		}
		mask >>= 1
	}
	return pl
}

// Bcast broadcasts data from the member with group rank root; every member
// returns the broadcast bytes.
func (g *Group) Bcast(root int, data []byte) []byte {
	var pl payload
	if g.me == root {
		pl = payload{data: append([]byte(nil), data...), bytes: len(data)}
	}
	return g.bcast(root, pl, false).data
}

// BcastFloats broadcasts xs from the member with group rank root.
func (g *Group) BcastFloats(root int, xs []float64) []float64 {
	var pl payload
	if g.me == root {
		cp := append([]float64(nil), xs...)
		pl = payload{floats: cp, bytes: 8 * len(cp)}
	}
	return g.bcast(root, pl, false).floats
}

// BcastPhantom broadcasts a payload-free message accounted as nbytes.
func (g *Group) BcastPhantom(root, nbytes int) {
	var pl payload
	if g.me == root {
		pl = payload{bytes: nbytes}
	}
	g.bcast(root, pl, true)
}

// BcastFlatPhantom models a naive linear broadcast (the root sends to each
// member in turn) of nbytes. It exists as the ablation baseline for the
// binomial-tree algorithm: O(P) serialized sends versus O(log P) rounds.
func (g *Group) BcastFlatPhantom(root, nbytes int) {
	n := len(g.members)
	if n == 1 {
		return
	}
	if g.p.fused {
		g.fusedCollective(fusedFlatBcast, root, nbytes, payload{}, nil, true)
		return
	}
	tag := g.nextTag()
	if g.me == root {
		for i := 0; i < n; i++ {
			if i == root {
				continue
			}
			g.p.sendRaw(g.global(i), tag, nil, nil, nbytes)
		}
		return
	}
	g.p.recvRaw(g.global(root), tag)
}

// ReduceOp combines a partial result into an accumulator, elementwise over
// equal-length slices. It must be associative and commutative.
type ReduceOp func(acc, in []float64)

// SumOp accumulates elementwise sums.
func SumOp(acc, in []float64) {
	for i := range acc {
		acc[i] += in[i]
	}
}

// MaxOp accumulates elementwise maxima.
func MaxOp(acc, in []float64) {
	for i := range acc {
		if in[i] > acc[i] {
			acc[i] = in[i]
		}
	}
}

// MinOp accumulates elementwise minima.
func MinOp(acc, in []float64) {
	for i := range acc {
		if in[i] < acc[i] {
			acc[i] = in[i]
		}
	}
}

// ReduceFloats reduces xs across the group with op on a binomial tree. The
// member with group rank root returns the reduced slice; others return nil.
// All members must pass slices of identical length. The combination order is
// fixed by the tree, so results are bitwise reproducible run to run.
func (g *Group) ReduceFloats(root int, xs []float64, op ReduceOp) []float64 {
	n := len(g.members)
	if root < 0 || root >= n {
		panic(fmt.Sprintf("nx: reduce root %d out of range [0,%d)", root, n))
	}
	acc := append([]float64(nil), xs...)
	if n == 1 {
		return acc
	}
	if g.p.fused {
		return g.fusedCollective(fusedReduceFloats, root, 0, payload{floats: acc}, op, false).floats
	}
	tag := g.nextTag()
	vrank := (g.me - root + n) % n
	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			dst := g.global(((vrank - mask) + root) % n)
			g.p.sendRaw(dst, tag, nil, acc, 8*len(acc))
			acc = nil
			break
		}
		if vrank+mask < n {
			src := g.global(((vrank + mask) + root) % n)
			in := g.p.recvRaw(src, tag).Floats
			if len(in) != len(acc) {
				panic(fmt.Sprintf("nx: reduce length mismatch: %d vs %d", len(in), len(acc)))
			}
			op(acc, in)
		}
		mask <<= 1
	}
	return acc
}

// AllreduceFloats reduces xs across the group and broadcasts the result, so
// every member returns the reduced slice.
func (g *Group) AllreduceFloats(xs []float64, op ReduceOp) []float64 {
	if g.p.fused && len(g.members) > 1 {
		// One rendezvous replays the reduce tree and the broadcast tree
		// back to back; the copy mirrors ReduceFloats' accumulator copy.
		acc := append([]float64(nil), xs...)
		return g.fusedCollective(fusedAllreduceFloats, 0, 0, payload{floats: acc}, op, false).floats
	}
	red := g.ReduceFloats(0, xs, op)
	return g.BcastFloats(0, red)
}

// ReducePhantom models the communication of a reduce of nbytes payloads
// without moving data.
func (g *Group) ReducePhantom(root, nbytes int) {
	n := len(g.members)
	if n == 1 {
		return
	}
	if g.p.fused {
		g.fusedCollective(fusedReducePhantom, root, nbytes, payload{}, nil, true)
		return
	}
	tag := g.nextTag()
	vrank := (g.me - root + n) % n
	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			dst := g.global(((vrank - mask) + root) % n)
			g.p.sendRaw(dst, tag, nil, nil, nbytes)
			break
		}
		if vrank+mask < n {
			src := g.global(((vrank + mask) + root) % n)
			g.p.recvRaw(src, tag)
		}
		mask <<= 1
	}
}

// AllreducePhantom models ReducePhantom immediately followed by
// BcastPhantom from the same root — the pivot-exchange pattern of the
// distributed LU factorization. The tree path is exactly that pair of
// collectives; the fused path computes both trees in a single rendezvous,
// halving the synchronizations of the hottest collective sequence while
// producing bit-identical virtual times.
func (g *Group) AllreducePhantom(root, nbytes int) {
	if g.p.fused && len(g.members) > 1 {
		g.fusedCollective(fusedAllreducePhantom, root, nbytes, payload{}, nil, true)
		return
	}
	g.ReducePhantom(root, nbytes)
	g.BcastPhantom(root, nbytes)
}

// MaxLoc returns the maximum of v across the group and the group rank that
// holds it (lowest rank wins ties). Every member returns the same pair.
// It is the pivot-search primitive of the distributed LU factorization.
func (g *Group) MaxLoc(v float64) (float64, int) {
	out := g.AllreduceFloats([]float64{v, float64(g.me)}, maxLocOp)
	return out[0], int(out[1])
}

// maxLocOp combines (value, index) pairs keeping the larger value, with the
// smaller index breaking ties.
func maxLocOp(acc, in []float64) {
	for i := 0; i+1 < len(acc); i += 2 {
		if in[i] > acc[i] || (in[i] == acc[i] && in[i+1] < acc[i+1]) {
			acc[i], acc[i+1] = in[i], in[i+1]
		}
	}
}

// GatherFloats gathers each member's xs to the member with group rank root,
// concatenated in group order. Only the root returns a non-nil slice.
// Members may contribute slices of different lengths.
func (g *Group) GatherFloats(root int, xs []float64) []float64 {
	n := len(g.members)
	if root < 0 || root >= n {
		panic(fmt.Sprintf("nx: gather root %d out of range [0,%d)", root, n))
	}
	if g.p.fused {
		pl := payload{floats: xs}
		if g.me != root {
			// The tree path copies at send time; keep the same ownership.
			pl = payload{floats: append([]float64(nil), xs...)}
		}
		return g.fusedCollective(fusedGather, root, 0, pl, nil, false).floats
	}
	tag := g.nextTag()
	if g.me != root {
		g.p.sendRaw(g.global(root), tag, nil, append([]float64(nil), xs...), 8*len(xs))
		return nil
	}
	parts := make([][]float64, n)
	parts[root] = xs
	total := len(xs)
	for i := 0; i < n; i++ {
		if i == root {
			continue
		}
		in := g.p.recvRaw(g.global(i), tag).Floats
		parts[i] = in
		total += len(in)
	}
	out := make([]float64, 0, total)
	for _, part := range parts {
		out = append(out, part...)
	}
	return out
}

// AllGatherFloats gathers equal-length contributions from every member and
// broadcasts the concatenation, so each member returns the full vector.
func (g *Group) AllGatherFloats(xs []float64) []float64 {
	all := g.GatherFloats(0, xs)
	return g.BcastFloats(0, all)
}
