package nx

import (
	"testing"

	"repro/internal/machine"
)

// benchCollectives runs the LINPACK per-column collective pattern (a
// 16-member phantom pivot allreduce plus two phantom broadcasts) many
// times per run — the shape that dominates cold E4 host time — under the
// given collective mode.
func benchCollectives(b *testing.B, mode CollectiveMode, members, iters int) {
	model := machine.Delta()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := Run(Config{Model: model, Procs: members, Collectives: mode}, func(p *Proc) {
			g := p.World()
			for it := 0; it < iters; it++ {
				g.AllreducePhantom(0, 16)
				g.BcastPhantom(0, 16)
				g.BcastPhantom(it%members, 128)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollectivesFused(b *testing.B) { benchCollectives(b, CollectivesFused, 16, 2000) }
func BenchmarkCollectivesTree(b *testing.B)  { benchCollectives(b, CollectivesTree, 16, 2000) }
