package nx

import (
	"testing"

	"repro/internal/machine"
)

func benchModel(rows, cols int) machine.Model {
	m := machine.Delta()
	m.Rows, m.Cols = rows, cols
	return m
}

// BenchmarkPingPong measures the host cost of simulated message exchange:
// how many simulated messages per second the runtime sustains.
func BenchmarkPingPong(b *testing.B) {
	res, err := Run(Config{Model: benchModel(1, 2)}, func(p *Proc) {
		for i := 0; i < b.N; i++ {
			if p.Rank() == 0 {
				p.SendPhantom(1, 0, 1024)
				p.Recv(1, 1)
			} else {
				p.Recv(0, 0)
				p.SendPhantom(0, 1, 1024)
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	_ = res
}

// BenchmarkBarrier528 measures a full-machine barrier on the Delta model:
// the per-operation host cost of coordinating 528 goroutine nodes.
func BenchmarkBarrier528(b *testing.B) {
	res, err := Run(Config{Model: machine.Delta()}, func(p *Proc) {
		g := p.World()
		for i := 0; i < b.N; i++ {
			g.Barrier()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.Makespan/float64(b.N)*1e6, "simulated-us/op")
}

// BenchmarkAllreduce528 measures a 16-element allreduce across the full
// Delta model.
func BenchmarkAllreduce528(b *testing.B) {
	x := make([]float64, 16)
	res, err := Run(Config{Model: machine.Delta()}, func(p *Proc) {
		g := p.World()
		for i := 0; i < b.N; i++ {
			g.AllreduceFloats(x, SumOp)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.Makespan/float64(b.N)*1e6, "simulated-us/op")
}
