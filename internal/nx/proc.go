package nx

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Proc is one simulated process. All methods must be called from the
// goroutine Run started for it.
type Proc struct {
	rank  int
	size  int
	model machine.Model
	clock vtime.Clock
	mbox  mailbox
	rt    *runtime
	stats ProcStats
	tview *trace.ProcView
	fused bool // run-wide collective mode (see Config.Collectives)

	// Deferred-settlement state (fused mode; owner-goroutine only except
	// where noted). pend is the chain of rendezvous whose releases this
	// process has not yet applied; while it is non-empty the clock is
	// stale and local advances accumulate in deltaBuf (deltaBuf[deltaLo:]
	// are the advances since the last entry was posted). deltaBuf entries
	// up to deltaLo are read by resolvers on other goroutines; the owner
	// only appends, and resets only after every reader is done (settle).
	pend     []pendRef
	deltaBuf []float64
	deltaLo  int
	// wakeCh is this process's private settle wakeup (capacity 1): fused
	// completions and run teardown signal it, so woken settlers never
	// re-acquire the engine lock.
	wakeCh chan struct{}
	// crossBuf is this goroutine's scratch of cross-engine dependencies
	// awaiting resolution (see drainCross); exchSlots caches per-peer
	// exchange rendezvous anchors (see ExchangeBatchPhantom).
	crossBuf  []fusedDep
	exchSlots map[int]*groupSlot

	// Hot-path caches derived from model at construction. Method calls on
	// machine.Model copy the whole struct (~100 bytes) per call, which at
	// Delta scale is millions of copies per phantom run; these scalars
	// make sends and compute charges copy-free while producing bit-
	// identical virtual times (same formulas, same operand values).
	meshCols     int
	myRow, myCol int
	rates        [numRateOps]float64 // machine.Compute.Rate(op) per op
}

// numRateOps covers the machine.Op classes (gemm, panel, vector, scalar).
// An op outside the cached range falls back to the model's own method.
const numRateOps = 4

// initCaches fills the derived hot-path fields from the model.
func (p *Proc) initCaches() {
	p.meshCols = p.model.Cols
	p.myRow, p.myCol = p.model.Coord(p.rank)
	for op := 0; op < numRateOps; op++ {
		p.rates[op] = p.model.Compute.Rate(machine.Op(op))
	}
}

// hops is machine.Model.Hops for this process's own rank without the
// receiver copy: the Manhattan distance of dimension-order routing.
func (p *Proc) hops(dst int) int {
	dr, dc := dst/p.meshCols, dst%p.meshCols
	return iabs(p.myRow-dr) + iabs(p.myCol-dc)
}

// computeTime is machine.Model.ComputeTime without the receiver copy. The
// expression mirrors the model's exactly, so charges are bit-identical.
func (p *Proc) computeTime(op machine.Op, flops float64) float64 {
	if flops <= 0 {
		return 0
	}
	if op < 0 || int(op) >= numRateOps {
		return p.model.ComputeTime(op, flops)
	}
	return flops / (p.rates[op] * 1e6)
}

func iabs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Rank returns this process's rank in [0, Size()).
func (p *Proc) Rank() int { return p.rank }

// Size returns the number of processes in the run.
func (p *Proc) Size() int { return p.size }

// Model returns the machine model of the run.
func (p *Proc) Model() machine.Model { return p.model }

// Now returns the process's current virtual time in seconds. It settles
// any deferred collective releases first, so the value reflects every
// operation the process has performed.
func (p *Proc) Now() float64 {
	if len(p.pend) > 0 {
		p.settle()
	}
	return p.clock.Now()
}

// Compute charges flops floating-point operations of the given class to the
// local clock through the machine model. Non-positive charges are exact
// no-ops (zero duration, zero flops, and the trace drops zero-width
// spans), so they return before touching the clock.
func (p *Proc) Compute(op machine.Op, flops float64) {
	if flops <= 0 {
		return
	}
	d := p.computeTime(op, flops)
	if len(p.pend) > 0 {
		// Deferred settlement: the clock is symbolic until the pending
		// collective releases resolve, so record the advance for the
		// resolver to replay in order. Tracing disables deferral
		// (lazyOK), so no span is lost here.
		p.deltaBuf = append(p.deltaBuf, d)
		p.stats.Flops += flops
		p.stats.ComputeTime += d
		return
	}
	start := p.clock.Now()
	p.clock.Advance(d)
	p.stats.Flops += flops
	p.stats.ComputeTime += d
	p.tview.Add(trace.PhaseCompute, start, p.clock.Now())
}

// Elapse advances the local clock by a fixed duration (non-flop work such as
// memory movement or I/O). Negative durations are ignored.
func (p *Proc) Elapse(seconds float64) {
	if len(p.pend) > 0 {
		p.deltaBuf = append(p.deltaBuf, seconds)
		if seconds > 0 {
			p.stats.ComputeTime += seconds
		}
		return
	}
	start := p.clock.Now()
	p.clock.Advance(seconds)
	if seconds > 0 {
		p.stats.ComputeTime += seconds
	}
	p.tview.Add(trace.PhaseCompute, start, p.clock.Now())
}

func (p *Proc) checkDst(dst int) {
	if dst < 0 || dst >= p.size {
		panic(fmt.Sprintf("nx: rank %d sending to invalid rank %d (size %d)", p.rank, dst, p.size))
	}
}

func (p *Proc) checkTag(tag Tag, wildcardOK bool) {
	if wildcardOK && tag == AnyTag {
		return
	}
	if tag < 0 || tag >= TagUserMax {
		// Collective-internal tags are sent through sendRaw directly, so
		// anything arriving here with a reserved tag is a user error.
		panic(fmt.Sprintf("nx: tag %d outside user range [0,%d)", int(tag), int(TagUserMax)))
	}
}

// sendRaw performs the common send path. Exactly one of data/floats may be
// non-nil; nbytes is the modelled payload size.
//
// The sender's clock is charged the software overhead plus the payload
// serialization time: the node's single network port cannot overlap the
// bytes of back-to-back sends (LogGP's per-byte gap G). The message then
// needs only the base latency and per-hop time to arrive, so the one-way
// point-to-point total matches machine.PointToPointTime.
func (p *Proc) sendRaw(dst int, tag Tag, data []byte, floats []float64, nbytes int) {
	p.checkDst(dst)
	if len(p.pend) > 0 {
		p.settle() // the message timestamp needs the concrete clock
	}
	start := p.clock.Now()
	p.clock.Advance(p.model.Net.SendOverhead + float64(nbytes)*p.model.Net.ByteTime)
	arrive := p.clock.Now() + p.model.Net.Latency +
		float64(p.hops(dst))*p.model.Net.PerHop
	p.rt.procs[dst].mbox.put(p.rank, tag, data, floats, nbytes, arrive)
	// The delivery count feeds the deadlock watchdog's quiescence check;
	// it is sharded onto the sender's own mailbox to keep the hot path
	// off any shared cache line.
	p.mbox.sent.Add(1)
	p.stats.BytesSent += int64(nbytes)
	p.stats.MsgsSent++
	p.tview.Add(trace.PhaseSend, start, p.clock.Now())
}

// Send delivers a copy of data to dst with the given tag (csend).
func (p *Proc) Send(dst int, tag Tag, data []byte) {
	p.checkTag(tag, false)
	cp := append([]byte(nil), data...)
	p.sendRaw(dst, tag, cp, nil, len(cp))
}

// SendFloats delivers a copy of xs to dst with the given tag.
func (p *Proc) SendFloats(dst int, tag Tag, xs []float64) {
	p.checkTag(tag, false)
	cp := append([]float64(nil), xs...)
	p.sendRaw(dst, tag, nil, cp, 8*len(cp))
}

// SendPhantom delivers a payload-free message that is accounted (in virtual
// transfer time and byte statistics) as nbytes. Phantom messages let
// Delta-scale runs model communication without moving data.
func (p *Proc) SendPhantom(dst int, tag Tag, nbytes int) {
	p.checkTag(tag, false)
	if nbytes < 0 {
		nbytes = 0
	}
	p.sendRaw(dst, tag, nil, nil, nbytes)
}

// ExchangeBatchPhantom performs count back-to-back symmetric phantom
// exchanges with peer: each exchange is SendPhantom(peer, tag, nbytes)
// followed by Recv(peer, tag), on both sides. Both processes must call it
// with the same nbytes and count. Virtual times and stats are
// bit-identical to writing the loop out by hand; in fused mode the whole
// batch settles as one deferred rendezvous — one synchronization for k
// exchanges instead of 2k mailbox operations — which is what makes the
// LINPACK trailing-swap wavefront cheap (see linpack.applyTrailingSwaps).
func (p *Proc) ExchangeBatchPhantom(peer int, tag Tag, nbytes, count int) {
	p.checkTag(tag, false)
	if count <= 0 {
		return
	}
	if peer == p.rank {
		panic(fmt.Sprintf("nx: rank %d exchanging with itself", p.rank))
	}
	p.checkDst(peer)
	if nbytes < 0 {
		nbytes = 0
	}
	if !p.fused {
		for i := 0; i < count; i++ {
			p.sendRaw(peer, tag, nil, nil, nbytes)
			p.recvRaw(peer, tag)
		}
		return
	}
	s := p.exchSlots[peer]
	if s == nil {
		// The slot key lives in a separate "x" namespace so an exchange
		// pair can never collide with a two-member Group's slot (group
		// keys are always a multiple of 4 bytes long).
		lo, hi := p.rank, peer
		if lo > hi {
			lo, hi = hi, lo
		}
		key := string([]byte{'x',
			byte(lo), byte(lo >> 8), byte(lo >> 16), byte(lo >> 24),
			byte(hi), byte(hi >> 8), byte(hi >> 16), byte(hi >> 24)})
		s = p.rt.slot(key, []int{lo, hi})
		if p.exchSlots == nil {
			p.exchSlots = make(map[int]*groupSlot)
		}
		p.exchSlots[peer] = s
	}
	me := 0
	if p.rank > s.members[0] {
		me = 1
	}
	fusedRendezvous(p, s, me, true, &fusedEntry{
		kind:   fusedExchange,
		nbytes: nbytes,
		count:  count,
	})
}

// recvRaw is the common receive path: block for a match, then merge the
// arrival time and charge the receive overhead.
func (p *Proc) recvRaw(src int, tag Tag) Msg {
	if src != AnySrc && (src < 0 || src >= p.size) {
		panic(fmt.Sprintf("nx: rank %d receiving from invalid rank %d", p.rank, src))
	}
	if len(p.pend) > 0 {
		p.settle() // merging the arrival needs the concrete clock
	}
	start := p.clock.Now()
	msg := p.mbox.get(src, tag)
	if msg.ArriveAt > p.clock.Now() {
		p.stats.RecvWait += msg.ArriveAt - p.clock.Now()
		p.clock.MergeAtLeast(msg.ArriveAt)
	}
	p.clock.Advance(p.model.Net.RecvOverhead)
	p.tview.Add(trace.PhaseRecvWait, start, p.clock.Now())
	return msg
}

// Recv blocks until a message matching (src, tag) arrives (crecv). src may
// be AnySrc and tag may be AnyTag.
//
// Virtual time is deterministic only for exact-source receives: wildcard
// receives match in host arrival order, which can vary between runs when
// multiple candidates race.
func (p *Proc) Recv(src int, tag Tag) Msg {
	p.checkTag(tag, true)
	return p.recvRaw(src, tag)
}

// RecvFloats receives a message sent with SendFloats and returns its payload.
// It panics if the matched message does not carry a float payload.
func (p *Proc) RecvFloats(src int, tag Tag) []float64 {
	m := p.Recv(src, tag)
	if m.Floats == nil && m.Bytes != 0 {
		panic(fmt.Sprintf("nx: rank %d: RecvFloats matched non-float message from %d tag %d",
			p.rank, m.Src, int(m.Tag)))
	}
	return m.Floats
}

// Probe reports whether a message matching (src, tag) is already queued.
func (p *Proc) Probe(src int, tag Tag) bool {
	return p.mbox.probe(src, tag)
}

// Request is a pending nonblocking receive posted with IRecv. Wait
// completes it.
type Request struct {
	p    *Proc
	src  int
	tag  Tag
	done bool
}

// IRecv posts a nonblocking receive (irecv in NX terms). The returned
// Request must be completed with Wait. Because the runtime buffers eagerly,
// the value of IRecv is virtual-time overlap: computation performed between
// IRecv and Wait advances the local clock, hiding the message's flight
// time, exactly as overlap did on the real machine.
func (p *Proc) IRecv(src int, tag Tag) *Request {
	p.checkTag(tag, true)
	if src != AnySrc && (src < 0 || src >= p.size) {
		panic(fmt.Sprintf("nx: rank %d posting irecv from invalid rank %d", p.rank, src))
	}
	return &Request{p: p, src: src, tag: tag}
}

// Wait blocks until the posted receive completes and returns the message.
// Waiting twice on the same request panics.
func (r *Request) Wait() Msg {
	if r.done {
		panic("nx: Wait on a completed Request")
	}
	r.done = true
	return r.p.recvRaw(r.src, r.tag)
}

// PingPong measures the modelled one-way time for an n-byte message between
// this process and peer; it is used to fit Hockney parameters in tests and
// benches. Both sides must call it with the same arguments; rank a sends
// first. The returned value is the modelled point-to-point time.
func (p *Proc) PingPong(peer int, tag Tag, n int) float64 {
	return p.model.PointToPointTime(p.rank, peer, n)
}
