package nx

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/machine"
)

// TestCtxAlreadyCancelled: a done context stops the run before any
// process body executes.
func TestCtxAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	res, err := Run(Config{Model: machine.SubMesh(machine.Delta(), 2, 2), Ctx: ctx}, func(p *Proc) {
		ran = true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("got a result %+v from a cancelled run", res)
	}
	if ran {
		t.Fatal("body ran despite a pre-cancelled context")
	}
}

// TestCtxCancelUnblocksReceive: cancelling mid-run unblocks a process
// parked in a receive promptly — well before the deadlock watchdog
// window — and surfaces the context error, not a deadlock.
func TestCtxCancelUnblocksReceive(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Run(Config{
		Model:         machine.SubMesh(machine.Delta(), 2, 2),
		Ctx:           ctx,
		DeadlockAfter: time.Hour, // the watchdog must not be what saves us
	}, func(p *Proc) {
		if p.Rank() == 0 {
			p.Recv(1, 5) // never sent: blocks until teardown
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v, want prompt teardown", elapsed)
	}
}

// TestCtxCancelStopsCollectiveLoop: a long collective-heavy loop (the
// shape of every phantom workload) is abandoned mid-flight.
func TestCtxCancelStopsCollectiveLoop(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	completed := make([]int, 16)
	_, err := Run(Config{
		Model:         machine.SubMesh(machine.Delta(), 4, 4),
		Ctx:           ctx,
		DeadlockAfter: time.Hour,
	}, func(p *Proc) {
		g := p.World()
		for i := 0; i < 1_000_000; i++ {
			g.ReducePhantom(0, 16)
			g.BcastPhantom(0, 16)
			completed[p.Rank()] = i
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for rank, n := range completed {
		if n >= 1_000_000-1 {
			t.Fatalf("rank %d ran the loop to completion despite cancellation", rank)
		}
	}
}

// TestNilCtxRunsToCompletion: the zero Config keeps the classic behavior.
func TestNilCtxRunsToCompletion(t *testing.T) {
	res, err := Run(Config{Model: machine.SubMesh(machine.Delta(), 2, 2)}, func(p *Proc) {
		p.World().Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Makespan <= 0 {
		t.Fatalf("unexpected result %+v", res)
	}
}
