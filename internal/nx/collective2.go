package nx

import "fmt"

// This file holds the second-generation collectives: the bandwidth-optimal
// ring allreduce (ablated against the tree reduce+broadcast), scatter, and
// prefix scan. The tree algorithms in group.go win at small payloads (the
// latency regime); the ring wins for large vectors because every byte
// crosses each process exactly twice regardless of group size.

// RingAllreduceFloats reduces xs elementwise with op across the group using
// the two-phase ring algorithm: a reduce-scatter pass followed by an
// allgather pass, each of size-1 steps on chunks of ~len/size elements.
// Every member returns the full reduced vector. For groups of one it is a
// local copy.
func (g *Group) RingAllreduceFloats(xs []float64, op ReduceOp) []float64 {
	n := len(g.members)
	acc := append([]float64(nil), xs...)
	if n == 1 {
		return acc
	}
	tag := g.nextTag()
	ln := len(acc)
	// chunk c covers [bounds[c], bounds[c+1])
	bounds := make([]int, n+1)
	for c := 0; c <= n; c++ {
		bounds[c] = c * ln / n
	}
	chunk := func(c int) []float64 { return acc[bounds[c%n]:bounds[c%n+1]] }

	next := g.global((g.me + 1) % n)
	prev := g.global((g.me - 1 + n) % n)

	// reduce-scatter: after step s, each process holds the partial
	// reduction of chunk (me-s) over s+1 contributors.
	for s := 0; s < n-1; s++ {
		sendC := (g.me - s + 2*n) % n
		recvC := (g.me - s - 1 + 2*n) % n
		out := chunk(sendC)
		g.p.sendRaw(next, tag, nil, append([]float64(nil), out...), 8*len(out))
		in := g.p.recvRaw(prev, tag).Floats
		dst := chunk(recvC)
		if len(in) != len(dst) {
			panic(fmt.Sprintf("nx: ring allreduce chunk mismatch: %d vs %d", len(in), len(dst)))
		}
		op(dst, in)
	}
	// allgather: circulate the fully reduced chunks.
	for s := 0; s < n-1; s++ {
		sendC := (g.me + 1 - s + 2*n) % n
		recvC := (g.me - s + 2*n) % n
		out := chunk(sendC)
		g.p.sendRaw(next, tag, nil, append([]float64(nil), out...), 8*len(out))
		in := g.p.recvRaw(prev, tag).Floats
		copy(chunk(recvC), in)
	}
	return acc
}

// RingAllreducePhantom models the ring allreduce communication for an
// nbytes payload without moving data.
func (g *Group) RingAllreducePhantom(nbytes int) {
	n := len(g.members)
	if n == 1 {
		return
	}
	tag := g.nextTag()
	next := g.global((g.me + 1) % n)
	prev := g.global((g.me - 1 + n) % n)
	per := nbytes / n
	if per < 1 {
		per = 1
	}
	for s := 0; s < 2*(n-1); s++ {
		g.p.sendRaw(next, tag, nil, nil, per)
		g.p.recvRaw(prev, tag)
	}
}

// ScatterFloats distributes equal-size slices of xs from the group-rank
// root: member i receives xs[i*chunk:(i+1)*chunk]. Only the root's xs is
// consulted; its length must be a multiple of the group size. The
// distribution uses direct sends (the root is the bottleneck by
// construction, as on NX).
func (g *Group) ScatterFloats(root int, xs []float64) []float64 {
	n := len(g.members)
	if root < 0 || root >= n {
		panic(fmt.Sprintf("nx: scatter root %d out of range [0,%d)", root, n))
	}
	tag := g.nextTag()
	if g.me == root {
		if len(xs)%n != 0 {
			panic(fmt.Sprintf("nx: scatter length %d not divisible by group size %d", len(xs), n))
		}
		chunk := len(xs) / n
		for i := 0; i < n; i++ {
			if i == root {
				continue
			}
			part := append([]float64(nil), xs[i*chunk:(i+1)*chunk]...)
			g.p.sendRaw(g.global(i), tag, nil, part, 8*len(part))
		}
		return append([]float64(nil), xs[root*chunk:(root+1)*chunk]...)
	}
	return g.p.recvRaw(g.global(root), tag).Floats
}

// ScanFloats computes the inclusive prefix reduction: member i returns
// op-combined contributions of members 0..i. It runs the simple linear
// pipeline (rank i receives from i-1, combines, forwards to i+1), which is
// latency-optimal per element for the short vectors it is used on.
func (g *Group) ScanFloats(xs []float64, op ReduceOp) []float64 {
	n := len(g.members)
	acc := append([]float64(nil), xs...)
	if n == 1 {
		return acc
	}
	tag := g.nextTag()
	if g.me > 0 {
		in := g.p.recvRaw(g.global(g.me-1), tag).Floats
		if len(in) != len(acc) {
			panic(fmt.Sprintf("nx: scan length mismatch: %d vs %d", len(in), len(acc)))
		}
		// acc = in (prefix) combined with my contribution
		prefix := append([]float64(nil), in...)
		op(prefix, acc)
		acc = prefix
	}
	if g.me < n-1 {
		g.p.sendRaw(g.global(g.me+1), tag, nil, append([]float64(nil), acc...), 8*len(acc))
	}
	return acc
}
