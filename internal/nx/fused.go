package nx

// Fused analytic collectives.
//
// The tree collectives in group.go move O(k) real messages through k
// mailboxes per operation; at Delta scale (phantom LINPACK: three
// column-group collectives per matrix column, 25 000 columns) every tree
// edge is a mailbox put/get with a potential goroutine park/unpark, and
// the host cost of a run is dominated by that per-message software
// overhead — not by the arithmetic of the virtual-time model.
//
// The fused engine removes the messages without changing the model: when
// every member of a Group enters the same collective, each member posts
// its entry clock (plus its payload contribution) to a per-group
// rendezvous, and once every entry is in, the whole tree is replayed
// analytically — applying the exact per-edge formulas sendRaw and recvRaw
// use (SendOverhead, ByteTime, Latency, PerHop·hops, RecvOverhead), in
// the exact per-member program order the tree algorithms execute — and
// every member is released with its exit clock, its stat deltas and its
// result payload. Virtual times, ProcStats and trace spans are
// bit-identical to the tree path; only the host-time cost changes. CI
// gates the equivalence with a differential test (fused_test.go) and a
// full-report byte-identity cmp step.
//
// Two further mechanisms make the engine fast rather than merely
// message-free:
//
//   - Deferred settlement. A phantom collective returns no data, so a
//     member does not wait for its release: it posts a *symbolic* entry
//     (previous release ⊕ recorded local advances) and keeps running —
//     through more phantom collectives if the program offers them. A
//     member parks only when it needs a concrete clock (a point-to-point
//     message, Now, a data-carrying collective, Barrier) or after
//     pendLimit outstanding releases (adaptive in the process count; see
//     adaptivePendLimit). Rendezvous resolve in dependency order
//     through the completion cascade (fusedCascade), so host-side parks
//     collapse from one per collective edge to roughly one per chain.
//   - Pooled, wake-through-channel plumbing. Rendezvous, their scratch
//     and their release arrays are recycled per group, so steady-state
//     phantom collectives allocate nothing; parked settlers are woken
//     through per-process channels after the engine lock drops, so a
//     completion waking many members cannot convoy on the lock.
//
// One semantic difference from the tree path: a fused collective is a
// full-group rendezvous in host time — no member's release exists until
// every member has entered — where a tree broadcast releases a member
// after only its ancestor chain has sent. Programs that schedule a
// point-to-point dependency against collective order (one member must
// complete the collective to unblock another member's *entry* into it)
// deadlock here and are caught by the watchdog; see the collective-modes
// section of docs/WORKLOADS.md.
//
// The second-generation collectives (ring allreduce, scatter, scan) stay
// on the message path in every mode; they are ablation baselines, not hot
// paths.

import (
	"fmt"
	"math"
	"os"
	"sync/atomic"

	"repro/internal/trace"
)

// CollectiveMode selects how Group collectives execute.
type CollectiveMode int

// Collective execution modes.
const (
	// CollectivesAuto (the zero value) uses the process-wide default:
	// fused, unless SetDefaultCollectives or the HPCC_COLLECTIVES
	// environment variable ("tree" or "fused") says otherwise.
	CollectivesAuto CollectiveMode = iota
	// CollectivesFused computes each collective analytically in one
	// rendezvous (this file). Virtual times and stats are bit-identical
	// to CollectivesTree.
	CollectivesFused
	// CollectivesTree schedules every tree edge as a real point-to-point
	// message (the legacy path in group.go).
	CollectivesTree
)

// String names the mode.
func (m CollectiveMode) String() string {
	switch m {
	case CollectivesAuto:
		return "auto"
	case CollectivesFused:
		return "fused"
	case CollectivesTree:
		return "tree"
	}
	return fmt.Sprintf("CollectiveMode(%d)", int(m))
}

// ParseCollectiveMode maps the CLI/env spelling of a mode to its value.
func ParseCollectiveMode(s string) (CollectiveMode, error) {
	switch s {
	case "", "auto":
		return CollectivesAuto, nil
	case "fused":
		return CollectivesFused, nil
	case "tree":
		return CollectivesTree, nil
	}
	return CollectivesAuto, fmt.Errorf("nx: unknown collective mode %q (want fused or tree)", s)
}

// defaultCollectives is what CollectivesAuto resolves to. It is atomic so
// a CLI flag handler can set it once while worker pools are quiescent
// without racing the runtime's readers.
var defaultCollectives atomic.Int32

func init() {
	defaultCollectives.Store(int32(CollectivesFused))
	// Worker processes inherit the parent's -collectives choice through
	// the environment (the shard executor re-execs the binary without
	// re-passing flags).
	if m, err := ParseCollectiveMode(os.Getenv("HPCC_COLLECTIVES")); err == nil && m != CollectivesAuto {
		defaultCollectives.Store(int32(m))
	}
}

// SetDefaultCollectives sets what CollectivesAuto resolves to for runs
// that do not pin Config.Collectives. It is meant to be called once at
// process start (the hpcc -collectives flag); mid-run calls affect only
// runs started afterwards.
func SetDefaultCollectives(m CollectiveMode) {
	if m == CollectivesAuto {
		m = CollectivesFused
	}
	defaultCollectives.Store(int32(m))
}

// DefaultCollectives returns what CollectivesAuto currently resolves to.
func DefaultCollectives() CollectiveMode {
	return CollectiveMode(defaultCollectives.Load())
}

// fusedKind identifies which collective algorithm a rendezvous replays.
type fusedKind int8

const (
	fusedBarrier fusedKind = iota
	fusedBcast
	fusedFlatBcast
	fusedReduceFloats
	fusedReducePhantom
	fusedGather
	// The allreduce kinds replay a reduce tree immediately followed by a
	// broadcast tree — the Allreduce{Floats,Phantom} pair — in one
	// rendezvous, so the hottest pattern (LINPACK's per-column pivot
	// exchange) pays one synchronization instead of two.
	fusedAllreduceFloats
	fusedAllreducePhantom
	// fusedExchange replays a batch of identical symmetric pairwise
	// phantom exchanges (send+recv with one peer, repeated entry.count
	// times) in one rendezvous; see Proc.ExchangeBatchPhantom.
	fusedExchange
)

func (k fusedKind) String() string {
	switch k {
	case fusedBarrier:
		return "Barrier"
	case fusedBcast:
		return "Bcast"
	case fusedFlatBcast:
		return "BcastFlat"
	case fusedReduceFloats:
		return "ReduceFloats"
	case fusedReducePhantom:
		return "ReducePhantom"
	case fusedGather:
		return "GatherFloats"
	case fusedAllreduceFloats:
		return "AllreduceFloats"
	case fusedAllreducePhantom:
		return "AllreducePhantom"
	case fusedExchange:
		return "ExchangeBatch"
	}
	return fmt.Sprintf("fusedKind(%d)", int(k))
}

// tags returns how many collective tags the kind's tree equivalent
// consumes, so fused and tree runs keep identical tag sequences.
func (k fusedKind) tags() int {
	if k == fusedAllreduceFloats || k == fusedAllreducePhantom {
		return 2
	}
	return 1
}

// fusedEntry is one member's contribution to a rendezvous: what it is
// running, where its clock and RecvWait accumulator stand, and its
// payload.
//
// An entry is either concrete (prev == nil: clock and recvWait hold the
// member's state at entry) or symbolic (prev != nil: the member entered
// while its release from a previous rendezvous was still outstanding, so
// its entry state is prev's release for prevIdx advanced by the recorded
// deltas — the exact Compute/Elapse charges, in order, so the resolved
// clock is bit-identical to the eager one). Symbolic entries are what let
// a member run ahead through phantom collectives without parking; see
// fusedRendezvous.
type fusedEntry struct {
	kind     fusedKind
	root     int
	nbytes   int
	count    int // fusedExchange: exchanges in the batch
	clock    float64
	recvWait float64
	pl       payload
	op       ReduceOp

	prev    *rendezvous
	prevIdx int
	deltas  []float64
}

// fusedRelease is what a member receives back: its state after the
// collective. clock and recvWait are absolute values (the engine replays
// the member's exact sequence of float additions, so handing back the
// final accumulator preserves bit-identity with the tree path, which a
// recomputed delta would not). bytes and msgs are integer deltas.
type fusedRelease struct {
	clock    float64
	recvWait float64
	bytes    int64
	msgs     int64
	pl       payload
	spans    []traceSpan
}

// traceSpan is one deferred trace record the member applies on release.
type traceSpan struct {
	phase      trace.Phase
	start, end float64
}

// groupSlot is the per-member-list rendezvous anchor, shared by every
// member's Group handle. Because
// members may run ahead through deferred collectives, a slot holds a ring
// of in-flight rendezvous in sequence order: ring[i] serves the slot's
// collective number baseSeq+i. Completed-and-settled rendezvous are
// recycled through free, so steady-state collectives allocate nothing.
//
// All slot and rendezvous state is guarded by the mutex of the slot's
// home engine shard (groupSlot.home, see shard.go): the shard homing
// every member when the list is intra-shard, the runtime's cross engine
// otherwise. The engine's critical sections are tens of nanoseconds, so
// one lock acquisition per posting beats fine-grained per-slot locks —
// with per-slot locks every symbolic entry pays a second acquisition to
// register with its dependency and a third to resolve, which profiling
// shows costs more than the serialization a shard-wide lock introduces.
// Cross-engine dependencies (an entry whose prev rendezvous lives on a
// different engine) use a hand-off protocol that never holds two engine
// locks at once; see fusedPost, registerCrossDep and drainCross.
//
// Sequencing is sound because a member's posts on a slot are numbered by
// the slot's per-member count and program order ties those numbers
// together: member entries with the same number always belong to the same
// collective — including across distinct Group handles with the same
// member list, which share the slot exactly as they share the tag space
// on the tree path. (Two same-member groups used concurrently from the
// same process would break that, the documented Group caveat; the slot
// detects the resulting double entry and panics instead of corrupting
// clocks.)
type groupSlot struct {
	home    *engineShard // the engine instance whose mu guards this slot
	ring    []*rendezvous
	baseSeq int
	counts  []int // per-member posts so far; a post's number is its member's count
	free    []*rendezvous
	members []int // the member list the slot serves, in group order
}

// rendezvous collects the entries of one collective and, once complete,
// the per-member releases. The slices and the engine's scratch are pooled
// across the collectives of a slot. All fields are guarded by the slot's
// home engine mutex (slot.home.mu).
type rendezvous struct {
	slot       *groupSlot
	entries    []fusedEntry
	present    []bool // per-member entry filed; entries themselves stay dirty between uses
	arrived    int
	unresolved int // entries still symbolic (their prev not done)
	// done and settled are atomic so the settle fast path (tail already
	// complete) runs without the engine lock: done is written under the
	// home lock but read lock-free, and rels are immutable once done is
	// observed — which also lets cross-engine resolvers read a completed
	// rendezvous' releases without touching its home lock.
	done    atomic.Bool
	retired bool // fully settled; awaiting head-order recycling (under home lock)
	settled atomic.Int32
	rels    []fusedRelease
	deps    []fusedDep // entries elsewhere waiting on this completion
	waiters []*Proc    // settlers parked for this completion (under home lock)

	// Engine scratch, sized to the group on first use.
	arr  []float64   // per-member arrival times
	flt  [][]float64 // per-member float-slice scratch (reduce accumulators)
	sent [][]float64 // reduce: the acc snapshot each member sent
}

// fusedDep records one symbolic entry (of another rendezvous) awaiting
// this rendezvous' completion.
type fusedDep struct {
	r   *rendezvous
	idx int
}

// pendRef is one unsettled rendezvous on a member's deferred chain.
type pendRef struct {
	r   *rendezvous
	idx int
}

// slot returns (creating on first use) the rendezvous anchor for a member
// list, keyed by its packed encoding. Slots live in the map of their home
// engine (the homing shard, or the cross engine for lists spanning
// shards), so two engines can serve disjoint member lists without sharing
// a lock. members is recorded on the slot at creation (exchange callers
// replay from it; every caller passes an identical list for a given key).
func (rt *runtime) slot(key string, members []int) *groupSlot {
	es := rt.homeOf(members)
	es.mu.Lock()
	defer es.mu.Unlock()
	if es.slots == nil {
		es.slots = make(map[string]*groupSlot)
	}
	s := es.slots[key]
	if s == nil {
		s = &groupSlot{home: es, members: members, counts: make([]int, len(members))}
		es.slots[key] = s
	}
	return s
}

// abortSlots wakes every fused-collective waiter with a teardown signal
// and poisons future waits; the counterpart of mailbox.abort.
func (rt *runtime) abortSlots() {
	rt.slotsAborted.Store(true)
	for _, p := range rt.procs {
		select {
		case p.wakeCh <- struct{}{}:
		default:
		}
	}
}

// membersKey packs the member list into a string key (4 bytes LE per
// rank). Cached on the Group so steady-state collectives skip it.
func (g *Group) membersKey() string {
	b := make([]byte, 0, 4*len(g.members))
	for _, m := range g.members {
		b = append(b, byte(m), byte(m>>8), byte(m>>16), byte(m>>24))
	}
	return string(b)
}

// fusedCollective is the member side of the engine for Group
// collectives: post the entry; lazy operations (the phantom collectives,
// which carry no result) keep running with the release deferred, the
// rest settle immediately. Every member of the group must call it with
// the same kind, root and laziness (the public methods guarantee that);
// pl and nbytes carry per-member contributions.
func (g *Group) fusedCollective(kind fusedKind, root, nbytes int, pl payload, op ReduceOp, lazy bool) payload {
	for t := kind.tags(); t > 0; t-- {
		g.nextTag() // keep the tag sequence aligned with the tree path
	}
	if g.slot == nil {
		g.slot = g.p.rt.slot(g.membersKey(), g.members)
	}
	return fusedRendezvous(g.p, g.slot, g.me, lazy, &fusedEntry{
		kind:   kind,
		root:   root,
		nbytes: nbytes,
		pl:     pl,
		op:     op,
	})
}

// fusedRendezvous is the shared member-side protocol for fused
// collectives and fused exchanges: post the entry (symbolically when
// earlier releases are still outstanding — the deferred-settlement fast
// path), trigger the analytic replay when this arrival completes a
// resolvable rendezvous, and either defer the release or settle.
//
// lazy must only be set for operations whose release carries no payload
// and whose tree path the caller does not rely on for host-side memory
// ordering: a deferred member passes the operation without parking, so
// the only synchronization it provides is virtual-time. That holds for
// the phantom collectives and exchanges; Barrier and every data-carrying
// operation settle before returning.
func fusedRendezvous(p *Proc, s *groupSlot, me int, lazy bool, e *fusedEntry) payload {
	// Tracing needs a concrete clock at every Compute/Elapse, so deferral
	// is disabled for traced runs; they settle each operation eagerly.
	lazy = lazy && !p.rt.traceOn
	if len(p.pend) > 0 {
		// Symbolic entry: state = previous release ⊕ recorded local
		// advances. recvWait is resolved from the same release; local
		// work never touches it.
		tail := p.pend[len(p.pend)-1]
		e.prev = tail.r
		e.prevIdx = tail.idx
		e.deltas = p.deltaBuf[p.deltaLo:len(p.deltaBuf):len(p.deltaBuf)]
	} else {
		e.clock = p.clock.Now()
		e.recvWait = p.stats.RecvWait
	}
	r := fusedPost(p, s, me, e)
	p.pend = append(p.pend, pendRef{r: r, idx: me})
	p.deltaLo = len(p.deltaBuf)
	if lazy && len(p.pend) < p.rt.pendLimit {
		return payload{}
	}
	return p.settle()
}

// fusedPost files entry e as member me of the slot's next collective for
// that member (the slot's per-member post count — group handles with the
// same member list share it, so sequentially interleaved same-member
// groups stay aligned exactly as they do on the tree path), resolves or
// registers the entry's symbolic dependency, and runs the completion
// cascade when this event makes a rendezvous computable.
//
// When the entry's prev rendezvous is homed on a different engine shard,
// its dependency cannot be registered under this slot's lock — the engine
// never holds two shard locks at once — so the post marks the entry
// unresolved, drops the lock, and hands the dependency to
// registerCrossDep; cascades likewise park deps of foreign rendezvous on
// p.crossBuf, drained one engine at a time by drainCross.
func fusedPost(p *Proc, s *groupSlot, me int, e *fusedEntry) *rendezvous {
	r, prevCross := fusedPostLocked(p, s, me, e)
	if prevCross != nil {
		registerCrossDep(p, prevCross, r, me)
	}
	drainCross(p)
	return r
}

// fusedPostLocked is fusedPost's critical section under the slot's home
// lock. A cross-engine dependency is returned (not registered) so the
// caller can take the other engine's lock after this one drops.
func fusedPostLocked(p *Proc, s *groupSlot, me int, e *fusedEntry) (r *rendezvous, prevCross *rendezvous) {
	es := s.home
	k := len(s.members)
	es.mu.Lock()
	// The deferred drain doubles as the waker: completions collected by
	// a cascade are signalled after the lock drops (and even if the
	// replay panics, so teardown does not deadlock on the engine lock).
	defer drainWake(es)
	idx := s.counts[me] - s.baseSeq
	s.counts[me]++
	for idx >= len(s.ring) {
		s.ring = append(s.ring, s.takeFree(k))
	}
	r = s.ring[idx]
	if len(r.entries) != k || r.present[me] {
		panic(fmt.Sprintf("nx: rank %d: overlapping fused collectives on one member list "+
			"(distinct same-member groups used concurrently?)", p.rank)) // defer unlocks
	}
	r.entries[me] = *e
	r.present[me] = true
	r.arrived++
	if e.prev != nil {
		switch {
		case e.prev.done.Load():
			// rels are immutable once done is observed, so resolving here
			// is safe even when prev is homed elsewhere.
			resolveEntry(r, me)
		case e.prev.slot.home == es:
			r.unresolved++
			e.prev.deps = append(e.prev.deps, fusedDep{r: r, idx: me})
		default:
			r.unresolved++
			prevCross = e.prev
		}
	}
	if r.arrived == k && r.unresolved == 0 {
		fusedCascade(p, es, r)
	}
	return r, prevCross
}

// drainWake unlocks es after moving its pending wake list aside, then
// signals the wakeups outside the lock, so a completion waking many
// members cannot convoy on the engine lock.
func drainWake(es *engineShard) {
	toWake := es.wake
	es.wake = nil
	es.mu.Unlock()
	for _, wp := range toWake {
		select {
		case wp.wakeCh <- struct{}{}:
		default:
		}
	}
}

// registerCrossDep registers rendezvous r's entry idx (already counted
// unresolved under r's home lock) with its prev on a different engine.
// The registration races prev's completion; prev's home lock arbitrates:
// either the dep lands on prev.deps before prev completes (the completing
// cascade resolves it), or prev is already done and this poster resolves
// it itself via the cross buffer. Exactly one side ever owns the dep.
func registerCrossDep(p *Proc, prev, r *rendezvous, idx int) {
	ph := prev.slot.home
	ph.mu.Lock()
	if !prev.done.Load() {
		prev.deps = append(prev.deps, fusedDep{r: r, idx: idx})
		ph.mu.Unlock()
		return
	}
	ph.mu.Unlock()
	p.crossBuf = append(p.crossBuf, fusedDep{r: r, idx: idx})
}

// drainCross resolves the cross-engine dependencies parked on p.crossBuf:
// each dep's prev is done (rels immutable), so the resolution needs only
// the dep's own home lock. Cascades run while that lock is held and may
// park further cross deps on the buffer; the loop takes one engine lock
// at a time, so shards never deadlock on lock order.
func drainCross(p *Proc) {
	for len(p.crossBuf) > 0 {
		n := len(p.crossBuf)
		d := p.crossBuf[n-1]
		p.crossBuf = p.crossBuf[:n-1]
		func() {
			es := d.r.slot.home
			es.mu.Lock()
			defer drainWake(es)
			resolveEntry(d.r, d.idx)
			d.r.unresolved--
			if d.r.arrived == len(d.r.entries) && d.r.unresolved == 0 {
				fusedCascade(p, es, d.r)
			}
		}()
	}
}

// takeFree returns a recycled (or fresh) rendezvous sized for k members.
// Entries are left dirty — every member overwrites its own before the
// rendezvous can compute — only the presence bits are cleared. Caller
// holds the slot's home engine lock.
func (s *groupSlot) takeFree(k int) *rendezvous {
	var r *rendezvous
	if n := len(s.free); n > 0 {
		r = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		r = &rendezvous{slot: s}
	}
	if cap(r.entries) < k {
		r.entries = make([]fusedEntry, k)
		r.present = make([]bool, k)
		r.rels = make([]fusedRelease, k)
	}
	r.entries = r.entries[:k]
	r.present = r.present[:k]
	r.rels = r.rels[:k]
	for i := range r.present {
		r.present[i] = false
	}
	r.arrived, r.unresolved = 0, 0
	r.settled.Store(0)
	r.done.Store(false)
	r.retired = false
	r.deps = r.deps[:0]
	r.waiters = r.waiters[:0]
	return r
}

// resolveEntry makes a symbolic entry concrete from its (completed)
// dependency: the exact advance sequence the member recorded, replayed on
// the release clock. Caller holds r's home engine lock; prev's releases
// are readable lock-free because prev is done.
func resolveEntry(r *rendezvous, i int) {
	e := &r.entries[i]
	base := &e.prev.rels[e.prevIdx]
	c := base.clock
	for _, d := range e.deltas {
		advance(&c, d)
	}
	e.clock = c
	e.recvWait = base.recvWait
	e.prev = nil
	e.deltas = nil
}

// fusedCascade replays a computable rendezvous homed on es and cascades:
// completing one rendezvous resolves symbolic entries registered on it,
// which can make further rendezvous computable. The worklist keeps the
// cascade iterative; the whole cascade runs under es.mu (the replays are
// pure arithmetic on state the lock already guards). Dependencies of
// rendezvous homed on other engines cannot be touched under this lock;
// they are parked on p.crossBuf for drainCross to resolve after es.mu
// drops.
func fusedCascade(p *Proc, es *engineShard, r *rendezvous) {
	work := es.cascade[:0]
	work = append(work, r)
	for len(work) > 0 {
		r := work[len(work)-1]
		work = work[:len(work)-1]
		fusedCompute(p, r)
		r.done.Store(true)
		if len(r.waiters) > 0 {
			es.wake = append(es.wake, r.waiters...)
			r.waiters = r.waiters[:0]
		}
		for _, d := range r.deps {
			if d.r.slot.home != es {
				p.crossBuf = append(p.crossBuf, d)
				continue
			}
			resolveEntry(d.r, d.idx)
			d.r.unresolved--
			if d.r.arrived == len(d.r.entries) && d.r.unresolved == 0 {
				work = append(work, d.r)
			}
		}
		r.deps = r.deps[:0]
	}
	es.cascade = work
}

// settle applies this member's outstanding releases: park until the tail
// rendezvous completes (every earlier one completes first — each member's
// chain is resolved in order), then fold the releases into the clock and
// stats exactly as the eager path would, replay any trailing local
// advances, and recycle fully settled rendezvous. It returns the tail
// release's payload for callers that need a result.
func (p *Proc) settle() payload {
	if len(p.pend) == 0 {
		return payload{}
	}
	rt := p.rt
	tail := p.pend[len(p.pend)-1]
	if !tail.r.done.Load() {
		// Register for the completion wakeup, then park on the private
		// channel — woken settlers never touch the engine lock, so a
		// completion waking many members cannot convoy on it. A stale
		// token from an earlier wakeup just spins the loop once.
		h := tail.r.slot.home
		h.mu.Lock()
		registered := !tail.r.done.Load()
		if registered {
			tail.r.waiters = append(tail.r.waiters, p)
		}
		h.mu.Unlock()
		if registered {
			// The blocked flag keeps the deadlock watchdog honest: a
			// member parked here counts as blocked exactly like one
			// parked in a receive (see runtime.counters and waiters).
			p.mbox.blocked.Store(blockedFused)
			for !tail.r.done.Load() && !rt.slotsAborted.Load() {
				<-p.wakeCh
			}
			p.mbox.blocked.Store(0)
			if !tail.r.done.Load() {
				panic(deadlockSignal{})
			}
		}
	}

	// Fold the releases into this member's stats, without the engine
	// lock: everything up to the tail is done (each member's chain
	// resolves in order), rels are immutable once done, and nothing can
	// be recycled before this member's settled marks below.
	var bytes, msgs int64
	for _, pr := range p.pend {
		rel := &pr.r.rels[pr.idx]
		bytes += rel.bytes
		msgs += rel.msgs
		for _, sp := range rel.spans {
			p.tview.Add(sp.phase, sp.start, sp.end)
		}
	}
	last := &tail.r.rels[tail.idx]
	out := last.pl
	clock, recvWait := last.clock, last.recvWait

	// Retire the chain. Only a rendezvous' final settler takes its home
	// lock; recycling is head-driven per slot, so it is indifferent to
	// which final mark reaches the lock first. A chain can span engines
	// (intra-shard and cross-shard collectives interleaved), so the lock
	// switches per home — one at a time, never two held together.
	var locked *engineShard
	for _, pr := range p.pend {
		// Read the member count before the settled mark: the mark
		// releases this member's claim on the rendezvous, after which a
		// final settler elsewhere may recycle it.
		k := int32(len(pr.r.entries))
		if pr.r.settled.Add(1) != k {
			continue
		}
		if h := pr.r.slot.home; locked != h {
			if locked != nil {
				locked.mu.Unlock()
			}
			h.mu.Lock()
			locked = h
		}
		pr.r.retired = true
		s := pr.r.slot
		for len(s.ring) > 0 && s.ring[0].retired {
			head := s.ring[0]
			s.ring = s.ring[1:]
			s.baseSeq++
			s.free = append(s.free, head)
		}
	}
	if locked != nil {
		locked.mu.Unlock()
	}

	p.clock.MergeAtLeast(clock)
	p.stats.RecvWait = recvWait
	p.stats.BytesSent += bytes
	p.stats.MsgsSent += msgs
	if msgs > 0 {
		// Feed the watchdog's activity counter the virtual messages this
		// member would have sent on the tree path (sent is owner-sharded;
		// this goroutine is the owner).
		p.mbox.sent.Add(uint64(msgs))
	}
	// Local advances recorded after the tail entry replay onto the
	// settled clock in their original order.
	for _, d := range p.deltaBuf[p.deltaLo:] {
		p.clock.Advance(d)
	}
	p.pend = p.pend[:0]
	p.deltaBuf = p.deltaBuf[:0]
	p.deltaLo = 0
	return out
}

// fusedSim is the analytic replay state: one release accumulator per
// member, advanced by edge helpers that mirror sendRaw/recvRaw exactly.
type fusedSim struct {
	p       *Proc
	members []int
	r       *rendezvous
}

// fusedCompute validates the entries of a full, fully resolved
// rendezvous, replays the collective's tree in dependency order, and
// fills r.rels with one release per member. It runs in whichever
// goroutine made the rendezvous computable (the last arriver, or a
// completer cascading through symbolic entries).
func fusedCompute(p *Proc, r *rendezvous) {
	members := r.slot.members
	entries := r.entries
	kind, root := entries[0].kind, entries[0].root
	for i := range entries {
		e := &entries[i]
		if e.kind != kind || e.root != root {
			panic(fmt.Sprintf("nx: mismatched collectives on one group: member %d (rank %d) entered %v(root %d), member 0 (rank %d) entered %v(root %d)",
				i, members[i], e.kind, e.root, members[0], kind, root))
		}
	}
	for i := range entries {
		r.rels[i] = fusedRelease{clock: entries[i].clock, recvWait: entries[i].recvWait}
	}
	f := &fusedSim{p: p, members: members, r: r}
	switch kind {
	case fusedBarrier:
		f.barrier()
	case fusedBcast:
		f.bcast(root)
	case fusedFlatBcast:
		f.flatBcast(root)
	case fusedReduceFloats:
		f.reduce(root, true)
	case fusedReducePhantom:
		f.reduce(root, false)
	case fusedGather:
		f.gather(root)
	case fusedAllreduceFloats:
		f.reduce(root, true)
		f.bcastReduced(root)
	case fusedAllreducePhantom:
		f.reduce(root, false)
		f.bcastPayload(root, payload{bytes: r.entries[root].nbytes})
	case fusedExchange:
		a, b := &entries[0], &entries[1]
		if a.nbytes != b.nbytes || a.count != b.count {
			panic(fmt.Sprintf("nx: mismatched exchange batch between ranks %d and %d: %d×%dB vs %d×%dB",
				members[0], members[1], a.count, a.nbytes, b.count, b.nbytes))
		}
		f.exchange(a.nbytes, a.count)
	default:
		panic(fmt.Sprintf("nx: unknown fused collective kind %v", kind))
	}
}

// advance mirrors vtime.Clock.Advance: negative and NaN durations are
// ignored, so the replayed clocks agree with the tree path bit for bit.
func advance(c *float64, d float64) {
	if d > 0 && !math.IsNaN(d) {
		*c += d
	}
}

// hops is Proc.hops between two members' global ranks: the Manhattan
// distance of dimension-order routing on the model mesh.
func (f *fusedSim) hops(i, j int) int {
	cols := f.p.meshCols
	a, b := f.members[i], f.members[j]
	return iabs(a/cols-b/cols) + iabs(a%cols-b%cols)
}

// send replays sendRaw for an edge from member i to member j and returns
// the message's virtual arrival time at j. Formula and evaluation order
// are sendRaw's exactly.
func (f *fusedSim) send(i, j, nbytes int) float64 {
	net := &f.p.model.Net
	r := &f.r.rels[i]
	start := r.clock
	advance(&r.clock, net.SendOverhead+float64(nbytes)*net.ByteTime)
	arrive := r.clock + net.Latency + float64(f.hops(i, j))*net.PerHop
	r.bytes += int64(nbytes)
	r.msgs++
	if f.p.rt.traceOn {
		r.spans = append(r.spans, traceSpan{trace.PhaseSend, start, r.clock})
	}
	return arrive
}

// recv replays recvRaw on member j for a message arriving at the given
// virtual time: Lamport-merge the arrival, account the wait, charge the
// receive overhead.
func (f *fusedSim) recv(j int, arrive float64) {
	net := &f.p.model.Net
	r := &f.r.rels[j]
	start := r.clock
	if arrive > r.clock {
		r.recvWait += arrive - r.clock
		r.clock = arrive
	}
	advance(&r.clock, net.RecvOverhead)
	if f.p.rt.traceOn {
		r.spans = append(r.spans, traceSpan{trace.PhaseRecvWait, start, r.clock})
	}
}

// scratchArr returns the pooled n-element arrival scratch.
func (f *fusedSim) scratchArr() []float64 {
	n := len(f.r.entries)
	if cap(f.r.arr) < n {
		f.r.arr = make([]float64, n)
	}
	return f.r.arr[:n]
}

// scratchFloats returns the pooled n-element slice-of-slices scratch,
// cleared.
func scratchFloats(buf *[][]float64, n int) [][]float64 {
	if cap(*buf) < n {
		*buf = make([][]float64, n)
	}
	s := (*buf)[:n]
	for i := range s {
		s[i] = nil
	}
	return s
}

// barrier replays Group.Barrier's dissemination rounds: in round k every
// member sends to (me+k)%n then receives from (me-k+n)%n. Sends of a
// round are replayed before its receives, which is each member's program
// order and satisfies the cross-member arrival dependencies.
func (f *fusedSim) barrier() {
	n := len(f.r.entries)
	arr := f.scratchArr()
	for k := 1; k < n; k <<= 1 {
		for i := 0; i < n; i++ {
			to := (i + k) % n
			arr[to] = f.send(i, to, 0)
		}
		for i := 0; i < n; i++ {
			f.recv(i, arr[i])
		}
	}
}

// bcast replays Group.bcast's binomial tree in increasing virtual-rank
// order (parents precede children), duplicating the legacy mask loop per
// member. Every member's release carries the root's payload — the same
// object the tree path forwards by reference.
func (f *fusedSim) bcast(root int) {
	f.bcastPayload(root, f.r.entries[root].pl)
}

// bcastPayload is bcast for an explicit payload (the allreduce replay
// broadcasts the freshly reduced vector, not the root's entry payload).
func (f *fusedSim) bcastPayload(root int, pl payload) {
	n := len(f.r.entries)
	arr := f.scratchArr()
	for v := 0; v < n; v++ {
		i := (v + root) % n
		mask := 1
		if v == 0 {
			for mask < n {
				mask <<= 1
			}
		} else {
			for mask < n {
				if v&mask != 0 {
					f.recv(i, arr[i])
					break
				}
				mask <<= 1
			}
		}
		for mask >>= 1; mask > 0; mask >>= 1 {
			if v+mask < n {
				dst := ((v + mask) + root) % n
				arr[dst] = f.send(i, dst, pl.bytes)
			}
		}
		f.r.rels[i].pl = pl
	}
}

// bcastReduced finishes an AllreduceFloats: the root copies its reduced
// accumulator (exactly as BcastFloats' root copies its argument) and the
// copy is broadcast to every member.
func (f *fusedSim) bcastReduced(root int) {
	red := f.r.rels[root].pl.floats
	cp := append([]float64(nil), red...)
	f.bcastPayload(root, payload{floats: cp, bytes: 8 * len(cp)})
}

// flatBcast replays BcastFlatPhantom: the root sends to every member in
// group order, each member receives one message.
func (f *fusedSim) flatBcast(root int) {
	n := len(f.r.entries)
	nbytes := f.r.entries[root].nbytes
	arr := f.scratchArr()
	for i := 0; i < n; i++ {
		if i != root {
			arr[i] = f.send(root, i, nbytes)
		}
	}
	for i := 0; i < n; i++ {
		if i != root {
			f.recv(i, arr[i])
		}
	}
}

// reduce replays ReduceFloats (floats=true) or ReducePhantom
// (floats=false): members are processed in decreasing virtual rank, so
// every child's send is replayed before its parent's receive; within a
// member the legacy mask loop runs verbatim, including the combine order
// that makes tree reductions bitwise reproducible. The root's release
// payload carries the reduced accumulator; senders' are nil, exactly as
// the tree path returns.
func (f *fusedSim) reduce(root int, floats bool) {
	n := len(f.r.entries)
	arr := f.scratchArr()
	var accs, sent [][]float64
	if floats {
		accs = scratchFloats(&f.r.flt, n)
		sent = scratchFloats(&f.r.sent, n)
		for i := range accs {
			accs[i] = f.r.entries[i].pl.floats
		}
	}
	for v := n - 1; v >= 0; v-- {
		i := (v + root) % n
		mask := 1
		for mask < n {
			if v&mask != 0 {
				nbytes := f.r.entries[i].nbytes
				if floats {
					nbytes = 8 * len(accs[i])
				}
				arr[i] = f.send(i, ((v-mask)+root)%n, nbytes)
				if floats {
					sent[i] = accs[i]
					accs[i] = nil
				}
				break
			}
			if v+mask < n {
				src := ((v + mask) + root) % n
				f.recv(i, arr[src])
				if floats {
					in := sent[src]
					if len(in) != len(accs[i]) {
						panic(fmt.Sprintf("nx: reduce length mismatch: %d vs %d", len(in), len(accs[i])))
					}
					f.r.entries[i].op(accs[i], in)
				}
			}
			mask <<= 1
		}
		if floats {
			f.r.rels[i].pl = payload{floats: accs[i]}
		}
	}
}

// exchange replays a batch of count symmetric pairwise phantom
// exchanges: each step is, for both members, SendPhantom to the peer then
// Recv from the peer — sends of a step replayed before its receives,
// which is each member's program order and satisfies the cross-member
// arrival dependency, exactly like one dissemination round of barrier.
func (f *fusedSim) exchange(nbytes, count int) {
	arr := f.scratchArr()
	for s := 0; s < count; s++ {
		arr[1] = f.send(0, 1, nbytes)
		arr[0] = f.send(1, 0, nbytes)
		f.recv(0, arr[0])
		f.recv(1, arr[1])
	}
}

// gather replays GatherFloats: every non-root sends its contribution to
// the root, which receives them in group order and concatenates all
// contributions (its own in place) into one freshly built slice.
func (f *fusedSim) gather(root int) {
	n := len(f.r.entries)
	arr := f.scratchArr()
	for i := 0; i < n; i++ {
		if i != root {
			arr[i] = f.send(i, root, 8*len(f.r.entries[i].pl.floats))
		}
	}
	total := len(f.r.entries[root].pl.floats)
	for i := 0; i < n; i++ {
		if i == root {
			continue
		}
		f.recv(root, arr[i])
		total += len(f.r.entries[i].pl.floats)
	}
	out := make([]float64, 0, total)
	for i := 0; i < n; i++ {
		out = append(out, f.r.entries[i].pl.floats...)
	}
	f.r.rels[root].pl = payload{floats: out}
}
