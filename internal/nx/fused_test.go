package nx

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/trace"
)

// The differential suite: every program below runs once with the fused
// analytic engine and once with the tree message path, and the two runs
// must agree bit for bit — exit clocks observed inside the program,
// final ProcStats, Makespan, payload contents, and trace spans. This is
// the contract that lets the fused engine be the default.

// diffModel is a small asymmetric mesh so hops matter.
func diffModel(rows, cols int) machine.Model {
	m := machine.Delta()
	m.Rows, m.Cols = rows, cols
	return m
}

// runBoth executes body under both collective modes on the given model
// and returns the two results plus whatever the body recorded per proc.
func runBoth(t *testing.T, model machine.Model, procs int, make func(mode CollectiveMode) func(p *Proc)) (tree, fused *Result) {
	t.Helper()
	tree, err := Run(Config{Model: model, Procs: procs, Collectives: CollectivesTree}, make(CollectivesTree))
	if err != nil {
		t.Fatalf("tree run: %v", err)
	}
	fused, err = Run(Config{Model: model, Procs: procs, Collectives: CollectivesFused}, make(CollectivesFused))
	if err != nil {
		t.Fatalf("fused run: %v", err)
	}
	return tree, fused
}

// assertResultsEqual demands bitwise equality of everything a Result
// carries.
func assertResultsEqual(t *testing.T, tree, fused *Result) {
	t.Helper()
	if tree.Makespan != fused.Makespan {
		t.Fatalf("makespan: tree %v fused %v (diff %g)", tree.Makespan, fused.Makespan, fused.Makespan-tree.Makespan)
	}
	if tree.TotalFlops != fused.TotalFlops || tree.TotalBytes != fused.TotalBytes || tree.TotalMsgs != fused.TotalMsgs {
		t.Fatalf("totals: tree %+v fused %+v", tree, fused)
	}
	for i := range tree.Procs {
		if tree.Procs[i] != fused.Procs[i] {
			t.Fatalf("proc %d stats:\n tree  %+v\n fused %+v", i, tree.Procs[i], fused.Procs[i])
		}
	}
}

// randMembers draws a random-size, randomly-ordered subset of ranks that
// includes every rank (collectives need all members to enter), or a
// random subset when sub is true — in which case non-members do disjoint
// local work.
func randMembers(rng *rand.Rand, procs int) []int {
	members := rng.Perm(procs)
	k := 1 + rng.Intn(procs)
	return members[:k]
}

// TestFusedDifferentialRandomPrograms sweeps random group shapes, member
// subsets, payload kinds and skewed entry clocks through every fused
// collective and asserts bit-identical exit clocks and stats against the
// tree path.
func TestFusedDifferentialRandomPrograms(t *testing.T) {
	shapes := [][2]int{{1, 2}, {2, 2}, {1, 7}, {3, 5}, {4, 8}, {2, 16}}
	for trial := 0; trial < 40; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			shape := shapes[trial%len(shapes)]
			model := diffModel(shape[0], shape[1])
			procs := model.Nodes()
			seed := int64(1000 + trial)

			// The trial's script is fixed up front so both modes execute
			// the identical program: a sequence of ops on a random member
			// subset, with per-member pre-op compute skew.
			rng := rand.New(rand.NewSource(seed))
			members := randMembers(rng, procs)
			nops := 6 + rng.Intn(10)
			type op struct {
				kind  int
				root  int
				size  int
				skews []float64
			}
			ops := make([]op, nops)
			for i := range ops {
				o := &ops[i]
				o.kind = rng.Intn(8)
				o.root = rng.Intn(len(members))
				o.size = rng.Intn(5)
				o.skews = make([]float64, procs)
				for r := range o.skews {
					if rng.Intn(2) == 0 {
						o.skews[r] = rng.Float64() * 1e-3
					}
				}
			}

			// exit[mode][proc] records p.Now() after every op, which
			// forces a settle and checks clocks mid-program, not just at
			// the end. outs records payload-carrying results.
			exits := map[CollectiveMode][][]float64{}
			outs := map[CollectiveMode][][]float64{}
			for _, m := range []CollectiveMode{CollectivesTree, CollectivesFused} {
				exits[m] = make([][]float64, procs)
				outs[m] = make([][]float64, procs)
			}

			body := func(mode CollectiveMode) func(p *Proc) {
				return func(p *Proc) {
					inGroup := false
					for _, m := range members {
						if m == p.Rank() {
							inGroup = true
						}
					}
					if !inGroup {
						// Non-members do disjoint local work; their
						// clocks must be identical trivially.
						p.Compute(machine.OpScalar, 1000)
						exits[mode][p.Rank()] = append(exits[mode][p.Rank()], p.Now())
						return
					}
					g := p.Group(members)
					me := g.Rank()
					for _, o := range ops {
						p.Compute(machine.OpVector, o.skews[p.Rank()]*1e9)
						switch o.kind {
						case 0:
							g.Barrier()
						case 1:
							g.BcastPhantom(o.root, 64+o.size)
						case 2:
							data := []byte(nil)
							if me == o.root {
								data = make([]byte, 3+o.size)
								for i := range data {
									data[i] = byte(o.root + i)
								}
							}
							got := g.Bcast(o.root, data)
							outs[mode][p.Rank()] = append(outs[mode][p.Rank()], float64(len(got)))
						case 3:
							xs := make([]float64, 2+o.size)
							for i := range xs {
								xs[i] = float64(me*17+i) * 1.25
							}
							got := g.BcastFloats(o.root, xs)
							outs[mode][p.Rank()] = append(outs[mode][p.Rank()], got...)
						case 4:
							g.ReducePhantom(o.root, 8*(1+o.size))
							g.BcastFlatPhantom(o.root, 16)
						case 5:
							xs := make([]float64, 1+o.size)
							for i := range xs {
								xs[i] = 1.0 / float64(me+i+1)
							}
							got := g.ReduceFloats(o.root, xs, SumOp)
							outs[mode][p.Rank()] = append(outs[mode][p.Rank()], got...)
						case 6:
							xs := make([]float64, 1+me%3)
							for i := range xs {
								xs[i] = float64(me) + float64(i)*0.5
							}
							got := g.GatherFloats(o.root, xs)
							outs[mode][p.Rank()] = append(outs[mode][p.Rank()], got...)
						case 7:
							v := math.Sin(float64(me + o.size))
							mx, loc := g.MaxLoc(v)
							outs[mode][p.Rank()] = append(outs[mode][p.Rank()], mx, float64(loc))
						}
						exits[mode][p.Rank()] = append(exits[mode][p.Rank()], p.Now())
					}
				}
			}

			tree, fused := runBoth(t, model, procs, body)
			assertResultsEqual(t, tree, fused)
			for r := 0; r < procs; r++ {
				if !reflect.DeepEqual(exits[CollectivesTree][r], exits[CollectivesFused][r]) {
					t.Fatalf("proc %d exit clocks diverge:\n tree  %v\n fused %v",
						r, exits[CollectivesTree][r], exits[CollectivesFused][r])
				}
				if !reflect.DeepEqual(outs[CollectivesTree][r], outs[CollectivesFused][r]) {
					t.Fatalf("proc %d payloads diverge:\n tree  %v\n fused %v",
						r, outs[CollectivesTree][r], outs[CollectivesFused][r])
				}
			}
		})
	}
}

// TestFusedDifferentialAllreducePair: AllreduceFloats / AllreducePhantom
// are single fused rendezvous but must match the tree's reduce+broadcast
// pair exactly, including with skewed entries and mixed point-to-point
// traffic between collectives (which forces deferred chains to settle).
func TestFusedDifferentialAllreducePair(t *testing.T) {
	model := diffModel(3, 4)
	procs := model.Nodes()
	type rec struct {
		clocks []float64
		vals   []float64
	}
	run := func(mode CollectiveMode) []rec {
		recs := make([]rec, procs)
		_, err := Run(Config{Model: model, Collectives: mode}, func(p *Proc) {
			g := p.World()
			r := &recs[p.Rank()]
			for it := 0; it < 20; it++ {
				p.Compute(machine.OpVector, float64(p.Rank()*1000+it))
				g.AllreducePhantom(0, 16)
				g.BcastPhantom(it%procs, 8*it)
				// Pairwise traffic between neighbours forces settles in
				// the middle of deferred chains.
				if it%3 == 0 && procs >= 2 {
					peer := p.Rank() ^ 1
					if peer < procs {
						p.SendPhantom(peer, Tag(it%100), 24)
						p.Recv(peer, Tag(it%100))
					}
				}
				out := g.AllreduceFloats([]float64{float64(p.Rank()) * 0.3, float64(it)}, MaxOp)
				r.vals = append(r.vals, out...)
				r.clocks = append(r.clocks, p.Now())
			}
		})
		if err != nil {
			t.Fatalf("%v run: %v", mode, err)
		}
		return recs
	}
	tree := run(CollectivesTree)
	fused := run(CollectivesFused)
	for i := range tree {
		if !reflect.DeepEqual(tree[i], fused[i]) {
			t.Fatalf("proc %d diverges:\n tree  %+v\n fused %+v", i, tree[i], fused[i])
		}
	}
}

// TestFusedDifferentialTrace: with a Recorder attached the fused engine
// must emit the identical span stream (tracing disables deferral but not
// fusion).
func TestFusedDifferentialTrace(t *testing.T) {
	model := diffModel(2, 4)
	run := func(mode CollectiveMode) []trace.Record {
		rec := trace.NewRecorder(model.Nodes())
		_, err := Run(Config{Model: model, Trace: rec, Collectives: mode}, func(p *Proc) {
			g := p.World()
			p.Compute(machine.OpGemm, float64(1e6*(p.Rank()+1)))
			g.Barrier()
			g.BcastPhantom(0, 1024)
			g.ReducePhantom(1, 64)
			g.AllreducePhantom(0, 8)
			switch p.Rank() {
			case 0, 3, 5:
				sub := p.Group([]int{0, 3, 5})
				sub.BcastPhantom(0, 128)
			}
		})
		if err != nil {
			t.Fatalf("%v run: %v", mode, err)
		}
		return rec.Records()
	}
	tree := run(CollectivesTree)
	fused := run(CollectivesFused)
	if !reflect.DeepEqual(tree, fused) {
		t.Fatalf("trace records diverge: tree %d records, fused %d", len(tree), len(fused))
	}
}

// TestFusedSameMemberGroupsSequential: two distinct Group handles over
// the same member list, used one after the other, share the slot exactly
// as they share the tag space on the tree path.
func TestFusedSameMemberGroupsSequential(t *testing.T) {
	model := diffModel(1, 4)
	run := func(mode CollectiveMode) *Result {
		res, err := Run(Config{Model: model, Collectives: mode}, func(p *Proc) {
			a := p.World()
			a.Barrier()
			a.BcastPhantom(0, 100)
			b := p.World() // same members, fresh handle
			b.ReducePhantom(0, 50)
			b.Barrier()
			a.BcastPhantom(1, 10) // back to the first handle
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		return res
	}
	assertResultsEqual(t, run(CollectivesTree), run(CollectivesFused))
}

// TestFusedDeadlockDetected: a member that never enters the collective
// must still trip the deadlock watchdog in fused mode, with a diagnostic
// naming the fused wait.
func TestFusedDeadlockDetected(t *testing.T) {
	model := diffModel(1, 3)
	_, err := Run(Config{Model: model, DeadlockAfter: 100e6, Collectives: CollectivesFused}, func(p *Proc) {
		if p.Rank() == 2 {
			// Never enters the barrier; parks on a receive instead.
			p.Recv(0, 7)
			return
		}
		g := p.World()
		g.Barrier()
		// Force the members to settle so they park in the fused wait.
		_ = p.Now()
	})
	var dead *DeadlockError
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	if de, ok := err.(*DeadlockError); ok {
		dead = de
	} else {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	found := false
	for _, w := range dead.Waiters {
		if len(w) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("deadlock diagnostic empty: %v", dead.Waiters)
	}
}

// TestFusedGroupStatsMatchSingleProc sanity-checks the n==1 early-return
// paths (no tags consumed, no rendezvous) stay aligned across modes.
func TestFusedGroupStatsMatchSingleProc(t *testing.T) {
	model := diffModel(1, 1)
	run := func(mode CollectiveMode) *Result {
		res, err := Run(Config{Model: model, Collectives: mode}, func(p *Proc) {
			g := p.World()
			g.Barrier()
			g.BcastPhantom(0, 10)
			g.ReducePhantom(0, 10)
			g.AllreducePhantom(0, 10)
			out := g.GatherFloats(0, []float64{1, 2})
			if len(out) != 2 {
				panic("gather self")
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		return res
	}
	assertResultsEqual(t, run(CollectivesTree), run(CollectivesFused))
}
