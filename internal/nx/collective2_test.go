package nx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRingAllreduceMatchesTree(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		for _, vecLen := range []int{1, 4, 17, 64} {
			n, vecLen := n, vecLen
			inputs := make([][]float64, n)
			rng := rand.New(rand.NewSource(int64(n*100 + vecLen)))
			for i := range inputs {
				inputs[i] = make([]float64, vecLen)
				for j := range inputs[i] {
					inputs[i][j] = rng.NormFloat64()
				}
			}
			want := make([]float64, vecLen)
			for _, in := range inputs {
				for j, v := range in {
					want[j] += v
				}
			}
			mustRun(t, Config{Model: tiny(1, 8), Procs: n}, func(p *Proc) {
				out := p.World().RingAllreduceFloats(inputs[p.Rank()], SumOp)
				if len(out) != vecLen {
					t.Errorf("n=%d len=%d: got %d elements", n, vecLen, len(out))
					return
				}
				for j := range want {
					if math.Abs(out[j]-want[j]) > 1e-9*(1+math.Abs(want[j])) {
						t.Errorf("n=%d len=%d rank=%d: out[%d]=%g want %g",
							n, vecLen, p.Rank(), j, out[j], want[j])
						return
					}
				}
			})
		}
	}
}

func TestRingAllreduceShortVector(t *testing.T) {
	// vector shorter than the group: some chunks are empty
	mustRun(t, Config{Model: tiny(1, 6)}, func(p *Proc) {
		out := p.World().RingAllreduceFloats([]float64{1, 2}, SumOp)
		if out[0] != 6 || out[1] != 12 {
			t.Errorf("rank %d: %v, want [6 12]", p.Rank(), out)
		}
	})
}

func TestRingBeatsTreeForLargeVectors(t *testing.T) {
	// The design choice the ablation quantifies: for large payloads the
	// ring's 2(n-1) chunk transfers beat the tree's log2(n) full-vector
	// store-and-forward levels.
	model := tiny(1, 16)
	const bytes = 1 << 20
	tree := mustRun(t, Config{Model: model}, func(p *Proc) {
		g := p.World()
		g.ReducePhantom(0, bytes)
		g.BcastPhantom(0, bytes)
	})
	ring := mustRun(t, Config{Model: model}, func(p *Proc) {
		p.World().RingAllreducePhantom(bytes)
	})
	if ring.Makespan >= tree.Makespan {
		t.Fatalf("ring (%g) should beat tree (%g) at 1 MiB", ring.Makespan, tree.Makespan)
	}
}

func TestTreeBeatsRingForSmallVectors(t *testing.T) {
	// ... and the tree wins in the latency regime.
	model := tiny(1, 16)
	const bytes = 8
	tree := mustRun(t, Config{Model: model}, func(p *Proc) {
		g := p.World()
		g.ReducePhantom(0, bytes)
		g.BcastPhantom(0, bytes)
	})
	ring := mustRun(t, Config{Model: model}, func(p *Proc) {
		p.World().RingAllreducePhantom(bytes)
	})
	if tree.Makespan >= ring.Makespan {
		t.Fatalf("tree (%g) should beat ring (%g) at 8 bytes", tree.Makespan, ring.Makespan)
	}
}

func TestScatter(t *testing.T) {
	mustRun(t, Config{Model: tiny(1, 4)}, func(p *Proc) {
		g := p.World()
		var xs []float64
		if g.Rank() == 1 { // non-zero root
			xs = []float64{0, 1, 10, 11, 20, 21, 30, 31}
		}
		out := g.ScatterFloats(1, xs)
		want := []float64{float64(10 * g.Rank()), float64(10*g.Rank() + 1)}
		if len(out) != 2 || out[0] != want[0] || out[1] != want[1] {
			t.Errorf("rank %d: scatter = %v, want %v", g.Rank(), out, want)
		}
	})
}

func TestScatterValidation(t *testing.T) {
	_, err := Run(Config{Model: tiny(1, 4)}, func(p *Proc) {
		g := p.World()
		var xs []float64
		if g.Rank() == 0 {
			xs = make([]float64, 7) // not divisible by 4
		}
		g.ScatterFloats(0, xs)
	})
	var pe *PanicError
	if !asErr(err, &pe) {
		t.Fatalf("want PanicError, got %v", err)
	}
}

func TestScanPrefixSums(t *testing.T) {
	const n = 7
	mustRun(t, Config{Model: tiny(1, n)}, func(p *Proc) {
		g := p.World()
		out := g.ScanFloats([]float64{float64(g.Rank() + 1)}, SumOp)
		// inclusive prefix of 1..r+1 = (r+1)(r+2)/2
		r := g.Rank()
		want := float64((r + 1) * (r + 2) / 2)
		if out[0] != want {
			t.Errorf("rank %d: scan = %g, want %g", r, out[0], want)
		}
	})
}

func TestScanSingleProc(t *testing.T) {
	mustRun(t, Config{Model: tiny(1, 1)}, func(p *Proc) {
		out := p.World().ScanFloats([]float64{5}, SumOp)
		if out[0] != 5 {
			t.Errorf("scan on 1 proc = %v", out)
		}
	})
}

func TestRingAllreducePropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		vecLen := 1 + rng.Intn(32)
		inputs := make([][]float64, n)
		for i := range inputs {
			inputs[i] = make([]float64, vecLen)
			for j := range inputs[i] {
				inputs[i][j] = rng.NormFloat64()
			}
		}
		want := make([]float64, vecLen)
		for _, in := range inputs {
			for j, v := range in {
				want[j] += v
			}
		}
		ok := true
		_, err := Run(Config{Model: tiny(1, 8), Procs: n}, func(p *Proc) {
			out := p.World().RingAllreduceFloats(inputs[p.Rank()], SumOp)
			for j := range want {
				if math.Abs(out[j]-want[j]) > 1e-9*(1+math.Abs(want[j])) {
					ok = false
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
