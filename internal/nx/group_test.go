package nx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

func TestGroupConstruction(t *testing.T) {
	mustRun(t, Config{Model: tiny(2, 2)}, func(p *Proc) {
		w := p.World()
		if w.Size() != 4 || w.Rank() != p.Rank() {
			t.Errorf("world wrong: size %d rank %d", w.Size(), w.Rank())
		}
		members := w.Members()
		for i, m := range members {
			if m != i {
				t.Errorf("world members = %v", members)
			}
		}
		// mutating the returned slice must not affect the group
		members[0] = 99
		if w.Members()[0] != 0 {
			t.Error("Members leaked internal state")
		}
	})
}

func TestGroupValidation(t *testing.T) {
	cases := []struct {
		name    string
		members func(p *Proc) []int
	}{
		{"empty", func(*Proc) []int { return nil }},
		{"dup", func(p *Proc) []int { return []int{p.Rank(), p.Rank()} }},
		{"out-of-range", func(p *Proc) []int { return []int{p.Rank(), 100} }},
		{"not-member", func(p *Proc) []int { return []int{(p.Rank() + 1) % 4} }},
	}
	for _, c := range cases {
		_, err := Run(Config{Model: tiny(2, 2)}, func(p *Proc) {
			p.Group(c.members(p))
		})
		var pe *PanicError
		if !asErr(err, &pe) {
			t.Errorf("%s: want PanicError, got %v", c.name, err)
		}
	}
}

func TestBarrierSynchronizesVirtualTime(t *testing.T) {
	// One slow process; after the barrier every clock must be at least the
	// slow process's pre-barrier time.
	res := mustRun(t, Config{Model: tiny(1, 4)}, func(p *Proc) {
		if p.Rank() == 2 {
			p.Elapse(5)
		}
		p.World().Barrier()
	})
	for r, ps := range res.Procs {
		if ps.Finish < 5 {
			t.Fatalf("rank %d finished at %g, before the slow rank's 5s", r, ps.Finish)
		}
	}
}

func TestBcastBytesAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9} {
		n := n
		mustRun(t, Config{Model: tiny(1, 9), Procs: n}, func(p *Proc) {
			g := p.World()
			var in []byte
			if g.Rank() == 0 {
				in = []byte{10, 20, 30}
			}
			out := g.Bcast(0, in)
			if len(out) != 3 || out[0] != 10 || out[2] != 30 {
				t.Errorf("n=%d rank=%d: bcast = %v", n, p.Rank(), out)
			}
		})
	}
}

func TestBcastNonZeroRoot(t *testing.T) {
	mustRun(t, Config{Model: tiny(1, 6)}, func(p *Proc) {
		g := p.World()
		var in []float64
		if g.Rank() == 4 {
			in = []float64{3.14}
		}
		out := g.BcastFloats(4, in)
		if len(out) != 1 || out[0] != 3.14 {
			t.Errorf("rank %d: bcast from root 4 = %v", p.Rank(), out)
		}
	})
}

func TestBcastRootOutOfRangePanics(t *testing.T) {
	_, err := Run(Config{Model: tiny(1, 2)}, func(p *Proc) {
		p.World().Bcast(5, nil)
	})
	var pe *PanicError
	if !asErr(err, &pe) {
		t.Fatalf("want PanicError, got %v", err)
	}
}

func TestReduceSum(t *testing.T) {
	const n = 7
	res := mustRun(t, Config{Model: tiny(1, n)}, func(p *Proc) {
		g := p.World()
		x := []float64{float64(p.Rank() + 1), 1}
		out := g.ReduceFloats(0, x, SumOp)
		if g.Rank() == 0 {
			if out[0] != n*(n+1)/2 {
				t.Errorf("sum = %g, want %d", out[0], n*(n+1)/2)
			}
			if out[1] != n {
				t.Errorf("count = %g, want %d", out[1], n)
			}
		} else if out != nil {
			t.Errorf("non-root got non-nil reduce result")
		}
	})
	if res.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
}

func TestAllreduceEveryoneAgrees(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		n := n
		mustRun(t, Config{Model: tiny(1, 8), Procs: n}, func(p *Proc) {
			g := p.World()
			out := g.AllreduceFloats([]float64{float64(p.Rank())}, MaxOp)
			if out[0] != float64(n-1) {
				t.Errorf("n=%d rank=%d: allreduce max = %g, want %d", n, p.Rank(), out[0], n-1)
			}
		})
	}
}

func TestReduceMinOp(t *testing.T) {
	mustRun(t, Config{Model: tiny(1, 5)}, func(p *Proc) {
		g := p.World()
		out := g.AllreduceFloats([]float64{float64(10 - p.Rank())}, MinOp)
		if out[0] != 6 {
			t.Errorf("min = %g, want 6", out[0])
		}
	})
}

func TestMaxLoc(t *testing.T) {
	mustRun(t, Config{Model: tiny(1, 6)}, func(p *Proc) {
		g := p.World()
		// values: rank 3 holds the max
		v := []float64{1, 5, 2, 9, 0, 3}[p.Rank()]
		maxV, loc := g.MaxLoc(v)
		if maxV != 9 || loc != 3 {
			t.Errorf("rank %d: MaxLoc = (%g, %d), want (9, 3)", p.Rank(), maxV, loc)
		}
	})
}

func TestMaxLocTieBreaksLowRank(t *testing.T) {
	mustRun(t, Config{Model: tiny(1, 4)}, func(p *Proc) {
		g := p.World()
		maxV, loc := g.MaxLoc(7) // everyone ties
		if maxV != 7 || loc != 0 {
			t.Errorf("tie: MaxLoc = (%g, %d), want (7, 0)", maxV, loc)
		}
	})
}

func TestGatherPreservesOrderAndRaggedSizes(t *testing.T) {
	mustRun(t, Config{Model: tiny(1, 4)}, func(p *Proc) {
		g := p.World()
		// rank r contributes r+1 copies of float64(r)
		mine := make([]float64, p.Rank()+1)
		for i := range mine {
			mine[i] = float64(p.Rank())
		}
		out := g.GatherFloats(0, mine)
		if g.Rank() != 0 {
			if out != nil {
				t.Error("non-root gather result should be nil")
			}
			return
		}
		want := []float64{0, 1, 1, 2, 2, 2, 3, 3, 3, 3}
		if len(out) != len(want) {
			t.Fatalf("gather len = %d, want %d", len(out), len(want))
		}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("gather[%d] = %g, want %g", i, out[i], want[i])
			}
		}
	})
}

func TestAllGather(t *testing.T) {
	mustRun(t, Config{Model: tiny(1, 5)}, func(p *Proc) {
		g := p.World()
		out := g.AllGatherFloats([]float64{float64(p.Rank() * 10)})
		for i := 0; i < 5; i++ {
			if out[i] != float64(i*10) {
				t.Errorf("rank %d: allgather[%d] = %g", p.Rank(), i, out[i])
			}
		}
	})
}

func TestSubGroupsRowsAndColumns(t *testing.T) {
	// 2x3 grid: row groups and column groups running interleaved
	// collectives — the LU communication pattern.
	const rows, cols = 2, 3
	mustRun(t, Config{Model: tiny(rows, cols)}, func(p *Proc) {
		myRow := p.Rank() / cols
		myCol := p.Rank() % cols
		rowMembers := make([]int, cols)
		for c := 0; c < cols; c++ {
			rowMembers[c] = myRow*cols + c
		}
		colMembers := make([]int, rows)
		for r := 0; r < rows; r++ {
			colMembers[r] = r*cols + myCol
		}
		rowG := p.Group(rowMembers)
		colG := p.Group(colMembers)

		// row sum: sum of ranks in my row
		rs := rowG.AllreduceFloats([]float64{float64(p.Rank())}, SumOp)
		wantRow := 0.0
		for _, m := range rowMembers {
			wantRow += float64(m)
		}
		if rs[0] != wantRow {
			t.Errorf("rank %d: row sum = %g, want %g", p.Rank(), rs[0], wantRow)
		}

		// column sum interleaved right after
		cs := colG.AllreduceFloats([]float64{float64(p.Rank())}, SumOp)
		wantCol := 0.0
		for _, m := range colMembers {
			wantCol += float64(m)
		}
		if cs[0] != wantCol {
			t.Errorf("rank %d: col sum = %g, want %g", p.Rank(), cs[0], wantCol)
		}
	})
}

func TestPhantomCollectives(t *testing.T) {
	res := mustRun(t, Config{Model: tiny(1, 4)}, func(p *Proc) {
		g := p.World()
		g.BcastPhantom(0, 1000)
		g.ReducePhantom(0, 500)
	})
	if res.TotalMsgs == 0 || res.TotalBytes == 0 {
		t.Fatal("phantom collectives should generate traffic statistics")
	}
	if res.Makespan <= 0 {
		t.Fatal("phantom collectives should consume virtual time")
	}
}

func TestAllreduceSumMatchesSerialProperty(t *testing.T) {
	// Property: distributed allreduce sum equals the serial sum of the
	// same inputs (within FP tolerance), for random vectors and sizes.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		vecLen := 1 + rng.Intn(5)
		inputs := make([][]float64, n)
		for i := range inputs {
			inputs[i] = make([]float64, vecLen)
			for j := range inputs[i] {
				inputs[i][j] = rng.NormFloat64()
			}
		}
		want := make([]float64, vecLen)
		for _, in := range inputs {
			for j, v := range in {
				want[j] += v
			}
		}
		ok := true
		res, err := Run(Config{Model: tiny(1, 8), Procs: n}, func(p *Proc) {
			out := p.World().AllreduceFloats(inputs[p.Rank()], SumOp)
			for j := range want {
				if math.Abs(out[j]-want[j]) > 1e-9*(1+math.Abs(want[j])) {
					ok = false
				}
			}
		})
		// single-proc runs move no messages, so their makespan is 0
		return err == nil && ok && (n == 1 || res.Makespan > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveDeterminism(t *testing.T) {
	// Two identical runs must produce bit-identical makespans: virtual
	// time cannot depend on host scheduling for exact-source programs.
	run := func() float64 {
		res := mustRun(t, Config{Model: tiny(2, 4)}, func(p *Proc) {
			g := p.World()
			for i := 0; i < 5; i++ {
				p.Compute(machine.OpGemm, float64(1e5*(p.Rank()+1)))
				g.AllreduceFloats([]float64{float64(p.Rank())}, SumOp)
				g.Barrier()
			}
		})
		return res.Makespan
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic makespan: %g vs %g", a, b)
	}
}

func TestBcastFlatPhantomSlowerThanTree(t *testing.T) {
	// The linear broadcast serializes P-1 sends on the root; the binomial
	// tree pipelines them in log2(P) rounds. On 16 procs the tree must win
	// clearly — this is the design choice the ablation bench quantifies.
	model := tiny(1, 16)
	flat := mustRun(t, Config{Model: model}, func(p *Proc) {
		p.World().BcastFlatPhantom(0, 10000)
	})
	tree := mustRun(t, Config{Model: model}, func(p *Proc) {
		p.World().BcastPhantom(0, 10000)
	})
	if tree.Makespan >= flat.Makespan {
		t.Fatalf("tree bcast (%g) should beat flat bcast (%g)",
			tree.Makespan, flat.Makespan)
	}
}

func TestBcastTimeGrowsLogarithmically(t *testing.T) {
	// Binomial bcast over n procs should cost ~ceil(log2 n) message steps,
	// not n-1: compare 16-proc bcast against 16x a single message time.
	model := tiny(1, 16)
	res := mustRun(t, Config{Model: model}, func(p *Proc) {
		p.World().BcastPhantom(0, 0)
	})
	oneHopMax := model.PointToPointTime(0, 15, 0)
	linearTime := 15 * oneHopMax
	if res.Makespan >= linearTime/2 {
		t.Fatalf("bcast makespan %g too close to linear cost %g; tree broken?",
			res.Makespan, linearTime)
	}
}
