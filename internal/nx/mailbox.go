package nx

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Msg is a received message. Exactly one of Data or Floats is non-nil for
// payload-carrying messages; both are nil for phantom messages, whose
// declared size still contributes to virtual transfer time and statistics.
type Msg struct {
	Src      int
	Tag      Tag
	Data     []byte
	Floats   []float64
	Bytes    int     // payload size in bytes (declared size for phantoms)
	ArriveAt float64 // virtual arrival time at the receiver
}

// mailbox is the per-process receive queue with MPI-style (src, tag)
// matching. put may be called from any goroutine; get only from the owner.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []Msg
	aborted bool
	// wantSrc/wantTag describe the in-progress blocked receive for
	// deadlock diagnostics; valid only while waiting is true.
	waiting bool
	wantSrc int
	wantTag Tag
}

func (m *mailbox) init() {
	m.cond = sync.NewCond(&m.mu)
}

func (m *mailbox) put(rt *runtime, msg Msg) {
	m.mu.Lock()
	m.pending = append(m.pending, msg)
	m.mu.Unlock()
	atomic.AddUint64(&rt.puts, 1)
	m.cond.Signal()
}

// get blocks until a message matching (src, tag) is available and removes
// it from the queue. Matching scans pending messages in arrival order, so
// messages from a given source are received in the order they were sent.
func (m *mailbox) get(rt *runtime, src int, tag Tag) Msg {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.aborted {
			panic(deadlockSignal{})
		}
		for i := range m.pending {
			msg := m.pending[i]
			if (src == AnySrc || msg.Src == src) && (tag == AnyTag || msg.Tag == tag) {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				return msg
			}
		}
		m.waiting, m.wantSrc, m.wantTag = true, src, tag
		atomic.AddInt64(&rt.blocked, 1)
		m.cond.Wait()
		atomic.AddInt64(&rt.blocked, -1)
		m.waiting = false
	}
}

// probe reports whether a matching message is available without removing it.
func (m *mailbox) probe(src int, tag Tag) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.pending {
		msg := m.pending[i]
		if (src == AnySrc || msg.Src == src) && (tag == AnyTag || msg.Tag == tag) {
			return true
		}
	}
	return false
}

// abort wakes every waiter with a teardown signal and poisons the mailbox.
func (m *mailbox) abort() {
	m.mu.Lock()
	m.aborted = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// waitingFor describes the blocked receive, if any, for diagnostics.
func (m *mailbox) waitingFor() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.waiting {
		return ""
	}
	src := "any"
	if m.wantSrc != AnySrc {
		src = fmt.Sprintf("%d", m.wantSrc)
	}
	tag := "any"
	if m.wantTag != AnyTag {
		tag = fmt.Sprintf("%d", int(m.wantTag))
	}
	return fmt.Sprintf("(src=%s, tag=%s) with %d pending", src, tag, len(m.pending))
}
