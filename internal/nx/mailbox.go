package nx

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Msg is a received message. Exactly one of Data or Floats is non-nil for
// payload-carrying messages; both are nil for phantom messages, whose
// declared size still contributes to virtual transfer time and statistics.
type Msg struct {
	Src      int
	Tag      Tag
	Data     []byte
	Floats   []float64
	Bytes    int     // payload size in bytes (declared size for phantoms)
	ArriveAt float64 // virtual arrival time at the receiver
}

// mailbox is the per-process receive queue with MPI-style (src, tag)
// matching. put may be called from any goroutine; get only from the owner.
//
// Pending messages live in a pooled ring buffer: slots are reused across
// the run, so the phantom-mode hot path (millions of payload-free
// collective messages at Delta scale) performs no steady-state allocation
// per message. The ring preserves arrival order, which is what makes
// wildcard matching and per-sender FIFO behave exactly as the old
// append/delete slice did.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	// buf is the ring: count messages starting at head, oldest first.
	buf     []Msg
	head    int
	count   int
	aborted bool
	// wantSrc/wantTag describe the in-progress blocked receive for
	// deadlock diagnostics; valid only while waiting is true. waiting
	// also gates the wakeup signal: a put that finds no blocked owner
	// skips the notify entirely (the owner will scan the ring on its
	// next get), which removes a futex operation from most deliveries.
	waiting bool
	wantSrc int
	wantTag Tag

	// Watchdog counters, sharded per process so the hot path never
	// contends on a shared cache line. sent counts messages sent *by*
	// this mailbox's owner (updated only from the owner goroutine);
	// blocked is blockedRecv while the owner is parked in a receive and
	// blockedFused while it is parked in a fused-collective rendezvous
	// (fused.go). The deadlock watchdog reads both across all processes.
	sent    atomic.Uint64
	blocked atomic.Int32
}

// blocked states (mailbox.blocked).
const (
	blockedRecv  = 1 // parked in mailbox.get
	blockedFused = 2 // parked in a fused-collective rendezvous
)

func (m *mailbox) init() {
	m.cond = sync.NewCond(&m.mu)
}

// put appends one message to the ring, constructing it in place in the
// ring slot — the pooled scratch that keeps the phantom hot path at one
// struct store per delivery, no intermediate Msg value.
//
// The wakeup is match-aware: a parked owner is signalled only when the
// arriving message satisfies the (src, tag) it is blocked on. Eager
// sending means messages for *future* receives routinely land while the
// owner waits on an earlier one; waking it to rescan and re-park for each
// of those is pure scheduler churn. A non-matching message just joins the
// ring — the owner's next full scan (on the matching wakeup, or on its
// next get) finds it there.
func (m *mailbox) put(src int, tag Tag, data []byte, floats []float64, nbytes int, arriveAt float64) {
	m.mu.Lock()
	if m.count == len(m.buf) {
		m.grow()
	}
	m.buf[(m.head+m.count)%len(m.buf)] = Msg{
		Src: src, Tag: tag, Data: data, Floats: floats,
		Bytes: nbytes, ArriveAt: arriveAt,
	}
	m.count++
	wake := m.waiting &&
		(m.wantSrc == AnySrc || src == m.wantSrc) &&
		(m.wantTag == AnyTag || tag == m.wantTag)
	m.mu.Unlock()
	if wake {
		m.cond.Signal()
	}
}

// grow doubles the ring (from a small floor), unrolling it so the oldest
// message lands at index 0.
func (m *mailbox) grow() {
	n := 2 * len(m.buf)
	if n < 8 {
		n = 8
	}
	nb := make([]Msg, n)
	for i := 0; i < m.count; i++ {
		nb[i] = m.buf[(m.head+i)%len(m.buf)]
	}
	m.buf = nb
	m.head = 0
}

// get blocks until a message matching (src, tag) is available and removes
// it from the queue. Matching scans pending messages in arrival order, so
// messages from a given source are received in the order they were sent.
func (m *mailbox) get(src int, tag Tag) Msg {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.aborted {
			panic(deadlockSignal{})
		}
		for i := 0; i < m.count; i++ {
			msg := &m.buf[(m.head+i)%len(m.buf)]
			if (src == AnySrc || msg.Src == src) && (tag == AnyTag || msg.Tag == tag) {
				out := *msg
				m.remove(i)
				return out
			}
		}
		m.waiting, m.wantSrc, m.wantTag = true, src, tag
		m.blocked.Store(blockedRecv)
		m.cond.Wait()
		m.blocked.Store(0)
		m.waiting = false
	}
}

// remove deletes the i-th pending message (0 = oldest), preserving the
// order of the rest. The common case — matching the oldest message — is a
// head advance; otherwise the messages older than i shift up by one slot.
// The vacated slot is zeroed so the ring does not pin payload slices.
func (m *mailbox) remove(i int) {
	n := len(m.buf)
	for j := i; j > 0; j-- {
		m.buf[(m.head+j)%n] = m.buf[(m.head+j-1)%n]
	}
	m.buf[m.head] = Msg{}
	m.head = (m.head + 1) % n
	m.count--
}

// probe reports whether a matching message is available without removing it.
func (m *mailbox) probe(src int, tag Tag) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := 0; i < m.count; i++ {
		msg := &m.buf[(m.head+i)%len(m.buf)]
		if (src == AnySrc || msg.Src == src) && (tag == AnyTag || msg.Tag == tag) {
			return true
		}
	}
	return false
}

// abort wakes every waiter with a teardown signal and poisons the mailbox.
func (m *mailbox) abort() {
	m.mu.Lock()
	m.aborted = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// waitingFor describes the blocked receive, if any, for diagnostics.
func (m *mailbox) waitingFor() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.waiting {
		return ""
	}
	src := "any"
	if m.wantSrc != AnySrc {
		src = fmt.Sprintf("%d", m.wantSrc)
	}
	tag := "any"
	if m.wantTag != AnyTag {
		tag = fmt.Sprintf("%d", int(m.wantTag))
	}
	return fmt.Sprintf("(src=%s, tag=%s) with %d pending", src, tag, m.count)
}
