// Package nx is a virtual-time message-passing runtime modelled on the
// Intel NX system software that ran the Touchstone Delta. It is the
// substrate every distributed experiment in this repository executes on.
//
// Each simulated node is a goroutine running the same program body (SPMD).
// Blocking send/receive with (source, tag) matching, wildcard receives and
// tree-based collectives mirror the NX csend/crecv/gop interface.
//
// Time is virtual: each process owns a clock (package vtime); computation
// advances it through the machine model (package machine); every message
// carries its arrival timestamp, and a receive merges that timestamp into
// the receiver's clock. The simulated makespan of a run is therefore a
// deterministic function of the program and the machine model — independent
// of host scheduling — provided receives name exact sources (wildcard
// receives are matched in host arrival order; see Proc.Recv).
//
// Sends are eager: the sending goroutine never blocks on the host, so
// programs cannot deadlock on buffer exhaustion; rendezvous cost appears in
// virtual time only. A watchdog detects true receive-cycle deadlocks and
// fails the run with a diagnostic instead of hanging the test suite.
package nx

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/machine"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Tag labels a message class. User code must use tags in [0, TagUserMax);
// larger values are reserved for collectives.
type Tag int

// Wildcards and tag-space layout.
const (
	// AnyTag matches any message tag in a receive.
	AnyTag Tag = -1
	// AnySrc matches any source rank in a receive.
	AnySrc int = -1
	// TagUserMax is the first tag reserved for internal use.
	TagUserMax Tag = 1 << 28
)

// Config describes a run.
type Config struct {
	// Model is the machine the program runs on. Required.
	Model machine.Model
	// Procs is the number of processes; 0 means Model.Nodes(). It must not
	// exceed Model.Nodes() (ranks are mapped one-to-one onto mesh nodes).
	Procs int
	// Trace, if non-nil, records per-process activity spans.
	Trace *trace.Recorder
	// DeadlockAfter overrides the watchdog quiescence interval (host time).
	// Zero means the 2s default. Tests inject small values.
	DeadlockAfter time.Duration
	// Ctx, if non-nil, cancels the run: once Ctx is done, every process
	// is unblocked at its next receive (the boundary every collective
	// passes through), the run tears down, and Run returns Ctx.Err()
	// instead of a result. A nil Ctx preserves the classic
	// run-to-completion behavior.
	Ctx context.Context
	// Collectives selects how Group collectives execute: fused analytic
	// rendezvous (the default) or the legacy per-edge tree messages.
	// Both produce bit-identical virtual times and stats; see fused.go.
	Collectives CollectiveMode
	// Shards partitions the fused-collective engine across host cores:
	// processes split into that many contiguous rank ranges, each with
	// its own engine lock, slot map and mailbox pool, with cross-shard
	// member lists settled through one extra rendezvous layer (see
	// shard.go). 0 means the process-wide default (SetDefaultShards /
	// the -sim-shards flag / HPCC_SIM_SHARDS, normally 1); counts above
	// the process count are clamped. Virtual times, stats and traces
	// are bit-identical for every shard count.
	Shards int
	// pendLimit overrides the adaptive deferred-settlement window
	// (tests only; 0 = adaptivePendLimit of the process count).
	pendLimit int
}

// ProcStats summarizes one process after a run.
type ProcStats struct {
	Finish      float64 // final virtual clock, seconds
	Flops       float64 // floating-point operations charged
	BytesSent   int64   // payload bytes sent (declared size for phantoms)
	MsgsSent    int64   // messages sent
	ComputeTime float64 // virtual seconds spent in Compute/Elapse
	RecvWait    float64 // virtual seconds spent waiting for messages
}

// Result summarizes a completed run.
type Result struct {
	Makespan   float64 // virtual seconds; max over process finish times
	Procs      []ProcStats
	TotalFlops float64
	TotalBytes int64
	TotalMsgs  int64
}

// GFlops returns the achieved simulated rate in GFLOPS.
func (r *Result) GFlops() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return r.TotalFlops / r.Makespan / 1e9
}

// DeadlockError reports that every process was blocked in a receive with no
// messages able to satisfy any of them.
type DeadlockError struct {
	// Waiters describes what each blocked process was waiting for.
	Waiters []string
}

// Error implements the error interface.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf("nx: deadlock: all processes blocked in recv (%d waiters, e.g. %s)",
		len(e.Waiters), firstN(e.Waiters, 4))
}

func firstN(ss []string, n int) string {
	if len(ss) < n {
		n = len(ss)
	}
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += "; "
		}
		out += ss[i]
	}
	return out
}

// PanicError wraps a panic raised inside a process body.
type PanicError struct {
	Rank  int
	Value any
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("nx: process %d panicked: %v", e.Rank, e.Value)
}

// Run executes body on every process of a fresh runtime and returns the
// aggregated result. It blocks until all processes finish, one of them
// panics, the deadlock watchdog trips, or cfg.Ctx is cancelled.
func Run(cfg Config, body func(p *Proc)) (*Result, error) {
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if cfg.Ctx != nil {
		if err := cfg.Ctx.Err(); err != nil {
			return nil, err
		}
	}
	n := cfg.Procs
	if n == 0 {
		n = cfg.Model.Nodes()
	}
	if n < 1 || n > cfg.Model.Nodes() {
		return nil, fmt.Errorf("nx: Procs=%d invalid for %d-node model", n, cfg.Model.Nodes())
	}
	quiesce := cfg.DeadlockAfter
	if quiesce <= 0 {
		quiesce = 2 * time.Second
	}

	mode := cfg.Collectives
	if mode == CollectivesAuto {
		mode = DefaultCollectives()
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = DefaultShards()
	}
	if shards < 1 {
		return nil, fmt.Errorf("nx: Shards=%d invalid (want >= 1, or 0 for the default)", cfg.Shards)
	}
	if shards > n {
		shards = n
	}
	pendLimit := cfg.pendLimit
	if pendLimit <= 0 {
		pendLimit = adaptivePendLimit(n)
	}
	rt := &runtime{
		procs:     make([]*Proc, n),
		shardIdx:  make([]int32, n),
		shards:    make([]*engineShard, shards),
		traceOn:   cfg.Trace != nil,
		pendLimit: pendLimit,
	}
	for si := range rt.shards {
		// Balanced contiguous partition: shard si homes ranks
		// [si*n/S, (si+1)*n/S). The Proc structs of a shard (mailboxes
		// included) are one contiguous allocation, so a shard's hot
		// state stays in its own region of the heap.
		lo, hi := si*n/shards, (si+1)*n/shards
		es := &engineShard{procs: make([]*Proc, 0, hi-lo)}
		backing := make([]Proc, hi-lo)
		for i := lo; i < hi; i++ {
			p := &backing[i-lo]
			p.rank, p.size, p.model = i, n, cfg.Model
			p.rt = rt
			p.fused = mode == CollectivesFused
			p.wakeCh = make(chan struct{}, 1)
			p.initCaches()
			p.mbox.init()
			if cfg.Trace != nil {
				p.tview = cfg.Trace.Proc(i)
			}
			rt.procs[i] = p
			rt.shardIdx[i] = int32(si)
			es.procs = append(es.procs, p)
		}
		rt.shards[si] = es
	}
	if shards == 1 {
		rt.cross = rt.shards[0]
	} else {
		rt.cross = &engineShard{}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for _, p := range rt.procs {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					if _, isDeadlock := v.(deadlockSignal); isDeadlock {
						return // reported by the watchdog
					}
					errCh <- &PanicError{Rank: p.rank, Value: v}
					rt.abort() // unblock everyone else
				}
			}()
			body(p)
			// Apply any deferred collective releases so the final clock
			// and stats reflect every operation the body performed.
			p.settle()
		}(p)
	}

	// Deadlock watchdog: if every process is blocked in recv and no
	// deliveries happen across a quiescence window, the run cannot make
	// progress. The counters it sums are sharded per process (see
	// mailbox.sent/blocked), so the watchdog pays the aggregation cost —
	// a few hundred atomic loads four times per second — instead of the
	// hot path paying a contended atomic per message.
	stop := make(chan struct{})
	var watchErr error
	var watchWg sync.WaitGroup
	watchWg.Add(1)
	go func() {
		defer watchWg.Done()
		tick := time.NewTicker(quiesce / 4)
		defer tick.Stop()
		var lastPuts uint64
		stable := 0
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				blocked, puts := rt.counters()
				if blocked == n && puts == lastPuts {
					stable++
					if stable >= 4 { // a full quiescence window
						watchErr = &DeadlockError{Waiters: rt.waiters()}
						rt.abort()
						return
					}
				} else {
					stable = 0
				}
				lastPuts = puts
			}
		}
	}()

	// Cancellation watcher: a done Ctx aborts the runtime, which unblocks
	// every receive — the boundary all collectives pass through — so a
	// cancelled sweep job stops promptly instead of simulating to the end.
	if cfg.Ctx != nil {
		watchWg.Add(1)
		go func() {
			defer watchWg.Done()
			select {
			case <-stop:
			case <-cfg.Ctx.Done():
				rt.abort()
			}
		}()
	}

	wg.Wait()
	close(stop)
	watchWg.Wait()
	close(errCh)
	if cfg.Ctx != nil {
		if err := cfg.Ctx.Err(); err != nil {
			// The processes were torn down mid-run; the cancellation, not
			// any secondary teardown symptom, is the run's outcome.
			return nil, err
		}
	}
	if watchErr != nil {
		return nil, watchErr
	}
	if err, ok := <-errCh; ok {
		return nil, err
	}

	res := &Result{Procs: make([]ProcStats, n)}
	times := make([]float64, n)
	for i, p := range rt.procs {
		p.stats.Finish = p.clock.Now()
		res.Procs[i] = p.stats
		times[i] = p.stats.Finish
		res.TotalFlops += p.stats.Flops
		res.TotalBytes += p.stats.BytesSent
		res.TotalMsgs += p.stats.MsgsSent
	}
	res.Makespan = vtime.Makespan(times)
	return res, nil
}

// runtime is the shared state of one Run invocation.
type runtime struct {
	procs   []*Proc
	traceOn bool // cfg.Trace was set; fused releases carry trace spans

	// The fused-collective engine, sharded (see shard.go): shards[i]
	// homes a contiguous rank range (shardIdx maps rank -> shard), and
	// cross is the rendezvous layer for member lists spanning shards
	// (== shards[0] when there is only one shard). slotsAborted poisons
	// fused waits once the run tears down. pendLimit bounds each
	// member's deferred-settlement chain (see adaptivePendLimit).
	shards       []*engineShard
	cross        *engineShard
	shardIdx     []int32
	slotsAborted atomic.Bool
	pendLimit    int
}

// counters aggregates the per-process watchdog shards, shard by shard:
// how many processes are blocked (in a receive or a fused-collective
// rendezvous) right now, and the total messages sent so far.
func (rt *runtime) counters() (blocked int, puts uint64) {
	for _, es := range rt.shards {
		for _, p := range es.procs {
			if p.mbox.blocked.Load() != 0 {
				blocked++
			}
			puts += p.mbox.sent.Load()
		}
	}
	return blocked, puts
}

func (rt *runtime) abort() {
	for _, p := range rt.procs {
		p.mbox.abort()
	}
	rt.abortSlots()
}

func (rt *runtime) waiters() []string {
	var out []string
	for _, p := range rt.procs {
		if p.mbox.blocked.Load() == blockedFused {
			out = append(out, fmt.Sprintf("rank %d waiting in a fused collective (another member never entered it)", p.rank))
			continue
		}
		if w := p.mbox.waitingFor(); w != "" {
			out = append(out, fmt.Sprintf("rank %d waiting for %s", p.rank, w))
		}
	}
	return out
}

// errAborted is what receives observe when the run is torn down.
var errAborted = errors.New("nx: run aborted")

// deadlockSignal is panicked inside a process goroutine to unwind it when
// the watchdog (or a sibling panic) aborts the run.
type deadlockSignal struct{}
