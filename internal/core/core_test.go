package core

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/harness"
)

func TestNewProgramAssembled(t *testing.T) {
	p := NewProgram()
	if p.Machine.Nodes() != 528 {
		t.Fatalf("machine nodes = %d", p.Machine.Nodes())
	}
	if p.Network.Nodes() < 10 {
		t.Fatalf("network too small: %d", p.Network.Nodes())
	}
	if len(p.Budget) != 8 || len(p.Agencies) != 8 {
		t.Fatalf("budget %d / agencies %d, want 8/8", len(p.Budget), len(p.Agencies))
	}
}

func TestSevenExperimentsOrdered(t *testing.T) {
	exps := NewProgram().Experiments()
	if len(exps) != 7 {
		t.Fatalf("%d experiments, want 7", len(exps))
	}
	for i, e := range exps {
		wantID := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7"}[i]
		if e.ID != wantID {
			t.Fatalf("experiment %d has ID %s, want %s", i, e.ID, wantID)
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

func TestRunExperimentUnknownID(t *testing.T) {
	_, err := NewProgram().RunExperiment("E99")
	if err == nil || !strings.Contains(err.Error(), "E99") {
		t.Fatalf("want unknown-experiment error, got %v", err)
	}
}

func TestRunExperimentCaseInsensitive(t *testing.T) {
	out, err := NewProgram().RunExperiment("e1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "654.8") {
		t.Fatalf("E1 output missing total:\n%s", out)
	}
}

func TestE1ContainsPaperNumbers(t *testing.T) {
	out, err := NewProgram().RunExperiment("E1")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DARPA", "232.2", "802.9", "Growth"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E1 missing %q:\n%s", want, out)
		}
	}
}

func TestE2MatrixShape(t *testing.T) {
	out, err := NewProgram().RunExperiment("E2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"HPCS", "ASTA", "NREN", "BRHR", "EPA"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E2 missing %q", want)
		}
	}
}

func TestE3PeakNumbers(t *testing.T) {
	out, err := NewProgram().RunExperiment("E3")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"528", "32.0 GFLOPS", "16 x 33"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E3 missing %q:\n%s", want, out)
		}
	}
}

func TestE4QuickRuns(t *testing.T) {
	p := NewProgram()
	p.Quick = true
	out, err := p.RunExperiment("E4")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"GFLOPS", "2048", "Paper's measured rate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E4 missing %q:\n%s", want, out)
		}
	}
}

func TestE5NetworkExhibit(t *testing.T) {
	out, err := NewProgram().RunExperiment("E5")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"CASA HIPPI/SONET", "NSFnet T3", "Caltech", "log scale"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E5 missing %q:\n%s", want, out)
		}
	}
}

func TestE6E7QuickScaling(t *testing.T) {
	p := NewProgram()
	p.Quick = true
	for _, id := range []string{"E6", "E7"} {
		out, err := p.RunExperiment(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(out, "Speedup") || !strings.Contains(out, "16") {
			t.Fatalf("%s output wrong:\n%s", id, out)
		}
	}
}

func TestWriteReportQuick(t *testing.T) {
	p := NewProgram()
	p.Quick = true
	var buf bytes.Buffer
	if err := p.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, e := range p.Experiments() {
		if !strings.Contains(out, "=== "+e.ID+":") {
			t.Fatalf("report missing %s", e.ID)
		}
	}
}

func TestWriteReportJobsByteIdentical(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{2, 4, 0} { // 0 = one per host core
		p := NewProgram()
		p.Quick = true
		var seq, par bytes.Buffer
		if err := p.WriteReportJobs(ctx, &seq, 1); err != nil {
			t.Fatal(err)
		}
		if err := p.WriteReportJobs(ctx, &par, workers); err != nil {
			t.Fatal(err)
		}
		if seq.String() != par.String() {
			t.Fatalf("report with %d workers differs from sequential", workers)
		}
	}
}

func TestExhibitsRegisteredWithHarness(t *testing.T) {
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7"} {
		w, err := harness.Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		if w.Description() == "" {
			t.Fatalf("%s has no description", id)
		}
	}
	// Running through the registry reproduces the Program path's text.
	w, err := harness.Lookup("E1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(context.Background(), harness.Params{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewProgram().RunExperiment("E1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Text != want {
		t.Fatal("registry-path E1 text differs from Program path")
	}
	if res.Paper == "" || res.Title == "" {
		t.Fatalf("registry result missing exhibit metadata: %+v", res)
	}
}

func TestReportResultsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := NewProgram()
	p.Quick = true
	_, err := p.ReportResults(ctx, 2)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
