// Package core is the public face of the library: it assembles the federal
// HPCC program model the paper describes — the four program components, the
// agencies and budgets, the Touchstone Delta machine model, the consortium
// network — and exposes every paper exhibit (E1-E7) as a runnable
// experiment.
//
// The exhibits are registered as harness workloads (IDs "E1".."E7"), so
// they are also reachable through the workload registry and the concurrent
// sweep engine. A downstream user builds a Program with NewProgram and
// either runs a single experiment by ID or regenerates the full report,
// optionally across host cores:
//
//	prog := core.NewProgram()
//	text, err := prog.RunExperiment("E4")  // Delta LINPACK
//	err = prog.WriteReport(os.Stdout)      // everything, sequential
//	err = prog.WriteReportJobs(ctx, os.Stdout, runtime.NumCPU()) // same bytes, parallel
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/agency"
	"repro/internal/apps/shallow"
	"repro/internal/apps/stencil"
	"repro/internal/funding"
	"repro/internal/harness"
	"repro/internal/linpack"
	"repro/internal/machine"
	"repro/internal/nren"
	"repro/internal/report"
	"repro/internal/topo"
)

// Program models the HPCC program: participating agencies and budgets plus
// the technical artifacts (flagship machine, consortium network).
type Program struct {
	// Machine is the flagship machine model (the Touchstone Delta).
	Machine machine.Model
	// Network is the consortium wide-area topology.
	Network *topo.Graph
	// Budget is the FY92-93 funding table.
	Budget []funding.Line
	// Agencies is the responsibilities matrix.
	Agencies []agency.Agency
	// Quick shrinks the expensive experiments (E4, E6, E7) to small
	// configurations for fast smoke runs; headline numbers then no longer
	// match the paper.
	Quick bool
}

// NewProgram assembles the full 1992 program model.
func NewProgram() *Program {
	return &Program{
		Machine:  machine.Delta(),
		Network:  topo.Consortium(),
		Budget:   funding.FY9293(),
		Agencies: agency.All(),
	}
}

// Experiment is one paper exhibit with the code that regenerates it.
type Experiment struct {
	ID    string
	Title string
	Paper string // what the paper reports
	Run   func(p *Program) (string, error)
}

// exhibitVersion is the exhibits' cache version (harness.Versioned): an
// exhibit's Result is a pure function of (ID, Params.Quick, this string),
// so the result cache can serve `hpcc report -cache` from disk. Bump it
// whenever any exhibit's rendering or underlying model changes output for
// a fixed Params — all seven share it, since they share the Program model.
const exhibitVersion = "hpcc-1992.1"

// exhibit is a paper exhibit as a harness workload: runnable against a
// fresh default Program through the registry, or against a configured
// Program through bind.
type exhibit struct {
	id    string
	title string
	paper string
	run   func(p *Program) (string, error)
}

// exhibits lists every paper exhibit in paper order. The init function
// below registers each with the default workload registry.
var exhibits = []exhibit{
	{
		id:    "E1",
		title: "Federal HPCC program funding FY92-93",
		paper: "8 agencies; totals $654.8M (FY92) and $802.9M (FY93)",
		run:   runE1,
	},
	{
		id:    "E2",
		title: "Federal HPCC program responsibilities matrix",
		paper: "agencies x {HPCS, ASTA, NREN, BRHR}",
		run:   runE2,
	},
	{
		id:    "E3",
		title: "Touchstone Delta peak speed",
		paper: "peak speed of 32 GFLOPS using the 528 numeric processors",
		run:   runE3,
	},
	{
		id:    "E4",
		title: "Delta LINPACK benchmark",
		paper: "13 GFLOPS on a LINPACK code of order 25,000 by 25,000",
		run:   runE4,
	},
	{
		id:    "E5",
		title: "Delta Consortium network connections",
		paper: "NSFnet T1/T3, ESnet T1, CASA HIPPI/SONET 800 Mbps, regional T1 and 56 kbps",
		run:   runE5,
	},
	{
		id:    "E6",
		title: "Computational aerosciences testbed scaling",
		paper: "CAS consortium applications exploit the Delta testbed",
		run:   runE6,
	},
	{
		id:    "E7",
		title: "Ocean/atmosphere Grand Challenge scaling",
		paper: "NOAA/EPA ocean and atmospheric computation research on HPCC testbeds",
		run:   runE7,
	},
}

func init() {
	for _, e := range exhibits {
		harness.MustRegister(e)
	}
}

// ID implements harness.Workload.
func (e exhibit) ID() string { return e.id }

// Description implements harness.Workload.
func (e exhibit) Description() string { return e.title }

// ParamSpace implements harness.Workload: exhibits only take the universal
// quick/seed knobs.
func (e exhibit) ParamSpace() []harness.Param { return nil }

// WorkloadVersion implements harness.Versioned. boundExhibit inherits it,
// so bound and registry-served exhibits share cache entries. That is
// sound only while the bound Program matches a fresh NewProgram in every
// field but Quick (the one field the cache key captures) — true for the
// hpcc CLI; library callers who customize a Program must keep it off
// caching executors (see ReportResultsExec).
func (e exhibit) WorkloadVersion() string { return exhibitVersion }

// Run implements harness.Workload against a fresh default Program. The
// ctx check covers cancellation between exhibits; the simulations
// themselves run to completion once started.
func (e exhibit) Run(ctx context.Context, p harness.Params) (harness.Result, error) {
	if err := ctx.Err(); err != nil {
		return harness.Result{}, err
	}
	prog := NewProgram()
	prog.Quick = p.Quick
	return e.runWith(prog)
}

func (e exhibit) runWith(p *Program) (harness.Result, error) {
	text, err := e.run(p)
	if err != nil {
		return harness.Result{}, err
	}
	return harness.Result{
		WorkloadID: e.id,
		Title:      e.title,
		Paper:      e.paper,
		Text:       text,
	}, nil
}

// bind pins the exhibit to a caller-configured Program, so report
// generation honors field overrides (Quick, a swapped Machine, ...).
func (e exhibit) bind(p *Program) harness.Workload {
	return boundExhibit{exhibit: e, prog: p}
}

type boundExhibit struct {
	exhibit
	prog *Program
}

// Run implements harness.Workload against the bound Program.
func (b boundExhibit) Run(ctx context.Context, _ harness.Params) (harness.Result, error) {
	if err := ctx.Err(); err != nil {
		return harness.Result{}, err
	}
	return b.runWith(b.prog)
}

// Experiments returns all exhibits in paper order, backed by the same
// workloads the registry serves.
func (p *Program) Experiments() []Experiment {
	out := make([]Experiment, len(exhibits))
	for i, e := range exhibits {
		out[i] = Experiment{ID: e.id, Title: e.title, Paper: e.paper, Run: e.run}
	}
	return out
}

// RunExperiment regenerates a single exhibit by ID ("E1".."E7").
func (p *Program) RunExperiment(id string) (string, error) {
	res, err := p.ExperimentResult(id)
	if err != nil {
		return "", err
	}
	return res.Text, nil
}

// ExperimentResult regenerates a single exhibit by ID as a structured
// harness result (title, paper claim, text, metrics).
func (p *Program) ExperimentResult(id string) (harness.Result, error) {
	e, err := findExhibit(id)
	if err != nil {
		return harness.Result{}, err
	}
	return e.runWith(p)
}

// ExperimentWorkload returns one exhibit as a harness.Workload bound to
// this Program — the handle result-cache callers need (stable ID, kernel
// version) without running anything yet. Running it produces exactly
// ExperimentResult's output.
func (p *Program) ExperimentWorkload(id string) (harness.Workload, error) {
	e, err := findExhibit(id)
	if err != nil {
		return nil, err
	}
	return e.bind(p), nil
}

func findExhibit(id string) (exhibit, error) {
	for _, e := range exhibits {
		if strings.EqualFold(e.id, id) {
			return e, nil
		}
	}
	var ids []string
	for _, e := range exhibits {
		ids = append(ids, e.id)
	}
	return exhibit{}, fmt.Errorf("core: unknown experiment %q (have %s)", id, strings.Join(ids, ", "))
}

// WriteReport regenerates every exhibit into w, sequentially.
func (p *Program) WriteReport(w io.Writer) error {
	return p.WriteReportJobs(context.Background(), w, 1)
}

// ReportResults runs every exhibit through the sweep engine on `workers`
// goroutines (workers < 1 means one per host core) and returns the
// structured results in paper order — the order is deterministic however
// many workers run.
func (p *Program) ReportResults(ctx context.Context, workers int) ([]harness.Result, error) {
	return p.ReportResultsExec(ctx, harness.LocalExecutor{Workers: workers}, nil)
}

// ReportResultsExec runs every exhibit on the given executor and returns
// the structured results in paper order. emit, when non-nil, streams each
// result in paper order as soon as every exhibit before it has finished
// (the harness.Executor contract), so long reports show progress.
//
// With a process-sharding executor the exhibits travel by registry ID and
// rerun in the worker against a fresh default Program; only
// Params{Quick: p.Quick} crosses the process boundary, so a Program with
// any other field customized should stick to an in-process executor. The
// same impurity applies to harness.CachingExecutor: an exhibit's cache
// identity is (ID, Params, exhibitVersion) — Quick is the only Program
// field it captures — so a Program with a swapped Machine, Network,
// Budget or Agencies would share entries with the default Program and
// must not run through a cache.
func (p *Program) ReportResultsExec(ctx context.Context, ex harness.Executor, emit func(int, harness.Result)) ([]harness.Result, error) {
	jobs := make([]harness.Job, len(exhibits))
	for i, e := range exhibits {
		jobs[i] = harness.Job{Workload: e.bind(p), Params: harness.Params{Quick: p.Quick}}
	}
	results, err := ex.Execute(ctx, jobs, emit)
	if err != nil {
		// The completed prefix travels with the error (the Executor
		// contract), so an interrupted report can still persist or
		// journal the exhibits that finished.
		var je *harness.JobError
		if errors.As(err, &je) {
			return results, fmt.Errorf("core: %s: %w", je.WorkloadID, je.Err)
		}
		return results, fmt.Errorf("core: report: %w", err)
	}
	return results, nil
}

// WriteReportJobs regenerates every exhibit into w using `workers`
// concurrent workers. Output is byte-identical to the sequential
// WriteReport regardless of workers: the sweep engine assembles results
// in paper order.
func (p *Program) WriteReportJobs(ctx context.Context, w io.Writer, workers int) error {
	results, err := p.ReportResults(ctx, workers)
	if err != nil {
		return err
	}
	return WriteResults(w, results)
}

// WriteResults renders structured exhibit results in the report's text
// format — the single place that format lives, so callers that need the
// results themselves (e.g. to persist them to a run store) can still
// print the byte-identical report.
func WriteResults(w io.Writer, results []harness.Result) error {
	for _, r := range results {
		if err := WriteResult(w, r); err != nil {
			return err
		}
	}
	return nil
}

// WriteResult renders one exhibit result in the report's text format —
// the unit streaming report paths print as each result completes.
func WriteResult(w io.Writer, r harness.Result) error {
	_, err := fmt.Fprintf(w, "=== %s: %s ===\npaper: %s\n\n%s\n", r.WorkloadID, r.Title, r.Paper, r.Text)
	return err
}

func runE1(*Program) (string, error) {
	return funding.Table().Render() + "\n" + funding.GrowthTable().Render(), nil
}

func runE2(*Program) (string, error) {
	return agency.Matrix().Render(), nil
}

func runE3(p *Program) (string, error) {
	t := report.NewTable("Concurrent Supercomputer Consortium: Intel Touchstone Delta",
		"Property", "Value")
	t.AddRow("Numeric processors", report.Cellf("%d", p.Machine.Nodes()))
	t.AddRow("Mesh", report.Cellf("%d x %d", p.Machine.Rows, p.Machine.Cols))
	t.AddRow("Per-node peak", report.Cellf("%.1f MFLOPS", p.Machine.Compute.PeakMFlops))
	t.AddRow("Aggregate peak", report.Cellf("%.1f GFLOPS", p.Machine.PeakGFlops()))
	t.AddRow("Consortium partners", report.Cellf("%d organizations", len(agency.DeltaPartners())))
	return t.Render(), nil
}

// DeltaLinpack returns the paper's benchmark configuration (or the scaled
// quick version).
func (p *Program) DeltaLinpack() linpack.Config {
	cfg := linpack.Config{
		N: 25000, NB: 16, GridRows: 16, GridCols: 33,
		Model: p.Machine, Phantom: true, Seed: 1992,
	}
	if p.Quick {
		cfg.N, cfg.GridRows, cfg.GridCols = 2048, 4, 8
	}
	return cfg
}

func runE4(p *Program) (string, error) {
	cfg := p.DeltaLinpack()
	out, err := linpack.Run(cfg)
	if err != nil {
		return "", err
	}
	t := report.NewTable("LINPACK on the Touchstone Delta model", "Quantity", "Value")
	t.AddRow("Matrix order N", report.Cellf("%d", out.N))
	t.AddRow("Process grid", report.Cellf("%d x %d", out.GridRows, out.GridCols))
	t.AddRow("Block size", report.Cellf("%d", out.NB))
	t.AddRow("Simulated time", report.Cellf("%.1f s", out.FactTime))
	t.AddRow("Simulated rate", report.Cellf("%.2f GFLOPS", out.GFlops))
	t.AddRow("Efficiency vs peak", report.Cellf("%.1f %%", out.Efficiency*100))
	t.AddRow("Analytic model rate", report.Cellf("%.2f GFLOPS", linpack.PredictGFlops(cfg)))
	t.AddRow("Paper's measured rate", "13 GFLOPS")
	return t.Render(), nil
}

func runE5(p *Program) (string, error) {
	classTbl, err := nren.LinkClassTable(10e6)
	if err != nil {
		return "", err
	}
	sites := []string{topo.SiteCaltech, topo.SiteJPL, topo.SiteSDSC, topo.SiteLANL, topo.SiteRice, topo.SiteRegional}
	m, err := nren.TransferMatrix(p.Network, sites, 10e6)
	if err != nil {
		return "", err
	}
	matTbl := nren.MatrixTable("10 MB transfer times between consortium sites (seconds)", sites, m)
	classes := topo.Classes()
	labels := make([]string, len(classes))
	rates := make([]float64, len(classes))
	for i, c := range classes {
		labels[i] = c.Name
		rates[i] = c.Mbps
	}
	chart := report.LogBarChart("Link rates (Mbps, log scale)", labels, rates, 40)
	return classTbl.Render() + "\n" + matTbl.Render() + "\n" + chart, nil
}

func (p *Program) scalingProcs() []int {
	if p.Quick {
		return []int{1, 4, 16}
	}
	return []int{1, 4, 16, 66, 264, 528}
}

func runE6(p *Program) (string, error) {
	grid := 1056
	iters := 20
	if p.Quick {
		grid, iters = 256, 5
	}
	pts, err := stencil.StrongScaling(p.Machine, grid, grid, iters, p.scalingProcs())
	if err != nil {
		return "", err
	}
	t := report.NewTable(
		report.Cellf("CFD relaxation kernel, %dx%d grid, strong scaling on the Delta model", grid, grid),
		"Procs", "Time(s)", "Speedup", "Efficiency")
	for _, pt := range pts {
		t.AddRow(report.Cellf("%d", pt.Procs), report.Cellf("%.3f", pt.Time),
			report.Cellf("%.1f", pt.Speedup), report.Cellf("%.2f", pt.Efficiency))
	}
	return t.Render(), nil
}

func runE7(p *Program) (string, error) {
	grid := 1056
	steps := 20
	if p.Quick {
		grid, steps = 256, 5
	}
	params := shallow.DefaultParams()
	t := report.NewTable(
		report.Cellf("Shallow-water model, %dx%d grid, strong scaling on the Delta model", grid, grid),
		"Procs", "Time(s)", "Speedup", "Efficiency")
	var t1 float64
	for i, procs := range p.scalingProcs() {
		out, err := shallow.RunDistributed(shallow.Config{
			NX: grid, NY: grid, Steps: steps, Procs: procs,
			Params: params, Model: p.Machine, Phantom: true,
		})
		if err != nil {
			return "", err
		}
		if i == 0 {
			t1 = out.Time * float64(p.scalingProcs()[0])
		}
		speedup := t1 / out.Time
		t.AddRow(report.Cellf("%d", procs), report.Cellf("%.3f", out.Time),
			report.Cellf("%.1f", speedup), report.Cellf("%.2f", speedup/float64(procs)))
	}
	return t.Render(), nil
}
