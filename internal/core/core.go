// Package core is the public face of the library: it assembles the federal
// HPCC program model the paper describes — the four program components, the
// agencies and budgets, the Touchstone Delta machine model, the consortium
// network — and exposes every paper exhibit (E1-E7) as a runnable
// experiment.
//
// A downstream user builds a Program with NewProgram and either runs a
// single experiment by ID or regenerates the full report:
//
//	prog := core.NewProgram()
//	text, err := prog.RunExperiment("E4") // Delta LINPACK
//	err = prog.WriteReport(os.Stdout)     // everything
package core

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/agency"
	"repro/internal/apps/shallow"
	"repro/internal/apps/stencil"
	"repro/internal/funding"
	"repro/internal/linpack"
	"repro/internal/machine"
	"repro/internal/nren"
	"repro/internal/report"
	"repro/internal/topo"
)

// Program models the HPCC program: participating agencies and budgets plus
// the technical artifacts (flagship machine, consortium network).
type Program struct {
	// Machine is the flagship machine model (the Touchstone Delta).
	Machine machine.Model
	// Network is the consortium wide-area topology.
	Network *topo.Graph
	// Budget is the FY92-93 funding table.
	Budget []funding.Line
	// Agencies is the responsibilities matrix.
	Agencies []agency.Agency
	// Quick shrinks the expensive experiments (E4, E6, E7) to small
	// configurations for fast smoke runs; headline numbers then no longer
	// match the paper.
	Quick bool
}

// NewProgram assembles the full 1992 program model.
func NewProgram() *Program {
	return &Program{
		Machine:  machine.Delta(),
		Network:  topo.Consortium(),
		Budget:   funding.FY9293(),
		Agencies: agency.All(),
	}
}

// Experiment is one paper exhibit with the code that regenerates it.
type Experiment struct {
	ID    string
	Title string
	Paper string // what the paper reports
	Run   func(p *Program) (string, error)
}

// Experiments returns all exhibits in paper order.
func (p *Program) Experiments() []Experiment {
	return []Experiment{
		{
			ID:    "E1",
			Title: "Federal HPCC program funding FY92-93",
			Paper: "8 agencies; totals $654.8M (FY92) and $802.9M (FY93)",
			Run:   runE1,
		},
		{
			ID:    "E2",
			Title: "Federal HPCC program responsibilities matrix",
			Paper: "agencies x {HPCS, ASTA, NREN, BRHR}",
			Run:   runE2,
		},
		{
			ID:    "E3",
			Title: "Touchstone Delta peak speed",
			Paper: "peak speed of 32 GFLOPS using the 528 numeric processors",
			Run:   runE3,
		},
		{
			ID:    "E4",
			Title: "Delta LINPACK benchmark",
			Paper: "13 GFLOPS on a LINPACK code of order 25,000 by 25,000",
			Run:   runE4,
		},
		{
			ID:    "E5",
			Title: "Delta Consortium network connections",
			Paper: "NSFnet T1/T3, ESnet T1, CASA HIPPI/SONET 800 Mbps, regional T1 and 56 kbps",
			Run:   runE5,
		},
		{
			ID:    "E6",
			Title: "Computational aerosciences testbed scaling",
			Paper: "CAS consortium applications exploit the Delta testbed",
			Run:   runE6,
		},
		{
			ID:    "E7",
			Title: "Ocean/atmosphere Grand Challenge scaling",
			Paper: "NOAA/EPA ocean and atmospheric computation research on HPCC testbeds",
			Run:   runE7,
		},
	}
}

// RunExperiment regenerates a single exhibit by ID ("E1".."E7").
func (p *Program) RunExperiment(id string) (string, error) {
	for _, e := range p.Experiments() {
		if strings.EqualFold(e.ID, id) {
			return e.Run(p)
		}
	}
	var ids []string
	for _, e := range p.Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return "", fmt.Errorf("core: unknown experiment %q (have %s)", id, strings.Join(ids, ", "))
}

// WriteReport regenerates every exhibit into w.
func (p *Program) WriteReport(w io.Writer) error {
	for _, e := range p.Experiments() {
		out, err := e.Run(p)
		if err != nil {
			return fmt.Errorf("core: %s: %w", e.ID, err)
		}
		fmt.Fprintf(w, "=== %s: %s ===\npaper: %s\n\n%s\n", e.ID, e.Title, e.Paper, out)
	}
	return nil
}

func runE1(*Program) (string, error) {
	return funding.Table().Render() + "\n" + funding.GrowthTable().Render(), nil
}

func runE2(*Program) (string, error) {
	return agency.Matrix().Render(), nil
}

func runE3(p *Program) (string, error) {
	t := report.NewTable("Concurrent Supercomputer Consortium: Intel Touchstone Delta",
		"Property", "Value")
	t.AddRow("Numeric processors", report.Cellf("%d", p.Machine.Nodes()))
	t.AddRow("Mesh", report.Cellf("%d x %d", p.Machine.Rows, p.Machine.Cols))
	t.AddRow("Per-node peak", report.Cellf("%.1f MFLOPS", p.Machine.Compute.PeakMFlops))
	t.AddRow("Aggregate peak", report.Cellf("%.1f GFLOPS", p.Machine.PeakGFlops()))
	t.AddRow("Consortium partners", report.Cellf("%d organizations", len(agency.DeltaPartners())))
	return t.Render(), nil
}

// DeltaLinpack returns the paper's benchmark configuration (or the scaled
// quick version).
func (p *Program) DeltaLinpack() linpack.Config {
	cfg := linpack.Config{
		N: 25000, NB: 16, GridRows: 16, GridCols: 33,
		Model: p.Machine, Phantom: true, Seed: 1992,
	}
	if p.Quick {
		cfg.N, cfg.GridRows, cfg.GridCols = 2048, 4, 8
	}
	return cfg
}

func runE4(p *Program) (string, error) {
	cfg := p.DeltaLinpack()
	out, err := linpack.Run(cfg)
	if err != nil {
		return "", err
	}
	t := report.NewTable("LINPACK on the Touchstone Delta model", "Quantity", "Value")
	t.AddRow("Matrix order N", report.Cellf("%d", out.N))
	t.AddRow("Process grid", report.Cellf("%d x %d", out.GridRows, out.GridCols))
	t.AddRow("Block size", report.Cellf("%d", out.NB))
	t.AddRow("Simulated time", report.Cellf("%.1f s", out.FactTime))
	t.AddRow("Simulated rate", report.Cellf("%.2f GFLOPS", out.GFlops))
	t.AddRow("Efficiency vs peak", report.Cellf("%.1f %%", out.Efficiency*100))
	t.AddRow("Analytic model rate", report.Cellf("%.2f GFLOPS", linpack.PredictGFlops(cfg)))
	t.AddRow("Paper's measured rate", "13 GFLOPS")
	return t.Render(), nil
}

func runE5(p *Program) (string, error) {
	classTbl, err := nren.LinkClassTable(10e6)
	if err != nil {
		return "", err
	}
	sites := []string{topo.SiteCaltech, topo.SiteJPL, topo.SiteSDSC, topo.SiteLANL, topo.SiteRice, topo.SiteRegional}
	m, err := nren.TransferMatrix(p.Network, sites, 10e6)
	if err != nil {
		return "", err
	}
	matTbl := nren.MatrixTable("10 MB transfer times between consortium sites (seconds)", sites, m)
	classes := topo.Classes()
	labels := make([]string, len(classes))
	rates := make([]float64, len(classes))
	for i, c := range classes {
		labels[i] = c.Name
		rates[i] = c.Mbps
	}
	chart := report.LogBarChart("Link rates (Mbps, log scale)", labels, rates, 40)
	return classTbl.Render() + "\n" + matTbl.Render() + "\n" + chart, nil
}

func (p *Program) scalingProcs() []int {
	if p.Quick {
		return []int{1, 4, 16}
	}
	return []int{1, 4, 16, 66, 264, 528}
}

func runE6(p *Program) (string, error) {
	grid := 1056
	iters := 20
	if p.Quick {
		grid, iters = 256, 5
	}
	pts, err := stencil.StrongScaling(p.Machine, grid, grid, iters, p.scalingProcs())
	if err != nil {
		return "", err
	}
	t := report.NewTable(
		report.Cellf("CFD relaxation kernel, %dx%d grid, strong scaling on the Delta model", grid, grid),
		"Procs", "Time(s)", "Speedup", "Efficiency")
	for _, pt := range pts {
		t.AddRow(report.Cellf("%d", pt.Procs), report.Cellf("%.3f", pt.Time),
			report.Cellf("%.1f", pt.Speedup), report.Cellf("%.2f", pt.Efficiency))
	}
	return t.Render(), nil
}

func runE7(p *Program) (string, error) {
	grid := 1056
	steps := 20
	if p.Quick {
		grid, steps = 256, 5
	}
	params := shallow.DefaultParams()
	t := report.NewTable(
		report.Cellf("Shallow-water model, %dx%d grid, strong scaling on the Delta model", grid, grid),
		"Procs", "Time(s)", "Speedup", "Efficiency")
	var t1 float64
	for i, procs := range p.scalingProcs() {
		out, err := shallow.RunDistributed(shallow.Config{
			NX: grid, NY: grid, Steps: steps, Procs: procs,
			Params: params, Model: p.Machine, Phantom: true,
		})
		if err != nil {
			return "", err
		}
		if i == 0 {
			t1 = out.Time * float64(p.scalingProcs()[0])
		}
		speedup := t1 / out.Time
		t.AddRow(report.Cellf("%d", procs), report.Cellf("%.3f", out.Time),
			report.Cellf("%.1f", speedup), report.Cellf("%.2f", speedup/float64(procs)))
	}
	return t.Render(), nil
}
