// Package nren simulates the consortium's wide-area network — the National
// Research and Education Network substrate of the paper — at flow
// granularity: transfers follow shortest paths over the topology, share
// links max-min fairly, and complete under an event-driven fluid model.
// 1992 wide-area behaviour was bandwidth-dominated, which this model
// captures while staying fast enough for full-topology sweeps.
package nren

import "math"

// MaxMinRates computes the max-min fair allocation for flows over capacity-
// limited links using progressive filling: all flows' rates rise together
// until a link saturates, flows crossing saturated links freeze, and the
// rest continue. flowLinks[f] lists the link ids flow f traverses; capacity
// is indexed by link id. Flows traversing no links (co-located endpoints)
// receive +Inf.
func MaxMinRates(flowLinks [][]int, capacity []float64) []float64 {
	nf := len(flowLinks)
	rates := make([]float64, nf)
	frozen := make([]bool, nf)
	residual := append([]float64(nil), capacity...)

	active := make([]int, 0, nf)
	for f, links := range flowLinks {
		if len(links) == 0 {
			rates[f] = math.Inf(1)
			frozen[f] = true
			continue
		}
		active = append(active, f)
	}

	for len(active) > 0 {
		// count active flows per link
		count := make([]int, len(capacity))
		for _, f := range active {
			for _, l := range flowLinks[f] {
				count[l]++
			}
		}
		// smallest equal increment that saturates some link
		inc := math.Inf(1)
		for l, c := range count {
			if c == 0 {
				continue
			}
			if v := residual[l] / float64(c); v < inc {
				inc = v
			}
		}
		if math.IsInf(inc, 1) {
			break // no active flow crosses any capacitated link
		}
		// raise all active flows and charge the links
		for _, f := range active {
			rates[f] += inc
			for _, l := range flowLinks[f] {
				residual[l] -= inc * 1
			}
		}
		// freeze flows on (numerically) saturated links
		const eps = 1e-9
		next := active[:0]
		for _, f := range active {
			sat := false
			for _, l := range flowLinks[f] {
				if residual[l] <= eps*capacity[l] {
					sat = true
					break
				}
			}
			if sat {
				frozen[f] = true
			} else {
				next = append(next, f)
			}
		}
		if len(next) == len(active) {
			// should be impossible: inc saturated at least one link
			break
		}
		active = next
	}
	return rates
}
