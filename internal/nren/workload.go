package nren

import (
	"context"
	"errors"
	"math/rand"

	"repro/internal/stats"
	"repro/internal/topo"
)

// Workload describes a randomized transfer mix over a topology: flows
// arrive Poisson at the given rate between uniformly chosen distinct
// sites, with exponentially distributed sizes around MeanBytes.
type Workload struct {
	Sites       []string
	ArrivalRate float64 // flows per second
	MeanBytes   float64
	Flows       int
	Seed        int64
}

// WorkloadStats summarizes a completed workload run.
type WorkloadStats struct {
	Flows        int
	MeanDuration float64
	P95Duration  float64 // approximated as the 95th percentile sample
	MeanRateBps  float64
	DrainTime    float64 // when the last flow finished
}

// RunWorkload generates and simulates the workload, returning both the
// flows and summary statistics. It is deterministic for a fixed seed.
func RunWorkload(g *topo.Graph, w Workload) ([]*Flow, WorkloadStats, error) {
	return RunWorkloadContext(context.Background(), g, w)
}

// RunWorkloadContext is RunWorkload with cancellation threaded into the
// fluid simulation (see Sim.RunContext).
func RunWorkloadContext(ctx context.Context, g *topo.Graph, w Workload) ([]*Flow, WorkloadStats, error) {
	if len(w.Sites) < 2 {
		return nil, WorkloadStats{}, errors.New("nren: workload needs at least two sites")
	}
	if w.ArrivalRate <= 0 || w.MeanBytes <= 0 || w.Flows < 1 {
		return nil, WorkloadStats{}, errors.New("nren: workload parameters must be positive")
	}
	rng := rand.New(rand.NewSource(w.Seed))
	s := New(g)
	flows := make([]*Flow, 0, w.Flows)
	t := 0.0
	for i := 0; i < w.Flows; i++ {
		t += rng.ExpFloat64() / w.ArrivalRate
		src := w.Sites[rng.Intn(len(w.Sites))]
		dst := w.Sites[rng.Intn(len(w.Sites)-1)]
		if dst == src {
			dst = w.Sites[len(w.Sites)-1]
		}
		bytes := rng.ExpFloat64() * w.MeanBytes
		if bytes < 1 {
			bytes = 1
		}
		f, err := s.Transfer(src, dst, bytes, t)
		if err != nil {
			return nil, WorkloadStats{}, err
		}
		flows = append(flows, f)
	}
	if err := s.RunContext(ctx); err != nil {
		return nil, WorkloadStats{}, err
	}
	durations := make([]float64, len(flows))
	rates := make([]float64, len(flows))
	for i, f := range flows {
		durations[i] = f.Duration()
		rates[i] = f.AvgRateBps()
	}
	st := WorkloadStats{
		Flows:        len(flows),
		MeanDuration: stats.Mean(durations),
		MeanRateBps:  stats.Mean(rates),
		DrainTime:    s.Now(),
	}
	if p95, err := percentile95(durations); err == nil {
		st.P95Duration = p95
	}
	return flows, st, nil
}

func percentile95(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, stats.ErrEmpty
	}
	cp := append([]float64(nil), xs...)
	// simple selection: sort is fine at these sizes
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	idx := int(0.95 * float64(len(cp)-1))
	return cp[idx], nil
}
