package nren

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/topo"
)

// Flow is one wide-area transfer.
type Flow struct {
	ID        int
	Src, Dst  string
	Bytes     float64
	StartAt   float64
	FinishAt  float64  // set by Run
	PathLinks []string // labels of traversed links, for reports

	path      []int // directed link ids
	remaining float64
	rate      float64
	started   bool
	baseDelay float64 // sum of propagation delays on the path
}

// Duration returns the transfer's completion time minus its start time.
func (f *Flow) Duration() float64 { return f.FinishAt - f.StartAt }

// AvgRateBps returns the achieved average rate in bytes per second.
func (f *Flow) AvgRateBps() float64 {
	d := f.Duration()
	if d <= 0 {
		return math.Inf(1)
	}
	return f.Bytes / d
}

// Sim is an event-driven fluid simulation of transfers over a topology.
type Sim struct {
	g        *topo.Graph
	linkID   map[string]int // "from->to" -> id
	capacity []float64
	linkBusy []float64 // byte-seconds integrated per link, for utilization
	flows    []*Flow
	now      float64
	ran      bool
}

// New creates a simulation over the given topology.
func New(g *topo.Graph) *Sim {
	s := &Sim{g: g, linkID: make(map[string]int)}
	for _, e := range g.AllEdges() {
		key := linkKey(e.From, e.To)
		if _, ok := s.linkID[key]; !ok {
			s.linkID[key] = len(s.capacity)
			s.capacity = append(s.capacity, e.BandwidthBps)
		}
	}
	s.linkBusy = make([]float64, len(s.capacity))
	return s
}

func linkKey(from, to int) string { return fmt.Sprintf("%d->%d", from, to) }

// Transfer schedules a transfer of bytes from src to dst starting at the
// given time, routed on the bandwidth-aware shortest path for its size.
func (s *Sim) Transfer(src, dst string, bytes, at float64) (*Flow, error) {
	if s.ran {
		return nil, errors.New("nren: Sim already ran; create a new one")
	}
	if bytes <= 0 {
		return nil, errors.New("nren: transfer size must be positive")
	}
	if at < 0 {
		return nil, errors.New("nren: negative start time")
	}
	edges, err := s.g.ShortestPath(src, dst, bytes)
	if err != nil {
		return nil, err
	}
	f := &Flow{
		ID: len(s.flows), Src: src, Dst: dst,
		Bytes: bytes, StartAt: at, remaining: bytes,
	}
	for _, e := range edges {
		f.path = append(f.path, s.linkID[linkKey(e.From, e.To)])
		f.PathLinks = append(f.PathLinks, e.Label)
		f.baseDelay += e.DelaySec
	}
	s.flows = append(s.flows, f)
	return f, nil
}

// Run simulates until every flow completes. Rates are recomputed max-min
// fairly at every flow arrival and departure.
func (s *Sim) Run() error {
	return s.RunContext(context.Background())
}

// RunContext is Run with cancellation: the event loop checks ctx at every
// arrival/departure epoch (the unit of work between rate recomputations),
// so a cancelled sweep job stops simulating promptly instead of draining
// every flow. It returns ctx.Err() when cancelled. This is the same
// ctx-threading contract the linpack kernels follow (nx.Config.Ctx).
func (s *Sim) RunContext(ctx context.Context) error {
	if s.ran {
		return errors.New("nren: Sim already ran")
	}
	s.ran = true

	pending := append([]*Flow(nil), s.flows...)
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].StartAt < pending[j].StartAt })
	var active []*Flow

	recompute := func() {
		links := make([][]int, len(active))
		for i, f := range active {
			links[i] = f.path
		}
		rates := MaxMinRates(links, s.capacity)
		for i, f := range active {
			f.rate = rates[i]
		}
	}

	for len(pending) > 0 || len(active) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		// next arrival and next completion
		nextArrival := math.Inf(1)
		if len(pending) > 0 {
			nextArrival = pending[0].StartAt
		}
		nextDone := math.Inf(1)
		for _, f := range active {
			if f.rate <= 0 {
				return fmt.Errorf("nren: active flow %d has zero rate; disconnected link set", f.ID)
			}
			if t := s.now + f.remaining/f.rate; t < nextDone {
				nextDone = t
			}
		}
		t := math.Min(nextArrival, nextDone)
		if math.IsInf(t, 1) {
			return errors.New("nren: no progress possible")
		}
		// advance fluid state to t
		dt := t - s.now
		for _, f := range active {
			f.remaining -= f.rate * dt
			for _, l := range f.path {
				s.linkBusy[l] += f.rate * dt / s.capacity[l]
			}
		}
		s.now = t
		// process completions (tolerate float dust)
		const eps = 1e-6
		keep := active[:0]
		for _, f := range active {
			if f.remaining <= eps*f.Bytes {
				f.remaining = 0
				f.FinishAt = s.now + f.baseDelay // tail propagation
			} else {
				keep = append(keep, f)
			}
		}
		changed := len(keep) != len(active)
		active = keep
		// process arrivals
		for len(pending) > 0 && pending[0].StartAt <= s.now {
			f := pending[0]
			pending = pending[1:]
			f.started = true
			if len(f.path) == 0 { // co-located endpoints
				f.FinishAt = f.StartAt
				continue
			}
			active = append(active, f)
			changed = true
		}
		if changed {
			recompute()
		}
	}
	return nil
}

// Utilization returns the fraction of each link's capacity-time consumed up
// to the end of the simulation, keyed by "From->To" node names.
func (s *Sim) Utilization() map[string]float64 {
	out := make(map[string]float64)
	if s.now <= 0 {
		return out
	}
	for _, e := range s.g.AllEdges() {
		id := s.linkID[linkKey(e.From, e.To)]
		key := s.g.Name(e.From) + "->" + s.g.Name(e.To)
		out[key] = s.linkBusy[id] / s.now
	}
	return out
}

// Now returns the simulation end time after Run.
func (s *Sim) Now() float64 { return s.now }
