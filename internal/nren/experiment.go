package nren

import (
	"context"
	"fmt"

	"repro/internal/report"
	"repro/internal/topo"
)

// LinkClassTable reproduces the consortium network figure as data: for each
// of the six 1992 link classes it reports the line rate and the unloaded
// transfer time of refBytes (the figure annotates links with exactly these
// rates). The rows appear in figure order.
func LinkClassTable(refBytes float64) (*report.Table, error) {
	t := report.NewTable(
		fmt.Sprintf("Delta Consortium link classes (reference transfer: %.0f MB)", refBytes/1e6),
		"Link class", "Rate (Mbps)", "Transfer time")
	for _, c := range topo.Classes() {
		g := topo.NewGraph()
		g.AddLink("a", "b", c.BytesPerSec(), 1e-3, c.Name)
		s := New(g)
		f, err := s.Transfer("a", "b", refBytes, 0)
		if err != nil {
			return nil, err
		}
		if err := s.Run(); err != nil {
			return nil, err
		}
		t.AddRow(c.Name, report.Cellf("%.3f", c.Mbps), report.Cellf("%.2fs", f.Duration()))
	}
	return t, nil
}

// TransferMatrix runs one transfer of bytes between every ordered pair of
// sites on an otherwise idle network and returns the transfer times in
// seconds, indexed [from][to] in the order of sites. The diagonal is zero.
func TransferMatrix(g *topo.Graph, sites []string, bytes float64) ([][]float64, error) {
	return TransferMatrixContext(context.Background(), g, sites, bytes)
}

// TransferMatrixContext is TransferMatrix with cancellation checked
// between pair simulations.
func TransferMatrixContext(ctx context.Context, g *topo.Graph, sites []string, bytes float64) ([][]float64, error) {
	out := make([][]float64, len(sites))
	for i, a := range sites {
		out[i] = make([]float64, len(sites))
		for j, b := range sites {
			if i == j {
				continue
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			s := New(g)
			f, err := s.Transfer(a, b, bytes, 0)
			if err != nil {
				return nil, fmt.Errorf("%s -> %s: %w", a, b, err)
			}
			if err := s.RunContext(ctx); err != nil {
				return nil, err
			}
			out[i][j] = f.Duration()
		}
	}
	return out, nil
}

// MatrixTable renders a transfer-time matrix with row/column site labels.
func MatrixTable(title string, sites []string, m [][]float64) *report.Table {
	cols := append([]string{"From \\ To"}, sites...)
	t := report.NewTable(title, cols...)
	for i, a := range sites {
		row := make([]string, len(sites)+1)
		row[0] = a
		for j := range sites {
			if i == j {
				row[j+1] = "-"
			} else {
				row[j+1] = report.Cellf("%.2f", m[i][j])
			}
		}
		t.AddRow(row...)
	}
	return t
}
