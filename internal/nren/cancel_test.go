package nren

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/topo"
)

// TestRunContextPreCancelled: a cancelled ctx stops the fluid simulation
// before it processes a single epoch.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := New(topo.Consortium())
	if _, err := s.Transfer(topo.SiteCaltech, topo.SiteJPL, 1e6, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestWorkloadContextCancelMidRun: cancelling mid-simulation abandons a
// large Poisson mix promptly instead of draining every flow.
func TestWorkloadContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := RunWorkloadContext(ctx, topo.Consortium(), Workload{
		Sites:       topo.ConsortiumSites(),
		ArrivalRate: 2000,
		MeanBytes:   5e7,
		Flows:       50000,
		Seed:        7,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v, want prompt teardown", elapsed)
	}
}

// TestTransferMatrixContextCancelled: the per-pair loop honors ctx.
func TestTransferMatrixContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := TransferMatrixContext(ctx, topo.Consortium(), topo.ConsortiumSites(), 1e7)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestNrenWorkloadsCancelled: the registry workloads thread the sweep
// engine's per-job ctx into their simulations.
func TestNrenWorkloadsCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, id := range []string{"nren/transfer-matrix", "nren/storm", "nren/traffic"} {
		w, err := harness.Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Run(ctx, harness.Params{}); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", id, err)
		}
	}
}
