package nren

import (
	"testing"

	"repro/internal/topo"
)

func TestRunWorkloadBasic(t *testing.T) {
	g := topo.Consortium()
	flows, st, err := RunWorkload(g, Workload{
		Sites:       topo.ConsortiumSites(),
		ArrivalRate: 1.0,
		MeanBytes:   1e6,
		Flows:       50,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 50 || st.Flows != 50 {
		t.Fatalf("flows = %d / %d", len(flows), st.Flows)
	}
	if st.MeanDuration <= 0 || st.DrainTime <= 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
	if st.P95Duration < st.MeanDuration {
		t.Fatalf("p95 (%g) below mean (%g)", st.P95Duration, st.MeanDuration)
	}
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Fatal("workload generated a self-transfer")
		}
		if f.FinishAt < f.StartAt {
			t.Fatalf("flow finished before it started: %+v", f)
		}
	}
}

func TestRunWorkloadDeterministic(t *testing.T) {
	g := topo.Consortium()
	w := Workload{Sites: topo.ConsortiumSites(), ArrivalRate: 2, MeanBytes: 5e5, Flows: 30, Seed: 3}
	_, a, err := RunWorkload(g, w)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := RunWorkload(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanDuration != b.MeanDuration || a.DrainTime != b.DrainTime {
		t.Fatalf("workload not deterministic: %+v vs %+v", a, b)
	}
}

func TestRunWorkloadValidation(t *testing.T) {
	g := topo.Consortium()
	bad := []Workload{
		{Sites: []string{topo.SiteCaltech}, ArrivalRate: 1, MeanBytes: 1, Flows: 1},
		{Sites: topo.ConsortiumSites(), ArrivalRate: 0, MeanBytes: 1, Flows: 1},
		{Sites: topo.ConsortiumSites(), ArrivalRate: 1, MeanBytes: 0, Flows: 1},
		{Sites: topo.ConsortiumSites(), ArrivalRate: 1, MeanBytes: 1, Flows: 0},
	}
	for i, w := range bad {
		if _, _, err := RunWorkload(g, w); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestCongestionSlowsFlows(t *testing.T) {
	// A heavier offered load on the same topology must raise mean
	// transfer duration (thin links become contended).
	g := topo.Consortium()
	sites := topo.ConsortiumSites()
	_, light, err := RunWorkload(g, Workload{Sites: sites, ArrivalRate: 0.01, MeanBytes: 2e6, Flows: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	_, heavy, err := RunWorkload(g, Workload{Sites: sites, ArrivalRate: 100, MeanBytes: 2e6, Flows: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if heavy.MeanDuration <= light.MeanDuration {
		t.Fatalf("congestion did not slow flows: light %g, heavy %g",
			light.MeanDuration, heavy.MeanDuration)
	}
}
