package nren

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxMinSingleFlow(t *testing.T) {
	rates := MaxMinRates([][]int{{0}}, []float64{10})
	if rates[0] != 10 {
		t.Fatalf("single flow rate = %g, want full capacity 10", rates[0])
	}
}

func TestMaxMinEqualSharing(t *testing.T) {
	rates := MaxMinRates([][]int{{0}, {0}, {0}}, []float64{9})
	for _, r := range rates {
		if math.Abs(r-3) > 1e-9 {
			t.Fatalf("rates = %v, want 3 each", rates)
		}
	}
}

func TestMaxMinClassicTandem(t *testing.T) {
	// Textbook example: link0 cap 1 shared by flows A (link0 only) and B
	// (link0+link1); link1 cap 10. A and B each get 0.5 on the bottleneck.
	rates := MaxMinRates([][]int{{0}, {0, 1}}, []float64{1, 10})
	if math.Abs(rates[0]-0.5) > 1e-9 || math.Abs(rates[1]-0.5) > 1e-9 {
		t.Fatalf("rates = %v, want [0.5 0.5]", rates)
	}
}

func TestMaxMinUnbottleneckedFlowGetsMore(t *testing.T) {
	// Flow A crosses the thin link (cap 1) with B; flow C has its own fat
	// link (cap 10): C must get 10, A and B 0.5 each.
	rates := MaxMinRates([][]int{{0}, {0}, {1}}, []float64{1, 10})
	if math.Abs(rates[0]-0.5) > 1e-9 || math.Abs(rates[1]-0.5) > 1e-9 {
		t.Fatalf("thin-link flows: %v", rates)
	}
	if math.Abs(rates[2]-10) > 1e-9 {
		t.Fatalf("fat-link flow = %g, want 10", rates[2])
	}
}

func TestMaxMinEmptyPathInfinite(t *testing.T) {
	rates := MaxMinRates([][]int{{}}, []float64{5})
	if !math.IsInf(rates[0], 1) {
		t.Fatalf("zero-link flow rate = %g, want +Inf", rates[0])
	}
}

func TestMaxMinFeasibilityProperty(t *testing.T) {
	// Property: allocations never exceed any link capacity, and every flow
	// crosses at least one saturated link (max-min bottleneck condition).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl := 1 + rng.Intn(6)
		nf := 1 + rng.Intn(8)
		caps := make([]float64, nl)
		for i := range caps {
			caps[i] = 1 + rng.Float64()*99
		}
		flows := make([][]int, nf)
		for i := range flows {
			k := 1 + rng.Intn(nl)
			perm := rng.Perm(nl)[:k]
			flows[i] = perm
		}
		rates := MaxMinRates(flows, caps)
		// feasibility
		load := make([]float64, nl)
		for i, links := range flows {
			for _, l := range links {
				load[l] += rates[i]
			}
		}
		for l := range caps {
			if load[l] > caps[l]*(1+1e-6) {
				return false
			}
		}
		// bottleneck condition: every flow sees a saturated link
		for _, links := range flows {
			sat := false
			for _, l := range links {
				if load[l] >= caps[l]*(1-1e-6) {
					sat = true
					break
				}
			}
			if !sat {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxMinFairnessProperty(t *testing.T) {
	// Property: on any single shared link, all flows crossing only that
	// link get identical rates.
	f := func(nRaw uint8, capRaw uint16) bool {
		n := int(nRaw)%7 + 1
		cap := float64(capRaw)/100 + 1
		flows := make([][]int, n)
		for i := range flows {
			flows[i] = []int{0}
		}
		rates := MaxMinRates(flows, []float64{cap})
		for _, r := range rates {
			if math.Abs(r-cap/float64(n)) > 1e-9*cap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
