package nren

import (
	"testing"

	"repro/internal/topo"
)

// BenchmarkMaxMinRates measures the fair-share allocator on a 100-flow,
// 20-link instance.
func BenchmarkMaxMinRates(b *testing.B) {
	const nl, nf = 20, 100
	caps := make([]float64, nl)
	for i := range caps {
		caps[i] = float64(1 + i%7)
	}
	flows := make([][]int, nf)
	for i := range flows {
		flows[i] = []int{i % nl, (i * 7) % nl, (i * 13) % nl}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxMinRates(flows, caps)
	}
}

// BenchmarkConsortiumStorm measures a full all-pairs transfer storm over
// the consortium topology.
func BenchmarkConsortiumStorm(b *testing.B) {
	sites := topo.ConsortiumSites()
	for i := 0; i < b.N; i++ {
		g := topo.Consortium()
		s := New(g)
		for x, a := range sites {
			for y, bb := range sites {
				if x == y {
					continue
				}
				if _, err := s.Transfer(a, bb, 1e6, 0); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
