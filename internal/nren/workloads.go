package nren

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/topo"
)

// The consortium wide-area network experiments as registry workloads: the
// link-class figure, the site-to-site transfer matrix, the all-pairs
// storm, and the Poisson traffic mix.
func init() {
	harness.MustRegister(harness.Spec{
		WorkloadID: "nren/link-classes",
		Desc:       "1992 consortium link classes: rate and reference transfer time",
		Space: []harness.Param{
			{Name: "bytes", Default: "1e7", Doc: "reference transfer size in bytes"},
		},
		RunFunc: runLinkClasses,
	})
	harness.MustRegister(harness.Spec{
		WorkloadID: "nren/transfer-matrix",
		Desc:       "Site-to-site transfer times over the consortium topology",
		Space: []harness.Param{
			{Name: "bytes", Default: "1e7", Doc: "transfer size in bytes"},
		},
		RunFunc: runTransferMatrix,
	})
	harness.MustRegister(harness.Spec{
		WorkloadID: "nren/storm",
		Desc:       "All-pairs concurrent transfers with fair sharing; busiest links",
		Space: []harness.Param{
			{Name: "bytes", Default: "1e7", Doc: "per-pair transfer size in bytes"},
		},
		RunFunc: runStorm,
	})
	harness.MustRegister(harness.Spec{
		WorkloadID: "nren/traffic",
		Desc:       "Poisson transfer mix over the consortium network",
		Space: []harness.Param{
			{Name: "flows", Default: "200", Doc: "number of flows"},
			{Name: "rate", Default: "2", Doc: "flow arrivals per second"},
			{Name: "mean-bytes", Default: "1e7", Doc: "mean transfer size in bytes"},
		},
		RunFunc: runTraffic,
	})
}

func runLinkClasses(ctx context.Context, p harness.Params) (harness.Result, error) {
	if err := ctx.Err(); err != nil {
		return harness.Result{}, err
	}
	bytes, err := p.Float("bytes", 10e6)
	if err != nil {
		return harness.Result{}, err
	}
	tbl, err := LinkClassTable(bytes)
	if err != nil {
		return harness.Result{}, err
	}
	res := harness.Result{
		Title: "Delta Consortium link classes",
		Paper: "NSFnet T1/T3, ESnet T1, CASA HIPPI/SONET 800 Mbps, regional T1 and 56 kbps",
		Text:  tbl.Render(),
	}
	res.AddMetric("classes", float64(len(topo.Classes())), "")
	return res, nil
}

func runTransferMatrix(ctx context.Context, p harness.Params) (harness.Result, error) {
	if err := ctx.Err(); err != nil {
		return harness.Result{}, err
	}
	bytes, err := p.Float("bytes", 10e6)
	if err != nil {
		return harness.Result{}, err
	}
	g := topo.Consortium()
	sites := []string{
		topo.SiteCaltech, topo.SiteJPL, topo.SiteSDSC, topo.SiteLANL,
		topo.SiteRice, topo.SiteDARPA, topo.SiteRegional,
	}
	m, err := TransferMatrixContext(ctx, g, sites, bytes)
	if err != nil {
		return harness.Result{}, err
	}
	title := fmt.Sprintf("%.0f MB transfer times between consortium sites (seconds)", bytes/1e6)
	res := harness.Result{Title: title, Text: MatrixTable(title, sites, m).Render()}
	res.AddMetric("sites", float64(len(sites)), "")
	return res, nil
}

func runStorm(ctx context.Context, p harness.Params) (harness.Result, error) {
	if err := ctx.Err(); err != nil {
		return harness.Result{}, err
	}
	bytes, err := p.Float("bytes", 10e6)
	if err != nil {
		return harness.Result{}, err
	}
	g := topo.Consortium()
	s := New(g)
	all := topo.ConsortiumSites()
	for i, a := range all {
		for j, b := range all {
			if i == j {
				continue
			}
			if _, err := s.Transfer(a, b, bytes, 0); err != nil {
				return harness.Result{}, err
			}
		}
	}
	if err := s.RunContext(ctx); err != nil {
		return harness.Result{}, err
	}
	util := s.Utilization()
	keys := make([]string, 0, len(util))
	for k := range util {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if util[keys[i]] != util[keys[j]] {
			return util[keys[i]] > util[keys[j]]
		}
		return keys[i] < keys[j]
	})
	t := report.NewTable("Busiest links during the storm", "Link", "Utilization %")
	for i, k := range keys {
		if i == 8 {
			break
		}
		t.AddRow(k, report.Cellf("%.1f", util[k]*100))
	}
	n := len(all) * (len(all) - 1)
	text := fmt.Sprintf("storm of %d concurrent transfers drained in %.1f s\n\n%s",
		n, s.Now(), t.Render())
	res := harness.Result{Title: "Consortium all-pairs transfer storm", Text: text}
	res.AddMetric("transfers", float64(n), "")
	res.AddMetric("drain-s", s.Now(), "s")
	return res, nil
}

func runTraffic(ctx context.Context, p harness.Params) (harness.Result, error) {
	if err := ctx.Err(); err != nil {
		return harness.Result{}, err
	}
	flows, err := p.Int("flows", 200)
	if err != nil {
		return harness.Result{}, err
	}
	if p.Quick && flows > 50 {
		flows = 50
	}
	rate, err := p.Float("rate", 2)
	if err != nil {
		return harness.Result{}, err
	}
	meanBytes, err := p.Float("mean-bytes", 10e6)
	if err != nil {
		return harness.Result{}, err
	}
	seed := p.Seed
	if seed == 0 {
		seed = 1992
	}
	g := topo.Consortium()
	_, st, err := RunWorkloadContext(ctx, g, Workload{
		Sites:       topo.ConsortiumSites(),
		ArrivalRate: rate,
		MeanBytes:   meanBytes,
		Flows:       flows,
		Seed:        seed,
	})
	if err != nil {
		return harness.Result{}, err
	}
	t := report.NewTable(
		report.Cellf("Poisson traffic mix: %d flows at %.1f/s, mean %.1f MB", flows, rate, meanBytes/1e6),
		"Quantity", "Value")
	t.AddRow("Flows", report.Cellf("%d", st.Flows))
	t.AddRow("Mean duration", report.Cellf("%.2f s", st.MeanDuration))
	t.AddRow("P95 duration", report.Cellf("%.2f s", st.P95Duration))
	t.AddRow("Mean rate", report.Cellf("%.2f Mbps", st.MeanRateBps*8/1e6))
	t.AddRow("Drain time", report.Cellf("%.1f s", st.DrainTime))
	res := harness.Result{Title: "NREN Poisson traffic mix", Text: t.Render()}
	res.AddMetric("mean-duration-s", st.MeanDuration, "s")
	res.AddMetric("p95-duration-s", st.P95Duration, "s")
	res.AddMetric("drain-s", st.DrainTime, "s")
	return res, nil
}
