package nren

import (
	"math"
	"strings"
	"testing"

	"repro/internal/topo"
)

// line returns a two-node graph with one link of the given bytes/s.
func line(bps float64) *topo.Graph {
	g := topo.NewGraph()
	g.AddLink("a", "b", bps, 1e-3, "link")
	return g
}

func TestSingleFlowTime(t *testing.T) {
	s := New(line(1e6)) // 1 MB/s
	f, err := s.Transfer("a", "b", 10e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := 10.0 + 1e-3 // serialization + propagation
	if math.Abs(f.Duration()-want) > 1e-6 {
		t.Fatalf("duration = %g, want %g", f.Duration(), want)
	}
	if math.Abs(f.AvgRateBps()-10e6/want) > 1 {
		t.Fatalf("avg rate = %g", f.AvgRateBps())
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	s := New(line(1e6))
	f1, _ := s.Transfer("a", "b", 5e6, 0)
	f2, _ := s.Transfer("a", "b", 5e6, 0)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// both get 0.5 MB/s; each finishes after ~10s
	for _, f := range []*Flow{f1, f2} {
		if math.Abs(f.Duration()-10.0-1e-3) > 1e-3 {
			t.Fatalf("shared flow duration = %g, want ~10s", f.Duration())
		}
	}
}

func TestLateFlowSpeedsUpAfterFirstCompletes(t *testing.T) {
	s := New(line(1e6))
	// f1: 2 MB alone for 1s, then shares
	f1, _ := s.Transfer("a", "b", 2e6, 0)
	f2, _ := s.Transfer("a", "b", 2e6, 1)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// f1: 1 MB alone (1s), then 0.5 MB/s -> 2 more seconds; done at 3s
	if math.Abs(f1.FinishAt-3.0-1e-3) > 1e-3 {
		t.Fatalf("f1 finish = %g, want ~3s", f1.FinishAt)
	}
	// f2: 0.5 MB/s from t=1 to 3 (1 MB), then 1 MB/s (1 MB): done at 4s
	if math.Abs(f2.FinishAt-4.0-1e-3) > 1e-3 {
		t.Fatalf("f2 finish = %g, want ~4s", f2.FinishAt)
	}
}

func TestColocatedEndpoints(t *testing.T) {
	g := topo.NewGraph()
	g.AddLink("a", "b", 1e6, 1e-3, "l")
	s := New(g)
	f, err := s.Transfer("a", "a", 1e6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if f.FinishAt != 5 {
		t.Fatalf("co-located transfer should be instant, got finish %g", f.FinishAt)
	}
}

func TestTransferValidation(t *testing.T) {
	s := New(line(1e6))
	if _, err := s.Transfer("a", "b", 0, 0); err == nil {
		t.Fatal("zero bytes should error")
	}
	if _, err := s.Transfer("a", "b", 1, -1); err == nil {
		t.Fatal("negative start should error")
	}
	if _, err := s.Transfer("a", "zzz", 1, 0); err == nil {
		t.Fatal("unknown site should error")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err == nil {
		t.Fatal("double Run should error")
	}
	if _, err := s.Transfer("a", "b", 1, 0); err == nil {
		t.Fatal("Transfer after Run should error")
	}
}

func TestUtilization(t *testing.T) {
	s := New(line(1e6))
	s.Transfer("a", "b", 1e6, 0)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	u := s.Utilization()
	if u["a->b"] < 0.9 || u["a->b"] > 1.01 {
		t.Fatalf("a->b utilization = %g, want ~1", u["a->b"])
	}
	if u["b->a"] != 0 {
		t.Fatalf("reverse direction should be idle, got %g", u["b->a"])
	}
}

func TestConsortiumHippiVsT1Crossover(t *testing.T) {
	// E5 shape: a 10 MB dataset moves over CASA HIPPI ~500x faster than
	// over an NSFnet T1 tail (the figure's 800 vs 1.5 Mbps).
	g := topo.Consortium()

	s1 := New(g)
	fast, err := s1.Transfer(topo.SiteCaltech, topo.SiteJPL, 10e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Run(); err != nil {
		t.Fatal(err)
	}

	s2 := New(g)
	slow, err := s2.Transfer(topo.SiteCaltech, topo.SiteRice, 10e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}

	ratio := slow.Duration() / fast.Duration()
	if ratio < 100 {
		t.Fatalf("T1-path/HIPPI-path time ratio = %g, want >100", ratio)
	}
	for _, l := range fast.PathLinks {
		if l != topo.CASAHippi.Name {
			t.Fatalf("Caltech->JPL should ride HIPPI, got %v", fast.PathLinks)
		}
	}
}

func TestLinkClassTableFigureOrder(t *testing.T) {
	tbl, err := LinkClassTable(10e6)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Render()
	for _, c := range topo.Classes() {
		if !strings.Contains(out, c.Name) {
			t.Fatalf("class %q missing:\n%s", c.Name, out)
		}
	}
	// 56 kbps transfer of 10 MB takes ~1430s; HIPPI ~0.1s
	if !strings.Contains(out, "1428.5") && !strings.Contains(out, "1428.6") {
		t.Fatalf("56 kbps row should show ~1428.6s:\n%s", out)
	}
}

func TestTransferMatrixSymmetricZeroDiagonal(t *testing.T) {
	g := topo.Consortium()
	sites := []string{topo.SiteCaltech, topo.SiteJPL, topo.SiteRice}
	m, err := TransferMatrix(g, sites, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sites {
		if m[i][i] != 0 {
			t.Fatalf("diagonal not zero: %v", m[i][i])
		}
		for j := range sites {
			if i != j && m[i][j] <= 0 {
				t.Fatalf("m[%d][%d] = %g", i, j, m[i][j])
			}
			// symmetric topology: times should match both directions
			if math.Abs(m[i][j]-m[j][i]) > 1e-9 {
				t.Fatalf("matrix asymmetric at (%d,%d)", i, j)
			}
		}
	}
	tbl := MatrixTable("times", sites, m)
	if !strings.Contains(tbl.Render(), topo.SiteJPL) {
		t.Fatal("matrix table missing site label")
	}
}

func TestManyFlowsDeterministic(t *testing.T) {
	run := func() float64 {
		g := topo.Consortium()
		s := New(g)
		sites := topo.ConsortiumSites()
		for i, a := range sites {
			for j, b := range sites {
				if i == j {
					continue
				}
				if _, err := s.Transfer(a, b, 1e6, float64(i)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic end time: %g vs %g", a, b)
	}
}
