package topo

import (
	"errors"
	"math"
	"testing"
)

func TestAddNodeIdempotent(t *testing.T) {
	g := NewGraph()
	a := g.AddNode("x")
	b := g.AddNode("x")
	if a != b {
		t.Fatalf("AddNode not idempotent: %d vs %d", a, b)
	}
	if g.Nodes() != 1 {
		t.Fatalf("nodes = %d", g.Nodes())
	}
	if id, ok := g.NodeID("x"); !ok || id != a {
		t.Fatal("NodeID lookup failed")
	}
	if _, ok := g.NodeID("missing"); ok {
		t.Fatal("NodeID found missing node")
	}
	if g.Name(a) != "x" {
		t.Fatal("Name wrong")
	}
}

func TestAddLinkBidirectional(t *testing.T) {
	g := NewGraph()
	g.AddLink("a", "b", 1e6, 1e-3, "test")
	ai, _ := g.NodeID("a")
	bi, _ := g.NodeID("b")
	if len(g.Edges(ai)) != 1 || len(g.Edges(bi)) != 1 {
		t.Fatal("link not bidirectional")
	}
	if g.Edges(ai)[0].To != bi || g.Edges(bi)[0].To != ai {
		t.Fatal("edge endpoints wrong")
	}
	if len(g.AllEdges()) != 2 {
		t.Fatalf("AllEdges = %d, want 2", len(g.AllEdges()))
	}
}

func TestAddLinkValidation(t *testing.T) {
	g := NewGraph()
	for _, fn := range []func(){
		func() { g.AddLink("a", "b", 0, 1e-3, "") },
		func() { g.AddLink("a", "b", 1e6, -1, "") },
		func() { g.AddLink("a", "a", 1e6, 1e-3, "") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestShortestPathDirect(t *testing.T) {
	g := NewGraph()
	g.AddLink("a", "b", 1e6, 1e-3, "l1")
	path, err := g.ShortestPath("a", "b", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 || path[0].Label != "l1" {
		t.Fatalf("path = %+v", path)
	}
}

func TestShortestPathPrefersLowDelay(t *testing.T) {
	g := NewGraph()
	g.AddLink("a", "b", 1e6, 10e-3, "slow-direct")
	g.AddLink("a", "m", 1e6, 1e-3, "hop1")
	g.AddLink("m", "b", 1e6, 1e-3, "hop2")
	path, err := g.ShortestPath("a", "b", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 {
		t.Fatalf("should prefer 2-hop low-delay route, got %+v", path)
	}
}

func TestShortestPathBandwidthAwareMetric(t *testing.T) {
	// With a large reference transfer, a fat two-hop path beats a thin
	// direct link even at higher propagation delay.
	g := NewGraph()
	g.AddLink("a", "b", 56e3/8, 1e-3, "thin")   // 56 kbps direct
	g.AddLink("a", "m", 800e6/8, 10e-3, "fat1") // HIPPI detour
	g.AddLink("m", "b", 800e6/8, 10e-3, "fat2")
	pathSmall, err := g.ShortestPath("a", "b", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pathSmall) != 1 {
		t.Fatalf("zero-byte routing should take the direct link, got %+v", pathSmall)
	}
	pathBig, err := g.ShortestPath("a", "b", 10e6)
	if err != nil {
		t.Fatal(err)
	}
	if len(pathBig) != 2 {
		t.Fatalf("bulk routing should take the fat detour, got %+v", pathBig)
	}
}

func TestShortestPathErrors(t *testing.T) {
	g := NewGraph()
	g.AddNode("a")
	g.AddNode("b") // disconnected
	if _, err := g.ShortestPath("a", "zzz", 0); err == nil {
		t.Fatal("unknown node should error")
	}
	_, err := g.ShortestPath("a", "b", 0)
	if !errors.Is(err, ErrNoPath) {
		t.Fatalf("want ErrNoPath, got %v", err)
	}
	if p, err := g.ShortestPath("a", "a", 0); err != nil || p != nil {
		t.Fatal("self path should be empty and error-free")
	}
}

func TestLinkClassRates(t *testing.T) {
	if math.Abs(NSFnetT3.Bps()-44.736e6) > 1 {
		t.Fatalf("T3 = %g bps", NSFnetT3.Bps())
	}
	if math.Abs(CASAHippi.BytesPerSec()-1e8) > 1 {
		t.Fatalf("HIPPI = %g B/s, want 1e8", CASAHippi.BytesPerSec())
	}
	if len(Classes()) != 6 {
		t.Fatalf("want the figure's 6 link classes, got %d", len(Classes()))
	}
	// Ratio the paper's figure implies: HIPPI is ~518x a T1.
	ratio := CASAHippi.Mbps / NSFnetT1.Mbps
	if ratio < 500 || ratio > 540 {
		t.Fatalf("HIPPI/T1 ratio = %g", ratio)
	}
}

func TestConsortiumConnectivity(t *testing.T) {
	g := Consortium()
	sites := ConsortiumSites()
	if g.Nodes() != len(sites) {
		t.Fatalf("graph has %d nodes, site list has %d", g.Nodes(), len(sites))
	}
	// every pair of sites must be reachable
	for _, a := range sites {
		for _, b := range sites {
			if a == b {
				continue
			}
			if _, err := g.ShortestPath(a, b, 0); err != nil {
				t.Fatalf("no path %s -> %s: %v", a, b, err)
			}
		}
	}
}

func TestConsortiumUsesAllSixClasses(t *testing.T) {
	g := Consortium()
	seen := map[string]bool{}
	for _, e := range g.AllEdges() {
		seen[e.Label] = true
	}
	for _, c := range Classes() {
		if !seen[c.Name] {
			t.Errorf("link class %q missing from consortium topology", c.Name)
		}
	}
}

func TestConsortiumCASABackbone(t *testing.T) {
	// The CASA testbed sites must reach each other entirely over HIPPI.
	g := Consortium()
	for _, pair := range [][2]string{
		{SiteCaltech, SiteJPL}, {SiteCaltech, SiteSDSC}, {SiteSDSC, SiteLANL},
	} {
		path, err := g.ShortestPath(pair[0], pair[1], 10e6)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range path {
			if e.Label != CASAHippi.Name {
				t.Fatalf("%s -> %s bulk route uses %q, want HIPPI only", pair[0], pair[1], e.Label)
			}
		}
	}
}
