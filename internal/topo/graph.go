// Package topo provides the weighted-graph machinery and the Concurrent
// Supercomputing Consortium network dataset used by the wide-area network
// simulator: sites, link classes with 1992 bandwidths (56 kbps regional
// tails through 800 Mbps CASA HIPPI/SONET), and shortest-path routing.
package topo

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Edge is one directed link of a Graph.
type Edge struct {
	From, To     int
	BandwidthBps float64
	DelaySec     float64
	Label        string // link class, e.g. "NSFnet T3"
}

// Graph is a directed multigraph with named nodes. Use AddLink for the
// bidirectional links of the consortium network.
type Graph struct {
	names []string
	index map[string]int
	adj   [][]Edge
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{index: make(map[string]int)}
}

// AddNode inserts a node and returns its id; adding an existing name
// returns the existing id.
func (g *Graph) AddNode(name string) int {
	if id, ok := g.index[name]; ok {
		return id
	}
	id := len(g.names)
	g.names = append(g.names, name)
	g.index[name] = id
	g.adj = append(g.adj, nil)
	return id
}

// NodeID returns the id of a named node.
func (g *Graph) NodeID(name string) (int, bool) {
	id, ok := g.index[name]
	return id, ok
}

// Name returns the name of node id.
func (g *Graph) Name(id int) string { return g.names[id] }

// Nodes returns the number of nodes.
func (g *Graph) Nodes() int { return len(g.names) }

// NodeNames returns all node names in insertion order.
func (g *Graph) NodeNames() []string {
	return append([]string(nil), g.names...)
}

// AddLink adds a bidirectional link between two named nodes (created if
// absent) with the given bandwidth, propagation delay and class label.
func (g *Graph) AddLink(a, b string, bwBps, delaySec float64, label string) {
	if bwBps <= 0 || delaySec < 0 {
		panic(fmt.Sprintf("topo: invalid link %s-%s (bw %g, delay %g)", a, b, bwBps, delaySec))
	}
	ai, bi := g.AddNode(a), g.AddNode(b)
	if ai == bi {
		panic("topo: self-link")
	}
	g.adj[ai] = append(g.adj[ai], Edge{From: ai, To: bi, BandwidthBps: bwBps, DelaySec: delaySec, Label: label})
	g.adj[bi] = append(g.adj[bi], Edge{From: bi, To: ai, BandwidthBps: bwBps, DelaySec: delaySec, Label: label})
}

// Edges returns the out-edges of node id.
func (g *Graph) Edges(id int) []Edge { return g.adj[id] }

// AllEdges returns every directed edge.
func (g *Graph) AllEdges() []Edge {
	var out []Edge
	for _, es := range g.adj {
		out = append(out, es...)
	}
	return out
}

// ErrNoPath reports that two nodes are not connected.
var ErrNoPath = errors.New("topo: no path")

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node int
	dist float64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ShortestPath returns the minimum-cost path between two named nodes as a
// sequence of edges, using Dijkstra's algorithm. The cost of an edge is its
// propagation delay plus the serialization time of refBytes at its
// bandwidth, which makes low-bandwidth tails expensive — the routing metric
// a 1992 transfer would effectively experience. refBytes may be 0 for pure
// delay routing.
func (g *Graph) ShortestPath(src, dst string, refBytes float64) ([]Edge, error) {
	si, ok := g.index[src]
	if !ok {
		return nil, fmt.Errorf("topo: unknown node %q", src)
	}
	di, ok := g.index[dst]
	if !ok {
		return nil, fmt.Errorf("topo: unknown node %q", dst)
	}
	if si == di {
		return nil, nil
	}
	dist := make([]float64, g.Nodes())
	prev := make([]Edge, g.Nodes())
	seen := make([]bool, g.Nodes())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[si] = 0
	q := &pq{{si, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if seen[it.node] {
			continue
		}
		seen[it.node] = true
		if it.node == di {
			break
		}
		for _, e := range g.adj[it.node] {
			cost := e.DelaySec + refBytes/e.BandwidthBps
			if nd := dist[it.node] + cost; nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = e
				heap.Push(q, pqItem{e.To, nd})
			}
		}
	}
	if !seen[di] {
		return nil, fmt.Errorf("%w between %q and %q", ErrNoPath, src, dst)
	}
	var path []Edge
	for at := di; at != si; at = prev[at].From {
		path = append(path, prev[at])
	}
	// reverse
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}
