package topo

// LinkClass is a 1992 wide-area link technology with its line rate. The six
// classes are exactly those in the paper's Delta Consortium network figure.
type LinkClass struct {
	Name string
	Mbps float64
}

// Bps returns the line rate in bits per second.
func (c LinkClass) Bps() float64 { return c.Mbps * 1e6 }

// BytesPerSec returns the line rate in bytes per second.
func (c LinkClass) BytesPerSec() float64 { return c.Mbps * 1e6 / 8 }

// Link classes from the consortium figure ("CSC Network Connections").
var (
	NSFnetT1   = LinkClass{"NSFnet T1", 1.544}
	NSFnetT3   = LinkClass{"NSFnet T3", 44.736}
	ESnetT1    = LinkClass{"ESnet T1", 1.544}
	CASAHippi  = LinkClass{"CASA HIPPI/SONET", 800}
	RegionalT1 = LinkClass{"Regional T1", 1.544}
	Regional56 = LinkClass{"Regional 56 kbps", 0.056}
)

// Classes lists all consortium link classes in figure order.
func Classes() []LinkClass {
	return []LinkClass{NSFnetT1, NSFnetT3, ESnetT1, CASAHippi, RegionalT1, Regional56}
}

// Consortium site names. Caltech hosts the Delta; the CASA gigabit testbed
// joins Caltech, JPL, SDSC and Los Alamos over HIPPI/SONET; the remaining
// partners reach the machine over NSFnet, ESnet and regional tails.
const (
	SiteCaltech  = "Caltech"     // Delta host, CSC lead site
	SiteJPL      = "JPL"         // Jet Propulsion Laboratory
	SiteSDSC     = "SDSC"        // San Diego Supercomputer Center
	SiteLANL     = "Los Alamos"  // DOE laboratory, CASA partner
	SiteNSFnet   = "NSFnet core" // backbone attachment point
	SiteESnet    = "ESnet core"  // DOE network attachment point
	SiteRice     = "Rice (CRPC)" // Center for Research on Parallel Computation, lead institution
	SiteDARPA    = "DARPA"
	SiteNASA     = "NASA Ames"
	SiteIntel    = "Intel SSD" // Intel Supercomputer Systems Division
	SitePurdue   = "Purdue"
	SiteRegional = "Regional member"
)

// Consortium builds the Delta Consortium network of the paper's figure.
// The paper's own caption notes the topology is "simplified to better
// illustrate connectivity between CSC sites"; this reconstruction uses the
// figure's six link classes and the named partners, with propagation
// delays set by rough geography (5 ms per ~1000 km).
func Consortium() *Graph {
	g := NewGraph()
	add := func(a, b string, c LinkClass, delay float64) {
		g.AddLink(a, b, c.BytesPerSec(), delay, c.Name)
	}

	// CASA gigabit testbed: HIPPI/SONET ring segments in the Southwest.
	add(SiteCaltech, SiteJPL, CASAHippi, 0.1e-3) // ~20 km
	add(SiteCaltech, SiteSDSC, CASAHippi, 1e-3)  // ~200 km
	add(SiteSDSC, SiteLANL, CASAHippi, 5e-3)     // ~1000 km
	add(SiteJPL, SiteLANL, CASAHippi, 5e-3)

	// NSFnet backbone: T3 trunk to the Delta site, T1 tails elsewhere.
	add(SiteCaltech, SiteNSFnet, NSFnetT3, 2e-3)
	add(SiteNSFnet, SiteRice, NSFnetT1, 7e-3)
	add(SiteNSFnet, SiteDARPA, NSFnetT1, 12e-3)
	add(SiteNSFnet, SiteNASA, NSFnetT1, 2e-3)
	add(SiteNSFnet, SitePurdue, NSFnetT1, 9e-3)
	add(SiteNSFnet, SiteIntel, NSFnetT1, 5e-3)

	// ESnet: DOE attachment for Los Alamos.
	add(SiteESnet, SiteLANL, ESnetT1, 3e-3)
	add(SiteESnet, SiteCaltech, ESnetT1, 4e-3)

	// Regional connections.
	add(SiteCaltech, SiteRegional, Regional56, 1e-3)
	add(SiteJPL, SiteNSFnet, RegionalT1, 2e-3)

	return g
}

// ConsortiumSites lists the named sites in a stable report order.
func ConsortiumSites() []string {
	return []string{
		SiteCaltech, SiteJPL, SiteSDSC, SiteLANL,
		SiteNSFnet, SiteESnet, SiteRice, SiteDARPA,
		SiteNASA, SiteIntel, SitePurdue, SiteRegional,
	}
}
