package stencil

import (
	"math"
	"testing"

	"repro/internal/machine"
)

func model(rows, cols int) machine.Model {
	m := machine.Delta()
	m.Rows, m.Cols = rows, cols
	return m
}

func TestSerialZeroIters(t *testing.T) {
	g := SolveSerial(3, 3, 0)
	for _, v := range g {
		if v != 0 {
			t.Fatalf("interior should start at 0: %v", g)
		}
	}
}

func TestSerialOneIterTopRow(t *testing.T) {
	// After one sweep, interior cells adjacent to the hot top boundary get
	// Hot/4; all others remain 0.
	g := SolveSerial(3, 3, 1)
	for x := 0; x < 3; x++ {
		if math.Abs(g[x]-Hot/4) > 1e-12 {
			t.Fatalf("top interior row = %v, want %g", g[:3], Hot/4)
		}
	}
	for i := 3; i < 9; i++ {
		if g[i] != 0 {
			t.Fatalf("cell %d should still be 0: %v", i, g)
		}
	}
}

func TestSerialConvergesToHarmonic(t *testing.T) {
	// Long relaxation: values must be strictly between boundary extremes,
	// decrease away from the hot edge, and be left-right symmetric.
	nxc, nyc := 8, 8
	g := SolveSerial(nxc, nyc, 4000)
	for y := 0; y < nyc; y++ {
		for x := 0; x < nxc; x++ {
			v := g[y*nxc+x]
			if v <= 0 || v >= Hot {
				t.Fatalf("cell (%d,%d) = %g outside (0, %g)", x, y, v, Hot)
			}
			// symmetry
			if d := math.Abs(v - g[y*nxc+(nxc-1-x)]); d > 1e-6 {
				t.Fatalf("asymmetry at (%d,%d): %g", x, y, d)
			}
		}
	}
	// monotone decay down the columns
	for y := 1; y < nyc; y++ {
		if g[y*nxc+nxc/2] >= g[(y-1)*nxc+nxc/2] {
			t.Fatalf("no decay away from hot edge at row %d", y)
		}
	}
}

func TestDistributedMatchesSerialExactly(t *testing.T) {
	// Jacobi sweeps are cell-independent, so the distributed result must
	// be bitwise identical to the serial reference.
	nxc, nyc, iters := 12, 17, 25
	want := SolveSerial(nxc, nyc, iters)
	for _, p := range []int{1, 2, 3, 5} {
		out, err := RunDistributed(Config{
			NX: nxc, NY: nyc, Iters: iters, Procs: p, Model: model(1, 8),
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if len(out.Grid) != len(want) {
			t.Fatalf("p=%d: grid size %d", p, len(out.Grid))
		}
		for i := range want {
			if out.Grid[i] != want[i] {
				t.Fatalf("p=%d: cell %d differs: %g vs %g", p, i, out.Grid[i], want[i])
			}
		}
	}
}

func TestDistributedValidation(t *testing.T) {
	m := model(1, 4)
	cases := []Config{
		{NX: 0, NY: 4, Iters: 1, Procs: 2, Model: m},
		{NX: 4, NY: 4, Iters: -1, Procs: 2, Model: m},
		{NX: 4, NY: 2, Iters: 1, Procs: 4, Model: m},  // more procs than rows
		{NX: 4, NY: 8, Iters: 1, Procs: 99, Model: m}, // more procs than nodes
	}
	for i, cfg := range cases {
		if _, err := RunDistributed(cfg); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestRowsForPartition(t *testing.T) {
	// 10 rows over 3 procs: 4,3,3 with correct offsets
	starts, counts := []int{}, []int{}
	total := 0
	for r := 0; r < 3; r++ {
		s, c := rowsFor(10, 3, r)
		starts = append(starts, s)
		counts = append(counts, c)
		total += c
	}
	if total != 10 {
		t.Fatalf("counts %v don't sum to 10", counts)
	}
	if counts[0] != 4 || counts[1] != 3 || counts[2] != 3 {
		t.Fatalf("counts = %v", counts)
	}
	if starts[0] != 0 || starts[1] != 4 || starts[2] != 7 {
		t.Fatalf("starts = %v", starts)
	}
}

func TestPhantomTimeMatchesRealTime(t *testing.T) {
	// The phantom run performs identical communication and identical
	// Compute charges, so virtual times must agree exactly.
	cfg := Config{NX: 16, NY: 16, Iters: 10, Procs: 4, Model: model(1, 4)}
	real, err := RunDistributed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Phantom = true
	ph, err := RunDistributed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(real.Time-ph.Time) > 1e-12*real.Time {
		t.Fatalf("phantom %g vs real %g virtual time", ph.Time, real.Time)
	}
	if ph.Grid != nil {
		t.Fatal("phantom mode should not produce a grid")
	}
}

func TestStrongScalingImproves(t *testing.T) {
	pts, err := StrongScaling(model(1, 16), 512, 512, 5, []int{1, 2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Time >= pts[i-1].Time {
			t.Fatalf("no speedup from %d to %d procs: %g vs %g",
				pts[i-1].Procs, pts[i].Procs, pts[i-1].Time, pts[i].Time)
		}
	}
	// efficiency should degrade as communication grows relative to work
	if pts[len(pts)-1].Efficiency >= pts[0].Efficiency {
		t.Fatalf("efficiency should fall with P: %v", pts)
	}
	// speedup at P=16 must be meaningful but sub-linear
	last := pts[len(pts)-1]
	if last.Speedup < 4 || last.Speedup > 16 {
		t.Fatalf("P=16 speedup = %g, want within (4, 16)", last.Speedup)
	}
}
