package stencil

import (
	"testing"
)

func Test2DMatchesSerialExactly(t *testing.T) {
	nxc, nyc, iters := 14, 11, 20
	want := SolveSerial(nxc, nyc, iters)
	for _, g := range [][2]int{{1, 1}, {2, 2}, {3, 2}, {2, 4}, {3, 3}} {
		out, err := RunDistributed2D(Config2D{
			NX: nxc, NY: nyc, Iters: iters, PR: g[0], PC: g[1], Model: model(3, 3),
		})
		if err != nil {
			t.Fatalf("grid %v: %v", g, err)
		}
		for i := range want {
			if out.Grid[i] != want[i] {
				t.Fatalf("grid %v: cell %d differs: %g vs %g", g, i, out.Grid[i], want[i])
			}
		}
	}
}

func Test2DMatches1D(t *testing.T) {
	// a PR x 1 block decomposition is exactly the 1D row decomposition
	nxc, nyc, iters := 10, 12, 15
	d1, err := RunDistributed(Config{NX: nxc, NY: nyc, Iters: iters, Procs: 3, Model: model(1, 4)})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := RunDistributed2D(Config2D{NX: nxc, NY: nyc, Iters: iters, PR: 3, PC: 1, Model: model(1, 4)})
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1.Grid {
		if d1.Grid[i] != d2.Grid[i] {
			t.Fatalf("1D and 2D results differ at %d", i)
		}
	}
}

func Test2DValidation(t *testing.T) {
	m := model(2, 2)
	cases := []Config2D{
		{NX: 0, NY: 4, Iters: 1, PR: 1, PC: 1, Model: m},
		{NX: 4, NY: 4, Iters: 1, PR: 0, PC: 1, Model: m},
		{NX: 4, NY: 4, Iters: 1, PR: 3, PC: 3, Model: m}, // > nodes
		{NX: 2, NY: 8, Iters: 1, PR: 2, PC: 4, Model: m}, // PC > NX and > nodes
	}
	for i, cfg := range cases {
		if _, err := RunDistributed2D(cfg); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func Test2DBeats1DAtScale(t *testing.T) {
	// The surface-to-volume argument: at 64 processes on a 512^2 grid, the
	// 8x8 block decomposition must beat 64 row strips in virtual time.
	base := model(8, 8)
	d1, err := RunDistributed(Config{
		NX: 512, NY: 512, Iters: 10, Procs: 64, Model: base, Phantom: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := RunDistributed2D(Config2D{
		NX: 512, NY: 512, Iters: 10, PR: 8, PC: 8, Model: base, Phantom: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Time >= d1.Time {
		t.Fatalf("2D (%g) should beat 1D (%g) at 64 procs", d2.Time, d1.Time)
	}
}

func Test2DPhantomMatchesRealTime(t *testing.T) {
	cfg := Config2D{NX: 24, NY: 24, Iters: 8, PR: 2, PC: 2, Model: model(2, 2)}
	real, err := RunDistributed2D(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Phantom = true
	ph, err := RunDistributed2D(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if real.Time != ph.Time {
		t.Fatalf("virtual times differ: real %g phantom %g", real.Time, ph.Time)
	}
}
