package stencil

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/machine"
	"repro/internal/nx"
)

// This file implements the 2D (block) decomposition of the Jacobi solver.
// Relative to the 1D row decomposition, each of the PR x PC processes
// exchanges four halos of length ~N/PR and ~N/PC instead of two of length
// N — the surface-to-volume argument that decided decomposition choices on
// the Delta, quantified by BenchmarkAblationDecomposition.

// Tags for the four halo directions under the 2D decomposition.
const (
	tag2Up    nx.Tag = 40
	tag2Down  nx.Tag = 41
	tag2Left  nx.Tag = 42
	tag2Right nx.Tag = 43
	tag2Gath  nx.Tag = 44
)

// Config2D describes a block-decomposed run on a PR x PC process grid.
type Config2D struct {
	NX, NY  int // interior cells
	Iters   int
	PR, PC  int // process grid
	Model   machine.Model
	Phantom bool
	// Ctx, if non-nil, cancels the run: the simulation tears down at the
	// next collective boundary and the run returns Ctx.Err() instead of
	// an outcome. A nil Ctx preserves run-to-completion behavior.
	Ctx context.Context
	// Shards partitions the simulation's collective engine across host
	// cores (nx.Config.Shards); 0 uses the process-wide -sim-shards
	// default. Results are bit-identical for every value.
	Shards int
}

// RunDistributed2D executes the Jacobi solver with a 2D block
// decomposition; in real mode the final grid gathers to rank 0 and matches
// the serial solver bitwise.
func RunDistributed2D(cfg Config2D) (*Outcome, error) {
	if cfg.NX < 1 || cfg.NY < 1 || cfg.Iters < 0 {
		return nil, errors.New("stencil: invalid 2D grid configuration")
	}
	if cfg.PR < 1 || cfg.PC < 1 {
		return nil, errors.New("stencil: invalid process grid")
	}
	p := cfg.PR * cfg.PC
	if p > cfg.Model.Nodes() {
		return nil, fmt.Errorf("stencil: %dx%d grid needs %d nodes; model has %d",
			cfg.PR, cfg.PC, p, cfg.Model.Nodes())
	}
	if cfg.PR > cfg.NY || cfg.PC > cfg.NX {
		return nil, errors.New("stencil: process grid exceeds cell grid")
	}

	var final []float64
	times := make([]float64, p)
	res, err := nx.Run(nx.Config{Model: cfg.Model, Procs: p, Ctx: cfg.Ctx, Shards: cfg.Shards}, func(proc *nx.Proc) {
		rank := proc.Rank()
		pr, pc := rank/cfg.PC, rank%cfg.PC
		rowStart, myRows := rowsFor(cfg.NY, cfg.PR, pr)
		colStart, myCols := rowsFor(cfg.NX, cfg.PC, pc)
		w := myCols + 2

		var cur, next []float64
		if !cfg.Phantom {
			cur = make([]float64, (myRows+2)*w)
			next = make([]float64, (myRows+2)*w)
			if rowStart == 0 {
				for x := 0; x < w; x++ {
					cur[x] = Hot
					next[x] = Hot
				}
			}
		}
		up, down := pr-1, pr+1
		left, right := pc-1, pc+1
		neighbor := func(r, c int) int { return r*cfg.PC + c }

		colBuf := make([]float64, myRows)

		for it := 0; it < cfg.Iters; it++ {
			// vertical halos (rows)
			if up >= 0 {
				if cfg.Phantom {
					proc.SendPhantom(neighbor(up, pc), tag2Up, 8*myCols)
				} else {
					proc.SendFloats(neighbor(up, pc), tag2Up, cur[w+1:w+1+myCols])
				}
			}
			if down < cfg.PR {
				if cfg.Phantom {
					proc.SendPhantom(neighbor(down, pc), tag2Down, 8*myCols)
				} else {
					proc.SendFloats(neighbor(down, pc), tag2Down, cur[myRows*w+1:myRows*w+1+myCols])
				}
			}
			// horizontal halos (columns, strided -> packed)
			if left >= 0 {
				if cfg.Phantom {
					proc.SendPhantom(neighbor(pr, left), tag2Left, 8*myRows)
				} else {
					for y := 0; y < myRows; y++ {
						colBuf[y] = cur[(y+1)*w+1]
					}
					proc.SendFloats(neighbor(pr, left), tag2Left, colBuf)
				}
			}
			if right < cfg.PC {
				if cfg.Phantom {
					proc.SendPhantom(neighbor(pr, right), tag2Right, 8*myRows)
				} else {
					for y := 0; y < myRows; y++ {
						colBuf[y] = cur[(y+1)*w+myCols]
					}
					proc.SendFloats(neighbor(pr, right), tag2Right, colBuf)
				}
			}
			if down < cfg.PR {
				m := proc.Recv(neighbor(down, pc), tag2Up)
				if !cfg.Phantom {
					copy(cur[(myRows+1)*w+1:(myRows+1)*w+1+myCols], m.Floats)
				}
			}
			if up >= 0 {
				m := proc.Recv(neighbor(up, pc), tag2Down)
				if !cfg.Phantom {
					copy(cur[1:1+myCols], m.Floats)
				}
			}
			if right < cfg.PC {
				m := proc.Recv(neighbor(pr, right), tag2Left)
				if !cfg.Phantom {
					for y := 0; y < myRows; y++ {
						cur[(y+1)*w+myCols+1] = m.Floats[y]
					}
				}
			}
			if left >= 0 {
				m := proc.Recv(neighbor(pr, left), tag2Right)
				if !cfg.Phantom {
					for y := 0; y < myRows; y++ {
						cur[(y+1)*w] = m.Floats[y]
					}
				}
			}
			proc.Compute(machine.OpVector, 4*float64(myRows)*float64(myCols))
			if !cfg.Phantom {
				for y := 1; y <= myRows; y++ {
					for x := 1; x <= myCols; x++ {
						next[y*w+x] = 0.25 * (cur[(y-1)*w+x] + cur[(y+1)*w+x] +
							cur[y*w+x-1] + cur[y*w+x+1])
					}
				}
				cur, next = next, cur
				if rowStart == 0 {
					for x := 0; x < w; x++ {
						cur[x] = Hot
					}
				}
			}
		}
		times[rank] = proc.Now()

		if cfg.Phantom {
			return
		}
		// gather blocks to rank 0
		mine := make([]float64, myRows*myCols)
		for y := 0; y < myRows; y++ {
			copy(mine[y*myCols:(y+1)*myCols], cur[(y+1)*w+1:(y+1)*w+1+myCols])
		}
		if rank != 0 {
			proc.SendFloats(0, tag2Gath, mine)
			return
		}
		final = make([]float64, cfg.NX*cfg.NY)
		put := func(block []float64, rs, rc, cs, cc int) {
			for y := 0; y < rc; y++ {
				copy(final[(rs+y)*cfg.NX+cs:(rs+y)*cfg.NX+cs+cc], block[y*cc:(y+1)*cc])
			}
		}
		put(mine, rowStart, myRows, colStart, myCols)
		for r := 1; r < p; r++ {
			rs, rc := rowsFor(cfg.NY, cfg.PR, r/cfg.PC)
			cs, cc := rowsFor(cfg.NX, cfg.PC, r%cfg.PC)
			put(proc.RecvFloats(r, tag2Gath), rs, rc, cs, cc)
		}
	})
	if err != nil {
		return nil, err
	}
	out := &Outcome{Grid: final, Result: res}
	for _, t := range times {
		if t > out.Time {
			out.Time = t
		}
	}
	return out, nil
}
