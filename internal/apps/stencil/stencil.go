// Package stencil implements the computational-aerosciences workload of the
// CAS consortium exhibits: an iterative 2D Laplace solver (Jacobi
// relaxation), the inner kernel of 1992 CFD relaxation codes. A serial
// reference validates the distributed version, which decomposes the grid by
// rows with halo exchange on the nx runtime.
package stencil

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/machine"
	"repro/internal/nx"
)

// Boundary temperatures of the heated-plate problem: the top edge is held
// at Hot, the other three at zero.
const Hot = 100.0

// SolveSerial runs iters Jacobi sweeps on an nxCells x nyCells interior
// grid (plus fixed boundary) and returns the final interior values in
// row-major order (ny rows of nx values).
func SolveSerial(nxCells, nyCells, iters int) []float64 {
	if nxCells < 1 || nyCells < 1 || iters < 0 {
		panic("stencil: invalid serial dimensions")
	}
	w := nxCells + 2
	h := nyCells + 2
	cur := make([]float64, w*h)
	next := make([]float64, w*h)
	for x := 0; x < w; x++ {
		cur[x] = Hot // top boundary row
		next[x] = Hot
	}
	for it := 0; it < iters; it++ {
		for y := 1; y <= nyCells; y++ {
			for x := 1; x <= nxCells; x++ {
				next[y*w+x] = 0.25 * (cur[(y-1)*w+x] + cur[(y+1)*w+x] +
					cur[y*w+x-1] + cur[y*w+x+1])
			}
		}
		cur, next = next, cur
	}
	out := make([]float64, nxCells*nyCells)
	for y := 0; y < nyCells; y++ {
		copy(out[y*nxCells:(y+1)*nxCells], cur[(y+1)*w+1:(y+1)*w+1+nxCells])
	}
	return out
}

// Config describes a distributed run.
type Config struct {
	NX, NY  int // interior grid cells
	Iters   int
	Procs   int // row-decomposition factor; 0 means all model nodes
	Model   machine.Model
	Phantom bool
	// Ctx, if non-nil, cancels the run: the simulation tears down at the
	// next collective boundary and the run returns Ctx.Err() instead of
	// an outcome. A nil Ctx preserves run-to-completion behavior.
	Ctx context.Context
	// Shards partitions the simulation's collective engine across host
	// cores (nx.Config.Shards); 0 uses the process-wide -sim-shards
	// default. Results are bit-identical for every value.
	Shards int
}

// Outcome reports a distributed run.
type Outcome struct {
	Grid   []float64 // interior values, row-major (nil in phantom mode)
	Time   float64   // virtual seconds
	Result *nx.Result
}

// rowsFor splits ny rows contiguously over p processes: the first ny%p
// processes get one extra row.
func rowsFor(ny, p, rank int) (start, count int) {
	base := ny / p
	extra := ny % p
	count = base
	if rank < extra {
		count++
		start = rank * count
	} else {
		start = extra*(base+1) + (rank-extra)*base
	}
	return start, count
}

// Tags for halo exchange and gather.
const (
	tagUp     nx.Tag = 10
	tagDown   nx.Tag = 11
	tagGather nx.Tag = 12
)

// RunDistributed executes the Jacobi solver on the nx runtime and, in real
// mode, gathers the final grid to rank 0.
func RunDistributed(cfg Config) (*Outcome, error) {
	if cfg.NX < 1 || cfg.NY < 1 || cfg.Iters < 0 {
		return nil, errors.New("stencil: invalid grid configuration")
	}
	p := cfg.Procs
	if p == 0 {
		p = cfg.Model.Nodes()
	}
	if p < 1 || p > cfg.Model.Nodes() {
		return nil, fmt.Errorf("stencil: Procs=%d invalid for %d-node model", p, cfg.Model.Nodes())
	}
	if p > cfg.NY {
		return nil, fmt.Errorf("stencil: more processes (%d) than grid rows (%d)", p, cfg.NY)
	}

	var final []float64
	times := make([]float64, p)
	res, err := nx.Run(nx.Config{Model: cfg.Model, Procs: p, Ctx: cfg.Ctx, Shards: cfg.Shards}, func(proc *nx.Proc) {
		rank := proc.Rank()
		rowStart, myRows := rowsFor(cfg.NY, p, rank)
		w := cfg.NX + 2
		rowBytes := 8 * w

		var cur, next []float64
		if !cfg.Phantom {
			cur = make([]float64, (myRows+2)*w)
			next = make([]float64, (myRows+2)*w)
			if rowStart == 0 { // global top boundary lives in my halo row
				for x := 0; x < w; x++ {
					cur[x] = Hot
					next[x] = Hot
				}
			}
		}

		up, down := rank-1, rank+1
		for it := 0; it < cfg.Iters; it++ {
			// halo exchange: first interior row up, last interior row down
			if up >= 0 {
				if cfg.Phantom {
					proc.SendPhantom(up, tagUp, rowBytes)
				} else {
					proc.SendFloats(up, tagUp, cur[w:2*w])
				}
			}
			if down < p {
				if cfg.Phantom {
					proc.SendPhantom(down, tagDown, rowBytes)
				} else {
					proc.SendFloats(down, tagDown, cur[myRows*w:(myRows+1)*w])
				}
			}
			if down < p {
				m := proc.Recv(down, tagUp)
				if !cfg.Phantom {
					copy(cur[(myRows+1)*w:(myRows+2)*w], m.Floats)
				}
			}
			if up >= 0 {
				m := proc.Recv(up, tagDown)
				if !cfg.Phantom {
					copy(cur[0:w], m.Floats)
				}
			}
			// sweep: 4 flops per interior cell
			proc.Compute(machine.OpVector, 4*float64(myRows)*float64(cfg.NX))
			if !cfg.Phantom {
				for y := 1; y <= myRows; y++ {
					for x := 1; x <= cfg.NX; x++ {
						next[y*w+x] = 0.25 * (cur[(y-1)*w+x] + cur[(y+1)*w+x] +
							cur[y*w+x-1] + cur[y*w+x+1])
					}
				}
				// keep fixed boundary columns and the global top row intact
				cur, next = next, cur
				if rowStart == 0 {
					for x := 0; x < w; x++ {
						cur[x] = Hot
					}
				}
			}
		}
		times[rank] = proc.Now()

		if cfg.Phantom {
			return
		}
		// gather interior rows to rank 0
		mine := make([]float64, myRows*cfg.NX)
		for y := 0; y < myRows; y++ {
			copy(mine[y*cfg.NX:(y+1)*cfg.NX], cur[(y+1)*w+1:(y+1)*w+1+cfg.NX])
		}
		if rank != 0 {
			proc.SendFloats(0, tagGather, mine)
			return
		}
		final = make([]float64, cfg.NX*cfg.NY)
		copy(final, mine)
		for r := 1; r < p; r++ {
			rs, rc := rowsFor(cfg.NY, p, r)
			part := proc.RecvFloats(r, tagGather)
			copy(final[rs*cfg.NX:(rs+rc)*cfg.NX], part)
		}
	})
	if err != nil {
		return nil, err
	}
	out := &Outcome{Grid: final, Result: res}
	for _, t := range times {
		if t > out.Time {
			out.Time = t
		}
	}
	return out, nil
}

// ScalingPoint is one row of a strong-scaling experiment.
type ScalingPoint struct {
	Procs      int
	Time       float64
	Speedup    float64
	Efficiency float64
}

// StrongScaling runs the solver in phantom mode at fixed problem size for
// each process count and reports speedup relative to the first entry.
func StrongScaling(model machine.Model, nxCells, nyCells, iters int, procs []int) ([]ScalingPoint, error) {
	var out []ScalingPoint
	var t1 float64
	for i, p := range procs {
		o, err := RunDistributed(Config{
			NX: nxCells, NY: nyCells, Iters: iters,
			Procs: p, Model: model, Phantom: true,
		})
		if err != nil {
			return nil, err
		}
		pt := ScalingPoint{Procs: p, Time: o.Time}
		if i == 0 {
			t1 = o.Time * float64(procs[0]) // normalize to 1-proc equivalent
		}
		pt.Speedup = t1 / o.Time
		pt.Efficiency = pt.Speedup / float64(p)
		out = append(out, pt)
	}
	return out, nil
}
