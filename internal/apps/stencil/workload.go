package stencil

import (
	"context"

	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/report"
)

// The CFD relaxation kernel as a registry workload: a 2D block-decomposed
// Jacobi sweep on the Delta model, the aerosciences consortium's
// building block.
func init() {
	harness.MustRegister(harness.Spec{
		WorkloadID: "app/cfd-stencil",
		Desc:       "CFD relaxation kernel (2D Jacobi) on the Delta model",
		Space: []harness.Param{
			{Name: "n", Default: "512", Doc: "grid edge (n x n interior cells)"},
			{Name: "iters", Default: "20", Doc: "Jacobi iterations"},
			{Name: "pr", Default: "8", Doc: "process grid rows"},
			{Name: "pc", Default: "8", Doc: "process grid columns"},
		},
		RunFunc: runWorkload,
	})
}

func runWorkload(ctx context.Context, p harness.Params) (harness.Result, error) {
	if err := ctx.Err(); err != nil {
		return harness.Result{}, err
	}
	defN, defIters := 512, 20
	if p.Quick {
		defN, defIters = 128, 5
	}
	n, err := p.Int("n", defN)
	if err != nil {
		return harness.Result{}, err
	}
	iters, err := p.Int("iters", defIters)
	if err != nil {
		return harness.Result{}, err
	}
	pr, err := p.Int("pr", 8)
	if err != nil {
		return harness.Result{}, err
	}
	pc, err := p.Int("pc", 8)
	if err != nil {
		return harness.Result{}, err
	}
	out, err := RunDistributed2D(Config2D{
		NX: n, NY: n, Iters: iters, PR: pr, PC: pc,
		Model: machine.Delta(), Phantom: true, Ctx: ctx,
	})
	if err != nil {
		return harness.Result{}, err
	}
	t := report.NewTable(report.Cellf("CFD stencil, %dx%d grid on %dx%d processes", n, n, pr, pc),
		"Quantity", "Value")
	t.AddRow("Grid", report.Cellf("%d x %d", n, n))
	t.AddRow("Iterations", report.Cellf("%d", iters))
	t.AddRow("Processes", report.Cellf("%d", pr*pc))
	t.AddRow("Simulated time", report.Cellf("%.4f s", out.Time))
	res := harness.Result{
		Title: "CFD relaxation kernel",
		Text:  t.Render(),
	}
	res.AddMetric("simulated-s", out.Time, "s")
	res.AddMetric("procs", float64(pr*pc), "")
	return res, nil
}
