package shallow

import (
	"context"

	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/report"
)

// The shallow-water dynamical core as a registry workload: the NOAA/EPA
// ocean/atmosphere Grand Challenge kernel on the Delta model.
func init() {
	harness.MustRegister(harness.Spec{
		WorkloadID: "app/shallow-water",
		Desc:       "Shallow-water dynamical core (C-grid) on the Delta model",
		Space: []harness.Param{
			{Name: "n", Default: "512", Doc: "grid edge (n x n cells)"},
			{Name: "steps", Default: "20", Doc: "time steps"},
			{Name: "procs", Default: "64", Doc: "row-decomposed processes"},
		},
		RunFunc: runWorkload,
	})
}

func runWorkload(ctx context.Context, p harness.Params) (harness.Result, error) {
	if err := ctx.Err(); err != nil {
		return harness.Result{}, err
	}
	defN, defSteps := 512, 20
	if p.Quick {
		defN, defSteps = 128, 5
	}
	n, err := p.Int("n", defN)
	if err != nil {
		return harness.Result{}, err
	}
	steps, err := p.Int("steps", defSteps)
	if err != nil {
		return harness.Result{}, err
	}
	procs, err := p.Int("procs", 64)
	if err != nil {
		return harness.Result{}, err
	}
	out, err := RunDistributed(Config{
		NX: n, NY: n, Steps: steps, Procs: procs,
		Params: DefaultParams(), Model: machine.Delta(), Phantom: true, Ctx: ctx,
	})
	if err != nil {
		return harness.Result{}, err
	}
	t := report.NewTable(report.Cellf("Shallow-water model, %dx%d grid on %d processes", n, n, procs),
		"Quantity", "Value")
	t.AddRow("Grid", report.Cellf("%d x %d", n, n))
	t.AddRow("Steps", report.Cellf("%d", steps))
	t.AddRow("Processes", report.Cellf("%d", procs))
	t.AddRow("Simulated time", report.Cellf("%.4f s", out.Time))
	res := harness.Result{
		Title: "Shallow-water dynamical core",
		Text:  t.Render(),
	}
	res.AddMetric("simulated-s", out.Time, "s")
	res.AddMetric("procs", float64(procs), "")
	return res, nil
}
