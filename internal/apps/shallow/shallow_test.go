package shallow

import (
	"math"
	"testing"

	"repro/internal/machine"
)

func model(cols int) machine.Model {
	m := machine.Delta()
	m.Rows, m.Cols = 1, cols
	return m
}

func TestDefaultParamsStable(t *testing.T) {
	p := DefaultParams()
	if cfl := p.CFL(); cfl >= 1 || cfl <= 0 {
		t.Fatalf("CFL = %g, want in (0,1)", cfl)
	}
}

func TestGaussianBumpCentred(t *testing.T) {
	s := NewState(32, 32)
	s.GaussianBump(2.0)
	// peak at centre
	peak, pk := 0.0, 0
	for k, v := range s.H {
		if v > peak {
			peak, pk = v, k
		}
	}
	if math.Abs(peak-2.0) > 1e-6 {
		t.Fatalf("peak = %g, want ~2.0", peak)
	}
	ci, cj := pk/32, pk%32
	if ci != 16 || cj != 16 {
		t.Fatalf("peak at (%d,%d), want (16,16)", ci, cj)
	}
}

func TestMassConservedExactly(t *testing.T) {
	p := DefaultParams()
	s := NewState(24, 24)
	s.GaussianBump(1.0)
	m0 := s.Mass()
	for i := 0; i < 200; i++ {
		s.Step(p)
	}
	if d := math.Abs(s.Mass() - m0); d > 1e-9*math.Abs(m0)+1e-9 {
		t.Fatalf("mass drifted by %g over 200 steps", d)
	}
}

func TestEnergyBounded(t *testing.T) {
	p := DefaultParams()
	s := NewState(24, 24)
	s.GaussianBump(1.0)
	e0 := s.Energy(p)
	var maxE float64
	for i := 0; i < 300; i++ {
		s.Step(p)
		if e := s.Energy(p); e > maxE {
			maxE = e
		}
	}
	// forward-backward is near-neutral within CFL: no energy blow-up
	if maxE > 1.5*e0 {
		t.Fatalf("energy grew from %g to %g — instability", e0, maxE)
	}
}

func TestWavesPropagate(t *testing.T) {
	// After enough steps, elevation at a point far from the bump must
	// become non-zero: gravity waves radiate outward.
	p := DefaultParams()
	s := NewState(32, 32)
	s.GaussianBump(1.0)
	corner := 0 // far from centre (16,16)
	if s.H[corner] > 1e-6 {
		t.Fatal("corner should start near zero")
	}
	for i := 0; i < 150; i++ {
		s.Step(p)
	}
	if math.Abs(s.H[corner]) < 1e-8 {
		t.Fatal("no wave reached the corner after 150 steps")
	}
}

func TestStateValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("tiny grid should panic")
		}
	}()
	NewState(2, 2)
}

func TestDistributedMatchesSerialBitwise(t *testing.T) {
	p := DefaultParams()
	nxc, nyc, steps := 16, 21, 30
	ref := RunSerial(nxc, nyc, steps, p)
	for _, procs := range []int{1, 2, 3, 7} {
		out, err := RunDistributed(Config{
			NX: nxc, NY: nyc, Steps: steps, Procs: procs,
			Params: p, Model: model(8),
		})
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		for k := range ref.H {
			if out.State.H[k] != ref.H[k] || out.State.U[k] != ref.U[k] || out.State.V[k] != ref.V[k] {
				t.Fatalf("procs=%d: state differs at cell %d", procs, k)
			}
		}
	}
}

func TestDistributedValidation(t *testing.T) {
	m := model(4)
	p := DefaultParams()
	cases := []Config{
		{NX: 2, NY: 8, Steps: 1, Procs: 2, Params: p, Model: m},
		{NX: 8, NY: 8, Steps: -1, Procs: 2, Params: p, Model: m},
		{NX: 8, NY: 3, Steps: 1, Procs: 4, Params: p, Model: m},
		{NX: 8, NY: 8, Steps: 1, Procs: 99, Params: p, Model: m},
	}
	for i, cfg := range cases {
		if _, err := RunDistributed(cfg); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestPhantomChargesTimeAndTraffic(t *testing.T) {
	out, err := RunDistributed(Config{
		NX: 64, NY: 64, Steps: 5, Procs: 4,
		Params: DefaultParams(), Model: model(4), Phantom: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.State != nil {
		t.Fatal("phantom should not gather state")
	}
	if out.Time <= 0 || out.Result.TotalMsgs == 0 {
		t.Fatalf("phantom run produced no activity: %+v", out)
	}
}

func TestPhantomTimeMatchesReal(t *testing.T) {
	cfg := Config{NX: 24, NY: 24, Steps: 10, Procs: 3,
		Params: DefaultParams(), Model: model(4)}
	real, err := RunDistributed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Phantom = true
	ph, err := RunDistributed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(real.Time-ph.Time) > 1e-9*real.Time {
		t.Fatalf("virtual time mismatch: real %g phantom %g", real.Time, ph.Time)
	}
}
