// Package shallow implements the ocean/atmosphere Grand-Challenge workload
// of the NOAA and EPA program rows: linearized shallow-water equations on a
// doubly periodic Arakawa C-grid with forward-backward time stepping — the
// dynamical core of 1992 ocean and climate codes. A serial reference
// validates the distributed row-decomposed version running on the nx
// runtime.
package shallow

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/machine"
	"repro/internal/nx"
)

// Params are the physical and numerical parameters of the model.
type Params struct {
	G      float64 // gravity (m/s^2)
	Depth  float64 // resting depth H (m)
	F      float64 // Coriolis parameter (1/s)
	DX, DY float64 // grid spacing (m)
	DT     float64 // time step (s)
}

// DefaultParams returns a midlatitude-ocean configuration whose gravity
// wave speed is sqrt(G*Depth) ~ 200 m/s, stable at the default step.
func DefaultParams() Params {
	return Params{G: 9.8, Depth: 4000, F: 1e-4, DX: 1e5, DY: 1e5, DT: 100}
}

// CFL returns the Courant number c*dt/min(dx,dy); stability requires < 1.
func (p Params) CFL() float64 {
	c := math.Sqrt(p.G * p.Depth)
	d := math.Min(p.DX, p.DY)
	return c * p.DT / d
}

// State is the model state on an ny x nx periodic C-grid: H is the surface
// elevation at cell centers, U the zonal velocity on west edges, V the
// meridional velocity on south edges. Index (i, j) maps to i*NX+j.
type State struct {
	NX, NY  int
	H, U, V []float64
}

// NewState allocates a resting state.
func NewState(nxCells, nyCells int) *State {
	if nxCells < 3 || nyCells < 3 {
		panic("shallow: grid must be at least 3x3")
	}
	n := nxCells * nyCells
	return &State{NX: nxCells, NY: nyCells,
		H: make([]float64, n), U: make([]float64, n), V: make([]float64, n)}
}

// GaussianBump sets the initial elevation to a Gaussian of the given
// amplitude centred in the domain.
func (s *State) GaussianBump(amp float64) {
	cx, cy := float64(s.NX)/2, float64(s.NY)/2
	sigma := float64(s.NX) / 8
	for i := 0; i < s.NY; i++ {
		for j := 0; j < s.NX; j++ {
			dx, dy := float64(j)-cx, float64(i)-cy
			s.H[i*s.NX+j] = amp * math.Exp(-(dx*dx+dy*dy)/(2*sigma*sigma))
		}
	}
}

// Mass returns the domain-integrated elevation, an exactly conserved
// quantity of the scheme under periodic boundaries.
func (s *State) Mass() float64 {
	m := 0.0
	for _, h := range s.H {
		m += h
	}
	return m
}

// Energy returns the discrete total energy (kinetic + potential), which the
// forward-backward scheme keeps bounded within the CFL limit.
func (s *State) Energy(p Params) float64 {
	e := 0.0
	for k := range s.H {
		e += 0.5*p.Depth*(s.U[k]*s.U[k]+s.V[k]*s.V[k]) + 0.5*p.G*s.H[k]*s.H[k]
	}
	return e
}

func (s *State) wrap(i, j int) int {
	if i < 0 {
		i += s.NY
	} else if i >= s.NY {
		i -= s.NY
	}
	if j < 0 {
		j += s.NX
	} else if j >= s.NX {
		j -= s.NX
	}
	return i*s.NX + j
}

// Step advances the state by one forward-backward step: elevation first
// with old velocities, then velocities with the new elevation.
func (s *State) Step(p Params) {
	nxc, nyc := s.NX, s.NY
	hNew := make([]float64, len(s.H))
	for i := 0; i < nyc; i++ {
		for j := 0; j < nxc; j++ {
			k := i*nxc + j
			du := s.U[s.wrap(i, j+1)] - s.U[k]
			dv := s.V[s.wrap(i+1, j)] - s.V[k]
			hNew[k] = s.H[k] - p.DT*p.Depth*(du/p.DX+dv/p.DY)
		}
	}
	uNew := make([]float64, len(s.U))
	vNew := make([]float64, len(s.V))
	for i := 0; i < nyc; i++ {
		for j := 0; j < nxc; j++ {
			k := i*nxc + j
			vbar := 0.25 * (s.V[k] + s.V[s.wrap(i+1, j)] +
				s.V[s.wrap(i, j-1)] + s.V[s.wrap(i+1, j-1)])
			uNew[k] = s.U[k] + p.DT*(p.F*vbar-p.G*(hNew[k]-hNew[s.wrap(i, j-1)])/p.DX)
		}
	}
	for i := 0; i < nyc; i++ {
		for j := 0; j < nxc; j++ {
			k := i*nxc + j
			ubar := 0.25 * (s.U[k] + s.U[s.wrap(i-1, j)] +
				s.U[s.wrap(i, j+1)] + s.U[s.wrap(i-1, j+1)])
			vNew[k] = s.V[k] + p.DT*(-p.F*ubar-p.G*(hNew[k]-hNew[s.wrap(i-1, j)])/p.DY)
		}
	}
	s.H, s.U, s.V = hNew, uNew, vNew
}

// RunSerial integrates steps time steps from a Gaussian bump and returns
// the final state.
func RunSerial(nxCells, nyCells, steps int, p Params) *State {
	s := NewState(nxCells, nyCells)
	s.GaussianBump(1.0)
	for t := 0; t < steps; t++ {
		s.Step(p)
	}
	return s
}

// Config describes a distributed run.
type Config struct {
	NX, NY  int
	Steps   int
	Procs   int
	Params  Params
	Model   machine.Model
	Phantom bool
	// Ctx, if non-nil, cancels the run: the simulation tears down at the
	// next collective boundary and the run returns Ctx.Err() instead of
	// an outcome. A nil Ctx preserves run-to-completion behavior.
	Ctx context.Context
	// Shards partitions the simulation's collective engine across host
	// cores (nx.Config.Shards); 0 uses the process-wide -sim-shards
	// default. Results are bit-identical for every value.
	Shards int
}

// Outcome reports a distributed run.
type Outcome struct {
	State  *State // gathered final state (nil in phantom mode)
	Time   float64
	Result *nx.Result
}

// Tags for the three halo exchanges and the gather.
const (
	tagVUp    nx.Tag = 20
	tagHDown  nx.Tag = 21
	tagUDown  nx.Tag = 22
	tagGather nx.Tag = 23
)

func rowsFor(ny, p, rank int) (start, count int) {
	base, extra := ny/p, ny%p
	count = base
	if rank < extra {
		count++
		start = rank * count
	} else {
		start = extra*(base+1) + (rank-extra)*base
	}
	return
}

// RunDistributed integrates the model on a row decomposition with periodic
// halo exchange. In real mode the final state is gathered to rank 0 and
// must match RunSerial bitwise (per-cell arithmetic is identical).
func RunDistributed(cfg Config) (*Outcome, error) {
	if cfg.NX < 3 || cfg.NY < 3 || cfg.Steps < 0 {
		return nil, errors.New("shallow: invalid grid configuration")
	}
	p := cfg.Procs
	if p == 0 {
		p = cfg.Model.Nodes()
	}
	if p < 1 || p > cfg.Model.Nodes() {
		return nil, fmt.Errorf("shallow: Procs=%d invalid for %d-node model", p, cfg.Model.Nodes())
	}
	if p > cfg.NY {
		return nil, fmt.Errorf("shallow: more processes (%d) than rows (%d)", p, cfg.NY)
	}

	var final *State
	times := make([]float64, p)
	res, err := nx.Run(nx.Config{Model: cfg.Model, Procs: p, Ctx: cfg.Ctx, Shards: cfg.Shards}, func(proc *nx.Proc) {
		w := newDistWorker(proc, cfg, p)
		for t := 0; t < cfg.Steps; t++ {
			w.step()
		}
		times[proc.Rank()] = proc.Now()
		if cfg.Phantom {
			return
		}
		if st := w.gather(); st != nil {
			final = st
		}
	})
	if err != nil {
		return nil, err
	}
	out := &Outcome{State: final, Result: res}
	for _, t := range times {
		if t > out.Time {
			out.Time = t
		}
	}
	return out, nil
}

// distWorker holds one process's strip of rows plus halo rows.
type distWorker struct {
	p        *nx.Proc
	cfg      Config
	procs    int
	rowStart int
	rows     int
	h, u, v  []float64 // rows x NX
	vBelow   []float64 // first v row of the down neighbour
	hAbove   []float64 // last h row of the up neighbour
	uAbove   []float64 // last u row of the up neighbour
}

func newDistWorker(proc *nx.Proc, cfg Config, procs int) *distWorker {
	w := &distWorker{p: proc, cfg: cfg, procs: procs}
	w.rowStart, w.rows = rowsFor(cfg.NY, procs, proc.Rank())
	if !cfg.Phantom {
		n := w.rows * cfg.NX
		w.h = make([]float64, n)
		w.u = make([]float64, n)
		w.v = make([]float64, n)
		// initialize from the same global Gaussian bump
		ref := NewState(cfg.NX, cfg.NY)
		ref.GaussianBump(1.0)
		copy(w.h, ref.H[w.rowStart*cfg.NX:(w.rowStart+w.rows)*cfg.NX])
		w.vBelow = make([]float64, cfg.NX)
		w.hAbove = make([]float64, cfg.NX)
		w.uAbove = make([]float64, cfg.NX)
	}
	return w
}

// neighbours with periodic wrap over process ranks
func (w *distWorker) up() int   { return (w.p.Rank() + w.procs - 1) % w.procs }
func (w *distWorker) down() int { return (w.p.Rank() + 1) % w.procs }

// exchange sends rowData to dst and receives the peer row from src under
// one tag; with a single process it is a pure local copy.
func (w *distWorker) exchange(dst, src int, tag nx.Tag, rowData []float64, into []float64) {
	rowBytes := 8 * w.cfg.NX
	if w.procs == 1 {
		if !w.cfg.Phantom {
			copy(into, rowData)
		}
		return
	}
	if w.cfg.Phantom {
		w.p.SendPhantom(dst, tag, rowBytes)
		w.p.Recv(src, tag)
		return
	}
	w.p.SendFloats(dst, tag, rowData)
	copy(into, w.p.RecvFloats(src, tag))
}

func (w *distWorker) row(a []float64, i int) []float64 {
	return a[i*w.cfg.NX : (i+1)*w.cfg.NX]
}

func (w *distWorker) step() {
	cfg := w.cfg
	nxc := cfg.NX
	pr := cfg.Params

	// v halo travels up: my first v row goes to the up neighbour.
	var vRow0 []float64
	if !cfg.Phantom {
		vRow0 = w.row(w.v, 0)
	} else {
		vRow0 = nil
	}
	w.exchange(w.up(), w.down(), tagVUp, vRow0, w.vBelow)

	// elevation update (7 flops per cell)
	w.p.Compute(machine.OpVector, 7*float64(w.rows)*float64(nxc))
	var hNew []float64
	if !cfg.Phantom {
		hNew = make([]float64, len(w.h))
		for i := 0; i < w.rows; i++ {
			vNext := w.vBelow
			if i+1 < w.rows {
				vNext = w.row(w.v, i+1)
			}
			for j := 0; j < nxc; j++ {
				jr := j + 1
				if jr == nxc {
					jr = 0
				}
				k := i*nxc + j
				du := w.u[i*nxc+jr] - w.u[k]
				dv := vNext[j] - w.v[k]
				hNew[k] = w.h[k] - pr.DT*pr.Depth*(du/pr.DX+dv/pr.DY)
			}
		}
	}

	// h and u halos travel down: my last rows go to the down neighbour.
	var hLast, uLast []float64
	if !cfg.Phantom {
		hLast = hNew[(w.rows-1)*nxc : w.rows*nxc]
		uLast = w.row(w.u, w.rows-1)
	}
	w.exchange(w.down(), w.up(), tagHDown, hLast, w.hAbove)
	w.exchange(w.down(), w.up(), tagUDown, uLast, w.uAbove)

	// velocity updates (10 flops per cell each)
	w.p.Compute(machine.OpVector, 20*float64(w.rows)*float64(nxc))
	if cfg.Phantom {
		return
	}
	uNew := make([]float64, len(w.u))
	vNew := make([]float64, len(w.v))
	for i := 0; i < w.rows; i++ {
		vHere := w.row(w.v, i)
		vNext := w.vBelow
		if i+1 < w.rows {
			vNext = w.row(w.v, i+1)
		}
		for j := 0; j < nxc; j++ {
			jl := j - 1
			if jl < 0 {
				jl = nxc - 1
			}
			k := i*nxc + j
			vbar := 0.25 * (vHere[j] + vNext[j] + vHere[jl] + vNext[jl])
			uNew[k] = w.u[k] + pr.DT*(pr.F*vbar-pr.G*(hNew[k]-hNew[i*nxc+jl])/pr.DX)
		}
	}
	for i := 0; i < w.rows; i++ {
		uHere := w.row(w.u, i)
		uPrev := w.uAbove
		hPrev := w.hAbove
		if i > 0 {
			uPrev = w.row(w.u, i-1)
			hPrev = hNew[(i-1)*nxc : i*nxc]
		}
		for j := 0; j < nxc; j++ {
			jr := j + 1
			if jr == nxc {
				jr = 0
			}
			k := i*nxc + j
			ubar := 0.25 * (uHere[j] + uPrev[j] + uHere[jr] + uPrev[jr])
			vNew[k] = w.v[k] + pr.DT*(-pr.F*ubar-pr.G*(hNew[k]-hPrev[j])/pr.DY)
		}
	}
	w.h, w.u, w.v = hNew, uNew, vNew
}

// gather assembles the global state on rank 0 and returns it there.
func (w *distWorker) gather() *State {
	cfg := w.cfg
	if w.p.Rank() != 0 {
		w.p.SendFloats(0, tagGather, w.h)
		w.p.SendFloats(0, tagGather, w.u)
		w.p.SendFloats(0, tagGather, w.v)
		return nil
	}
	st := NewState(cfg.NX, cfg.NY)
	copy(st.H[w.rowStart*cfg.NX:], w.h)
	copy(st.U[w.rowStart*cfg.NX:], w.u)
	copy(st.V[w.rowStart*cfg.NX:], w.v)
	for r := 1; r < w.procs; r++ {
		rs, _ := rowsFor(cfg.NY, w.procs, r)
		copy(st.H[rs*cfg.NX:], w.p.RecvFloats(r, tagGather))
		copy(st.U[rs*cfg.NX:], w.p.RecvFloats(r, tagGather))
		copy(st.V[rs*cfg.NX:], w.p.RecvFloats(r, tagGather))
	}
	return st
}
