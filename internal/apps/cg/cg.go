// Package cg implements a conjugate-gradient solver for the 2D Poisson
// problem — the sparse iterative-solver workload of the Grand Challenge
// list (reservoir models, structural analysis, device simulation all
// reduced to SPD solves in 1992). The distributed version partitions the
// grid by rows: each iteration costs one halo exchange (matrix-vector
// product) and two allreduces (the dot products), making CG the classic
// latency-bound counterpoint to the dense LINPACK kernel.
package cg

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/machine"
	"repro/internal/nx"
)

// matvec5 computes y = A*x for the 5-point Laplacian on an n x n grid with
// Dirichlet (zero) exterior, rows [r0, r1) of the grid, where x carries one
// halo row on each side (x[0:n] is the row above r0, x[(1+i)*n:...] is row
// r0+i). y has (r1-r0)*n entries.
func matvec5(n, r0, r1 int, x, y []float64) {
	rows := r1 - r0
	for i := 0; i < rows; i++ {
		up := x[i*n : (i+1)*n]
		mid := x[(i+1)*n : (i+2)*n]
		down := x[(i+2)*n : (i+3)*n]
		out := y[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			v := 4 * mid[j]
			if j > 0 {
				v -= mid[j-1]
			}
			if j < n-1 {
				v -= mid[j+1]
			}
			v -= up[j]
			v -= down[j]
			out[j] = v
		}
	}
}

// flopsPerCell is the operation count charged per grid cell per matvec.
const flopsPerCell = 8

// SolveSerial runs CG on the n x n Poisson problem with right-hand side
// b = A*ones (exact solution: all ones), stopping after maxIters
// iterations or when the residual 2-norm drops below tol. It returns the
// solution, the final residual norm and the iterations used.
func SolveSerial(n, maxIters int, tol float64) (x []float64, residual float64, iters int) {
	if n < 2 {
		panic("cg: grid must be at least 2x2")
	}
	cells := n * n
	x = make([]float64, cells)
	ones := make([]float64, cells)
	for i := range ones {
		ones[i] = 1
	}
	b := applyFull(n, ones)
	r := append([]float64(nil), b...) // x0 = 0 -> r = b
	p := append([]float64(nil), r...)
	ap := make([]float64, cells)
	rr := dot(r, r)
	for iters = 0; iters < maxIters && math.Sqrt(rr) >= tol; iters++ {
		copy(ap, applyFull(n, p))
		alpha := rr / dot(p, ap)
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rrNew := dot(r, r)
		beta := rrNew / rr
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rr = rrNew
	}
	return x, math.Sqrt(rr), iters
}

// applyFull computes A*v on the full grid via the halo-form kernel.
func applyFull(n int, v []float64) []float64 {
	padded := make([]float64, (n+2)*n)
	copy(padded[n:], v)
	out := make([]float64, n*n)
	matvec5(n, 0, n, padded, out)
	return out
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Config describes a distributed solve.
type Config struct {
	N        int // grid side; the system has N*N unknowns
	MaxIters int
	Tol      float64
	Procs    int
	Model    machine.Model
	Phantom  bool // fixed MaxIters iterations, no numerics
	// Ctx, if non-nil, cancels the run: the simulation tears down at the
	// next collective boundary and the run returns Ctx.Err() instead of
	// an outcome. A nil Ctx preserves run-to-completion behavior.
	Ctx context.Context
	// Shards partitions the simulation's collective engine across host
	// cores (nx.Config.Shards); 0 uses the process-wide -sim-shards
	// default. Results are bit-identical for every value.
	Shards int
}

// Outcome reports a distributed solve.
type Outcome struct {
	X        []float64 // gathered solution (nil in phantom mode)
	Residual float64
	Iters    int
	Time     float64
	Result   *nx.Result
}

const (
	tagUp     nx.Tag = 50
	tagDown   nx.Tag = 51
	tagGather nx.Tag = 52
)

func rowsFor(ny, p, rank int) (start, count int) {
	base, extra := ny/p, ny%p
	count = base
	if rank < extra {
		count++
		start = rank * count
	} else {
		start = extra*(base+1) + (rank-extra)*base
	}
	return
}

// SolveDistributed runs CG across a row decomposition of the grid.
func SolveDistributed(cfg Config) (*Outcome, error) {
	if cfg.N < 2 {
		return nil, errors.New("cg: grid must be at least 2x2")
	}
	if cfg.MaxIters < 1 {
		return nil, errors.New("cg: MaxIters must be >= 1")
	}
	p := cfg.Procs
	if p == 0 {
		p = cfg.Model.Nodes()
	}
	if p < 1 || p > cfg.Model.Nodes() {
		return nil, fmt.Errorf("cg: Procs=%d invalid for %d-node model", p, cfg.Model.Nodes())
	}
	if p > cfg.N {
		return nil, fmt.Errorf("cg: more processes (%d) than grid rows (%d)", p, cfg.N)
	}

	var outX []float64
	var outRes float64
	var outIters int
	times := make([]float64, p)
	res, err := nx.Run(nx.Config{Model: cfg.Model, Procs: p, Ctx: cfg.Ctx, Shards: cfg.Shards}, func(proc *nx.Proc) {
		n := cfg.N
		rank := proc.Rank()
		r0, rows := rowsFor(n, p, rank)
		world := proc.World()
		up, down := rank-1, rank+1
		rowBytes := 8 * n

		// exchange fills the halo rows of buf (layout: halo, rows, halo)
		exchange := func(buf []float64) {
			if up >= 0 {
				if cfg.Phantom {
					proc.SendPhantom(up, tagUp, rowBytes)
				} else {
					proc.SendFloats(up, tagUp, buf[n:2*n])
				}
			}
			if down < p {
				if cfg.Phantom {
					proc.SendPhantom(down, tagDown, rowBytes)
				} else {
					proc.SendFloats(down, tagDown, buf[rows*n:(rows+1)*n])
				}
			}
			if down < p {
				m := proc.Recv(down, tagUp)
				if !cfg.Phantom {
					copy(buf[(rows+1)*n:(rows+2)*n], m.Floats)
				}
			}
			if up >= 0 {
				m := proc.Recv(up, tagDown)
				if !cfg.Phantom {
					copy(buf[0:n], m.Floats)
				}
			}
		}
		// allreduceSum reduces one scalar with the charged vector cost.
		allreduceSum := func(v float64) float64 {
			if cfg.Phantom {
				world.ReducePhantom(0, 8)
				world.BcastPhantom(0, 8)
				return 0
			}
			return world.AllreduceFloats([]float64{v}, nx.SumOp)[0]
		}

		cells := rows * n
		var x, r, ap []float64
		pbuf := make([]float64, (rows+2)*n) // p with halos
		if !cfg.Phantom {
			x = make([]float64, cells)
			ap = make([]float64, cells)
			// b = A*ones restricted to my rows
			ones := make([]float64, (rows+2)*n)
			for i := range ones {
				ones[i] = 1
			}
			if r0 == 0 {
				for j := 0; j < n; j++ {
					ones[j] = 0 // exterior boundary above the first row
				}
			}
			if r0+rows == n {
				for j := 0; j < n; j++ {
					ones[(rows+1)*n+j] = 0
				}
			}
			b := make([]float64, cells)
			matvec5(n, r0, r0+rows, ones, b)
			r = b
			copy(pbuf[n:(rows+1)*n], r)
		}
		proc.Compute(machine.OpVector, flopsPerCell*float64(cells)) // initial b/r setup
		rr := allreduceSum(dotLocal(r))

		iters := 0
		for ; iters < cfg.MaxIters; iters++ {
			if !cfg.Phantom && math.Sqrt(rr) < cfg.Tol {
				break
			}
			exchange(pbuf)
			proc.Compute(machine.OpVector, flopsPerCell*float64(cells))
			if !cfg.Phantom {
				matvec5(n, r0, r0+rows, pbuf, ap)
			}
			var pap float64
			if !cfg.Phantom {
				pap = dot(pbuf[n:(rows+1)*n], ap)
			}
			proc.Compute(machine.OpVector, 2*float64(cells))
			pap = allreduceSum(pap)

			var alpha float64
			if !cfg.Phantom {
				alpha = rr / pap
				for i := 0; i < cells; i++ {
					x[i] += alpha * pbuf[n+i]
					r[i] -= alpha * ap[i]
				}
			}
			proc.Compute(machine.OpVector, 4*float64(cells))

			var rrLocal float64
			if !cfg.Phantom {
				rrLocal = dotLocal(r)
			}
			proc.Compute(machine.OpVector, 2*float64(cells))
			rrNew := allreduceSum(rrLocal)

			if !cfg.Phantom {
				beta := rrNew / rr
				for i := 0; i < cells; i++ {
					pbuf[n+i] = r[i] + beta*pbuf[n+i]
				}
				rr = rrNew
			}
			proc.Compute(machine.OpVector, 2*float64(cells))
		}
		times[rank] = proc.Now()

		if cfg.Phantom {
			if rank == 0 {
				outIters = iters
			}
			return
		}
		// gather the solution
		if rank != 0 {
			proc.SendFloats(0, tagGather, x)
			return
		}
		outX = make([]float64, n*n)
		copy(outX[r0*n:], x)
		for pr := 1; pr < p; pr++ {
			rs, _ := rowsFor(n, p, pr)
			copy(outX[rs*n:], proc.RecvFloats(pr, tagGather))
		}
		outRes = math.Sqrt(rr)
		outIters = iters
	})
	if err != nil {
		return nil, err
	}
	out := &Outcome{X: outX, Residual: outRes, Iters: outIters, Result: res}
	for _, t := range times {
		if t > out.Time {
			out.Time = t
		}
	}
	return out, nil
}

func dotLocal(r []float64) float64 {
	if r == nil {
		return 0
	}
	return dot(r, r)
}
