package cg

import (
	"context"

	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/report"
)

// The Poisson conjugate-gradient solver as a registry workload: the
// latency-bound sparse counterpoint to LINPACK.
func init() {
	harness.MustRegister(harness.Spec{
		WorkloadID: "app/poisson-cg",
		Desc:       "Conjugate-gradient Poisson solver on the Delta model",
		Space: []harness.Param{
			{Name: "n", Default: "512", Doc: "grid side (n*n unknowns)"},
			{Name: "iters", Default: "50", Doc: "CG iterations (phantom mode)"},
			{Name: "procs", Default: "64", Doc: "row-decomposed processes"},
		},
		RunFunc: runWorkload,
	})
}

func runWorkload(ctx context.Context, p harness.Params) (harness.Result, error) {
	if err := ctx.Err(); err != nil {
		return harness.Result{}, err
	}
	defN, defIters := 512, 50
	if p.Quick {
		defN, defIters = 128, 10
	}
	n, err := p.Int("n", defN)
	if err != nil {
		return harness.Result{}, err
	}
	iters, err := p.Int("iters", defIters)
	if err != nil {
		return harness.Result{}, err
	}
	procs, err := p.Int("procs", 64)
	if err != nil {
		return harness.Result{}, err
	}
	out, err := SolveDistributed(Config{
		N: n, MaxIters: iters, Procs: procs, Model: machine.Delta(), Phantom: true, Ctx: ctx,
	})
	if err != nil {
		return harness.Result{}, err
	}
	t := report.NewTable(report.Cellf("Poisson CG, %dx%d grid on %d processes", n, n, procs),
		"Quantity", "Value")
	t.AddRow("Unknowns", report.Cellf("%d", n*n))
	t.AddRow("Iterations", report.Cellf("%d", iters))
	t.AddRow("Processes", report.Cellf("%d", procs))
	t.AddRow("Simulated time", report.Cellf("%.4f s", out.Time))
	res := harness.Result{
		Title: "Conjugate-gradient Poisson solver",
		Text:  t.Render(),
	}
	res.AddMetric("simulated-s", out.Time, "s")
	res.AddMetric("iters", float64(iters), "")
	return res, nil
}
