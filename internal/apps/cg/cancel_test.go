package cg

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/machine"
)

// TestSolveDistributedCtxCancelStopsSolve: a cancelled Config.Ctx abandons the
// phantom simulation mid-flight instead of running to completion.
func TestSolveDistributedCtxCancelStopsSolve(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := SolveDistributed(Config{N: 2048, MaxIters: 100000, Procs: 512, Model: machine.Delta(), Phantom: true, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v, want prompt teardown", elapsed)
	}
}
