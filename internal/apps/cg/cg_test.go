package cg

import (
	"math"
	"testing"

	"repro/internal/machine"
)

func model(cols int) machine.Model {
	m := machine.Delta()
	m.Rows, m.Cols = 1, cols
	return m
}

func TestSerialConvergesToOnes(t *testing.T) {
	x, res, iters := SolveSerial(16, 500, 1e-8)
	if res >= 1e-8 {
		t.Fatalf("did not converge: residual %g after %d iters", res, iters)
	}
	for i, v := range x {
		if math.Abs(v-1) > 1e-6 {
			t.Fatalf("x[%d] = %g, want 1", i, v)
		}
	}
	// CG on an n^2-unknown SPD system converges in at most n^2 iterations;
	// for the Poisson problem it needs O(n) — check it was fast.
	if iters > 100 {
		t.Fatalf("took %d iterations on a 16x16 Poisson problem", iters)
	}
}

func TestSerialResidualDecreases(t *testing.T) {
	_, res50, _ := SolveSerial(24, 10, 0)
	_, res100, _ := SolveSerial(24, 40, 0)
	if res100 >= res50 {
		t.Fatalf("residual did not decrease: %g after 10, %g after 40", res50, res100)
	}
}

func TestMatvecKnownValues(t *testing.T) {
	// 2x2 grid, v = ones: each cell has 2 interior neighbours, so
	// A*1 = 4 - 2 = 2 everywhere.
	out := applyFull(2, []float64{1, 1, 1, 1})
	for i, v := range out {
		if v != 2 {
			t.Fatalf("applyFull[%d] = %g, want 2", i, v)
		}
	}
}

func TestDistributedMatchesSerial(t *testing.T) {
	n := 20
	want, wantRes, wantIters := SolveSerial(n, 300, 1e-9)
	for _, p := range []int{1, 2, 3, 5} {
		out, err := SolveDistributed(Config{
			N: n, MaxIters: 300, Tol: 1e-9, Procs: p, Model: model(8),
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if out.Residual >= 1e-8 {
			t.Fatalf("p=%d: residual %g", p, out.Residual)
		}
		if d := out.Iters - wantIters; d < -2 || d > 2 {
			t.Fatalf("p=%d: %d iters, serial took %d", p, out.Iters, wantIters)
		}
		for i := range want {
			if math.Abs(out.X[i]-want[i]) > 1e-6 {
				t.Fatalf("p=%d: x[%d] = %g vs serial %g", p, i, out.X[i], want[i])
			}
		}
		_ = wantRes
	}
}

func TestDistributedValidation(t *testing.T) {
	m := model(4)
	cases := []Config{
		{N: 1, MaxIters: 10, Procs: 1, Model: m},
		{N: 8, MaxIters: 0, Procs: 1, Model: m},
		{N: 2, MaxIters: 10, Procs: 4, Model: m},
		{N: 8, MaxIters: 10, Procs: 99, Model: m},
	}
	for i, cfg := range cases {
		if _, err := SolveDistributed(cfg); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestPhantomRunsFixedIterations(t *testing.T) {
	out, err := SolveDistributed(Config{
		N: 64, MaxIters: 25, Procs: 4, Model: model(4), Phantom: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Iters != 25 {
		t.Fatalf("phantom ran %d iters, want 25", out.Iters)
	}
	if out.X != nil {
		t.Fatal("phantom should not gather a solution")
	}
	if out.Time <= 0 {
		t.Fatal("no virtual time charged")
	}
}

func TestCGScalesWorseThanItsComputeBound(t *testing.T) {
	// The known CG pathology the simulator must reproduce: two allreduces
	// per iteration put a latency floor under each step, so strong
	// scaling at fixed N falls well short of linear.
	n := 512
	t1, err := SolveDistributed(Config{N: n, MaxIters: 20, Procs: 1, Model: model(64), Phantom: true})
	if err != nil {
		t.Fatal(err)
	}
	t64, err := SolveDistributed(Config{N: n, MaxIters: 20, Procs: 64, Model: model(64), Phantom: true})
	if err != nil {
		t.Fatal(err)
	}
	speedup := t1.Time / t64.Time
	if speedup >= 50 {
		t.Fatalf("CG speedup %g too close to linear; allreduce latency missing", speedup)
	}
	if speedup < 4 {
		t.Fatalf("CG speedup %g implausibly poor", speedup)
	}
}
