package ep

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

func model(cols int) machine.Model {
	m := machine.Delta()
	m.Rows, m.Cols = 1, cols
	return m
}

func TestLCGInUnitInterval(t *testing.T) {
	g := lcg{x: defaultSeed}
	for i := 0; i < 1000; i++ {
		v := g.next()
		if v <= 0 || v >= 1 {
			t.Fatalf("deviate %g outside (0,1)", v)
		}
	}
}

func TestSkipToMatchesSequentialProperty(t *testing.T) {
	// Property: skipping to position k equals stepping k times.
	f := func(kRaw uint16) bool {
		k := uint64(kRaw) % 500
		seq := lcg{x: defaultSeed}
		for i := uint64(0); i < k; i++ {
			seq.next()
		}
		jmp := skipTo(defaultSeed, k)
		return seq.x == jmp.x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSerialStatistics(t *testing.T) {
	// Polar method accepts pi/4 of candidates; Gaussian sums are near 0.
	n := uint64(200000)
	r := Serial(n)
	accept := r.Pairs / float64(n)
	if math.Abs(accept-math.Pi/4) > 0.01 {
		t.Fatalf("acceptance rate %g, want ~%g", accept, math.Pi/4)
	}
	if math.Abs(r.SumX)/r.Pairs > 0.02 || math.Abs(r.SumY)/r.Pairs > 0.02 {
		t.Fatalf("Gaussian sums biased: %g %g over %g pairs", r.SumX, r.SumY, r.Pairs)
	}
	// nearly all deviates fall in the first few annuli
	if r.Counts[0] <= r.Counts[3] {
		t.Fatal("annulus counts should decay")
	}
	total := 0.0
	for _, c := range r.Counts {
		total += c
	}
	if total != r.Pairs {
		t.Fatalf("counts sum %g != pairs %g", total, r.Pairs)
	}
}

func TestDistributedMatchesSerialExactly(t *testing.T) {
	// Skip-ahead partitioning makes the distributed tallies bitwise equal
	// to the serial ones for any process count.
	n := uint64(50000)
	want := Serial(n)
	for _, p := range []int{1, 2, 3, 7, 8} {
		out, err := Distributed(Config{N: n, Procs: p, Model: model(8)})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		got := out.Result
		if got.Pairs != want.Pairs {
			t.Fatalf("p=%d: pairs %g vs %g", p, got.Pairs, want.Pairs)
		}
		for i := range want.Counts {
			if got.Counts[i] != want.Counts[i] {
				t.Fatalf("p=%d: bin %d: %g vs %g", p, i, got.Counts[i], want.Counts[i])
			}
		}
		// sums combine in tree order: tolerate roundoff only
		if math.Abs(got.SumX-want.SumX) > 1e-9 || math.Abs(got.SumY-want.SumY) > 1e-9 {
			t.Fatalf("p=%d: sums differ beyond roundoff", p)
		}
	}
}

func TestDistributedValidation(t *testing.T) {
	if _, err := Distributed(Config{N: 0, Procs: 2, Model: model(4)}); err == nil {
		t.Fatal("N=0 should fail")
	}
	if _, err := Distributed(Config{N: 100, Procs: 99, Model: model(4)}); err == nil {
		t.Fatal("too many procs should fail")
	}
}

func TestNearPerfectScaling(t *testing.T) {
	// EP's one-allreduce communication makes speedup near linear — the
	// property that made it the NPB baseline.
	n := uint64(10_000_000)
	t1, err := Distributed(Config{N: n, Procs: 1, Model: model(64), Phantom: true})
	if err != nil {
		t.Fatal(err)
	}
	t64, err := Distributed(Config{N: n, Procs: 64, Model: model(64), Phantom: true})
	if err != nil {
		t.Fatal(err)
	}
	speedup := t1.Time / t64.Time
	if speedup < 60 {
		t.Fatalf("EP speedup on 64 procs = %g, want > 60", speedup)
	}
}

func TestPhantomNoResult(t *testing.T) {
	out, err := Distributed(Config{N: 1000, Procs: 4, Model: model(4), Phantom: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Result != nil {
		t.Fatal("phantom mode should not tally")
	}
	if out.Time <= 0 {
		t.Fatal("no virtual time charged")
	}
}
