// Package ep implements the "embarrassingly parallel" kernel of the 1992
// NAS Parallel Benchmarks — NASA's own yardstick for the HPCC testbeds the
// paper describes. Each process generates batches of pseudo-random numbers
// with the NPB linear congruential generator, forms Gaussian deviates by
// the Marsaglia polar method, and tallies them into ten annular bins; a
// final reduction combines the counts. The only communication is the final
// allreduce, which is why EP bounds the achievable speedup of a machine.
package ep

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/machine"
	"repro/internal/nx"
)

// NPB linear congruential generator constants: x' = a*x mod 2^46.
const (
	lcgA        = 1220703125 // 5^13
	lcgMod      = 1 << 46
	defaultSeed = 271828183
)

// lcg holds the generator state.
type lcg struct{ x uint64 }

// next returns a uniform deviate in (0, 1).
func (g *lcg) next() float64 {
	g.x = (g.x * lcgA) % lcgMod
	return float64(g.x) / float64(lcgMod)
}

// skipTo positions the generator at the k-th element of the stream by
// computing a^k mod 2^46 with binary exponentiation — the trick that makes
// EP perfectly partitionable with no communication.
func skipTo(seed uint64, k uint64) lcg {
	a := uint64(lcgA)
	x := seed
	for ; k > 0; k >>= 1 {
		if k&1 == 1 {
			x = (x * a) % lcgMod
		}
		a = (a * a) % lcgMod
	}
	return lcg{x: x}
}

// Result holds the EP tallies: Gaussian-pair counts per annulus plus the
// sums of the deviates, which the NPB verification compares.
type Result struct {
	Counts [10]float64
	SumX   float64
	SumY   float64
	Pairs  float64
}

// merge adds other's tallies into r.
func (r *Result) merge(o *Result) {
	for i := range r.Counts {
		r.Counts[i] += o.Counts[i]
	}
	r.SumX += o.SumX
	r.SumY += o.SumY
	r.Pairs += o.Pairs
}

// generate tallies pairs [lo, hi) of the stream.
func generate(seed uint64, lo, hi uint64) *Result {
	g := skipTo(seed, 2*lo)
	var res Result
	for k := lo; k < hi; k++ {
		u1 := 2*g.next() - 1
		u2 := 2*g.next() - 1
		t := u1*u1 + u2*u2
		if t > 1 || t == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(t) / t)
		x, y := u1*f, u2*f
		res.SumX += x
		res.SumY += y
		res.Pairs++
		m := math.Max(math.Abs(x), math.Abs(y))
		bin := int(m)
		if bin > 9 {
			bin = 9
		}
		res.Counts[bin]++
	}
	return &res
}

// Serial runs EP over n pairs in one process.
func Serial(n uint64) *Result {
	return generate(defaultSeed, 0, n)
}

// flopsPerPair is the operation count charged per candidate pair (two LCG
// steps, the polar test, and the occasional transform).
const flopsPerPair = 18

// Config describes a distributed run.
type Config struct {
	N       uint64 // number of candidate pairs
	Procs   int
	Model   machine.Model
	Phantom bool
	// Ctx, if non-nil, cancels the run: the simulation tears down at the
	// next collective boundary and the run returns Ctx.Err() instead of
	// an outcome. A nil Ctx preserves run-to-completion behavior.
	Ctx context.Context
	// Shards partitions the simulation's collective engine across host
	// cores (nx.Config.Shards); 0 uses the process-wide -sim-shards
	// default. Results are bit-identical for every value.
	Shards int
}

// Outcome reports a distributed run.
type Outcome struct {
	Result *Result // nil in phantom mode
	Time   float64
	Run    *nx.Result
}

// Distributed runs EP across procs processes: each generates its contiguous
// share of the stream (positioned by LCG skip-ahead) and a tree allreduce
// combines the 13 tallies.
func Distributed(cfg Config) (*Outcome, error) {
	if cfg.N == 0 {
		return nil, errors.New("ep: N must be positive")
	}
	p := cfg.Procs
	if p == 0 {
		p = cfg.Model.Nodes()
	}
	if p < 1 || p > cfg.Model.Nodes() {
		return nil, fmt.Errorf("ep: Procs=%d invalid for %d-node model", p, cfg.Model.Nodes())
	}

	var final *Result
	times := make([]float64, p)
	res, err := nx.Run(nx.Config{Model: cfg.Model, Procs: p, Ctx: cfg.Ctx, Shards: cfg.Shards}, func(proc *nx.Proc) {
		rank := uint64(proc.Rank())
		per := cfg.N / uint64(p)
		lo := rank * per
		hi := lo + per
		if rank == uint64(p-1) {
			hi = cfg.N
		}
		proc.Compute(machine.OpScalar, flopsPerPair*float64(hi-lo))

		g := proc.World()
		if cfg.Phantom {
			// same communication as the real reduction: 13 float64s
			g.ReducePhantom(0, 13*8)
			g.BcastPhantom(0, 13*8)
		} else {
			local := generate(defaultSeed, lo, hi)
			packed := make([]float64, 13)
			copy(packed, local.Counts[:])
			packed[10], packed[11], packed[12] = local.SumX, local.SumY, local.Pairs
			out := g.AllreduceFloats(packed, nx.SumOp)
			if proc.Rank() == 0 {
				r := &Result{SumX: out[10], SumY: out[11], Pairs: out[12]}
				copy(r.Counts[:], out[:10])
				final = r
			}
		}
		times[proc.Rank()] = proc.Now()
	})
	if err != nil {
		return nil, err
	}
	out := &Outcome{Result: final, Run: res}
	for _, t := range times {
		if t > out.Time {
			out.Time = t
		}
	}
	return out, nil
}
