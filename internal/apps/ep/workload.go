package ep

import (
	"context"

	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/report"
)

// The NAS EP kernel as a registry workload: the speedup-bounding
// embarrassingly-parallel benchmark of the 1992 NPB suite.
func init() {
	harness.MustRegister(harness.Spec{
		WorkloadID: "app/nas-ep",
		Desc:       "NAS embarrassingly-parallel kernel on the Delta model",
		Space: []harness.Param{
			{Name: "n", Default: "50000000", Doc: "candidate pairs"},
			{Name: "procs", Default: "64", Doc: "processes"},
		},
		RunFunc: runWorkload,
	})
}

func runWorkload(ctx context.Context, p harness.Params) (harness.Result, error) {
	if err := ctx.Err(); err != nil {
		return harness.Result{}, err
	}
	defN := 50_000_000
	if p.Quick {
		defN = 1_000_000
	}
	n, err := p.Int("n", defN)
	if err != nil {
		return harness.Result{}, err
	}
	procs, err := p.Int("procs", 64)
	if err != nil {
		return harness.Result{}, err
	}
	out, err := Distributed(Config{
		N: uint64(n), Procs: procs, Model: machine.Delta(), Phantom: true, Ctx: ctx,
	})
	if err != nil {
		return harness.Result{}, err
	}
	t := report.NewTable(report.Cellf("NAS EP, %d pairs on %d processes", n, procs),
		"Quantity", "Value")
	t.AddRow("Pairs", report.Cellf("%d", n))
	t.AddRow("Processes", report.Cellf("%d", procs))
	t.AddRow("Simulated time", report.Cellf("%.4f s", out.Time))
	res := harness.Result{
		Title: "NAS embarrassingly-parallel kernel",
		Text:  t.Render(),
	}
	res.AddMetric("simulated-s", out.Time, "s")
	res.AddMetric("pairs", float64(n), "")
	return res, nil
}
