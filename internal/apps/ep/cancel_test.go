package ep

import (
	"context"
	"errors"
	"testing"

	"repro/internal/machine"
)

// TestDistributedCtxCancelled: the phantom EP run is a single collective,
// so the cancellation check at entry is the observable path — a done Ctx
// must surface as context.Canceled, not as a result.
func TestDistributedCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Distributed(Config{N: 1 << 20, Procs: 512, Model: machine.Delta(), Phantom: true, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
