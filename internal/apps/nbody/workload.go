package nbody

import (
	"context"

	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/report"
)

// The ring-pipeline N-body force kernel as a registry workload.
func init() {
	harness.MustRegister(harness.Spec{
		WorkloadID: "app/nbody-ring",
		Desc:       "N-body all-pairs forces via ring pipeline on the Delta model",
		Space: []harness.Param{
			{Name: "n", Default: "4096", Doc: "number of bodies"},
			{Name: "procs", Default: "64", Doc: "ring processes"},
		},
		RunFunc: runWorkload,
	})
}

func runWorkload(ctx context.Context, p harness.Params) (harness.Result, error) {
	if err := ctx.Err(); err != nil {
		return harness.Result{}, err
	}
	defN := 4096
	if p.Quick {
		defN = 512
	}
	n, err := p.Int("n", defN)
	if err != nil {
		return harness.Result{}, err
	}
	procs, err := p.Int("procs", 64)
	if err != nil {
		return harness.Result{}, err
	}
	seed := p.Seed
	if seed == 0 {
		seed = 1992
	}
	out, err := RingForces(Config{
		N: n, Procs: procs, Seed: seed, Model: machine.Delta(), Phantom: true, Ctx: ctx,
	})
	if err != nil {
		return harness.Result{}, err
	}
	t := report.NewTable(report.Cellf("N-body ring, %d bodies on %d processes", n, procs),
		"Quantity", "Value")
	t.AddRow("Bodies", report.Cellf("%d", n))
	t.AddRow("Processes", report.Cellf("%d", procs))
	t.AddRow("Simulated time", report.Cellf("%.4f s", out.Time))
	res := harness.Result{
		Title: "N-body ring pipeline",
		Text:  t.Render(),
	}
	res.AddMetric("simulated-s", out.Time, "s")
	res.AddMetric("bodies", float64(n), "")
	return res, nil
}
