// Package nbody implements the space-sciences Grand-Challenge workload: a
// direct-summation gravitational N-body kernel with Plummer softening,
// distributed with the classic ring pipeline (each process's particle block
// circulates around a ring of processes, accumulating partial forces). A
// serial reference validates the distributed forces.
package nbody

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/machine"
	"repro/internal/nx"
)

// Softening is the Plummer softening length used in the force law.
const Softening = 1e-2

// G is the gravitational constant in simulation units.
const G = 1.0

// System is a set of particles in structure-of-arrays layout.
type System struct {
	X, Y, Z    []float64
	VX, VY, VZ []float64
	M          []float64
}

// N returns the particle count.
func (s *System) N() int { return len(s.M) }

// Random returns n particles with positions uniform in the unit cube,
// masses uniform in [0.5, 1.5) and zero velocities, deterministic in seed.
func Random(n int, seed int64) *System {
	rng := rand.New(rand.NewSource(seed))
	s := &System{
		X: make([]float64, n), Y: make([]float64, n), Z: make([]float64, n),
		VX: make([]float64, n), VY: make([]float64, n), VZ: make([]float64, n),
		M: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		s.X[i], s.Y[i], s.Z[i] = rng.Float64(), rng.Float64(), rng.Float64()
		s.M[i] = 0.5 + rng.Float64()
	}
	return s
}

// accumulate adds to (fx,fy,fz)[i] the force exerted on target particle i
// (at xi,yi,zi with mass mi) by source particle j of the source system.
func accumulate(xi, yi, zi, mi float64, src *System, j int) (dfx, dfy, dfz float64) {
	dx := src.X[j] - xi
	dy := src.Y[j] - yi
	dz := src.Z[j] - zi
	r2 := dx*dx + dy*dy + dz*dz + Softening*Softening
	inv := 1 / (r2 * math.Sqrt(r2))
	f := G * mi * src.M[j] * inv
	return f * dx, f * dy, f * dz
}

// Forces computes all-pairs forces serially.
func Forces(s *System) (fx, fy, fz []float64) {
	n := s.N()
	fx = make([]float64, n)
	fy = make([]float64, n)
	fz = make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dfx, dfy, dfz := accumulate(s.X[i], s.Y[i], s.Z[i], s.M[i], s, j)
			fx[i] += dfx
			fy[i] += dfy
			fz[i] += dfz
		}
	}
	return
}

// Step advances the system with a kick-drift Euler step using the given
// precomputed forces.
func (s *System) Step(fx, fy, fz []float64, dt float64) {
	for i := 0; i < s.N(); i++ {
		s.VX[i] += dt * fx[i] / s.M[i]
		s.VY[i] += dt * fy[i] / s.M[i]
		s.VZ[i] += dt * fz[i] / s.M[i]
		s.X[i] += dt * s.VX[i]
		s.Y[i] += dt * s.VY[i]
		s.Z[i] += dt * s.VZ[i]
	}
}

// InteractionFlops is the operation count charged per pairwise interaction
// (distances, softened inverse-cube, three force components).
const InteractionFlops = 20

// Config describes a distributed force computation.
type Config struct {
	N       int
	Procs   int
	Seed    int64
	Model   machine.Model
	Phantom bool
	// Ctx, if non-nil, cancels the run: the simulation tears down at the
	// next collective boundary and the run returns Ctx.Err() instead of
	// an outcome. A nil Ctx preserves run-to-completion behavior.
	Ctx context.Context
	// Shards partitions the simulation's collective engine across host
	// cores (nx.Config.Shards); 0 uses the process-wide -sim-shards
	// default. Results are bit-identical for every value.
	Shards int
}

// Outcome reports a distributed run.
type Outcome struct {
	FX, FY, FZ []float64 // gathered forces (nil in phantom mode)
	Time       float64
	Result     *nx.Result
}

const (
	tagRing   nx.Tag = 30
	tagGather nx.Tag = 31
)

func chunk(n, p, rank int) (start, count int) {
	base, extra := n/p, n%p
	count = base
	if rank < extra {
		count++
		start = rank * count
	} else {
		start = extra*(base+1) + (rank-extra)*base
	}
	return
}

// RingForces computes all-pairs forces with the ring pipeline and gathers
// them to rank 0 in real mode.
func RingForces(cfg Config) (*Outcome, error) {
	if cfg.N < 1 {
		return nil, errors.New("nbody: N must be >= 1")
	}
	p := cfg.Procs
	if p == 0 {
		p = cfg.Model.Nodes()
	}
	if p < 1 || p > cfg.Model.Nodes() {
		return nil, fmt.Errorf("nbody: Procs=%d invalid for %d-node model", p, cfg.Model.Nodes())
	}
	if p > cfg.N {
		return nil, fmt.Errorf("nbody: more processes (%d) than particles (%d)", p, cfg.N)
	}

	var outFX, outFY, outFZ []float64
	times := make([]float64, p)
	res, err := nx.Run(nx.Config{Model: cfg.Model, Procs: p, Ctx: cfg.Ctx, Shards: cfg.Shards}, func(proc *nx.Proc) {
		rank := proc.Rank()
		start, count := chunk(cfg.N, p, rank)
		next := (rank + 1) % p
		prev := (rank + p - 1) % p

		var full *System
		var mine, travel *System
		if !cfg.Phantom {
			full = Random(cfg.N, cfg.Seed)
			mine = slice(full, start, count)
			travel = slice(full, start, count)
		}
		fx := make([]float64, count)
		fy := make([]float64, count)
		fz := make([]float64, count)

		travelCount := count
		travelOwner := rank
		for step := 0; step < p; step++ {
			// interactions between my block and the travelling block
			proc.Compute(machine.OpScalar, InteractionFlops*float64(count)*float64(travelCount))
			if !cfg.Phantom {
				for i := 0; i < count; i++ {
					for j := 0; j < travel.N(); j++ {
						if travelOwner == rank && j == i {
							continue // self-interaction
						}
						dfx, dfy, dfz := accumulate(mine.X[i], mine.Y[i], mine.Z[i], mine.M[i], travel, j)
						fx[i] += dfx
						fy[i] += dfy
						fz[i] += dfz
					}
				}
			}
			if step == p-1 {
				break // last block processed; no need to forward
			}
			// pass the travelling block around the ring
			blockBytes := 8 * 4 * travelCount // x, y, z, m
			if cfg.Phantom {
				proc.SendPhantom(next, tagRing, blockBytes)
				proc.Recv(prev, tagRing)
				// ownership moves backwards around the ring
				travelOwner = (travelOwner + p - 1) % p
				_, travelCount = chunk(cfg.N, p, travelOwner)
			} else {
				proc.SendFloats(next, tagRing, pack(travel))
				in := proc.RecvFloats(prev, tagRing)
				travel = unpack(in)
				travelOwner = (travelOwner + p - 1) % p
				travelCount = travel.N()
			}
		}
		times[rank] = proc.Now()

		if cfg.Phantom {
			return
		}
		if rank != 0 {
			proc.SendFloats(0, tagGather, fx)
			proc.SendFloats(0, tagGather, fy)
			proc.SendFloats(0, tagGather, fz)
			return
		}
		outFX = make([]float64, cfg.N)
		outFY = make([]float64, cfg.N)
		outFZ = make([]float64, cfg.N)
		copy(outFX, fx)
		copy(outFY, fy)
		copy(outFZ, fz)
		for r := 1; r < p; r++ {
			rs, _ := chunk(cfg.N, p, r)
			copy(outFX[rs:], proc.RecvFloats(r, tagGather))
			copy(outFY[rs:], proc.RecvFloats(r, tagGather))
			copy(outFZ[rs:], proc.RecvFloats(r, tagGather))
		}
	})
	if err != nil {
		return nil, err
	}
	out := &Outcome{FX: outFX, FY: outFY, FZ: outFZ, Result: res}
	for _, t := range times {
		if t > out.Time {
			out.Time = t
		}
	}
	return out, nil
}

func slice(s *System, start, count int) *System {
	return &System{
		X: append([]float64(nil), s.X[start:start+count]...),
		Y: append([]float64(nil), s.Y[start:start+count]...),
		Z: append([]float64(nil), s.Z[start:start+count]...),
		M: append([]float64(nil), s.M[start:start+count]...),
	}
}

func pack(s *System) []float64 {
	n := s.N()
	out := make([]float64, 0, 4*n)
	out = append(out, s.X...)
	out = append(out, s.Y...)
	out = append(out, s.Z...)
	out = append(out, s.M...)
	return out
}

func unpack(in []float64) *System {
	n := len(in) / 4
	return &System{X: in[:n], Y: in[n : 2*n], Z: in[2*n : 3*n], M: in[3*n : 4*n]}
}
