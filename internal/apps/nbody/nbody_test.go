package nbody

import (
	"math"
	"testing"

	"repro/internal/machine"
)

func model(cols int) machine.Model {
	m := machine.Delta()
	m.Rows, m.Cols = 1, cols
	return m
}

func TestRandomDeterministic(t *testing.T) {
	a, b := Random(50, 3), Random(50, 3)
	for i := 0; i < 50; i++ {
		if a.X[i] != b.X[i] || a.M[i] != b.M[i] {
			t.Fatal("Random not deterministic")
		}
	}
	c := Random(50, 4)
	if a.X[0] == c.X[0] && a.X[1] == c.X[1] {
		t.Fatal("different seeds gave identical positions")
	}
}

func TestTwoBodySymmetry(t *testing.T) {
	// Newton's third law: forces on a pair are equal and opposite.
	s := &System{
		X: []float64{0, 1}, Y: []float64{0, 0}, Z: []float64{0, 0},
		VX: make([]float64, 2), VY: make([]float64, 2), VZ: make([]float64, 2),
		M: []float64{2, 3},
	}
	fx, fy, fz := Forces(s)
	if math.Abs(fx[0]+fx[1]) > 1e-15 || math.Abs(fy[0]+fy[1]) > 1e-15 || math.Abs(fz[0]+fz[1]) > 1e-15 {
		t.Fatalf("forces not antisymmetric: %v %v", fx, fy)
	}
	// particle 0 is pulled toward +x
	if fx[0] <= 0 {
		t.Fatalf("fx[0] = %g, want positive", fx[0])
	}
	// magnitude ~ G m1 m2 / (r^2 + eps^2)^{3/2} * r
	r2 := 1 + Softening*Softening
	want := G * 2 * 3 / (r2 * math.Sqrt(r2))
	if math.Abs(fx[0]-want) > 1e-12 {
		t.Fatalf("fx[0] = %g, want %g", fx[0], want)
	}
}

func TestMomentumConservedBySerialForces(t *testing.T) {
	s := Random(60, 7)
	fx, fy, fz := Forces(s)
	var sx, sy, sz float64
	for i := range fx {
		sx += fx[i]
		sy += fy[i]
		sz += fz[i]
	}
	if math.Abs(sx) > 1e-9 || math.Abs(sy) > 1e-9 || math.Abs(sz) > 1e-9 {
		t.Fatalf("net force not ~0: (%g, %g, %g)", sx, sy, sz)
	}
}

func TestStepMovesParticles(t *testing.T) {
	s := Random(10, 1)
	x0 := append([]float64(nil), s.X...)
	fx, fy, fz := Forces(s)
	s.Step(fx, fy, fz, 0.01)
	moved := false
	for i := range s.X {
		if s.X[i] != x0[i] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("Step did not move any particle")
	}
}

func TestRingMatchesSerial(t *testing.T) {
	n, seed := 64, int64(5)
	s := Random(n, seed)
	wfx, wfy, wfz := Forces(s)
	for _, p := range []int{1, 2, 3, 5, 8} {
		out, err := RingForces(Config{N: n, Procs: p, Seed: seed, Model: model(8)})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for i := 0; i < n; i++ {
			scale := math.Abs(wfx[i]) + math.Abs(wfy[i]) + math.Abs(wfz[i]) + 1
			if math.Abs(out.FX[i]-wfx[i]) > 1e-10*scale ||
				math.Abs(out.FY[i]-wfy[i]) > 1e-10*scale ||
				math.Abs(out.FZ[i]-wfz[i]) > 1e-10*scale {
				t.Fatalf("p=%d: force on particle %d differs: (%g) vs (%g)",
					p, i, out.FX[i], wfx[i])
			}
		}
	}
}

func TestRingRaggedChunks(t *testing.T) {
	// 13 particles over 4 procs: chunks 4,3,3,3
	out, err := RingForces(Config{N: 13, Procs: 4, Seed: 2, Model: model(4)})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.FX) != 13 {
		t.Fatalf("got %d forces", len(out.FX))
	}
}

func TestRingValidation(t *testing.T) {
	m := model(4)
	for i, cfg := range []Config{
		{N: 0, Procs: 2, Model: m},
		{N: 2, Procs: 4, Model: m},  // more procs than particles
		{N: 8, Procs: 99, Model: m}, // more procs than nodes
	} {
		if _, err := RingForces(cfg); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestPhantomFlopAccounting(t *testing.T) {
	n := 128
	out, err := RingForces(Config{N: n, Procs: 4, Seed: 1, Model: model(4), Phantom: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.FX != nil {
		t.Fatal("phantom should not return forces")
	}
	// total interactions = n*n minus self within own chunk ~ n^2
	want := float64(InteractionFlops) * float64(n) * float64(n)
	got := out.Result.TotalFlops
	if got < 0.95*want || got > 1.05*want {
		t.Fatalf("flops %g, want ~%g", got, want)
	}
}

func TestChunkPartition(t *testing.T) {
	total := 0
	prevEnd := 0
	for r := 0; r < 5; r++ {
		s, c := chunk(23, 5, r)
		if s != prevEnd {
			t.Fatalf("chunk %d starts at %d, want %d", r, s, prevEnd)
		}
		prevEnd = s + c
		total += c
	}
	if total != 23 {
		t.Fatalf("chunks sum to %d", total)
	}
}
