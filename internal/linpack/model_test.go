package linpack

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestPredictPositiveAndMonotoneInN(t *testing.T) {
	base := Config{NB: 16, GridRows: 2, GridCols: 4, Model: testModel(2, 4)}
	prev := 0.0
	for _, n := range []int{64, 128, 256, 512, 1024} {
		cfg := base
		cfg.N = n
		got := Predict(cfg)
		if got <= prev {
			t.Fatalf("Predict not increasing in N: N=%d gives %g (prev %g)", n, got, prev)
		}
		prev = got
	}
}

func TestPredictAgreesWithSimulator(t *testing.T) {
	// Independent cross-check: the closed-form model and the event-level
	// simulator must agree within a modest band across configurations.
	cfgs := []Config{
		{N: 256, NB: 16, GridRows: 2, GridCols: 2, Model: testModel(2, 2)},
		{N: 512, NB: 16, GridRows: 2, GridCols: 4, Model: testModel(2, 4)},
		{N: 512, NB: 32, GridRows: 4, GridCols: 4, Model: testModel(4, 4)},
		{N: 1024, NB: 16, GridRows: 4, GridCols: 4, Model: testModel(4, 4)},
	}
	for _, cfg := range cfgs {
		cfg.Phantom = true
		out, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pred := Predict(cfg)
		rel := stats.RelErr(out.FactTime, pred)
		if rel > 0.35 {
			t.Errorf("N=%d NB=%d %dx%d: sim %.3fs vs model %.3fs (rel err %.2f)",
				cfg.N, cfg.NB, cfg.GridRows, cfg.GridCols, out.FactTime, pred, rel)
		}
	}
}

func TestPredictGFlopsConsistent(t *testing.T) {
	cfg := Config{N: 512, NB: 16, GridRows: 2, GridCols: 2, Model: testModel(2, 2)}
	tm := Predict(cfg)
	gf := PredictGFlops(cfg)
	if tm <= 0 || gf <= 0 {
		t.Fatalf("model produced non-positive values: t=%g gf=%g", tm, gf)
	}
}

func TestSweepProducesPointsAndTable(t *testing.T) {
	cfgs := []Config{
		{N: 64, NB: 8, GridRows: 1, GridCols: 2, Model: testModel(1, 2)},
		{N: 128, NB: 8, GridRows: 1, GridCols: 2, Model: testModel(1, 2)},
	}
	pts, err := Sweep(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[1].Outcome.FactTime <= pts[0].Outcome.FactTime {
		t.Fatal("larger N should take longer")
	}
	tbl := Table("LINPACK sweep", pts)
	out := tbl.Render()
	if !strings.Contains(out, "GFLOPS") || !strings.Contains(out, "128") {
		t.Fatalf("table missing content:\n%s", out)
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	_, err := Sweep([]Config{{N: -1, NB: 8, GridRows: 1, GridCols: 1, Model: testModel(1, 1)}})
	if err == nil {
		t.Fatal("sweep should propagate config errors")
	}
}
