package linpack

import (
	"fmt"

	"repro/internal/report"
)

// Point is one row of a parameter sweep: the simulated outcome plus the
// analytic prediction for the same configuration.
type Point struct {
	Config    Config
	Outcome   *Outcome
	Predicted float64 // analytic model time, seconds
}

// Sweep runs the simulator (phantom mode) for every configuration and pairs
// each outcome with the analytic prediction.
func Sweep(cfgs []Config) ([]Point, error) {
	out := make([]Point, 0, len(cfgs))
	for _, cfg := range cfgs {
		cfg.Phantom = true
		o, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("linpack sweep N=%d NB=%d grid %dx%d: %w",
				cfg.N, cfg.NB, cfg.GridRows, cfg.GridCols, err)
		}
		out = append(out, Point{Config: cfg, Outcome: o, Predicted: Predict(cfg)})
	}
	return out, nil
}

// Table renders sweep points in the layout of a LINPACK report: one row per
// configuration with simulated and modelled rates.
func Table(title string, points []Point) *report.Table {
	t := report.NewTable(title,
		"N", "NB", "Grid", "Time(s)", "GFLOPS", "Eff", "Model GFLOPS")
	for _, p := range points {
		t.AddRow(
			report.Cellf("%d", p.Config.N),
			report.Cellf("%d", p.Config.NB),
			report.Cellf("%dx%d", p.Config.GridRows, p.Config.GridCols),
			report.Cellf("%.1f", p.Outcome.FactTime),
			report.Cellf("%.2f", p.Outcome.GFlops),
			report.Cellf("%.3f", p.Outcome.Efficiency),
			report.Cellf("%.2f", PredictGFlops(p.Config)),
		)
	}
	return t
}
