package linpack

import (
	"testing"

	"repro/internal/machine"
)

// BenchmarkPhantomFactorization measures the host cost of simulating a
// mid-size phantom LU on a 64-node grid.
func BenchmarkPhantomFactorization(b *testing.B) {
	cfg := Config{
		N: 2048, NB: 16, GridRows: 8, GridCols: 8,
		Model: machine.SubMesh(machine.Delta(), 8, 8), Phantom: true, Seed: 1,
	}
	var gflops float64
	for i := 0; i < b.N; i++ {
		out, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		gflops = out.GFlops
	}
	b.ReportMetric(gflops, "simulated-GFLOPS")
}

// BenchmarkRealFactorization measures a real-numerics distributed solve
// with verification at N=256.
func BenchmarkRealFactorization(b *testing.B) {
	cfg := Config{
		N: 256, NB: 16, GridRows: 2, GridCols: 2,
		Model: machine.SubMesh(machine.Delta(), 2, 2), Seed: 1,
	}
	for i := 0; i < b.N; i++ {
		out, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if out.Residual > 10 {
			b.Fatalf("residual %g", out.Residual)
		}
	}
}

// BenchmarkAnalyticModel measures the closed-form predictor (it walks the
// panel steps, so it is O(N/NB)).
func BenchmarkAnalyticModel(b *testing.B) {
	cfg := Config{
		N: 25000, NB: 16, GridRows: 16, GridCols: 33,
		Model: machine.Delta(), Phantom: true,
	}
	var p float64
	for i := 0; i < b.N; i++ {
		p = Predict(cfg)
	}
	b.ReportMetric(p, "predicted-s")
}
