package linpack

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/machine"
)

// TestRunCtxCancelStopsSimulation: a cancelled Config.Ctx abandons the
// phantom factorization mid-flight instead of simulating to completion.
func TestRunCtxCancelStopsSimulation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Run(Config{
		N: 8192, NB: 16, GridRows: 16, GridCols: 33,
		Model: machine.Delta(), Phantom: true, Seed: 1,
		Ctx: ctx,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v, want prompt teardown", elapsed)
	}
}

// TestWorkloadCtxCancelled: the registry workload threads the sweep
// engine's per-job context into the simulator.
func TestWorkloadCtxCancelled(t *testing.T) {
	w, err := harness.Lookup("linpack/delta")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	_, err = w.Run(ctx, harness.Params{Values: map[string]string{"n": "8192"}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("workload err = %v, want context.Canceled", err)
	}
}

// TestWorkloadVersionDeclared: the LINPACK workloads declare a kernel
// version, so the result cache can invalidate them on kernel changes.
func TestWorkloadVersionDeclared(t *testing.T) {
	for _, id := range []string{"linpack/delta", "linpack/sweep-n", "linpack/sweep-nb", "linpack/sweep-grid", "linpack/generations"} {
		w, err := harness.Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		if harness.VersionOf(w) == "" {
			t.Fatalf("%s declares no kernel version", id)
		}
	}
}
