package linpack

import (
	"testing"

	"repro/internal/machine"
)

// DeltaHeadline is the paper's benchmark configuration: LINPACK of order
// 25,000 on the 528-node Touchstone Delta, 16x33 process grid.
func DeltaHeadline() Config {
	return Config{
		N: 25000, NB: 16,
		GridRows: 16, GridCols: 33,
		Model:   machine.Delta(),
		Phantom: true,
		Seed:    1992,
	}
}

func TestE4DeltaLinpackReproducesPaper(t *testing.T) {
	// Paper (T4-4): "13 GFLOPS SPEED OBTAINED ON A LINPAC BENCHMARK CODE
	// OF ORDER 25,000 BY 25,000" on the 528-processor, 32-GFLOPS-peak
	// Delta. The reproduction claim is the shape: ~40% of peak at this
	// size. We accept [11.5, 14.5] GFLOPS.
	if testing.Short() {
		t.Skip("Delta-scale run skipped in -short mode")
	}
	out, err := Run(DeltaHeadline())
	if err != nil {
		t.Fatal(err)
	}
	if out.GFlops < 11.5 || out.GFlops > 14.5 {
		t.Fatalf("Delta LINPACK = %.2f GFLOPS, want ~13 (paper)", out.GFlops)
	}
	if out.Efficiency < 0.36 || out.Efficiency > 0.46 {
		t.Fatalf("efficiency %.3f outside the ~0.41 band the paper implies", out.Efficiency)
	}
	// The analytic model must tell the same story.
	pred := PredictGFlops(DeltaHeadline())
	if pred < 10 || pred > 17 {
		t.Fatalf("analytic model predicts %.2f GFLOPS; disagrees with simulator", pred)
	}
}

func TestE3DeltaPeakMatchesPaper(t *testing.T) {
	d := machine.Delta()
	if d.Nodes() != 528 {
		t.Fatalf("Delta nodes = %d", d.Nodes())
	}
	peak := d.PeakGFlops()
	if peak < 31.5 || peak > 32.5 {
		t.Fatalf("peak %.2f GFLOPS, want 32 (paper T4-4)", peak)
	}
}
