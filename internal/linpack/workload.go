package linpack

import (
	"context"
	"fmt"

	"repro/internal/harness"
	"repro/internal/machine"
)

// kernelVersion is the LINPACK workloads' cache version (see
// harness.Versioned): phantom-mode results are pure functions of
// (workload ID, params, this string), so the result cache serves repeat
// runs from disk. Bump it whenever the factorization, the machine models
// it runs on, or the rendered table change output for a fixed Params.
const kernelVersion = "lu-1"

// The LINPACK simulator as registry workloads: the paper's headline Delta
// run plus the classic parameter sweeps, all phantom-mode and
// deterministic for a fixed seed.
func init() {
	harness.MustRegister(harness.Spec{
		WorkloadID: "linpack/delta",
		Version:    kernelVersion,
		Desc:       "LINPACK on the Touchstone Delta model (paper: 13 GFLOPS at N=25000)",
		Space: []harness.Param{
			{Name: "n", Default: "25000", Doc: "matrix order"},
			{Name: "nb", Default: "16", Doc: "block size"},
			{Name: "pr", Default: "16", Doc: "process grid rows"},
			{Name: "pc", Default: "33", Doc: "process grid columns"},
		},
		RunFunc: runDeltaWorkload,
		// Pin the headline metrics' good directions explicitly instead of
		// leaning on the delta reporter's name/unit heuristic: the
		// flagship benchmark should never silently flip direction if the
		// heuristic's word lists change.
		MetricDirs: map[string]string{
			"gflops":       harness.DirHigher,
			"efficiency":   harness.DirHigher,
			"simulated-s":  harness.DirLower,
			"model-gflops": harness.DirHigher,
		},
	})
	harness.MustRegister(harness.Spec{
		WorkloadID: "linpack/sweep-n",
		Version:    kernelVersion,
		Desc:       "LINPACK GFLOPS vs matrix order on the Delta model",
		Space: []harness.Param{
			{Name: "nb", Default: "16", Doc: "block size"},
		},
		RunFunc: sweepWorkload("LINPACK GFLOPS vs matrix order (Delta model)",
			func(p harness.Params, base Config) ([]Config, error) {
				orders := []int{2000, 5000, 10000, 15000, 20000, 25000}
				if p.Quick {
					orders = []int{1000, 2000, 4000}
				}
				cfgs := make([]Config, len(orders))
				for i, n := range orders {
					cfgs[i] = base
					cfgs[i].N = n
				}
				return cfgs, nil
			}),
	})
	harness.MustRegister(harness.Spec{
		WorkloadID: "linpack/sweep-nb",
		Version:    kernelVersion,
		Desc:       "LINPACK GFLOPS vs block size on the Delta model",
		Space: []harness.Param{
			{Name: "n", Default: "8192", Doc: "matrix order"},
		},
		RunFunc: sweepWorkload("LINPACK GFLOPS vs block size (Delta model)",
			func(p harness.Params, base Config) ([]Config, error) {
				n, err := sweepOrder(p)
				if err != nil {
					return nil, err
				}
				base.N = n
				blocks := []int{4, 8, 16, 32, 64}
				cfgs := make([]Config, len(blocks))
				for i, nb := range blocks {
					cfgs[i] = base
					cfgs[i].NB = nb
				}
				return cfgs, nil
			}),
	})
	harness.MustRegister(harness.Spec{
		WorkloadID: "linpack/sweep-grid",
		Version:    kernelVersion,
		Desc:       "LINPACK GFLOPS vs process grid shape on the Delta model",
		Space: []harness.Param{
			{Name: "n", Default: "8192", Doc: "matrix order"},
		},
		RunFunc: sweepWorkload("LINPACK GFLOPS vs process grid shape (Delta model)",
			func(p harness.Params, base Config) ([]Config, error) {
				n, err := sweepOrder(p)
				if err != nil {
					return nil, err
				}
				base.N = n
				grids := [][2]int{{1, 528}, {2, 264}, {4, 132}, {8, 66}, {16, 33}, {22, 24}}
				cfgs := make([]Config, len(grids))
				for i, g := range grids {
					cfgs[i] = base
					cfgs[i].GridRows, cfgs[i].GridCols = g[0], g[1]
				}
				return cfgs, nil
			}),
	})
	harness.MustRegister(harness.Spec{
		WorkloadID: "linpack/generations",
		Version:    kernelVersion,
		Desc:       "LINPACK across the DARPA machine series (iPSC/860, Delta, Paragon)",
		Space: []harness.Param{
			{Name: "n", Default: "8192", Doc: "matrix order"},
			{Name: "nb", Default: "16", Doc: "block size"},
		},
		RunFunc: runGenerationsWorkload,
	})
}

// sweepOrder is the matrix order for the fixed-N sweeps (sweep-nb,
// sweep-grid): the user's n override, else 8192 (2048 quick).
func sweepOrder(p harness.Params) (int, error) {
	def := 8192
	if p.Quick {
		def = 2048
	}
	return p.Int("n", def)
}

func workloadSeed(p harness.Params) int64 {
	if p.Seed != 0 {
		return p.Seed
	}
	return 1992
}

func baseConfig(p harness.Params) (Config, error) {
	defN := 25000
	defPR, defPC := 16, 33
	if p.Quick {
		defN, defPR, defPC = 2048, 4, 8
	}
	n, err := p.Int("n", defN)
	if err != nil {
		return Config{}, err
	}
	nb, err := p.Int("nb", 16)
	if err != nil {
		return Config{}, err
	}
	pr, err := p.Int("pr", defPR)
	if err != nil {
		return Config{}, err
	}
	pc, err := p.Int("pc", defPC)
	if err != nil {
		return Config{}, err
	}
	return Config{
		N: n, NB: nb, GridRows: pr, GridCols: pc,
		Model: machine.Delta(), Phantom: true, Seed: workloadSeed(p),
	}, nil
}

func runDeltaWorkload(ctx context.Context, p harness.Params) (harness.Result, error) {
	if err := ctx.Err(); err != nil {
		return harness.Result{}, err
	}
	cfg, err := baseConfig(p)
	if err != nil {
		return harness.Result{}, err
	}
	cfg.Ctx = ctx
	out, err := Run(cfg)
	if err != nil {
		return harness.Result{}, err
	}
	res := harness.Result{
		Title: "LINPACK on the Touchstone Delta model",
		Paper: "13 GFLOPS on a LINPACK code of order 25,000 by 25,000",
		Text:  Table("LINPACK", []Point{{Config: cfg, Outcome: out}}).Render(),
	}
	res.AddMetric("gflops", out.GFlops, "GFLOPS")
	res.AddMetric("efficiency", out.Efficiency, "")
	res.AddMetric("simulated-s", out.FactTime, "s")
	res.AddMetric("model-gflops", PredictGFlops(cfg), "GFLOPS")
	return res, nil
}

// sweepWorkload adapts a config expansion into a workload RunFunc: expand,
// sweep, render the standard table, and attach the best rate as a metric.
func sweepWorkload(title string, expand func(p harness.Params, base Config) ([]Config, error)) func(context.Context, harness.Params) (harness.Result, error) {
	return func(ctx context.Context, p harness.Params) (harness.Result, error) {
		base, err := baseConfig(p)
		if err != nil {
			return harness.Result{}, err
		}
		base.Ctx = ctx
		cfgs, err := expand(p, base)
		if err != nil {
			return harness.Result{}, err
		}
		pts := make([]Point, 0, len(cfgs))
		for _, cfg := range cfgs {
			if err := ctx.Err(); err != nil {
				return harness.Result{}, err
			}
			sub, err := Sweep([]Config{cfg})
			if err != nil {
				return harness.Result{}, err
			}
			pts = append(pts, sub...)
		}
		res := harness.Result{Title: title, Text: Table(title, pts).Render()}
		best := 0.0
		for _, pt := range pts {
			if pt.Outcome.GFlops > best {
				best = pt.Outcome.GFlops
			}
		}
		res.AddMetric("best-gflops", best, "GFLOPS")
		res.AddMetric("points", float64(len(pts)), "")
		return res, nil
	}
}

func runGenerationsWorkload(ctx context.Context, p harness.Params) (harness.Result, error) {
	if err := ctx.Err(); err != nil {
		return harness.Result{}, err
	}
	defN := 8192
	if p.Quick {
		defN = 2048
	}
	n, err := p.Int("n", defN)
	if err != nil {
		return harness.Result{}, err
	}
	nb, err := p.Int("nb", 16)
	if err != nil {
		return harness.Result{}, err
	}
	pts, err := GenerationSweepContext(ctx, n, nb, workloadSeed(p))
	if err != nil {
		return harness.Result{}, err
	}
	title := fmt.Sprintf("LINPACK N=%d across the DARPA machine series", n)
	res := harness.Result{Title: title, Text: Table(title, pts).Render()}
	for _, pt := range pts {
		res.AddMetric(pt.Config.Model.Name, pt.Outcome.GFlops, "GFLOPS")
	}
	return res, nil
}
