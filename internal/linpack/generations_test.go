package linpack

import "testing"

func TestGenerationSweepMonotone(t *testing.T) {
	// The paper frames the Delta as one of a series of DARPA machines;
	// each generation must beat its predecessor on the same problem.
	if testing.Short() {
		t.Skip("generation sweep skipped in -short mode")
	}
	pts, err := GenerationSweep(8192, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d generations, want 3", len(pts))
	}
	names := []string{"Intel iPSC/860", "Intel Touchstone Delta", "Intel Paragon XP/S"}
	for i, p := range pts {
		if p.Config.Model.Name != names[i] {
			t.Fatalf("generation %d is %q, want %q", i, p.Config.Model.Name, names[i])
		}
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Outcome.GFlops <= pts[i-1].Outcome.GFlops {
			t.Fatalf("%s (%.2f GFLOPS) should beat %s (%.2f GFLOPS)",
				names[i], pts[i].Outcome.GFlops, names[i-1], pts[i-1].Outcome.GFlops)
		}
	}
	// the Delta should multiply the iPSC/860's rate severalfold
	if ratio := pts[1].Outcome.GFlops / pts[0].Outcome.GFlops; ratio < 2 {
		t.Fatalf("Delta/iPSC ratio %.2f, want > 2", ratio)
	}
}
