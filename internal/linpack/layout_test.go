package linpack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNumLocalSumsToN(t *testing.T) {
	for _, c := range []struct{ n, nb, p int }{
		{100, 8, 4}, {25000, 16, 16}, {25000, 16, 33}, {7, 3, 2}, {5, 10, 3}, {0, 4, 2},
	} {
		sum := 0
		for me := 0; me < c.p; me++ {
			sum += NumLocal(c.n, c.nb, c.p, me)
		}
		if sum != c.n {
			t.Errorf("n=%d nb=%d p=%d: locals sum to %d", c.n, c.nb, c.p, sum)
		}
	}
}

func TestRoundTripGlobalLocal(t *testing.T) {
	n, nb, p := 100, 7, 4
	for g := 0; g < n; g++ {
		me := Owner(g, nb, p)
		l := GlobalToLocal(g, nb, p)
		if back := LocalToGlobal(l, nb, p, me); back != g {
			t.Fatalf("g=%d: owner=%d local=%d back=%d", g, me, l, back)
		}
		if l >= NumLocal(n, nb, p, me) {
			t.Fatalf("g=%d: local index %d >= local count %d", g, l, NumLocal(n, nb, p, me))
		}
	}
}

func TestOwnershipCyclesByBlock(t *testing.T) {
	nb, p := 4, 3
	// global blocks: [0..3]->0, [4..7]->1, [8..11]->2, [12..15]->0, ...
	if Owner(0, nb, p) != 0 || Owner(3, nb, p) != 0 {
		t.Fatal("block 0 should belong to proc 0")
	}
	if Owner(4, nb, p) != 1 || Owner(11, nb, p) != 2 || Owner(12, nb, p) != 0 {
		t.Fatal("block cycling wrong")
	}
}

func TestFirstLocalAtLeast(t *testing.T) {
	n, nb, p := 64, 4, 3
	for me := 0; me < p; me++ {
		mloc := NumLocal(n, nb, p, me)
		for g0 := 0; g0 <= n; g0++ {
			got := FirstLocalAtLeast(g0, nb, p, me)
			// brute force: smallest local l with LocalToGlobal >= g0
			want := mloc
			for l := 0; l < mloc; l++ {
				if LocalToGlobal(l, nb, p, me) >= g0 {
					want = l
					break
				}
			}
			if got != want {
				t.Fatalf("me=%d g0=%d: FirstLocalAtLeast=%d want %d", me, g0, got, want)
			}
		}
	}
}

func TestLayoutPropertiesRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		nb := 1 + rng.Intn(16)
		p := 1 + rng.Intn(8)
		// every global index owned exactly once and locals are dense
		counts := make([]int, p)
		for g := 0; g < n; g++ {
			me := Owner(g, nb, p)
			l := GlobalToLocal(g, nb, p)
			if LocalToGlobal(l, nb, p, me) != g {
				return false
			}
			counts[me]++
		}
		for me := 0; me < p; me++ {
			if counts[me] != NumLocal(n, nb, p, me) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalIndicesAreContiguousPerProc(t *testing.T) {
	// locals must enumerate 0,1,2,... in increasing global order
	n, nb, p := 97, 5, 4
	for me := 0; me < p; me++ {
		next := 0
		for g := 0; g < n; g++ {
			if Owner(g, nb, p) != me {
				continue
			}
			if l := GlobalToLocal(g, nb, p); l != next {
				t.Fatalf("me=%d g=%d: local %d, want %d", me, g, l, next)
			}
			next++
		}
	}
}
