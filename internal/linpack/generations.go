package linpack

import (
	"context"

	"repro/internal/machine"
)

// GenerationSweep runs the same LINPACK problem (phantom mode) on each
// generation of the DARPA massively parallel series the paper situates the
// Delta in — iPSC/860, Touchstone Delta, Paragon XP/S — each machine at
// full size with its most natural process grid. It quantifies the paper's
// framing of the Delta as one step in a rapidly improving line.
func GenerationSweep(n, nb int, seed int64) ([]Point, error) {
	return GenerationSweepContext(context.Background(), n, nb, seed)
}

// GenerationSweepContext is GenerationSweep with cancellation: a done ctx
// stops the current simulation at its next collective boundary.
func GenerationSweepContext(ctx context.Context, n, nb int, seed int64) ([]Point, error) {
	models := []machine.Model{machine.IPSC860(), machine.Delta(), machine.Paragon()}
	cfgs := make([]Config, 0, len(models))
	for _, m := range models {
		cfgs = append(cfgs, Config{
			N: n, NB: nb,
			GridRows: m.Rows, GridCols: m.Cols,
			Model: m, Phantom: true, Seed: seed,
			Ctx: ctx,
		})
	}
	return Sweep(cfgs)
}
