package linpack

import "math"

// Predict returns the analytically modelled factorization time (virtual
// seconds) for cfg, without running the simulator. It walks the same panel
// steps as the distributed algorithm and charges closed-form costs for each
// phase, serializing phases exactly as the right-looking implementation
// does. It exists as an independent cross-check on the simulator: the two
// must agree in trend and within a modest relative band (see tests), which
// guards against accounting bugs in either.
func Predict(cfg Config) float64 {
	n, nb := cfg.N, cfg.NB
	pr := float64(cfg.GridRows)
	pc := float64(cfg.GridCols)
	m := cfg.Model

	// effective one-way message time for b bytes at the average mesh
	// distance (one third of the mesh diameter is a standard approximation
	// for uniformly placed partners)
	avgHops := float64(m.Rows+m.Cols) / 3
	msg := func(bytes float64) float64 {
		return m.Net.SendOverhead + m.Net.Latency + avgHops*m.Net.PerHop +
			bytes*m.Net.ByteTime + m.Net.RecvOverhead
	}
	l2 := func(p float64) float64 {
		if p <= 1 {
			return 0
		}
		return math.Ceil(math.Log2(p))
	}
	rGemm := m.Compute.GemmMFlops * 1e6
	rPanel := m.Compute.PanelMFlops * 1e6
	rVec := m.Compute.VectorMFlops * 1e6

	total := 0.0
	nsteps := (n + nb - 1) / nb
	for k := 0; k < nsteps; k++ {
		j0 := k * nb
		kb := nb
		if j0+kb > n {
			kb = n - j0
		}
		mAll := float64(n - j0)    // trailing rows including the panel
		mT := float64(n - j0 - kb) // trailing rows/cols after the panel
		if mT < 0 {
			mT = 0
		}

		// --- panel factorization (on one process column) ---
		panel := 0.0
		for jj := 0; jj < kb; jj++ {
			rows := (mAll - float64(jj)) / pr
			rem := float64(kb - jj - 1)
			panel += rows / rVec                    // local max search
			panel += 2 * l2(pr) * msg(16)           // maxloc allreduce
			panel += msg(8 * float64(kb))           // pivot row swap
			panel += l2(pr) * msg(8*float64(kb-jj)) // pivot row broadcast
			panel += rows / rVec                    // scale
			panel += 2 * rows * rem / rPanel        // rank-1 update
		}

		// --- panel broadcast along rows ---
		panelBytes := 8 * (float64(kb) + mAll/pr*float64(kb))
		bcastPanel := l2(pc) * msg(panelBytes)

		// --- trailing row swaps (kb pairwise exchanges per column) ---
		width := (float64(n) - float64(kb)) / pc
		swaps := float64(kb) * msg(8*width)

		// --- triangular solve of the U12 block row ---
		trsm := float64(kb) * float64(kb) * (mT / pc) / rGemm

		// --- U12 broadcast down columns ---
		bcastU := l2(pr) * msg(8*float64(kb)*mT/pc)

		// --- trailing matrix update ---
		gemm := 2 * (mT / pr) * (mT / pc) * float64(kb) / rGemm

		total += panel + bcastPanel + swaps + trsm + bcastU + gemm
	}
	// solve phase
	total += 2 * float64(n) * float64(n) / (pr * pc * rVec)
	return total
}

// PredictGFlops returns the modelled benchmark rate for cfg.
func PredictGFlops(cfg Config) float64 {
	t := Predict(cfg)
	if t <= 0 {
		return 0
	}
	fn := float64(cfg.N)
	return (2*fn*fn*fn/3 + 2*fn*fn) / t / 1e9
}
