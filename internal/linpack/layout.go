// Package linpack implements the paper's headline experiment: the LINPACK
// benchmark (distributed dense LU factorization with partial pivoting) on a
// 2D block-cyclic process grid, executed on the nx virtual-time runtime.
//
// It reproduces the Touchstone Delta result the paper reports — "13 GFLOPS
// speed obtained on a LINPACK benchmark code of order 25,000 by 25,000" —
// in phantom mode (flop- and byte-accurate cost accounting without real
// numerics), and validates numerics in real mode at small orders against
// the serial reference in package blas.
package linpack

// This file provides ScaLAPACK-style block-cyclic index arithmetic. Global
// index g is distributed over p processes in blocks of nb: global block
// b = g/nb lives on process b mod p at local block b/p.

// NumLocal returns the number of global indices from a dimension of size n,
// distributed block-cyclically with block size nb over p processes, that
// process me owns (ScaLAPACK NUMROC).
func NumLocal(n, nb, p, me int) int {
	nblocks := n / nb
	q, r := nblocks/p, nblocks%p
	loc := q * nb
	switch {
	case me < r:
		loc += nb
	case me == r:
		loc += n % nb
	}
	return loc
}

// Owner returns the process that owns global index g.
func Owner(g, nb, p int) int {
	return (g / nb) % p
}

// GlobalToLocal returns the local index of global index g on its owner.
func GlobalToLocal(g, nb, p int) int {
	b := g / nb
	return (b/p)*nb + g%nb
}

// LocalToGlobal returns the global index of local index l on process me.
func LocalToGlobal(l, nb, p, me int) int {
	lb := l / nb
	return (lb*p+me)*nb + l%nb
}

// FirstLocalAtLeast returns the smallest local index on process me whose
// global index is >= g0. If me owns no such index the returned value equals
// the local dimension (i.e., it is one past the end).
func FirstLocalAtLeast(g0, nb, p, me int) int {
	b0 := g0 / nb
	full, rem := b0/p, b0%p
	cnt := full * nb
	if me < rem {
		cnt += nb
	}
	if Owner(g0, nb, p) == me {
		cnt += g0 % nb
	}
	return cnt
}
