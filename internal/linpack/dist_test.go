package linpack

import (
	"math"
	"testing"

	"repro/internal/blas"
	"repro/internal/machine"
)

// testModel returns a Delta-rate machine with an arbitrary small mesh.
func testModel(rows, cols int) machine.Model {
	m := machine.Delta()
	m.Rows, m.Cols = rows, cols
	return m
}

func TestRunValidation(t *testing.T) {
	m := testModel(2, 2)
	cases := []Config{
		{N: 0, NB: 4, GridRows: 2, GridCols: 2, Model: m},
		{N: 16, NB: 0, GridRows: 2, GridCols: 2, Model: m},
		{N: 16, NB: 4, GridRows: 0, GridCols: 2, Model: m},
		{N: 16, NB: 4, GridRows: 3, GridCols: 3, Model: m}, // 9 > 4 nodes
		{N: 5000, NB: 4, GridRows: 2, GridCols: 2, Model: m, Phantom: false},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestSingleProcessMatchesSerial(t *testing.T) {
	// 1x1 grid: the distributed code degenerates to serial blocked LU and
	// must produce the same factors and pivots.
	n, nb := 24, 4
	out, err := Run(Config{N: n, NB: nb, GridRows: 1, GridCols: 1, Model: testModel(1, 1), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if out.Residual > 10 {
		t.Fatalf("residual %g too large", out.Residual)
	}
	if out.FactTime <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestDistributedResidualAcrossGrids(t *testing.T) {
	n, nb := 48, 4
	for _, g := range [][2]int{{1, 1}, {1, 4}, {4, 1}, {2, 2}, {2, 3}, {3, 2}, {4, 4}} {
		out, err := Run(Config{
			N: n, NB: nb, GridRows: g[0], GridCols: g[1],
			Model: testModel(4, 4), Seed: 42,
		})
		if err != nil {
			t.Fatalf("grid %v: %v", g, err)
		}
		if math.IsNaN(out.Residual) || out.Residual > 10 {
			t.Fatalf("grid %v: residual %g", g, out.Residual)
		}
	}
}

func TestDistributedMatchesSerialFactors(t *testing.T) {
	// The distributed algorithm performs the same operations in the same
	// order as the serial blocked reference, so pivots must be identical
	// and factors equal to tight tolerance — on any grid shape.
	n, nb, seed := 32, 4, int64(7)

	serial := blas.NewRandom(n, seed)
	serialPiv := make([]int, n)
	if err := blas.Dgetrf(n, n, serial, n, nb, serialPiv); err != nil {
		t.Fatal(err)
	}

	for _, g := range [][2]int{{1, 1}, {2, 2}, {2, 3}, {4, 2}} {
		out, err := Run(Config{N: n, NB: nb, GridRows: g[0], GridCols: g[1],
			Model: testModel(4, 4), Seed: seed, KeepFactors: true})
		if err != nil {
			t.Fatalf("grid %v: %v", g, err)
		}
		for k := 0; k < n; k++ {
			if out.IPiv[k] != serialPiv[k] {
				t.Fatalf("grid %v: pivot %d = %d, serial %d", g, k, out.IPiv[k], serialPiv[k])
			}
		}
		if d := blas.MaxAbsDiff(out.LU, serial); d > 1e-11 {
			t.Fatalf("grid %v: factors differ from serial by %g", g, d)
		}
	}
}

func TestBlockSizesAllWork(t *testing.T) {
	n := 30
	for _, nb := range []int{1, 2, 3, 5, 8, 16, 30, 64} {
		out, err := Run(Config{N: n, NB: nb, GridRows: 2, GridCols: 2, Model: testModel(2, 2), Seed: 5})
		if err != nil {
			t.Fatalf("nb=%d: %v", nb, err)
		}
		if out.Residual > 10 {
			t.Fatalf("nb=%d: residual %g", nb, out.Residual)
		}
	}
}

func TestOddSizesAndGrids(t *testing.T) {
	// N not divisible by NB, prime N, ragged distributions
	for _, c := range []struct{ n, nb, gr, gc int }{
		{17, 4, 2, 3}, {23, 5, 3, 2}, {7, 8, 2, 2}, {1, 1, 1, 1}, {2, 1, 2, 2},
	} {
		out, err := Run(Config{N: c.n, NB: c.nb, GridRows: c.gr, GridCols: c.gc,
			Model: testModel(3, 3), Seed: 1})
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if out.Residual > 10 {
			t.Fatalf("%+v: residual %g", c, out.Residual)
		}
	}
}

func TestPhantomModeRunsAtScaleShape(t *testing.T) {
	// Phantom mode on a small grid: no data, sensible metrics.
	out, err := Run(Config{N: 256, NB: 16, GridRows: 2, GridCols: 4,
		Model: testModel(2, 4), Phantom: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(out.Residual) {
		t.Fatal("phantom mode should not produce a residual")
	}
	if out.GFlops <= 0 || out.FactTime <= 0 {
		t.Fatalf("phantom metrics: %+v", out)
	}
	if out.Efficiency <= 0 || out.Efficiency > 1 {
		t.Fatalf("efficiency %g out of (0,1]", out.Efficiency)
	}
}

func TestPhantomDeterministic(t *testing.T) {
	cfg := Config{N: 128, NB: 8, GridRows: 2, GridCols: 2,
		Model: testModel(2, 2), Phantom: true, Seed: 11}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FactTime != b.FactTime {
		t.Fatalf("phantom runs differ: %g vs %g", a.FactTime, b.FactTime)
	}
}

func TestPhantomVsRealVirtualTimeClose(t *testing.T) {
	// The phantom run models the same communication and compute pattern as
	// the real run; virtual times should agree within the slack introduced
	// by the different pivot patterns (phantom always swaps; real swaps
	// with high probability).
	n, nb := 96, 8
	real, err := Run(Config{N: n, NB: nb, GridRows: 2, GridCols: 2,
		Model: testModel(2, 2), Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	ph, err := Run(Config{N: n, NB: nb, GridRows: 2, GridCols: 2,
		Model: testModel(2, 2), Phantom: true, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	ratio := ph.FactTime / real.FactTime
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("phantom/real virtual time ratio %g outside [0.8, 1.25] (phantom %g, real %g)",
			ratio, ph.FactTime, real.FactTime)
	}
}

func TestFlopAccountingMatchesTheory(t *testing.T) {
	// Total charged flops should approach 2N^3/3 (plus lower-order terms).
	n := 192
	out, err := Run(Config{N: n, NB: 16, GridRows: 2, GridCols: 2,
		Model: testModel(2, 2), Phantom: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := blas.LUFlops(n)
	got := out.Result.TotalFlops
	if got < 0.9*want || got > 1.3*want {
		t.Fatalf("charged flops %g vs theoretical %g", got, want)
	}
}

func TestEfficiencyImprovesWithN(t *testing.T) {
	// The fundamental LINPACK scaling shape: efficiency rises with problem
	// size (surface-to-volume of communication shrinks).
	model := testModel(2, 4)
	var prev float64
	for _, n := range []int{64, 256, 1024} {
		out, err := Run(Config{N: n, NB: 16, GridRows: 2, GridCols: 4,
			Model: model, Phantom: true, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if out.Efficiency <= prev {
			t.Fatalf("efficiency not increasing: N=%d gives %g (prev %g)",
				n, out.Efficiency, prev)
		}
		prev = out.Efficiency
	}
}
