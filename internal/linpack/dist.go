package linpack

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/blas"
	"repro/internal/machine"
	"repro/internal/nx"
	"repro/internal/trace"
)

// Tags for pairwise exchanges; collectives manage their own tag space.
const (
	tagSwapPanel nx.Tag = 1
	tagSwapTrail nx.Tag = 2
	tagGather    nx.Tag = 3
)

// Config describes one LINPACK run.
type Config struct {
	N        int // matrix order
	NB       int // block size (also the distribution block)
	GridRows int // process grid rows (Pr)
	GridCols int // process grid columns (Pc)
	Model    machine.Model
	Phantom  bool  // cost-only mode: no real numerics, Delta-scale feasible
	Seed     int64 // matrix seed (real mode) / pivot-pattern seed (phantom)
	Trace    *trace.Recorder
	// KeepFactors saves the gathered LU factors and pivots in the Outcome
	// (real mode only); used by equivalence tests.
	KeepFactors bool
	// Ctx, if non-nil, cancels the run: the simulation tears down at the
	// next collective boundary and Run returns Ctx.Err(). The sweep
	// engine's per-job context arrives here through the registry
	// workloads, so a cancelled sweep stops simulating promptly.
	Ctx context.Context
	// Shards partitions the simulation's collective engine across host
	// cores (nx.Config.Shards); 0 uses the process-wide -sim-shards
	// default. Results are bit-identical for every value.
	Shards int
}

// Outcome reports a completed run.
type Outcome struct {
	N, NB              int
	GridRows, GridCols int
	FactTime           float64 // virtual seconds for factor+solve (excludes verification traffic)
	GFlops             float64 // LUFlops(N) / FactTime
	Efficiency         float64 // fraction of the P nodes' aggregate peak
	Residual           float64 // normalized residual (real mode); NaN in phantom mode
	Result             *nx.Result
	// LU and IPiv hold the gathered factorization when Config.KeepFactors
	// was set (real mode only).
	LU   []float64
	IPiv []int
}

// Run executes the distributed factorization described by cfg.
func Run(cfg Config) (*Outcome, error) {
	if cfg.N < 1 {
		return nil, errors.New("linpack: N must be >= 1")
	}
	if cfg.NB < 1 {
		return nil, errors.New("linpack: NB must be >= 1")
	}
	if cfg.GridRows < 1 || cfg.GridCols < 1 {
		return nil, errors.New("linpack: grid dims must be >= 1")
	}
	p := cfg.GridRows * cfg.GridCols
	if p > cfg.Model.Nodes() {
		return nil, fmt.Errorf("linpack: grid %dx%d needs %d nodes; model has %d",
			cfg.GridRows, cfg.GridCols, p, cfg.Model.Nodes())
	}
	if !cfg.Phantom && cfg.N > 4096 {
		return nil, fmt.Errorf("linpack: real-numerics mode capped at N=4096 (got %d); use Phantom", cfg.N)
	}

	factTimes := make([]float64, p)
	residual := math.NaN()
	var keptLU []float64
	var keptPiv []int

	res, err := nx.Run(nx.Config{Model: cfg.Model, Procs: p, Trace: cfg.Trace, Ctx: cfg.Ctx, Shards: cfg.Shards}, func(proc *nx.Proc) {
		w := newWorker(proc, cfg)
		w.factor()
		// synchronize and record the timed region before verification
		w.world.Barrier()
		factTimes[proc.Rank()] = proc.Now()
		if !cfg.Phantom {
			if r, lu, ok := w.verify(); ok {
				residual = r
				if cfg.KeepFactors {
					keptLU = lu
					keptPiv = append([]int(nil), w.ipiv...)
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}

	out := &Outcome{
		N: cfg.N, NB: cfg.NB,
		GridRows: cfg.GridRows, GridCols: cfg.GridCols,
		Residual: residual,
		Result:   res,
		LU:       keptLU,
		IPiv:     keptPiv,
	}
	for _, t := range factTimes {
		if t > out.FactTime {
			out.FactTime = t
		}
	}
	if out.FactTime > 0 {
		out.GFlops = blas.LUFlops(cfg.N) / out.FactTime / 1e9
	}
	peakG := float64(p) * cfg.Model.Compute.PeakMFlops / 1000
	if peakG > 0 {
		out.Efficiency = out.GFlops / peakG
	}
	return out, nil
}

// worker is the per-process state of the distributed factorization.
type worker struct {
	p      *nx.Proc
	cfg    Config
	n, nb  int
	pr, pc int       // my grid coordinates
	gr, gc int       // grid dims (Pr, Pc)
	mloc   int       // local rows
	nloc   int       // local cols
	a      []float64 // local matrix, column-major mloc x nloc (real mode)
	ipiv   []int     // global pivot rows, all steps
	world  *nx.Group
	rowG   *nx.Group // my grid row: ranks (pr*gc + c)
	colG   *nx.Group // my grid column: ranks (r*gc + pc)
}

func newWorker(p *nx.Proc, cfg Config) *worker {
	w := &worker{
		p: p, cfg: cfg,
		n: cfg.N, nb: cfg.NB,
		gr: cfg.GridRows, gc: cfg.GridCols,
	}
	w.pr, w.pc = p.Rank()/w.gc, p.Rank()%w.gc
	w.mloc = NumLocal(w.n, w.nb, w.gr, w.pr)
	w.nloc = NumLocal(w.n, w.nb, w.gc, w.pc)
	w.ipiv = make([]int, w.n)

	w.world = p.World()
	rowMembers := make([]int, w.gc)
	for c := 0; c < w.gc; c++ {
		rowMembers[c] = w.pr*w.gc + c
	}
	colMembers := make([]int, w.gr)
	for r := 0; r < w.gr; r++ {
		colMembers[r] = r*w.gc + w.pc
	}
	w.rowG = p.Group(rowMembers)
	w.colG = p.Group(colMembers)

	if !cfg.Phantom {
		// Every process generates the global matrix from the shared seed
		// and keeps its block-cyclic slice; this avoids a distribution
		// phase that the benchmark would not time anyway.
		global := blas.NewRandom(w.n, cfg.Seed)
		w.a = make([]float64, w.mloc*w.nloc)
		for lc := 0; lc < w.nloc; lc++ {
			gcol := LocalToGlobal(lc, w.nb, w.gc, w.pc)
			for lr := 0; lr < w.mloc; lr++ {
				grow := LocalToGlobal(lr, w.nb, w.gr, w.pr)
				w.a[lr+lc*w.mloc] = global[grow+gcol*w.n]
			}
		}
	}
	return w
}

func (w *worker) rank(pr, pc int) int { return pr*w.gc + pc }

// at returns a pointer into the local matrix at (localRow, localCol).
func (w *worker) at(lr, lc int) []float64 { return w.a[lr+lc*w.mloc:] }

// phantomPivot returns the deterministic pseudo-random pivot row for global
// column j in phantom mode; every process computes the same value.
func (w *worker) phantomPivot(j int) int {
	x := uint64(w.cfg.Seed) ^ (uint64(j)+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	span := w.n - j
	return j + int(x%uint64(span))
}

// pivotOp keeps the (|value|, row) pair with the larger magnitude, breaking
// ties toward the smaller global row (matching serial Idamax order).
func pivotOp(acc, in []float64) {
	if in[0] > acc[0] || (in[0] == acc[0] && in[1] < acc[1]) {
		acc[0], acc[1] = in[0], in[1]
	}
}

// factor runs the right-looking blocked factorization over all panels, then
// charges the (cheap) triangular-solve phase to complete the LINPACK count.
func (w *worker) factor() {
	nsteps := (w.n + w.nb - 1) / w.nb
	for k := 0; k < nsteps; k++ {
		j0 := k * w.nb
		kb := w.nb
		if j0+kb > w.n {
			kb = w.n - j0
		}
		colOwner := Owner(j0, w.nb, w.gc) // process column holding the panel
		rowOwner := Owner(j0, w.nb, w.gr) // process row holding the diagonal block

		if w.pc == colOwner {
			w.panelFactor(j0, kb)
		}
		panelBuf, ldp, liP0 := w.broadcastPanel(j0, kb, colOwner)
		w.applyTrailingSwaps(j0, kb, colOwner)
		u12, wT, lcT := w.trsmU12(j0, kb, rowOwner, panelBuf, ldp, liP0)
		w.update(j0, kb, panelBuf, ldp, liP0, u12, wT, lcT)
	}
	// Triangular solve phase: 2N^2 flops spread across the machine at
	// vector rate plus one synchronization; it is <0.1% of the total at
	// Delta scale but completes the standard LINPACK operation count.
	p := float64(w.gr * w.gc)
	w.p.Compute(machine.OpVector, 2*float64(w.n)*float64(w.n)/p)
	w.world.Barrier()
}

// panelFactor factors the kb-wide panel starting at global column j0; only
// the owning process column executes it.
func (w *worker) panelFactor(j0, kb int) {
	lj0 := GlobalToLocal(j0, w.nb, w.gc)
	for jj := 0; jj < kb; jj++ {
		j := j0 + jj

		// --- pivot search over global rows >= j in panel column jj ---
		liStart := FirstLocalAtLeast(j, w.nb, w.gr, w.pr)
		w.p.Compute(machine.OpVector, float64(w.mloc-liStart))
		var gRow int
		if w.cfg.Phantom {
			// same communication pattern as the real maxloc allreduce
			w.colG.AllreducePhantom(0, 16)
			gRow = w.phantomPivot(j)
		} else {
			best := []float64{-1, float64(w.n)} // (|v|, row); row sentinel past end
			col := w.at(0, lj0+jj)
			for li := liStart; li < w.mloc; li++ {
				if a := math.Abs(col[li]); a > best[0] {
					best[0], best[1] = a, float64(LocalToGlobal(li, w.nb, w.gr, w.pr))
				}
			}
			out := w.colG.AllreduceFloats(best, pivotOp)
			if out[0] <= 0 {
				panic(fmt.Sprintf("linpack: %v at global column %d", blas.ErrSingular, j))
			}
			gRow = int(out[1])
		}
		w.ipiv[j] = gRow

		// --- swap rows j <-> gRow across the full panel width ---
		if gRow != j {
			w.swapRows(j, gRow, lj0, kb, tagSwapPanel)
		}

		// --- broadcast the pivot row segment [j, j..j0+kb) down the column ---
		rowOwner := Owner(j, w.nb, w.gr)
		segW := kb - jj
		var urow []float64
		if w.cfg.Phantom {
			w.colG.BcastPhantom(rowOwner, 8*segW)
		} else {
			if w.pr == rowOwner {
				lr := GlobalToLocal(j, w.nb, w.gr)
				urow = make([]float64, segW)
				for c := 0; c < segW; c++ {
					urow[c] = w.a[lr+(lj0+jj+c)*w.mloc]
				}
			}
			urow = w.colG.BcastFloats(rowOwner, urow)
		}

		// --- scale the L column below j and rank-1 update the panel ---
		liBelow := FirstLocalAtLeast(j+1, w.nb, w.gr, w.pr)
		mBelow := w.mloc - liBelow
		w.p.Compute(machine.OpVector, float64(mBelow))
		w.p.Compute(machine.OpPanel, 2*float64(mBelow)*float64(kb-jj-1))
		if !w.cfg.Phantom && mBelow > 0 {
			col := w.at(0, lj0+jj)
			inv := 1 / urow[0]
			for li := liBelow; li < w.mloc; li++ {
				col[li] *= inv
			}
			if kb-jj-1 > 0 {
				blas.Dger(mBelow, kb-jj-1, -1,
					col[liBelow:], 1,
					urow[1:], 1,
					w.at(liBelow, lj0+jj+1), w.mloc)
			}
		}
	}
}

// swapRows exchanges the local pieces of global rows j and gRow over the kb
// local columns starting at local column lc0. Only processes in the grid
// rows owning j or gRow participate.
func (w *worker) swapRows(j, gRow, lc0, kb int, tag nx.Tag) {
	ownerJ := Owner(j, w.nb, w.gr)
	ownerG := Owner(gRow, w.nb, w.gr)
	if w.pr != ownerJ && w.pr != ownerG {
		return
	}
	if ownerJ == ownerG {
		// both rows live here: pure local swap
		w.p.Compute(machine.OpVector, float64(kb))
		if !w.cfg.Phantom {
			lrJ := GlobalToLocal(j, w.nb, w.gr)
			lrG := GlobalToLocal(gRow, w.nb, w.gr)
			blas.Dswap(kb, w.a[lrJ+lc0*w.mloc:], w.mloc, w.a[lrG+lc0*w.mloc:], w.mloc)
		}
		return
	}
	myRow, peerOwner := j, ownerG
	if w.pr == ownerG {
		myRow, peerOwner = gRow, ownerJ
	}
	peer := w.rank(peerOwner, w.pc)
	if w.cfg.Phantom {
		w.p.SendPhantom(peer, tag, 8*kb)
		w.p.Recv(peer, tag)
		return
	}
	lr := GlobalToLocal(myRow, w.nb, w.gr)
	mine := make([]float64, kb)
	for c := 0; c < kb; c++ {
		mine[c] = w.a[lr+(lc0+c)*w.mloc]
	}
	w.p.SendFloats(peer, tag, mine)
	theirs := w.p.RecvFloats(peer, tag)
	for c := 0; c < kb; c++ {
		w.a[lr+(lc0+c)*w.mloc] = theirs[c]
	}
}

// broadcastPanel distributes the factored panel (L columns plus the pivot
// indices) across each grid row. It returns the panel buffer covering local
// rows >= FirstLocalAtLeast(j0) with its leading dimension and row offset.
func (w *worker) broadcastPanel(j0, kb, colOwner int) (panel []float64, ldp, liP0 int) {
	liP0 = FirstLocalAtLeast(j0, w.nb, w.gr, w.pr)
	ldp = w.mloc - liP0
	if w.cfg.Phantom {
		w.rowG.BcastPhantom(colOwner, 8*(kb+ldp*kb))
		return nil, ldp, liP0
	}
	var packed []float64
	if w.pc == colOwner {
		lj0 := GlobalToLocal(j0, w.nb, w.gc)
		packed = make([]float64, kb+ldp*kb)
		for jj := 0; jj < kb; jj++ {
			packed[jj] = float64(w.ipiv[j0+jj])
			copy(packed[kb+jj*ldp:kb+(jj+1)*ldp], w.a[liP0+(lj0+jj)*w.mloc:liP0+(lj0+jj)*w.mloc+ldp])
		}
	}
	packed = w.rowG.BcastFloats(colOwner, packed)
	for jj := 0; jj < kb; jj++ {
		w.ipiv[j0+jj] = int(packed[jj])
	}
	return packed[kb:], ldp, liP0
}

// applyTrailingSwaps applies the panel's row interchanges to every local
// column outside the panel (the LAPACK DLASWP step, done with pairwise
// exchanges between the two owning grid rows in every process column).
func (w *worker) applyTrailingSwaps(j0, kb, colOwner int) {
	// columns to swap: all local columns except the kb panel columns
	var segs [][2]int // local column ranges [start, end)
	if w.pc == colOwner {
		lj0 := GlobalToLocal(j0, w.nb, w.gc)
		if lj0 > 0 {
			segs = append(segs, [2]int{0, lj0})
		}
		if lj0+kb < w.nloc {
			segs = append(segs, [2]int{lj0 + kb, w.nloc})
		}
	} else if w.nloc > 0 {
		segs = append(segs, [2]int{0, w.nloc})
	}
	width := 0
	for _, s := range segs {
		width += s[1] - s[0]
	}
	if width == 0 {
		return
	}
	// All kb panel columns live in one distribution block, so the grid
	// row owning row j is the same for every jj — hoist it out of the
	// inner loop (this loop runs P x N times per factorization).
	ownerJ := Owner(j0, w.nb, w.gr)
	if w.cfg.Phantom {
		w.applyTrailingSwapsPhantom(j0, kb, ownerJ, width)
		return
	}
	for jj := 0; jj < kb; jj++ {
		j := j0 + jj
		gRow := w.ipiv[j]
		if gRow == j {
			continue
		}
		ownerG := Owner(gRow, w.nb, w.gr)
		if w.pr != ownerJ && w.pr != ownerG {
			continue
		}
		if ownerJ == ownerG {
			w.p.Compute(machine.OpVector, float64(width))
			lrJ := GlobalToLocal(j, w.nb, w.gr)
			lrG := GlobalToLocal(gRow, w.nb, w.gr)
			for _, s := range segs {
				blas.Dswap(s[1]-s[0], w.a[lrJ+s[0]*w.mloc:], w.mloc, w.a[lrG+s[0]*w.mloc:], w.mloc)
			}
			continue
		}
		myRow, peerOwner := j, ownerG
		if w.pr == ownerG {
			myRow, peerOwner = gRow, ownerJ
		}
		peer := w.rank(peerOwner, w.pc)
		lr := GlobalToLocal(myRow, w.nb, w.gr)
		mine := make([]float64, 0, width)
		for _, s := range segs {
			for c := s[0]; c < s[1]; c++ {
				mine = append(mine, w.a[lr+c*w.mloc])
			}
		}
		w.p.SendFloats(peer, tagSwapTrail, mine)
		theirs := w.p.RecvFloats(peer, tagSwapTrail)
		i := 0
		for _, s := range segs {
			for c := s[0]; c < s[1]; c++ {
				w.a[lr+c*w.mloc] = theirs[i]
				i++
			}
		}
	}
}

// applyTrailingSwapsPhantom is the phantom-mode wavefront: the kb row
// interchanges move no data, so maximal runs of consecutive swaps against
// one peer grid row batch into a single ExchangeBatchPhantom — one
// deferred rendezvous instead of 2·cnt mailbox operations, each of which
// would also force the deferred-settlement chain to settle.
//
// Run boundaries must be derived identically by both members of every
// exchange pair. Pairs always share a process column, and a process
// column's ipiv view is consistent down the column (the owning column
// computes real pivots; the others all see the zeros BcastPhantom leaves
// behind), so a shared scan of ipiv suffices: skips (gRow == j) do
// nothing on any process and are transparent; a swap local to the owning
// row advances that row's clock, so it ends the run; a swap against a
// different peer row starts a new run. Batching a run is exact because
// its exchanges are back-to-back in every participant's program.
func (w *worker) applyTrailingSwapsPhantom(j0, kb, ownerJ, width int) {
	for jj := 0; jj < kb; {
		j := j0 + jj
		gRow := w.ipiv[j]
		if gRow == j {
			jj++
			continue
		}
		ownerG := Owner(gRow, w.nb, w.gr)
		if ownerG == ownerJ {
			if w.pr == ownerJ {
				w.p.Compute(machine.OpVector, float64(width))
			}
			jj++
			continue
		}
		cnt := 1
		for jj++; jj < kb; jj++ {
			jn := j0 + jj
			gn := w.ipiv[jn]
			if gn == jn {
				continue
			}
			if Owner(gn, w.nb, w.gr) != ownerG {
				break
			}
			cnt++
		}
		if w.pr != ownerJ && w.pr != ownerG {
			continue
		}
		peerOwner := ownerG
		if w.pr == ownerG {
			peerOwner = ownerJ
		}
		w.p.ExchangeBatchPhantom(w.rank(peerOwner, w.pc), tagSwapTrail, 8*width, cnt)
	}
}

// trsmU12 computes U12 = L11^-1 * A12 on the grid row owning the diagonal
// block and broadcasts it down each process column. It returns the U12
// buffer (kb x wT column-major, ld kb), the trailing width wT and the first
// trailing local column lcT.
func (w *worker) trsmU12(j0, kb, rowOwner int, panel []float64, ldp, liP0 int) (u12 []float64, wT, lcT int) {
	lcT = FirstLocalAtLeast(j0+kb, w.nb, w.gc, w.pc)
	wT = w.nloc - lcT
	if w.pr == rowOwner && wT > 0 {
		w.p.Compute(machine.OpGemm, float64(kb)*float64(kb)*float64(wT))
		if !w.cfg.Phantom {
			// L11 = first kb rows of the panel buffer (global rows j0..j0+kb)
			liJ0 := GlobalToLocal(j0, w.nb, w.gr)
			blas.DtrsmLLNU(kb, wT, panel[liJ0-liP0:], ldp, w.a[liJ0+lcT*w.mloc:], w.mloc)
		}
	}
	// broadcast U12 down each process column
	if w.cfg.Phantom {
		w.colG.BcastPhantom(rowOwner, 8*kb*wT)
		return nil, wT, lcT
	}
	var packed []float64
	if w.pr == rowOwner {
		liJ0 := GlobalToLocal(j0, w.nb, w.gr)
		packed = make([]float64, kb*wT)
		for c := 0; c < wT; c++ {
			copy(packed[c*kb:(c+1)*kb], w.a[liJ0+(lcT+c)*w.mloc:liJ0+(lcT+c)*w.mloc+kb])
		}
	}
	packed = w.colG.BcastFloats(rowOwner, packed)
	return packed, wT, lcT
}

// update applies the trailing-submatrix update A22 -= L21 * U12 locally.
func (w *worker) update(j0, kb int, panel []float64, ldp, liP0 int, u12 []float64, wT, lcT int) {
	liT := FirstLocalAtLeast(j0+kb, w.nb, w.gr, w.pr)
	mT := w.mloc - liT
	if mT <= 0 || wT <= 0 {
		return
	}
	w.p.Compute(machine.OpGemm, 2*float64(mT)*float64(wT)*float64(kb))
	if w.cfg.Phantom {
		return
	}
	blas.Dgemm(false, false, mT, wT, kb, -1,
		panel[liT-liP0:], ldp,
		u12, kb,
		1, w.a[liT+lcT*w.mloc:], w.mloc)
}

// verify gathers the factored matrix to rank 0, solves A x = A*ones with the
// gathered factors, and returns the LINPACK normalized residual plus the
// gathered factors. Only rank 0 returns ok = true.
func (w *worker) verify() (residual float64, gathered []float64, ok bool) {
	if w.p.Rank() != 0 {
		w.p.SendFloats(0, tagGather, w.a)
		return 0, nil, false
	}
	lu := make([]float64, w.n*w.n)
	place := func(local []float64, pr, pc int) {
		ml := NumLocal(w.n, w.nb, w.gr, pr)
		nl := NumLocal(w.n, w.nb, w.gc, pc)
		for lc := 0; lc < nl; lc++ {
			gcol := LocalToGlobal(lc, w.nb, w.gc, pc)
			for lr := 0; lr < ml; lr++ {
				grow := LocalToGlobal(lr, w.nb, w.gr, pr)
				lu[grow+gcol*w.n] = local[lr+lc*ml]
			}
		}
	}
	place(w.a, w.pr, w.pc)
	for r := 1; r < w.gr*w.gc; r++ {
		local := w.p.RecvFloats(r, tagGather)
		place(local, r/w.gc, r%w.gc)
	}
	orig := blas.NewRandom(w.n, w.cfg.Seed)
	x := make([]float64, w.n)
	for i := range x {
		x[i] = 1
	}
	b := blas.MatVec(w.n, orig, x)
	sol := blas.Clone(b)
	blas.Dgetrs(w.n, lu, w.n, w.ipiv, sol)
	return blas.ResidualNorm(w.n, orig, sol, b), lu, true
}
