package machine

// Delta returns the calibrated model of the Intel Touchstone Delta as the
// paper describes it: 528 numeric processors in a 2D mesh with an aggregate
// peak of 32 GFLOPS.
//
// Calibration notes (all from published 1991-92 Delta/i860 characteristics):
//
//   - The paper's own arithmetic fixes per-node peak: 32 GFLOPS / 528 nodes
//     = 60.6 double-precision MFLOPS, the i860 XR at 40 MHz.
//   - Published i860 DGEMM rates ranged 25-40 MFLOPS depending on tuning;
//     the LU trailing update streams operands through the write-through
//     cache, so we use 30 MFLOPS, which lands the N=25,000 LINPACK run at
//     the paper's measured 13 GFLOPS (efficiency ~0.41).
//   - Unblocked panel work is memory-bound on the i860's write-through
//     cache: ~10 MFLOPS.
//   - NX message latency on the Delta was ~75 us end to end, with 8-12 MB/s
//     sustained per-channel bandwidth under NX (hardware channels were
//     faster, but NX protocol overheads dominated); we use 12 MB/s, which
//     together with the 30 MFLOPS DGEMM rate reproduces the 13 GFLOPS
//     LINPACK measurement.
//
// The mesh is laid out 16 rows x 33 columns = 528, matching the paper's
// "528 numeric processors" (the physical machine had additional I/O and
// service nodes that the paper's peak-rate arithmetic excludes).
func Delta() Model {
	return Model{
		Name: "Intel Touchstone Delta",
		Rows: 16,
		Cols: 33,
		Compute: Compute{
			PeakMFlops:   60.6,
			GemmMFlops:   30,
			PanelMFlops:  10,
			VectorMFlops: 14,
			ScalarMFlops: 6,
		},
		Net: Network{
			Latency:      60e-6,
			PerHop:       0.3e-6,
			ByteTime:     1.0 / 12e6, // 12 MB/s sustained
			SendOverhead: 8e-6,
			RecvOverhead: 8e-6,
		},
	}
}

// IPSC860 returns a model of the Intel iPSC/860, the Delta's 128-node
// hypercube predecessor (DARPA's "series of massively parallel computers").
// We map its hypercube onto an 8x16 grid for mesh-oriented experiments; the
// slower interconnect (2.8 MB/s sustained, ~136 us latency) is the point of
// comparison.
func IPSC860() Model {
	return Model{
		Name: "Intel iPSC/860",
		Rows: 8,
		Cols: 16,
		Compute: Compute{
			PeakMFlops:   60.6,
			GemmMFlops:   35,
			PanelMFlops:  10,
			VectorMFlops: 14,
			ScalarMFlops: 6,
		},
		Net: Network{
			Latency:      136e-6,
			PerHop:       0.5e-6,
			ByteTime:     1.0 / 2.8e6,
			SendOverhead: 20e-6,
			RecvOverhead: 20e-6,
		},
	}
}

// Paragon returns a model of the Intel Paragon XP/S, the Delta's announced
// successor (the paper positions the Delta as "one of a series"): faster
// i860 XP nodes and a much faster mesh. Used for forward-looking sweeps.
func Paragon() Model {
	return Model{
		Name: "Intel Paragon XP/S",
		Rows: 16,
		Cols: 64,
		Compute: Compute{
			PeakMFlops:   75,
			GemmMFlops:   45,
			PanelMFlops:  13,
			VectorMFlops: 20,
			ScalarMFlops: 8,
		},
		Net: Network{
			Latency:      40e-6,
			PerHop:       0.1e-6,
			ByteTime:     1.0 / 70e6,
			SendOverhead: 5e-6,
			RecvOverhead: 5e-6,
		},
	}
}

// Custom builds a square-ish mesh model with p nodes by copying rates and
// network parameters from base. It chooses the most square Rows x Cols
// factorization of p (Rows <= Cols). Used by scaling sweeps that vary the
// node count while holding the technology fixed.
func Custom(base Model, p int) Model {
	if p < 1 {
		panic("machine: Custom needs p >= 1")
	}
	rows := 1
	for r := 1; r*r <= p; r++ {
		if p%r == 0 {
			rows = r
		}
	}
	m := base
	m.Name = base.Name + " (custom)"
	m.Rows = rows
	m.Cols = p / rows
	return m
}

// SubMesh returns a model identical to base but restricted to rows x cols
// nodes. It panics if the requested shape exceeds the base mesh.
func SubMesh(base Model, rows, cols int) Model {
	if rows < 1 || cols < 1 || rows*cols > base.Nodes() {
		panic("machine: SubMesh shape invalid or larger than base machine")
	}
	m := base
	m.Rows = rows
	m.Cols = cols
	return m
}
