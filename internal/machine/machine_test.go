package machine

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeltaMatchesPaperHeadline(t *testing.T) {
	d := Delta()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := d.Nodes(); got != 528 {
		t.Fatalf("Delta nodes = %d, want 528 (paper: '528 numeric processors')", got)
	}
	peak := d.PeakGFlops()
	if math.Abs(peak-32) > 0.1 {
		t.Fatalf("Delta peak = %.2f GFLOPS, want ~32 (paper: 'peak speed of 32 GFLOPS')", peak)
	}
}

func TestCatalogModelsValidate(t *testing.T) {
	for _, m := range []Model{Delta(), IPSC860(), Paragon()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	good := Delta()

	bad := good
	bad.Rows = 0
	if bad.Validate() == nil {
		t.Error("zero rows should fail validation")
	}

	bad = good
	bad.Compute.PeakMFlops = 0
	if bad.Validate() == nil {
		t.Error("zero peak should fail validation")
	}

	bad = good
	bad.Compute.GemmMFlops = good.Compute.PeakMFlops * 2
	if bad.Validate() == nil {
		t.Error("rate above peak should fail validation")
	}

	bad = good
	bad.Net.ByteTime = 0
	if bad.Validate() == nil {
		t.Error("zero ByteTime should fail validation")
	}

	bad = good
	bad.Net.Latency = -1
	if bad.Validate() == nil {
		t.Error("negative latency should fail validation")
	}
}

func TestOpString(t *testing.T) {
	names := map[Op]string{OpGemm: "gemm", OpPanel: "panel", OpVector: "vector", OpScalar: "scalar"}
	for op, want := range names {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", int(op), got, want)
		}
	}
	if got := Op(99).String(); got != "Op(99)" {
		t.Errorf("unknown op prints %q", got)
	}
}

func TestComputeRateFallback(t *testing.T) {
	c := Delta().Compute
	if c.Rate(Op(99)) != c.ScalarMFlops {
		t.Error("unknown op should fall back to scalar rate")
	}
}

func TestCoordRankRoundTrip(t *testing.T) {
	d := Delta()
	for rank := 0; rank < d.Nodes(); rank++ {
		r, c := d.Coord(rank)
		if back := d.RankOf(r, c); back != rank {
			t.Fatalf("RankOf(Coord(%d)) = %d", rank, back)
		}
	}
}

func TestCoordPanicsOutOfRange(t *testing.T) {
	d := Delta()
	defer func() {
		if recover() == nil {
			t.Fatal("Coord out of range should panic")
		}
	}()
	d.Coord(d.Nodes())
}

func TestRankOfPanicsOutOfRange(t *testing.T) {
	d := Delta()
	defer func() {
		if recover() == nil {
			t.Fatal("RankOf out of range should panic")
		}
	}()
	d.RankOf(d.Rows, 0)
}

func TestHopsProperties(t *testing.T) {
	d := Delta()
	// Known distances.
	if h := d.Hops(0, 0); h != 0 {
		t.Fatalf("Hops(0,0) = %d", h)
	}
	// corner to corner: (Rows-1)+(Cols-1)
	far := d.RankOf(d.Rows-1, d.Cols-1)
	if h := d.Hops(0, far); h != d.Rows-1+d.Cols-1 {
		t.Fatalf("corner-to-corner hops = %d, want %d", h, d.Rows-1+d.Cols-1)
	}
	// Property: symmetric and triangle inequality on sampled triples.
	f := func(a, b, c uint16) bool {
		x := int(a) % d.Nodes()
		y := int(b) % d.Nodes()
		z := int(c) % d.Nodes()
		if d.Hops(x, y) != d.Hops(y, x) {
			return false
		}
		return d.Hops(x, z) <= d.Hops(x, y)+d.Hops(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComputeTime(t *testing.T) {
	d := Delta()
	// at the DGEMM rate, GemmMFlops*1e6 flops take exactly 1 second
	if got := d.ComputeTime(OpGemm, d.Compute.GemmMFlops*1e6); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ComputeTime = %g, want 1", got)
	}
	if d.ComputeTime(OpGemm, 0) != 0 {
		t.Fatal("zero flops should take zero time")
	}
	if d.ComputeTime(OpGemm, -5) != 0 {
		t.Fatal("negative flops should take zero time")
	}
	// gemm must be faster than panel for the same flops
	if d.ComputeTime(OpGemm, 1e6) >= d.ComputeTime(OpPanel, 1e6) {
		t.Fatal("gemm rate should beat panel rate")
	}
}

func TestMessageTimeMonotone(t *testing.T) {
	d := Delta()
	t0 := d.MessageTime(0, 0)
	if t0 < d.Net.Latency {
		t.Fatalf("zero-byte message time %g below latency %g", t0, d.Net.Latency)
	}
	if d.MessageTime(1000, 0) <= t0 {
		t.Fatal("more bytes must take longer")
	}
	if d.MessageTime(0, 10) <= t0 {
		t.Fatal("more hops must take longer")
	}
	if d.MessageTime(-5, -5) != t0 {
		t.Fatal("negative inputs should clamp to zero")
	}
}

func TestPointToPointIncludesOverheads(t *testing.T) {
	d := Delta()
	p2p := d.PointToPointTime(0, 1, 0)
	want := d.Net.SendOverhead + d.MessageTime(0, 1) + d.Net.RecvOverhead
	if math.Abs(p2p-want) > 1e-15 {
		t.Fatalf("PointToPointTime = %g, want %g", p2p, want)
	}
}

func TestBandwidthMBs(t *testing.T) {
	d := Delta()
	if got := d.Net.BandwidthMBs(); math.Abs(got-12) > 1e-9 {
		t.Fatalf("Delta sustained bandwidth = %g MB/s, want 12", got)
	}
	var n Network
	if n.BandwidthMBs() != 0 {
		t.Fatal("zero ByteTime should report 0 bandwidth")
	}
}

func TestCustomFactorization(t *testing.T) {
	base := Delta()
	cases := []struct{ p, rows, cols int }{
		{1, 1, 1},
		{4, 2, 2},
		{6, 2, 3},
		{16, 4, 4},
		{528, 22, 24}, // most-square factorization of 528
		{7, 1, 7},     // prime
	}
	for _, c := range cases {
		m := Custom(base, c.p)
		if m.Rows != c.rows || m.Cols != c.cols {
			t.Errorf("Custom(%d) = %dx%d, want %dx%d", c.p, m.Rows, m.Cols, c.rows, c.cols)
		}
		if m.Nodes() != c.p {
			t.Errorf("Custom(%d) has %d nodes", c.p, m.Nodes())
		}
	}
}

func TestCustomPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Custom(0) should panic")
		}
	}()
	Custom(Delta(), 0)
}

func TestCustomPreservesRates(t *testing.T) {
	f := func(pRaw uint8) bool {
		p := int(pRaw)%100 + 1
		m := Custom(Delta(), p)
		return m.Compute == Delta().Compute && m.Net == Delta().Net && m.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubMesh(t *testing.T) {
	m := SubMesh(Delta(), 4, 8)
	if m.Nodes() != 32 {
		t.Fatalf("SubMesh nodes = %d, want 32", m.Nodes())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized SubMesh should panic")
		}
	}()
	SubMesh(Delta(), 100, 100)
}
