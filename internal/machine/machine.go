// Package machine defines parametric performance models of the
// distributed-memory machines the paper describes, chiefly the Intel
// Touchstone Delta: per-node compute rates for different operation classes
// and a LogGP-style network cost model over a 2D mesh.
//
// The models produce *time* for *work*: the nx runtime asks a Model how long
// a compute region or a message should take in virtual seconds. Rates are
// calibrated from published i860/Delta characteristics (see Delta below);
// the reproduction claim is about shapes and ratios, not absolute cycles.
package machine

import (
	"errors"
	"fmt"
)

// Op classifies a compute region so the model can charge an appropriate rate.
// 1992-era distributed LU spends most time in matrix-matrix multiply (OpGemm,
// near-peak on a tuned i860), while panel factorization and triangular solves
// run at memory-bound rates.
type Op int

// Operation classes.
const (
	// OpGemm is blocked matrix-matrix multiply: the high-rate kernel.
	OpGemm Op = iota
	// OpPanel is unblocked panel factorization: memory/latency bound.
	OpPanel
	// OpVector is streaming vector work (axpy/dot/scal) at memory bandwidth.
	OpVector
	// OpScalar is untuned scalar code.
	OpScalar
	numOps
)

// String names the operation class.
func (o Op) String() string {
	switch o {
	case OpGemm:
		return "gemm"
	case OpPanel:
		return "panel"
	case OpVector:
		return "vector"
	case OpScalar:
		return "scalar"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Compute holds per-node achievable rates in MFLOPS for each operation class
// plus the nominal hardware peak.
type Compute struct {
	PeakMFlops   float64 // marketing peak per node
	GemmMFlops   float64 // achieved blocked DGEMM
	PanelMFlops  float64 // achieved unblocked factorization
	VectorMFlops float64 // achieved streaming vector ops
	ScalarMFlops float64 // achieved scalar code
}

// Rate returns the achieved MFLOPS for an operation class.
func (c Compute) Rate(op Op) float64 {
	switch op {
	case OpGemm:
		return c.GemmMFlops
	case OpPanel:
		return c.PanelMFlops
	case OpVector:
		return c.VectorMFlops
	case OpScalar:
		return c.ScalarMFlops
	default:
		return c.ScalarMFlops
	}
}

// Network holds LogGP-style point-to-point parameters. A message of n bytes
// travelling h hops costs:
//
//	sender:   SendOverhead + float64(n)*ByteTime (port serialization, LogGP's G)
//	in net:   Latency + float64(h)*PerHop
//	receiver: RecvOverhead (charged on the receiving clock)
//
// The one-way total is identical to MessageTime(n, h) plus the endpoint
// overheads; the split matters only for back-to-back sends, which cannot
// overlap their serialization on one port.
type Network struct {
	Latency      float64 // end-point to end-point base latency, seconds
	PerHop       float64 // additional delay per mesh hop, seconds
	ByteTime     float64 // serialization time per byte, seconds (1/bandwidth)
	SendOverhead float64 // CPU time consumed on the sender, seconds
	RecvOverhead float64 // CPU time consumed on the receiver, seconds
}

// BandwidthMBs returns the asymptotic link bandwidth in MB/s.
func (n Network) BandwidthMBs() float64 {
	if n.ByteTime <= 0 {
		return 0
	}
	return 1 / n.ByteTime / 1e6
}

// Model is a complete machine description: a Rows x Cols 2D mesh of nodes,
// each with the same Compute rates, connected by links characterized by Net.
type Model struct {
	Name    string
	Rows    int // mesh rows
	Cols    int // mesh columns
	Compute Compute
	Net     Network
}

// Validate reports whether the model is internally consistent.
func (m Model) Validate() error {
	if m.Rows < 1 || m.Cols < 1 {
		return fmt.Errorf("machine: mesh %dx%d must be at least 1x1", m.Rows, m.Cols)
	}
	if m.Compute.PeakMFlops <= 0 {
		return errors.New("machine: PeakMFlops must be positive")
	}
	for op := Op(0); op < numOps; op++ {
		r := m.Compute.Rate(op)
		if r <= 0 {
			return fmt.Errorf("machine: rate for %v must be positive", op)
		}
		if r > m.Compute.PeakMFlops {
			return fmt.Errorf("machine: rate for %v (%g) exceeds peak (%g)", op, r, m.Compute.PeakMFlops)
		}
	}
	if m.Net.ByteTime <= 0 || m.Net.Latency < 0 || m.Net.PerHop < 0 ||
		m.Net.SendOverhead < 0 || m.Net.RecvOverhead < 0 {
		return errors.New("machine: network parameters must be non-negative with positive ByteTime")
	}
	return nil
}

// Nodes returns the number of nodes in the mesh.
func (m Model) Nodes() int { return m.Rows * m.Cols }

// PeakGFlops returns the aggregate hardware peak in GFLOPS — the "32 GFLOPS
// using the 528 numeric processors" figure for the Delta model.
func (m Model) PeakGFlops() float64 {
	return float64(m.Nodes()) * m.Compute.PeakMFlops / 1000
}

// Coord returns the (row, col) mesh coordinates of a node rank in row-major
// order. It panics on an out-of-range rank.
func (m Model) Coord(rank int) (row, col int) {
	if rank < 0 || rank >= m.Nodes() {
		panic(fmt.Sprintf("machine: rank %d out of range [0,%d)", rank, m.Nodes()))
	}
	return rank / m.Cols, rank % m.Cols
}

// RankOf is the inverse of Coord.
func (m Model) RankOf(row, col int) int {
	if row < 0 || row >= m.Rows || col < 0 || col >= m.Cols {
		panic(fmt.Sprintf("machine: coord (%d,%d) out of range %dx%d", row, col, m.Rows, m.Cols))
	}
	return row*m.Cols + col
}

// Hops returns the Manhattan distance between two ranks on the mesh — the
// path length of dimension-order (XY) routing.
func (m Model) Hops(a, b int) int {
	ar, ac := m.Coord(a)
	br, bc := m.Coord(b)
	return abs(ar-br) + abs(ac-bc)
}

// ComputeTime returns the virtual duration of a compute region of the given
// floating-point operation count and class.
func (m Model) ComputeTime(op Op, flops float64) float64 {
	if flops <= 0 {
		return 0
	}
	return flops / (m.Compute.Rate(op) * 1e6)
}

// MessageTime returns the in-network time for n bytes over h hops, excluding
// the endpoint overheads (those are charged to the respective clocks by the
// runtime).
func (m Model) MessageTime(n, hops int) float64 {
	if n < 0 {
		n = 0
	}
	if hops < 0 {
		hops = 0
	}
	return m.Net.Latency + float64(hops)*m.Net.PerHop + float64(n)*m.Net.ByteTime
}

// PointToPointTime returns the full one-way time for n bytes between two
// ranks including both endpoint overheads; it is the Hockney-style t(n) a
// ping-pong benchmark on this model would measure (half round trip).
func (m Model) PointToPointTime(a, b, n int) float64 {
	return m.Net.SendOverhead + m.MessageTime(n, m.Hops(a, b)) + m.Net.RecvOverhead
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
