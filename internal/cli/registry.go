package cli

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/store"
)

// parseErr maps -h to a clean exit instead of an error trace.
func parseErr(err error) error {
	if errors.Is(err, flag.ErrHelp) {
		return nil
	}
	return err
}

// splitLeadingID peels a leading non-flag argument (a workload ID) off
// args, so subcommands accept "run <id> -quick" as well as
// "run -quick <id>" despite flag's stop-at-first-positional parsing.
func splitLeadingID(args []string) (id string, rest []string) {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		return args[0], args[1:]
	}
	return "", args
}

// paramFlags collects repeated -p name=value workload overrides.
type paramFlags struct{ vals map[string]string }

// String implements flag.Value.
func (p *paramFlags) String() string {
	parts := make([]string, 0, len(p.vals))
	for k, v := range p.vals {
		parts = append(parts, k+"="+v)
	}
	return strings.Join(parts, ",")
}

// Set implements flag.Value.
func (p *paramFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok || strings.TrimSpace(k) == "" {
		return fmt.Errorf("want name=value, got %q", s)
	}
	if p.vals == nil {
		p.vals = make(map[string]string)
	}
	p.vals[k] = v
	return nil
}

func cmdReport(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hpcc report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "scale down the expensive experiments")
	jobs := fs.Int("j", harness.DefaultWorkers(), "concurrent workers (output is identical for any value)")
	exp := fs.String("e", "", "run a single experiment by ID (E1..E7)")
	jsonOut := fs.Bool("json", false, "emit structured JSON instead of text")
	var sf storeFlags
	sf.register(fs)
	if err := fs.Parse(args); err != nil {
		return parseErr(err)
	}
	if err := sf.validate(); err != nil {
		return err
	}

	reportParams := harness.Params{Quick: *quick}
	prog := core.NewProgram()
	prog.Quick = *quick
	if *exp != "" {
		res, err := prog.ExperimentResult(*exp)
		if err != nil {
			return err
		}
		if err := writeResult(stdout, res, *jsonOut); err != nil {
			return err
		}
		return sf.persist(ctx, []store.Entry{{Params: reportParams, Result: res}}, stderr)
	}
	results, err := prog.ReportResults(ctx, *jobs)
	if err != nil {
		return err
	}
	if *jsonOut {
		if err := writeJSON(stdout, results); err != nil {
			return err
		}
	} else if err := core.WriteResults(stdout, results); err != nil {
		return err
	}
	return sf.persistResults(ctx, results, func(int) harness.Params { return reportParams }, stderr)
}

// writeResult renders one result to w as JSON or text. Callers print
// before persisting so a store failure never discards a result the run
// already produced.
func writeResult(w io.Writer, res harness.Result, jsonOut bool) error {
	if jsonOut {
		s, err := res.JSON()
		if err != nil {
			return err
		}
		_, err = io.WriteString(w, s)
		return err
	}
	_, err := io.WriteString(w, res.Text)
	return err
}

// persistResults pairs each result with its params (by index) and
// appends them as one snapshot; a no-op without -store.
func (sf *storeFlags) persistResults(ctx context.Context, results []harness.Result, params func(int) harness.Params, stderr io.Writer) error {
	if sf.dir == "" {
		return nil
	}
	entries := make([]store.Entry, len(results))
	for i, r := range results {
		entries[i] = store.Entry{Params: params(i), Result: r}
	}
	return sf.persist(ctx, entries, stderr)
}

func cmdList(_ context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hpcc list", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the catalog as JSON")
	if err := fs.Parse(args); err != nil {
		return parseErr(err)
	}

	if *jsonOut {
		type entry struct {
			ID          string          `json:"id"`
			Description string          `json:"description"`
			Params      []harness.Param `json:"params,omitempty"`
		}
		var out []entry
		for _, w := range harness.All() {
			out = append(out, entry{ID: w.ID(), Description: w.Description(), Params: w.ParamSpace()})
		}
		return writeJSON(stdout, out)
	}
	t := report.NewTable("Registered workloads", "ID", "Description", "Parameters")
	t.Aligns = []report.Align{report.Left, report.Left, report.Left}
	for _, w := range harness.All() {
		var params []string
		for _, p := range w.ParamSpace() {
			params = append(params, p.Name+"="+p.Default)
		}
		t.AddRow(w.ID(), w.Description(), strings.Join(params, " "))
	}
	_, err := io.WriteString(stdout, t.Render())
	return err
}

func cmdRun(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hpcc run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "scaled-down smoke configuration")
	seed := fs.Int64("seed", 0, "seed for randomized workloads (0 = workload default)")
	jsonOut := fs.Bool("json", false, "emit the structured result as JSON")
	var overrides paramFlags
	fs.Var(&overrides, "p", "workload parameter override name=value (repeatable)")
	var sf storeFlags
	sf.register(fs)
	// Accept both "run <id> [flags]" and "run [flags] <id>".
	id, rest := splitLeadingID(args)
	if err := fs.Parse(rest); err != nil {
		return parseErr(err)
	}
	if err := sf.validate(); err != nil {
		return err
	}
	switch {
	case id == "" && fs.NArg() == 1:
		id = fs.Arg(0)
	case id != "" && fs.NArg() == 0:
	default:
		fmt.Fprintln(stderr, "usage: hpcc run <workload-id> [flags]   (see 'hpcc list')")
		return errors.New("run: want exactly one workload ID")
	}
	w, err := harness.Lookup(id)
	if err != nil {
		return err
	}
	params := harness.Params{Quick: *quick, Seed: *seed, Values: overrides.vals}
	res, err := w.Run(ctx, params)
	if err != nil {
		return err
	}
	if res.WorkloadID == "" {
		res.WorkloadID = w.ID()
	}
	if err := writeResult(stdout, res, *jsonOut); err != nil {
		return err
	}
	return sf.persist(ctx, []store.Entry{{Params: params, Result: res}}, stderr)
}

func cmdSweep(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hpcc sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ids := fs.String("ids", "", "comma-separated workload IDs (default: every registered workload)")
	jobs := fs.Int("j", harness.DefaultWorkers(), "concurrent workers (output is identical for any value)")
	quick := fs.Bool("quick", false, "scaled-down smoke configurations")
	seed := fs.Int64("seed", 0, "seed for randomized workloads")
	jsonOut := fs.Bool("json", false, "emit structured JSON instead of text")
	param := fs.String("param", "", "with a single positional workload: parameter to sweep")
	values := fs.String("values", "", "comma-separated values for -param")
	var overrides paramFlags
	fs.Var(&overrides, "p", "workload parameter override name=value (repeatable)")
	var sf storeFlags
	sf.register(fs)
	// Accept both "sweep <id> [flags]" and "sweep [flags] <id>".
	id, rest := splitLeadingID(args)
	if err := fs.Parse(rest); err != nil {
		return parseErr(err)
	}
	if err := sf.validate(); err != nil {
		return err
	}
	if id == "" && fs.NArg() == 1 {
		id = fs.Arg(0)
	} else if fs.NArg() > 0 {
		return errors.New("sweep: want at most one positional workload ID")
	}

	base := harness.Params{Quick: *quick, Seed: *seed, Values: overrides.vals}

	// jobParams mirrors the per-result parameters so persisted records
	// carry the exact point each result ran at.
	var jobParams []harness.Params
	var results []harness.Result
	var err error
	switch {
	case *param != "":
		// One workload, many points: hpcc sweep linpack/delta -param nb -values 4,8,16
		if id == "" {
			return errors.New("sweep: -param needs exactly one positional workload ID")
		}
		if *values == "" {
			return errors.New("sweep: -param needs -values v1,v2,...")
		}
		w, lerr := harness.Lookup(id)
		if lerr != nil {
			return lerr
		}
		jobList := harness.ValueJobs(w, base, *param, strings.Split(*values, ","))
		for _, j := range jobList {
			jobParams = append(jobParams, j.Params)
		}
		results, err = harness.Sweep(ctx, jobList, *jobs)
	case id != "":
		return errors.New("sweep: a positional workload ID needs -param/-values; use -ids for a portfolio")
	default:
		var ws []harness.Workload
		if *ids == "" {
			ws = harness.All()
		} else {
			for _, id := range strings.Split(*ids, ",") {
				w, lerr := harness.Lookup(strings.TrimSpace(id))
				if lerr != nil {
					return lerr
				}
				ws = append(ws, w)
			}
		}
		jobParams = make([]harness.Params, len(ws))
		for i := range ws {
			jobParams[i] = base
		}
		results, err = harness.SweepWorkloads(ctx, ws, base, *jobs)
	}
	if err != nil {
		return err
	}

	// Print before persisting: a store failure must not discard the
	// results the sweep already produced.
	if *jsonOut {
		if err := writeJSON(stdout, results); err != nil {
			return err
		}
	} else {
		for _, r := range results {
			if r.Title != "" {
				fmt.Fprintf(stdout, "=== %s: %s ===\n\n%s\n", r.WorkloadID, r.Title, r.Text)
			} else {
				fmt.Fprintf(stdout, "=== %s ===\n\n%s\n", r.WorkloadID, r.Text)
			}
		}
	}
	return sf.persistResults(ctx, results, func(i int) harness.Params { return jobParams[i] }, stderr)
}

// writeJSON emits v as indented JSON terminated by a newline.
func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
