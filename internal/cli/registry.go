package cli

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/store"
)

// parseErr maps -h to a clean exit instead of an error trace.
func parseErr(err error) error {
	if errors.Is(err, flag.ErrHelp) {
		return nil
	}
	return err
}

// splitLeadingID peels a leading non-flag argument (a workload ID) off
// args, so subcommands accept "run <id> -quick" as well as
// "run -quick <id>" despite flag's stop-at-first-positional parsing.
func splitLeadingID(args []string) (id string, rest []string) {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		return args[0], args[1:]
	}
	return "", args
}

// paramFlags collects repeated -p name=value workload overrides.
type paramFlags struct{ vals map[string]string }

// String implements flag.Value. Keys are sorted so -h output and flag
// defaults render identically run to run (map iteration order is
// randomized).
func (p *paramFlags) String() string {
	keys := make([]string, 0, len(p.vals))
	for k := range p.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+p.vals[k])
	}
	return strings.Join(parts, ",")
}

// Set implements flag.Value.
func (p *paramFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok || strings.TrimSpace(k) == "" {
		return fmt.Errorf("want name=value, got %q", s)
	}
	if p.vals == nil {
		p.vals = make(map[string]string)
	}
	p.vals[k] = v
	return nil
}

func cmdReport(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hpcc report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "scale down the expensive experiments")
	jobs := fs.Int("j", harness.DefaultWorkers(), "concurrent workers (output is identical for any value)")
	shards := fs.Int("shards", 0, "fan exhibits out to N hpcc worker processes (0 = in-process -j pool; output is identical either way)")
	remote := fs.String("remote", "", "fan exhibits out to hpcc worker -listen fleet at these comma-separated addresses (output is identical either way)")
	exp := fs.String("e", "", "run a single experiment by ID (E1..E7)")
	jsonOut := fs.Bool("json", false, "emit structured JSON instead of text")
	var sf storeFlags
	sf.register(fs)
	var cf cacheFlags
	cf.register(fs)
	var xf collectivesFlags
	xf.register(fs)
	var ssf simShardsFlags
	ssf.register(fs)
	var tf tokenFlags
	tf.register(fs)
	var bf budgetFlags
	bf.register(fs)
	var jf journalFlags
	jf.register(fs)
	var df drainFlags
	df.register(fs)
	if err := fs.Parse(args); err != nil {
		return parseErr(err)
	}
	if err := sf.validate(); err != nil {
		return err
	}
	if err := jf.validate(); err != nil {
		return err
	}
	if err := xf.apply(); err != nil {
		return err
	}
	if err := ssf.apply(); err != nil {
		return err
	}
	resultCache, err := cf.open()
	if err != nil {
		return err
	}

	reportParams := harness.Params{Quick: *quick}
	prog := core.NewProgram()
	prog.Quick = *quick
	if *exp != "" {
		w, err := prog.ExperimentWorkload(*exp)
		if err != nil {
			return err
		}
		ctx, cancelBudget := bf.apply(ctx)
		defer cancelBudget()
		res, err := runSingle(ctx, &jf, resultCache, w, reportParams, *jsonOut, stderr)
		if err != nil {
			return bf.explain(err)
		}
		if err := writeResult(stdout, res, *jsonOut); err != nil {
			return err
		}
		return sf.persist(ctx, []store.Entry{{Params: reportParams, Result: res}}, stderr)
	}
	// The signal context drives the executor's drain channel directly:
	// a SIGINT/SIGTERM stops dispatch at once while in-flight exhibits
	// finish under the -drain grace; -budget layers on top so an expiry
	// cancels outright and surfaces as DeadlineExceeded.
	ex, drains, err := newExecutor(*shards, *jobs, *remote, tf.token, ctx.Done(), stderr)
	if err != nil {
		return err
	}
	headerJobs, err := reportJobs(prog, reportParams)
	if err != nil {
		return err
	}
	done, err := jf.open("report", headerJobs, *jsonOut, stderr)
	if err != nil {
		return err
	}
	ex = jf.wrap(wrapExecutor(ex, resultCache), done)
	jobCtx, stopGrace := df.wrap(ctx, drains)
	defer stopGrace()
	runBase, cancelBudget := bf.apply(jobCtx)
	defer cancelBudget()
	// Text output streams: each exhibit prints as soon as every exhibit
	// before it has finished, so long reports show progress. The bytes
	// are identical to the old print-at-the-end path.
	runCtx, cancelRun := context.WithCancel(runBase)
	defer cancelRun()
	emit, emitErr := streamEmitter(jsonOut, cancelRun, func(r harness.Result) error {
		return core.WriteResult(stdout, r)
	})
	results, err := prog.ReportResultsExec(runCtx, ex, emit)
	if werr := *emitErr; werr != nil {
		jf.finish(werr, stderr)
		return werr
	}
	if err != nil {
		if persistableErr(err) {
			sf.persistPrefix(ctx, results, func(int) harness.Params { return reportParams }, stderr)
		}
		jf.finish(err, stderr)
		return bf.explain(err)
	}
	if *jsonOut {
		if err := writeJSON(stdout, results); err != nil {
			jf.finish(err, stderr)
			return err
		}
	}
	jf.finish(nil, stderr)
	return sf.persistResults(ctx, results, func(int) harness.Params { return reportParams }, stderr)
}

// reportJobs mirrors the job list ReportResultsExec builds (same
// exhibits, same paper order, same params) so the journal header can
// record the report's identity without running anything.
func reportJobs(prog *core.Program, params harness.Params) ([]harness.Job, error) {
	exps := prog.Experiments()
	jobs := make([]harness.Job, len(exps))
	for i, e := range exps {
		w, err := prog.ExperimentWorkload(e.ID)
		if err != nil {
			return nil, err
		}
		jobs[i] = harness.Job{Workload: w, Params: params}
	}
	return jobs, nil
}

// runSingle runs one workload the way run and report -e do — but when
// -journal is set, it routes through the single-job executor stack so
// the result checkpoints and a completed journal replays without
// rerunning. Without -journal it is exactly the old runCached path.
func runSingle(ctx context.Context, jf *journalFlags, resultCache *cache.Cache, w harness.Workload, params harness.Params, jsonOut bool, stderr io.Writer) (harness.Result, error) {
	if jf.dir == "" {
		return runCached(ctx, resultCache, w, params, stderr)
	}
	jobList := []harness.Job{{Workload: w, Params: params}}
	done, err := jf.open("run", jobList, jsonOut, stderr)
	if err != nil {
		return harness.Result{}, err
	}
	ex := jf.wrap(wrapExecutor(harness.LocalExecutor{Workers: 1}, resultCache), done)
	results, err := ex.Execute(ctx, jobList, nil)
	jf.finish(err, stderr)
	if err != nil {
		return harness.Result{}, err
	}
	return results[0], nil
}

// streamEmitter adapts a per-result writer into an Executor emit
// callback for text output (JSON callers need the whole slice, so they
// get a nil emit and print at the end). Emit itself cannot fail the
// executor, so the first write error cancels the run via cancelRun —
// there is no point computing results whose output can never be
// delivered — and lands in the returned pointer, which the caller must
// check before the executor's error (the cancellation is a symptom).
func streamEmitter(jsonOut *bool, cancelRun context.CancelFunc, write func(harness.Result) error) (func(int, harness.Result), *error) {
	errp := new(error)
	if *jsonOut {
		return nil, errp
	}
	return func(_ int, r harness.Result) {
		if *errp == nil {
			if *errp = write(r); *errp != nil {
				cancelRun()
			}
		}
	}, errp
}

// writeResult renders one result to w as JSON or text. Callers print
// before persisting so a store failure never discards a result the run
// already produced.
func writeResult(w io.Writer, res harness.Result, jsonOut bool) error {
	if jsonOut {
		s, err := res.JSON()
		if err != nil {
			return err
		}
		_, err = io.WriteString(w, s)
		return err
	}
	_, err := io.WriteString(w, res.Text)
	return err
}

// persistResults pairs each result with its params (by index) and
// appends them as one snapshot; a no-op without -store.
func (sf *storeFlags) persistResults(ctx context.Context, results []harness.Result, params func(int) harness.Params, stderr io.Writer) error {
	if sf.dir == "" {
		return nil
	}
	entries := make([]store.Entry, len(results))
	for i, r := range results {
		entries[i] = store.Entry{Params: params(i), Result: r}
	}
	return sf.persist(ctx, entries, stderr)
}

func cmdList(_ context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hpcc list", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the catalog as JSON")
	if err := fs.Parse(args); err != nil {
		return parseErr(err)
	}

	if *jsonOut {
		type entry struct {
			ID          string          `json:"id"`
			Description string          `json:"description"`
			Params      []harness.Param `json:"params,omitempty"`
		}
		var out []entry
		for _, w := range harness.All() {
			out = append(out, entry{ID: w.ID(), Description: w.Description(), Params: w.ParamSpace()})
		}
		return writeJSON(stdout, out)
	}
	t := report.NewTable("Registered workloads", "ID", "Description", "Parameters")
	t.Aligns = []report.Align{report.Left, report.Left, report.Left}
	for _, w := range harness.All() {
		var params []string
		for _, p := range w.ParamSpace() {
			params = append(params, p.Name+"="+p.Default)
		}
		t.AddRow(w.ID(), w.Description(), strings.Join(params, " "))
	}
	_, err := io.WriteString(stdout, t.Render())
	return err
}

func cmdRun(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hpcc run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "scaled-down smoke configuration")
	seed := fs.Int64("seed", 0, "seed for randomized workloads (0 = workload default)")
	jsonOut := fs.Bool("json", false, "emit the structured result as JSON")
	var overrides paramFlags
	fs.Var(&overrides, "p", "workload parameter override name=value (repeatable)")
	var sf storeFlags
	sf.register(fs)
	var cf cacheFlags
	cf.register(fs)
	var xf collectivesFlags
	xf.register(fs)
	var ssf simShardsFlags
	ssf.register(fs)
	var bf budgetFlags
	bf.register(fs)
	var jf journalFlags
	jf.register(fs)
	// Accept both "run <id> [flags]" and "run [flags] <id>".
	id, rest := splitLeadingID(args)
	if err := fs.Parse(rest); err != nil {
		return parseErr(err)
	}
	if err := sf.validate(); err != nil {
		return err
	}
	if err := jf.validate(); err != nil {
		return err
	}
	if err := xf.apply(); err != nil {
		return err
	}
	if err := ssf.apply(); err != nil {
		return err
	}
	resultCache, err := cf.open()
	if err != nil {
		return err
	}
	ctx, cancelBudget := bf.apply(ctx)
	defer cancelBudget()
	switch {
	case id == "" && fs.NArg() == 1:
		id = fs.Arg(0)
	case id != "" && fs.NArg() == 0:
	default:
		fmt.Fprintln(stderr, "usage: hpcc run <workload-id> [flags]   (see 'hpcc list')")
		return errors.New("run: want exactly one workload ID")
	}
	w, err := harness.Lookup(id)
	if err != nil {
		return err
	}
	params := harness.Params{Quick: *quick, Seed: *seed, Values: overrides.vals}
	res, err := runSingle(ctx, &jf, resultCache, w, params, *jsonOut, stderr)
	if err != nil {
		return bf.explain(err)
	}
	if err := writeResult(stdout, res, *jsonOut); err != nil {
		return err
	}
	return sf.persist(ctx, []store.Entry{{Params: params, Result: res}}, stderr)
}

func cmdSweep(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hpcc sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ids := fs.String("ids", "", "comma-separated workload IDs (default: every registered workload)")
	jobs := fs.Int("j", harness.DefaultWorkers(), "concurrent workers (output is identical for any value)")
	shards := fs.Int("shards", 0, "fan jobs out to N hpcc worker processes (0 = in-process -j pool; output is identical either way)")
	remote := fs.String("remote", "", "fan jobs out to hpcc worker -listen fleet at these comma-separated addresses (output is identical either way)")
	quick := fs.Bool("quick", false, "scaled-down smoke configurations")
	seed := fs.Int64("seed", 0, "seed for randomized workloads")
	jsonOut := fs.Bool("json", false, "emit structured JSON instead of text")
	param := fs.String("param", "", "with a single positional workload: parameter to sweep")
	values := fs.String("values", "", "comma-separated values for -param")
	var overrides paramFlags
	fs.Var(&overrides, "p", "workload parameter override name=value (repeatable)")
	var sf storeFlags
	sf.register(fs)
	var cf cacheFlags
	cf.register(fs)
	var xf collectivesFlags
	xf.register(fs)
	var ssf simShardsFlags
	ssf.register(fs)
	var tf tokenFlags
	tf.register(fs)
	var bf budgetFlags
	bf.register(fs)
	var jf journalFlags
	jf.register(fs)
	var df drainFlags
	df.register(fs)
	// Accept both "sweep <id> [flags]" and "sweep [flags] <id>".
	id, rest := splitLeadingID(args)
	if err := fs.Parse(rest); err != nil {
		return parseErr(err)
	}
	if err := sf.validate(); err != nil {
		return err
	}
	if err := jf.validate(); err != nil {
		return err
	}
	if err := xf.apply(); err != nil {
		return err
	}
	if err := ssf.apply(); err != nil {
		return err
	}
	resultCache, err := cf.open()
	if err != nil {
		return err
	}
	if id == "" && fs.NArg() == 1 {
		id = fs.Arg(0)
	} else if fs.NArg() > 0 {
		return errors.New("sweep: want at most one positional workload ID")
	}

	base := harness.Params{Quick: *quick, Seed: *seed, Values: overrides.vals}

	var jobList []harness.Job
	switch {
	case *param != "":
		// One workload, many points: hpcc sweep linpack/delta -param nb -values 4,8,16
		if id == "" {
			return errors.New("sweep: -param needs exactly one positional workload ID")
		}
		if *values == "" {
			return errors.New("sweep: -param needs -values v1,v2,...")
		}
		w, lerr := harness.Lookup(id)
		if lerr != nil {
			return lerr
		}
		vals, verr := splitValues(*values)
		if verr != nil {
			return verr
		}
		jobList = harness.ValueJobs(w, base, *param, vals)
	case id != "":
		return errors.New("sweep: a positional workload ID needs -param/-values; use -ids for a portfolio")
	default:
		var ws []harness.Workload
		if *ids == "" {
			ws = harness.All()
		} else {
			for _, id := range strings.Split(*ids, ",") {
				w, lerr := harness.Lookup(strings.TrimSpace(id))
				if lerr != nil {
					return lerr
				}
				ws = append(ws, w)
			}
		}
		jobList = harness.WorkloadJobs(ws, base)
	}

	// The signal context drives the executor's drain channel directly:
	// a SIGINT/SIGTERM stops dispatch at once, while jobs run under the
	// drained jobCtx that outlives the signal by the -drain grace. The
	// -budget deadline layers on top so an expiry cancels jobs outright
	// (it must surface as DeadlineExceeded, not a drain).
	ex, drains, err := newExecutor(*shards, *jobs, *remote, tf.token, ctx.Done(), stderr)
	if err != nil {
		return err
	}
	done, err := jf.open("sweep", jobList, *jsonOut, stderr)
	if err != nil {
		return err
	}
	ex = jf.wrap(wrapExecutor(ex, resultCache), done)
	jobCtx, stopGrace := df.wrap(ctx, drains)
	defer stopGrace()
	runBase, cancelBudget := bf.apply(jobCtx)
	defer cancelBudget()
	// Text output streams: each point prints as soon as every point
	// before it has finished, so huge sweeps show progress; the bytes
	// are identical to the old print-at-the-end path. Printing precedes
	// persisting either way: a store failure must not discard results
	// the sweep already produced.
	runCtx, cancelRun := context.WithCancel(runBase)
	defer cancelRun()
	emit, emitErr := streamEmitter(jsonOut, cancelRun, func(r harness.Result) error {
		return writeSweepResult(stdout, r)
	})
	results, err := ex.Execute(runCtx, jobList, emit)
	if werr := *emitErr; werr != nil {
		jf.finish(werr, stderr)
		return werr
	}
	if err != nil {
		// An interrupted or budget-expired sweep still persists its
		// completed prefix — that is the whole point of crash safety —
		// and the kept journal prints the resume command.
		if persistableErr(err) {
			sf.persistPrefix(ctx, results, func(i int) harness.Params { return jobList[i].Params }, stderr)
		}
		jf.finish(err, stderr)
		return bf.explain(err)
	}
	if *jsonOut {
		if err := writeJSON(stdout, results); err != nil {
			jf.finish(err, stderr)
			return err
		}
	}
	jf.finish(nil, stderr)
	// jobList mirrors the per-result parameters so persisted records
	// carry the exact point each result ran at.
	return sf.persistResults(ctx, results, func(i int) harness.Params { return jobList[i].Params }, stderr)
}

// writeSweepResult renders one sweep point in the sweep's text format.
func writeSweepResult(w io.Writer, r harness.Result) error {
	var err error
	if r.Title != "" {
		_, err = fmt.Fprintf(w, "=== %s: %s ===\n\n%s\n", r.WorkloadID, r.Title, r.Text)
	} else {
		_, err = fmt.Fprintf(w, "=== %s ===\n\n%s\n", r.WorkloadID, r.Text)
	}
	return err
}

// splitValues parses a -values list: comma-separated, each entry
// whitespace-trimmed (so "4, 8, 16" works like -ids does), empty entries
// rejected rather than silently swept as bogus parameter values.
func splitValues(s string) ([]string, error) {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, v := range parts {
		v = strings.TrimSpace(v)
		if v == "" {
			return nil, fmt.Errorf("sweep: empty value in -values %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}

// writeJSON emits v as indented JSON terminated by a newline.
func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
