package cli

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/store"
)

// seedTrendStore appends n snapshots of one workload whose mflops metric
// climbs 100, 110, 120, ... so table deltas are exact.
func seedTrendStore(t *testing.T, dir string, n int) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 8, 3, 9, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		r := harness.Result{WorkloadID: "bench/t", Text: "x\n"}
		r.AddMetric("mflops", 100+10*float64(i), "MFLOPS")
		meta := store.Meta{Commit: strings.Repeat("a", 39) + string(rune('0'+i)), Time: base.Add(time.Duration(i) * time.Minute)}
		if _, err := st.Append(meta, []store.Entry{{Result: r}}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTrendTable: the human-readable series is oldest-first with deltas
// against the previous point of the same metric.
func TestTrendTable(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	seedTrendStore(t, dir, 3)
	out, errOut, code := run(t, "trend", "bench/t", "-store", dir)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, errOut)
	}
	for _, want := range []string{"trend: bench/t", "mflops", "100 MFLOPS", "120 MFLOPS", "+10.0%", "+9.1%", "aaaaaaa"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if i, j := strings.Index(out, "100 MFLOPS"), strings.Index(out, "120 MFLOPS"); i > j {
		t.Errorf("series not oldest-first:\n%s", out)
	}
}

// TestTrendJSONMatchesEndpointShape: -json emits []store.TrendPoint, the
// same payload /api/v1/trend serves, so scripts can consume either.
func TestTrendJSONMatchesEndpointShape(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	seedTrendStore(t, dir, 2)
	out, errOut, code := run(t, "trend", "-json", "bench/t", "-metric", "mflops", "-store", dir)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, errOut)
	}
	var points []store.TrendPoint
	if err := json.Unmarshal([]byte(out), &points); err != nil {
		t.Fatalf("decode: %v\n%s", err, out)
	}
	if len(points) != 2 || points[0].Value != 100 || points[1].Value != 110 {
		t.Fatalf("points = %+v", points)
	}
	if points[0].Metric != "mflops" || points[0].Unit != "MFLOPS" {
		t.Fatalf("metric metadata lost: %+v", points[0])
	}
}

// TestTrendErrors: a missing workload or an empty store fail with a
// message naming the problem, and flag/positional interleaving works.
func TestTrendErrors(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	if _, _, code := run(t, "trend", "bench/t", "-store", dir); code == 0 {
		t.Error("empty store: want nonzero exit")
	}
	seedTrendStore(t, dir, 1)
	if _, errOut, code := run(t, "trend", "no/such", "-store", dir); code == 0 || !strings.Contains(errOut, "no/such") {
		t.Errorf("unknown workload: exit %d, stderr %q", code, errOut)
	}
	if _, _, code := run(t, "trend", "-store", dir); code == 0 {
		t.Error("missing workload ID: want nonzero exit")
	}
	if _, _, code := run(t, "trend", "-store", dir, "bench/t"); code != 0 {
		t.Error("flags before the positional ID must parse")
	}
}
