package cli

// HTTP tests for `hpcc serve`: the handlers run under httptest against a
// private registry, so run counts are observable and nothing leaks into
// the Default registry the shard/fleet byte-identity tests re-exec.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/store"
)

// serveTestServer builds a server over its own registry: a deterministic
// counting workload plus a failing one. calls observes how many times
// the counting workload actually ran.
func serveTestServer(t *testing.T, cacheDir, storeDir string) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	var calls atomic.Int32
	reg := harness.NewRegistry()
	mustRegister := func(s harness.Spec) {
		t.Helper()
		if err := reg.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	mustRegister(harness.Spec{
		WorkloadID: "srv/count",
		Desc:       "counts runs",
		Version:    "v1",
		Space:      []harness.Param{{Name: "n", Default: "1"}},
		RunFunc: func(_ context.Context, p harness.Params) (harness.Result, error) {
			calls.Add(1)
			n, err := p.Int("n", 1)
			if err != nil {
				return harness.Result{}, err
			}
			r := harness.Result{WorkloadID: "srv/count", Text: fmt.Sprintf("n=%d quick=%v\n", n, p.Quick)}
			r.AddMetric("n", float64(n), "")
			return r, nil
		},
	})
	mustRegister(harness.Spec{
		WorkloadID: "srv/fail",
		Desc:       "always fails",
		Version:    "v1",
		RunFunc: func(context.Context, harness.Params) (harness.Result, error) {
			return harness.Result{}, fmt.Errorf("deliberate failure")
		},
	})
	srv := &server{
		reg:      reg,
		storeDir: storeDir,
		stderr:   io.Discard,
		newExec: func() (harness.Executor, error) {
			return harness.LocalExecutor{Workers: 2}, nil
		},
	}
	if cacheDir != "" {
		cf := cacheFlags{dir: cacheDir}
		c, err := cf.open()
		if err != nil {
			t.Fatal(err)
		}
		srv.cache = c
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts, &calls
}

func postJSON(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func getURL(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func TestServeRunMissThenHit(t *testing.T) {
	ts, calls := serveTestServer(t, t.TempDir(), "")
	resp, body := postJSON(t, ts.URL+"/api/v1/run", `{"id":"srv/count","values":{"n":"7"}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold run: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-HPCC-Cache"); got != "miss" {
		t.Fatalf("cold run cache header %q, want miss", got)
	}
	var res harness.Result
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatalf("run response is not a Result: %v\n%s", err, body)
	}
	if res.Text != "n=7 quick=false\n" {
		t.Fatalf("wrong result text %q", res.Text)
	}

	resp2, body2 := postJSON(t, ts.URL+"/api/v1/run", `{"id":"srv/count","values":{"n":"7"}}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm run: %d %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get("X-HPCC-Cache"); got != "hit" {
		t.Fatalf("warm run cache header %q, want hit", got)
	}
	if body2 != body {
		t.Fatalf("cached response differs from computed:\n%s\n---\n%s", body2, body)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("workload ran %d times, want 1 (second response from cache)", got)
	}
}

func TestServeRunWithoutCacheBypasses(t *testing.T) {
	ts, calls := serveTestServer(t, "", "")
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/api/v1/run", `{"id":"srv/count"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: %d %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-HPCC-Cache"); got != "bypass" {
			t.Fatalf("run %d cache header %q, want bypass", i, got)
		}
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("uncached workload ran %d times, want 2", got)
	}
}

func TestServeConcurrentIdenticalRunsCoalesce(t *testing.T) {
	ts, calls := serveTestServer(t, t.TempDir(), "")
	const n = 8
	var wg sync.WaitGroup
	codes := make([]int, n)
	bodies := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/api/v1/run", `{"id":"srv/count","values":{"n":"3"}}`)
			codes[i], bodies[i] = resp.StatusCode, body
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: %d %s", i, codes[i], bodies[i])
		}
		if bodies[i] != bodies[0] {
			t.Fatalf("request %d body differs from request 0", i)
		}
	}
	// The flight coalesces whatever overlaps and the cache covers the
	// rest, so the workload itself must have run exactly once.
	if got := calls.Load(); got != 1 {
		t.Fatalf("workload ran %d times under %d identical requests, want 1", got, n)
	}
}

func TestServeRunMalformedIs400(t *testing.T) {
	ts, _ := serveTestServer(t, "", "")
	for name, body := range map[string]string{
		"garbage":       `{not json`,
		"unknown-field": `{"id":"srv/count","bogus":true}`,
		"trailing":      `{"id":"srv/count"} {"again":1}`,
		"missing-id":    `{}`,
	} {
		resp, out := postJSON(t, ts.URL+"/api/v1/run", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, resp.StatusCode, out)
		}
		if !strings.Contains(resp.Header.Get("Content-Type"), "application/json") {
			t.Errorf("%s: error content-type %q", name, resp.Header.Get("Content-Type"))
		}
	}
}

func TestServeRunUnknownWorkloadIs404(t *testing.T) {
	ts, _ := serveTestServer(t, "", "")
	resp, _ := postJSON(t, ts.URL+"/api/v1/run", `{"id":"srv/nope"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestServeRunWorkloadErrorIs500(t *testing.T) {
	ts, _ := serveTestServer(t, "", "")
	resp, body := postJSON(t, ts.URL+"/api/v1/run", `{"id":"srv/fail"}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(body, "deliberate failure") {
		t.Fatalf("error body hides the cause: %s", body)
	}
}

func TestServeRunWrongMethodIs405(t *testing.T) {
	ts, _ := serveTestServer(t, "", "")
	resp, _ := getURL(t, ts.URL+"/api/v1/run")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET run status %d, want 405", resp.StatusCode)
	}
}

func TestServeSweepPortfolioAndCacheTally(t *testing.T) {
	ts, calls := serveTestServer(t, t.TempDir(), "")
	body := `{"id":"srv/count","param":"n","values":["2","4","6"]}`
	resp, out := postJSON(t, ts.URL+"/api/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold sweep: %d %s", resp.StatusCode, out)
	}
	if got := resp.Header.Get("X-HPCC-Cache"); got != "hits=0 misses=3" {
		t.Fatalf("cold sweep tally %q", got)
	}
	var results []harness.Result
	if err := json.Unmarshal([]byte(out), &results); err != nil || len(results) != 3 {
		t.Fatalf("sweep response: %v (%d results)\n%s", err, len(results), out)
	}
	if results[1].Text != "n=4 quick=false\n" {
		t.Fatalf("sweep point order wrong: %q", results[1].Text)
	}
	resp2, out2 := postJSON(t, ts.URL+"/api/v1/sweep", body)
	if got := resp2.Header.Get("X-HPCC-Cache"); got != "hits=3 misses=0" {
		t.Fatalf("warm sweep tally %q", got)
	}
	if out2 != out {
		t.Fatal("warm sweep body differs from cold")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("sweep ran the workload %d times, want 3", got)
	}
}

func TestServeSweepByIDs(t *testing.T) {
	ts, _ := serveTestServer(t, "", "")
	resp, out := postJSON(t, ts.URL+"/api/v1/sweep", `{"ids":["srv/count","srv/count"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d %s", resp.StatusCode, out)
	}
	var results []harness.Result
	if err := json.Unmarshal([]byte(out), &results); err != nil || len(results) != 2 {
		t.Fatalf("sweep response: %v\n%s", err, out)
	}
}

func TestServeSweepBadRequests(t *testing.T) {
	ts, _ := serveTestServer(t, "", "")
	for name, tc := range map[string]struct {
		body string
		want int
	}{
		"param-without-values": {`{"id":"srv/count","param":"n"}`, http.StatusBadRequest},
		"id-without-param":     {`{"id":"srv/count"}`, http.StatusBadRequest},
		"unknown-id":           {`{"ids":["srv/nope"]}`, http.StatusNotFound},
		"workload-error":       {`{"ids":["srv/fail"]}`, http.StatusInternalServerError},
	} {
		resp, out := postJSON(t, ts.URL+"/api/v1/sweep", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", name, resp.StatusCode, tc.want, out)
		}
	}
}

func TestServeWorkloadsAndHealth(t *testing.T) {
	ts, _ := serveTestServer(t, "", "")
	resp, out := getURL(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || out != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, out)
	}
	resp, out = getURL(t, ts.URL+"/api/v1/workloads")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("workloads: %d", resp.StatusCode)
	}
	var entries []struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(out), &entries); err != nil || len(entries) != 2 {
		t.Fatalf("workloads response: %v\n%s", err, out)
	}
}

func TestServeTrend(t *testing.T) {
	storeDir := t.TempDir()
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		r := harness.Result{WorkloadID: "srv/count", Text: "x\n"}
		r.AddMetric("n", float64(i+1), "")
		if _, err := st.Append(store.Meta{Commit: "aaaa111" + fmt.Sprint(i)},
			[]store.Entry{{Params: harness.Params{}, Result: r}}); err != nil {
			t.Fatal(err)
		}
	}
	ts, _ := serveTestServer(t, "", storeDir)
	resp, out := getURL(t, ts.URL+"/api/v1/trend?workload=srv/count&metric=n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trend: %d %s", resp.StatusCode, out)
	}
	var points []store.TrendPoint
	if err := json.Unmarshal([]byte(out), &points); err != nil || len(points) != 2 {
		t.Fatalf("trend response: %v\n%s", err, out)
	}
	if points[0].Value != 1 || points[1].Value != 2 {
		t.Fatalf("trend not oldest-first: %+v", points)
	}
	if resp, out := getURL(t, ts.URL+"/api/v1/trend?workload=srv/nope&metric=n"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown workload trend: %d %s", resp.StatusCode, out)
	}
	if resp, _ := getURL(t, ts.URL+"/api/v1/trend"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing workload param: %d", resp.StatusCode)
	}
}

func TestServeTrendWithoutStoreIs503(t *testing.T) {
	ts, _ := serveTestServer(t, "", "")
	resp, out := getURL(t, ts.URL+"/api/v1/trend?workload=srv/count")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("trend without -store: %d %s", resp.StatusCode, out)
	}
	if !strings.Contains(out, "-store") {
		t.Fatalf("503 body does not say how to fix it: %s", out)
	}
}

func TestServeTrendMissingStoreIs404(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "never-created")
	ts, _ := serveTestServer(t, "", missing)
	resp, out := getURL(t, ts.URL+"/api/v1/trend?workload=srv/count")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trend against a missing store: %d %s, want 404", resp.StatusCode, out)
	}
	if !strings.Contains(out, "does not exist") {
		t.Fatalf("404 body does not explain the missing store: %s", out)
	}
}

// TestServeCommandListensAndAnswers drives the real subcommand: flag
// parsing, listener setup, the listening banner, request service, and
// graceful shutdown on context cancellation.
func TestServeCommandListensAndAnswers(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	var out bytes.Buffer
	lockedOut := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return out.Write(p)
	})
	done := make(chan int, 1)
	go func() {
		done <- MainContext(ctx, []string{"serve", "-addr", "127.0.0.1:0"}, lockedOut, io.Discard)
	}()
	base := awaitBanner(t, &mu, &out, "hpcc serve: listening on ")
	resp, body := getURL(t, strings.TrimSpace(base)+"/healthz")
	if resp.StatusCode != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthz over the real command: %d %q", resp.StatusCode, body)
	}
	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("serve exit code %d after graceful shutdown", code)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not shut down on cancellation")
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// awaitBanner polls a mutex-guarded buffer until the given prefix line
// appears, returning the rest of that line (an address or URL).
func awaitBanner(t *testing.T, mu *sync.Mutex, buf *bytes.Buffer, prefix string) string {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		s := buf.String()
		mu.Unlock()
		if i := strings.Index(s, prefix); i >= 0 {
			line := s[i+len(prefix):]
			if j := strings.IndexByte(line, '\n'); j >= 0 {
				return line[:j]
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("banner %q never appeared", prefix)
	return ""
}
