package cli

// Tests for the -budget flag: an expired budget fails run/sweep/report
// with an error that names the budget and still wraps
// context.DeadlineExceeded, and serve validates its admission flags at
// startup.

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestBudgetExplainWrapsOnlyDeadlineExpiry(t *testing.T) {
	bf := budgetFlags{d: time.Second}
	err := bf.explain(fmt.Errorf("sweep: %w", context.DeadlineExceeded))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("explain broke the DeadlineExceeded chain: %v", err)
	}
	if !strings.Contains(err.Error(), "budget 1s exhausted") {
		t.Fatalf("explain does not name the budget: %v", err)
	}
	plain := errors.New("kernel exploded")
	if got := bf.explain(plain); got != plain {
		t.Fatalf("non-deadline error rewritten: %v", got)
	}
	if got := (&budgetFlags{}).explain(fmt.Errorf("x: %w", context.DeadlineExceeded)); !errors.Is(got, context.DeadlineExceeded) ||
		strings.Contains(got.Error(), "budget") {
		t.Fatalf("no-budget explain touched the error: %v", got)
	}
}

func TestBudgetExpiryFailsRunSweepReport(t *testing.T) {
	for _, args := range [][]string{
		{"run", "E1", "-budget", "1ns"},
		{"sweep", "-ids", "E1", "-quick", "-budget", "1ns"},
		{"report", "-quick", "-budget", "1ns"},
	} {
		_, errOut, code := run(t, args...)
		if code == 0 {
			t.Errorf("%v: exhausted budget exited 0", args)
			continue
		}
		if !strings.Contains(errOut, "budget 1ns exhausted") {
			t.Errorf("%v: error does not name the budget: %s", args, errOut)
		}
		if !strings.Contains(errOut, "deadline exceeded") {
			t.Errorf("%v: the deadline cause is hidden: %s", args, errOut)
		}
	}
}

func TestBudgetGenerousEnoughSucceeds(t *testing.T) {
	out, errOut, code := run(t, "run", "E1", "-budget", "5m")
	if code != 0 {
		t.Fatalf("run with a generous budget failed (%d): %s", code, errOut)
	}
	plain, _, code := run(t, "run", "E1")
	if code != 0 {
		t.Fatal("plain run failed")
	}
	if out != plain {
		t.Fatal("-budget changed the output of a run that fit inside it")
	}
}

func TestServeValidatesAdmissionFlagsAtStartup(t *testing.T) {
	for name, tc := range map[string]struct {
		args []string
		want string
	}{
		"bad-jobs":   {[]string{"serve", "-j", "0"}, "-j must be at least 1"},
		"bad-pool":   {[]string{"serve", "-pool", "0"}, "-pool must be at least 1"},
		"bad-queue":  {[]string{"serve", "-queue", "-1"}, "-queue must be non-negative"},
		"bad-remote": {[]string{"serve", "-remote", "a,,b"}, "empty address"},
	} {
		_, errOut, code := run(t, tc.args...)
		if code == 0 {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(errOut, tc.want) {
			t.Errorf("%s: error missing %q: %s", name, tc.want, errOut)
		}
	}
}

func TestTrendMissingStoreIsDistinctFromEmptyStore(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "never-created")
	_, errOut, code := run(t, "trend", "E1", "-store", missing)
	if code == 0 {
		t.Fatal("trend against a missing store exited 0")
	}
	if !strings.Contains(errOut, "store directory does not exist") {
		t.Fatalf("missing-store error unclear: %s", errOut)
	}

	empty := t.TempDir() // exists, holds no snapshots
	_, errOut, code = run(t, "trend", "E1", "-store", empty)
	if code == 0 {
		t.Fatal("trend against an empty store exited 0")
	}
	if !strings.Contains(errOut, "no snapshots") || strings.Contains(errOut, "does not exist") {
		t.Fatalf("empty-store error conflated with missing-store: %s", errOut)
	}
}
