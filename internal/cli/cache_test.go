package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFlagValidationFailsFast: nonsensical -j/-shards/-cache values must
// error before any workload runs, with a message naming the flag.
func TestFlagValidationFailsFast(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"report-j-zero", []string{"report", "-quick", "-j", "0"}, "-j must be at least 1"},
		{"report-j-negative", []string{"report", "-quick", "-j", "-3"}, "-j must be at least 1"},
		{"sweep-j-zero", []string{"sweep", "-ids", "E1", "-j", "0"}, "-j must be at least 1"},
		{"report-shards-negative", []string{"report", "-quick", "-shards", "-1"}, "-shards must be non-negative"},
		{"sweep-shards-negative", []string{"sweep", "-ids", "E1", "-shards", "-2"}, "-shards must be non-negative"},
		{"run-cache-blank", []string{"run", "E1", "-cache", "   "}, "empty cache directory"},
		{"sweep-cache-blank", []string{"sweep", "-ids", "E1", "-cache", " "}, "empty cache directory"},
		{"report-cache-blank", []string{"report", "-quick", "-cache", " "}, "empty cache directory"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stdout, stderr, code := run(t, tc.args...)
			if code == 0 {
				t.Fatalf("%v exited 0, want failure", tc.args)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Fatalf("stderr %q does not mention %q", stderr, tc.want)
			}
			if stdout != "" {
				t.Fatalf("failed fast yet produced output %q", stdout)
			}
		})
	}
}

// TestReportCacheByteIdentity: cold-cache, warm-cache and uncached report
// output must be byte-identical, and the warm run must populate from disk
// (proved by the cache file count staying put).
func TestReportCacheByteIdentity(t *testing.T) {
	dir := t.TempDir()
	plain, _, code := run(t, "report", "-quick")
	if code != 0 {
		t.Fatalf("uncached report exit %d", code)
	}
	cold, _, code := run(t, "report", "-quick", "-cache", dir)
	if code != 0 {
		t.Fatalf("cold cached report exit %d", code)
	}
	entries := cacheFiles(t, dir)
	if entries != 7 {
		t.Fatalf("cold report left %d cache entries, want 7", entries)
	}
	warm, _, code := run(t, "report", "-quick", "-cache", dir)
	if code != 0 {
		t.Fatalf("warm cached report exit %d", code)
	}
	if cold != plain || warm != plain {
		t.Fatal("cached report output differs from uncached")
	}
	if n := cacheFiles(t, dir); n != entries {
		t.Fatalf("warm report changed the cache (%d -> %d entries)", entries, n)
	}
}

// TestRunCacheHitAndCorruptEntry: `hpcc run -cache` round-trips, and a
// corrupted entry degrades to a recompute that repairs it.
func TestRunCacheHitAndCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	cold, _, code := run(t, "run", "E3", "-cache", dir)
	if code != 0 {
		t.Fatalf("cold run exit %d", code)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("cache files %v (err %v), want exactly 1", files, err)
	}
	warm, _, code := run(t, "run", "E3", "-cache", dir)
	if code != 0 || warm != cold {
		t.Fatalf("warm run exit %d, identical=%v", code, warm == cold)
	}
	if err := os.WriteFile(files[0], []byte("truncated garbag"), 0o644); err != nil {
		t.Fatal(err)
	}
	repaired, _, code := run(t, "run", "E3", "-cache", dir)
	if code != 0 || repaired != cold {
		t.Fatalf("run with corrupt entry exit %d, identical=%v", code, repaired == cold)
	}
}

// TestReportSingleExperimentCached: the -e fast path caches too, and the
// cached bytes match the uncached single-exhibit output.
func TestReportSingleExperimentCached(t *testing.T) {
	dir := t.TempDir()
	plain, _, code := run(t, "report", "-e", "E3")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	cold, _, code := run(t, "report", "-e", "E3", "-cache", dir)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	warm, _, code := run(t, "report", "-e", "E3", "-cache", dir)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if cold != plain || warm != plain {
		t.Fatal("cached -e output differs from uncached")
	}
	if n := cacheFiles(t, dir); n != 1 {
		t.Fatalf("-e left %d cache entries, want 1", n)
	}
	// The full cached report must reuse the -e entry: same workload,
	// same params, same version.
	if _, _, code := run(t, "report", "-quick", "-cache", dir); code != 0 {
		t.Fatal("cached full report failed after -e priming")
	}
}

// TestSweepCacheParamPoints: parameter-sweep points cache per value, and
// a second sweep over a superset reuses the overlap.
func TestSweepCacheParamPoints(t *testing.T) {
	dir := t.TempDir()
	first, _, code := run(t, "sweep", "E3", "-quick", "-param", "unused", "-values", "a,b", "-cache", dir)
	if code != 0 {
		t.Fatalf("first sweep exit %d", code)
	}
	if n := cacheFiles(t, dir); n != 2 {
		t.Fatalf("first sweep left %d entries, want 2 (one per point)", n)
	}
	second, _, code := run(t, "sweep", "E3", "-quick", "-param", "unused", "-values", "a,b", "-cache", dir)
	if code != 0 || second != first {
		t.Fatalf("warm sweep exit %d, identical=%v", code, second == first)
	}
}

func cacheFiles(t *testing.T, dir string) int {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	return len(files)
}

// TestCachePruneCommand: `hpcc cache prune` evicts by size, reports what
// it did, and pruned points simply recompute on the next cached run.
func TestCachePruneCommand(t *testing.T) {
	dir := t.TempDir()
	if _, _, code := run(t, "report", "-quick", "-cache", dir); code != 0 {
		t.Fatal("priming report failed")
	}
	if n := cacheFiles(t, dir); n == 0 {
		t.Fatal("priming report cached nothing")
	}
	stdout, stderr, code := run(t, "cache", "prune", "-cache", dir, "-max-size", "1")
	if code != 0 {
		t.Fatalf("cache prune exit %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "evicted") {
		t.Fatalf("prune output %q does not report evictions", stdout)
	}
	if n := cacheFiles(t, dir); n != 0 {
		t.Fatalf("%d entries survived a 1-byte budget", n)
	}
	// The cache still works after being emptied.
	if _, _, code := run(t, "run", "E3", "-quick", "-cache", dir); code != 0 {
		t.Fatal("cached run after prune failed")
	}
	if n := cacheFiles(t, dir); n != 1 {
		t.Fatalf("recompute after prune left %d entries, want 1", n)
	}
}

// TestCachePruneValidation: prune without a bound, or an unknown cache
// subcommand, fails fast with a usable message.
func TestCachePruneValidation(t *testing.T) {
	if _, stderr, code := run(t, "cache", "prune", "-cache", t.TempDir()); code == 0 ||
		!strings.Contains(stderr, "-max-age and/or -max-size") {
		t.Fatalf("boundless prune: exit %d, stderr %q", code, stderr)
	}
	if _, stderr, code := run(t, "cache", "flush"); code == 0 ||
		!strings.Contains(stderr, "unknown subcommand") {
		t.Fatalf("unknown subcommand: exit %d, stderr %q", code, stderr)
	}
	if _, _, code := run(t, "cache"); code == 0 {
		t.Fatal("bare `hpcc cache` should fail with usage")
	}
}

// TestCachePruneMaxAgeKeepsFresh: a generous -max-age evicts nothing
// that was just written.
func TestCachePruneMaxAgeKeepsFresh(t *testing.T) {
	dir := t.TempDir()
	if _, _, code := run(t, "run", "E3", "-quick", "-cache", dir); code != 0 {
		t.Fatal("priming run failed")
	}
	if _, _, code := run(t, "cache", "prune", "-cache", dir, "-max-age", "24h"); code != 0 {
		t.Fatal("prune failed")
	}
	if n := cacheFiles(t, dir); n != 1 {
		t.Fatalf("fresh entry evicted by 24h age bound (%d left)", n)
	}
}
