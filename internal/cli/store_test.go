package cli

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/store"
)

// TestRunStoreSelfDiffExitsZero runs a cheap workload twice into a store
// and self-diffs: the gate must pass (exit 0) when nothing changed.
func TestRunStoreSelfDiffExitsZero(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	for i, commit := range []string{"aaaa1111aaaa", "bbbb2222bbbb"} {
		out, errOut, code := run(t, "run", "app/nas-ep", "-quick",
			"-store", dir, "-commit", commit)
		if code != 0 {
			t.Fatalf("run %d exit %d: %s", i, code, errOut)
		}
		if !strings.Contains(errOut, "stored 1 result(s)") {
			t.Fatalf("run %d: missing store confirmation on stderr: %q", i, errOut)
		}
		if strings.Contains(out, "stored") {
			t.Fatalf("run %d: store confirmation leaked to stdout: %q", i, out)
		}
	}
	out, errOut, code := run(t, "diff", "-store", dir, "latest~1", "latest")
	if code != 0 {
		t.Fatalf("self-diff exit %d, want 0\nstdout: %s\nstderr: %s", code, out, errOut)
	}
	if !strings.Contains(out, "0 regressed") {
		t.Errorf("self-diff summary missing '0 regressed': %s", out)
	}
	if !strings.Contains(out, "app/nas-ep") {
		t.Errorf("delta table missing the workload point: %s", out)
	}
}

// TestRunStoreOutputUnchanged: persisting must not perturb stdout — the
// rendered result is byte-identical with and without -store.
func TestRunStoreOutputUnchanged(t *testing.T) {
	plain, _, code := run(t, "run", "app/nas-ep", "-quick")
	if code != 0 {
		t.Fatalf("plain run exit %d", code)
	}
	dir := filepath.Join(t.TempDir(), "store")
	stored, _, code := run(t, "run", "app/nas-ep", "-quick", "-store", dir, "-commit", "cafe0000")
	if code != 0 {
		t.Fatalf("stored run exit %d", code)
	}
	if plain != stored {
		t.Error("run -store changed stdout")
	}
}

// seedSnapshots writes two fabricated snapshots whose gflops metric moves
// by the given factor, so threshold behavior is exact.
func seedSnapshots(t *testing.T, dir string, oldGflops, newGflops float64) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(v float64) harness.Result {
		r := harness.Result{WorkloadID: "bench/x", Text: "x\n"}
		r.AddMetric("gflops", v, "GFLOPS")
		return r
	}
	base := time.Date(2026, 7, 28, 9, 0, 0, 0, time.UTC)
	if _, err := st.Append(store.Meta{Commit: "old0000cafe", Time: base},
		[]store.Entry{{Result: mk(oldGflops)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(store.Meta{Commit: "new0000cafe", Time: base.Add(time.Minute)},
		[]store.Entry{{Result: mk(newGflops)}}); err != nil {
		t.Fatal(err)
	}
}

// TestDiffThresholdExitCodes: a drop past -threshold exits 1; the same
// drop under a looser threshold exits 0; an improvement exits 0.
func TestDiffThresholdExitCodes(t *testing.T) {
	cases := []struct {
		name       string
		oldV, newV float64
		threshold  string
		wantCode   int
	}{
		{"10% drop past 5% gate", 100, 90, "0.05", 1},
		{"10% drop under 20% gate", 100, 90, "0.20", 0},
		{"improvement never gates", 100, 150, "0.05", 0},
		{"wobble inside gate", 100, 99.9, "0.05", 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "store")
			seedSnapshots(t, dir, c.oldV, c.newV)
			out, errOut, code := run(t, "diff", "-store", dir, "-threshold", c.threshold)
			if code != c.wantCode {
				t.Fatalf("exit %d, want %d\nstdout: %s\nstderr: %s", code, c.wantCode, out, errOut)
			}
			if c.wantCode == 1 {
				if !strings.Contains(errOut, "regressed") {
					t.Errorf("regression exit without explanation on stderr: %q", errOut)
				}
				if !strings.Contains(out, "regressed") {
					t.Errorf("regressed row missing from table: %s", out)
				}
			}
		})
	}
}

// TestDiffRemovedMetricGates: when a tracked metric vanishes between
// snapshots, the gate must fail even though no compared metric regressed.
func TestDiffRemovedMetricGates(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	old := harness.Result{WorkloadID: "bench/x", Text: "x\n"}
	old.AddMetric("gflops", 10, "GFLOPS")
	neu := harness.Result{WorkloadID: "bench/x", Text: "x\n"}
	base := time.Date(2026, 7, 28, 9, 0, 0, 0, time.UTC)
	if _, err := st.Append(store.Meta{Time: base}, []store.Entry{{Result: old}}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(store.Meta{Time: base.Add(time.Minute)}, []store.Entry{{Result: neu}}); err != nil {
		t.Fatal(err)
	}
	out, errOut, code := run(t, "diff", "-store", dir)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s\nstderr: %s", code, out, errOut)
	}
	if !strings.Contains(errOut, "metric(s) removed") {
		t.Errorf("gate failure does not mention the removed metric: %q", errOut)
	}
	if !strings.Contains(out, "gflops") {
		t.Errorf("summary does not name the removed metric: %s", out)
	}
}

// TestDiffRemovedPointGates: a workload point that vanishes entirely
// between snapshots severs its whole longitudinal series — that must fail
// the gate just like a single removed metric does.
func TestDiffRemovedPointGates(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id string) harness.Result {
		r := harness.Result{WorkloadID: id, Text: "x\n"}
		r.AddMetric("gflops", 10, "GFLOPS")
		return r
	}
	base := time.Date(2026, 7, 28, 9, 0, 0, 0, time.UTC)
	if _, err := st.Append(store.Meta{Time: base},
		[]store.Entry{{Result: mk("bench/x")}, {Result: mk("bench/y")}}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(store.Meta{Time: base.Add(time.Minute)},
		[]store.Entry{{Result: mk("bench/x")}}); err != nil {
		t.Fatal(err)
	}
	_, errOut, code := run(t, "diff", "-store", dir)
	if code != 1 {
		t.Fatalf("exit %d, want 1: %s", code, errOut)
	}
	if !strings.Contains(errOut, "point(s) removed") {
		t.Errorf("gate failure does not mention the removed point: %q", errOut)
	}
}

// TestDiffFailingGateSkipsPrune: -prune must not delete the baseline
// snapshot that exhibits the regression — the evidence survives a failing
// gate, so the diff can be re-run and inspected.
func TestDiffFailingGateSkipsPrune(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	seedSnapshots(t, dir, 100, 50)
	_, _, code := run(t, "diff", "-store", dir, "-prune", "1")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	out, _, code := run(t, "diff", "-store", dir, "latest~1", "latest")
	if code != 1 || !strings.Contains(out, "regressed") {
		t.Fatalf("baseline snapshot was pruned despite the failing gate (exit %d):\n%s", code, out)
	}
}

// TestDiffJSON: -json emits a parseable DeltaReport and still gates.
func TestDiffJSON(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	seedSnapshots(t, dir, 100, 50)
	out, _, code := run(t, "diff", "-store", dir, "-json")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var d report.DeltaReport
	if err := json.Unmarshal([]byte(out), &d); err != nil {
		t.Fatalf("diff -json output is not a DeltaReport: %v\n%s", err, out)
	}
	if len(d.Rows) != 1 || d.Rows[0].Status != report.DeltaRegressed {
		t.Errorf("unexpected report: %+v", d)
	}
}

// TestDiffMissingStore: a diff against a store that was never written
// fails with guidance, not a panic or a silent pass.
func TestDiffMissingStore(t *testing.T) {
	_, errOut, code := run(t, "diff", "-store", filepath.Join(t.TempDir(), "nope"))
	if code == 0 {
		t.Fatal("diff on a missing store exited 0")
	}
	if !strings.Contains(errOut, "no snapshots") {
		t.Errorf("unhelpful error: %q", errOut)
	}
}

// TestStoreFlagValidation: -tag/-commit without -store, and reserved tag
// names, fail before any workload runs instead of being silently ignored.
func TestStoreFlagValidation(t *testing.T) {
	cases := [][]string{
		{"run", "app/nas-ep", "-quick", "-tag", "v2"},
		{"run", "app/nas-ep", "-quick", "-commit", "abcd1234"},
		{"sweep", "-ids", "app/nas-ep", "-quick", "-tag", "v2"},
		{"report", "-quick", "-tag", "v2"},
		{"run", "app/nas-ep", "-quick", "-store", "ignored", "-tag", "latest"},
		{"run", "app/nas-ep", "-quick", "-store", "ignored", "-tag", "latest~1"},
	}
	for _, args := range cases {
		out, errOut, code := run(t, args...)
		if code == 0 {
			t.Errorf("%v exited 0, want failure", args)
		}
		if out != "" {
			t.Errorf("%v produced output before failing validation: %q", args, out)
		}
		if !strings.Contains(errOut, "store") && !strings.Contains(errOut, "tag") {
			t.Errorf("%v: unhelpful error: %q", args, errOut)
		}
	}
}

// TestSweepStorePersistsPerPointParams: a -param sweep stores one record
// per point, each keyed by its own parameter value.
func TestSweepStorePersistsPerPointParams(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	_, errOut, code := run(t, "sweep", "app/nas-ep", "-quick",
		"-param", "procs", "-values", "4,16", "-store", dir, "-commit", "feed0000")
	if code != 0 {
		t.Fatalf("sweep exit %d: %s", code, errOut)
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := st.Resolve("latest")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Records) != 2 {
		t.Fatalf("stored %d records, want 2", len(snap.Records))
	}
	keys := map[string]bool{}
	for _, rec := range snap.Records {
		keys[rec.Key] = true
		if got := rec.Params.Value("procs", ""); got != "4" && got != "16" {
			t.Errorf("record params lost the sweep value: %+v", rec.Params)
		}
	}
	if len(keys) != 2 {
		t.Errorf("sweep points share a key; per-point params not persisted")
	}
}
