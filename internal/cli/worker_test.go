package cli

import (
	"os"
	"strings"
	"testing"
)

// TestMain lets this test binary stand in for the hpcc binary when a
// -shards sweep under test re-execs it: newExecutor marks worker
// children with workerEnv, so a marked invocation dispatches straight
// into the CLI (os.Args[1:] is ["worker"]) instead of running the test
// suite. This is exactly the re-exec path the real binary takes.
func TestMain(m *testing.M) {
	if os.Getenv(workerEnv) == "1" {
		os.Exit(Main(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

func TestSweepShardsByteIdenticalFullPortfolio(t *testing.T) {
	if testing.Short() {
		t.Skip("full-portfolio sweep in -short mode")
	}
	local, _, code := run(t, "sweep", "-quick")
	if code != 0 {
		t.Fatalf("local sweep exit %d", code)
	}
	for _, shards := range []string{"2", "4"} {
		sharded, errOut, code := run(t, "sweep", "-quick", "-shards", shards)
		if code != 0 {
			t.Fatalf("sweep -shards %s exit %d: %s", shards, code, errOut)
		}
		if sharded != local {
			t.Fatalf("sweep -shards %s output differs from the local pool", shards)
		}
	}
}

func TestSweepShardsParamValues(t *testing.T) {
	local, _, code := run(t, "sweep", "linpack/delta", "-quick",
		"-param", "nb", "-values", "8,32", "-j", "2")
	if code != 0 {
		t.Fatalf("local sweep exit %d", code)
	}
	sharded, errOut, code := run(t, "sweep", "linpack/delta", "-quick",
		"-param", "nb", "-values", "8,32", "-shards", "2")
	if code != 0 {
		t.Fatalf("sharded sweep exit %d: %s", code, errOut)
	}
	if sharded != local {
		t.Fatalf("sharded value sweep differs:\n%s\n---\n%s", sharded, local)
	}
}

func TestReportShardsByteIdentical(t *testing.T) {
	local, _, code := run(t, "report", "-quick", "-j", "4")
	if code != 0 {
		t.Fatalf("local report exit %d", code)
	}
	sharded, errOut, code := run(t, "report", "-quick", "-shards", "3")
	if code != 0 {
		t.Fatalf("report -shards exit %d: %s", code, errOut)
	}
	if sharded != local {
		t.Fatalf("report -shards output differs from the local pool")
	}
}

func TestSweepShardsJSONDecodes(t *testing.T) {
	local, _, code := run(t, "sweep", "-ids", "E1,app/nas-ep", "-quick", "-json")
	if code != 0 {
		t.Fatalf("local sweep exit %d", code)
	}
	sharded, errOut, code := run(t, "sweep", "-ids", "E1,app/nas-ep", "-quick", "-json", "-shards", "2")
	if code != 0 {
		t.Fatalf("sharded sweep exit %d: %s", code, errOut)
	}
	if sharded != local {
		t.Fatalf("sharded -json sweep differs:\n%s\n---\n%s", sharded, local)
	}
}

func TestWorkerRejectsArguments(t *testing.T) {
	_, errOut, code := run(t, "worker", "spurious")
	if code != 1 || !strings.Contains(errOut, "JSONL") {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
}

// Satellite regression: -values entries are trimmed like -ids entries,
// so "4, 8, 16" sweeps the numbers rather than " 8"-flavored bogus
// params; empty entries are rejected outright.
func TestSweepValuesTrimmed(t *testing.T) {
	tight, _, code := run(t, "sweep", "linpack/delta", "-quick",
		"-param", "nb", "-values", "8,32")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	spaced, errOut, code := run(t, "sweep", "linpack/delta", "-quick",
		"-param", "nb", "-values", " 8, 32 ")
	if code != 0 {
		t.Fatalf("spaced values exit %d: %s", code, errOut)
	}
	if spaced != tight {
		t.Fatalf("spaced -values output differs:\n%s\n---\n%s", spaced, tight)
	}
}

func TestSweepValuesRejectsEmptyEntries(t *testing.T) {
	for _, bad := range []string{"8,,32", "8, ,32", "8,32,"} {
		_, errOut, code := run(t, "sweep", "linpack/delta", "-quick",
			"-param", "nb", "-values", bad)
		if code != 1 || !strings.Contains(errOut, "empty value") {
			t.Fatalf("-values %q: exit %d, stderr %q", bad, code, errOut)
		}
	}
}

// Satellite regression: paramFlags.String used to join map entries in
// map iteration order, so -h output and flag defaults varied run to run.
func TestParamFlagsStringSorted(t *testing.T) {
	var p paramFlags
	for _, kv := range []string{"zeta=1", "alpha=2", "mid=3"} {
		if err := p.Set(kv); err != nil {
			t.Fatal(err)
		}
	}
	want := "alpha=2,mid=3,zeta=1"
	for i := 0; i < 20; i++ {
		if got := p.String(); got != want {
			t.Fatalf("String() = %q, want %q", got, want)
		}
	}
}

func TestShardsFlagShownInHelp(t *testing.T) {
	for _, cmd := range []string{"sweep", "report"} {
		_, errOut, code := run(t, cmd, "-h")
		if code != 0 {
			t.Fatalf("%s -h exit %d", cmd, code)
		}
		if !strings.Contains(errOut, "-shards") {
			t.Fatalf("%s -h does not document -shards:\n%s", cmd, errOut)
		}
	}
}
