// Package cli implements the hpcc command: one front door to every
// workload in the registry — the paper exhibits, the Grand Challenge
// kernels, the LINPACK and NREN experiments — plus the legacy
// single-purpose tools as subcommands.
//
//	hpcc report             # every exhibit, across host cores
//	hpcc list               # the workload catalog
//	hpcc run linpack/delta  # one workload
//	hpcc sweep -ids E1,E4   # a portfolio slice
//	hpcc sweep -shards 4    # the same sweep across 4 worker processes
//	hpcc worker             # shard child: JSONL jobs in, results out
//	hpcc diff latest~1 latest  # compare two stored snapshots
//	hpcc linpack -sweep nb  # the old linpack binary
//	hpcc nren -storm        # the old nrensim binary
//	hpcc delta              # the old deltasim binary
//	hpcc funding            # the old funding binary
//
// # How the pipeline hangs together
//
// Each workload package registers itself with repro/internal/harness at
// init time (the blank imports below pull every family in). The
// subcommands then only ever talk to the registry: list walks it, run
// looks one workload up, and report/sweep hand Jobs to a
// harness.Executor — the in-process pool (-j), or with -shards N a
// process-shard executor that re-execs this binary as N `hpcc worker`
// children and farms jobs to them over a JSONL stdin/stdout wire. Both
// executors assemble results in job order and stream each finished
// prefix as it completes, so output is byte-identical at any -j or
// -shards while long sweeps show progress. With -store, run/sweep/report
// additionally append their structured results to a repro/internal/store
// run store as one snapshot (keyed by workload ID + canonical params +
// commit), and diff resolves two snapshots by ref (latest, latest~N, a
// tag, a commit prefix, a run ID), renders a per-metric delta table via
// repro/internal/report, and exits non-zero when a metric regresses past
// -threshold — the CI gate.
package cli

import (
	"context"
	"fmt"
	"io"
	"strings"

	// Register every workload family with the default registry.
	_ "repro/internal/apps/cg"
	_ "repro/internal/apps/ep"
	_ "repro/internal/apps/nbody"
	_ "repro/internal/apps/shallow"
	_ "repro/internal/apps/stencil"
	_ "repro/internal/core"
	_ "repro/internal/linpack"
	_ "repro/internal/mesh"
	_ "repro/internal/micro"
	_ "repro/internal/nren"
)

// command is one hpcc subcommand.
type command struct {
	name    string
	summary string
	run     func(ctx context.Context, args []string, stdout, stderr io.Writer) error
}

func commands() []command {
	return []command{
		{"report", "regenerate every paper exhibit (parallel, deterministic output)", cmdReport},
		{"list", "list the registered workloads and their parameters", cmdList},
		{"run", "run one workload by ID", cmdRun},
		{"sweep", "run a set of workloads, or one workload over parameter values", cmdSweep},
		{"resume", "finish an interrupted -journal run/sweep/report from its checkpoint", cmdResume},
		{"worker", "serve sweep jobs from stdin as JSONL, or over TCP with -listen", cmdWorker},
		{"serve", "long-lived HTTP JSON API over run/sweep/report/trend", cmdServe},
		{"diff", "compare two stored snapshots and flag metric regressions", cmdDiff},
		{"trend", "print one workload metric across stored snapshots (CLI twin of /api/v1/trend)", cmdTrend},
		{"cache", "result-cache maintenance: prune entries by age/size", cmdCache},
		{"linpack", "LINPACK benchmark and parameter sweeps (legacy tool)", cmdLinpack},
		{"nren", "consortium network experiments (legacy tool)", cmdNren},
		{"delta", "Delta mesh interconnect characterization (legacy tool)", cmdDelta},
		{"funding", "federal HPCC budget tables and analytics (legacy tool)", cmdFunding},
	}
}

// Main dispatches the hpcc command line and returns the process exit code.
func Main(args []string, stdout, stderr io.Writer) int {
	return MainContext(context.Background(), args, stdout, stderr)
}

// MainContext is Main with a caller-supplied context, so tests and hosts
// can cancel long sweeps.
func MainContext(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 || args[0] == "help" || args[0] == "-h" || args[0] == "-help" || args[0] == "--help" {
		usage(stderr)
		if len(args) == 0 {
			return 2
		}
		return 0
	}
	name := args[0]
	for _, c := range commands() {
		if c.name == name {
			if err := c.run(ctx, args[1:], stdout, stderr); err != nil {
				fmt.Fprintln(stderr, "hpcc:", err)
				return 1
			}
			return 0
		}
	}
	fmt.Fprintf(stderr, "hpcc: unknown command %q\n\n", name)
	usage(stderr)
	return 2
}

func usage(w io.Writer) {
	var b strings.Builder
	b.WriteString("usage: hpcc <command> [flags]\n\ncommands:\n")
	for _, c := range commands() {
		fmt.Fprintf(&b, "  %-8s %s\n", c.name, c.summary)
	}
	b.WriteString("\nrun 'hpcc <command> -h' for command flags\n")
	io.WriteString(w, b.String())
}
