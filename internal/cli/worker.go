package cli

// Process-sharded and remote-fleet sweeps: the `hpcc worker` subcommand
// (stdin/stdout shard child, or with -listen a TCP fleet worker) and the
// -shards/-remote executor wiring used by sweep and report.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"

	"repro/internal/harness"
)

// workerEnv marks a process as a shard worker in its environment. The
// real hpcc binary dispatches on the "worker" argument alone; the marker
// is what lets a test binary hosting this package detect that it was
// re-exec'ed as a worker.
const workerEnv = "HPCC_WORKER_PROCESS"

func cmdWorker(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hpcc worker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", "", "serve jobs over TCP on this address (e.g. 127.0.0.1:7841) instead of stdin/stdout")
	drain := fs.Duration("drain", 0, "with -listen: on shutdown, let in-flight jobs finish for up to this long before closing connections (0 = close immediately)")
	var tf tokenFlags
	tf.register(fs)
	if err := fs.Parse(args); err != nil {
		return parseErr(err)
	}
	if fs.NArg() > 0 {
		return errors.New("worker: takes no arguments (jobs arrive as JSONL on stdin, or over TCP with -listen)")
	}
	if *listen == "" {
		return harness.ServeWorker(ctx, harness.Default, os.Stdin, stdout)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("worker: %w", err)
	}
	// The actual address matters when -listen used port 0 (tests).
	fmt.Fprintf(stdout, "hpcc worker: listening on %s\n", ln.Addr())
	srv := &harness.RemoteWorkerServer{Registry: harness.Default, Token: tf.token, DrainGrace: *drain, Stderr: stderr}
	if err := srv.Serve(ctx, ln); err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	return nil
}

// tokenFlags carries the shared fleet auth token, registered on every
// command that speaks the remote wire: worker (checks it at handshake),
// sweep/report/serve (send it when -remote is set). The default comes
// from HPCC_TOKEN so a fleet can be keyed once in the environment.
type tokenFlags struct{ token string }

func (tf *tokenFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&tf.token, "token", os.Getenv("HPCC_TOKEN"),
		"shared fleet auth token; both ends of a remote connection must present the same value (default $HPCC_TOKEN)")
}

// splitRemoteAddrs parses a -remote flag value: comma-separated
// host:port addresses, whitespace-trimmed, empties rejected.
func splitRemoteAddrs(s string) ([]string, error) {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, a := range parts {
		a = strings.TrimSpace(a)
		if a == "" {
			return nil, fmt.Errorf("-remote: empty address in %q", s)
		}
		out = append(out, a)
	}
	return out, nil
}

// validateExecutorConfig checks a -shards/-j/-remote combination without
// constructing an executor, so serve can fail a bad configuration at
// startup without building and discarding a live engine. Nonsensical
// counts fail here, before any workload runs: the executors would
// quietly reinterpret them (-j 0 as "one per core", negative -shards as
// "no sharding"), which hides typos like "-j $EMPTY_VAR".
func validateExecutorConfig(shards, jobs int, remote string) error {
	if jobs < 1 {
		return fmt.Errorf("-j must be at least 1 (got %d)", jobs)
	}
	if shards < 0 {
		return fmt.Errorf("-shards must be non-negative (got %d; 0 means the in-process pool)", shards)
	}
	if remote != "" {
		if shards > 0 {
			return errors.New("-remote and -shards are mutually exclusive (the fleet already is the sharding)")
		}
		if _, err := splitRemoteAddrs(remote); err != nil {
			return err
		}
	}
	return nil
}

// newExecutor picks the engine a sweep or report runs on: the in-process
// pool, (-shards > 0) that many child processes re-exec'ing this
// binary's worker subcommand, or (-remote) a fleet of `hpcc worker
// -listen` processes reached over TCP, authenticated with token when one
// is set.
//
// drain, when non-nil, is handed to executors that support graceful
// draining (the pool and -shards: dispatch stops when it fires,
// in-flight jobs finish). The second return says whether the chosen
// executor honors it — RemoteExecutor does not, so its callers skip the
// drain grace and cancel outright on a signal.
func newExecutor(shards, jobs int, remote, token string, drain <-chan struct{}, stderr io.Writer) (harness.Executor, bool, error) {
	if err := validateExecutorConfig(shards, jobs, remote); err != nil {
		return nil, false, err
	}
	if remote != "" {
		addrs, err := splitRemoteAddrs(remote)
		if err != nil {
			return nil, false, err
		}
		return &harness.RemoteExecutor{Addrs: addrs, Registry: harness.Default, Token: token, Stderr: stderr}, false, nil
	}
	if shards == 0 {
		return harness.LocalExecutor{Workers: jobs, Drain: drain}, true, nil
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, false, fmt.Errorf("shards: locate worker binary: %w", err)
	}
	return &harness.ShardExecutor{
		Shards: shards,
		Argv:   []string{exe, "worker"},
		Env:    []string{workerEnv + "=1"},
		Stderr: stderr,
		Drain:  drain,
	}, true, nil
}
