package cli

// Process-sharded sweeps: the `hpcc worker` subcommand (the child side
// of the harness JSONL wire protocol) and the -shards executor wiring
// used by sweep and report.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/harness"
)

// workerEnv marks a process as a shard worker in its environment. The
// real hpcc binary dispatches on the "worker" argument alone; the marker
// is what lets a test binary hosting this package detect that it was
// re-exec'ed as a worker.
const workerEnv = "HPCC_WORKER_PROCESS"

func cmdWorker(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hpcc worker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return parseErr(err)
	}
	if fs.NArg() > 0 {
		return errors.New("worker: takes no arguments (jobs arrive as JSONL on stdin)")
	}
	return harness.ServeWorker(ctx, harness.Default, os.Stdin, stdout)
}

// newExecutor picks the engine a sweep or report runs on: the in-process
// pool, or (-shards > 0) that many child processes re-exec'ing this
// binary's worker subcommand. Nonsensical counts fail here, before any
// workload runs: the executors would quietly reinterpret them (-j 0 as
// "one per core", negative -shards as "no sharding"), which hides typos
// like "-j $EMPTY_VAR".
func newExecutor(shards, jobs int, stderr io.Writer) (harness.Executor, error) {
	if jobs < 1 {
		return nil, fmt.Errorf("-j must be at least 1 (got %d)", jobs)
	}
	if shards < 0 {
		return nil, fmt.Errorf("-shards must be non-negative (got %d; 0 means the in-process pool)", shards)
	}
	if shards == 0 {
		return harness.LocalExecutor{Workers: jobs}, nil
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("shards: locate worker binary: %w", err)
	}
	return &harness.ShardExecutor{
		Shards: shards,
		Argv:   []string{exe, "worker"},
		Env:    []string{workerEnv + "=1"},
		Stderr: stderr,
	}, nil
}
