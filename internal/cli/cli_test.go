package cli

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
)

// run invokes the CLI and returns (stdout, stderr, exit code).
func run(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := Main(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestReportParallelByteIdentical(t *testing.T) {
	seq, _, code := run(t, "report", "-quick", "-j", "1")
	if code != 0 {
		t.Fatalf("sequential report exit %d", code)
	}
	par, _, code := run(t, "report", "-quick", "-j", "8")
	if code != 0 {
		t.Fatalf("parallel report exit %d", code)
	}
	if seq != par {
		t.Fatal("report -j 8 output differs from -j 1")
	}
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7"} {
		if !strings.Contains(seq, "=== "+id+":") {
			t.Fatalf("report missing %s", id)
		}
	}
}

func TestReportSingleExperimentMatchesCore(t *testing.T) {
	out, _, code := run(t, "report", "-e", "E1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	want, err := core.NewProgram().RunExperiment("E1")
	if err != nil {
		t.Fatal(err)
	}
	if out != want {
		t.Fatalf("CLI E1 differs from core.RunExperiment:\n%q\n%q", out, want)
	}
}

func TestListShowsEveryRegisteredWorkload(t *testing.T) {
	out, _, code := run(t, "list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range harness.IDs() {
		if !strings.Contains(out, id) {
			t.Fatalf("list missing %q", id)
		}
	}
	// The registry must hold the exhibits plus every ported family.
	for _, id := range []string{"E4", "app/cfd-stencil", "app/shallow-water", "app/nbody-ring",
		"app/nas-ep", "app/poisson-cg", "linpack/delta", "linpack/sweep-nb",
		"linpack/generations", "nren/storm", "nren/traffic", "mesh/saturation"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list missing expected workload %q", id)
		}
	}
}

func TestListJSONDecodes(t *testing.T) {
	out, _, code := run(t, "list", "-json")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	var entries []struct {
		ID          string `json:"id"`
		Description string `json:"description"`
	}
	if err := json.Unmarshal([]byte(out), &entries); err != nil {
		t.Fatalf("list -json invalid: %v", err)
	}
	if len(entries) != len(harness.IDs()) {
		t.Fatalf("list -json has %d entries, registry has %d", len(entries), len(harness.IDs()))
	}
}

func TestRunWorkloadBothArgOrders(t *testing.T) {
	a, _, code := run(t, "run", "app/poisson-cg", "-quick")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	b, _, code := run(t, "run", "-quick", "app/poisson-cg")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if a != b || !strings.Contains(a, "Poisson CG") {
		t.Fatalf("run outputs differ or wrong:\n%q\n%q", a, b)
	}
}

func TestRunJSONCarriesMetrics(t *testing.T) {
	out, _, code := run(t, "run", "app/nas-ep", "-quick", "-json")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	var res harness.Result
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("run -json invalid: %v", err)
	}
	if res.WorkloadID != "app/nas-ep" || len(res.Metrics) == 0 {
		t.Fatalf("unexpected result: %+v", res)
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	_, errOut, code := run(t, "run", "no/such-thing")
	if code != 1 || !strings.Contains(errOut, "no/such-thing") {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
}

func TestRunParamOverride(t *testing.T) {
	out, _, code := run(t, "run", "app/cfd-stencil", "-quick", "-p", "iters=3")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "Iterations") || !strings.Contains(out, "3") {
		t.Fatalf("override not applied:\n%s", out)
	}
}

func TestSweepParamValuesOrdered(t *testing.T) {
	out, _, code := run(t, "sweep", "linpack/delta", "-quick",
		"-param", "nb", "-values", "8,32", "-j", "2")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	i8 := strings.Index(out, "2048   8")
	i32 := strings.Index(out, "2048  32")
	if i8 < 0 || i32 < 0 || i8 > i32 {
		t.Fatalf("sweep points missing or out of order:\n%s", out)
	}
}

func TestSweepIDsSubset(t *testing.T) {
	out, _, code := run(t, "sweep", "-ids", "E1,nren/link-classes", "-quick")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "=== E1:") || !strings.Contains(out, "=== nren/link-classes:") {
		t.Fatalf("sweep -ids output wrong:\n%s", out)
	}
}

func TestLegacyFundingCSV(t *testing.T) {
	out, _, code := run(t, "funding", "-csv")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "DARPA,232.2,275.0") || !strings.Contains(out, "Total,654.8,802.9") {
		t.Fatalf("funding CSV wrong:\n%s", out)
	}
}

func TestLegacyLinpackQuickConfig(t *testing.T) {
	out, _, code := run(t, "linpack", "-n", "1024", "-pr", "2", "-pc", "4")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "1024") || !strings.Contains(out, "2x4") {
		t.Fatalf("linpack output wrong:\n%s", out)
	}
}

func TestLegacyDeltaSmallMesh(t *testing.T) {
	out, _, code := run(t, "delta", "-rows", "4", "-cols", "4", "-packets", "5")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "mesh 4x4, 16 nodes") {
		t.Fatalf("delta output wrong:\n%s", out)
	}
}

func TestLegacyNrenLinkClasses(t *testing.T) {
	out, _, code := run(t, "nren")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"CASA HIPPI/SONET", "Regional 56 kbps", "Caltech"} {
		if !strings.Contains(out, want) {
			t.Fatalf("nren output missing %q", want)
		}
	}
}

func TestUnknownCommandUsage(t *testing.T) {
	_, errOut, code := run(t, "frobnicate")
	if code != 2 || !strings.Contains(errOut, "usage: hpcc") {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	_, errOut, code = run(t)
	if code != 2 || !strings.Contains(errOut, "usage: hpcc") {
		t.Fatalf("no-args exit %d, stderr %q", code, errOut)
	}
}
