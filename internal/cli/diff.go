package cli

// Run-store wiring: the -store/-tag/-commit flags shared by run, sweep
// and report, plus the diff subcommand that compares two stored snapshots
// and gates CI on regressions.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os/exec"
	"strings"

	"repro/internal/store"
)

// storeFlags carries the result-persistence flags common to run, sweep
// and report. With -store unset, persistence is off and the commands
// behave exactly as before.
type storeFlags struct {
	dir    string
	tag    string
	commit string
}

func (sf *storeFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&sf.dir, "store", "", "append results to the run store in this directory (e.g. "+store.DefaultDir+")")
	fs.StringVar(&sf.tag, "tag", "", "label the stored snapshot so 'hpcc diff <tag>' can find it")
	fs.StringVar(&sf.commit, "commit", "", "commit hash recorded with the snapshot (default: git HEAD)")
}

// validate catches flag mistakes before the workloads run, when failing
// is still cheap: -tag/-commit without -store would otherwise be
// silently ignored, and a reserved tag would be unreachable by ref.
func (sf *storeFlags) validate() error {
	if sf.dir == "" {
		if sf.tag != "" || sf.commit != "" {
			return errors.New("-tag/-commit have no effect without -store")
		}
		return nil
	}
	return store.ValidateTag(sf.tag)
}

// persist appends entries as one snapshot when -store was given. The
// confirmation goes to stderr so stdout stays byte-identical with and
// without persistence.
func (sf *storeFlags) persist(ctx context.Context, entries []store.Entry, stderr io.Writer) error {
	if sf.dir == "" {
		return nil
	}
	if len(entries) == 0 {
		return nil
	}
	commit := sf.commit
	if commit == "" {
		commit = gitHead(ctx)
	}
	st, err := store.Open(sf.dir)
	if err != nil {
		return err
	}
	st.SetWarnWriter(stderr)
	runID, err := st.Append(store.Meta{Commit: commit, Tag: sf.tag}, entries)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "hpcc: stored %d result(s) in %s (snapshot %s)\n", len(entries), sf.dir, runID)
	return nil
}

// gitHead asks git for the current commit; "unknown" when the tree is not
// a git checkout or git is unavailable, so persistence still works there.
func gitHead(ctx context.Context) string {
	out, err := exec.CommandContext(ctx, "git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func cmdDiff(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hpcc diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("store", store.DefaultDir, "run store directory")
	threshold := fs.Float64("threshold", 0.05, "relative change (fraction) beyond which a metric regresses")
	jsonOut := fs.Bool("json", false, "emit the delta report as JSON")
	prune := fs.Int("prune", 0, "after diffing, keep only the newest N snapshots")
	// Accept refs and flags in any interleaving ("diff latest~1 latest
	// -json", "diff -json latest~1 latest", "diff -store d latest~1
	// latest -json") despite flag's stop-at-first-positional parsing:
	// alternate between peeling positional refs and parsing flag runs.
	var refs []string
	rest := args
	for {
		for len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
			refs = append(refs, rest[0])
			rest = rest[1:]
		}
		if len(rest) == 0 {
			break
		}
		if err := fs.Parse(rest); err != nil {
			return parseErr(err)
		}
		if len(fs.Args()) == len(rest) {
			// Nothing consumed (e.g. a bare "-"): the rest is positional.
			refs = append(refs, fs.Args()...)
			break
		}
		rest = fs.Args()
	}
	oldRef, newRef := "latest~1", "latest"
	switch len(refs) {
	case 0:
	case 1:
		oldRef = refs[0]
	case 2:
		oldRef, newRef = refs[0], refs[1]
	default:
		return errors.New("diff: want at most two refs (old new), e.g. 'hpcc diff latest~1 latest'")
	}

	st, err := store.Open(*dir)
	if err != nil {
		return err
	}
	st.SetWarnWriter(stderr)
	snaps, err := st.Snapshots()
	if err != nil {
		return err
	}
	if len(snaps) == 0 {
		return store.NoSnapshotsError(*dir)
	}
	oldSnap, err := store.Resolve(snaps, oldRef)
	if err != nil {
		return err
	}
	newSnap, err := store.Resolve(snaps, newRef)
	if err != nil {
		return err
	}
	d := store.Diff(oldSnap, newSnap, *threshold)

	if *jsonOut {
		s, err := d.JSON()
		if err != nil {
			return err
		}
		if _, err := io.WriteString(stdout, s); err != nil {
			return err
		}
	} else {
		if _, err := io.WriteString(stdout, d.Table().Render()); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(stdout, d.Summary()); err != nil {
			return err
		}
	}

	// Vanished metrics, vanished points and changed text exhibits break
	// the longitudinal series as surely as a slow metric, so they fail
	// the gate too (report.DeltaReport.Gates). A failing gate skips
	// -prune: the old snapshot is the evidence for the regression, and
	// deleting it would make the failure impossible to re-inspect.
	if d.Gates() {
		var clauses []string
		if n := len(d.Regressions()); n > 0 {
			clauses = append(clauses, fmt.Sprintf("%d metric(s) regressed past %.4g%%", n, *threshold*100))
		}
		if n := len(d.MetricsRemoved); n > 0 {
			clauses = append(clauses, fmt.Sprintf("%d metric(s) removed", n))
		}
		if n := len(d.Removed); n > 0 {
			clauses = append(clauses, fmt.Sprintf("%d point(s) removed", n))
		}
		if n := len(d.TextChanged); n > 0 {
			clauses = append(clauses, fmt.Sprintf("%d text exhibit(s) changed", n))
		}
		return errors.New("diff: " + strings.Join(clauses, ", "))
	}

	if *prune > 0 {
		removed, err := st.Prune(*prune)
		if err != nil {
			return err
		}
		if removed > 0 {
			fmt.Fprintf(stderr, "hpcc: pruned %d snapshot(s) from %s\n", removed, *dir)
		}
	}
	return nil
}
