package cli

// CLI-level tests for the remote fleet: `hpcc worker -listen` serving
// over TCP, and sweep/report -remote matching the local pool byte for
// byte. The workers run in-process via MainContext — same binary, same
// registry, exactly what a same-build fleet deployment looks like.

import (
	"bytes"
	"context"
	"io"
	"strings"
	"sync"
	"testing"
)

// startFleetWorker runs `hpcc worker -listen 127.0.0.1:0` (plus any
// extra flags, e.g. -token) on a goroutine and returns the address it
// bound. The worker stops with ctx.
func startFleetWorker(t *testing.T, ctx context.Context, extra ...string) string {
	t.Helper()
	var mu sync.Mutex
	var out bytes.Buffer
	locked := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return out.Write(p)
	})
	args := append([]string{"worker", "-listen", "127.0.0.1:0"}, extra...)
	go MainContext(ctx, args, locked, io.Discard)
	return awaitBanner(t, &mu, &out, "hpcc worker: listening on ")
}

func TestSweepRemoteFleetByteIdentical(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrs := startFleetWorker(t, ctx) + "," + startFleetWorker(t, ctx)

	local, _, code := run(t, "sweep", "-ids", "E1,E3,linpack/delta", "-quick")
	if code != 0 {
		t.Fatalf("local sweep exit %d", code)
	}
	remote, errOut, code := run(t, "sweep", "-ids", "E1,E3,linpack/delta", "-quick", "-remote", addrs)
	if code != 0 {
		t.Fatalf("remote sweep exit %d: %s", code, errOut)
	}
	if remote != local {
		t.Fatalf("sweep -remote output differs from the local pool:\n%s\n---\n%s", remote, local)
	}
}

func TestReportRemoteFleetByteIdentical(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addr := startFleetWorker(t, ctx)

	local, _, code := run(t, "report", "-quick", "-j", "4")
	if code != 0 {
		t.Fatalf("local report exit %d", code)
	}
	remote, errOut, code := run(t, "report", "-quick", "-remote", addr)
	if code != 0 {
		t.Fatalf("remote report exit %d: %s", code, errOut)
	}
	if remote != local {
		t.Fatal("report -remote output differs from the local pool")
	}
}

func TestRemoteAndShardsMutuallyExclusive(t *testing.T) {
	_, errOut, code := run(t, "sweep", "-ids", "E1", "-remote", "127.0.0.1:1", "-shards", "2")
	if code == 0 {
		t.Fatal("-remote with -shards accepted")
	}
	if !strings.Contains(errOut, "mutually exclusive") {
		t.Fatalf("unhelpful error: %s", errOut)
	}
}

func TestRemoteBadAddressListFailsFast(t *testing.T) {
	_, errOut, code := run(t, "sweep", "-ids", "E1", "-remote", "127.0.0.1:1,,127.0.0.1:2")
	if code == 0 {
		t.Fatal("empty address accepted")
	}
	if !strings.Contains(errOut, "empty address") {
		t.Fatalf("unhelpful error: %s", errOut)
	}
}

func TestFleetTokenMismatchFailsFast(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addr := startFleetWorker(t, ctx, "-token", "sesame")
	_, errOut, code := run(t, "sweep", "-ids", "E1", "-quick", "-remote", addr, "-token", "tahini")
	if code == 0 {
		t.Fatal("wrong fleet token accepted")
	}
	if !strings.Contains(errOut, "token mismatch") {
		t.Fatalf("mismatch error does not name the token: %s", errOut)
	}
}

func TestFleetTokenMatchByteIdentical(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addr := startFleetWorker(t, ctx, "-token", "sesame")
	local, _, code := run(t, "sweep", "-ids", "E1", "-quick")
	if code != 0 {
		t.Fatalf("local sweep exit %d", code)
	}
	remote, errOut, code := run(t, "sweep", "-ids", "E1", "-quick", "-remote", addr, "-token", "sesame")
	if code != 0 {
		t.Fatalf("tokened remote sweep exit %d: %s", code, errOut)
	}
	if remote != local {
		t.Fatal("tokened sweep output differs from the local pool")
	}
}

func TestWorkerListenRejectsPositionalArgs(t *testing.T) {
	_, errOut, code := run(t, "worker", "-listen", "127.0.0.1:0", "extra")
	if code == 0 {
		t.Fatal("worker with positional args accepted")
	}
	if !strings.Contains(errOut, "takes no arguments") {
		t.Fatalf("unhelpful error: %s", errOut)
	}
}
