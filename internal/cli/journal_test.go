package cli

// End-to-end crash-safety tests for the -journal/-resume flags and the
// resume subcommand: a journaled sweep that completes cleans up after
// itself, an interrupted one resumes byte-identically, and a journal
// from a different binary is refused.

import (
	"context"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/journal"
)

// sweepJobs mirrors the job list `hpcc sweep -ids <ids> -quick` builds.
func sweepJobs(t *testing.T, ids ...string) []harness.Job {
	t.Helper()
	var ws []harness.Workload
	for _, id := range ids {
		w, err := harness.Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	return harness.WorkloadJobs(ws, harness.Params{Quick: true})
}

// interruptedSweep fabricates the journal a killed `hpcc sweep -ids
// E1,E3 -quick -journal dir` leaves behind: header plus the first
// job's checkpoint.
func interruptedSweep(t *testing.T, dir string, jobs []harness.Job, nDone int) string {
	t.Helper()
	j, err := journal.Create(dir, journalHeader("sweep", jobs, false))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nDone; i++ {
		res, err := jobs[i].Workload.Run(context.Background(), jobs[i].Params)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Record(i, res); err != nil {
			t.Fatal(err)
		}
	}
	hash := j.Header().Hash
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return hash
}

func TestSweepJournalCompleteRunRemovesJournal(t *testing.T) {
	want, _, code := run(t, "sweep", "-ids", "E1,E3", "-quick")
	if code != 0 {
		t.Fatalf("plain sweep exit %d", code)
	}
	dir := t.TempDir()
	got, errOut, code := run(t, "sweep", "-ids", "E1,E3", "-quick", "-journal", dir)
	if code != 0 {
		t.Fatalf("journaled sweep exit %d: %s", code, errOut)
	}
	if got != want {
		t.Fatal("journaled sweep output differs from plain sweep")
	}
	if !strings.Contains(errOut, "journal complete; removed") {
		t.Fatalf("no cleanup note: %q", errOut)
	}
	paths, err := journal.List(dir)
	if err != nil || len(paths) != 0 {
		t.Fatalf("journal left behind after a clean run: %v, %v", paths, err)
	}
}

func TestSweepExistingJournalWithoutResumeRefused(t *testing.T) {
	dir := t.TempDir()
	interruptedSweep(t, dir, sweepJobs(t, "E1", "E3"), 1)
	_, errOut, code := run(t, "sweep", "-ids", "E1,E3", "-quick", "-journal", dir)
	if code == 0 {
		t.Fatal("sweep silently appended into an existing journal")
	}
	if !strings.Contains(errOut, "-resume") {
		t.Fatalf("refusal does not point at -resume: %q", errOut)
	}
}

func TestResumeFinishesInterruptedSweepByteIdentical(t *testing.T) {
	want, _, code := run(t, "sweep", "-ids", "E1,E3", "-quick")
	if code != 0 {
		t.Fatalf("plain sweep exit %d", code)
	}
	dir := t.TempDir()
	interruptedSweep(t, dir, sweepJobs(t, "E1", "E3"), 1)

	got, errOut, code := run(t, "resume", "-journal", dir)
	if code != 0 {
		t.Fatalf("resume exit %d: %s", code, errOut)
	}
	if got != want {
		t.Fatalf("resumed output differs from uninterrupted sweep:\n%q\n---\n%q", got, want)
	}
	if !strings.Contains(errOut, "1 of 2 job(s) already complete") {
		t.Fatalf("replay count missing: %q", errOut)
	}
	paths, _ := journal.List(dir)
	if len(paths) != 0 {
		t.Fatalf("journal left behind after a completed resume: %v", paths)
	}
}

func TestSweepResumeFlagContinuesInterrupted(t *testing.T) {
	want, _, code := run(t, "sweep", "-ids", "E1,E3", "-quick")
	if code != 0 {
		t.Fatalf("plain sweep exit %d", code)
	}
	dir := t.TempDir()
	interruptedSweep(t, dir, sweepJobs(t, "E1", "E3"), 1)
	got, errOut, code := run(t, "sweep", "-ids", "E1,E3", "-quick", "-journal", dir, "-resume")
	if code != 0 {
		t.Fatalf("sweep -resume exit %d: %s", code, errOut)
	}
	if got != want {
		t.Fatal("sweep -resume output differs from uninterrupted sweep")
	}
	if !strings.Contains(errOut, "resuming journal") {
		t.Fatalf("no resume note: %q", errOut)
	}
}

func TestResumePicksJournalByHashPrefix(t *testing.T) {
	dir := t.TempDir()
	hashA := interruptedSweep(t, dir, sweepJobs(t, "E1", "E3"), 1)
	interruptedSweep(t, dir, sweepJobs(t, "E1"), 0)

	// Ambiguous: two journals, no ref.
	_, errOut, code := run(t, "resume", "-journal", dir)
	if code == 0 || !strings.Contains(errOut, "hash prefix") {
		t.Fatalf("ambiguous resume not refused: exit %d, %q", code, errOut)
	}
	// A hash prefix disambiguates.
	_, errOut, code = run(t, "resume", "-journal", dir, hashA[:6])
	if code != 0 {
		t.Fatalf("resume by prefix exit %d: %s", code, errOut)
	}
	if !strings.Contains(errOut, hashA) {
		t.Fatalf("resume picked the wrong journal: %q", errOut)
	}
}

func TestResumeRefusesForeignFingerprint(t *testing.T) {
	dir := t.TempDir()
	h := journalHeader("sweep", sweepJobs(t, "E1"), false)
	h.Fingerprint = "00000000deadbeef" // a binary this process is not
	j, err := journal.Create(dir, h)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, errOut, code := run(t, "resume", "-journal", dir)
	if code == 0 {
		t.Fatal("journal from a foreign registry fingerprint resumed")
	}
	for _, want := range []string{"identity mismatch", "fingerprint"} {
		if !strings.Contains(errOut, want) {
			t.Fatalf("refusal missing %q: %q", want, errOut)
		}
	}
}

// TestSweepBudgetExpiryKeepsJournalThenResumeCompletes closes the
// crash-safety loop on the -budget satellite: an expired budget kills
// the sweep but keeps the journal with a resume hint, and the resume
// produces the uninterrupted bytes.
func TestSweepBudgetExpiryKeepsJournalThenResumeCompletes(t *testing.T) {
	want, _, code := run(t, "sweep", "-ids", "E1,E3", "-quick")
	if code != 0 {
		t.Fatalf("plain sweep exit %d", code)
	}
	dir := t.TempDir()
	_, errOut, code := run(t, "sweep", "-ids", "E1,E3", "-quick", "-journal", dir, "-budget", "1ns")
	if code == 0 {
		t.Fatal("1ns budget did not kill the sweep")
	}
	for _, note := range []string{"journal kept", "hpcc resume -journal", "budget"} {
		if !strings.Contains(errOut, note) {
			t.Fatalf("budget-killed sweep stderr missing %q: %q", note, errOut)
		}
	}
	got, errOut, code := run(t, "resume", "-journal", dir)
	if code != 0 {
		t.Fatalf("resume after budget kill exit %d: %s", code, errOut)
	}
	if got != want {
		t.Fatal("resume after budget kill differs from uninterrupted sweep")
	}
}
