package cli

// Tests for serve's admission control and per-request budget: the pool
// bound, the 429 + Retry-After backpressure answer, queue waits that
// respect the waiter's context, cache hits slipping past a saturated
// pool, and the -budget deadline reaching a running workload.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/harness"
)

// tryPostJSON is postJSON without *testing.T: safe to call from helper
// goroutines, where t.Fatal is off-limits.
func tryPostJSON(url, body string) (int, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

func TestAdmitterPoolAndQueueBounds(t *testing.T) {
	a := newAdmitter(1, 1)
	rel1, err := a.acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	// Second acquire queues; it must be waiting before the third arrives.
	queued := make(chan error, 1)
	go func() {
		rel2, err := a.acquire(context.Background())
		if err == nil {
			defer rel2()
		}
		queued <- err
	}()
	waitForQueued(t, a, 1)
	if _, err := a.acquire(context.Background()); !errors.Is(err, errServeSaturated) {
		t.Fatalf("over-capacity acquire: got %v, want errServeSaturated", err)
	}
	rel1()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire after release: %v", err)
	}
}

func TestAdmitterQueueWaitRespectsContext(t *testing.T) {
	a := newAdmitter(1, 4)
	rel, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.acquire(ctx)
		done <- err
	}()
	waitForQueued(t, a, 1)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter got %v, want context.Canceled in the chain", err)
		}
		if errors.Is(err, errServeSaturated) {
			t.Fatal("a cancelled wait is not saturation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}
	// The dead waiter must have left the queue: with the slot still held,
	// a fresh waiter fits within maxQueue even after 4 cancelled ones.
	if got := a.queued.Load(); got != 0 {
		t.Fatalf("queue count %d after the waiter left, want 0", got)
	}
}

func waitForQueued(t *testing.T, a *admitter, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for a.queued.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d waiters", n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestComputeErrorStatusMapping(t *testing.T) {
	rec := httptest.NewRecorder()
	computeError(rec, fmt.Errorf("sweep: %w", errServeSaturated), "x")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturation mapped to %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	for _, cause := range []error{context.Canceled, context.DeadlineExceeded} {
		rec := httptest.NewRecorder()
		computeError(rec, fmt.Errorf("wrapped: %w", cause), "x")
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("%v mapped to %d, want 503", cause, rec.Code)
		}
	}
	rec = httptest.NewRecorder()
	computeError(rec, errors.New("kernel exploded"), "x")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("plain error mapped to %d, want 500", rec.Code)
	}
}

// admissionTestServer builds a server with a real admitter plus two
// workloads: srv/block parks on the returned release channel (signalling
// entered first), srv/count is serveTestServer's counting workload.
func admissionTestServer(t *testing.T, pool, queue int, budget time.Duration, cacheDir string) (*httptest.Server, chan struct{}, chan struct{}, *atomic.Int32) {
	t.Helper()
	var calls atomic.Int32
	entered := make(chan struct{}, 64)
	release := make(chan struct{})
	reg := harness.NewRegistry()
	mustRegister := func(s harness.Spec) {
		t.Helper()
		if err := reg.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	mustRegister(harness.Spec{
		WorkloadID: "srv/block",
		Desc:       "parks until released",
		Version:    "v1",
		Space:      []harness.Param{{Name: "n", Default: "1"}},
		RunFunc: func(ctx context.Context, p harness.Params) (harness.Result, error) {
			entered <- struct{}{}
			select {
			case <-release:
				return harness.Result{WorkloadID: "srv/block", Text: "released\n"}, nil
			case <-ctx.Done():
				return harness.Result{}, ctx.Err()
			}
		},
	})
	mustRegister(harness.Spec{
		WorkloadID: "srv/count",
		Desc:       "counts runs",
		Version:    "v1",
		Space:      []harness.Param{{Name: "n", Default: "1"}},
		RunFunc: func(_ context.Context, p harness.Params) (harness.Result, error) {
			calls.Add(1)
			return harness.Result{WorkloadID: "srv/count", Text: "counted\n"}, nil
		},
	})
	srv := &server{
		reg:    reg,
		stderr: testDiscard(t),
		budget: budget,
		admit:  newAdmitter(pool, queue),
		newExec: func() (harness.Executor, error) {
			return harness.LocalExecutor{Workers: 2}, nil
		},
	}
	if cacheDir != "" {
		cf := cacheFlags{dir: cacheDir}
		c, err := cf.open()
		if err != nil {
			t.Fatal(err)
		}
		srv.cache = c
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(func() {
		select {
		case <-release:
		default:
			close(release)
		}
		ts.Close()
	})
	return ts, entered, release, &calls
}

// testDiscard is io.Discard; a named helper keeps the call sites honest
// about throwing server logs away on purpose.
func testDiscard(t *testing.T) interface{ Write([]byte) (int, error) } {
	t.Helper()
	return writerFunc(func(p []byte) (int, error) { return len(p), nil })
}

func TestServeSaturatedPoolIs429WithRetryAfter(t *testing.T) {
	ts, entered, release, _ := admissionTestServer(t, 1, 0, 0, "")
	// Fill the single slot with a parked run.
	blocked := make(chan int, 1)
	go func() {
		code, _ := tryPostJSON(ts.URL+"/api/v1/run", `{"id":"srv/block"}`)
		blocked <- code
	}()
	<-entered
	// Pool full, queue zero: the next compute request bounces.
	resp, body := postJSON(t, ts.URL+"/api/v1/run", `{"id":"srv/count"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated run: %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if !strings.Contains(resp.Header.Get("Content-Type"), "application/json") {
		t.Fatalf("429 content-type %q", resp.Header.Get("Content-Type"))
	}
	// Sweeps hit the same gate.
	resp, body = postJSON(t, ts.URL+"/api/v1/sweep", `{"ids":["srv/count"]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated sweep: %d %s, want 429", resp.StatusCode, body)
	}
	close(release)
	if code := <-blocked; code != http.StatusOK {
		t.Fatalf("parked request finished %d after release, want 200", code)
	}
	// Capacity is back.
	resp, body = postJSON(t, ts.URL+"/api/v1/run", `{"id":"srv/count"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release run: %d %s", resp.StatusCode, body)
	}
}

func TestServePoolNeverExceeded(t *testing.T) {
	const pool = 2
	ts, entered, release, _ := admissionTestServer(t, pool, 16, 0, "")
	// Ten distinct blocking runs (distinct flight keys via n) all admitted
	// or queued; only pool of them may be inside the workload at once.
	for i := 0; i < 10; i++ {
		body := fmt.Sprintf(`{"id":"srv/block","values":{"n":"%d"}}`, i)
		go tryPostJSON(ts.URL+"/api/v1/run", body)
	}
	deadline := time.After(10 * time.Second)
	for i := 0; i < pool; i++ {
		select {
		case <-entered:
		case <-deadline:
			t.Fatalf("only %d of %d pool slots ever started", i, pool)
		}
	}
	select {
	case <-entered:
		t.Fatalf("more than %d workloads ran concurrently", pool)
	case <-time.After(300 * time.Millisecond):
	}
	close(release)
}

func TestServeCacheHitBypassesSaturatedPool(t *testing.T) {
	ts, entered, release, calls := admissionTestServer(t, 1, 0, 0, t.TempDir())
	// Warm the cache while the pool is idle.
	resp, body := postJSON(t, ts.URL+"/api/v1/run", `{"id":"srv/count"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warming run: %d %s", resp.StatusCode, body)
	}
	// Saturate the pool...
	go tryPostJSON(ts.URL+"/api/v1/run", `{"id":"srv/block"}`)
	<-entered
	defer close(release)
	// ...and the cached answer must still flow: no compute, no 429.
	resp, body = postJSON(t, ts.URL+"/api/v1/run", `{"id":"srv/count"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache hit under saturation: %d %s, want 200", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-HPCC-Cache"); got != "hit" {
		t.Fatalf("cache header %q, want hit", got)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("workload ran %d times, want 1 (second answer from cache)", got)
	}
}

func TestServeBudgetDeadlineReachesTheWorkload(t *testing.T) {
	ts, entered, _, _ := admissionTestServer(t, 4, 16, 30*time.Millisecond, "")
	resp, body := postJSON(t, ts.URL+"/api/v1/run", `{"id":"srv/block"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("budget expiry: %d %s, want 503", resp.StatusCode, body)
	}
	if !strings.Contains(body, "deadline") {
		t.Fatalf("503 body does not name the deadline: %s", body)
	}
	select {
	case <-entered:
	default:
		t.Fatal("workload never started; the deadline should cut it mid-run, not pre-empt it")
	}
}
