package cli

// The pre-registry single-purpose binaries (linpack, nrensim, deltasim,
// funding) live on as subcommands with their original flags, so existing
// invocations keep working with "hpcc " prepended.

import (
	"context"
	"flag"
	"fmt"
	"io"
	"strconv"

	"repro/internal/agency"
	"repro/internal/funding"
	"repro/internal/harness"
	"repro/internal/linpack"
	"repro/internal/machine"
	"repro/internal/report"
)

func cmdLinpack(_ context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hpcc linpack", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 25000, "matrix order")
	nb := fs.Int("nb", 16, "block size")
	pr := fs.Int("pr", 16, "process grid rows")
	pc := fs.Int("pc", 33, "process grid columns")
	sweep := fs.String("sweep", "", "sweep a parameter: n, nb, grid or machines")
	real := fs.Bool("real", false, "real numerics (small N) with residual check")
	if err := fs.Parse(args); err != nil {
		return parseErr(err)
	}

	model := machine.Delta()
	base := linpack.Config{
		N: *n, NB: *nb, GridRows: *pr, GridCols: *pc,
		Model: model, Phantom: !*real, Seed: 1992,
	}

	switch *sweep {
	case "":
		out, err := linpack.Run(base)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, linpack.Table("LINPACK", []linpack.Point{{Config: base, Outcome: out}}).Render())
		if *real {
			fmt.Fprintf(stdout, "normalized residual: %.3f\n", out.Residual)
		}
	case "n":
		var cfgs []linpack.Config
		for _, nn := range []int{2000, 5000, 10000, 15000, 20000, 25000} {
			c := base
			c.N = nn
			cfgs = append(cfgs, c)
		}
		pts, err := linpack.Sweep(cfgs)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, linpack.Table("LINPACK GFLOPS vs matrix order (Delta model)", pts).Render())
	case "nb":
		var cfgs []linpack.Config
		for _, b := range []int{4, 8, 16, 32, 64} {
			c := base
			c.NB = b
			cfgs = append(cfgs, c)
		}
		pts, err := linpack.Sweep(cfgs)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, linpack.Table("LINPACK GFLOPS vs block size (Delta model)", pts).Render())
	case "grid":
		var cfgs []linpack.Config
		for _, g := range [][2]int{{1, 528}, {2, 264}, {4, 132}, {8, 66}, {16, 33}, {22, 24}} {
			c := base
			c.GridRows, c.GridCols = g[0], g[1]
			cfgs = append(cfgs, c)
		}
		pts, err := linpack.Sweep(cfgs)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, linpack.Table("LINPACK GFLOPS vs process grid shape (Delta model)", pts).Render())
	case "machines":
		pts, err := linpack.GenerationSweep(8192, *nb, 1992)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, linpack.Table("LINPACK N=8192 across the DARPA machine series", pts).Render())
	default:
		return fmt.Errorf("unknown sweep %q (want n, nb, grid or machines)", *sweep)
	}
	return nil
}

// runRegistered runs a registry workload with the given overrides and
// writes its rendered text — the legacy commands are thin veneers over
// the same workloads the registry serves.
func runRegistered(ctx context.Context, stdout io.Writer, id string, values map[string]string) error {
	w, err := harness.Lookup(id)
	if err != nil {
		return err
	}
	res, err := w.Run(ctx, harness.Params{Values: values})
	if err != nil {
		return err
	}
	_, err = io.WriteString(stdout, res.Text)
	return err
}

func cmdNren(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hpcc nren", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bytes := fs.Float64("bytes", 10e6, "reference transfer size in bytes")
	storm := fs.Bool("storm", false, "run all-pairs concurrent transfers")
	if err := fs.Parse(args); err != nil {
		return parseErr(err)
	}

	vals := map[string]string{"bytes": strconv.FormatFloat(*bytes, 'g', -1, 64)}
	if err := runRegistered(ctx, stdout, "nren/link-classes", vals); err != nil {
		return err
	}
	fmt.Fprintln(stdout)
	if err := runRegistered(ctx, stdout, "nren/transfer-matrix", vals); err != nil {
		return err
	}
	if !*storm {
		return nil
	}
	fmt.Fprintln(stdout)
	return runRegistered(ctx, stdout, "nren/storm", vals)
}

func cmdDelta(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hpcc delta", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rows := fs.Int("rows", 16, "mesh rows")
	cols := fs.Int("cols", 33, "mesh columns")
	pattern := fs.String("pattern", "uniform", "traffic pattern: uniform, transpose, hotspot, neighbor")
	bytes := fs.Int("bytes", 1024, "packet size")
	packets := fs.Int("packets", 50, "packets per node")
	if err := fs.Parse(args); err != nil {
		return parseErr(err)
	}

	return runRegistered(ctx, stdout, "mesh/saturation", map[string]string{
		"rows":    strconv.Itoa(*rows),
		"cols":    strconv.Itoa(*cols),
		"pattern": *pattern,
		"bytes":   strconv.Itoa(*bytes),
		"packets": strconv.Itoa(*packets),
	})
}

func cmdFunding(_ context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hpcc funding", flag.ContinueOnError)
	fs.SetOutput(stderr)
	csv := fs.Bool("csv", false, "emit the funding table as CSV")
	jsonOut := fs.Bool("json", false, "emit the funding table as JSON")
	if err := fs.Parse(args); err != nil {
		return parseErr(err)
	}

	if *csv {
		_, err := io.WriteString(stdout, funding.Table().CSV())
		return err
	}
	if *jsonOut {
		s, err := funding.Table().JSON()
		if err != nil {
			return err
		}
		_, err = io.WriteString(stdout, s)
		return err
	}
	fmt.Fprint(stdout, funding.Table().Render())
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, funding.GrowthTable().Render())
	fmt.Fprintln(stdout)

	lines := funding.FY9293()
	labels := make([]string, len(lines))
	vals := make([]float64, len(lines))
	for i, l := range lines {
		labels[i] = l.Agency
		vals[i] = l.FY93
	}
	fmt.Fprint(stdout, report.BarChart("FY 1993 request ($M)", labels, vals, 40))
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, agency.Matrix().Render())
	fmt.Fprintln(stdout)
	fmt.Fprintln(stdout, "Program goals:")
	for i, g := range agency.Goals() {
		fmt.Fprintf(stdout, "  %d. %s\n", i+1, g)
	}
	return nil
}
