package cli

// The pre-registry single-purpose binaries (linpack, nrensim, deltasim,
// funding) live on as subcommands with their original flags, so existing
// invocations keep working with "hpcc " prepended.

import (
	"context"
	"flag"
	"fmt"
	"io"
	"strconv"

	"repro/internal/agency"
	"repro/internal/cache"
	"repro/internal/funding"
	"repro/internal/harness"
	"repro/internal/linpack"
	"repro/internal/machine"
	"repro/internal/report"
)

func cmdLinpack(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hpcc linpack", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 25000, "matrix order")
	nb := fs.Int("nb", 16, "block size")
	pr := fs.Int("pr", 16, "process grid rows")
	pc := fs.Int("pc", 33, "process grid columns")
	sweep := fs.String("sweep", "", "sweep a parameter: n, nb, grid or machines")
	real := fs.Bool("real", false, "real numerics (small N) with residual check")
	var xf collectivesFlags
	xf.register(fs)
	var ssf simShardsFlags
	ssf.register(fs)
	var cf cacheFlags
	cf.register(fs)
	if err := fs.Parse(args); err != nil {
		return parseErr(err)
	}
	if err := xf.apply(); err != nil {
		return err
	}
	if err := ssf.apply(); err != nil {
		return err
	}
	resultCache, err := cf.open()
	if err != nil {
		return err
	}

	// The real-numerics run is the one path the registry does not serve
	// (workloads are phantom-mode); it stays direct and uncached.
	if *real {
		if *sweep != "" {
			return fmt.Errorf("linpack: -real does not combine with -sweep")
		}
		base := linpack.Config{
			N: *n, NB: *nb, GridRows: *pr, GridCols: *pc,
			Model: machine.Delta(), Phantom: false, Seed: 1992,
		}
		out, err := linpack.Run(base)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, linpack.Table("LINPACK", []linpack.Point{{Config: base, Outcome: out}}).Render())
		fmt.Fprintf(stdout, "normalized residual: %.3f\n", out.Residual)
		return nil
	}

	// Phantom runs are veneers over the registry workloads (same configs,
	// same rendered tables), so -cache serves repeats from disk exactly
	// as it does for run/sweep/report.
	vals := map[string]string{
		"n":  strconv.Itoa(*n),
		"nb": strconv.Itoa(*nb),
		"pr": strconv.Itoa(*pr),
		"pc": strconv.Itoa(*pc),
	}
	var id string
	switch *sweep {
	case "":
		id = "linpack/delta"
	case "n":
		id = "linpack/sweep-n"
		delete(vals, "n") // the sweep supplies the orders
	case "nb":
		id = "linpack/sweep-nb"
		delete(vals, "nb") // the sweep supplies the block sizes
	case "grid":
		id = "linpack/sweep-grid"
		delete(vals, "pr") // the sweep supplies the grids
		delete(vals, "pc")
	case "machines":
		id = "linpack/generations"
		vals = map[string]string{"n": "8192", "nb": strconv.Itoa(*nb)}
	default:
		return fmt.Errorf("unknown sweep %q (want n, nb, grid or machines)", *sweep)
	}
	return runRegisteredCached(ctx, resultCache, stdout, stderr, id, vals)
}

// runRegisteredCached runs a registry workload with the given overrides
// through the result cache (nil cache = plain run) and writes its
// rendered text — the legacy commands are thin veneers over the same
// workloads the registry serves, so -cache behaves exactly as it does on
// run/sweep/report.
func runRegisteredCached(ctx context.Context, c *cache.Cache, stdout, stderr io.Writer, id string, values map[string]string) error {
	w, err := harness.Lookup(id)
	if err != nil {
		return err
	}
	res, err := runCached(ctx, c, w, harness.Params{Values: values}, stderr)
	if err != nil {
		return err
	}
	_, err = io.WriteString(stdout, res.Text)
	return err
}

func cmdNren(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hpcc nren", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bytes := fs.Float64("bytes", 10e6, "reference transfer size in bytes")
	storm := fs.Bool("storm", false, "run all-pairs concurrent transfers")
	var cf cacheFlags
	cf.register(fs)
	if err := fs.Parse(args); err != nil {
		return parseErr(err)
	}
	resultCache, err := cf.open()
	if err != nil {
		return err
	}

	vals := map[string]string{"bytes": strconv.FormatFloat(*bytes, 'g', -1, 64)}
	if err := runRegisteredCached(ctx, resultCache, stdout, stderr, "nren/link-classes", vals); err != nil {
		return err
	}
	fmt.Fprintln(stdout)
	if err := runRegisteredCached(ctx, resultCache, stdout, stderr, "nren/transfer-matrix", vals); err != nil {
		return err
	}
	if !*storm {
		return nil
	}
	fmt.Fprintln(stdout)
	return runRegisteredCached(ctx, resultCache, stdout, stderr, "nren/storm", vals)
}

func cmdDelta(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hpcc delta", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rows := fs.Int("rows", 16, "mesh rows")
	cols := fs.Int("cols", 33, "mesh columns")
	pattern := fs.String("pattern", "uniform", "traffic pattern: uniform, transpose, hotspot, neighbor")
	bytes := fs.Int("bytes", 1024, "packet size")
	packets := fs.Int("packets", 50, "packets per node")
	var cf cacheFlags
	cf.register(fs)
	if err := fs.Parse(args); err != nil {
		return parseErr(err)
	}
	resultCache, err := cf.open()
	if err != nil {
		return err
	}

	return runRegisteredCached(ctx, resultCache, stdout, stderr, "mesh/saturation", map[string]string{
		"rows":    strconv.Itoa(*rows),
		"cols":    strconv.Itoa(*cols),
		"pattern": *pattern,
		"bytes":   strconv.Itoa(*bytes),
		"packets": strconv.Itoa(*packets),
	})
}

func cmdFunding(_ context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hpcc funding", flag.ContinueOnError)
	fs.SetOutput(stderr)
	csv := fs.Bool("csv", false, "emit the funding table as CSV")
	jsonOut := fs.Bool("json", false, "emit the funding table as JSON")
	if err := fs.Parse(args); err != nil {
		return parseErr(err)
	}

	if *csv {
		_, err := io.WriteString(stdout, funding.Table().CSV())
		return err
	}
	if *jsonOut {
		s, err := funding.Table().JSON()
		if err != nil {
			return err
		}
		_, err = io.WriteString(stdout, s)
		return err
	}
	fmt.Fprint(stdout, funding.Table().Render())
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, funding.GrowthTable().Render())
	fmt.Fprintln(stdout)

	lines := funding.FY9293()
	labels := make([]string, len(lines))
	vals := make([]float64, len(lines))
	for i, l := range lines {
		labels[i] = l.Agency
		vals[i] = l.FY93
	}
	fmt.Fprint(stdout, report.BarChart("FY 1993 request ($M)", labels, vals, 40))
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, agency.Matrix().Render())
	fmt.Fprintln(stdout)
	fmt.Fprintln(stdout, "Program goals:")
	for i, g := range agency.Goals() {
		fmt.Fprintf(stdout, "  %d. %s\n", i+1, g)
	}
	return nil
}
