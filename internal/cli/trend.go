package cli

// The `hpcc trend` subcommand: the CLI twin of serve's /api/v1/trend.
// It walks every snapshot in the run store oldest→newest and prints one
// workload metric as a longitudinal series, so "did E4 get slower over
// the last ten commits" is answerable without standing up the HTTP
// server. -json emits exactly the endpoint's payload shape
// ([]store.TrendPoint), so scripts can consume either source.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/report"
	"repro/internal/store"
)

func cmdTrend(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hpcc trend", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("store", store.DefaultDir, "run store directory")
	metric := fs.String("metric", "", "metric name (default: the workload's headline metric)")
	jsonOut := fs.Bool("json", false, "emit the series as JSON ([]TrendPoint, the /api/v1/trend payload)")
	// Accept the workload ID and flags in any interleaving, like diff.
	var ids []string
	rest := args
	for {
		for len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
			ids = append(ids, rest[0])
			rest = rest[1:]
		}
		if len(rest) == 0 {
			break
		}
		if err := fs.Parse(rest); err != nil {
			return parseErr(err)
		}
		if len(fs.Args()) == len(rest) {
			ids = append(ids, fs.Args()...)
			break
		}
		rest = fs.Args()
	}
	if len(ids) != 1 {
		return errors.New("trend: want exactly one workload ID, e.g. 'hpcc trend E4 -metric mflops'")
	}
	workload := ids[0]

	st, err := store.Open(*dir)
	if err != nil {
		return err
	}
	st.SetWarnWriter(stderr)
	// A store that was never created gets the typed ErrNoStore, distinct
	// from "exists but holds no snapshots" below.
	if err := st.Check(); err != nil {
		return err
	}
	snaps, err := st.Snapshots()
	if err != nil {
		return err
	}
	if len(snaps) == 0 {
		return store.NoSnapshotsError(*dir)
	}
	points, err := store.Trend(snaps, workload, *metric)
	if err != nil {
		return err
	}
	if *jsonOut {
		return writeJSON(stdout, points)
	}
	_, err = io.WriteString(stdout, trendTable(workload, points).Render())
	return err
}

// trendTable renders the series with a Δ% column against the previous
// point of the same (metric, params) series, so interleaved parameter
// sweeps don't produce nonsense deltas.
func trendTable(workload string, points []store.TrendPoint) *report.Table {
	t := report.NewTable("trend: "+workload, "RUN", "TAG", "COMMIT", "TIME", "PARAMS", "METRIC", "VALUE", "Δ%")
	t.Aligns = []report.Align{report.Left, report.Left, report.Left, report.Left, report.Left, report.Left, report.Right, report.Right}
	prev := make(map[string]float64)
	for _, p := range points {
		key := p.Metric + "\x00" + p.ParamsKey
		delta := ""
		if last, ok := prev[key]; ok && last != 0 {
			delta = fmt.Sprintf("%+.1f%%", (p.Value-last)/last*100)
		}
		prev[key] = p.Value
		val := strconv.FormatFloat(p.Value, 'g', -1, 64)
		if p.Unit != "" {
			val += " " + p.Unit
		}
		t.AddRow(p.RunID, p.Tag, shortCommit(p.Commit), p.Time, p.ParamsKey, p.Metric, val, delta)
	}
	return t
}

// shortCommit abbreviates full hashes the way git log does; tags like
// "unknown" pass through whole.
func shortCommit(c string) string {
	if len(c) >= 40 {
		return c[:7]
	}
	return c
}
