package cli

// Crash-safe sweep wiring: the -journal/-resume flags shared by run,
// sweep and report, the -drain graceful-shutdown grace period, and the
// `hpcc resume` subcommand that finishes an interrupted journaled
// invocation. The journal itself lives in repro/internal/journal; the
// checkpointing executor in repro/internal/harness.JournalingExecutor.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/nx"
)

// journalFlags carries the crash-safety flags common to run, sweep and
// report. With -journal unset the commands behave exactly as before.
type journalFlags struct {
	dir    string
	resume bool
	jnl    *journal.Journal
}

func (jf *journalFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&jf.dir, "journal", "",
		"checkpoint each completed job to a crash-safe journal in this directory; finish an interrupted invocation with -resume or 'hpcc resume'")
	fs.BoolVar(&jf.resume, "resume", false,
		"with -journal: if a journal for this exact invocation exists, replay its completed jobs and run only the remainder")
}

func (jf *journalFlags) validate() error {
	if jf.resume && jf.dir == "" {
		return errors.New("-resume needs -journal <dir>")
	}
	return nil
}

// journalHeader snapshots the identity of one invocation: the job list
// plus every knob that affects the bytes a job computes. The registry
// fingerprint and the nx collective/shard configuration are read from
// the live process, so apply() calls must precede this.
func journalHeader(mode string, jobs []harness.Job, jsonOut bool) journal.Header {
	hj := make([]journal.Job, len(jobs))
	for i, j := range jobs {
		id := ""
		if j.Workload != nil {
			id = j.Workload.ID()
		}
		hj[i] = journal.Job{WorkloadID: id, Params: j.Params}
	}
	return journal.Header{
		Mode:        mode,
		Fingerprint: harness.Default.Fingerprint(),
		Collectives: nx.DefaultCollectives().String(),
		SimShards:   nx.DefaultShards(),
		JSON:        jsonOut,
		Jobs:        hj,
		Time:        time.Now().UTC(),
	}
}

// open starts (or with -resume, reopens) the journal for this
// invocation and returns the already-completed results to replay. A
// no-op returning nil without -journal. An existing journal without
// -resume is an error — silently appending a second run into it could
// interleave two attempts' results.
func (jf *journalFlags) open(mode string, jobs []harness.Job, jsonOut bool, stderr io.Writer) (map[int]harness.Result, error) {
	if jf.dir == "" {
		return nil, nil
	}
	h := journalHeader(mode, jobs, jsonOut)
	path := journal.Path(jf.dir, h.Identity())
	if jf.resume {
		j, _, done, err := journal.Open(path, stderr)
		if err == nil {
			fmt.Fprintf(stderr, "hpcc: resuming journal %s: %d of %d job(s) already complete\n", path, len(done), len(jobs))
			jf.jnl = j
			return done, nil
		}
		if !errors.Is(err, fs.ErrNotExist) {
			return nil, err
		}
		fmt.Fprintf(stderr, "hpcc: no journal for this invocation in %s; starting fresh\n", jf.dir)
	}
	j, err := journal.Create(jf.dir, h)
	if err != nil {
		if errors.Is(err, journal.ErrExists) {
			return nil, fmt.Errorf("%w; pass -resume to continue it, or remove the file", err)
		}
		return nil, err
	}
	jf.jnl = j
	return nil, nil
}

// wrap layers the checkpointing executor onto ex; a no-op without an
// open journal.
func (jf *journalFlags) wrap(ex harness.Executor, done map[int]harness.Result) harness.Executor {
	if jf.jnl == nil {
		return ex
	}
	return &harness.JournalingExecutor{Inner: ex, Sink: jf.jnl, Done: done}
}

// finish closes the journal out: a clean run removes it (the checkpoint
// served its purpose), a failed or interrupted one keeps it and prints
// the resume command.
func (jf *journalFlags) finish(runErr error, stderr io.Writer) {
	if jf.jnl == nil {
		return
	}
	j := jf.jnl
	jf.jnl = nil
	if runErr == nil {
		if err := j.Remove(); err != nil {
			fmt.Fprintf(stderr, "hpcc: %v\n", err)
			return
		}
		fmt.Fprintf(stderr, "hpcc: journal complete; removed %s\n", j.Path())
		return
	}
	j.Close()
	fmt.Fprintf(stderr, "hpcc: journal kept at %s; resume with: hpcc resume -journal %s %s\n",
		j.Path(), jf.dir, j.Header().Hash)
}

// drainFlags carries the -drain graceful-shutdown grace period shared
// by sweep, report and resume: after SIGINT/SIGTERM, dispatch stops
// immediately but in-flight jobs get up to this long to finish, so
// their results still journal and persist.
type drainFlags struct{ grace time.Duration }

func (df *drainFlags) register(fs *flag.FlagSet) {
	fs.DurationVar(&df.grace, "drain", 5*time.Second,
		"on SIGINT/SIGTERM, let in-flight jobs finish for up to this long before hard-cancelling (0 = cancel immediately)")
}

// wrap derives the context jobs run under. drains says whether the
// chosen executor honors a drain channel (the in-process pool and
// -shards do; -remote cancels outright) — without it, grace would leave
// a remote sweep running ungoverned after the signal.
func (df *drainFlags) wrap(ctx context.Context, drains bool) (context.Context, context.CancelFunc) {
	if !drains || df.grace <= 0 {
		return context.WithCancel(ctx)
	}
	return harness.WithDrain(ctx, df.grace)
}

// persistableErr reports whether a failed sweep's completed prefix is
// still worth persisting to the run store: a graceful drain, a
// cancellation or budget expiry, or a contained panic all leave a
// trustworthy prefix of real results, where an ordinary workload error
// means the invocation's output is simply wrong.
func persistableErr(err error) bool {
	if errors.Is(err, harness.ErrDrained) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var je *harness.JobError
	return errors.As(err, &je) && je.Panic
}

// persistPrefix writes the completed prefix of an interrupted sweep to
// the run store (a no-op without -store). The context is detached from
// cancellation: the whole point is persisting after ctx died.
func (sf *storeFlags) persistPrefix(ctx context.Context, results []harness.Result, params func(int) harness.Params, stderr io.Writer) {
	if len(results) == 0 {
		return
	}
	if err := sf.persistResults(context.WithoutCancel(ctx), results, params, stderr); err != nil {
		fmt.Fprintf(stderr, "hpcc: persisting completed prefix: %v\n", err)
	}
}

func cmdResume(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hpcc resume", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("journal", "", "journal directory the interrupted invocation was writing (required)")
	jobs := fs.Int("j", harness.DefaultWorkers(), "concurrent workers (output is identical for any value)")
	shards := fs.Int("shards", 0, "fan the remaining jobs out to N hpcc worker processes")
	remote := fs.String("remote", "", "fan the remaining jobs out to hpcc worker -listen fleet at these comma-separated addresses")
	var sf storeFlags
	sf.register(fs)
	var cf cacheFlags
	cf.register(fs)
	var tf tokenFlags
	tf.register(fs)
	var bf budgetFlags
	bf.register(fs)
	var df drainFlags
	df.register(fs)
	// Accept both "resume <hash> [flags]" and "resume [flags] <hash>".
	ref, rest := splitLeadingID(args)
	if err := fs.Parse(rest); err != nil {
		return parseErr(err)
	}
	if ref == "" && fs.NArg() == 1 {
		ref = fs.Arg(0)
	} else if fs.NArg() > 0 {
		return errors.New("resume: want at most one journal hash (prefix)")
	}
	if *dir == "" {
		return errors.New("resume: -journal <dir> is required")
	}
	if err := sf.validate(); err != nil {
		return err
	}
	path, err := pickJournal(*dir, ref)
	if err != nil {
		return err
	}
	j, h, done, err := journal.Open(path, stderr)
	if err != nil {
		return err
	}
	// The journal is internally consistent (Open verified its hash);
	// now it must also match *this* binary. A journal written by a
	// different registry would replay results the current code could
	// never have computed.
	if fp := harness.Default.Fingerprint(); h.Fingerprint != fp {
		j.Close()
		return fmt.Errorf("%w: journal %s was written by registry fingerprint %s, this binary is %s (results would not be comparable; rerun instead of resuming)",
			journal.ErrIdentityMismatch, path, h.Fingerprint, fp)
	}
	// Re-apply the execution configuration the interrupted invocation
	// ran under, so the remainder computes identical bytes.
	if err := (&collectivesFlags{mode: h.Collectives}).apply(); err != nil {
		j.Close()
		return err
	}
	if err := (&simShardsFlags{n: h.SimShards}).apply(); err != nil {
		j.Close()
		return err
	}
	jobList := make([]harness.Job, len(h.Jobs))
	for i, hj := range h.Jobs {
		w, lerr := harness.Lookup(hj.WorkloadID)
		if lerr != nil {
			j.Close()
			return lerr
		}
		jobList[i] = harness.Job{Workload: w, Params: hj.Params}
	}
	resultCache, err := cf.open()
	if err != nil {
		j.Close()
		return err
	}
	fmt.Fprintf(stderr, "hpcc: resuming %s %s: %d of %d job(s) already complete\n", h.Mode, h.Hash, len(done), len(jobList))

	inner, drains, err := newExecutor(*shards, *jobs, *remote, tf.token, ctx.Done(), stderr)
	if err != nil {
		j.Close()
		return err
	}
	jf := &journalFlags{dir: *dir, jnl: j}
	ex := jf.wrap(wrapExecutor(inner, resultCache), done)

	jobCtx, stopGrace := df.wrap(ctx, drains)
	defer stopGrace()
	runBase, cancelBudget := bf.apply(jobCtx)
	defer cancelBudget()
	runCtx, cancelRun := context.WithCancel(runBase)
	defer cancelRun()

	// Stream text output exactly as the interrupted command would have:
	// replayed results print first, then the live remainder as its
	// prefix completes — byte-identical to an uninterrupted run.
	jsonOut := h.JSON
	emit, emitErr := streamEmitter(&jsonOut, cancelRun, func(r harness.Result) error {
		switch h.Mode {
		case "report":
			return core.WriteResult(stdout, r)
		case "run":
			_, werr := io.WriteString(stdout, r.Text)
			return werr
		default:
			return writeSweepResult(stdout, r)
		}
	})
	results, err := ex.Execute(runCtx, jobList, emit)
	if werr := *emitErr; werr != nil {
		jf.finish(werr, stderr)
		return werr
	}
	if err != nil {
		if persistableErr(err) {
			sf.persistPrefix(ctx, results, func(i int) harness.Params { return jobList[i].Params }, stderr)
		}
		jf.finish(err, stderr)
		return bf.explain(err)
	}
	if jsonOut {
		// `run -json` prints one object, the portfolio modes an array.
		if h.Mode == "run" && len(results) == 1 {
			if err := writeResult(stdout, results[0], true); err != nil {
				jf.finish(err, stderr)
				return err
			}
		} else if err := writeJSON(stdout, results); err != nil {
			jf.finish(err, stderr)
			return err
		}
	}
	jf.finish(nil, stderr)
	return sf.persistResults(ctx, results, func(i int) harness.Params { return jobList[i].Params }, stderr)
}

// pickJournal resolves a journal reference (an identity-hash prefix, or
// empty when the directory holds exactly one journal) to a file path.
func pickJournal(dir, ref string) (string, error) {
	paths, err := journal.List(dir)
	if err != nil {
		return "", err
	}
	if ref != "" {
		var matches []string
		for _, p := range paths {
			if strings.HasPrefix(stem(p), ref) {
				matches = append(matches, p)
			}
		}
		paths = matches
	}
	switch len(paths) {
	case 0:
		if ref != "" {
			return "", fmt.Errorf("resume: no journal matching %q in %s", ref, dir)
		}
		return "", fmt.Errorf("resume: no journals in %s", dir)
	case 1:
		return paths[0], nil
	}
	stems := make([]string, len(paths))
	for i, p := range paths {
		stems[i] = stem(p)
	}
	return "", fmt.Errorf("resume: %d journals in %s (%s); pass a hash prefix to pick one",
		len(paths), dir, strings.Join(stems, ", "))
}

func stem(path string) string {
	return strings.TrimSuffix(filepath.Base(path), ".jsonl")
}
