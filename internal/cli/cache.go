package cli

// Result-cache wiring: the -cache flag shared by run, sweep and report.
// With -cache unset the commands behave exactly as before; with it, jobs
// whose (workload, canonical params, kernel version) triple has been run
// before are served from disk through harness.CachingExecutor, and output
// stays byte-identical either way.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/harness"
)

// cacheFlags carries the result-cache flag common to run, sweep and
// report.
type cacheFlags struct {
	dir string
}

func (cf *cacheFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&cf.dir, "cache", "", "serve repeat runs from the result cache in this directory (e.g. "+cache.DefaultDir+"); misses are recorded for next time")
}

// open validates the flag and returns the cache handle, or nil when the
// flag is unset. It runs before any workload does, so a bad directory
// fails fast.
func (cf *cacheFlags) open() (*cache.Cache, error) {
	if cf.dir == "" {
		return nil, nil
	}
	return cache.Open(cf.dir)
}

// wrap layers the cache onto an executor; a nil cache leaves the executor
// untouched.
func wrapExecutor(ex harness.Executor, c *cache.Cache) harness.Executor {
	if c == nil {
		return ex
	}
	return &harness.CachingExecutor{Inner: ex, Cache: c}
}

// cmdCache is the cache maintenance subcommand: `hpcc cache prune`
// evicts entries by age and total size (the eviction-policy follow-up to
// the content-addressed cache).
func cmdCache(_ context.Context, args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 || args[0] != "prune" {
		fmt.Fprintln(stderr, "usage: hpcc cache prune [-cache dir] [-max-age d] [-max-size bytes]")
		if len(args) == 0 {
			return errors.New("cache: want a subcommand (prune)")
		}
		return fmt.Errorf("cache: unknown subcommand %q (want prune)", args[0])
	}
	fs := flag.NewFlagSet("hpcc cache prune", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("cache", cache.DefaultDir, "cache directory to prune")
	maxAge := fs.Duration("max-age", 0, "evict entries older than this (e.g. 720h; 0 = no age bound)")
	maxSize := fs.Int64("max-size", 0, "evict oldest-written entries until the cache fits in this many bytes (0 = no size bound)")
	if err := fs.Parse(args[1:]); err != nil {
		return parseErr(err)
	}
	if fs.NArg() > 0 {
		return errors.New("cache prune: takes no positional arguments")
	}
	if *maxAge <= 0 && *maxSize <= 0 {
		return errors.New("cache prune: need -max-age and/or -max-size (otherwise nothing would be evicted)")
	}
	c, err := cache.Open(*dir)
	if err != nil {
		return err
	}
	st, err := c.Prune(*maxAge, *maxSize)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "pruned %s: evicted %d entries (%d bytes), kept %d entries (%d bytes)\n",
		c.Dir(), st.Evicted, st.FreedBytes, st.Kept, st.KeptBytes)
	return nil
}

// runCached runs one workload through the cache: a hit skips the run, a
// miss runs and records. A nil cache degrades to a plain run. A cache
// write failure is a stderr note, never a command failure — the result is
// already in hand.
func runCached(ctx context.Context, c *cache.Cache, w harness.Workload, p harness.Params, stderr io.Writer) (harness.Result, error) {
	if c == nil {
		res, err := w.Run(ctx, p)
		if err == nil && res.WorkloadID == "" {
			res.WorkloadID = w.ID()
		}
		return res, err
	}
	version := harness.VersionOf(w)
	if res, ok := c.Get(w.ID(), p, version); ok {
		if res.WorkloadID == "" {
			res.WorkloadID = w.ID()
		}
		return res, nil
	}
	res, err := w.Run(ctx, p)
	if err != nil {
		return res, err
	}
	if res.WorkloadID == "" {
		res.WorkloadID = w.ID()
	}
	if perr := c.Put(w.ID(), p, version, res); perr != nil {
		fmt.Fprintf(stderr, "hpcc: %v\n", perr)
	}
	return res, nil
}
