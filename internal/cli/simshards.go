package cli

// Single-simulation sharding wiring: the -sim-shards flag shared by run,
// sweep and report. It partitions the collective engine of every nx
// simulation this process starts across that many host cores (distinct
// from -shards, which fans whole jobs out to worker processes). Output
// is byte-identical for every value (CI-gated); the flag exists to put
// multi-core hosts to work on one big simulation.

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/nx"
)

// simShardsEnv propagates the choice to `hpcc worker` child processes,
// which are re-exec'ed without flags (see nx's init).
const simShardsEnv = "HPCC_SIM_SHARDS"

// simShardsFlags carries the -sim-shards flag.
type simShardsFlags struct {
	n int
}

func (sf *simShardsFlags) register(fs *flag.FlagSet) {
	fs.IntVar(&sf.n, "sim-shards", 0, "split each simulation's engine across N host cores (0 = default 1; output is byte-identical for any value)")
}

// apply validates the flag and installs the count process-wide (including
// the environment, so -shards worker children inherit it). A zero flag
// leaves the default alone.
func (sf *simShardsFlags) apply() error {
	if sf.n == 0 {
		return nil
	}
	if sf.n < 1 {
		return fmt.Errorf("-sim-shards %d: want >= 1", sf.n)
	}
	nx.SetDefaultShards(sf.n)
	return os.Setenv(simShardsEnv, strconv.Itoa(sf.n))
}
