package cli

// The `hpcc serve` subcommand: the run/sweep/report/trend pipeline as a
// long-lived HTTP JSON API. The process keeps the registry, the result
// cache and the run store warm across requests, so a dashboard or a CI
// fleet can ask for exhibits without paying process startup per query.
// Identical concurrent requests are coalesced through a single flight
// and answered from one workload run; repeat requests are served from
// the content-addressed cache when -cache is set. Every response carries
// an X-HPCC-Cache header saying which of those paths it took.
//
// Compute is admission-controlled: at most -pool requests run executors
// at once, at most -queue more wait for a slot (respecting their request
// context while they wait), and anything past that bounces immediately
// with 429 + Retry-After instead of piling executors onto the host.
// Cache hits and trend/workload listings bypass admission — they do no
// compute. With -budget set, each admitted request additionally runs
// under that wall-clock deadline.

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/store"
)

func cmdServe(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hpcc serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "address to listen on")
	jobs := fs.Int("j", harness.DefaultWorkers(), "concurrent workers per sweep/report request")
	shards := fs.Int("shards", 0, "fan each sweep/report out to N hpcc worker processes")
	remote := fs.String("remote", "", "fan each sweep/report out to hpcc worker -listen fleet at these comma-separated addresses")
	storeDir := fs.String("store", "", "serve /api/v1/trend from the run store in this directory (e.g. "+store.DefaultDir+")")
	pool := fs.Int("pool", 4, "max compute requests running executors at once; the rest queue or bounce")
	queue := fs.Int("queue", 16, "max compute requests waiting for an executor slot before new ones get 429")
	drain := fs.Duration("drain", 10*time.Second, "on SIGINT/SIGTERM, stop accepting and let in-flight requests finish for up to this long before closing (0 = close immediately)")
	var cf cacheFlags
	cf.register(fs)
	var xf collectivesFlags
	xf.register(fs)
	var ssf simShardsFlags
	ssf.register(fs)
	var tf tokenFlags
	tf.register(fs)
	var bf budgetFlags
	bf.register(fs)
	if err := fs.Parse(args); err != nil {
		return parseErr(err)
	}
	if fs.NArg() > 0 {
		return errors.New("serve: takes no arguments")
	}
	if err := xf.apply(); err != nil {
		return err
	}
	if err := ssf.apply(); err != nil {
		return err
	}
	resultCache, err := cf.open()
	if err != nil {
		return err
	}
	// Fail a bad configuration now, not on the first request.
	if err := validateExecutorConfig(*shards, *jobs, *remote); err != nil {
		return err
	}
	if *pool < 1 {
		return fmt.Errorf("-pool must be at least 1 (got %d)", *pool)
	}
	if *queue < 0 {
		return fmt.Errorf("-queue must be non-negative (got %d; 0 means over-capacity requests bounce immediately)", *queue)
	}

	srv := &server{
		cache:    resultCache,
		storeDir: *storeDir,
		stderr:   stderr,
		budget:   bf.d,
		admit:    newAdmitter(*pool, *queue),
		newExec: func() (harness.Executor, error) {
			ex, _, err := newExecutor(*shards, *jobs, *remote, tf.token, nil, stderr)
			return ex, err
		},
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	// The actual address matters when -addr used port 0 (tests).
	fmt.Fprintf(stdout, "hpcc serve: listening on http://%s\n", ln.Addr())
	// Request contexts descend from the drained context, not ctx
	// itself: otherwise a SIGTERM would kill every in-flight request
	// instantly and the Shutdown grace below would have nothing left to
	// protect.
	reqCtx, stopGrace := harness.WithDrain(ctx, *drain)
	defer stopGrace()
	hs := &http.Server{
		Handler:     srv.handler(),
		BaseContext: func(net.Listener) context.Context { return reqCtx },
	}
	errc := make(chan error, 1)
	//lint:ignore hpccwire hs.Serve is shut down by the ctx-driven Shutdown in the select below; threading ctx into the accept loop itself is http.Server's job
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		// Graceful drain: the listener closes (new requests refused),
		// in-flight requests get the -drain grace, then the door closes
		// hard.
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		hs.Shutdown(sctx)
		return nil
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	}
}

// server holds what requests share: the cache, the store location, and
// the flight table that coalesces identical concurrent requests.
// Executors are built per request — CachingExecutor keeps per-sweep
// hit/miss counters, so sharing one across requests would race.
type server struct {
	reg      *harness.Registry // nil means the Default registry
	cache    *cache.Cache
	storeDir string
	stderr   io.Writer
	budget   time.Duration // per-request wall-clock deadline; 0 = unlimited
	admit    *admitter     // nil means unbounded admission (bare test servers)
	newExec  func() (harness.Executor, error)
	flight   cache.Flight
}

func (s *server) registry() *harness.Registry {
	if s.reg != nil {
		return s.reg
	}
	return harness.Default
}

// errServeSaturated is what admission returns when both the executor
// pool and the waiting queue are full; computeError turns it into 429.
var errServeSaturated = errors.New("serve: all executor slots busy and the admission queue is full")

// admitter bounds the compute the server will take on at once: len(slots)
// requests run executors, up to maxQueue more wait for a slot, and
// anything past that bounces. The queue is counted, not stored — waiters
// park in acquire's select, so a cancelled client leaves the queue the
// moment its context dies instead of holding a position it will never use.
type admitter struct {
	slots    chan struct{}
	queued   atomic.Int64
	maxQueue int64
}

func newAdmitter(pool, queue int) *admitter {
	return &admitter{slots: make(chan struct{}, pool), maxQueue: int64(queue)}
}

// acquire claims an executor slot, queueing within the bound. The caller
// must invoke release exactly once when its compute finishes.
func (a *admitter) acquire(ctx context.Context) (release func(), err error) {
	select {
	case a.slots <- struct{}{}:
		return func() { <-a.slots }, nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return nil, errServeSaturated
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return func() { <-a.slots }, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("request gave up while queued for an executor slot: %w", ctx.Err())
	}
}

// acquire is the nil-tolerant wrapper handlers use: a server built
// without an admitter (unit tests) admits everything.
func (s *server) acquire(ctx context.Context) (release func(), err error) {
	if s.admit == nil {
		return func() {}, nil
	}
	return s.admit.acquire(ctx)
}

// computeCtx layers the per-request -budget deadline onto a request
// context. The deadline is applied after admission, so time spent
// queued does not eat the budget.
func (s *server) computeCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.budget <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, s.budget)
}

// computeError answers a failed compute request with the right status:
// 429 + Retry-After when admission bounced it, 503 when it was cancelled
// or timed out while queued or running, 500 otherwise.
func computeError(w http.ResponseWriter, err error, format string, args ...any) {
	switch {
	case errors.Is(err, errServeSaturated):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, format, args...)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusServiceUnavailable, format, args...)
	default:
		httpError(w, http.StatusInternalServerError, format, args...)
	}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /api/v1/workloads", s.handleWorkloads)
	mux.HandleFunc("POST /api/v1/run", s.handleRun)
	mux.HandleFunc("POST /api/v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /api/v1/report", s.handleReport)
	mux.HandleFunc("GET /api/v1/trend", s.handleTrend)
	return mux
}

// httpError answers with a JSON error body, so API clients never have to
// parse text/plain out of an application/json endpoint.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSONResponse(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// decodeStrict parses a JSON request body into v, rejecting unknown
// fields and trailing garbage — a typo'd field name must be a 400, not a
// silently ignored option.
func decodeStrict(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode request body: %w", err)
	}
	var extra any
	if err := dec.Decode(&extra); err != io.EOF {
		return errors.New("trailing data after the JSON body")
	}
	return nil
}

func (s *server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		ID          string          `json:"id"`
		Description string          `json:"description"`
		Params      []harness.Param `json:"params,omitempty"`
	}
	out := []entry{}
	for _, wl := range s.registry().All() {
		out = append(out, entry{ID: wl.ID(), Description: wl.Description(), Params: wl.ParamSpace()})
	}
	writeJSONResponse(w, out)
}

// runOutcome is what one coalesced run flight delivers to every waiter:
// the result plus which path produced it.
type runOutcome struct {
	res    harness.Result
	status string // hit | miss | bypass
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID     string            `json:"id"`
		Quick  bool              `json:"quick"`
		Seed   int64             `json:"seed"`
		Values map[string]string `json:"values"`
	}
	if err := decodeStrict(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.ID == "" {
		httpError(w, http.StatusBadRequest, "missing workload id")
		return
	}
	wl, err := s.registry().Lookup(req.ID)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	params := harness.Params{Quick: req.Quick, Seed: req.Seed, Values: req.Values}
	version := harness.VersionOf(wl)
	// The flight key is the cache key: identical (workload, params,
	// kernel version) triples in flight at once run the workload once,
	// and every waiter shares the leader's outcome.
	key := "run\x00" + cache.Key(wl.ID(), params, version)
	v, _, err := s.flight.Do(key, func() (any, error) {
		// Cache hits are answered before admission: they do no compute,
		// so a saturated pool must not 429 them.
		if s.cache != nil {
			if res, ok := s.cache.Get(wl.ID(), params, version); ok {
				if res.WorkloadID == "" {
					res.WorkloadID = wl.ID()
				}
				return runOutcome{res, "hit"}, nil
			}
		}
		release, err := s.acquire(r.Context())
		if err != nil {
			return nil, err
		}
		defer release()
		ctx, cancel := s.computeCtx(r.Context())
		defer cancel()
		if s.cache == nil {
			res, err := runCached(ctx, nil, wl, params, s.stderr)
			return runOutcome{res, "bypass"}, err
		}
		res, err := runCached(ctx, s.cache, wl, params, s.stderr)
		return runOutcome{res, "miss"}, err
	})
	if err != nil {
		computeError(w, err, "run %s: %v", req.ID, err)
		return
	}
	out := v.(runOutcome)
	w.Header().Set("X-HPCC-Cache", out.status)
	writeJSONResponse(w, out.res)
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req struct {
		IDs    []string `json:"ids"`
		ID     string   `json:"id"`
		Param  string   `json:"param"`
		Values []string `json:"values"`
		Quick  bool     `json:"quick"`
		Seed   int64    `json:"seed"`
	}
	if err := decodeStrict(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	base := harness.Params{Quick: req.Quick, Seed: req.Seed}
	var jobList []harness.Job
	switch {
	case req.Param != "":
		if req.ID == "" || len(req.Values) == 0 {
			httpError(w, http.StatusBadRequest, "a param sweep needs id, param and values")
			return
		}
		wl, err := s.registry().Lookup(req.ID)
		if err != nil {
			httpError(w, http.StatusNotFound, "%v", err)
			return
		}
		jobList = harness.ValueJobs(wl, base, req.Param, req.Values)
	case req.ID != "":
		httpError(w, http.StatusBadRequest, "id without param/values; use ids for a portfolio")
		return
	default:
		var ws []harness.Workload
		if len(req.IDs) == 0 {
			ws = s.registry().All()
		} else {
			for _, id := range req.IDs {
				wl, err := s.registry().Lookup(id)
				if err != nil {
					httpError(w, http.StatusNotFound, "%v", err)
					return
				}
				ws = append(ws, wl)
			}
		}
		jobList = harness.WorkloadJobs(ws, base)
	}
	results, cacheNote, err := s.execute(r.Context(), jobList)
	if err != nil {
		computeError(w, err, "sweep: %v", err)
		return
	}
	w.Header().Set("X-HPCC-Cache", cacheNote)
	writeJSONResponse(w, results)
}

func (s *server) handleReport(w http.ResponseWriter, r *http.Request) {
	quick := r.URL.Query().Get("quick") != ""
	// Reports are heavy and parameterless beyond quick: coalesce them.
	v, _, err := s.flight.Do("report\x00"+strconv.FormatBool(quick), func() (any, error) {
		release, err := s.acquire(r.Context())
		if err != nil {
			return nil, err
		}
		defer release()
		ctx, cancel := s.computeCtx(r.Context())
		defer cancel()
		prog := core.NewProgram()
		prog.Quick = quick
		ex, err := s.newExec()
		if err != nil {
			return nil, err
		}
		results, err := prog.ReportResultsExec(ctx, wrapExecutor(ex, s.cache), nil)
		return results, err
	})
	if err != nil {
		computeError(w, err, "report: %v", err)
		return
	}
	writeJSONResponse(w, v)
}

func (s *server) handleTrend(w http.ResponseWriter, r *http.Request) {
	if s.storeDir == "" {
		httpError(w, http.StatusServiceUnavailable, "trend needs a run store: restart serve with -store")
		return
	}
	workload := r.URL.Query().Get("workload")
	if workload == "" {
		httpError(w, http.StatusBadRequest, "missing ?workload=")
		return
	}
	st, err := store.Open(s.storeDir)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	st.SetWarnWriter(s.stderr)
	if err := st.Check(); err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, store.ErrNoStore) {
			code = http.StatusNotFound
		}
		httpError(w, code, "%v", err)
		return
	}
	snaps, err := st.Snapshots()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if len(snaps) == 0 {
		httpError(w, http.StatusNotFound, "%v", store.NoSnapshotsError(s.storeDir))
		return
	}
	points, err := store.Trend(snaps, workload, r.URL.Query().Get("metric"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSONResponse(w, points)
}

// execute runs one request's job list on a fresh executor, cache-fronted
// when serve has a cache, and reports the hit/miss tally for the
// response header. It passes through admission and the per-request
// budget first: sweeps are the heaviest endpoint.
func (s *server) execute(ctx context.Context, jobList []harness.Job) ([]harness.Result, string, error) {
	release, err := s.acquire(ctx)
	if err != nil {
		return nil, "", err
	}
	defer release()
	ctx, cancel := s.computeCtx(ctx)
	defer cancel()
	ex, err := s.newExec()
	if err != nil {
		return nil, "", err
	}
	if s.cache == nil {
		results, err := ex.Execute(ctx, jobList, nil)
		return results, "bypass", err
	}
	ce := &harness.CachingExecutor{Inner: ex, Cache: s.cache}
	results, err := ce.Execute(ctx, jobList, nil)
	return results, fmt.Sprintf("hits=%d misses=%d", ce.Hits, ce.Misses), err
}
