package cli

// The `hpcc serve` subcommand: the run/sweep/report/trend pipeline as a
// long-lived HTTP JSON API. The process keeps the registry, the result
// cache and the run store warm across requests, so a dashboard or a CI
// fleet can ask for exhibits without paying process startup per query.
// Identical concurrent requests are coalesced through a single flight
// and answered from one workload run; repeat requests are served from
// the content-addressed cache when -cache is set. Every response carries
// an X-HPCC-Cache header saying which of those paths it took.

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/store"
)

func cmdServe(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hpcc serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "address to listen on")
	jobs := fs.Int("j", harness.DefaultWorkers(), "concurrent workers per sweep/report request")
	shards := fs.Int("shards", 0, "fan each sweep/report out to N hpcc worker processes")
	remote := fs.String("remote", "", "fan each sweep/report out to hpcc worker -listen fleet at these comma-separated addresses")
	storeDir := fs.String("store", "", "serve /api/v1/trend from the run store in this directory (e.g. "+store.DefaultDir+")")
	var cf cacheFlags
	cf.register(fs)
	var xf collectivesFlags
	xf.register(fs)
	var ssf simShardsFlags
	ssf.register(fs)
	if err := fs.Parse(args); err != nil {
		return parseErr(err)
	}
	if fs.NArg() > 0 {
		return errors.New("serve: takes no arguments")
	}
	if err := xf.apply(); err != nil {
		return err
	}
	if err := ssf.apply(); err != nil {
		return err
	}
	resultCache, err := cf.open()
	if err != nil {
		return err
	}
	// Fail a bad executor configuration now, not on the first request.
	if _, err := newExecutor(*shards, *jobs, *remote, io.Discard); err != nil {
		return err
	}

	srv := &server{
		cache:    resultCache,
		storeDir: *storeDir,
		stderr:   stderr,
		newExec: func() (harness.Executor, error) {
			return newExecutor(*shards, *jobs, *remote, stderr)
		},
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	// The actual address matters when -addr used port 0 (tests).
	fmt.Fprintf(stdout, "hpcc serve: listening on http://%s\n", ln.Addr())
	hs := &http.Server{
		Handler:     srv.handler(),
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	//lint:ignore hpccwire hs.Serve is shut down by the ctx-driven Shutdown in the select below; threading ctx into the accept loop itself is http.Server's job
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		// Graceful drain: in-flight requests get a grace period, then the
		// door closes hard.
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(sctx)
		return nil
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	}
}

// server holds what requests share: the cache, the store location, and
// the flight table that coalesces identical concurrent requests.
// Executors are built per request — CachingExecutor keeps per-sweep
// hit/miss counters, so sharing one across requests would race.
type server struct {
	reg      *harness.Registry // nil means the Default registry
	cache    *cache.Cache
	storeDir string
	stderr   io.Writer
	newExec  func() (harness.Executor, error)
	flight   cache.Flight
}

func (s *server) registry() *harness.Registry {
	if s.reg != nil {
		return s.reg
	}
	return harness.Default
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /api/v1/workloads", s.handleWorkloads)
	mux.HandleFunc("POST /api/v1/run", s.handleRun)
	mux.HandleFunc("POST /api/v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /api/v1/report", s.handleReport)
	mux.HandleFunc("GET /api/v1/trend", s.handleTrend)
	return mux
}

// httpError answers with a JSON error body, so API clients never have to
// parse text/plain out of an application/json endpoint.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSONResponse(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// decodeStrict parses a JSON request body into v, rejecting unknown
// fields and trailing garbage — a typo'd field name must be a 400, not a
// silently ignored option.
func decodeStrict(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode request body: %w", err)
	}
	var extra any
	if err := dec.Decode(&extra); err != io.EOF {
		return errors.New("trailing data after the JSON body")
	}
	return nil
}

func (s *server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		ID          string          `json:"id"`
		Description string          `json:"description"`
		Params      []harness.Param `json:"params,omitempty"`
	}
	out := []entry{}
	for _, wl := range s.registry().All() {
		out = append(out, entry{ID: wl.ID(), Description: wl.Description(), Params: wl.ParamSpace()})
	}
	writeJSONResponse(w, out)
}

// runOutcome is what one coalesced run flight delivers to every waiter:
// the result plus which path produced it.
type runOutcome struct {
	res    harness.Result
	status string // hit | miss | bypass
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID     string            `json:"id"`
		Quick  bool              `json:"quick"`
		Seed   int64             `json:"seed"`
		Values map[string]string `json:"values"`
	}
	if err := decodeStrict(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.ID == "" {
		httpError(w, http.StatusBadRequest, "missing workload id")
		return
	}
	wl, err := s.registry().Lookup(req.ID)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	params := harness.Params{Quick: req.Quick, Seed: req.Seed, Values: req.Values}
	version := harness.VersionOf(wl)
	// The flight key is the cache key: identical (workload, params,
	// kernel version) triples in flight at once run the workload once,
	// and every waiter shares the leader's outcome.
	key := "run\x00" + cache.Key(wl.ID(), params, version)
	v, _, err := s.flight.Do(key, func() (any, error) {
		if s.cache == nil {
			res, err := runCached(r.Context(), nil, wl, params, s.stderr)
			return runOutcome{res, "bypass"}, err
		}
		if res, ok := s.cache.Get(wl.ID(), params, version); ok {
			if res.WorkloadID == "" {
				res.WorkloadID = wl.ID()
			}
			return runOutcome{res, "hit"}, nil
		}
		res, err := runCached(r.Context(), s.cache, wl, params, s.stderr)
		return runOutcome{res, "miss"}, err
	})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "run %s: %v", req.ID, err)
		return
	}
	out := v.(runOutcome)
	w.Header().Set("X-HPCC-Cache", out.status)
	writeJSONResponse(w, out.res)
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req struct {
		IDs    []string `json:"ids"`
		ID     string   `json:"id"`
		Param  string   `json:"param"`
		Values []string `json:"values"`
		Quick  bool     `json:"quick"`
		Seed   int64    `json:"seed"`
	}
	if err := decodeStrict(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	base := harness.Params{Quick: req.Quick, Seed: req.Seed}
	var jobList []harness.Job
	switch {
	case req.Param != "":
		if req.ID == "" || len(req.Values) == 0 {
			httpError(w, http.StatusBadRequest, "a param sweep needs id, param and values")
			return
		}
		wl, err := s.registry().Lookup(req.ID)
		if err != nil {
			httpError(w, http.StatusNotFound, "%v", err)
			return
		}
		jobList = harness.ValueJobs(wl, base, req.Param, req.Values)
	case req.ID != "":
		httpError(w, http.StatusBadRequest, "id without param/values; use ids for a portfolio")
		return
	default:
		var ws []harness.Workload
		if len(req.IDs) == 0 {
			ws = s.registry().All()
		} else {
			for _, id := range req.IDs {
				wl, err := s.registry().Lookup(id)
				if err != nil {
					httpError(w, http.StatusNotFound, "%v", err)
					return
				}
				ws = append(ws, wl)
			}
		}
		jobList = harness.WorkloadJobs(ws, base)
	}
	results, cacheNote, err := s.execute(r.Context(), jobList)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "sweep: %v", err)
		return
	}
	w.Header().Set("X-HPCC-Cache", cacheNote)
	writeJSONResponse(w, results)
}

func (s *server) handleReport(w http.ResponseWriter, r *http.Request) {
	quick := r.URL.Query().Get("quick") != ""
	// Reports are heavy and parameterless beyond quick: coalesce them.
	v, _, err := s.flight.Do("report\x00"+strconv.FormatBool(quick), func() (any, error) {
		prog := core.NewProgram()
		prog.Quick = quick
		ex, err := s.newExec()
		if err != nil {
			return nil, err
		}
		results, err := prog.ReportResultsExec(r.Context(), wrapExecutor(ex, s.cache), nil)
		return results, err
	})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "report: %v", err)
		return
	}
	writeJSONResponse(w, v)
}

func (s *server) handleTrend(w http.ResponseWriter, r *http.Request) {
	if s.storeDir == "" {
		httpError(w, http.StatusServiceUnavailable, "trend needs a run store: restart serve with -store")
		return
	}
	workload := r.URL.Query().Get("workload")
	if workload == "" {
		httpError(w, http.StatusBadRequest, "missing ?workload=")
		return
	}
	st, err := store.Open(s.storeDir)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	snaps, err := st.Snapshots()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if len(snaps) == 0 {
		httpError(w, http.StatusNotFound, "%v", store.NoSnapshotsError(s.storeDir))
		return
	}
	points, err := store.Trend(snaps, workload, r.URL.Query().Get("metric"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSONResponse(w, points)
}

// execute runs one request's job list on a fresh executor, cache-fronted
// when serve has a cache, and reports the hit/miss tally for the
// response header.
func (s *server) execute(ctx context.Context, jobList []harness.Job) ([]harness.Result, string, error) {
	ex, err := s.newExec()
	if err != nil {
		return nil, "", err
	}
	if s.cache == nil {
		results, err := ex.Execute(ctx, jobList, nil)
		return results, "bypass", err
	}
	ce := &harness.CachingExecutor{Inner: ex, Cache: s.cache}
	results, err := ce.Execute(ctx, jobList, nil)
	return results, fmt.Sprintf("hits=%d misses=%d", ce.Hits, ce.Misses), err
}
