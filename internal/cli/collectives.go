package cli

// Collective-mode wiring: the -collectives flag shared by run, sweep and
// report. The nx runtime computes collectives with the fused analytic
// engine by default; -collectives tree selects the legacy per-edge
// message path. Both produce byte-identical output (CI-gated), so the
// flag exists for differential testing and as an escape hatch.

import (
	"flag"
	"os"

	"repro/internal/nx"
)

// collectivesEnv propagates the choice to `hpcc worker` child processes,
// which are re-exec'ed without flags (see nx's init).
const collectivesEnv = "HPCC_COLLECTIVES"

// collectivesFlags carries the -collectives flag.
type collectivesFlags struct {
	mode string
}

func (cf *collectivesFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&cf.mode, "collectives", "", "collective engine: fused (default) or tree; output is byte-identical either way")
}

// apply validates the flag and installs the mode process-wide (including
// the environment, so -shards worker children inherit it). A blank flag
// leaves the default alone.
func (cf *collectivesFlags) apply() error {
	if cf.mode == "" {
		return nil
	}
	m, err := nx.ParseCollectiveMode(cf.mode)
	if err != nil {
		return err
	}
	nx.SetDefaultCollectives(m)
	return os.Setenv(collectivesEnv, m.String())
}
