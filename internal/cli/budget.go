package cli

// The -budget flag: one wall-clock deadline per invocation, threaded as
// a context deadline so it reaches every layer that already honors ctx —
// remote dispatch and the redial loop (harness.RemoteExecutor), queued
// serve admissions, and the simulation event loops themselves
// (nx.Config.Ctx / RunContext). When the budget expires, whatever is
// running is cancelled at its next collective boundary and the command
// fails with an error that wraps context.DeadlineExceeded.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"time"
)

// budgetFlags carries the -budget per-invocation deadline shared by run,
// sweep, report and serve (per request there).
type budgetFlags struct{ d time.Duration }

func (bf *budgetFlags) register(fs *flag.FlagSet) {
	fs.DurationVar(&bf.d, "budget", 0,
		"wall-clock budget for this invocation (e.g. 90s); the deadline reaches remote dispatch and the simulation event loops. 0 = unlimited")
}

// apply derives the bounded context. The returned cancel must run even
// on the no-budget path (it is a no-op there).
func (bf *budgetFlags) apply(ctx context.Context) (context.Context, context.CancelFunc) {
	if bf.d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, bf.d)
}

// explain rewraps a budget expiry so the user sees which budget died,
// while errors.Is(err, context.DeadlineExceeded) keeps holding for
// callers that dispatch on the cause. Other errors pass through.
func (bf *budgetFlags) explain(err error) error {
	if err == nil || bf.d <= 0 {
		return err
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("budget %v exhausted: %w", bf.d, err)
	}
	return err
}
