package micro

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/machine"
)

// The sweep must be bit-identical for every engine shard count — it is
// the cheap canary the big differential suites lean on.
func TestPingPongShardDifferential(t *testing.T) {
	run := func(shards int) *Outcome {
		out, err := Run(Config{Procs: 16, Shards: shards, Model: machine.Delta()})
		if err != nil {
			t.Fatalf("Shards=%d: %v", shards, err)
		}
		return out
	}
	base := run(1)
	for _, shards := range []int{2, 4, 8} {
		got := run(shards)
		if !reflect.DeepEqual(got.Points, base.Points) {
			t.Errorf("Shards=%d: points diverge from Shards=1:\n got %+v\nwant %+v", shards, got.Points, base.Points)
		}
		if !reflect.DeepEqual(got.Run, base.Run) {
			t.Errorf("Shards=%d: run stats diverge from Shards=1", shards)
		}
	}
}

// Latency must rise with message size while bandwidth approaches the
// asymptote — the qualitative shape the practical's plot shows.
func TestPingPongShape(t *testing.T) {
	out, err := Run(Config{Model: machine.Delta()})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Points) < 3 {
		t.Fatalf("want a multi-size sweep, got %d points", len(out.Points))
	}
	for i := 1; i < len(out.Points); i++ {
		prev, cur := out.Points[i-1], out.Points[i]
		if cur.OneWay <= prev.OneWay {
			t.Errorf("one-way time not increasing: %d bytes %.3g s vs %d bytes %.3g s",
				prev.Bytes, prev.OneWay, cur.Bytes, cur.OneWay)
		}
		if cur.Bandwidth <= prev.Bandwidth {
			t.Errorf("bandwidth not increasing: %d bytes %.3g B/s vs %d bytes %.3g B/s",
				prev.Bytes, prev.Bandwidth, cur.Bytes, cur.Bandwidth)
		}
	}
	if out.Latency <= 0 || out.Bandwidth <= 0 {
		t.Errorf("headline numbers must be positive: latency %g, bandwidth %g", out.Latency, out.Bandwidth)
	}
}

func TestPingPongConfigValidation(t *testing.T) {
	cases := []Config{
		{Procs: 1, Model: machine.Delta()},
		{Procs: 4, Peer: 4, Model: machine.Delta()},
		{Procs: 4, Reps: -1, Model: machine.Delta()},
		{Procs: 4, Sizes: []int{8, -1}, Model: machine.Delta()},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: want error, got nil", i)
		}
	}
}

// The registry entry must be reachable, honor Quick, and carry the
// headline metrics.
func TestPingPongWorkload(t *testing.T) {
	w, err := harness.Lookup("micro/pingpong")
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(context.Background(), harness.Params{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "Ping pong") {
		t.Errorf("rendered table missing title:\n%s", res.Text)
	}
	found := map[string]bool{}
	for _, m := range res.Metrics {
		found[m.Name] = true
	}
	for _, name := range []string{"latency-us", "bandwidth-MBs", "procs"} {
		if !found[name] {
			t.Errorf("missing metric %q", name)
		}
	}
}

func TestPingPongCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(Config{Model: machine.Delta(), Ctx: ctx}); err == nil {
		t.Error("want cancellation error, got nil")
	}
}
