package micro

import (
	"context"

	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/report"
)

// The ping-pong practical as a registry workload: a size sweep on the
// Delta model, cheap enough to run on every sweep and sensitive enough to
// flag any change in the mailbox or collective-engine paths.
func init() {
	harness.MustRegister(harness.Spec{
		WorkloadID: "micro/pingpong",
		Desc:       "ping-pong latency/bandwidth microbenchmark on the Delta model",
		Space: []harness.Param{
			{Name: "procs", Default: "16", Doc: "processes in the run (the pair is ranks 0 and procs-1)"},
			{Name: "reps", Default: "10", Doc: "round trips per message size"},
			{Name: "maxbytes", Default: "1048576", Doc: "largest message size; the sweep runs x8 from 8 bytes"},
		},
		RunFunc: runWorkload,
	})
}

func runWorkload(ctx context.Context, p harness.Params) (harness.Result, error) {
	if err := ctx.Err(); err != nil {
		return harness.Result{}, err
	}
	defProcs, defReps, defMax := 16, 10, 1<<20
	if p.Quick {
		defProcs, defReps, defMax = 4, 2, 4096
	}
	procs, err := p.Int("procs", defProcs)
	if err != nil {
		return harness.Result{}, err
	}
	reps, err := p.Int("reps", defReps)
	if err != nil {
		return harness.Result{}, err
	}
	maxBytes, err := p.Int("maxbytes", defMax)
	if err != nil {
		return harness.Result{}, err
	}
	out, err := Run(Config{
		Procs: procs, Reps: reps, Sizes: DefaultSizes(maxBytes),
		Model: machine.Delta(), Ctx: ctx,
	})
	if err != nil {
		return harness.Result{}, err
	}
	t := report.NewTable(report.Cellf("Ping pong, ranks 0 and %d of %d on the Delta mesh", procs-1, procs),
		"Bytes", "One-way (us)", "Bandwidth (MB/s)")
	for _, pt := range out.Points {
		t.AddRow(report.Cellf("%d", pt.Bytes),
			report.Cellf("%.2f", pt.OneWay*1e6),
			report.Cellf("%.2f", pt.Bandwidth/1e6))
	}
	res := harness.Result{
		Title: "Ping-pong microbenchmark",
		Text:  t.Render(),
	}
	res.AddMetric("latency-us", out.Latency*1e6, "us")
	res.AddMetric("bandwidth-MBs", out.Bandwidth/1e6, "MB/s")
	res.AddMetric("procs", float64(procs), "")
	return res, nil
}
