// Package micro holds communication microbenchmarks — tiny fixed-pattern
// programs whose only job is to expose the machine model's communication
// parameters and to canary the runtime paths real workloads depend on.
//
// The first (and canonical) one is Ping Pong, after the MPP course
// practical: two processes bounce a phantom message back and forth across
// a sweep of sizes, and the modelled round-trip times yield the machine's
// effective point-to-point latency (small messages) and bandwidth (large
// messages). Because virtual time in package nx is deterministic, the
// numbers double as a regression canary: the bounce exercises the raw
// mailbox send/receive path, and each size closes with a symmetric
// exchange plus a world broadcast, which exercises the fused-collective
// engine — sharded or not — so any change to either path shows up as a
// byte-level diff in this workload's output.
package micro

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/machine"
	"repro/internal/nx"
)

// Message tags for the bounce; the exchange and broadcast use their own
// internal tag space.
const (
	tagPing nx.Tag = 1
	tagPong nx.Tag = 2
	tagExch nx.Tag = 3
)

// DefaultSizes returns the standard size sweep: powers of eight from 8
// bytes up to maxBytes (at least one size, even for tiny caps).
func DefaultSizes(maxBytes int) []int {
	var sizes []int
	for nb := 8; nb <= maxBytes; nb *= 8 {
		sizes = append(sizes, nb)
	}
	if len(sizes) == 0 {
		sizes = []int{8}
	}
	return sizes
}

// Config describes a ping-pong run.
type Config struct {
	// Procs is the number of processes in the run; the bouncing pair is
	// ranks 0 and Peer, everyone else only joins the per-size broadcast.
	// 0 means 16 — enough ranks that engine sharding is non-trivial.
	Procs int
	// Peer is rank 0's partner. 0 picks Procs-1, the farthest rank of the
	// run (contiguous ranks sit on neighboring mesh nodes, so the default
	// maximizes hop count).
	Peer int
	// Sizes are the message sizes in bytes; nil uses DefaultSizes(1 MiB).
	Sizes []int
	// Reps is the number of round trips per size; 0 means 10. Virtual
	// time is deterministic, so repetitions don't average noise — they
	// exercise the mailbox exactly like the practical's timing loop.
	Reps  int
	Model machine.Model
	// Ctx, if non-nil, cancels the run: the simulation tears down at the
	// next receive boundary and the run returns Ctx.Err(). A nil Ctx
	// preserves run-to-completion behavior.
	Ctx context.Context
	// Shards partitions the simulation's collective engine across host
	// cores (nx.Config.Shards); 0 uses the process-wide -sim-shards
	// default. Results are bit-identical for every value.
	Shards int
}

// Point reports one size of the sweep.
type Point struct {
	Bytes     int
	RoundTrip float64 // modelled round-trip time, seconds
	OneWay    float64 // RoundTrip / 2
	Bandwidth float64 // Bytes / OneWay, bytes per second
}

// Outcome reports a run: the per-size sweep plus the two headline numbers
// the practical asks for.
type Outcome struct {
	Points    []Point
	Latency   float64 // one-way time of the smallest message, seconds
	Bandwidth float64 // of the largest message, bytes per second
	Run       *nx.Result
}

// Run executes the ping-pong sweep.
func Run(cfg Config) (*Outcome, error) {
	procs := cfg.Procs
	if procs == 0 {
		procs = 16
	}
	if procs < 2 || procs > cfg.Model.Nodes() {
		return nil, fmt.Errorf("micro: Procs=%d invalid for %d-node model (want 2..nodes)", procs, cfg.Model.Nodes())
	}
	peer := cfg.Peer
	if peer == 0 {
		peer = procs - 1
	}
	if peer < 1 || peer >= procs {
		return nil, fmt.Errorf("micro: Peer=%d invalid for %d processes", peer, procs)
	}
	reps := cfg.Reps
	if reps == 0 {
		reps = 10
	}
	if reps < 1 {
		return nil, errors.New("micro: Reps must be positive")
	}
	sizes := cfg.Sizes
	if sizes == nil {
		sizes = DefaultSizes(1 << 20)
	}
	for _, nb := range sizes {
		if nb < 0 {
			return nil, fmt.Errorf("micro: negative message size %d", nb)
		}
	}

	rts := make([]float64, len(sizes))
	res, err := nx.Run(nx.Config{Model: cfg.Model, Procs: procs, Ctx: cfg.Ctx, Shards: cfg.Shards}, func(p *nx.Proc) {
		for si, nb := range sizes {
			switch p.Rank() {
			case 0:
				t0 := p.Now()
				for r := 0; r < reps; r++ {
					p.SendPhantom(peer, tagPing, nb)
					p.Recv(peer, tagPong)
				}
				rts[si] = (p.Now() - t0) / float64(reps)
				p.ExchangeBatchPhantom(peer, tagExch, nb, 1)
			case peer:
				for r := 0; r < reps; r++ {
					p.Recv(0, tagPing)
					p.SendPhantom(0, tagPong, nb)
				}
				p.ExchangeBatchPhantom(0, tagExch, nb, 1)
			}
			// Every rank joins a broadcast between sizes: it keeps the
			// idle ranks in the program (so the sweep canaries the fused
			// engine at full width, cross-shard included) and separates
			// the sizes in the trace.
			p.World().BcastPhantom(0, 8)
		}
	})
	if err != nil {
		return nil, err
	}

	out := &Outcome{Run: res, Points: make([]Point, len(sizes))}
	for si, nb := range sizes {
		rt := rts[si]
		pt := Point{Bytes: nb, RoundTrip: rt, OneWay: rt / 2}
		if pt.OneWay > 0 {
			pt.Bandwidth = float64(nb) / pt.OneWay
		}
		out.Points[si] = pt
	}
	out.Latency = out.Points[0].OneWay
	out.Bandwidth = out.Points[len(out.Points)-1].Bandwidth
	return out, nil
}
