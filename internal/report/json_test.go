package report

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTableJSONRoundTrip(t *testing.T) {
	tbl := NewTable("Budget", "Agency", "FY93")
	tbl.AddRow("DARPA", "275.0")
	tbl.AddRow("NSF", "261.9")
	s, err := tbl.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(s, "\n") {
		t.Fatal("JSON output not newline-terminated")
	}
	for _, want := range []string{`"title": "Budget"`, `"DARPA"`, `"columns"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("JSON missing %s:\n%s", want, s)
		}
	}
	var back Table
	if err := json.Unmarshal([]byte(s), &back); err != nil {
		t.Fatal(err)
	}
	if back.Title != tbl.Title || len(back.Rows) != 2 || back.Rows[0][0] != "DARPA" {
		t.Fatalf("round trip lost data: %+v", back)
	}
	// The rehydrated table renders identically.
	if back.Render() != tbl.Render() {
		t.Fatal("rendered output differs after JSON round trip")
	}
}

func TestTableJSONEmptyRows(t *testing.T) {
	tbl := NewTable("Empty", "A")
	s, err := tbl.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, `"rows": []`) {
		t.Fatalf("nil rows should encode as [], got:\n%s", s)
	}
}
