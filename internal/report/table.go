// Package report renders the tables, ASCII charts and CSV exports used to
// regenerate every exhibit of the paper. All output is plain text so that
// benchmark harnesses can print the same rows the paper reports.
//
// The package sits below the harness in the Workload → Registry → Sweep →
// Store pipeline and depends only on the standard library: workloads use
// Table/BarChart to render their Results, and the store's diff layer uses
// DeltaReport (delta.go) to render per-metric comparisons between two
// stored snapshots — Classify decides whether a metric moved past the
// regression threshold, and LowerIsBetter supplies each metric's good
// direction from its name and unit.
package report

import (
	"fmt"
	"strings"
)

// Align controls horizontal alignment of a table column.
type Align int

// Column alignments.
const (
	Left Align = iota
	Right
)

// Table is a simple text table with a title, a header row and data rows.
// Cells are strings; use Cellf or the Add* helpers for formatting.
type Table struct {
	Title   string
	Columns []string
	Aligns  []Align // optional; defaults to Left for col 0, Right otherwise
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Short rows are padded with empty cells; long rows
// cause a panic because they indicate a programming error in the caller.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Columns) {
		panic(fmt.Sprintf("report: row has %d cells but table %q has %d columns",
			len(cells), t.Title, len(t.Columns)))
	}
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Cellf formats a cell value.
func Cellf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

func (t *Table) align(col int) Align {
	if col < len(t.Aligns) {
		return t.Aligns[col]
	}
	if col == 0 {
		return Left
	}
	return Right
}

// Render returns the table as an aligned plain-text block terminated by a
// newline.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len(cell)
			if t.align(i) == Right {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(cell)
			} else {
				b.WriteString(cell)
				if i != len(cells)-1 {
					b.WriteString(strings.Repeat(" ", pad))
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w
	}
	total += 2 * (len(widths) - 1)
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV returns the table in RFC-4180-ish CSV form (header row first). Cells
// containing commas, quotes or newlines are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRec := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRec(t.Columns)
	for _, row := range t.Rows {
		writeRec(row)
	}
	return b.String()
}
