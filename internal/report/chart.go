package report

import (
	"fmt"
	"math"
	"strings"
)

// BarChart renders a horizontal ASCII bar chart: one row per label, bars
// scaled so the maximum value spans width characters. Values must be
// non-negative; the rendered value is appended after each bar.
func BarChart(title string, labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		panic("report: BarChart labels/values length mismatch")
	}
	if width < 1 {
		width = 40
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v < 0 || math.IsNaN(v) {
			panic(fmt.Sprintf("report: BarChart value %d is %g; must be non-negative", i, v))
		}
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for i, v := range values {
		n := 0
		if maxV > 0 {
			n = int(math.Round(v / maxV * float64(width)))
		}
		fmt.Fprintf(&b, "%-*s |%-*s %g\n", maxL, labels[i], width, strings.Repeat("#", n), v)
	}
	return b.String()
}

// LogBarChart is like BarChart but scales bar lengths logarithmically, which
// keeps multi-decade series (56 kbps vs 800 Mbps links) legible. Zero values
// render as empty bars.
func LogBarChart(title string, labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		panic("report: LogBarChart labels/values length mismatch")
	}
	if width < 1 {
		width = 40
	}
	logs := make([]float64, len(values))
	minPos := math.Inf(1)
	for i, v := range values {
		if v < 0 || math.IsNaN(v) {
			panic(fmt.Sprintf("report: LogBarChart value %d is %g; must be non-negative", i, v))
		}
		if v > 0 && v < minPos {
			minPos = v
		}
	}
	maxLog := 0.0
	for i, v := range values {
		if v > 0 {
			logs[i] = math.Log10(v/minPos) + 1 // >= 1 for the smallest positive value
			if logs[i] > maxLog {
				maxLog = logs[i]
			}
		}
	}
	maxL := 0
	for _, l := range labels {
		if len(l) > maxL {
			maxL = len(l)
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for i, v := range values {
		n := 0
		if logs[i] > 0 && maxLog > 0 {
			n = int(math.Round(logs[i] / maxLog * float64(width)))
			if n < 1 {
				n = 1
			}
		}
		fmt.Fprintf(&b, "%-*s |%-*s %g\n", maxL, labels[i], width, strings.Repeat("#", n), v)
	}
	return b.String()
}

// Series renders an (x, y) series as two aligned columns, a minimal "figure"
// format for scaling curves.
func Series(title, xName, yName string, xs, ys []float64) string {
	if len(xs) != len(ys) {
		panic("report: Series xs/ys length mismatch")
	}
	t := NewTable(title, xName, yName)
	t.Aligns = []Align{Right, Right}
	for i := range xs {
		t.AddRow(trimFloat(xs[i]), trimFloat(ys[i]))
	}
	return t.Render()
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}
