package report

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		name        string
		old, new    float64
		threshold   float64
		lowerBetter bool
		wantStatus  DeltaStatus
		wantPct     float64
	}{
		{"equal", 10, 10, 0.05, false, DeltaOK, 0},
		{"small wobble", 100, 101, 0.05, false, DeltaOK, 0.01},
		{"rate drop regresses", 100, 80, 0.05, false, DeltaRegressed, -0.2},
		{"rate gain improves", 100, 120, 0.05, false, DeltaImproved, 0.2},
		{"time growth regresses", 1.0, 1.5, 0.05, true, DeltaRegressed, 0.5},
		{"time drop improves", 2.0, 1.0, 0.05, true, DeltaImproved, -0.5},
		{"exactly threshold is ok", 100, 95, 0.05, false, DeltaOK, -0.05},
		{"zero old clamps to +100%", 0, 3, 0.05, true, DeltaRegressed, 1},
		{"negative old uses magnitude", -10, -5, 0.05, true, DeltaRegressed, 0.5},
	}
	for _, c := range cases {
		pct, status := Classify(c.old, c.new, c.threshold, c.lowerBetter)
		if status != c.wantStatus {
			t.Errorf("%s: status = %s, want %s", c.name, status, c.wantStatus)
		}
		if diff := pct - c.wantPct; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("%s: pct = %g, want %g", c.name, pct, c.wantPct)
		}
	}
}

func TestLowerIsBetter(t *testing.T) {
	cases := []struct {
		name, unit string
		want       bool
	}{
		{"gflops", "GFLOPS", false},
		{"simulated-s", "s", true},
		{"drain-s", "s", true},
		{"p95-duration-s", "s", true},
		{"bisection-MBps", "MB/s", false},
		{"mean-latency", "", true},
		{"residual", "", true},
		{"pairs", "", false},
		{"efficiency", "", false},
	}
	for _, c := range cases {
		if got := LowerIsBetter(c.name, c.unit); got != c.want {
			t.Errorf("LowerIsBetter(%q, %q) = %v, want %v", c.name, c.unit, got, c.want)
		}
	}
}

func TestDeltaReportTableAndJSON(t *testing.T) {
	d := &DeltaReport{
		OldRef:    "latest~1",
		NewRef:    "latest",
		Threshold: 0.05,
		Rows: []DeltaRow{
			{Point: "linpack/delta", Metric: "gflops", Unit: "GFLOPS",
				Old: 13.9, New: 12.0, Delta: -1.9, Pct: -0.1367, Status: DeltaRegressed},
			{Point: "app/nas-ep", Metric: "simulated-s", Unit: "s",
				Old: 0.25, New: 0.25, Delta: 0, Pct: 0, Status: DeltaOK},
		},
		Added:   []string{"app/new-kernel"},
		Removed: nil,
	}
	if n := len(d.Regressions()); n != 1 {
		t.Fatalf("Regressions() = %d rows, want 1", n)
	}
	out := d.Table().Render()
	for _, want := range []string{"linpack/delta", "gflops", "regressed", "Delta report", "latest~1 -> latest"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	sum := d.Summary()
	if !strings.Contains(sum, "2 metric(s) compared") || !strings.Contains(sum, "1 regressed") ||
		!strings.Contains(sum, "1 point(s) added") {
		t.Errorf("unexpected summary: %q", sum)
	}

	s, err := d.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back DeltaReport
	if err := json.Unmarshal([]byte(s), &back); err != nil {
		t.Fatalf("delta JSON does not round-trip: %v", err)
	}
	if back.Rows[0].Status != DeltaRegressed || back.Threshold != 0.05 {
		t.Errorf("round-tripped report lost fields: %+v", back)
	}
}
