package report

import (
	"encoding/json"
	"fmt"
)

// tableJSON is the wire form of a Table: title, column headers, and rows
// as string matrices — enough for any downstream tool to rehydrate the
// exhibit without parsing aligned text.
type tableJSON struct {
	Title   string     `json:"title,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// MarshalJSON implements json.Marshaler.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := t.Rows
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(tableJSON{Title: t.Title, Columns: t.Columns, Rows: rows})
}

// UnmarshalJSON implements json.Unmarshaler, the inverse of MarshalJSON.
func (t *Table) UnmarshalJSON(data []byte) error {
	var tj tableJSON
	if err := json.Unmarshal(data, &tj); err != nil {
		return fmt.Errorf("report: decode table: %w", err)
	}
	t.Title, t.Columns, t.Rows = tj.Title, tj.Columns, tj.Rows
	return nil
}

// JSON returns the table as indented JSON terminated by a newline — the
// machine-readable sibling of Render and CSV.
func (t *Table) JSON() (string, error) {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return "", fmt.Errorf("report: encode table %q: %w", t.Title, err)
	}
	return string(b) + "\n", nil
}
