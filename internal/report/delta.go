package report

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// DeltaStatus classifies one metric's movement between two runs.
type DeltaStatus string

// Delta statuses. A row is regressed or improved only when its relative
// change exceeds the report's threshold; smaller movements are "ok".
const (
	DeltaOK        DeltaStatus = "ok"
	DeltaImproved  DeltaStatus = "improved"
	DeltaRegressed DeltaStatus = "regressed"
)

// DeltaRow is one metric compared across two runs of the same workload
// point (same workload ID and canonical parameters).
type DeltaRow struct {
	// Point names the workload point: the workload ID plus any
	// non-default parameters.
	Point  string `json:"point"`
	Metric string `json:"metric"`
	Unit   string `json:"unit,omitempty"`
	// Old and New are the metric values in the older and newer snapshot.
	Old float64 `json:"old"`
	New float64 `json:"new"`
	// Delta is New - Old.
	Delta float64 `json:"delta"`
	// Pct is the relative change (New-Old)/|Old| as a fraction. When Old
	// is zero and New is not, it is clamped to ±1 (a 100% change).
	Pct    float64     `json:"pct"`
	Status DeltaStatus `json:"status"`
}

// DeltaReport compares two result snapshots metric by metric. Rows cover
// the workload points present in both snapshots; Added and Removed name
// points present in only one; MetricsAdded and MetricsRemoved name
// "point: metric" pairs that appeared or vanished within a paired point —
// a vanished metric breaks the longitudinal series, so the diff gate
// treats it as a failure rather than letting it drop out silently.
type DeltaReport struct {
	OldRef         string     `json:"old"`
	NewRef         string     `json:"new"`
	Threshold      float64    `json:"threshold"`
	Rows           []DeltaRow `json:"rows"`
	Added          []string   `json:"added,omitempty"`
	Removed        []string   `json:"removed,omitempty"`
	MetricsAdded   []string   `json:"metrics_added,omitempty"`
	MetricsRemoved []string   `json:"metrics_removed,omitempty"`
	// TextChanged names metric-less points (pure-text exhibits) whose
	// rendered output changed between snapshots — the only regression
	// signal such points have.
	TextChanged []string `json:"text_changed,omitempty"`
}

// Classify compares one metric across two runs: it returns the relative
// change and its status given the threshold (a fraction; 0.05 = 5%) and
// the metric's good direction. With oldV zero and newV nonzero the
// relative change is clamped to ±1.
func Classify(oldV, newV, threshold float64, lowerIsBetter bool) (pct float64, status DeltaStatus) {
	switch {
	case oldV == newV:
		return 0, DeltaOK
	case oldV == 0:
		if newV > 0 {
			pct = 1
		} else {
			pct = -1
		}
	default:
		pct = (newV - oldV) / math.Abs(oldV)
	}
	if math.Abs(pct) <= threshold {
		return pct, DeltaOK
	}
	worse := pct > 0
	if !lowerIsBetter {
		worse = pct < 0
	}
	if worse {
		return pct, DeltaRegressed
	}
	return pct, DeltaImproved
}

// lowerBetterWords mark metrics where a smaller value is the good
// direction (times, latencies, residuals...). Everything else — rates,
// counts, efficiencies — is treated as higher-is-better.
var lowerBetterWords = []string{
	"time", "latency", "duration", "overhead", "error", "residual",
	"loss", "hop", "stall", "cost", "cycle", "drain",
}

// lowerBetterUnits are units that denote elapsed time or distance-like
// cost regardless of the metric's name.
var lowerBetterUnits = map[string]bool{
	"s": true, "sec": true, "seconds": true, "ms": true, "us": true,
	"µs": true, "ns": true, "min": true, "hours": true, "cycles": true,
	"hops": true,
}

// LowerIsBetter reports the good direction for a metric from its name and
// unit: true when a decrease is an improvement. The default is false
// (higher is better), which fits rates like GFLOPS and MB/s.
func LowerIsBetter(name, unit string) bool {
	n := strings.ToLower(name)
	for _, w := range lowerBetterWords {
		if strings.Contains(n, w) {
			return true
		}
	}
	return lowerBetterUnits[strings.ToLower(unit)]
}

// Regressions returns the rows whose status is DeltaRegressed.
func (d *DeltaReport) Regressions() []DeltaRow {
	var out []DeltaRow
	for _, r := range d.Rows {
		if r.Status == DeltaRegressed {
			out = append(out, r)
		}
	}
	return out
}

// Summary is a one-line accounting of the comparison, printed after the
// table.
func (d *DeltaReport) Summary() string {
	regressed, improved := 0, 0
	for _, r := range d.Rows {
		switch r.Status {
		case DeltaRegressed:
			regressed++
		case DeltaImproved:
			improved++
		}
	}
	s := fmt.Sprintf("%d metric(s) compared: %d regressed, %d improved",
		len(d.Rows), regressed, improved)
	if len(d.Added) > 0 {
		s += fmt.Sprintf(", %d point(s) added", len(d.Added))
	}
	if len(d.Removed) > 0 {
		s += fmt.Sprintf(", %d point(s) removed", len(d.Removed))
	}
	if len(d.MetricsAdded) > 0 {
		s += fmt.Sprintf(", %d metric(s) added", len(d.MetricsAdded))
	}
	if len(d.MetricsRemoved) > 0 {
		s += fmt.Sprintf(", %d metric(s) REMOVED (%s)",
			len(d.MetricsRemoved), strings.Join(d.MetricsRemoved, ", "))
	}
	if len(d.TextChanged) > 0 {
		s += fmt.Sprintf(", %d text exhibit(s) CHANGED (%s)",
			len(d.TextChanged), strings.Join(d.TextChanged, ", "))
	}
	return s
}

// Gates reports whether the comparison should fail a regression gate: a
// metric regressed past the threshold, a tracked metric or whole point
// vanished, or a metric-less exhibit's text changed. Additions never
// gate — new coverage is progress, not regression.
func (d *DeltaReport) Gates() bool {
	return len(d.Regressions()) > 0 || len(d.MetricsRemoved) > 0 ||
		len(d.Removed) > 0 || len(d.TextChanged) > 0
}

// Table renders the report as a text table using the same machinery as
// every other exhibit.
func (d *DeltaReport) Table() *Table {
	t := NewTable(
		fmt.Sprintf("Delta report: %s -> %s (threshold %.4g%%)", d.OldRef, d.NewRef, d.Threshold*100),
		"Point", "Metric", "Unit", "Old", "New", "Delta", "Delta%", "Status")
	t.Aligns = []Align{Left, Left, Left, Right, Right, Right, Right, Left}
	for _, r := range d.Rows {
		t.AddRow(r.Point, r.Metric, r.Unit,
			Cellf("%.6g", r.Old), Cellf("%.6g", r.New),
			Cellf("%+.6g", r.Delta), Cellf("%+.2f%%", r.Pct*100),
			string(r.Status))
	}
	return t
}

// JSON returns the report as indented JSON terminated by a newline.
func (d *DeltaReport) JSON() (string, error) {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return "", fmt.Errorf("report: encode delta report: %w", err)
	}
	return string(b) + "\n", nil
}
