package report

import (
	"strings"
	"testing"
)

func TestTableRenderAlignment(t *testing.T) {
	tbl := NewTable("Budget", "Agency", "FY92")
	tbl.AddRow("DARPA", "232.2")
	tbl.AddRow("NSF", "200.9")
	out := tbl.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	if lines[0] != "Budget" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Agency") {
		t.Fatalf("header = %q", lines[1])
	}
	// numeric column is right-aligned: both data rows end with digits at
	// the same column.
	if len(lines[3]) != len(lines[4]) {
		t.Fatalf("right-aligned rows have different lengths: %q vs %q", lines[3], lines[4])
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tbl := NewTable("", "A", "B", "C")
	tbl.AddRow("x")
	if got := len(tbl.Rows[0]); got != 3 {
		t.Fatalf("short row padded to %d cells, want 3", got)
	}
}

func TestTableLongRowPanics(t *testing.T) {
	tbl := NewTable("", "A")
	defer func() {
		if recover() == nil {
			t.Fatal("over-long row should panic")
		}
	}()
	tbl.AddRow("1", "2")
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("", "Name", "Note")
	tbl.AddRow("plain", "ok")
	tbl.AddRow("with,comma", `say "hi"`)
	csv := tbl.CSV()
	want := "Name,Note\nplain,ok\n\"with,comma\",\"say \"\"hi\"\"\"\n"
	if csv != want {
		t.Fatalf("CSV =\n%q\nwant\n%q", csv, want)
	}
}

func TestTableExplicitAligns(t *testing.T) {
	tbl := NewTable("", "L", "R")
	tbl.Aligns = []Align{Right, Left}
	tbl.AddRow("ab", "cd")
	out := tbl.Render()
	if !strings.Contains(out, " L") && !strings.Contains(out, "ab") {
		t.Fatalf("unexpected render:\n%s", out)
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("speeds", []string{"T1", "T3"}, []float64{1.5, 45}, 30)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want title + 2 bars, got:\n%s", out)
	}
	t1 := strings.Count(lines[1], "#")
	t3 := strings.Count(lines[2], "#")
	if t3 != 30 {
		t.Fatalf("max bar should span full width 30, got %d", t3)
	}
	if t1 >= t3 || t1 < 1 {
		t.Fatalf("T1 bar (%d) should be shorter than T3 bar (%d) but non-trivial", t1, t3)
	}
	if !strings.Contains(lines[1], "1.5") || !strings.Contains(lines[2], "45") {
		t.Fatalf("values missing from chart:\n%s", out)
	}
}

func TestBarChartPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative value should panic")
		}
	}()
	BarChart("", []string{"x"}, []float64{-1}, 10)
}

func TestBarChartMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths should panic")
		}
	}()
	BarChart("", []string{"x", "y"}, []float64{1}, 10)
}

func TestLogBarChartOrdering(t *testing.T) {
	// Four decades apart: linear chart would render 0.056 invisibly; the
	// log chart must keep every positive bar at least one character and
	// preserve ordering.
	labels := []string{"56k", "T1", "T3", "HIPPI"}
	vals := []float64{0.056, 1.544, 44.736, 800}
	out := LogBarChart("links", labels, vals, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")[1:]
	prev := 0
	for i, line := range lines {
		n := strings.Count(line, "#")
		if n < 1 {
			t.Fatalf("bar %d is empty:\n%s", i, out)
		}
		if n < prev {
			t.Fatalf("bars not monotone at %d:\n%s", i, out)
		}
		prev = n
	}
}

func TestLogBarChartZeroValue(t *testing.T) {
	out := LogBarChart("", []string{"a", "b"}, []float64{0, 10}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if strings.Count(lines[0], "#") != 0 {
		t.Fatalf("zero value must render an empty bar:\n%s", out)
	}
}

func TestSeries(t *testing.T) {
	out := Series("scaling", "P", "speedup", []float64{1, 2, 4}, []float64{1, 1.9, 3.7})
	if !strings.Contains(out, "scaling") || !strings.Contains(out, "3.7") {
		t.Fatalf("series output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title + header + rule + 3 rows
		t.Fatalf("want 6 lines, got %d:\n%s", len(lines), out)
	}
}

func TestSeriesMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched series should panic")
		}
	}()
	Series("", "x", "y", []float64{1}, []float64{1, 2})
}

func TestTrimFloat(t *testing.T) {
	if got := trimFloat(528); got != "528" {
		t.Fatalf("trimFloat(528) = %q", got)
	}
	if got := trimFloat(1.25); got != "1.25" {
		t.Fatalf("trimFloat(1.25) = %q", got)
	}
}
