package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestSuppression pins the //lint:ignore policy: a directive with a
// reason silences exactly the named analyzer on its own and the next
// line; naming the wrong analyzer silences nothing.
func TestSuppression(t *testing.T) {
	analysistest.Run(t, "suppress", analysis.Determinism)
}

// TestSuppressionMalformed checks the reason-is-mandatory half: a
// //lint:ignore with no reason is itself reported and does not silence
// the finding it sits on. Checked directly because the malformed
// finding lands on the directive's own comment line, where no trailing
// want comment can live.
func TestSuppressionMalformed(t *testing.T) {
	pkgs := analysistest.LoadFixture(t, "suppressmalformed")
	diags, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{analysis.Determinism})
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}
	var gotMalformed, gotClock bool
	for _, d := range diags {
		switch {
		case d.Analyzer == "suppression" && strings.Contains(d.Message, "malformed"):
			gotMalformed = true
		case d.Analyzer == "hpccdet" && strings.Contains(d.Message, "wall clock"):
			gotClock = true
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if !gotMalformed {
		t.Errorf("reason-less //lint:ignore was not reported as malformed; got %v", diags)
	}
	if !gotClock {
		t.Errorf("reason-less //lint:ignore silenced the finding it covers; got %v", diags)
	}
}
