package analysis

// hpccversion — the version-bump discipline. docs/WORKLOADS.md states
// the rule: when a code change alters what a versioned kernel's RunFunc
// returns, the kernel version must be bumped, because the version
// participates in the result-cache key and the remote-fleet handshake.
// Nothing enforced it. Enforcement has two halves:
//
//   - this analyzer proves versions are *enforceable*: every
//     harness.Spec.Version value and every WorkloadVersion() method
//     must evaluate to a non-empty compile-time constant string, so a
//     version lives on a source line a diff can see (a version computed
//     at runtime defeats both the cache key and the diff script);
//   - scripts/check_version_bump.sh (run in CI on pull requests) then
//     diffs versioned kernel packages against the merge base and fails
//     when kernel code changed but no version constant did.
//
// Packages marked //hpcc:versioned additionally require every Spec
// literal that carries a RunFunc to declare a Version — the marker is
// the package saying "all my kernels are cacheable", after which an
// unversioned workload is a lost invalidation lever.

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// VersionBump is the hpccversion analyzer.
var VersionBump = &Analyzer{
	Name: "hpccversion",
	Doc:  "kernel versions must be non-empty compile-time string constants (and present, in //hpcc:versioned packages)",
	Run:  runVersionBump,
}

func runVersionBump(pass *Pass) error {
	mustVersion := hasMarker(pass.Files, "versioned")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				checkSpecLit(pass, n, mustVersion)
			case *ast.FuncDecl:
				checkVersionMethod(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkSpecLit validates harness.Spec composite literals.
func checkSpecLit(pass *Pass, lit *ast.CompositeLit, mustVersion bool) {
	t := pass.TypesInfo.Types[lit].Type
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Spec" || named.Obj().Pkg() == nil ||
		named.Obj().Pkg().Path() != "repro/internal/harness" {
		return
	}
	var versionExpr ast.Expr
	hasRunFunc := false
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Version":
			versionExpr = kv.Value
		case "RunFunc", "Run":
			hasRunFunc = true
		}
	}
	if versionExpr == nil {
		if mustVersion && hasRunFunc {
			pass.Reportf(lit.Pos(), "Spec in //hpcc:versioned package declares no Version: an unversioned kernel cannot invalidate cached results or be refused by a stale fleet")
		}
		return
	}
	reportNonConstVersion(pass, versionExpr, "Spec.Version")
}

// checkVersionMethod validates WorkloadVersion methods: a single return
// of a non-empty constant string. A return of a receiver field (the
// harness.Spec carrier pattern) is exempt — there the constancy is
// enforced where the literal writes the field, not at the accessor.
func checkVersionMethod(pass *Pass, fd *ast.FuncDecl) {
	if fd.Name.Name != "WorkloadVersion" || fd.Recv == nil || fd.Body == nil {
		return
	}
	recvObjs := make(map[types.Object]bool)
	for _, field := range fd.Recv.List {
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				recvObjs[obj] = true
			}
		}
	}
	for _, stmt := range fd.Body.List {
		ret, ok := stmt.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			continue
		}
		if sel, ok := ast.Unparen(ret.Results[0]).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && recvObjs[pass.TypesInfo.Uses[id]] {
				continue
			}
		}
		reportNonConstVersion(pass, ret.Results[0], "WorkloadVersion()")
	}
}

// reportNonConstVersion flags version expressions that are not
// non-empty compile-time string constants.
func reportNonConstVersion(pass *Pass, e ast.Expr, what string) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		pass.Reportf(e.Pos(), "%s is not a compile-time constant: the version must live on a diffable source line for the bump check (and a runtime-computed version corrupts cache keys)", what)
		return
	}
	if tv.Value.Kind() == constant.String && constant.StringVal(tv.Value) == "" {
		pass.Reportf(e.Pos(), "%s is the empty string: declare a real version (e.g. \"lp-3\") or drop the field", what)
	}
}
