// Package analysistest runs analyzers over the fixture packages under
// internal/analysis/testdata/src and checks their findings against
// `// want "regexp"` comments in the fixture sources — the same
// convention as golang.org/x/tools' analysistest, rebuilt on the
// repo's own loader. Fixtures are real, compiling packages (go list
// resolves them explicitly even though ./... wildcards skip testdata),
// so every expectation is checked against fully type-checked code.
package analysistest

import (
	"errors"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"repro/internal/analysis"
)

// moduleRoot walks up from the test's working directory to the
// directory holding go.mod, so Run works from any package depth.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("no go.mod above test working directory")
		}
		dir = parent
	}
}

// expectation is one `// want` pattern at a file:line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`// want (.*)$`)
var quotedRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// Run loads the named fixture package (a directory under
// internal/analysis/testdata/src), applies the analyzers through the
// full pipeline — including suppression handling — and fails the test
// on any mismatch between findings and want comments.
func Run(t *testing.T, fixture string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkgs := LoadFixture(t, fixture)
	expects := collectWants(t, pkgs[0])
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		t.Fatalf("run analyzers on %s: %v", fixture, err)
	}

	for _, d := range diags {
		if !claim(expects, d.Pos.Filename, d.Pos.Line, d.Message) {
			t.Errorf("%s: unexpected finding: %s", fixture, d)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s: %s:%d: expected finding matching %q, got none",
				fixture, filepath.Base(e.file), e.line, e.raw)
		}
	}
}

// LoadFixture loads one fixture package by directory name, for tests
// that inspect diagnostics directly instead of through want comments.
func LoadFixture(t *testing.T, fixture string) []*analysis.Package {
	t.Helper()
	root, err := moduleRoot()
	if err != nil {
		t.Fatalf("resolve repo root: %v", err)
	}
	pkgs, err := analysis.Load(root, "./internal/analysis/testdata/src/"+fixture)
	if err != nil {
		t.Fatalf("load fixture %s: %v", fixture, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: loaded %d packages, want 1", fixture, len(pkgs))
	}
	return pkgs
}

// collectWants scans the fixture's comments for want expectations.
func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := quotedRE.FindAllStringSubmatch(m[1], -1)
				if len(quoted) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q: no quoted pattern",
						pos.Filename, pos.Line, c.Text)
				}
				for _, q := range quoted {
					pat := q[1]
					if pat == "" {
						pat = q[2] // backquoted form
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	return out
}

// claim marks the first unmatched expectation at (file, line) whose
// pattern matches the message.
func claim(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if e.matched || e.line != line || e.file != file {
			continue
		}
		if e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}
