// Package analysis is the repo's static-analysis suite: a small,
// dependency-free mirror of the golang.org/x/tools/go/analysis shape
// (Analyzer, Pass, Diagnostic) plus the four analyzer families that
// machine-check this codebase's load-bearing contracts:
//
//   - hpccdet:     determinism — no wall clocks, no global rand, no
//     map-iteration order leaking into results (determinism.go)
//   - hpcclock:    lock ordering — never two engine locks held at once,
//     no mixed atomic/non-atomic field access (lockorder.go)
//   - hpccversion: kernel versions are compile-time constants, so the
//     CI diff script can enforce version bumps (versionbump.go)
//   - hpccwire:    wire hygiene — errors crossing the wire carry
//     context, goroutines inherit the ambient ctx (wirehygiene.go)
//
// The suite is exposed two ways: `hpccvet ./...` (standalone, via the
// go-list loader in load.go) and `go vet -vettool=hpccvet ./...` (the
// cmd/go vet-tool protocol, implemented in cmd/hpccvet). Both honor the
// suppression comments parsed here:
//
//	//lint:ignore hpccdet <reason>       — next (or same) line
//	//lint:file-ignore hpccdet <reason>  — whole file
//
// A reason is mandatory: a suppression without one is itself reported.
// docs/ANALYSIS.md documents each analyzer and the suppression policy.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Pass hands one package to one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, LockOrder, VersionBump, WireHygiene}
}

// ByName resolves a comma-separated analyzer list ("" = all).
func ByName(names string) ([]*Analyzer, error) {
	if strings.TrimSpace(names) == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q (have %s)", n, strings.Join(analyzerNames(), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

func analyzerNames() []string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return names
}

// RunAnalyzers runs every analyzer over every package, applies the
// suppression comments, drops findings in _test.go files (tests may use
// wall clocks and ad-hoc goroutines freely), and returns the surviving
// diagnostics sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		d, err := runOne(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		diags = append(diags, d...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

func runOne(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			diags:     &raw,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	sup, malformed := parseSuppressions(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, d := range raw {
		if strings.HasSuffix(d.Pos.Filename, "_test.go") {
			continue
		}
		if sup.covers(d) {
			continue
		}
		out = append(out, d)
	}
	return append(out, malformed...), nil
}

// suppressions indexes the //lint: comments of one package.
type suppressions struct {
	// byLine maps file → line → analyzer names suppressed on that line.
	byLine map[string]map[int]map[string]bool
	// byFile maps file → analyzer names suppressed file-wide.
	byFile map[string]map[string]bool
}

func (s *suppressions) covers(d Diagnostic) bool {
	if names := s.byFile[d.Pos.Filename]; names[d.Analyzer] {
		return true
	}
	lines := s.byLine[d.Pos.Filename]
	return lines != nil && lines[d.Pos.Line][d.Analyzer]
}

// parseSuppressions scans every comment for the //lint:ignore and
// //lint:file-ignore directives. An ignore covers its own line and the
// line after it, so both trailing and preceding-line placement work. A
// directive without a reason (or naming no analyzer) is reported as a
// finding itself — the suppression policy requires the why on the spot.
func parseSuppressions(fset *token.FileSet, files []*ast.File) (*suppressions, []Diagnostic) {
	s := &suppressions{
		byLine: make(map[string]map[int]map[string]bool),
		byFile: make(map[string]map[string]bool),
	}
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				var fileWide bool
				var rest string
				switch {
				case strings.HasPrefix(text, "lint:ignore "):
					rest = strings.TrimPrefix(text, "lint:ignore ")
				case strings.HasPrefix(text, "lint:file-ignore "):
					rest = strings.TrimPrefix(text, "lint:file-ignore ")
					fileWide = true
				default:
					continue
				}
				pos := fset.Position(c.Pos())
				names, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				if names == "" || strings.TrimSpace(reason) == "" {
					malformed = append(malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "suppression",
						Message:  "malformed //lint: directive: want \"//lint:ignore <analyzer,...> <reason>\"",
					})
					continue
				}
				for _, name := range strings.Split(names, ",") {
					if fileWide {
						if s.byFile[pos.Filename] == nil {
							s.byFile[pos.Filename] = make(map[string]bool)
						}
						s.byFile[pos.Filename][name] = true
						continue
					}
					lines := s.byLine[pos.Filename]
					if lines == nil {
						lines = make(map[int]map[string]bool)
						s.byLine[pos.Filename] = lines
					}
					for _, ln := range []int{pos.Line, pos.Line + 1} {
						if lines[ln] == nil {
							lines[ln] = make(map[string]bool)
						}
						lines[ln][name] = true
					}
				}
			}
		}
	}
	return s, malformed
}

// hasMarker reports whether any file comment in the package carries the
// given //hpcc: marker (e.g. "deterministic", "wire", "versioned").
// Markers let packages outside the built-in scope lists — fixtures under
// testdata most of all — opt into a contract.
func hasMarker(files []*ast.File, marker string) bool {
	want := "hpcc:" + marker
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == want {
					return true
				}
			}
		}
	}
	return false
}
