package analysis

// hpccwire — hygiene at the wire boundary. The remote-execution layer
// (internal/harness wire.go/remote.go/remoteworker.go, the serve and
// worker commands in internal/cli) is where errors stop being local: a
// bare os/net error that crosses a frame tells the far side "broken
// pipe" with no hint of which shard, which frame, which phase. The repo
// convention is that every error returned from a wire-boundary function
// is wrapped with fmt.Errorf("...: %w", err) at the point it enters the
// boundary. Likewise, goroutines launched inside the boundary must see
// the ambient context: a goroutine spawned from a ctx-bearing function
// that captures no ctx outlives cancellation and leaks across runs.
//
// Scope: the wire-boundary files of repro/internal/harness and
// repro/internal/cli (by basename, listed below), plus any package that
// opts in with a //hpcc:wire marker comment (the analysistest fixtures
// do). Two checks per in-scope file:
//
//   - a `return err` whose binding assignment was a call into a package
//     outside this module, returned with no wrapping in between;
//   - a `go` statement inside a function that receives a
//     context.Context, where the spawned function neither takes nor
//     references any context value.

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// WireHygiene is the hpccwire analyzer.
var WireHygiene = &Analyzer{
	Name: "hpccwire",
	Doc:  "wrap errors crossing the wire boundary; launch goroutines with the ambient ctx",
	Run:  runWireHygiene,
}

// wireBoundaryFiles are the basenames that form the wire boundary in the
// two packages the check binds by default.
var wireBoundaryFiles = map[string]bool{
	"wire.go":         true,
	"remote.go":       true,
	"remoteworker.go": true,
	"shard.go":        true,
	"chaos.go":        true,
	"worker.go":       true,
	"serve.go":        true,
}

var wireBoundaryPkgs = map[string]bool{
	"repro/internal/harness": true,
	"repro/internal/cli":     true,
}

func runWireHygiene(pass *Pass) error {
	marked := hasMarker(pass.Files, "wire")
	boundary := wireBoundaryPkgs[pass.Pkg.Path()]
	if !marked && !boundary {
		return nil
	}
	for _, f := range pass.Files {
		if !marked {
			name := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
			if !wireBoundaryFiles[name] {
				continue
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkWireFunc(pass, n.Type, n.Body)
				}
				return true
			case *ast.FuncLit:
				checkWireFunc(pass, n.Type, n.Body)
				return true
			}
			return true
		})
	}
	return nil
}

// checkWireFunc runs both wire checks over one function body. Nested
// function literals are skipped here — the outer Inspect visits them as
// their own flows, with their own taint state.
func checkWireFunc(pass *Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	hasCtx := funcTakesContext(pass, ft)
	// tainted marks error objects whose most recent binding was a call
	// into a foreign package, not yet re-wrapped.
	tainted := make(map[types.Object]bool)
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			updateTaint(pass, n, tainted)
		case *ast.GoStmt:
			if hasCtx && !spawnSeesContext(pass, n.Call) {
				pass.Reportf(n.Pos(), "goroutine launched without the ambient ctx: this function receives a context.Context, but the spawned func never references one — it will outlive cancellation")
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				id, ok := ast.Unparen(res).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Uses[id]
				if obj != nil && tainted[obj] {
					pass.Reportf(res.Pos(), "error from outside the module returned bare across the wire boundary: wrap it (fmt.Errorf(\"<op>: %%w\", %s)) so the far side learns which frame failed", id.Name)
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// updateTaint processes one assignment: an error-typed LHS bound to a
// call into a foreign package becomes tainted; any other binding —
// fmt.Errorf wrapping, a same-module call, a composite — clears it.
func updateTaint(pass *Pass, as *ast.AssignStmt, tainted map[types.Object]bool) {
	foreign := false
	if len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			foreign = isForeignCall(pass, call)
		}
	}
	for _, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil || !isErrorType(obj.Type()) {
			continue
		}
		if foreign {
			tainted[obj] = true
		} else {
			delete(tainted, obj)
		}
	}
}

// isForeignCall reports whether the call resolves to a function outside
// this module, excluding the error-wrapping constructors: an error built
// by fmt.Errorf or errors.New/Join already carries local context.
func isForeignCall(pass *Pass, call *ast.CallExpr) bool {
	obj := calleeOf(pass, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	if path == "repro" || strings.HasPrefix(path, "repro/") {
		return false
	}
	switch {
	case path == "fmt" && obj.Name() == "Errorf",
		path == "errors" && (obj.Name() == "New" || obj.Name() == "Join"):
		return false
	case path == "context":
		// ctx.Err() returns the Canceled/DeadlineExceeded sentinels;
		// callers match them with errors.Is, and returning them bare is
		// the idiom.
		return false
	}
	return true
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// funcTakesContext reports whether the function signature includes a
// context.Context parameter.
func funcTakesContext(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isContextType(pass.TypesInfo.Types[field.Type].Type) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// spawnSeesContext reports whether the spawned call references any
// context value: a ctx-typed argument, a ctx-typed callee parameter, or
// — for a func literal — any use of a ctx-typed identifier inside it.
func spawnSeesContext(pass *Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if tv, ok := pass.TypesInfo.Types[arg]; ok && isContextType(tv.Type) {
			return true
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		seen := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if seen {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && isContextType(obj.Type()) {
					seen = true
				}
			}
			return true
		})
		return seen
	}
	// A named callee that itself takes a ctx parameter would have shown
	// up as a ctx-typed argument above; anything else is ctx-blind.
	return false
}
