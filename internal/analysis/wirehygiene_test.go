package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestWireHygiene pins hpccwire against its fixture: bare foreign errors
// and ctx-blind goroutines in ctx-bearing functions are flagged; wrapped
// returns, re-bound errors, same-module errors and ctx-aware spawns are
// not.
func TestWireHygiene(t *testing.T) {
	analysistest.Run(t, "wirehygiene", analysis.WireHygiene)
}
