// Package lockorder is the hpcclock analysistest fixture. The shard
// type mirrors internal/nx's engineShard: one mutex per shard, with the
// contract that no flow ever holds two shard locks at once.
package lockorder

import (
	"sync"
	"sync/atomic"
)

type shard struct {
	mu    sync.Mutex
	seq   int64
	slots []int
}

type other struct {
	mu sync.Mutex
}

// selfDeadlock relocks the very same mutex.
func selfDeadlock(a *shard) {
	a.mu.Lock()
	a.mu.Lock() // want `locked again while already held`
	a.mu.Unlock()
}

// doubleShard holds two locks of the same owner type: the forbidden
// symmetric-deadlock shape.
func doubleShard(a, b *shard) {
	a.mu.Lock()
	b.mu.Lock() // want `second shard lock`
	b.mu.Unlock()
	a.mu.Unlock()
}

// handOff is the sanctioned cross-shard pattern: release before taking
// the next shard's lock.
func handOff(a, b *shard) {
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}

// differentOwners may nest: the contract is per owner type.
func differentOwners(a *shard, o *other) {
	a.mu.Lock()
	o.mu.Lock()
	o.mu.Unlock()
	a.mu.Unlock()
}

// lockHelper is a same-package function that takes a shard lock; calling
// it while holding one is an indirect double acquisition.
func lockHelper(s *shard) {
	s.mu.Lock()
	s.slots = append(s.slots, 0)
	s.mu.Unlock()
}

func indirectDouble(a, b *shard) {
	a.mu.Lock()
	lockHelper(b) // want `may acquire a second shard lock`
	a.mu.Unlock()
}

// drain is the unlocker-helper shape (nx's drainWake): it releases its
// parameter's mutex, so callers transfer ownership instead of stacking.
func drain(s *shard) {
	s.slots = s.slots[:0]
	s.mu.Unlock()
}

func helperHandOff(a, b *shard) {
	a.mu.Lock()
	drain(a) // releases a.mu: the next lock is not a second acquisition
	b.mu.Lock()
	b.mu.Unlock()
}

// deferred unlocks keep the lock held to the end of the body but are not
// a violation by themselves.
func deferredUnlock(a *shard) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.slots = append(a.slots, 1)
}

// closures are separate flows: the literal runs on its own schedule, so
// the outer lock state does not leak into it.
func closureFlow(a *shard) func() {
	a.mu.Lock()
	defer a.mu.Unlock()
	return func() {
		a.mu.Lock()
		defer a.mu.Unlock()
	}
}

// mixedSeq is read both atomically and plainly: the data race -race only
// catches when the interleaving happens to occur.
func mixedSeq(s *shard) int64 {
	atomic.AddInt64(&s.seq, 1)
	return s.seq // want `mixed access is a data race`
}
