// Package wirehygiene is the hpccwire analysistest fixture: a package
// opted into the wire boundary via the marker below.
//
//hpcc:wire
package wirehygiene

import (
	"context"
	"fmt"
	"os"
	"strconv"
)

// localParse stands in for a same-module callee: errors it returns are
// assumed to carry context already.
func localParse(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("parse frame count %q: %w", s, err)
	}
	return n, nil
}

func bareForeign(path string) error {
	_, err := os.Open(path)
	if err != nil {
		return err // want `returned bare across the wire boundary`
	}
	return nil
}

func wrappedForeign(path string) error {
	_, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("open frame log %s: %w", path, err)
	}
	return nil
}

// rebound: the foreign error is re-wrapped into the same variable
// before returning, which clears the taint.
func rebound(path string) error {
	_, err := os.Open(path)
	if err != nil {
		err = fmt.Errorf("open %s: %w", path, err)
		return err
	}
	return nil
}

// sameModule errors already carry context at their own boundary.
func sameModule(s string) error {
	_, err := localParse(s)
	if err != nil {
		return err
	}
	return nil
}

func spawnBlind(ctx context.Context, work func()) {
	go work() // want `goroutine launched without the ambient ctx`
}

func spawnWithCtx(ctx context.Context, work func(context.Context)) {
	go work(ctx)
	go func() {
		<-ctx.Done()
	}()
}

// A function that receives no ctx has no ambient ctx to inherit.
func spawnNoCtx(work func()) {
	go work()
}
