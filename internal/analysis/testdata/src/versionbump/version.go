// Package versionbump is the hpccversion analysistest fixture: a
// //hpcc:versioned package of harness.Spec kernels exercising the
// constant-version discipline.
//
//hpcc:versioned
package versionbump

import (
	"context"

	"repro/internal/harness"
)

const goodVersion = "fix-3"

var runtimeVersion = computeVersion()

func computeVersion() string { return "v" }

func run(ctx context.Context, p harness.Params) (harness.Result, error) {
	return harness.Result{}, nil
}

// Constant versions, directly or through a named constant: fine.
var ok1 = harness.Spec{WorkloadID: "ok1", RunFunc: run, Version: "v1"}
var ok2 = harness.Spec{WorkloadID: "ok2", RunFunc: run, Version: goodVersion}

// A Spec with no RunFunc is a descriptor, not a kernel: no version needed.
var descriptor = harness.Spec{WorkloadID: "meta"}

var missing = harness.Spec{WorkloadID: "missing", RunFunc: run} // want `declares no Version`

var computed = harness.Spec{
	WorkloadID: "computed",
	RunFunc:    run,
	Version:    runtimeVersion, // want `not a compile-time constant`
}

var empty = harness.Spec{
	WorkloadID: "empty",
	RunFunc:    run,
	Version:    "", // want `empty string`
}

type kernel struct {
	v string
}

// A constant return satisfies the Versioned contract.
type constKernel struct{}

func (constKernel) WorkloadVersion() string { return "ck-2" }

// A receiver-field pass-through is the harness.Spec carrier pattern:
// constancy is enforced where the field is written, not here.
func (k kernel) WorkloadVersion() string { return k.v }

// Anything else computed at runtime defeats the diff script.
type badKernel struct{}

func (badKernel) WorkloadVersion() string {
	return computeVersion() // want `not a compile-time constant`
}
