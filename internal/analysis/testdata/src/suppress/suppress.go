// Package suppress is the suppression-policy fixture: //lint:ignore
// with a reason silences a finding; a directive without a reason is
// itself a finding.
//
//hpcc:deterministic
package suppress

import "time"

func deadline() time.Time {
	//lint:ignore hpccdet socket deadlines are wall-clock by definition
	return time.Now()
}

func trailing() time.Time {
	return time.Now() //lint:ignore hpccdet same-line placement also covers
}

func unsuppressed() time.Time {
	return time.Now() // want `wall clock time\.Now`
}

func wrongAnalyzer() time.Time {
	//lint:ignore hpcclock suppressing the wrong analyzer leaves hpccdet live
	return time.Now() // want `wall clock time\.Now`
}
