// Package suppressmalformed holds a //lint: directive with no reason.
// The suppression policy makes the reason mandatory, so the directive
// itself must surface as a "suppression" finding and must NOT silence
// the wall-clock finding on the next line. Checked directly by
// TestSuppressionMalformed (the finding lands on the directive's own
// comment line, where a trailing // want comment cannot live).
//
//hpcc:deterministic
package suppressmalformed

import "time"

func noReason() time.Time {
	//lint:ignore hpccdet
	return time.Now()
}
