// Package determinism is the hpccdet analysistest fixture: every
// `want` line below must be flagged, every other line must not.
//
//hpcc:deterministic
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Clock violations: wall time in a deterministic package.
func clocks(t0 time.Time) time.Duration {
	_ = time.Now()      // want `wall clock time\.Now`
	d := time.Since(t0) // want `wall clock time\.Since`
	_ = time.Until(t0)  // want `wall clock time\.Until`
	_ = time.Unix(42, 0)
	return d
}

// Rand violations: the process-global source vs an explicit seed.
func draws() int {
	n := rand.Intn(10)                // want `global math/rand source`
	r := rand.New(rand.NewSource(42)) // seeded ctor: sanctioned
	_ = n
	return r.Intn(10) // method on seeded Rand: fine
}

func shuffleGlobal(n int) {
	rand.Shuffle(n, func(i, j int) {}) // want `global math/rand source`
}

// Map-iteration order leaking into results.
func mapOrder(m map[string]int, ch chan string, sb *strings.Builder) []string {
	var unsorted []string
	for k := range m {
		unsorted = append(unsorted, k) // want `appended in map-iteration order`
	}
	_ = unsorted

	var rescued []string
	for k := range m {
		rescued = append(rescued, k) // sorted below: the sanctioned idiom
	}
	sort.Strings(rescued)

	for k := range m {
		ch <- k // want `channel send inside a map range`
	}

	for k := range m {
		sb.WriteString(k) // want `sb\.WriteString inside a map range`
	}

	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `output written via fmt\.Printf`
	}

	var total float64
	var concat string
	var count int
	for _, v := range m {
		total += float64(v) // want `float accumulation onto total`
		count += v          // integer accumulation commutes: fine
	}
	for k := range m {
		concat += k // want `string concatenation onto concat`
	}
	_, _, _ = total, concat, count

	for k, v := range m {
		if v > 0 {
			return []string{k} // want `return of a map-iteration variable`
		}
	}

	// Ranging a slice is ordered; nothing below may be flagged.
	var fromSlice []string
	for _, k := range rescued {
		fromSlice = append(fromSlice, k)
		sb.WriteString(k)
	}
	return fromSlice
}
