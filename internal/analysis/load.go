package analysis

// The package loader behind `hpccvet <patterns>` and the analysistest
// harness. golang.org/x/tools is not vendored here, so this is the
// standard-library equivalent of go/packages' LoadSyntax: `go list
// -export -deps` supplies every dependency's compiled export data (the
// go command builds it on demand), the target packages are parsed from
// source, and go/types checks them against an importer that reads those
// export files. The result carries everything an Analyzer needs.

import (
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPackage is the slice of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
	DepOnly    bool
}

// Load lists patterns from dir, type-checks every matched non-standard
// package from source, and returns them ready for analysis. Test files
// are not loaded: the suite's contracts bind the shipped code, and every
// transport for test packages (go vet's config mode) feeds files in
// explicitly instead.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Standard || p.DepOnly {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: go list %s: %s", p.ImportPath, p.Error.Err)
		}
		targets = append(targets, p)
	}
	fset := token.NewFileSet()
	imp := ExportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	var out []*Package
	for _, t := range targets {
		var files []string
		for _, f := range t.GoFiles {
			files = append(files, filepath.Join(t.Dir, f))
		}
		pkg, err := TypeCheck(fset, t.ImportPath, t.Dir, files, imp, "")
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// goList runs `go list -e -export -json -deps patterns` in dir and
// decodes the JSON stream. -deps marks dependency-only packages with
// DepOnly, which is how targets are told apart from their imports.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := []string{"list", "-e", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,Module,Error,DepOnly", "-deps"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr strings.Builder
	cmd.Stderr = &stderr
	stdout, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var out []listedPackage
	dec := json.NewDecoder(strings.NewReader(string(stdout)))
	for {
		var p listedPackage
		if derr := dec.Decode(&p); errors.Is(derr, io.EOF) {
			break
		} else if derr != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %w", derr)
		}
		out = append(out, p)
	}
	return out, nil
}

// ExportImporter builds a go/types importer that resolves every import
// from compiled export data, located by the supplied lookup (import path
// → export file). The gc importer caches packages internally, so one
// importer is shared across all packages of a load.
func ExportImporter(fset *token.FileSet, find func(string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := find(path)
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// TypeCheck parses files and type-checks them as one package using imp
// for every import. It is shared by Load above and by cmd/hpccvet's
// vet-tool mode, which gets its file list and import map from cmd/go
// instead of go list.
func TypeCheck(fset *token.FileSet, importPath, dir string, files []string, imp types.Importer, goVersion string) (*Package, error) {
	var parsed []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", name, err)
		}
		parsed = append(parsed, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Sizes:     types.SizesFor("gc", "amd64"),
	}
	tpkg, err := conf.Check(importPath, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      parsed,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}
