package analysis

// hpccdet — the determinism contract. Parallel, sharded and remote
// execution are trusted because every workload result is a pure function
// of (workload, params, kernel version): that is what the byte-identity
// CI gates compare and what the result cache and remote fleet replay.
// Three things quietly break that purity and all of them have bitten
// similar codebases: wall clocks, the process-global rand source, and
// map iteration order leaking into rendered output.
//
// Scope: the wall-clock and rand checks run only in deterministic
// packages (the simulation engine, kernels and harness — see
// deterministicPkgs — or any package marked //hpcc:deterministic). The
// map-iteration checks run module-wide: ordered output is a contract
// everywhere, from the CLI's tables to the wire protocol.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism is the hpccdet analyzer.
var Determinism = &Analyzer{
	Name: "hpccdet",
	Doc:  "flag wall clocks, global rand, and map-iteration order reaching results in deterministic packages",
	Run:  runDeterminism,
}

// deterministicPkgs are the packages whose outputs feed Results, wire
// frames or traces — the bit-identity surface. Prefixes end in "/".
var deterministicPkgs = []string{
	"repro/internal/nx",
	"repro/internal/harness",
	"repro/internal/linpack",
	"repro/internal/vtime",
	"repro/internal/micro",
	"repro/internal/mesh",
	"repro/internal/nren",
	"repro/internal/blas",
	"repro/internal/sim",
	"repro/internal/trace",
	"repro/internal/machine",
	"repro/internal/core",
	"repro/internal/apps/",
}

func isDeterministicPkg(pass *Pass) bool {
	path := pass.Pkg.Path()
	for _, p := range deterministicPkgs {
		if path == p || (strings.HasSuffix(p, "/") && strings.HasPrefix(path, p)) {
			return true
		}
	}
	return hasMarker(pass.Files, "deterministic")
}

// seededRandCtors are the math/rand entry points that take an explicit
// source or seed — the only sanctioned way into rand from deterministic
// code.
var seededRandCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	det := isDeterministicPkg(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if det {
					checkWallClock(pass, n)
					checkGlobalRand(pass, n)
				}
			case *ast.RangeStmt:
				checkMapRange(pass, f, n)
			}
			return true
		})
	}
	return nil
}

// checkWallClock flags time.Now/Since/Until: simulated time must come
// from the machine model (internal/vtime), never the host clock.
func checkWallClock(pass *Pass, call *ast.CallExpr) {
	obj := calleeOf(pass, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
		return
	}
	switch obj.Name() {
	case "Now", "Since", "Until":
		pass.Reportf(call.Pos(), "wall clock time.%s in deterministic package %s: results must be pure functions of the machine model (use internal/vtime, or suppress for I/O deadlines)",
			obj.Name(), pass.Pkg.Path())
	}
}

// checkGlobalRand flags the process-global math/rand source. Its
// sequence depends on every other consumer in the process, so two runs
// (or the local and remote side of a sweep) draw different numbers.
func checkGlobalRand(pass *Pass, call *ast.CallExpr) {
	obj := calleeOf(pass, call)
	if obj == nil || obj.Pkg() == nil {
		return
	}
	if p := obj.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
		return
	}
	// Only package-level functions hit the global source; methods on a
	// *rand.Rand constructed from a seed are deterministic.
	if _, isFunc := obj.(*types.Func); !isFunc || isMethod(obj) || seededRandCtors[obj.Name()] {
		return
	}
	pass.Reportf(call.Pos(), "global math/rand source (rand.%s) in deterministic package %s: use rand.New(rand.NewSource(seed)) so runs replay bit-identically",
		obj.Name(), pass.Pkg.Path())
}

// checkMapRange flags range-over-map bodies whose effects depend on
// iteration order: appends that are never sorted afterwards, writes to
// builders/buffers or output streams, channel sends, order-sensitive
// accumulation (string concat, float sums), and returns that pick a
// value from the iteration.
func checkMapRange(pass *Pass, file *ast.File, rng *ast.RangeStmt) {
	if rng.X == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	loopVars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}
	declaredOutside := func(e ast.Expr) (types.Object, bool) {
		obj := exprObject(pass, e)
		if obj == nil {
			return nil, false
		}
		inside := obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()
		return obj, !inside
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its body runs later, under its own rules
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, file, rng, n, declaredOutside)
		case *ast.SendStmt:
			if _, outside := declaredOutside(n.Chan); outside {
				pass.Reportf(n.Pos(), "channel send inside a map range: receivers observe map-iteration order; iterate sorted keys instead")
			}
		case *ast.CallExpr:
			checkMapRangeCall(pass, n, declaredOutside)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if usesAny(pass, res, loopVars) {
					pass.Reportf(n.Pos(), "return of a map-iteration variable: which entry wins depends on map order; iterate sorted keys instead")
					return true
				}
			}
		}
		return true
	})
}

// checkMapRangeAssign handles the append and += sinks of a map-range
// body. Appends get the sort rescue: the dominant safe idiom collects
// keys in any order and sorts immediately after the loop, and that is
// deterministic, so an append whose target is later passed to sort.* or
// slices.Sort* is not flagged.
func checkMapRangeAssign(pass *Pass, file *ast.File, rng *ast.RangeStmt, n *ast.AssignStmt, declaredOutside func(ast.Expr) (types.Object, bool)) {
	if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
		return
	}
	obj, outside := declaredOutside(n.Lhs[0])
	if !outside {
		return
	}
	switch n.Tok {
	case token.ASSIGN:
		if call, ok := n.Rhs[0].(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
			if !sortedAfter(pass, file, rng, obj) {
				pass.Reportf(n.Pos(), "%s is appended in map-iteration order and never sorted: collect keys, sort, then append", obj.Name())
			}
		}
	case token.ADD_ASSIGN:
		if b, ok := pass.TypesInfo.Types[n.Lhs[0]].Type.Underlying().(*types.Basic); ok {
			switch {
			case b.Info()&types.IsString != 0:
				pass.Reportf(n.Pos(), "string concatenation onto %s in map-iteration order: iterate sorted keys instead", obj.Name())
			case b.Info()&types.IsFloat != 0:
				pass.Reportf(n.Pos(), "float accumulation onto %s in map-iteration order: float addition is not associative, so the sum depends on map order", obj.Name())
			}
		}
	}
}

// checkMapRangeCall flags builder/buffer writes and printed output
// inside a map-range body — sinks with no sort rescue, because the
// bytes are already ordered when they leave the loop.
func checkMapRangeCall(pass *Pass, call *ast.CallExpr, declaredOutside func(ast.Expr) (types.Object, bool)) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	// fmt.Print*/Fprint* — rendered output in map order.
	if obj := calleeOf(pass, call); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(obj.Name(), "Print") || strings.HasPrefix(obj.Name(), "Fprint")) {
		pass.Reportf(call.Pos(), "output written via fmt.%s inside a map range: bytes leave in map-iteration order; iterate sorted keys instead", obj.Name())
		return
	}
	// Builder/buffer Write* on a receiver declared outside the loop.
	if !strings.HasPrefix(sel.Sel.Name, "Write") {
		return
	}
	recvObj, outside := declaredOutside(sel.X)
	if recvObj == nil || !outside {
		return
	}
	t := pass.TypesInfo.Types[sel.X].Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
		switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
		case "strings.Builder", "bytes.Buffer":
			pass.Reportf(call.Pos(), "%s.%s inside a map range builds bytes in map-iteration order; iterate sorted keys instead", recvObj.Name(), sel.Sel.Name)
		}
	}
}

// sortedAfter reports whether obj is passed to a sort call somewhere
// after the range loop — sort.X(s), sort.Slice(s, ...), slices.Sort(s).
func sortedAfter(pass *Pass, file *ast.File, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		callee := calleeOf(pass, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		switch callee.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		if !strings.HasPrefix(callee.Name(), "Sort") && !isSortHelper(callee.Name()) {
			return true
		}
		if exprObject(pass, call.Args[0]) == obj {
			found = true
		}
		return true
	})
	return found
}

// isSortHelper matches the sort package's type-specific helpers.
func isSortHelper(name string) bool {
	switch name {
	case "Strings", "Ints", "Float64s", "Stable", "Slice", "SliceStable":
		return true
	}
	return false
}

// --- shared AST/type helpers -------------------------------------------

// calleeOf resolves the object a call invokes, looking through selector
// and plain-identifier call forms.
func calleeOf(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

// exprObject resolves an expression to the variable it names, looking
// through plain identifiers and field selectors.
func exprObject(pass *Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[e]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Defs[e]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel]
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return exprObject(pass, e.X)
		}
	}
	return nil
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "append"
}

// isMethod reports whether obj is a method (has a receiver).
func isMethod(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// usesAny reports whether expression e references any object in set.
func usesAny(pass *Pass, e ast.Expr, set map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && set[pass.TypesInfo.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}
