package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestVersionBump pins hpccversion against its fixture: runtime-computed
// and empty versions are flagged, a //hpcc:versioned Spec with a RunFunc
// but no Version is flagged, and constant versions (directly, via a
// named constant, or through the receiver-field carrier pattern) pass.
func TestVersionBump(t *testing.T) {
	analysistest.Run(t, "versionbump", analysis.VersionBump)
}
