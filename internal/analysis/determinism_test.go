package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestDeterminism pins hpccdet against its fixture: wall clocks, the
// global rand source, and every map-order sink must be flagged, and the
// sanctioned idioms (seeded rand, collect-then-sort) must not be. The
// want comments double as the only-fails-without-the-analyzer check: a
// no-op hpccdet leaves every expectation unmatched.
func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "determinism", analysis.Determinism)
}
