package analysis

// hpcclock — the lock-ordering contract. The sharded fused-collective
// engine (internal/nx/shard.go) runs one mutex per engineShard, and the
// cross-engine hand-off protocol is built on a single rule: no goroutine
// ever holds two engine locks at once — cross-shard work unlocks one
// engine before locking the next, so shards cannot deadlock on lock
// order. The same shape generalizes: holding two mutexes that live in
// two instances of the *same* struct type is exactly the symmetric
// deadlock the contract forbids, wherever it appears.
//
// The analyzer checks, per function body, a single linear pass:
//
//   - a second Lock of a mutex field on the same named type while one
//     is already held (and the self-deadlock special case: re-locking
//     the very same mutex);
//   - while such a lock is held, a call to a same-package function that
//     may itself (transitively) lock a mutex of that type;
//   - helper functions that unlock a parameter's mutex (nx's drainWake)
//     are summarized, so the unlock-via-helper idiom is tracked rather
//     than flagged.
//
// It also enforces the sync/atomic half of the contract: a struct field
// accessed through sync/atomic functions anywhere in the package must
// never be read or written plainly — mixed access is a data race that
// the -race gates only catch when the interleaving happens to occur.
//
// The pass is deliberately unsound (one linear walk, no loop-carried
// state, no aliasing): it encodes the repo's locking idioms precisely
// enough to be zero-noise on the tree while catching the regressions
// that matter. docs/ANALYSIS.md spells out the limits.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockOrder is the hpcclock analyzer.
var LockOrder = &Analyzer{
	Name: "hpcclock",
	Doc:  "flag double engine-lock acquisition and mixed atomic/non-atomic field access",
	Run:  runLockOrder,
}

func runLockOrder(pass *Pass) error {
	sums := summarize(pass)
	for _, f := range pass.Files {
		for fn := range functionBodies(f) {
			checkLocks(pass, fn, sums)
		}
	}
	checkAtomicFields(pass)
	return nil
}

// funcSummary is what one package-level function means to its callers.
type funcSummary struct {
	// mayLock holds the named types whose mutex fields the function may
	// lock, directly or via same-package calls (computed to fixpoint).
	mayLock map[*types.TypeName]bool
	// unlocks maps parameter index → mutex field name the function
	// unconditionally unlocks on that parameter (the drainWake shape).
	unlocks map[int]string
	decl    *ast.FuncDecl
}

// lockSite is one mutex expression, e.g. es.mu: the owning named type
// plus the printed receiver path that identifies the instance.
type lockSite struct {
	owner *types.TypeName
	expr  string // canonical text of the mutex expression
	field string // mutex field name
}

// mutexAt resolves X in X.Lock()/X.Unlock() to a lockSite when X is a
// sync.Mutex/RWMutex field of a named struct type.
func mutexAt(pass *Pass, x ast.Expr) (lockSite, bool) {
	sel, ok := ast.Unparen(x).(*ast.SelectorExpr)
	if !ok {
		return lockSite{}, false
	}
	if !isSyncMutex(pass.TypesInfo.Types[x].Type) {
		return lockSite{}, false
	}
	recv := pass.TypesInfo.Types[sel.X].Type
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return lockSite{}, false
	}
	return lockSite{owner: named.Obj(), expr: exprString(sel), field: sel.Sel.Name}, true
}

func isSyncMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// summarize computes per-function lock behavior for the package:
// unlocker-helper shapes first, then the may-lock sets to fixpoint.
func summarize(pass *Pass) map[*types.Func]*funcSummary {
	sums := make(map[*types.Func]*funcSummary)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			s := &funcSummary{mayLock: make(map[*types.TypeName]bool), unlocks: make(map[int]string), decl: fd}
			paramObjs := make(map[types.Object]int)
			if fd.Type.Params != nil {
				i := 0
				for _, field := range fd.Type.Params.List {
					for _, name := range field.Names {
						if po := pass.TypesInfo.Defs[name]; po != nil {
							paramObjs[po] = i
						}
						i++
					}
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch sel.Sel.Name {
				case "Lock", "RLock":
					if site, ok := mutexAt(pass, sel.X); ok {
						s.mayLock[site.owner] = true
					}
				case "Unlock", "RUnlock":
					if site, ok := mutexAt(pass, sel.X); ok {
						// Unlock of <param>.<field>: record the helper shape.
						if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
							if id, ok := ast.Unparen(inner.X).(*ast.Ident); ok {
								if idx, isParam := paramObjs[pass.TypesInfo.Uses[id]]; isParam {
									s.unlocks[idx] = site.field
								}
							}
						}
					}
				}
				return true
			})
			sums[obj] = s
		}
	}
	// Propagate may-lock through same-package calls to fixpoint.
	for changed := true; changed; {
		changed = false
		for _, s := range sums {
			ast.Inspect(s.decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee, ok := calleeOf(pass, call).(*types.Func)
				if !ok {
					return true
				}
				cs, ok := sums[callee]
				if !ok {
					return true
				}
				for tn := range cs.mayLock {
					if !s.mayLock[tn] {
						s.mayLock[tn] = true
						changed = true
					}
				}
				return true
			})
		}
	}
	return sums
}

// functionBodies yields every function body in a file: declarations and
// literals, each analyzed as its own flow (a closure runs on its own
// goroutine or schedule, so lock state does not flow into it).
func functionBodies(f *ast.File) map[*ast.BlockStmt]bool {
	out := make(map[*ast.BlockStmt]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out[n.Body] = true
			}
		case *ast.FuncLit:
			if n.Body != nil {
				out[n.Body] = true
			}
		}
		return true
	})
	return out
}

// checkLocks walks one function body in source order tracking which
// mutexes are held, ignoring nested function literals (separate flows).
func checkLocks(pass *Pass, body *ast.BlockStmt, sums map[*types.Func]*funcSummary) {
	held := make(map[string]lockSite) // expr → site
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			// defer x.mu.Unlock() / defer drainWake(es): the lock stays
			// held for the rest of the body; nothing to track beyond
			// not treating it as an immediate unlock.
			return false
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if ok {
				switch sel.Sel.Name {
				case "Lock", "RLock":
					if site, ok := mutexAt(pass, sel.X); ok {
						if prev, dup := held[site.expr]; dup {
							pass.Reportf(n.Pos(), "%s locked again while already held (self-deadlock; first lock above still in force on %s)", site.expr, prev.expr)
							return true
						}
						for _, h := range held {
							if h.owner == site.owner {
								pass.Reportf(n.Pos(), "second %s lock (%s) acquired while %s is held: the engine contract is one lock at a time — unlock before relocking, as the cross-shard hand-off does", site.owner.Name(), site.expr, h.expr)
							}
						}
						held[site.expr] = site
						return true
					}
				case "Unlock", "RUnlock":
					if site, ok := mutexAt(pass, sel.X); ok {
						delete(held, site.expr)
						return true
					}
				}
			}
			// A call made while a lock is held: flag callees that may
			// take another lock of the same type. Unlocker helpers
			// release their argument's mutex instead.
			if callee, ok := calleeOf(pass, n).(*types.Func); ok {
				if s, known := sums[callee]; known {
					for idx, field := range s.unlocks {
						if idx < len(n.Args) {
							delete(held, exprString(n.Args[idx])+"."+field)
						}
					}
					for _, h := range held {
						if s.mayLock[h.owner] {
							pass.Reportf(n.Pos(), "call to %s may acquire a second %s lock while %s is held: release the engine lock before the call", callee.Name(), h.owner.Name(), h.expr)
							break
						}
					}
				}
			}
		}
		return true
	})
}

// checkAtomicFields flags struct fields that are touched both through
// sync/atomic and through plain reads/writes anywhere in the package.
func checkAtomicFields(pass *Pass) {
	atomicFields := make(map[types.Object]token.Pos) // field → first atomic site
	inAtomicCall := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeOf(pass, call)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" || isMethod(obj) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr); ok {
					if s := pass.TypesInfo.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
						field := s.Obj()
						if _, seen := atomicFields[field]; !seen {
							atomicFields[field] = call.Pos()
						}
						inAtomicCall[sel] = true
					}
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || inAtomicCall[sel] {
				return true
			}
			s := pass.TypesInfo.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			if _, isAtomic := atomicFields[s.Obj()]; isAtomic {
				pass.Reportf(sel.Pos(), "field %s is accessed with sync/atomic elsewhere in this package but plainly here: mixed access is a data race — use atomic, or an atomic.Int/Bool field type", s.Obj().Name())
			}
			return true
		})
	}
}

// exprString renders an expression as its canonical source text —
// the instance identity the lock tracker keys held mutexes by.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.BasicLit:
		return e.Value
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(e.X)
	}
	return "?"
}
