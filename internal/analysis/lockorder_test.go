package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestLockOrder pins hpcclock against its fixture: self-deadlock,
// same-owner double locks (direct and through a may-lock callee) and
// mixed atomic/plain field access are flagged; the hand-off,
// unlocker-helper, deferred-unlock and closure idioms are not.
func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "lockorder", analysis.LockOrder)
}
