package funding

import (
	"math"
	"strings"
	"testing"
)

func TestLinesSumToPaperTotals(t *testing.T) {
	// The paper prints per-agency budgets AND totals; our encoding must be
	// internally consistent with both.
	lines := FY9293()
	want92, want93 := PaperTotals()
	if got := Total(lines, 1992); math.Abs(got-want92) > 0.05 {
		t.Fatalf("FY92 total = %.1f, paper prints %.1f", got, want92)
	}
	if got := Total(lines, 1993); math.Abs(got-want93) > 0.05 {
		t.Fatalf("FY93 total = %.1f, paper prints %.1f", got, want93)
	}
}

func TestEightAgenciesInPaperOrder(t *testing.T) {
	lines := FY9293()
	if len(lines) != 8 {
		t.Fatalf("%d agencies, want 8", len(lines))
	}
	wantOrder := []string{DARPA, NSF, DOE, NASA, NIH, NOAA, EPA, NIST}
	for i, l := range lines {
		if l.Agency != wantOrder[i] {
			t.Fatalf("row %d = %s, want %s", i, l.Agency, wantOrder[i])
		}
	}
	// paper rows are sorted by descending FY92 budget
	for i := 1; i < len(lines); i++ {
		if lines[i].FY92 > lines[i-1].FY92 {
			t.Fatalf("rows not descending at %d", i)
		}
	}
}

func TestEveryAgencyGrows(t *testing.T) {
	// FY93 requested more for every agency; growth must be positive.
	for _, l := range FY9293() {
		if l.Growth() <= 0 {
			t.Errorf("%s growth = %g", l.Agency, l.Growth())
		}
	}
}

func TestSpecificValues(t *testing.T) {
	lines := FY9293()
	if lines[0].FY92 != 232.2 || lines[0].FY93 != 275.0 {
		t.Fatalf("DARPA row wrong: %+v", lines[0])
	}
	if lines[7].FY92 != 2.1 || lines[7].FY93 != 4.1 {
		t.Fatalf("NIST row wrong: %+v", lines[7])
	}
	// NIST nearly doubles: growth ~95%
	if g := lines[7].Growth(); g < 0.9 || g > 1.0 {
		t.Fatalf("NIST growth = %g, want ~0.95", g)
	}
}

func TestShare(t *testing.T) {
	lines := FY9293()
	s := Share(lines, DARPA, 1992)
	if math.Abs(s-232.2/654.8) > 1e-9 {
		t.Fatalf("DARPA FY92 share = %g", s)
	}
	if Share(lines, "nonexistent", 1992) != 0 {
		t.Fatal("missing agency share should be 0")
	}
	// DARPA+NSF dominate: over 60% both years
	for _, yr := range []int{1992, 1993} {
		if Share(lines, DARPA, yr)+Share(lines, NSF, yr) < 0.6 {
			t.Fatalf("DARPA+NSF share under 60%% in %d", yr)
		}
	}
}

func TestTotalPanicsOnBadYear(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad year should panic")
		}
	}()
	Total(FY9293(), 1990)
}

func TestTableMatchesPaperText(t *testing.T) {
	out := Table().Render()
	for _, want := range []string{
		"FEDERAL HPCC PROGRAM FUNDING FY 92-93",
		"DARPA", "232.2", "275.0",
		"NSF", "200.9", "261.9",
		"DOC/NIST", "2.1", "4.1",
		"Total", "654.8", "802.9",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestGrowthTable(t *testing.T) {
	out := GrowthTable().Render()
	if !strings.Contains(out, "Total") {
		t.Fatalf("growth table missing total:\n%s", out)
	}
	// overall program growth is 22.6%
	if !strings.Contains(out, "22.6") {
		t.Fatalf("program growth should be 22.6%%:\n%s", out)
	}
}
