// Package funding encodes the paper's federal HPCC budget table (FY 1992-93
// funding by agency, in millions of dollars) as first-class data with the
// derived analytics — totals, growth rates, agency shares — and regenerates
// the printed table exactly.
package funding

import (
	"fmt"

	"repro/internal/report"
)

// Agency names exactly as the paper's table prints them.
const (
	DARPA = "DARPA"
	NSF   = "NSF"
	DOE   = "DOE"
	NASA  = "NASA"
	NIH   = "HHS/NIH"
	NOAA  = "DOC/NOAA"
	EPA   = "EPA"
	NIST  = "DOC/NIST"
)

// Line is one row of the funding table: an agency's FY92 and FY93 budgets
// in millions of dollars.
type Line struct {
	Agency     string
	FY92, FY93 float64
}

// Growth returns the FY92->FY93 relative growth.
func (l Line) Growth() float64 {
	if l.FY92 == 0 {
		return 0
	}
	return (l.FY93 - l.FY92) / l.FY92
}

// FY9293 returns the paper's table ("Federal HPCC Program Funding FY 92-93,
// Dollars in millions") in the paper's row order (descending FY92 budget).
func FY9293() []Line {
	return []Line{
		{DARPA, 232.2, 275.0},
		{NSF, 200.9, 261.9},
		{DOE, 92.3, 109.1},
		{NASA, 71.2, 89.1},
		{NIH, 41.3, 44.9},
		{NOAA, 9.8, 10.8},
		{EPA, 5.0, 8.0},
		{NIST, 2.1, 4.1},
	}
}

// PaperTotals returns the totals the paper prints (654.8, 802.9), used by
// tests to verify the encoded lines are internally consistent.
func PaperTotals() (fy92, fy93 float64) { return 654.8, 802.9 }

// Total sums a fiscal year across lines. year must be 1992 or 1993.
func Total(lines []Line, year int) float64 {
	var s float64
	for _, l := range lines {
		switch year {
		case 1992:
			s += l.FY92
		case 1993:
			s += l.FY93
		default:
			panic(fmt.Sprintf("funding: unknown fiscal year %d", year))
		}
	}
	return s
}

// Share returns an agency's fraction of the year's total, or 0 if absent.
func Share(lines []Line, agency string, year int) float64 {
	total := Total(lines, year)
	if total == 0 {
		return 0
	}
	for _, l := range lines {
		if l.Agency == agency {
			if year == 1992 {
				return l.FY92 / total
			}
			return l.FY93 / total
		}
	}
	return 0
}

// Table regenerates the paper's funding table, including the totals row.
func Table() *report.Table {
	t := report.NewTable("FEDERAL HPCC PROGRAM FUNDING FY 92-93 (Dollars in millions)",
		"AGENCY", "FY 1992", "FY 1993")
	lines := FY9293()
	for _, l := range lines {
		t.AddRow(l.Agency, report.Cellf("%.1f", l.FY92), report.Cellf("%.1f", l.FY93))
	}
	t.AddRow("Total", report.Cellf("%.1f", Total(lines, 1992)), report.Cellf("%.1f", Total(lines, 1993)))
	return t
}

// GrowthTable is the derived analysis: per-agency growth and share of the
// FY93 total, sorted in table order.
func GrowthTable() *report.Table {
	t := report.NewTable("HPCC funding growth FY92 -> FY93",
		"AGENCY", "Growth %", "FY93 share %")
	lines := FY9293()
	for _, l := range lines {
		t.AddRow(l.Agency,
			report.Cellf("%.1f", l.Growth()*100),
			report.Cellf("%.1f", Share(lines, l.Agency, 1993)*100))
	}
	total92, total93 := Total(lines, 1992), Total(lines, 1993)
	t.AddRow("Total", report.Cellf("%.1f", (total93-total92)/total92*100), "100.0")
	return t
}
