// Package journal implements the crash-safe sweep journal: an fsync'd
// append-only JSONL file, one per sweep, keyed by the sweep's identity
// hash. The first line is a Header naming exactly what the sweep was —
// mode, registry fingerprint, collective/shard configuration, and the
// full (workload ID, canonical params) job list — and every line after
// it is one completed (index, Result) checkpoint, appended in index
// order through the harness assembler's in-order emit path.
//
// `hpcc resume` reopens the file, verifies the identity hash (a journal
// written by a different binary or a different job list is refused with
// ErrIdentityMismatch, never silently replayed), recovers a torn tail
// left by a crash mid-append (the partial last line is truncated with a
// warning, never a failure), and hands the completed indexes to a
// harness.JournalingExecutor as instant hits — so only the remainder
// runs, and the resumed output is byte-identical to an uninterrupted
// run.
package journal

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
)

// Schema is the journal file schema revision, recorded in every header.
const Schema = 1

// keyHexLen is how many hex digits of the identity hash name a journal
// file — 64 bits, plenty against collision across one journal directory.
const keyHexLen = 16

// ErrIdentityMismatch reports a journal whose identity hash does not
// match what this binary would compute for the same sweep — a different
// registry fingerprint, job list, or collective/shard configuration.
// Replaying it could silently mix results from two different experiment
// definitions, so resume refuses instead.
var ErrIdentityMismatch = errors.New("journal: identity mismatch")

// ErrExists reports that a journal for this sweep identity already
// exists — the caller must either resume it or remove it, never
// silently append a second run into it.
var ErrExists = errors.New("journal: journal already exists")

// Job is one sweep point as the journal header records it: the workload
// by registry ID plus the exact Params. Resume rebuilds the real job
// list by looking each ID up in the live registry.
type Job struct {
	WorkloadID string         `json:"workload_id"`
	Params     harness.Params `json:"params"`
}

// Header is a journal's first line: the full identity of the sweep it
// checkpoints. Hash is the identity digest of the other fields; Open
// recomputes and verifies it, so a journal can never be replayed
// against a sweep it does not describe.
type Header struct {
	// Journal is the file schema revision (Schema).
	Journal int `json:"journal"`
	// Hash is the sweep identity digest (keyHexLen hex digits) and also
	// the journal's filename stem.
	Hash string `json:"hash"`
	// Mode records which command wrote the journal ("sweep", "report",
	// "run") so resume can render results the same way.
	Mode string `json:"mode"`
	// Fingerprint is the workload registry fingerprint of the writing
	// binary: same-registry enforcement, exactly like the fleet
	// handshake.
	Fingerprint string `json:"fingerprint"`
	// Collectives and SimShards pin the nx execution configuration the
	// sweep ran under; resume re-applies them so the remainder computes
	// identical bytes.
	Collectives string `json:"collectives,omitempty"`
	SimShards   int    `json:"sim_shards,omitempty"`
	// JSON records whether the interrupted command was asked for JSON
	// output; render-only, excluded from the identity hash.
	JSON bool `json:"json,omitempty"`
	// Jobs is the full sweep job list in dispatch order.
	Jobs []Job `json:"jobs"`
	// Time is when the journal was created; informational only.
	Time time.Time `json:"time"`
}

// Identity computes the header's identity digest over everything that
// determines the sweep's bytes: mode, registry fingerprint, collective
// mode, shard count, and the ordered (workload ID, canonical params)
// job list. Render-only fields (JSON, Time) are excluded.
func (h Header) Identity() string {
	sum := sha256.New()
	io.WriteString(sum, "hpcc-journal\x00")
	io.WriteString(sum, h.Mode)
	io.WriteString(sum, "\x00")
	io.WriteString(sum, h.Fingerprint)
	io.WriteString(sum, "\x00")
	io.WriteString(sum, h.Collectives)
	io.WriteString(sum, "\x00")
	io.WriteString(sum, strconv.Itoa(h.SimShards))
	io.WriteString(sum, "\x00")
	for _, j := range h.Jobs {
		io.WriteString(sum, j.WorkloadID)
		io.WriteString(sum, "\x00")
		io.WriteString(sum, j.Params.Canonical())
		io.WriteString(sum, "\x00")
	}
	return hex.EncodeToString(sum.Sum(nil))[:keyHexLen]
}

// entry is one checkpoint line: a completed job index and its result.
type entry struct {
	Index  int            `json:"index"`
	Result harness.Result `json:"result"`
}

// Path returns the journal file a sweep with the given identity hash
// lives at inside dir.
func Path(dir, hash string) string {
	return filepath.Join(dir, hash+".jsonl")
}

// List returns the journal files in dir, sorted by name. A missing
// directory is an empty list, not an error.
func List(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("journal: list %s: %w", dir, err)
	}
	sort.Strings(matches)
	return matches, nil
}

// Journal is an open sweep journal positioned for appending. It
// implements harness.JournalSink.
type Journal struct {
	path   string
	f      *os.File
	header Header
}

// Create starts a fresh journal for h inside dir (created if missing).
// h.Hash is computed here; the header line is written and fsync'd before
// Create returns, so even an immediately-crashed sweep leaves a
// resumable (if empty) journal. A journal for the same identity already
// on disk fails with ErrExists — the caller decides whether to resume
// or remove it.
func Create(dir string, h Header) (*Journal, error) {
	h.Journal = Schema
	h.Hash = h.Identity()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: create dir: %w", err)
	}
	path := Path(dir, h.Hash)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if errors.Is(err, fs.ErrExist) {
			return nil, fmt.Errorf("%w: %s", ErrExists, path)
		}
		return nil, fmt.Errorf("journal: create: %w", err)
	}
	b, err := json.Marshal(h)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: encode header: %w", err)
	}
	b = append(b, '\n')
	if _, err := f.Write(b); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: write header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: sync header: %w", err)
	}
	return &Journal{path: path, f: f, header: h}, nil
}

// Open reopens an existing journal for resuming: it verifies the header
// against its own identity hash, replays the checkpoint entries into an
// index → Result map, recovers a torn final line (truncating it with a
// note on warn — a crash mid-append must never make a journal
// unresumable), and leaves the file positioned for appending. A missing
// file propagates fs.ErrNotExist.
func Open(path string, warn io.Writer) (*Journal, Header, map[int]harness.Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, Header{}, nil, fmt.Errorf("journal: open: %w", err)
	}

	lines, torn, tornOff := splitJournal(data)
	if len(lines) == 0 {
		return nil, Header{}, nil, fmt.Errorf("journal: %s is empty", path)
	}

	var h Header
	if err := json.Unmarshal(lines[0], &h); err != nil {
		return nil, Header{}, nil, fmt.Errorf("journal: %s: bad header: %w", path, err)
	}
	if h.Journal != Schema {
		return nil, Header{}, nil, fmt.Errorf("journal: %s has schema %d, this binary speaks %d", path, h.Journal, Schema)
	}
	if want := h.Identity(); h.Hash != want {
		return nil, Header{}, nil, fmt.Errorf("%w: %s records hash %s but its contents hash to %s", ErrIdentityMismatch, path, h.Hash, want)
	}

	done := make(map[int]harness.Result, len(lines)-1)
	for n, line := range lines[1:] {
		var e entry
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, Header{}, nil, fmt.Errorf("journal: %s: bad entry on line %d: %w", path, n+2, err)
		}
		if e.Index < 0 || e.Index >= len(h.Jobs) {
			return nil, Header{}, nil, fmt.Errorf("journal: %s: entry index %d out of range [0,%d)", path, e.Index, len(h.Jobs))
		}
		done[e.Index] = e.Result
	}

	if torn {
		// A crash mid-append left a partial line. The entries before it
		// are intact; drop the fragment so the next append starts clean.
		if warn != nil {
			fmt.Fprintf(warn, "journal: recovered torn tail in %s (dropped %d-byte partial entry)\n", path, len(data)-tornOff)
		}
		if err := os.Truncate(path, int64(tornOff)); err != nil {
			return nil, Header{}, nil, fmt.Errorf("journal: truncate torn tail: %w", err)
		}
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, Header{}, nil, fmt.Errorf("journal: reopen for append: %w", err)
	}
	return &Journal{path: path, f: f, header: h}, h, done, nil
}

// splitJournal cuts a journal file into its complete lines, detecting a
// torn tail: a final line with no terminating newline that also fails
// to parse as JSON. A final line that parses but merely lacks its
// newline (crash between write and the '\n' landing is impossible here
// since entries are written in one piece, but be liberal) is kept as a
// complete line. Returns the lines, whether a torn fragment was found,
// and the byte offset the file should be truncated to.
func splitJournal(data []byte) (lines [][]byte, torn bool, tornOff int) {
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			frag := bytes.TrimSpace(data[off:])
			if len(frag) > 0 && json.Valid(frag) {
				lines = append(lines, frag)
				return lines, false, len(data)
			}
			return lines, len(frag) > 0, off
		}
		line := bytes.TrimSpace(data[off : off+nl])
		if len(line) > 0 {
			lines = append(lines, line)
		}
		off += nl + 1
	}
	return lines, false, len(data)
}

// Record implements harness.JournalSink: one checkpoint line, written in
// a single Write call and fsync'd before returning, so a result the
// sweep has surfaced is always durable.
func (j *Journal) Record(index int, res harness.Result) error {
	b, err := json.Marshal(entry{Index: index, Result: res})
	if err != nil {
		return fmt.Errorf("journal: encode entry %d: %w", index, err)
	}
	b = append(b, '\n')
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("journal: append entry %d: %w", index, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync entry %d: %w", index, err)
	}
	return nil
}

// Header returns the journal's header.
func (j *Journal) Header() Header { return j.header }

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close releases the file without removing it — the journal stays on
// disk for a later resume.
func (j *Journal) Close() error { return j.f.Close() }

// Remove closes and deletes the journal — the sweep completed, so the
// checkpoint has served its purpose.
func (j *Journal) Remove() error {
	j.f.Close()
	if err := os.Remove(j.path); err != nil {
		return fmt.Errorf("journal: remove: %w", err)
	}
	return nil
}

// Describe renders a short human identity of a journal header for
// listings and hints: hash, mode, and job count.
func (h Header) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  %-6s  %d jobs", h.Hash, h.Mode, len(h.Jobs))
	if !h.Time.IsZero() {
		fmt.Fprintf(&b, "  %s", h.Time.UTC().Format(time.RFC3339))
	}
	return b.String()
}
