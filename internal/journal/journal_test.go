package journal

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
)

func testHeader(n int) Header {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{WorkloadID: "t/job", Params: harness.Params{Seed: int64(i)}}
	}
	return Header{
		Mode:        "sweep",
		Fingerprint: "deadbeef",
		Collectives: "auto",
		SimShards:   2,
		Jobs:        jobs,
		Time:        time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC),
	}
}

func result(i int) harness.Result {
	r := harness.Result{WorkloadID: "t/job", Text: "line\n"}
	r.AddMetric("n", float64(i), "")
	return r
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	h := testHeader(4)
	j, err := Create(dir, h)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Record(i, result(i)); err != nil {
			t.Fatal(err)
		}
	}
	path := j.Path()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	var warn bytes.Buffer
	j2, h2, done, err := Open(path, &warn)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if warn.Len() != 0 {
		t.Fatalf("clean journal produced warnings: %q", warn.String())
	}
	if h2.Hash != h.Identity() || h2.Mode != "sweep" || len(h2.Jobs) != 4 {
		t.Fatalf("header mangled: %+v", h2)
	}
	if len(done) != 3 {
		t.Fatalf("replayed %d entries, want 3", len(done))
	}
	for i := 0; i < 3; i++ {
		r, ok := done[i]
		if !ok || len(r.Metrics) != 1 || r.Metrics[0].Value != float64(i) {
			t.Fatalf("entry %d mangled: %+v", i, r)
		}
	}
	// The reopened journal appends, not clobbers.
	if err := j2.Record(3, result(3)); err != nil {
		t.Fatal(err)
	}
	_, _, done, err = Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 4 {
		t.Fatalf("post-append replay has %d entries, want 4", len(done))
	}
}

func TestIdentityExcludesRenderFields(t *testing.T) {
	a, b := testHeader(2), testHeader(2)
	b.JSON = true
	b.Time = b.Time.Add(time.Hour)
	if a.Identity() != b.Identity() {
		t.Fatal("render-only fields leaked into the identity hash")
	}
	c := testHeader(2)
	c.Fingerprint = "f00dface"
	if a.Identity() == c.Identity() {
		t.Fatal("fingerprint change did not move the identity hash")
	}
	d := testHeader(3)
	if a.Identity() == d.Identity() {
		t.Fatal("job-list change did not move the identity hash")
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	dir := t.TempDir()
	h := testHeader(2)
	j, err := Create(dir, h)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := Create(dir, h); !errors.Is(err, ErrExists) {
		t.Fatalf("want ErrExists, got %v", err)
	}
}

func TestOpenMissingIsNotExist(t *testing.T) {
	_, _, _, err := Open(filepath.Join(t.TempDir(), "nope.jsonl"), nil)
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("want fs.ErrNotExist in the chain, got %v", err)
	}
}

// TestTornTailRecovered: a crash mid-append leaves a partial final
// line. Open must keep every intact entry, warn, truncate the
// fragment, and leave the file appendable — never fail.
func TestTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	j, err := Create(dir, testHeader(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := j.Record(i, result(i)); err != nil {
			t.Fatal(err)
		}
	}
	path := j.Path()
	j.Close()
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(clean, []byte(`{"index":2,"result":{"work`)...), 0o644); err != nil {
		t.Fatal(err)
	}

	var warn bytes.Buffer
	j2, _, done, err := Open(path, &warn)
	if err != nil {
		t.Fatalf("torn tail made the journal unresumable: %v", err)
	}
	if len(done) != 2 {
		t.Fatalf("replayed %d entries across the tear, want 2", len(done))
	}
	if !strings.Contains(warn.String(), "torn tail") {
		t.Fatalf("tear never surfaced as a warning: %q", warn.String())
	}
	// The next append lands on a clean boundary.
	if err := j2.Record(2, result(2)); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, _, done, err = Open(path, &warn)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 3 {
		t.Fatalf("post-recovery journal has %d entries, want 3", len(done))
	}
}

// TestUnterminatedParseableTailKept: the liberal half of tail
// recovery — a final entry that is valid JSON but merely lost its
// newline still counts.
func TestUnterminatedParseableTailKept(t *testing.T) {
	dir := t.TempDir()
	j, err := Create(dir, testHeader(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record(0, result(0)); err != nil {
		t.Fatal(err)
	}
	path := j.Path()
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, bytes.TrimRight(data, "\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, done, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 {
		t.Fatalf("unterminated-but-parseable entry dropped: %d entries", len(done))
	}
}

// TestTamperedHashRefused: a journal whose recorded hash disagrees
// with its contents must be refused with the typed sentinel, not
// replayed.
func TestTamperedHashRefused(t *testing.T) {
	dir := t.TempDir()
	j, err := Create(dir, testHeader(2))
	if err != nil {
		t.Fatal(err)
	}
	path := j.Path()
	hash := j.Header().Hash
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(data, []byte(hash), []byte(strings.Repeat("0", len(hash))), 1)
	if bytes.Equal(tampered, data) {
		t.Fatal("test bug: hash not found in header line")
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, err = Open(path, nil)
	if !errors.Is(err, ErrIdentityMismatch) {
		t.Fatalf("want ErrIdentityMismatch, got %v", err)
	}
}

func TestSchemaMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	j, err := Create(dir, testHeader(1))
	if err != nil {
		t.Fatal(err)
	}
	path := j.Path()
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data = bytes.Replace(data, []byte(`{"journal":1,`), []byte(`{"journal":99,`), 1)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, err = Open(path, nil)
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("future schema accepted: %v", err)
	}
}

func TestListAndRemove(t *testing.T) {
	dir := t.TempDir()
	hA := testHeader(1)
	hB := testHeader(2)
	jA, err := Create(dir, hA)
	if err != nil {
		t.Fatal(err)
	}
	defer jA.Close()
	jB, err := Create(dir, hB)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := List(dir)
	if err != nil || len(paths) != 2 {
		t.Fatalf("List = %v, %v", paths, err)
	}
	if err := jB.Remove(); err != nil {
		t.Fatal(err)
	}
	paths, err = List(dir)
	if err != nil || len(paths) != 1 || paths[0] != jA.Path() {
		t.Fatalf("List after Remove = %v, %v", paths, err)
	}
	// A directory that never existed lists empty, because resume's "no
	// journals in <dir>" beats a spurious I/O error.
	paths, err = List(filepath.Join(dir, "missing"))
	if err != nil || len(paths) != 0 {
		t.Fatalf("List missing dir = %v, %v", paths, err)
	}
}
