// Package integration_test exercises cross-module scenarios: applications
// on the runtime with trace recording, accounting identities between
// layers, and full-machine runs on every catalog model.
package integration_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/apps/ep"
	"repro/internal/apps/stencil"
	"repro/internal/linpack"
	"repro/internal/machine"
	"repro/internal/nx"
	"repro/internal/topo"
	"repro/internal/trace"
)

func TestLinpackTraceAccounting(t *testing.T) {
	// Run a small LU with tracing and verify the accounting identities
	// between the runtime and the trace layer: per-process compute time
	// recorded in the trace equals the runtime's ComputeTime, and no
	// process is busy longer than the makespan.
	rec := trace.NewRecorder(4)
	out, err := linpack.Run(linpack.Config{
		N: 64, NB: 8, GridRows: 2, GridCols: 2,
		Model: machine.SubMesh(machine.Delta(), 2, 2),
		Seed:  3, Trace: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank, ps := range out.Result.Procs {
		tot := rec.PhaseTotals(rank)
		if math.Abs(tot[trace.PhaseCompute]-ps.ComputeTime) > 1e-9 {
			t.Fatalf("rank %d: trace compute %g vs runtime %g",
				rank, tot[trace.PhaseCompute], ps.ComputeTime)
		}
		busy := tot[trace.PhaseCompute] + tot[trace.PhaseSend] + tot[trace.PhaseRecvWait]
		if busy > ps.Finish+1e-9 {
			t.Fatalf("rank %d: busy %g exceeds finish %g", rank, busy, ps.Finish)
		}
	}
	gantt := rec.Gantt(out.Result.Makespan, 60, 4)
	if !strings.Contains(gantt, "C") {
		t.Fatal("gantt missing compute spans")
	}
	util := rec.Utilization(out.Result.Makespan)
	for rank, u := range util {
		if u <= 0 || u > 1 {
			t.Fatalf("rank %d utilization %g outside (0,1]", rank, u)
		}
	}
}

func TestStencilTrafficMatchesAnalyticCount(t *testing.T) {
	// Integration identity: the runtime's byte counter must equal the
	// analytically known halo traffic of the 1D stencil:
	// iters * (2*(P-1) interior boundaries) * rowBytes.
	const nxc, nyc, iters, procs = 32, 32, 7, 4
	out, err := stencil.RunDistributed(stencil.Config{
		NX: nxc, NY: nyc, Iters: iters, Procs: procs,
		Model: machine.SubMesh(machine.Delta(), 1, 4), Phantom: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rowBytes := int64(8 * (nxc + 2))
	want := int64(iters) * 2 * (procs - 1) * rowBytes
	if out.Result.TotalBytes != want {
		t.Fatalf("halo traffic %d bytes, analytic %d", out.Result.TotalBytes, want)
	}
}

func TestEveryCatalogMachineRunsLinpack(t *testing.T) {
	// Full-machine phantom LU must work on every model in the catalog.
	if testing.Short() {
		t.Skip("catalog sweep skipped in -short mode")
	}
	for _, m := range []machine.Model{machine.IPSC860(), machine.Delta(), machine.Paragon()} {
		out, err := linpack.Run(linpack.Config{
			N: 4096, NB: 16, GridRows: m.Rows, GridCols: m.Cols,
			Model: m, Phantom: true, Seed: 1,
		})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if out.GFlops <= 0 || out.Efficiency <= 0 || out.Efficiency > 1 {
			t.Fatalf("%s: implausible outcome %+v", m.Name, out)
		}
	}
}

func TestEPConsistentAcrossMachines(t *testing.T) {
	// The same EP tally must be machine-independent (numerics do not
	// depend on the performance model), while virtual time differs.
	n := uint64(20000)
	slow, err := ep.Distributed(ep.Config{N: n, Procs: 16, Model: machine.IPSC860()})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := ep.Distributed(ep.Config{N: n, Procs: 16, Model: machine.Paragon()})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Result.Pairs != fast.Result.Pairs {
		t.Fatal("EP tallies depend on the machine model")
	}
	if slow.Time <= fast.Time {
		t.Fatalf("iPSC (%g) should be slower than Paragon (%g)", slow.Time, fast.Time)
	}
}

func TestMeshShapeMatchesMachineModel(t *testing.T) {
	// topological consistency: nx hop counts on the Delta model equal the
	// machine model's Manhattan distance for all pairs in a sample.
	d := machine.Delta()
	for _, pair := range [][2]int{{0, 1}, {0, 527}, {100, 400}, {33, 34}} {
		hops := d.Hops(pair[0], pair[1])
		ar, ac := d.Coord(pair[0])
		br, bc := d.Coord(pair[1])
		want := abs(ar-br) + abs(ac-bc)
		if hops != want {
			t.Fatalf("hops(%v) = %d, want %d", pair, hops, want)
		}
	}
}

func TestConsortiumReachesDeltaFromEverySite(t *testing.T) {
	// Program-level invariant: every consortium member can reach the
	// machine (Caltech) — the stated purpose of the network.
	g := topo.Consortium()
	for _, site := range topo.ConsortiumSites() {
		if site == topo.SiteCaltech {
			continue
		}
		if _, err := g.ShortestPath(site, topo.SiteCaltech, 1e6); err != nil {
			t.Fatalf("%s cannot reach the Delta: %v", site, err)
		}
	}
}

func TestDeterministicEndToEnd(t *testing.T) {
	// Determinism across the whole stack: identical virtual times for a
	// composite workload (LU + stencil) across repeated runs.
	run := func() (float64, float64) {
		lu, err := linpack.Run(linpack.Config{
			N: 128, NB: 8, GridRows: 2, GridCols: 4,
			Model: machine.SubMesh(machine.Delta(), 2, 4), Phantom: true, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := stencil.RunDistributed(stencil.Config{
			NX: 64, NY: 64, Iters: 9, Procs: 8,
			Model: machine.SubMesh(machine.Delta(), 1, 8), Phantom: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return lu.FactTime, st.Time
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("nondeterministic stack: (%g,%g) vs (%g,%g)", a1, b1, a2, b2)
	}
}

func TestRuntimeStatsConsistency(t *testing.T) {
	// Result invariants that must hold for any program: totals equal the
	// per-process sums and the makespan equals the max finish time.
	model := machine.SubMesh(machine.Delta(), 2, 2)
	res, err := nx.Run(nx.Config{Model: model}, func(p *nx.Proc) {
		p.Compute(machine.OpVector, float64(1000*(p.Rank()+1)))
		p.World().AllreduceFloats([]float64{1}, nx.SumOp)
	})
	if err != nil {
		t.Fatal(err)
	}
	var flops float64
	var bytes, msgs int64
	maxFinish := 0.0
	for _, ps := range res.Procs {
		flops += ps.Flops
		bytes += ps.BytesSent
		msgs += ps.MsgsSent
		if ps.Finish > maxFinish {
			maxFinish = ps.Finish
		}
	}
	if flops != res.TotalFlops || bytes != res.TotalBytes || msgs != res.TotalMsgs {
		t.Fatal("totals do not equal per-process sums")
	}
	if maxFinish != res.Makespan {
		t.Fatalf("makespan %g != max finish %g", res.Makespan, maxFinish)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
