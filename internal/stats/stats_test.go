package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanSum(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if m := Mean(xs); m != 2.5 {
		t.Fatalf("Mean = %g, want 2.5", m)
	}
	if s := Sum(xs); s != 10 {
		t.Fatalf("Sum = %g, want 10", s)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %g, want 0", m)
	}
}

func TestMinMax(t *testing.T) {
	if _, err := Min(nil); err != ErrEmpty {
		t.Fatal("Min(nil) should return ErrEmpty")
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Fatal("Max(nil) should return ErrEmpty")
	}
	mn, _ := Min([]float64{3, -1, 2})
	mx, _ := Max([]float64{3, -1, 2})
	if mn != -1 || mx != 3 {
		t.Fatalf("Min/Max = %g/%g, want -1/3", mn, mx)
	}
}

func TestStdDev(t *testing.T) {
	// classic example: sample sd of {2,4,4,4,5,5,7,9} is ~2.138
	sd := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(sd-2.13809) > 1e-4 {
		t.Fatalf("StdDev = %g, want ~2.138", sd)
	}
	if StdDev([]float64{5}) != 0 {
		t.Fatal("StdDev of single sample should be 0")
	}
}

func TestMedian(t *testing.T) {
	if _, err := Median(nil); err != ErrEmpty {
		t.Fatal("Median(nil) should error")
	}
	m, _ := Median([]float64{5, 1, 3})
	if m != 3 {
		t.Fatalf("odd Median = %g, want 3", m)
	}
	m, _ = Median([]float64{4, 1, 3, 2})
	if m != 2.5 {
		t.Fatalf("even Median = %g, want 2.5", m)
	}
	// Median must not reorder its input.
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Fatal("Median modified its input")
	}
}

func TestFitExactLine(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x+1
	l, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Slope-2) > 1e-12 || math.Abs(l.Intercept-1) > 1e-12 {
		t.Fatalf("Fit = %+v, want slope 2 intercept 1", l)
	}
	if math.Abs(l.R2-1) > 1e-12 {
		t.Fatalf("R2 = %g, want 1", l.R2)
	}
	if got := l.At(10); math.Abs(got-21) > 1e-12 {
		t.Fatalf("At(10) = %g, want 21", got)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("Fit with one point should error")
	}
	if _, err := Fit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("Fit with mismatched lengths should error")
	}
	if _, err := Fit([]float64{2, 2, 2}, []float64{1, 2, 3}); err != ErrDegenerate {
		t.Fatal("Fit with constant x should return ErrDegenerate")
	}
}

func TestFitRecoversLineProperty(t *testing.T) {
	// Property: for any non-degenerate slope/intercept, fitting exact
	// samples of the line recovers the parameters.
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		// keep magnitudes sane to avoid float overflow in the check
		a = math.Mod(a, 1e6)
		b = math.Mod(b, 1e6)
		x := []float64{1, 2, 5, 9}
		y := make([]float64, len(x))
		for i := range x {
			y[i] = a*x[i] + b
		}
		l, err := Fit(x, y)
		if err != nil {
			return false
		}
		scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
		return math.Abs(l.Slope-a) < 1e-6*scale && math.Abs(l.Intercept-b) < 1e-6*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHockneyModel(t *testing.T) {
	h := Hockney{Latency: 75e-6, BandwidthBps: 10e6}
	if math.Abs(h.NHalf()-750) > 1e-9 {
		t.Fatalf("NHalf = %g, want 750 bytes", h.NHalf())
	}
	// At n = n1/2 the achieved bandwidth is half of r-infinity.
	n := h.NHalf()
	achieved := n / h.Time(n)
	if math.Abs(achieved-h.BandwidthBps/2) > 1 {
		t.Fatalf("achieved bw at n1/2 = %g, want %g", achieved, h.BandwidthBps/2)
	}
}

func TestFitHockney(t *testing.T) {
	truth := Hockney{Latency: 50e-6, BandwidthBps: 8e6}
	sizes := []float64{64, 256, 1024, 8192, 65536}
	times := make([]float64, len(sizes))
	for i, s := range sizes {
		times[i] = truth.Time(s)
	}
	got, err := FitHockney(sizes, times)
	if err != nil {
		t.Fatal(err)
	}
	if RelErr(got.Latency, truth.Latency) > 1e-6 {
		t.Fatalf("latency = %g, want %g", got.Latency, truth.Latency)
	}
	if RelErr(got.BandwidthBps, truth.BandwidthBps) > 1e-6 {
		t.Fatalf("bandwidth = %g, want %g", got.BandwidthBps, truth.BandwidthBps)
	}
}

func TestFitHockneyRejectsNonsense(t *testing.T) {
	// Times shrinking with size cannot be transfer times.
	if _, err := FitHockney([]float64{1, 2, 3}, []float64{3, 2, 1}); err == nil {
		t.Fatal("FitHockney should reject negative-slope samples")
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-12 {
			t.Fatalf("Linspace[%d] = %g, want %g", i, xs[i], want[i])
		}
	}
}

func TestGeomspace(t *testing.T) {
	xs := Geomspace(1, 16, 5)
	want := []float64{1, 2, 4, 8, 16}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-9 {
			t.Fatalf("Geomspace[%d] = %g, want %g", i, xs[i], want[i])
		}
	}
}

func TestLinspacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Linspace(0,1,1) should panic")
		}
	}()
	Linspace(0, 1, 1)
}

func TestGeomspacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Geomspace with non-positive bound should panic")
		}
	}()
	Geomspace(0, 1, 3)
}

func TestRelErr(t *testing.T) {
	if RelErr(0, 0) != 0 {
		t.Fatal("RelErr(0,0) != 0")
	}
	if e := RelErr(10, 11); math.Abs(e-1.0/11) > 1e-12 {
		t.Fatalf("RelErr(10,11) = %g", e)
	}
	if RelErr(5, 5) != 0 {
		t.Fatal("RelErr(5,5) != 0")
	}
}

func TestRelErrSymmetricProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		return RelErr(a, b) == RelErr(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
