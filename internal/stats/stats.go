// Package stats provides the small set of summary statistics and fitting
// routines the benchmark harness needs: means, extrema, standard deviation,
// ordinary least-squares linear regression (used to fit Hockney r-infinity /
// n-half communication parameters from ping-pong measurements), and series
// helpers for parameter sweeps.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by routines that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// ErrDegenerate is returned by Fit when the x values do not span an interval.
var ErrDegenerate = errors.New("stats: degenerate regression (x has no spread)")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Min returns the minimum of xs, or an error for an empty slice.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs, or an error for an empty slice.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// StdDev returns the sample standard deviation (n-1 denominator) of xs.
// Slices with fewer than two elements yield 0.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Median returns the median of xs without modifying the input.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2], nil
	}
	return (cp[n/2-1] + cp[n/2]) / 2, nil
}

// Line is a fitted line y = Slope*x + Intercept with its coefficient of
// determination R2.
type Line struct {
	Slope, Intercept, R2 float64
}

// At evaluates the line at x.
func (l Line) At(x float64) float64 { return l.Slope*x + l.Intercept }

// Fit performs ordinary least-squares regression of y on x.
// len(x) must equal len(y) and be at least 2.
func Fit(x, y []float64) (Line, error) {
	if len(x) != len(y) {
		return Line{}, errors.New("stats: Fit length mismatch")
	}
	if len(x) < 2 {
		return Line{}, ErrEmpty
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Line{}, ErrDegenerate
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	r2 := 1.0
	if syy > 0 {
		// residual sum of squares
		var rss float64
		for i := range x {
			r := y[i] - (slope*x[i] + intercept)
			rss += r * r
		}
		r2 = 1 - rss/syy
	}
	return Line{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// Hockney holds the two-parameter Hockney model of point-to-point
// communication time: t(n) = Latency + n/BandwidthBps for an n-byte message.
// NHalf is the message size at which half the asymptotic bandwidth is
// achieved (n1/2 = Latency * BandwidthBps).
type Hockney struct {
	Latency      float64 // seconds (t0)
	BandwidthBps float64 // bytes per second (r-infinity)
}

// NHalf returns the half-performance message length in bytes.
func (h Hockney) NHalf() float64 { return h.Latency * h.BandwidthBps }

// Time returns the modelled transfer time for n bytes.
func (h Hockney) Time(n float64) float64 {
	if h.BandwidthBps <= 0 {
		return h.Latency
	}
	return h.Latency + n/h.BandwidthBps
}

// FitHockney fits the Hockney model to (size, time) ping-pong samples by
// linear regression of time on message size.
func FitHockney(sizes, times []float64) (Hockney, error) {
	l, err := Fit(sizes, times)
	if err != nil {
		return Hockney{}, err
	}
	if l.Slope <= 0 {
		return Hockney{}, errors.New("stats: non-positive slope; samples do not look like transfer times")
	}
	return Hockney{Latency: l.Intercept, BandwidthBps: 1 / l.Slope}, nil
}

// Linspace returns n evenly spaced values from lo to hi inclusive. n must be
// at least 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("stats: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// Geomspace returns n logarithmically spaced values from lo to hi inclusive.
// lo and hi must be positive and n at least 2.
func Geomspace(lo, hi float64, n int) []float64 {
	if n < 2 || lo <= 0 || hi <= 0 {
		panic("stats: Geomspace needs n >= 2 and positive bounds")
	}
	out := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := range out {
		out[i] = v
		v *= ratio
	}
	out[n-1] = hi
	return out
}

// RelErr returns |a-b| / max(|a|,|b|), or 0 when both are 0. It is the
// symmetric relative error used throughout the validation tests.
func RelErr(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}
