package agency

import (
	"strings"
	"testing"
)

func TestComponentNames(t *testing.T) {
	want := map[Component][2]string{
		HPCS: {"HPCS", "High Performance Computing Systems"},
		ASTA: {"ASTA", "Advanced Software Technology and Algorithms"},
		NREN: {"NREN", "National Research and Education Network"},
		BRHR: {"BRHR", "Basic Research and Human Resources"},
	}
	for c, w := range want {
		if c.String() != w[0] || c.Title() != w[1] {
			t.Errorf("%v: got %q/%q", c, c.String(), c.Title())
		}
	}
	if Component(99).String() != "Component(99)" {
		t.Error("unknown component name wrong")
	}
	if len(Components()) != 4 {
		t.Error("want 4 components")
	}
}

func TestMatrixStructureMatchesPaper(t *testing.T) {
	agencies := All()
	if len(agencies) != 8 {
		t.Fatalf("%d agencies, want the paper's 8", len(agencies))
	}
	// Presence/absence per the T4-2 matrix.
	want := map[string]map[Component]bool{
		"DARPA":    {HPCS: true, ASTA: true, NREN: true, BRHR: true},
		"NSF":      {HPCS: true, ASTA: true, NREN: true, BRHR: true},
		"DOE":      {HPCS: true, ASTA: true, NREN: true, BRHR: true},
		"NASA":     {HPCS: true, ASTA: true, NREN: true, BRHR: true},
		"HHS/NIH":  {HPCS: false, ASTA: true, NREN: true, BRHR: true},
		"DOC/NOAA": {HPCS: false, ASTA: true, NREN: true, BRHR: false},
		"EPA":      {HPCS: false, ASTA: true, NREN: true, BRHR: false},
		"DOC/NIST": {HPCS: true, ASTA: false, NREN: true, BRHR: false},
	}
	for _, a := range agencies {
		w, ok := want[a.Name]
		if !ok {
			t.Fatalf("unexpected agency %q", a.Name)
		}
		for _, c := range Components() {
			if a.HasRole(c) != w[c] {
				t.Errorf("%s x %v: got %v, want %v", a.Name, c, a.HasRole(c), w[c])
			}
		}
	}
}

func TestEveryAgencyTouchesNREN(t *testing.T) {
	// Structural fact of the matrix: the network component involves all
	// eight agencies.
	for _, a := range All() {
		if !a.HasRole(NREN) {
			t.Errorf("%s should participate in NREN", a.Name)
		}
	}
}

func TestMatrixRender(t *testing.T) {
	out := Matrix().Render()
	for _, want := range []string{"FEDERAL HPCC PROGRAM RESPONSIBILITIES",
		"HPCS", "ASTA", "NREN", "BRHR", "DARPA", "DOC/NIST"} {
		if !strings.Contains(out, want) {
			t.Fatalf("matrix missing %q:\n%s", want, out)
		}
	}
	// EPA row: blank under HPCS and BRHR, x under ASTA and NREN
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "EPA") {
			if strings.Count(line, "x") != 2 {
				t.Fatalf("EPA row should have exactly 2 x marks: %q", line)
			}
		}
	}
}

func TestGoals(t *testing.T) {
	goals := Goals()
	if len(goals) != 3 {
		t.Fatalf("%d goals, want the paper's 3", len(goals))
	}
	if !strings.Contains(goals[0], "Extend U.S. leadership") {
		t.Fatalf("first goal wrong: %q", goals[0])
	}
}

func TestDeltaPartnersAtLeast14(t *testing.T) {
	// Paper: "partners include over 14 government, industry and academia
	// organizations".
	partners := DeltaPartners()
	if len(partners) < 14 {
		t.Fatalf("%d Delta partners, paper says over 14", len(partners))
	}
	seen := map[string]bool{}
	for _, p := range partners {
		if seen[p] {
			t.Fatalf("duplicate partner %q", p)
		}
		seen[p] = true
	}
	for _, must := range []string{"Intel Corporation", "California Institute of Technology"} {
		if !seen[must] {
			t.Fatalf("missing essential partner %q", must)
		}
	}
}

func TestCASRosters(t *testing.T) {
	ind := CASIndustry()
	if len(ind) != 12 {
		t.Fatalf("%d industry participants, paper lists 12", len(ind))
	}
	aca := CASAcademia()
	if len(aca) != 4 {
		t.Fatalf("%d academic participants, paper lists 4", len(aca))
	}
	joined := strings.Join(ind, "|")
	for _, must := range []string{"Boeing", "Motorola", "General Dynamics"} {
		if !strings.Contains(joined, must) {
			t.Fatalf("missing %q", must)
		}
	}
}

func TestCASGoalsFive(t *testing.T) {
	if len(CASGoals()) != 5 {
		t.Fatalf("CAS consortium has 5 stated purposes, got %d", len(CASGoals()))
	}
}

func TestRosterTable(t *testing.T) {
	out := RosterTable().Render()
	if !strings.Contains(out, "Delta (CSC)") || !strings.Contains(out, "12 companies") {
		t.Fatalf("roster table wrong:\n%s", out)
	}
}
