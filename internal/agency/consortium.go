package agency

import "repro/internal/report"

// DeltaPartners lists the Concurrent Supercomputing Consortium membership —
// the paper says "over 14 government, industry and academia organizations"
// acquired and operate the Touchstone Delta at Caltech.
func DeltaPartners() []string {
	return []string{
		"Intel Corporation",
		"California Institute of Technology",
		"Jet Propulsion Laboratory",
		"National Science Foundation",
		"Defense Advanced Research Projects Agency",
		"National Aeronautics and Space Administration",
		"Department of Energy",
		"Center for Research on Parallel Computation (Rice University)",
		"San Diego Supercomputer Center",
		"Los Alamos National Laboratory",
		"Argonne National Laboratory",
		"Purdue University",
		"University of Southern California",
		"Pacific Northwest Laboratory",
		"Sandia National Laboratories",
	}
}

// CASIndustry lists the Computational Aerosciences Consortium's industrial
// participants (exhibit "Private Sector Participants").
func CASIndustry() []string {
	return []string{
		"Boeing", "General Electric", "Grumman", "McDonnell Douglas",
		"Northrop", "Lockheed", "United Technologies", "TRW",
		"Rockwell", "General Motors", "General Dynamics", "Motorola",
	}
}

// CASAcademia lists the CAS Consortium's academic participants.
func CASAcademia() []string {
	return []string{
		"Syracuse University", "Mississippi State University",
		"Universities Space Research Association", "University of California, Davis",
	}
}

// CASGoals lists the Computational Aerosciences Consortium's stated
// purposes (exhibit T4-5).
func CASGoals() []string {
	return []string{
		"Develop a mechanism to allow aerospace industry to influence the requirements, standards, and direction of NASA's Computational Aerosciences (CAS) project",
		"Provide a mechanism to allow industry to intellectually participate in the development of selected generic CAS applications software and systems software base",
		"Facilitate the transfer of CAS technology to aerospace users",
		"Provide industry access to high performance computing resources",
		"Provide a mechanism to allow industry to commercialize appropriate products",
	}
}

// RosterTable renders the consortium rosters as a report table.
func RosterTable() *report.Table {
	t := report.NewTable("HPCC consortium rosters", "Consortium", "Members")
	t.AddRow("Delta (CSC)", report.Cellf("%d organizations", len(DeltaPartners())))
	t.AddRow("CAS industry", report.Cellf("%d companies", len(CASIndustry())))
	t.AddRow("CAS academia", report.Cellf("%d institutions", len(CASAcademia())))
	return t
}
