// Package agency encodes the organizational structure of the federal HPCC
// program as the paper presents it: the four program components, the
// agency-by-component responsibilities matrix (exhibit T4-2), and the
// rosters of the two consortia (Delta and Computational Aerosciences).
package agency

import (
	"fmt"

	"repro/internal/report"
)

// Component is one of the four HPCC program components.
type Component int

// The four components of the federal program.
const (
	// HPCS is High Performance Computing Systems.
	HPCS Component = iota
	// ASTA is Advanced Software Technology and Algorithms.
	ASTA
	// NREN is the National Research and Education Network.
	NREN
	// BRHR is Basic Research and Human Resources.
	BRHR
	numComponents
)

// String returns the component's acronym.
func (c Component) String() string {
	switch c {
	case HPCS:
		return "HPCS"
	case ASTA:
		return "ASTA"
	case NREN:
		return "NREN"
	case BRHR:
		return "BRHR"
	}
	return fmt.Sprintf("Component(%d)", int(c))
}

// Title returns the component's full name.
func (c Component) Title() string {
	switch c {
	case HPCS:
		return "High Performance Computing Systems"
	case ASTA:
		return "Advanced Software Technology and Algorithms"
	case NREN:
		return "National Research and Education Network"
	case BRHR:
		return "Basic Research and Human Resources"
	}
	return c.String()
}

// Components lists all four components in program order.
func Components() []Component { return []Component{HPCS, ASTA, NREN, BRHR} }

// Agency is one participating agency with its per-component
// responsibilities (empty slice = no role in that component).
type Agency struct {
	Name             string
	Responsibilities map[Component][]string
}

// HasRole reports whether the agency participates in the component.
func (a Agency) HasRole(c Component) bool { return len(a.Responsibilities[c]) > 0 }

// All returns the responsibilities matrix of exhibit T4-2, in the funding
// table's agency order.
func All() []Agency {
	return []Agency{
		{"DARPA", map[Component][]string{
			HPCS: {"Technology development and coordination for teraops systems"},
			ASTA: {"Technology development for parallel algorithms and software tools", "Software coordination"},
			NREN: {"Technology development and coordination for gigabit networks"},
			BRHR: {"Basic research and education programs"},
		}},
		{"NSF", map[Component][]string{
			HPCS: {"Basic architecture research", "Prototype experimental systems"},
			ASTA: {"Research in software tools and databases", "Grand Challenges computer access", "Research in software indexing and exchange", "Scalable parallel algorithms"},
			NREN: {"Interagency NREN deployment", "Gigabits research", "Facilities coordination"},
			BRHR: {"Research institutes and university block grants", "Education, training and curricula", "Infrastructure"},
		}},
		{"DOE", map[Component][]string{
			HPCS: {"Systems evaluation"},
			ASTA: {"Energy grand challenge and computation research", "Software tools", "Computational techniques"},
			NREN: {"Access to energy research facilities and databases", "Gigabits applications research"},
			BRHR: {"Basic research and education programs", "Computational science fellowships"},
		}},
		{"NASA", map[Component][]string{
			HPCS: {"Aeronautics and space application testbeds"},
			ASTA: {"Computational research in aerosciences", "Computational research in earth and space sciences", "Software coordination"},
			NREN: {"Access to aeronautics and spaceflight research centers"},
			BRHR: {"Research institutes", "Internships for parallel algorithm development", "Training and career development"},
		}},
		{"HHS/NIH", map[Component][]string{
			ASTA: {"Medical application testbeds for NIH/NLM medical computation research"},
			NREN: {"Access for academic medical centers", "Development of intelligent gateways"},
			BRHR: {"Training and career development"},
		}},
		{"DOC/NOAA", map[Component][]string{
			ASTA: {"Ocean and atmospheric computation research", "Software tools"},
			NREN: {"Ocean and atmospheric mission facilities", "Access to environmental databases"},
		}},
		{"EPA", map[Component][]string{
			ASTA: {"Research in environmental computations, databases, and application testbeds"},
			NREN: {"Environmental mission networking by the states", "Technology transfer to states"},
		}},
		{"DOC/NIST", map[Component][]string{
			HPCS: {"Research in interfaces and standards"},
			NREN: {"Coordinate performance measurement and standards", "Programs in protocols and security"},
		}},
	}
}

// Matrix renders the responsibilities matrix: one row per agency, an 'x'
// under each component the agency participates in, matching exhibit T4-2's
// structure.
func Matrix() *report.Table {
	cols := []string{"AGENCY"}
	for _, c := range Components() {
		cols = append(cols, c.String())
	}
	t := report.NewTable("FEDERAL HPCC PROGRAM RESPONSIBILITIES", cols...)
	for _, a := range All() {
		row := []string{a.Name}
		for _, c := range Components() {
			if a.HasRole(c) {
				row = append(row, "x")
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// Goals returns the three federal program goals from the paper's opening
// exhibit.
func Goals() []string {
	return []string{
		"Extend U.S. leadership in high performance computing and computer communications",
		"Disseminate the technologies to speed innovation and to serve national goals",
		"Spur gains in industrial competitiveness by making high performance computing integral to design and production",
	}
}
