package blas

import (
	"math"
	"math/rand"
)

// NewRandom returns an n x n column-major matrix with entries uniform in
// [-0.5, 0.5), the LINPACK driver's test matrix distribution, generated
// deterministically from seed.
func NewRandom(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	a := make([]float64, n*n)
	for i := range a {
		a[i] = rng.Float64() - 0.5
	}
	return a
}

// Clone copies a matrix.
func Clone(a []float64) []float64 {
	return append([]float64(nil), a...)
}

// MatVec computes y = A*x for the n x n column-major matrix a.
func MatVec(n int, a []float64, x []float64) []float64 {
	y := make([]float64, n)
	Dgemv(false, n, n, 1, a, n, x, 0, y)
	return y
}

// InfNorm returns the infinity norm (max absolute row sum) of the n x n
// column-major matrix a.
func InfNorm(n int, a []float64) float64 {
	rows := make([]float64, n)
	for j := 0; j < n; j++ {
		col := a[j*n:]
		for i := 0; i < n; i++ {
			rows[i] += math.Abs(col[i])
		}
	}
	m := 0.0
	for _, r := range rows {
		if r > m {
			m = r
		}
	}
	return m
}

// VecInfNorm returns the infinity norm of a vector.
func VecInfNorm(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// ResidualNorm returns the LINPACK-style normalized residual
// ‖Ax − b‖∞ / (‖A‖∞ ‖x‖∞ n ε) for a solve of the original matrix a. Values
// of order 1 indicate a numerically correct solve.
func ResidualNorm(n int, a []float64, x, b []float64) float64 {
	ax := MatVec(n, a, x)
	r := 0.0
	for i := range ax {
		if d := math.Abs(ax[i] - b[i]); d > r {
			r = d
		}
	}
	den := InfNorm(n, a) * VecInfNorm(x) * float64(n) * 2.220446049250313e-16
	if den == 0 {
		return 0
	}
	return r / den
}

// ReconstructLU multiplies the packed LU factors back together and applies
// the inverse permutation, returning P⁻¹·L·U, which should reproduce the
// original matrix. Used by factorization tests.
func ReconstructLU(n int, lu []float64, ipiv []int) []float64 {
	l := make([]float64, n*n)
	u := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			v := lu[i+j*n]
			switch {
			case i > j:
				l[i+j*n] = v
			case i == j:
				l[i+j*n] = 1
				u[i+j*n] = v
			default:
				u[i+j*n] = v
			}
		}
	}
	prod := make([]float64, n*n)
	Dgemm(false, false, n, n, n, 1, l, n, u, n, 0, prod, n)
	// undo the row interchanges in reverse order
	for k := n - 1; k >= 0; k-- {
		if k < len(ipiv) && ipiv[k] != k {
			Dswap(n, prod[k:], n, prod[ipiv[k]:], n)
		}
	}
	return prod
}

// MaxAbsDiff returns max_i |a[i]-b[i]| for equal-length slices.
func MaxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}
