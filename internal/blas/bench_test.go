package blas

import "testing"

// BenchmarkDgemm measures the host DGEMM rate on a 128^3 multiply; the
// custom metric reports achieved MFLOPS so the simulator's per-node rates
// can be put in context.
func BenchmarkDgemm(b *testing.B) {
	const n = 128
	a := NewRandom(n, 1)
	bb := NewRandom(n, 2)
	c := make([]float64, n*n)
	flops := 2 * float64(n) * float64(n) * float64(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dgemm(false, false, n, n, n, 1, a, n, bb, n, 0, c, n)
	}
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(flops*float64(b.N)/sec/1e6, "MFLOPS")
	}
}

// BenchmarkDgetrf measures blocked serial LU on a 256x256 matrix.
func BenchmarkDgetrf(b *testing.B) {
	const n = 256
	orig := NewRandom(n, 3)
	ipiv := make([]int, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := Clone(orig)
		b.StartTimer()
		if err := Dgetrf(n, n, a, n, 32, ipiv); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDaxpy measures the streaming vector kernel.
func BenchmarkDaxpy(b *testing.B) {
	const n = 4096
	x := NewRandom(64, 5)[:n]
	y := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Daxpy(n, 1.5, x, 1, y, 1)
	}
}
