package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDaxpy(t *testing.T) {
	y := []float64{1, 2, 3}
	Daxpy(3, 2, []float64{10, 20, 30}, 1, y, 1)
	want := []float64{21, 42, 63}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func TestDaxpyStrided(t *testing.T) {
	y := []float64{1, 0, 2, 0, 3}
	Daxpy(3, 1, []float64{5, 5, 5}, 1, y, 2)
	if y[0] != 6 || y[2] != 7 || y[4] != 8 || y[1] != 0 {
		t.Fatalf("strided daxpy wrong: %v", y)
	}
}

func TestDaxpyNoopCases(t *testing.T) {
	y := []float64{1, 2}
	Daxpy(0, 5, nil, 1, y, 1)
	Daxpy(2, 0, []float64{9, 9}, 1, y, 1)
	if y[0] != 1 || y[1] != 2 {
		t.Fatalf("noop daxpy modified y: %v", y)
	}
}

func TestDdot(t *testing.T) {
	got := Ddot(3, []float64{1, 2, 3}, 1, []float64{4, 5, 6}, 1)
	if got != 32 {
		t.Fatalf("Ddot = %g, want 32", got)
	}
}

func TestDscal(t *testing.T) {
	x := []float64{1, 2, 3}
	Dscal(3, -2, x, 1)
	if x[0] != -2 || x[1] != -4 || x[2] != -6 {
		t.Fatalf("Dscal = %v", x)
	}
}

func TestDcopyDswap(t *testing.T) {
	x := []float64{1, 2, 3}
	y := make([]float64, 3)
	Dcopy(3, x, 1, y, 1)
	if y[2] != 3 {
		t.Fatalf("Dcopy = %v", y)
	}
	a := []float64{1, 2}
	b := []float64{3, 4}
	Dswap(2, a, 1, b, 1)
	if a[0] != 3 || b[1] != 2 {
		t.Fatalf("Dswap: a=%v b=%v", a, b)
	}
}

func TestIdamax(t *testing.T) {
	if i := Idamax(4, []float64{1, -7, 3, 7}, 1); i != 1 {
		t.Fatalf("Idamax = %d, want 1 (first of equal |max|)", i)
	}
	if i := Idamax(0, nil, 1); i != -1 {
		t.Fatalf("Idamax(0) = %d, want -1", i)
	}
	// strided: elements 0,2,4 = {1, 9, 2} -> index 1
	if i := Idamax(3, []float64{1, 0, 9, 0, 2}, 2); i != 1 {
		t.Fatalf("strided Idamax = %d, want 1", i)
	}
}

func TestDnrm2(t *testing.T) {
	if got := Dnrm2(2, []float64{3, 4}, 1); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Dnrm2 = %g, want 5", got)
	}
	if Dnrm2(0, nil, 1) != 0 {
		t.Fatal("Dnrm2 of empty should be 0")
	}
	// overflow guard: huge values must not produce +Inf
	big := 1e300
	if got := Dnrm2(2, []float64{big, big}, 1); math.IsInf(got, 1) {
		t.Fatal("Dnrm2 overflowed")
	}
}

func TestDnrm2MatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		naive := 0.0
		for _, v := range x {
			naive += v * v
		}
		naive = math.Sqrt(naive)
		return math.Abs(Dnrm2(n, x, 1)-naive) <= 1e-12*(1+naive)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDdotCommutativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		return Ddot(n, x, 1, y, 1) == Ddot(n, y, 1, x, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
