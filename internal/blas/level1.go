// Package blas provides the serial dense linear-algebra kernels the
// distributed LINPACK implementation is built from: level-1/2/3 BLAS
// subsets and LAPACK-style LU factorization with partial pivoting. All
// matrices are column-major with an explicit leading dimension (stride
// between columns), matching the conventions of the 1992-era codes.
package blas

import "math"

// Daxpy computes y += alpha*x over n elements with the given strides.
func Daxpy(n int, alpha float64, x []float64, incx int, y []float64, incy int) {
	if n <= 0 || alpha == 0 {
		return
	}
	ix, iy := 0, 0
	for i := 0; i < n; i++ {
		y[iy] += alpha * x[ix]
		ix += incx
		iy += incy
	}
}

// Ddot returns the dot product of x and y over n elements.
func Ddot(n int, x []float64, incx int, y []float64, incy int) float64 {
	s := 0.0
	ix, iy := 0, 0
	for i := 0; i < n; i++ {
		s += x[ix] * y[iy]
		ix += incx
		iy += incy
	}
	return s
}

// Dscal scales x by alpha over n elements.
func Dscal(n int, alpha float64, x []float64, incx int) {
	ix := 0
	for i := 0; i < n; i++ {
		x[ix] *= alpha
		ix += incx
	}
}

// Dcopy copies n elements of x into y.
func Dcopy(n int, x []float64, incx int, y []float64, incy int) {
	ix, iy := 0, 0
	for i := 0; i < n; i++ {
		y[iy] = x[ix]
		ix += incx
		iy += incy
	}
}

// Idamax returns the index (in element counts, not slice offsets) of the
// element of largest absolute value, or -1 for n <= 0.
func Idamax(n int, x []float64, incx int) int {
	if n <= 0 {
		return -1
	}
	best, bi := math.Abs(x[0]), 0
	ix := incx
	for i := 1; i < n; i++ {
		if a := math.Abs(x[ix]); a > best {
			best, bi = a, i
		}
		ix += incx
	}
	return bi
}

// Dnrm2 returns the Euclidean norm of x over n elements, guarding against
// overflow with the scaled-sum algorithm.
func Dnrm2(n int, x []float64, incx int) float64 {
	if n <= 0 {
		return 0
	}
	scale, ssq := 0.0, 1.0
	ix := 0
	for i := 0; i < n; i++ {
		v := x[ix]
		ix += incx
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Dswap exchanges n elements of x and y.
func Dswap(n int, x []float64, incx int, y []float64, incy int) {
	ix, iy := 0, 0
	for i := 0; i < n; i++ {
		x[ix], y[iy] = y[iy], x[ix]
		ix += incx
		iy += incy
	}
}
