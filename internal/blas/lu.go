package blas

import (
	"errors"
	"fmt"
)

// ErrSingular reports an exactly zero pivot during factorization.
var ErrSingular = errors.New("blas: matrix is singular to working precision")

// Dgetf2 computes an unblocked LU factorization with partial pivoting of
// the m x n column-major panel a (leading dimension lda): A = P*L*U. On
// return a holds L (unit diagonal implicit) below the diagonal and U on and
// above it; ipiv[k] records the row swapped with row k (0-based, panel
// local). It is the per-node panel kernel of the distributed factorization.
func Dgetf2(m, n int, a []float64, lda int, ipiv []int) error {
	mn := m
	if n < mn {
		mn = n
	}
	for k := 0; k < mn; k++ {
		col := a[k*lda:]
		p := k + Idamax(m-k, col[k:], 1)
		ipiv[k] = p
		if a[p+k*lda] == 0 {
			return fmt.Errorf("%w: zero pivot at column %d", ErrSingular, k)
		}
		if p != k {
			Dswap(n, a[k:], lda, a[p:], lda)
		}
		piv := 1 / col[k]
		for i := k + 1; i < m; i++ {
			col[i] *= piv
		}
		// rank-1 update of the trailing (m-k-1) x (n-k-1) block:
		// x is the L column below the pivot (stride 1); y is the U row
		// right of the pivot (stride lda).
		if k+1 < m && k+1 < n {
			Dger(m-k-1, n-k-1, -1, col[k+1:], 1, a[k+(k+1)*lda:], lda, a[(k+1)+(k+1)*lda:], lda)
		}
	}
	return nil
}

// Dlaswp applies the row interchanges ipiv[k0:k1] to the n columns of a:
// for each k, row k is swapped with row ipiv[k]. It mirrors LAPACK's
// DLASWP with increment 1.
func Dlaswp(n int, a []float64, lda int, k0, k1 int, ipiv []int) {
	for k := k0; k < k1; k++ {
		p := ipiv[k]
		if p != k {
			Dswap(n, a[k:], lda, a[p:], lda)
		}
	}
}

// Dgetrf computes a blocked LU factorization with partial pivoting of the
// m x n matrix a using block size nb: the serial reference for the
// distributed algorithm (right-looking variant, identical operation order).
func Dgetrf(m, n int, a []float64, lda, nb int, ipiv []int) error {
	if nb < 1 {
		return errors.New("blas: Dgetrf block size must be >= 1")
	}
	mn := m
	if n < mn {
		mn = n
	}
	for j := 0; j < mn; j += nb {
		jb := nb
		if j+jb > mn {
			jb = mn - j
		}
		// factor panel A[j:m, j:j+jb]
		panelPiv := make([]int, jb)
		if err := Dgetf2(m-j, jb, a[j+j*lda:], lda, panelPiv); err != nil {
			return fmt.Errorf("panel at column %d: %w", j, err)
		}
		for k := 0; k < jb; k++ {
			ipiv[j+k] = panelPiv[k] + j
		}
		// apply interchanges to columns left of the panel
		Dlaswp(j, a, lda, j, j+jb, ipiv)
		if j+jb < n {
			// apply interchanges to columns right of the panel
			Dlaswp(n-j-jb, a[(j+jb)*lda:], lda, j, j+jb, ipiv)
			// U12 = L11^-1 * A12
			DtrsmLLNU(jb, n-j-jb, a[j+j*lda:], lda, a[j+(j+jb)*lda:], lda)
			if j+jb < m {
				// A22 -= L21 * U12
				Dgemm(false, false, m-j-jb, n-j-jb, jb, -1,
					a[(j+jb)+j*lda:], lda,
					a[j+(j+jb)*lda:], lda,
					1, a[(j+jb)+(j+jb)*lda:], lda)
			}
		}
	}
	return nil
}

// Dgetrs solves A*x = b using the factorization computed by Dgetrf: applies
// the row interchanges to b, then forward- and back-substitutes. b is
// overwritten with the solution.
func Dgetrs(n int, a []float64, lda int, ipiv []int, b []float64) {
	for k := 0; k < n; k++ {
		if p := ipiv[k]; p != k {
			b[k], b[p] = b[p], b[k]
		}
	}
	// L y = Pb (unit lower)
	for i := 0; i < n; i++ {
		v := b[i]
		if v == 0 {
			continue
		}
		col := a[i*lda:]
		for r := i + 1; r < n; r++ {
			b[r] -= v * col[r]
		}
	}
	// U x = y
	for i := n - 1; i >= 0; i-- {
		v := b[i] / a[i+i*lda]
		b[i] = v
		if v == 0 {
			continue
		}
		col := a[i*lda:]
		for r := 0; r < i; r++ {
			b[r] -= v * col[r]
		}
	}
}

// LUFlops returns the standard LINPACK operation count for factoring and
// solving an n x n system: 2n³/3 + 2n².
func LUFlops(n int) float64 {
	fn := float64(n)
	return 2*fn*fn*fn/3 + 2*fn*fn
}
