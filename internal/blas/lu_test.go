package blas

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDgetf2Known2x2(t *testing.T) {
	// A = [[4,3],[6,3]] column-major {4,6,3,3}; pivot swaps rows 0,1:
	// PA = [[6,3],[4,3]], L21 = 4/6 = 2/3, U = [[6,3],[0,1]]
	a := []float64{4, 6, 3, 3}
	ipiv := make([]int, 2)
	if err := Dgetf2(2, 2, a, 2, ipiv); err != nil {
		t.Fatal(err)
	}
	if ipiv[0] != 1 {
		t.Fatalf("ipiv = %v, want first pivot 1", ipiv)
	}
	if math.Abs(a[1]-2.0/3) > 1e-15 { // L21 stored at (1,0)
		t.Fatalf("L21 = %g, want 2/3", a[1])
	}
	if a[0] != 6 || a[2] != 3 || math.Abs(a[3]-1) > 1e-15 {
		t.Fatalf("U wrong: %v", a)
	}
}

func TestDgetf2SingularReported(t *testing.T) {
	a := []float64{1, 2, 2, 4} // rank 1
	ipiv := make([]int, 2)
	err := Dgetf2(2, 2, a, 2, ipiv)
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestDgetrfReconstructs(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 13, 32} {
		for _, nb := range []int{1, 2, 4, 8} {
			a := NewRandom(n, 7)
			orig := Clone(a)
			ipiv := make([]int, n)
			if err := Dgetrf(n, n, a, n, nb, ipiv); err != nil {
				t.Fatalf("n=%d nb=%d: %v", n, nb, err)
			}
			rec := ReconstructLU(n, a, ipiv)
			if d := MaxAbsDiff(rec, orig); d > 1e-10*float64(n) {
				t.Fatalf("n=%d nb=%d: reconstruction error %g", n, nb, d)
			}
		}
	}
}

func TestDgetrfBlockSizeInvariance(t *testing.T) {
	// The factorization must be identical (same pivots, same factors up to
	// roundoff) regardless of block size.
	n := 24
	ref := NewRandom(n, 3)
	refPiv := make([]int, n)
	refLU := Clone(ref)
	if err := Dgetrf(n, n, refLU, n, 1, refPiv); err != nil {
		t.Fatal(err)
	}
	for _, nb := range []int{2, 3, 8, 24, 100} {
		lu := Clone(ref)
		piv := make([]int, n)
		if err := Dgetrf(n, n, lu, n, nb, piv); err != nil {
			t.Fatalf("nb=%d: %v", nb, err)
		}
		for k := range piv {
			if piv[k] != refPiv[k] {
				t.Fatalf("nb=%d: pivot %d differs: %d vs %d", nb, k, piv[k], refPiv[k])
			}
		}
		if d := MaxAbsDiff(lu, refLU); d > 1e-11 {
			t.Fatalf("nb=%d: factors differ by %g", nb, d)
		}
	}
}

func TestDgetrfRejectsBadBlockSize(t *testing.T) {
	a := NewRandom(4, 1)
	if err := Dgetrf(4, 4, a, 4, 0, make([]int, 4)); err == nil {
		t.Fatal("nb=0 should be rejected")
	}
}

func TestDgetrsSolves(t *testing.T) {
	n := 50
	a := NewRandom(n, 11)
	orig := Clone(a)
	// b = A * ones
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	b := MatVec(n, a, x)
	ipiv := make([]int, n)
	if err := Dgetrf(n, n, a, n, 8, ipiv); err != nil {
		t.Fatal(err)
	}
	Dgetrs(n, a, n, ipiv, b)
	for i := range b {
		if math.Abs(b[i]-1) > 1e-8 {
			t.Fatalf("x[%d] = %g, want 1", i, b[i])
		}
	}
	// LINPACK residual must be O(1)
	bb := MatVec(n, orig, b)
	if r := ResidualNorm(n, orig, b, bb); r > 10 {
		t.Fatalf("normalized residual %g too large", r)
	}
}

func TestSolvePropertyRandomSystems(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		a := NewRandom(n, seed)
		orig := Clone(a)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := MatVec(n, orig, want)
		rhs := Clone(b)
		ipiv := make([]int, n)
		if err := Dgetrf(n, n, a, n, 4, ipiv); err != nil {
			return true // singular random draw: vacuously fine
		}
		Dgetrs(n, a, n, ipiv, rhs)
		// Check the backward error (LINPACK residual): forward error can
		// legitimately be large for ill-conditioned draws.
		return ResidualNorm(n, orig, rhs, b) < 50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDlaswp(t *testing.T) {
	// 3x2 matrix, swap row 0 with row 2
	a := []float64{1, 2, 3, 4, 5, 6} // cols {1,2,3} {4,5,6}
	Dlaswp(2, a, 3, 0, 1, []int{2})
	if a[0] != 3 || a[2] != 1 || a[3] != 6 || a[5] != 4 {
		t.Fatalf("Dlaswp = %v", a)
	}
}

func TestLUFlops(t *testing.T) {
	// n=25000 gives the paper's 1.042e13 operation count
	got := LUFlops(25000)
	want := 2.0*25000*25000*25000/3 + 2.0*25000*25000
	if got != want {
		t.Fatalf("LUFlops = %g, want %g", got, want)
	}
	if LUFlops(1) != 2.0/3+2 {
		t.Fatalf("LUFlops(1) = %g", LUFlops(1))
	}
}

func TestNewRandomDeterministic(t *testing.T) {
	a := NewRandom(10, 5)
	b := NewRandom(10, 5)
	if MaxAbsDiff(a, b) != 0 {
		t.Fatal("NewRandom not deterministic for equal seeds")
	}
	c := NewRandom(10, 6)
	if MaxAbsDiff(a, c) == 0 {
		t.Fatal("NewRandom identical across different seeds")
	}
	for _, v := range a {
		if v < -0.5 || v >= 0.5 {
			t.Fatalf("entry %g outside [-0.5, 0.5)", v)
		}
	}
}

func TestInfNorm(t *testing.T) {
	// A = [[1,-2],[3,4]] column-major {1,3,-2,4}: row sums {3, 7}
	a := []float64{1, 3, -2, 4}
	if got := InfNorm(2, a); got != 7 {
		t.Fatalf("InfNorm = %g, want 7", got)
	}
}

func TestVecInfNorm(t *testing.T) {
	if got := VecInfNorm([]float64{1, -9, 3}); got != 9 {
		t.Fatalf("VecInfNorm = %g, want 9", got)
	}
	if VecInfNorm(nil) != 0 {
		t.Fatal("VecInfNorm(nil) != 0")
	}
}
