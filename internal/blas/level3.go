package blas

// Dgemv computes y = alpha*A*x + beta*y (trans=false) or
// y = alpha*Aᵀ*x + beta*y (trans=true), where A is m x n column-major with
// leading dimension lda.
func Dgemv(trans bool, m, n int, alpha float64, a []float64, lda int,
	x []float64, beta float64, y []float64) {
	if !trans {
		for i := 0; i < m; i++ {
			y[i] *= beta
		}
		for j := 0; j < n; j++ {
			ax := alpha * x[j]
			col := a[j*lda:]
			for i := 0; i < m; i++ {
				y[i] += ax * col[i]
			}
		}
		return
	}
	for j := 0; j < n; j++ {
		s := 0.0
		col := a[j*lda:]
		for i := 0; i < m; i++ {
			s += col[i] * x[i]
		}
		y[j] = alpha*s + beta*y[j]
	}
}

// Dger computes the rank-1 update A += alpha * x * yᵀ on the m x n
// column-major matrix A with leading dimension lda. x and y are read with
// the given strides, so y may be a matrix row (incy = lda).
func Dger(m, n int, alpha float64, x []float64, incx int, y []float64, incy int, a []float64, lda int) {
	iy := 0
	for j := 0; j < n; j++ {
		ay := alpha * y[iy]
		iy += incy
		if ay == 0 {
			continue
		}
		col := a[j*lda:]
		ix := 0
		for i := 0; i < m; i++ {
			col[i] += ay * x[ix]
			ix += incx
		}
	}
}

// Dgemm computes C = alpha*op(A)*op(B) + beta*C for column-major matrices,
// where op is identity or transpose per the flags. C is m x n, op(A) is
// m x k and op(B) is k x n.
func Dgemm(transA, transB bool, m, n, k int, alpha float64,
	a []float64, lda int, b []float64, ldb int,
	beta float64, c []float64, ldc int) {
	// scale C
	for j := 0; j < n; j++ {
		col := c[j*ldc:]
		if beta == 0 {
			for i := 0; i < m; i++ {
				col[i] = 0
			}
		} else if beta != 1 {
			for i := 0; i < m; i++ {
				col[i] *= beta
			}
		}
	}
	if alpha == 0 || k == 0 {
		return
	}
	at := func(i, l int) float64 {
		if transA {
			return a[l+i*lda]
		}
		return a[i+l*lda]
	}
	if !transB {
		for j := 0; j < n; j++ {
			bcol := b[j*ldb:]
			ccol := c[j*ldc:]
			for l := 0; l < k; l++ {
				ab := alpha * bcol[l]
				if ab == 0 {
					continue
				}
				if !transA {
					acol := a[l*lda:]
					for i := 0; i < m; i++ {
						ccol[i] += ab * acol[i]
					}
				} else {
					for i := 0; i < m; i++ {
						ccol[i] += ab * at(i, l)
					}
				}
			}
		}
		return
	}
	for j := 0; j < n; j++ {
		ccol := c[j*ldc:]
		for l := 0; l < k; l++ {
			ab := alpha * b[j+l*ldb]
			if ab == 0 {
				continue
			}
			if !transA {
				acol := a[l*lda:]
				for i := 0; i < m; i++ {
					ccol[i] += ab * acol[i]
				}
			} else {
				for i := 0; i < m; i++ {
					ccol[i] += ab * at(i, l)
				}
			}
		}
	}
}

// DtrsmLLNU solves L * X = B in place for X, where L is the n x n unit
// lower-triangular factor stored in a (lda) and B is n x m column-major in
// b (ldb). ("Left, Lower, No-transpose, Unit-diagonal".) This is the
// triangular solve applied to the U12 block row in blocked LU.
func DtrsmLLNU(n, m int, a []float64, lda int, b []float64, ldb int) {
	for j := 0; j < m; j++ {
		col := b[j*ldb:]
		for i := 0; i < n; i++ {
			v := col[i]
			if v == 0 {
				continue
			}
			lcol := a[i*lda:]
			for r := i + 1; r < n; r++ {
				col[r] -= v * lcol[r]
			}
		}
	}
}

// DtrsmLUNN solves U * X = B in place for X, where U is the n x n upper
// triangular factor (non-unit diagonal) in a and B is n x m in b.
func DtrsmLUNN(n, m int, a []float64, lda int, b []float64, ldb int) {
	for j := 0; j < m; j++ {
		col := b[j*ldb:]
		for i := n - 1; i >= 0; i-- {
			v := col[i] / a[i+i*lda]
			col[i] = v
			if v == 0 {
				continue
			}
			ucol := a[i*lda:]
			for r := 0; r < i; r++ {
				col[r] -= v * ucol[r]
			}
		}
	}
}
