package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveGemm is the obviously correct reference.
func naiveGemm(transA, transB bool, m, n, k int, alpha float64,
	a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	get := func(mat []float64, ld, i, j int, trans bool) float64 {
		if trans {
			i, j = j, i
		}
		return mat[i+j*ld]
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			s := 0.0
			for l := 0; l < k; l++ {
				s += get(a, lda, i, l, transA) * get(b, ldb, l, j, transB)
			}
			c[i+j*ldc] = alpha*s + beta*c[i+j*ldc]
		}
	}
}

func randSlice(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func TestDgemvNoTrans(t *testing.T) {
	// A = [1 3; 2 4] column-major, x = (1,1): Ax = (4, 6)
	a := []float64{1, 2, 3, 4}
	y := []float64{100, 100}
	Dgemv(false, 2, 2, 1, a, 2, []float64{1, 1}, 0, y)
	if y[0] != 4 || y[1] != 6 {
		t.Fatalf("Dgemv = %v, want [4 6]", y)
	}
}

func TestDgemvTrans(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	y := []float64{0, 0}
	Dgemv(true, 2, 2, 1, a, 2, []float64{1, 1}, 0, y)
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("Dgemv^T = %v, want [3 7]", y)
	}
}

func TestDgemvBeta(t *testing.T) {
	a := []float64{1, 0, 0, 1} // identity
	y := []float64{10, 20}
	Dgemv(false, 2, 2, 1, a, 2, []float64{1, 2}, 0.5, y)
	if y[0] != 6 || y[1] != 12 {
		t.Fatalf("Dgemv with beta = %v, want [6 12]", y)
	}
}

func TestDger(t *testing.T) {
	a := make([]float64, 4) // 2x2 zero
	Dger(2, 2, 2, []float64{1, 2}, 1, []float64{3, 4}, 1, a, 2)
	// A = 2 * x y^T = [[6,8],[12,16]] column-major: {6,12,8,16}
	want := []float64{6, 12, 8, 16}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("Dger = %v, want %v", a, want)
		}
	}
}

func TestDgerStridedY(t *testing.T) {
	// y read with stride 2 from {3, 0, 4}: same result as above
	a := make([]float64, 4)
	Dger(2, 2, 2, []float64{1, 2}, 1, []float64{3, 99, 4}, 2, a, 2)
	want := []float64{6, 12, 8, 16}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("strided Dger = %v, want %v", a, want)
		}
	}
}

func TestDgemmAgainstNaiveAllTransposeCombos(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tA := range []bool{false, true} {
		for _, tB := range []bool{false, true} {
			m, n, k := 5, 4, 3
			lda, ldb, ldc := 7, 6, 8 // padded leading dimensions
			adim := k
			if !tA {
				adim = k // a is m x k stored with lda rows if !tA: need lda >= m
			}
			_ = adim
			a := randSlice(rng, lda*max(m, k))
			b := randSlice(rng, ldb*max(k, n))
			c := randSlice(rng, ldc*n)
			cRef := Clone(c)
			alpha, beta := 1.5, -0.5
			Dgemm(tA, tB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
			naiveGemm(tA, tB, m, n, k, alpha, a, lda, b, ldb, beta, cRef, ldc)
			if d := MaxAbsDiff(c, cRef); d > 1e-12 {
				t.Fatalf("transA=%v transB=%v: Dgemm differs from naive by %g", tA, tB, d)
			}
		}
	}
}

func TestDgemmBetaZeroOverwritesNaN(t *testing.T) {
	// beta=0 must overwrite even NaN garbage in C (BLAS convention).
	c := []float64{math.NaN(), math.NaN()}
	a := []float64{1, 2} // 2x1
	b := []float64{3}    // 1x1
	Dgemm(false, false, 2, 1, 1, 1, a, 2, b, 1, 0, c, 2)
	if c[0] != 3 || c[1] != 6 {
		t.Fatalf("Dgemm beta=0 = %v, want [3 6]", c)
	}
}

func TestDgemmAlphaZero(t *testing.T) {
	c := []float64{1, 2}
	Dgemm(false, false, 2, 1, 1, 0, []float64{9, 9}, 2, []float64{9}, 1, 2, c, 2)
	if c[0] != 2 || c[1] != 4 {
		t.Fatalf("alpha=0 should just scale C: %v", c)
	}
}

func TestDgemmPropertyRandomShapes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n, k := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		tA, tB := rng.Intn(2) == 1, rng.Intn(2) == 1
		lda := max(m, k) + rng.Intn(3)
		ldb := max(k, n) + rng.Intn(3)
		ldc := m + rng.Intn(3)
		a := randSlice(rng, lda*max(m, k))
		b := randSlice(rng, ldb*max(k, n))
		c := randSlice(rng, ldc*n)
		cRef := Clone(c)
		alpha, beta := rng.NormFloat64(), rng.NormFloat64()
		Dgemm(tA, tB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
		naiveGemm(tA, tB, m, n, k, alpha, a, lda, b, ldb, beta, cRef, ldc)
		return MaxAbsDiff(c, cRef) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDtrsmLLNU(t *testing.T) {
	// L = [[1,0],[2,1]] (unit diag), B = L*X for X=[[1],[3]] => B = [[1],[5]]
	l := []float64{1, 2, 0, 1} // column-major
	b := []float64{1, 5}
	DtrsmLLNU(2, 1, l, 2, b, 2)
	if b[0] != 1 || b[1] != 3 {
		t.Fatalf("DtrsmLLNU = %v, want [1 3]", b)
	}
}

func TestDtrsmLUNN(t *testing.T) {
	// U = [[2,1],[0,4]], X = [[1],[2]] => B = U*X = [[4],[8]]
	u := []float64{2, 0, 1, 4}
	b := []float64{4, 8}
	DtrsmLUNN(2, 1, u, 2, b, 2)
	if b[0] != 1 || b[1] != 2 {
		t.Fatalf("DtrsmLUNN = %v, want [1 2]", b)
	}
}

func TestDtrsmRoundTripProperty(t *testing.T) {
	// Property: for random unit-lower L and random X, solving L*(LX) = LX
	// recovers X.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 1+rng.Intn(6), 1+rng.Intn(4)
		l := make([]float64, n*n)
		for j := 0; j < n; j++ {
			l[j+j*n] = 1
			for i := j + 1; i < n; i++ {
				l[i+j*n] = rng.NormFloat64()
			}
		}
		x := randSlice(rng, n*m)
		b := make([]float64, n*m)
		Dgemm(false, false, n, m, n, 1, l, n, x, n, 0, b, n)
		DtrsmLLNU(n, m, l, n, b, n)
		return MaxAbsDiff(b, x) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
