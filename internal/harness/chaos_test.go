package harness

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestChaosByteIdentityUnderInjectedFaults is the fault-injection gate:
// a two-worker fleet where every frame to and from worker 0 runs
// through a seeded ChaosPlan, while worker 1 stays pristine. Whatever
// the transport does — dropped, truncated, duplicated, reordered,
// delayed frames, or a connection that just ends mid-sweep — the
// assembled output must stay byte-identical to LocalExecutor, every
// index emitted exactly once, because stranded jobs re-dispatch and
// corrupted streams evict the worker instead of corrupting a slot.
func TestChaosByteIdentityUnderInjectedFaults(t *testing.T) {
	execReg := counterReg(t, new(atomic.Int32), 0)
	jobs := counterJobs(t, execReg, 12)
	want, err := LocalExecutor{Workers: 4}.Execute(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}

	scenarios := []struct {
		name string
		plan ChaosPlan
	}{
		{"drop-every-frame", ChaosPlan{Seed: 1, DropFrame: 1}},
		{"drop-sometimes", ChaosPlan{Seed: 2, DropFrame: 0.3}},
		{"truncate-every-frame", ChaosPlan{Seed: 3, TruncateFrame: 1}},
		{"truncate-sometimes", ChaosPlan{Seed: 4, TruncateFrame: 0.3}},
		{"duplicate-frames", ChaosPlan{Seed: 5, DuplicateFrame: 0.5}},
		{"reorder-and-delay", ChaosPlan{Seed: 6, ReorderFrame: 0.5, Delay: 2 * time.Millisecond}},
		{"close-mid-sweep", ChaosPlan{Seed: 7, CloseAfterFrames: 3}},
		{"kitchen-sink", ChaosPlan{Seed: 8, DropFrame: 0.1, TruncateFrame: 0.1, DuplicateFrame: 0.1, ReorderFrame: 0.2, Delay: time.Millisecond}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			faulty, _ := startRemoteWorker(t, counterReg(t, new(atomic.Int32), 0))
			pristine, _ := startRemoteWorker(t, counterReg(t, new(atomic.Int32), 0))
			base, stderr := remoteExec(execReg, faulty, pristine)
			base.HeartbeatTimeout = 1 * time.Second
			ex := NewChaosExecutor(base, sc.plan, faulty)
			emit, seen := orderedEmit(t)
			got, err := ex.Execute(context.Background(), jobs, emit)
			if err != nil {
				t.Fatalf("sweep failed under %s: %v\nstderr:\n%s", sc.name, err, stderr.String())
			}
			assertSameResults(t, sc.name, got, want)
			if idxs := seen(); len(idxs) != len(jobs) {
				t.Fatalf("%s: emitted %d of %d indexes: %v", sc.name, len(idxs), len(jobs), idxs)
			}
		})
	}
}

// TestChaosIsDeterministic replays one plan twice against fresh workers
// and demands the same eviction story: seeded chaos is only useful if a
// failing scenario can be replayed exactly.
func TestChaosIsDeterministic(t *testing.T) {
	execReg := counterReg(t, new(atomic.Int32), 0)
	jobs := counterJobs(t, execReg, 6)
	plan := ChaosPlan{Seed: 99, DropFrame: 0.4}
	var evictions [2]int
	for round := range evictions {
		faulty, _ := startRemoteWorker(t, counterReg(t, new(atomic.Int32), 0))
		pristine, _ := startRemoteWorker(t, counterReg(t, new(atomic.Int32), 0))
		base, stderr := remoteExec(execReg, faulty, pristine)
		ex := NewChaosExecutor(base, plan, faulty)
		if _, err := ex.Execute(context.Background(), jobs, nil); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		evictions[round] = strings.Count(stderr.String(), "evicted")
	}
	if evictions[0] != evictions[1] {
		t.Fatalf("same seed, different fault story: %d vs %d evictions", evictions[0], evictions[1])
	}
}

// TestChaosTruncationSurfacesAsTruncatedFrame pins the decoder
// behavior the chaos layer relies on: a stream cut mid-frame must fail
// with ErrTruncatedFrame (and evict), never parse as a short message.
func TestChaosTruncationSurfacesAsTruncatedFrame(t *testing.T) {
	execReg := counterReg(t, new(atomic.Int32), 0)
	jobs := counterJobs(t, execReg, 4)
	faulty, _ := startRemoteWorker(t, counterReg(t, new(atomic.Int32), 0))
	pristine, _ := startRemoteWorker(t, counterReg(t, new(atomic.Int32), 0))
	base, stderr := remoteExec(execReg, faulty, pristine)
	// Truncate only inbound frames so the tear happens on the executor's
	// own read path (outbound truncation is seen by the worker instead).
	ex := NewChaosExecutor(base, ChaosPlan{Seed: 11, TruncateFrame: 1}, faulty)
	if _, err := ex.Execute(context.Background(), jobs, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "truncated wire frame") &&
		!strings.Contains(stderr.String(), "read hello") {
		t.Fatalf("truncation never surfaced in eviction notes:\n%s", stderr.String())
	}
}
