package harness

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

func TestWireJobRoundTrip(t *testing.T) {
	in := WireJob{
		Index:      7,
		WorkloadID: "app/cfd-stencil",
		Params: Params{Quick: true, Seed: 42,
			Values: map[string]string{"n": "512", "iters": "3"}},
	}
	var buf bytes.Buffer
	if err := EncodeWire(&buf, in); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("wire job is not exactly one line: %q", line)
	}
	out, err := DecodeWireJob([]byte(line))
	if err != nil {
		t.Fatal(err)
	}
	if out.Index != in.Index || out.WorkloadID != in.WorkloadID ||
		out.Params.Canonical() != in.Params.Canonical() {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
}

func TestWireResultRoundTrip(t *testing.T) {
	res := Result{WorkloadID: "x", Title: "T", Text: "body\n"}
	res.AddMetric("gflops", 13, "GFLOPS")
	var buf bytes.Buffer
	if err := EncodeWire(&buf, WireResult{Index: 3, Result: &res}); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeWireResult(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if out.Index != 3 || out.Result == nil || out.Error != "" {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	// The result must survive the wire byte-for-byte: identical JSON is
	// what makes sharded output byte-identical to local output.
	a, _ := res.JSON()
	b, _ := out.Result.JSON()
	if a != b {
		t.Fatalf("result JSON changed over the wire:\n%s\n%s", a, b)
	}
}

func TestWireDecodeRejectsInvalid(t *testing.T) {
	for _, tc := range []struct{ name, line string }{
		{"job garbage", "not json"},
		{"job negative index", `{"index":-1,"workload_id":"x","params":{}}`},
		{"job empty workload", `{"index":0,"workload_id":"","params":{}}`},
	} {
		if _, err := DecodeWireJob([]byte(tc.line)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	for _, tc := range []struct{ name, line string }{
		{"result garbage", "{"},
		{"result negative index", `{"index":-2,"error":"x"}`},
		{"result neither", `{"index":0}`},
		{"result both", `{"index":0,"result":{"workload":"w","text":""},"error":"x"}`},
	} {
		if _, err := DecodeWireResult([]byte(tc.line)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestServeWorkerRunsJobs(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(echo("w/echo")); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(spec("w/fail", func(context.Context, Params) (Result, error) {
		return Result{}, errors.New("kernel diverged")
	})); err != nil {
		t.Fatal(err)
	}

	var in, out bytes.Buffer
	for i, j := range []WireJob{
		{Index: 0, WorkloadID: "w/echo", Params: Params{}.WithValue("n", "7")},
		{Index: 1, WorkloadID: "w/fail"},
		{Index: 2, WorkloadID: "w/missing"},
	} {
		if err := EncodeWire(&in, j); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	if err := ServeWorker(context.Background(), reg, &in, &out); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 result lines, got %d:\n%s", len(lines), out.String())
	}
	r0, err := DecodeWireResult([]byte(lines[0]))
	if err != nil || r0.Index != 0 || r0.Result == nil || !strings.Contains(r0.Result.Text, "n=7") {
		t.Fatalf("result 0 wrong: %+v, %v", r0, err)
	}
	r1, err := DecodeWireResult([]byte(lines[1]))
	if err != nil || r1.Index != 1 || !strings.Contains(r1.Error, "kernel diverged") {
		t.Fatalf("result 1 wrong: %+v, %v", r1, err)
	}
	r2, err := DecodeWireResult([]byte(lines[2]))
	if err != nil || r2.Index != 2 || !strings.Contains(r2.Error, "unknown workload") {
		t.Fatalf("result 2 wrong: %+v, %v", r2, err)
	}
}

func TestServeWorkerDiesOnProtocolBreach(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(echo("w/echo")); err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader("this is not a wire job\n")
	var out bytes.Buffer
	if err := ServeWorker(context.Background(), reg, in, &out); err == nil {
		t.Fatal("malformed job line accepted")
	}
	if out.Len() != 0 {
		t.Fatalf("worker answered a malformed job: %q", out.String())
	}
}

func TestServeWorkerStampsWorkloadID(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(spec("w/anon", func(context.Context, Params) (Result, error) {
		return Result{Text: "ok\n"}, nil // no WorkloadID set by the workload
	})); err != nil {
		t.Fatal(err)
	}
	var in, out bytes.Buffer
	if err := EncodeWire(&in, WireJob{Index: 0, WorkloadID: "w/anon"}); err != nil {
		t.Fatal(err)
	}
	if err := ServeWorker(context.Background(), reg, &in, &out); err != nil {
		t.Fatal(err)
	}
	r, err := DecodeWireResult(bytes.TrimSpace(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Result == nil || r.Result.WorkloadID != "w/anon" {
		t.Fatalf("worker did not stamp the workload ID: %+v", r)
	}
}
