package harness

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestWireJobRoundTrip(t *testing.T) {
	in := WireJob{
		Index:      7,
		WorkloadID: "app/cfd-stencil",
		Params: Params{Quick: true, Seed: 42,
			Values: map[string]string{"n": "512", "iters": "3"}},
	}
	var buf bytes.Buffer
	if err := EncodeWire(&buf, in); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("wire job is not exactly one line: %q", line)
	}
	out, err := DecodeWireJob([]byte(line))
	if err != nil {
		t.Fatal(err)
	}
	if out.Index != in.Index || out.WorkloadID != in.WorkloadID ||
		out.Params.Canonical() != in.Params.Canonical() {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
}

func TestWireResultRoundTrip(t *testing.T) {
	res := Result{WorkloadID: "x", Title: "T", Text: "body\n"}
	res.AddMetric("gflops", 13, "GFLOPS")
	var buf bytes.Buffer
	if err := EncodeWire(&buf, WireResult{Index: 3, Result: &res}); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeWireResult(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if out.Index != 3 || out.Result == nil || out.Error != "" {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	// The result must survive the wire byte-for-byte: identical JSON is
	// what makes sharded output byte-identical to local output.
	a, _ := res.JSON()
	b, _ := out.Result.JSON()
	if a != b {
		t.Fatalf("result JSON changed over the wire:\n%s\n%s", a, b)
	}
}

func TestWireDecodeRejectsInvalid(t *testing.T) {
	for _, tc := range []struct{ name, line string }{
		{"job garbage", "not json"},
		{"job negative index", `{"index":-1,"workload_id":"x","params":{}}`},
		{"job empty workload", `{"index":0,"workload_id":"","params":{}}`},
	} {
		if _, err := DecodeWireJob([]byte(tc.line)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	for _, tc := range []struct{ name, line string }{
		{"result garbage", "{"},
		{"result negative index", `{"index":-2,"error":"x"}`},
		{"result neither", `{"index":0}`},
		{"result both", `{"index":0,"result":{"workload":"w","text":""},"error":"x"}`},
	} {
		if _, err := DecodeWireResult([]byte(tc.line)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestServeWorkerRunsJobs(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(echo("w/echo")); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(spec("w/fail", func(context.Context, Params) (Result, error) {
		return Result{}, errors.New("kernel diverged")
	})); err != nil {
		t.Fatal(err)
	}

	var in, out bytes.Buffer
	for i, j := range []WireJob{
		{Index: 0, WorkloadID: "w/echo", Params: Params{}.WithValue("n", "7")},
		{Index: 1, WorkloadID: "w/fail"},
		{Index: 2, WorkloadID: "w/missing"},
	} {
		if err := EncodeWire(&in, j); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	if err := ServeWorker(context.Background(), reg, &in, &out); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 result lines, got %d:\n%s", len(lines), out.String())
	}
	r0, err := DecodeWireResult([]byte(lines[0]))
	if err != nil || r0.Index != 0 || r0.Result == nil || !strings.Contains(r0.Result.Text, "n=7") {
		t.Fatalf("result 0 wrong: %+v, %v", r0, err)
	}
	r1, err := DecodeWireResult([]byte(lines[1]))
	if err != nil || r1.Index != 1 || !strings.Contains(r1.Error, "kernel diverged") {
		t.Fatalf("result 1 wrong: %+v, %v", r1, err)
	}
	r2, err := DecodeWireResult([]byte(lines[2]))
	if err != nil || r2.Index != 2 || !strings.Contains(r2.Error, "unknown workload") {
		t.Fatalf("result 2 wrong: %+v, %v", r2, err)
	}
}

func TestServeWorkerDiesOnProtocolBreach(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(echo("w/echo")); err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader("this is not a wire job\n")
	var out bytes.Buffer
	if err := ServeWorker(context.Background(), reg, in, &out); err == nil {
		t.Fatal("malformed job line accepted")
	}
	if out.Len() != 0 {
		t.Fatalf("worker answered a malformed job: %q", out.String())
	}
}

func TestServeWorkerStampsWorkloadID(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(spec("w/anon", func(context.Context, Params) (Result, error) {
		return Result{Text: "ok\n"}, nil // no WorkloadID set by the workload
	})); err != nil {
		t.Fatal(err)
	}
	var in, out bytes.Buffer
	if err := EncodeWire(&in, WireJob{Index: 0, WorkloadID: "w/anon"}); err != nil {
		t.Fatal(err)
	}
	if err := ServeWorker(context.Background(), reg, &in, &out); err != nil {
		t.Fatal(err)
	}
	r, err := DecodeWireResult(bytes.TrimSpace(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Result == nil || r.Result.WorkloadID != "w/anon" {
		t.Fatalf("worker did not stamp the workload ID: %+v", r)
	}
}

func TestFrameReaderTruncatedTrailingFrame(t *testing.T) {
	// A stream that ends mid-line must fail loudly: under the old line
	// scanner a torn final frame was silently dropped (or worse, parsed).
	fr := newFrameReader(strings.NewReader(`{"index":0,"result":{"workl`))
	if _, err := fr.next(); !errors.Is(err, ErrTruncatedFrame) {
		t.Fatalf("torn trailing frame: got %v, want ErrTruncatedFrame", err)
	}
}

func TestFrameReaderEOFOnlyAtBoundary(t *testing.T) {
	fr := newFrameReader(strings.NewReader("{\"a\":1}\n{\"b\":2}\n"))
	for i := 0; i < 2; i++ {
		if _, err := fr.next(); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	if _, err := fr.next(); !errors.Is(err, io.EOF) {
		t.Fatalf("at boundary: got %v, want io.EOF", err)
	}
}

func TestFrameReaderSkipsBlankLinesAndTrailingWhitespace(t *testing.T) {
	fr := newFrameReader(strings.NewReader("\n\n  \n{\"a\":1}\r\n\n"))
	line, err := fr.next()
	if err != nil || string(line) != `{"a":1}` {
		t.Fatalf("got %q, %v", line, err)
	}
	if _, err := fr.next(); !errors.Is(err, io.EOF) {
		t.Fatalf("after blanks: got %v, want io.EOF", err)
	}
}

func TestFrameReaderHandlesFramesLargerThanBuffer(t *testing.T) {
	big := strings.Repeat("x", 200*1024) // larger than the 64 KiB read buffer
	fr := newFrameReader(strings.NewReader(big + "\n"))
	line, err := fr.next()
	if err != nil || len(line) != len(big) {
		t.Fatalf("got %d bytes, %v; want %d", len(line), err, len(big))
	}
}

func TestFrameReaderRejectsOversizedFrame(t *testing.T) {
	// An endless unterminated line must fail at the cap, not OOM.
	fr := newFrameReader(io.LimitReader(zeroReader{}, maxWireFrame+1024))
	if _, err := fr.next(); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized frame: got %v", err)
	}
}

type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 'z'
	}
	return len(p), nil
}

func TestResponseTrackerConformance(t *testing.T) {
	tr := newResponseTracker(4)
	tr.sent(1)
	tr.sent(3)
	if err := tr.answer(1); err != nil {
		t.Fatalf("valid answer rejected: %v", err)
	}
	if err := tr.answer(1); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate index: got %v", err)
	}
	if err := tr.answer(7); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range index: got %v", err)
	}
	if err := tr.answer(-1); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("negative index: got %v", err)
	}
	if err := tr.answer(2); err == nil || !strings.Contains(err.Error(), "unsolicited") {
		t.Fatalf("never-sent index: got %v", err)
	}
	if got := tr.pending(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("pending = %v, want [3]", got)
	}
}

func TestWireHelloRoundTripAndCheck(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(echo("h/echo")); err != nil {
		t.Fatal(err)
	}
	h := HelloFor(reg, RoleWorker)
	if h.Proto != WireProto || h.Fingerprint == "" || h.Workloads["h/echo"] != "" {
		t.Fatalf("bad hello: %+v", h)
	}
	var buf bytes.Buffer
	if err := EncodeWire(&buf, h); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeWireHello(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckHello(HelloFor(reg, RoleExecutor), out); err != nil {
		t.Fatalf("same registry refused: %v", err)
	}
}

func TestDecodeWireHelloRejectsInvalid(t *testing.T) {
	for _, tc := range []struct{ name, line string }{
		{"garbage", "nope"},
		{"no proto", `{"fingerprint":"abc"}`},
		{"no fingerprint", `{"proto":1}`},
	} {
		if _, err := DecodeWireHello([]byte(tc.line)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestCheckHelloMismatches(t *testing.T) {
	mk := func(ids map[string]string) WireHello {
		reg := NewRegistry()
		for id, v := range ids {
			s := echo(id)
			s.Version = v
			if err := reg.Register(s); err != nil {
				t.Fatal(err)
			}
		}
		return HelloFor(reg, RoleWorker)
	}
	local := mk(map[string]string{"w/a": "v1", "w/b": ""})

	if err := CheckHello(local, mk(map[string]string{"w/a": "v2", "w/b": ""})); err == nil {
		t.Fatal("version skew accepted")
	} else {
		for _, want := range []string{"w/a", `local version "v1"`, `remote version "v2"`} {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("version-skew error missing %q: %v", want, err)
			}
		}
	}

	if err := CheckHello(local, mk(map[string]string{"w/a": "v1"})); err == nil ||
		!strings.Contains(err.Error(), "w/b not registered on the remote worker") {
		t.Fatalf("missing-workload error unclear: %v", err)
	}

	wrongProto := mk(map[string]string{"w/a": "v1", "w/b": ""})
	wrongProto.Proto = WireProto + 1
	if err := CheckHello(local, wrongProto); err == nil || !strings.Contains(err.Error(), "protocol mismatch") {
		t.Fatalf("proto-skew error unclear: %v", err)
	}
}

func TestTokenDigest(t *testing.T) {
	if TokenDigest("") != "" {
		t.Fatal("empty token must digest to the empty string, not a hash of nothing")
	}
	a, b := TokenDigest("sesame"), TokenDigest("sesame")
	if a == "" || a != b {
		t.Fatalf("digest not deterministic: %q vs %q", a, b)
	}
	if a == "sesame" || strings.Contains(a, "sesame") {
		t.Fatal("token digest leaks the token")
	}
	if TokenDigest("other") == a {
		t.Fatal("distinct tokens share a digest")
	}
}

func TestCheckHelloTokenMismatch(t *testing.T) {
	mk := func(token string) WireHello {
		reg := NewRegistry()
		if err := reg.Register(echo("w/a")); err != nil {
			t.Fatal(err)
		}
		h := HelloFor(reg, RoleWorker)
		h.TokenDigest = TokenDigest(token)
		return h
	}
	cases := []struct {
		name         string
		local, peer  string
		wantMismatch bool
		wantHint     string
	}{
		{"both empty", "", "", false, ""},
		{"matching", "sesame", "sesame", false, ""},
		{"wrong token", "sesame", "tahini", true, "not the peer's token"},
		{"peer requires one", "", "sesame", true, "set -token or HPCC_TOKEN"},
		{"peer expects none", "sesame", "", true, "does not expect one"},
	}
	for _, tc := range cases {
		err := CheckHello(mk(tc.local), mk(tc.peer))
		if !tc.wantMismatch {
			if err != nil {
				t.Errorf("%s: refused: %v", tc.name, err)
			}
			continue
		}
		if !errors.Is(err, ErrTokenMismatch) {
			t.Errorf("%s: want ErrTokenMismatch, got %v", tc.name, err)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantHint) {
			t.Errorf("%s: error missing %q: %v", tc.name, tc.wantHint, err)
		}
	}
}

func TestDecodeWireResponse(t *testing.T) {
	hb, err := DecodeWireResponse([]byte(`{"heartbeat":true}`))
	if err != nil || !hb.Heartbeat {
		t.Fatalf("heartbeat: %+v, %v", hb, err)
	}
	res, err := DecodeWireResponse([]byte(`{"index":2,"error":"boom"}`))
	if err != nil || res.Heartbeat || res.Index != 2 || res.Error != "boom" {
		t.Fatalf("result: %+v, %v", res, err)
	}
	if _, err := DecodeWireResponse([]byte(`{"index":0}`)); err == nil {
		t.Fatal("payload-free non-heartbeat accepted")
	}
	if _, err := DecodeWireResponse([]byte(`nope`)); err == nil {
		t.Fatal("garbage accepted")
	}
}
