package harness

// Crash-safety tests: panic containment in the executors and on the
// wire, the drain grace primitive, the checkpointing
// JournalingExecutor, and the kill-then-resume differential that CI
// races — a sweep killed mid-flight and resumed from its checkpoint
// must produce bytes identical to one that never died.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// panicSpec panics on one chosen n so the blast radius is exact.
func panicReg(t *testing.T, boomN int, calls *atomic.Int32) *Registry {
	t.Helper()
	reg := NewRegistry()
	err := reg.Register(spec("r/job", func(_ context.Context, p Params) (Result, error) {
		calls.Add(1)
		n, err := p.Int("n", 0)
		if err != nil {
			return Result{}, err
		}
		if n == boomN {
			panic(fmt.Sprintf("synthetic panic at n=%d", n))
		}
		return Result{WorkloadID: "r/job", Text: fmt.Sprintf("r/job n=%d\n", n)}, nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestSafeRunTurnsPanicIntoTypedError(t *testing.T) {
	w := spec("boom", func(context.Context, Params) (Result, error) {
		panic("kaboom")
	})
	_, err := safeRun(context.Background(), w, Params{})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %T: %v", err, err)
	}
	if pe.Value != "kaboom" {
		t.Fatalf("Value = %q", pe.Value)
	}
	if !strings.Contains(pe.Stack, "goroutine") {
		t.Fatalf("Stack looks wrong:\n%s", pe.Stack)
	}
}

// TestLocalExecutorPanicContained: one job panicking must not take the
// sweep down. Every other job runs to completion, the error is a typed
// JobError with Panic set and the stack attached, emit skips only the
// dead slot, and the returned results are the trustworthy prefix.
func TestLocalExecutorPanicContained(t *testing.T) {
	var calls atomic.Int32
	reg := panicReg(t, 2, &calls)
	jobs := counterJobs(t, reg, 8)
	var mu sync.Mutex
	var seen []int
	emit := func(i int, _ Result) {
		mu.Lock()
		seen = append(seen, i)
		mu.Unlock()
	}
	results, err := LocalExecutor{Workers: 4}.Execute(context.Background(), jobs, emit)
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("want *JobError, got %T: %v", err, err)
	}
	if !je.Panic || je.Index != 2 {
		t.Fatalf("JobError = %+v, want Panic at index 2", je)
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("error does not carry the panic: %v", err)
	}
	if got := calls.Load(); got != 8 {
		t.Fatalf("panic cancelled the sweep: only %d of 8 jobs ran", got)
	}
	if len(results) != 2 {
		t.Fatalf("completed prefix = %d results, want 2 (up to the panic)", len(results))
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 7 {
		t.Fatalf("emitted %d of 7 surviving slots: %v", len(seen), seen)
	}
	for _, i := range seen {
		if i == 2 {
			t.Fatalf("panicked slot 2 was emitted: %v", seen)
		}
	}
}

// TestWireResultCarriesPanicFlag pins the shard/remote wire contract:
// a panic inside a worker's job becomes an error result with the Panic
// bit, never a dead worker process.
func TestWireResultCarriesPanicFlag(t *testing.T) {
	var calls atomic.Int32
	reg := panicReg(t, 1, &calls)
	wr := runWireJob(context.Background(), reg, WireJob{Index: 0, WorkloadID: "r/job", Params: Params{}.WithValue("n", "1")})
	if wr.Error == "" || !wr.Panic {
		t.Fatalf("WireResult = %+v, want Error with Panic=true", wr)
	}
	if !strings.Contains(wr.Error, "synthetic panic") {
		t.Fatalf("panic message lost on the wire: %q", wr.Error)
	}
	wr = runWireJob(context.Background(), reg, WireJob{Index: 1, WorkloadID: "r/job", Params: Params{}.WithValue("n", "0")})
	if wr.Error != "" || wr.Panic {
		t.Fatalf("healthy job has Panic metadata: %+v", wr)
	}
}

// TestRemotePanicContained runs the same containment bar over the TCP
// fleet: the worker whose job panics reports it as a typed failure and
// keeps serving; every other job still lands.
func TestRemotePanicContained(t *testing.T) {
	var calls atomic.Int32
	execReg := panicReg(t, 3, new(atomic.Int32))
	addr, _ := startRemoteWorker(t, panicReg(t, 3, &calls))
	ex, _ := remoteExec(execReg, addr)
	jobs := counterJobs(t, execReg, 8)
	results, err := ex.Execute(context.Background(), jobs, nil)
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("want *JobError, got %T: %v", err, err)
	}
	if !je.Panic || je.Index != 3 {
		t.Fatalf("JobError = %+v, want Panic at index 3", je)
	}
	if got := calls.Load(); got != 8 {
		t.Fatalf("worker ran %d of 8 jobs after the panic", got)
	}
	if len(results) != 3 {
		t.Fatalf("completed prefix = %d results, want 3", len(results))
	}
}

func TestWithDrainGraceOutlivesParentCancel(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	ctx, stop := WithDrain(parent, time.Minute)
	defer stop()
	cancel()
	select {
	case <-ctx.Done():
		t.Fatal("drained context died with its parent; the grace never applied")
	case <-time.After(20 * time.Millisecond):
	}
}

func TestWithDrainGraceExpires(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	ctx, stop := WithDrain(parent, 10*time.Millisecond)
	defer stop()
	cancel()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("grace period never expired after parent cancellation")
	}
}

func TestWithDrainZeroGraceCancelsWithParent(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	ctx, stop := WithDrain(parent, 0)
	defer stop()
	cancel()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("zero grace must degenerate to plain cancellation")
	}
}

// TestLocalExecutorDrainStopsDispatchLetsInFlightFinish: firing the
// drain channel mid-sweep must stop new dispatch (ErrDrained), while
// the job already running completes and its result survives.
func TestLocalExecutorDrainStopsDispatchLetsInFlightFinish(t *testing.T) {
	drain := make(chan struct{})
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	var jobs []Job
	for i := 0; i < 8; i++ {
		i := i
		jobs = append(jobs, Job{Workload: spec(fmt.Sprintf("w%d", i),
			func(context.Context, Params) (Result, error) {
				if i == 0 {
					started <- struct{}{}
					<-gate
				}
				return Result{Text: fmt.Sprintf("ok %d\n", i)}, nil
			})})
	}
	done := make(chan struct{})
	var results []Result
	var err error
	go func() {
		defer close(done)
		results, err = LocalExecutor{Workers: 1, Drain: drain}.Execute(context.Background(), jobs, nil)
	}()
	<-started    // job 0 is in flight
	close(drain) // the "signal": stop dispatching
	close(gate)  // let the in-flight job finish
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("drained sweep never returned")
	}
	if !errors.Is(err, ErrDrained) {
		t.Fatalf("want ErrDrained, got %v", err)
	}
	if len(results) == 0 || len(results) == len(jobs) {
		t.Fatalf("drained sweep returned %d of %d results; want the partial in-flight prefix", len(results), len(jobs))
	}
	if results[0].Text != "ok 0\n" {
		t.Fatalf("in-flight job's result lost: %+v", results[0])
	}
}

// memJournal is an in-memory JournalSink (the real file-backed one
// lives in repro/internal/journal, which imports this package).
type memJournal struct {
	mu      sync.Mutex
	records []int
	done    map[int]Result
}

func (m *memJournal) Record(index int, res Result) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.records = append(m.records, index)
	if m.done == nil {
		m.done = map[int]Result{}
	}
	m.done[index] = res
	return nil
}

// TestJournalingExecutorRecordsInOrderAndReplays: a full run records
// every index ascending; a resumed run replays Done entries without
// re-executing them and still produces byte-identical results.
func TestJournalingExecutorRecordsInOrderAndReplays(t *testing.T) {
	var calls atomic.Int32
	reg := counterReg(t, &calls, 0)
	jobs := counterJobs(t, reg, 10)
	want, err := LocalExecutor{Workers: 2}.Execute(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}

	sink := &memJournal{}
	jx := &JournalingExecutor{Inner: LocalExecutor{Workers: 4}, Sink: sink}
	got, err := jx.Execute(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "journaled", got, want)
	if len(sink.records) != len(jobs) {
		t.Fatalf("recorded %d of %d results", len(sink.records), len(jobs))
	}
	for i, idx := range sink.records {
		if idx != i {
			t.Fatalf("journal records out of order: %v", sink.records)
		}
	}

	// Resume with the first half already done: those jobs must not run
	// again, and the output must not change.
	calls.Store(0)
	done := map[int]Result{}
	for i := 0; i < 5; i++ {
		done[i] = sink.done[i]
	}
	emit, seen := orderedEmit(t)
	rx := &JournalingExecutor{Inner: LocalExecutor{Workers: 4}, Sink: &memJournal{}, Done: done}
	got, err = rx.Execute(context.Background(), jobs, emit)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "resumed", got, want)
	if calls.Load() != 5 {
		t.Fatalf("resume re-ran %d jobs, want 5 (the remainder)", calls.Load())
	}
	if idxs := seen(); len(idxs) != len(jobs) {
		t.Fatalf("resume emitted %d of %d indexes: %v", len(idxs), len(jobs), idxs)
	}
}

// TestJournalingExecutorSinkErrorsDoNotFailTheSweep: checkpointing is
// belt-and-braces; a dying disk must cost the checkpoint, not the run.
func TestJournalingExecutorSinkErrorsDoNotFailTheSweep(t *testing.T) {
	reg := counterReg(t, new(atomic.Int32), 0)
	jobs := counterJobs(t, reg, 4)
	want, err := LocalExecutor{Workers: 2}.Execute(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	jx := &JournalingExecutor{Inner: LocalExecutor{Workers: 2}, Sink: failingSink{}}
	got, err := jx.Execute(context.Background(), jobs, nil)
	if err != nil {
		t.Fatalf("sink failure killed the sweep: %v", err)
	}
	assertSameResults(t, "failing sink", got, want)
	if jx.RecordErrors != len(jobs) {
		t.Fatalf("RecordErrors = %d, want %d", jx.RecordErrors, len(jobs))
	}
}

type failingSink struct{}

func (failingSink) Record(int, Result) error { return errors.New("disk on fire") }

// TestChaosKillThenResumeByteIdentical is the crash-safety
// differential CI races: a remote sweep whose only worker dies
// mid-flight (redial disabled, so the death is final) checkpoints its
// completed prefix; resuming from that checkpoint on a healthy
// executor must finish the sweep with bytes identical to a run that
// never crashed, without re-executing the checkpointed jobs.
func TestChaosKillThenResumeByteIdentical(t *testing.T) {
	execReg := counterReg(t, new(atomic.Int32), 0)
	jobs := counterJobs(t, execReg, 10)
	want, err := LocalExecutor{Workers: 2}.Execute(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The doomed run: a single worker that completes a couple of jobs
	// and then drops the connection for good.
	served := 0
	crasher := fakeWorker(t, counterReg(t, new(atomic.Int32), 0), func(conn net.Conn, fr *frameReader) {
		for {
			frame, err := fr.next()
			if err != nil {
				return
			}
			job, err := DecodeWireJob(frame)
			if err != nil {
				return
			}
			if served >= 3 {
				return // crash: connection drops with jobs outstanding
			}
			served++
			if err := EncodeWire(conn, runWireJob(context.Background(), execReg, job)); err != nil {
				return
			}
		}
	})
	sink := &memJournal{}
	base, _ := remoteExec(execReg, crasher)
	base.RedialAttempts = -1
	jx := &JournalingExecutor{Inner: base, Sink: sink}
	partial, err := jx.Execute(context.Background(), jobs, nil)
	if err == nil {
		t.Fatal("sweep survived its only worker dying with redial disabled")
	}
	if len(partial) == 0 || len(partial) >= len(jobs) {
		t.Fatalf("crashed run returned %d of %d results; want a proper prefix", len(partial), len(jobs))
	}
	for i := range partial {
		if _, ok := sink.done[i]; !ok {
			t.Fatalf("returned result %d never hit the journal", i)
		}
	}

	// The resume: healthy local executor, checkpoint replayed.
	var resumedCalls atomic.Int32
	resumeReg := counterReg(t, &resumedCalls, 0)
	resumeJobs := counterJobs(t, resumeReg, 10)
	rx := &JournalingExecutor{Inner: LocalExecutor{Workers: 2}, Sink: &memJournal{}, Done: sink.done}
	got, err := rx.Execute(context.Background(), resumeJobs, nil)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	assertSameResults(t, "kill-then-resume", got, want)
	if int(resumedCalls.Load()) != len(jobs)-len(sink.done) {
		t.Fatalf("resume ran %d jobs, want %d (the un-checkpointed remainder)",
			resumedCalls.Load(), len(jobs)-len(sink.done))
	}
}
