package harness

import (
	"context"
	"errors"
	"time"
)

// ErrDrained reports that a sweep stopped dispatching because its drain
// channel closed — a graceful shutdown, not a failure. The completed
// prefix returned alongside it is valid and safe to persist or journal;
// callers typically print a resume hint and exit with the signal's code.
var ErrDrained = errors.New("harness: sweep drained before completion")

// WithDrain derives a context that outlives parent's cancellation by up
// to grace: when parent is cancelled the returned context stays live for
// the grace period so in-flight work can finish, then cancels. Cancelling
// the returned CancelFunc cancels immediately and releases the timer.
// grace <= 0 degenerates to plain context.WithCancel(parent) — no grace,
// today's hard-cancel behavior.
//
// This is the graceful-shutdown primitive shared by the CLI (in-flight
// sweep jobs drain under it after SIGINT/SIGTERM), `hpcc serve` (request
// contexts survive shutdown long enough to finish), and
// RemoteWorkerServer (in-flight wire jobs complete before connections
// close).
func WithDrain(parent context.Context, grace time.Duration) (context.Context, context.CancelFunc) {
	if grace <= 0 {
		return context.WithCancel(parent)
	}
	ctx, cancel := context.WithCancel(context.WithoutCancel(parent))
	stop := context.AfterFunc(parent, func() {
		t := time.AfterFunc(grace, cancel)
		// If ctx is cancelled first (caller done, or CancelFunc), stop
		// the grace timer so it doesn't linger.
		context.AfterFunc(ctx, func() { t.Stop() })
	})
	return ctx, func() { stop(); cancel() }
}
