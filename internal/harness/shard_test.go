package harness

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// shardWorkerEnv selects a worker personality when this test binary is
// re-exec'ed by a ShardExecutor under test (see TestMain):
//
//	serve — a faithful worker over shardTestRegistry
//	crash — reads one job line, then dies without answering
//	torn  — reads one job line, writes half a result line, then dies
const shardWorkerEnv = "HARNESS_TEST_WORKER"

// shardTestRegistry is the workload set both sides of the shard tests
// share: the parent builds jobs from it, and the re-exec'ed worker
// serves it.
func shardTestRegistry() *Registry {
	reg := NewRegistry()
	for i := 0; i < 24; i++ {
		if err := reg.Register(echo(fmt.Sprintf("shard/echo%02d", i))); err != nil {
			panic(err)
		}
	}
	must := func(s Spec) {
		if err := reg.Register(s); err != nil {
			panic(err)
		}
	}
	must(spec("shard/fail", func(context.Context, Params) (Result, error) {
		return Result{}, errors.New("deliberate failure")
	}))
	must(spec("shard/slow", func(ctx context.Context, _ Params) (Result, error) {
		// Long enough that a cancellation test must kill the worker; a
		// plain sleep, because the child's own context is never
		// cancelled — only the parent's kill ends it.
		time.Sleep(30 * time.Second)
		return Result{Text: "slept\n"}, nil
	}))
	return reg
}

func TestMain(m *testing.M) {
	switch os.Getenv(shardWorkerEnv) {
	case "serve":
		if err := ServeWorker(context.Background(), shardTestRegistry(), os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	case "crash":
		bufio.NewScanner(os.Stdin).Scan()
		os.Exit(3)
	case "torn":
		bufio.NewScanner(os.Stdin).Scan()
		os.Stdout.WriteString(`{"index":0,"result":{"workload`)
		os.Exit(3)
	}
	os.Exit(m.Run())
}

// testShardExecutor re-execs this test binary as the worker command.
func testShardExecutor(shards int, mode string) *ShardExecutor {
	return &ShardExecutor{
		Shards: shards,
		Argv:   []string{os.Args[0]},
		Env:    []string{shardWorkerEnv + "=" + mode},
		Stderr: os.Stderr,
	}
}

// shardEchoJobs builds n jobs over the shard test registry's echo
// workloads with distinct params.
func shardEchoJobs(t *testing.T, n int) []Job {
	t.Helper()
	reg := shardTestRegistry()
	jobs := make([]Job, n)
	for i := range jobs {
		w, err := reg.Lookup(fmt.Sprintf("shard/echo%02d", i%24))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = Job{Workload: w, Params: Params{Seed: int64(i)}.WithValue("n", fmt.Sprint(i))}
	}
	return jobs
}

func TestShardMatchesLocalByteIdentical(t *testing.T) {
	jobs := shardEchoJobs(t, 20)
	local, err := LocalExecutor{Workers: 4}.Execute(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		sharded, err := testShardExecutor(shards, "serve").Execute(context.Background(), jobs, nil)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if len(sharded) != len(local) {
			t.Fatalf("shards=%d: %d results, local %d", shards, len(sharded), len(local))
		}
		for i := range local {
			a, _ := local[i].JSON()
			b, _ := sharded[i].JSON()
			if a != b {
				t.Fatalf("shards=%d: result %d differs:\n%s\n---\n%s", shards, i, a, b)
			}
		}
	}
}

func TestShardEmitStreamsInOrder(t *testing.T) {
	jobs := shardEchoJobs(t, 12)
	var mu sync.Mutex
	var seen []int
	emit := func(i int, r Result) {
		mu.Lock()
		defer mu.Unlock()
		if !strings.Contains(r.Text, fmt.Sprintf("n=%d ", i)) {
			t.Errorf("emit %d got wrong result %q", i, r.Text)
		}
		seen = append(seen, i)
	}
	if _, err := testShardExecutor(3, "serve").Execute(context.Background(), jobs, emit); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(jobs) {
		t.Fatalf("emitted %d of %d results", len(seen), len(jobs))
	}
	for i, got := range seen {
		if got != i {
			t.Fatalf("emit order %v not ascending", seen)
		}
	}
}

func TestShardWorkerErrorIsJobError(t *testing.T) {
	reg := shardTestRegistry()
	fail, err := reg.Lookup("shard/fail")
	if err != nil {
		t.Fatal(err)
	}
	jobs := shardEchoJobs(t, 4)
	jobs[2] = Job{Workload: fail}
	results, err := testShardExecutor(2, "serve").Execute(context.Background(), jobs, nil)
	if err == nil {
		t.Fatal("failing workload reported no error")
	}
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("want *JobError, got %T: %v", err, err)
	}
	if je.Index != 2 || je.WorkloadID != "shard/fail" || !strings.Contains(je.Err.Error(), "deliberate failure") {
		t.Fatalf("wrong job error: %+v", je)
	}
	// Only the completed prefix comes back — never placeholders.
	if len(results) > 2 {
		t.Fatalf("results reach past the failed job: %d", len(results))
	}
	for i, r := range results {
		if r.WorkloadID == "" || r.Text == "" {
			t.Fatalf("result %d is a placeholder: %+v", i, r)
		}
	}
}

func TestShardWorkerCrashMapsToInFlightJob(t *testing.T) {
	jobs := shardEchoJobs(t, 3)
	done := make(chan struct{})
	var results []Result
	var err error
	go func() {
		defer close(done)
		results, err = testShardExecutor(1, "crash").Execute(context.Background(), jobs, nil)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("crashed worker hung the sweep")
	}
	if err == nil {
		t.Fatal("worker crash reported no error")
	}
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("want *JobError, got %T: %v", err, err)
	}
	if je.Index != 0 {
		t.Fatalf("crash mapped to job %d, want the in-flight job 0", je.Index)
	}
	if !strings.Contains(err.Error(), "exited before answering") {
		t.Fatalf("crash error does not say what happened: %v", err)
	}
	if len(results) != 0 {
		t.Fatalf("crash still produced results: %v", results)
	}
}

func TestShardTornResultLineIsTruncationNotSilence(t *testing.T) {
	// A worker that dies mid-write leaves a torn final line. The old line
	// scanner dropped the fragment silently; the frame reader must name
	// the truncation in the in-flight job's error.
	jobs := shardEchoJobs(t, 2)
	_, err := testShardExecutor(1, "torn").Execute(context.Background(), jobs, nil)
	if err == nil {
		t.Fatal("torn result line reported no error")
	}
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("want *JobError, got %T: %v", err, err)
	}
	if je.Index != 0 {
		t.Fatalf("tear mapped to job %d, want in-flight job 0", je.Index)
	}
	if !strings.Contains(err.Error(), "truncated wire frame") {
		t.Fatalf("tear not named as truncation: %v", err)
	}
}

func TestShardCancellationKillsStragglers(t *testing.T) {
	reg := shardTestRegistry()
	slow, err := reg.Lookup("shard/slow")
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{{Workload: slow}, {Workload: slow}}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(500 * time.Millisecond) // let the workers start the jobs
		cancel()
	}()
	start := time.Now()
	done := make(chan error, 1)
	go func() {
		_, err := testShardExecutor(2, "serve").Execute(ctx, jobs, nil)
		done <- err
	}()
	select {
	case err = <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("cancellation did not stop the sharded sweep")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("cancellation took %v; stragglers were not killed", elapsed)
	}
}

func TestShardExecutorRejectsMissingCommand(t *testing.T) {
	if _, err := (&ShardExecutor{Shards: 2}).Execute(context.Background(), shardEchoJobs(t, 2), nil); err == nil {
		t.Fatal("executor with no worker command accepted")
	}
}

func TestShardSpawnFailureSurfaces(t *testing.T) {
	ex := &ShardExecutor{Shards: 1, Argv: []string{"/no/such/worker-binary"}}
	_, err := ex.Execute(context.Background(), shardEchoJobs(t, 2), nil)
	if err == nil {
		t.Fatal("unspawnable worker reported no error")
	}
	if !strings.Contains(err.Error(), "start worker") {
		t.Fatalf("spawn failure unclear: %v", err)
	}
}
