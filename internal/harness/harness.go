// Package harness turns the repository's experiments into uniform,
// schedulable workloads. The paper's HPCC program is a portfolio — funding
// exhibits, the Delta machine, LINPACK, Grand Challenge kernels, NREN
// traffic — and every one of them is reproduced here behind the same small
// interface so a single engine can list them, run them, and sweep their
// parameter spaces across host cores.
//
// A workload registers itself (usually from an init function):
//
//	harness.MustRegister(harness.Spec{
//		WorkloadID: "app/cfd-stencil",
//		Desc:       "CFD relaxation kernel on the Delta model",
//		Space:      []harness.Param{{Name: "n", Default: "512", Doc: "grid edge"}},
//		RunFunc:    run,
//	})
//
// and is then reachable by ID through Lookup, runnable through the sweep
// engine in sweep.go, and visible to the hpcc CLI.
//
// # The Workload → Registry → Sweep → Store pipeline
//
// The packages above this one compose into a fixed pipeline:
//
//   - A Workload (this package) turns one experiment into a uniform unit:
//     a stable ID, a documented ParamSpace, and a deterministic
//     Run(ctx, Params) → Result.
//   - The Registry (registry.go) collects workloads at init time and
//     serves them in a deterministic order, so every listing, report and
//     full sweep walks the portfolio identically.
//   - The Sweep engine (sweep.go) fans Jobs out across host cores and
//     assembles Results in job order, making parallel output
//     byte-identical to sequential output.
//   - The Store (package repro/internal/store) persists Results keyed by
//     workload ID + Params.Canonical() + commit, so runs from different
//     commits can be diffed for regressions (package repro/internal/report
//     renders the delta tables; the hpcc CLI in repro/internal/cli wires
//     it all to flags).
//
// Result and Params therefore have stable JSON encodings: Params.Values
// is canonicalized by Canonical regardless of map insertion order, and
// Result marshals with fixed field order, so a stored record re-read from
// the store is byte-identical to the one written.
package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
)

// Param documents one tunable dimension of a workload's parameter space:
// its name, the default used when a run does not override it, and a short
// doc string for CLI listings.
type Param struct {
	Name    string `json:"name"`
	Default string `json:"default"`
	Doc     string `json:"doc"`
}

// Params carries the run-time knobs of a single workload execution. Quick
// and Seed are universal; everything else travels in Values keyed by the
// Param names the workload declares.
type Params struct {
	// Quick asks the workload for a scaled-down smoke configuration.
	Quick bool `json:"quick,omitempty"`
	// Seed makes randomized workloads deterministic.
	Seed int64 `json:"seed,omitempty"`
	// Values holds workload-specific overrides keyed by Param.Name.
	Values map[string]string `json:"values,omitempty"`
}

// WithValue returns a copy of p with name=value set (the receiver is not
// mutated, so Params can be shared across sweep points).
func (p Params) WithValue(name, value string) Params {
	vals := make(map[string]string, len(p.Values)+1)
	for k, v := range p.Values {
		vals[k] = v
	}
	vals[name] = value
	p.Values = vals
	return p
}

// Value returns the override for name, or def when absent.
func (p Params) Value(name, def string) string {
	if v, ok := p.Values[name]; ok {
		return v
	}
	return def
}

// Int returns the override for name parsed as an int, or def when absent.
func (p Params) Int(name string, def int) (int, error) {
	v, ok := p.Values[name]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("harness: param %s=%q: %w", name, v, err)
	}
	return n, nil
}

// Canonical returns a deterministic, injective encoding of p: the
// universal knobs first, then the Values entries sorted by key, each
// segment query-escaped so no key or value can collide with the
// separators. Two Params with the same settings canonicalize identically
// regardless of map insertion order — this string (not the map's
// iteration order) is what the run store keys records by.
func (p Params) Canonical() string {
	var b strings.Builder
	b.WriteString("quick=")
	b.WriteString(strconv.FormatBool(p.Quick))
	b.WriteString(";seed=")
	b.WriteString(strconv.FormatInt(p.Seed, 10))
	keys := make([]string, 0, len(p.Values))
	for k := range p.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteByte(';')
		b.WriteString(url.QueryEscape(k))
		b.WriteByte('=')
		b.WriteString(url.QueryEscape(p.Values[k]))
	}
	return b.String()
}

// Float returns the override for name parsed as a float64, or def when
// absent.
func (p Params) Float(name string, def float64) (float64, error) {
	v, ok := p.Values[name]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("harness: param %s=%q: %w", name, v, err)
	}
	return f, nil
}

// Metric good-direction declarations, for Metric.Dir and Spec.MetricDirs.
const (
	// DirLower marks a metric where a smaller value is the improvement
	// (times, residuals, hop counts).
	DirLower = "lower"
	// DirHigher marks a metric where a larger value is the improvement
	// (rates, efficiencies).
	DirHigher = "higher"
)

// Metric is one named quantity a workload reports alongside its rendered
// text — the numbers the paper prints, kept machine-readable.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
	// Dir declares the metric's good direction (DirLower or DirHigher).
	// Empty means the delta reporter falls back to its name/unit
	// heuristic (repro/internal/report.LowerIsBetter).
	Dir string `json:"dir,omitempty"`
}

// Result is the structured outcome of one workload run.
type Result struct {
	// WorkloadID echoes the workload that produced the result.
	WorkloadID string `json:"workload"`
	// Title is the human heading (table caption / exhibit title).
	Title string `json:"title,omitempty"`
	// Paper records what the source paper reports for this exhibit, when
	// the workload reproduces one.
	Paper string `json:"paper,omitempty"`
	// Text is the rendered exhibit: tables, charts, summary lines.
	Text string `json:"text"`
	// Metrics are the headline numbers in report order.
	Metrics []Metric `json:"metrics,omitempty"`
}

// AddMetric appends a named quantity to the result.
func (r *Result) AddMetric(name string, value float64, unit string) {
	r.Metrics = append(r.Metrics, Metric{Name: name, Value: value, Unit: unit})
}

// Metric returns the first metric with the given name, and whether one
// exists — a convenience for tests and downstream tools. (The delta
// reporter pairs metrics by name *and* occurrence index, since duplicate
// names are legal; see repro/internal/store.Diff.)
func (r Result) Metric(name string) (Metric, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// JSON renders the result as indented JSON terminated by a newline.
func (r Result) JSON() (string, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", fmt.Errorf("harness: encode result %s: %w", r.WorkloadID, err)
	}
	return string(b) + "\n", nil
}

// Workload is one runnable experiment: a paper exhibit, a kernel, a sweep.
// Implementations must be safe for concurrent Run calls — the sweep engine
// runs independent points on separate goroutines.
type Workload interface {
	// ID is the stable registry key, e.g. "E4" or "linpack/sweep-nb".
	ID() string
	// Description is a one-line summary for CLI listings.
	Description() string
	// ParamSpace documents the tunable parameters and their defaults.
	ParamSpace() []Param
	// Run executes the workload. It must honor ctx cancellation in any
	// long loop and be deterministic for fixed Params.
	Run(ctx context.Context, p Params) (Result, error)
}

// Versioned is implemented by workloads that declare a kernel version.
// The version participates in result-cache keys (repro/internal/cache),
// so bumping it invalidates every cached result of the workload — the
// discipline kernel authors follow when a change alters what a workload
// computes or reports (see docs/WORKLOADS.md).
type Versioned interface {
	WorkloadVersion() string
}

// VersionOf returns w's declared kernel version, or "" for workloads that
// do not declare one (which are still cacheable — they simply never
// invalidate by version).
func VersionOf(w Workload) string {
	if v, ok := w.(Versioned); ok {
		return v.WorkloadVersion()
	}
	return ""
}

// Spec is a Workload built from plain values — the common case, so a new
// workload is a registration call rather than a new type.
type Spec struct {
	WorkloadID string
	Desc       string
	Space      []Param
	RunFunc    func(ctx context.Context, p Params) (Result, error)
	// Version is the workload's kernel version, surfaced through the
	// Versioned interface. Results are pure functions of
	// (WorkloadID, Params, Version) as far as the result cache is
	// concerned; bump it whenever RunFunc's output for a given Params
	// changes, or stale cache entries will keep serving the old output.
	Version string
	// MetricDirs declares the good direction of the workload's metrics
	// by name (DirLower or DirHigher), overriding the delta reporter's
	// name/unit heuristic. Run stamps each declared direction onto the
	// matching metrics of every result, so the declaration travels with
	// the stored record and holds at diff time even in a binary where
	// the workload is no longer registered.
	MetricDirs map[string]string
}

// ID implements Workload.
func (s Spec) ID() string { return s.WorkloadID }

// Description implements Workload.
func (s Spec) Description() string { return s.Desc }

// ParamSpace implements Workload.
func (s Spec) ParamSpace() []Param { return s.Space }

// WorkloadVersion implements Versioned.
func (s Spec) WorkloadVersion() string { return s.Version }

// Run implements Workload. It stamps the Spec's MetricDirs declarations
// onto the result's metrics, leaving explicitly set directions alone.
func (s Spec) Run(ctx context.Context, p Params) (Result, error) {
	if s.RunFunc == nil {
		return Result{}, fmt.Errorf("harness: workload %s has no RunFunc", s.WorkloadID)
	}
	res, err := s.RunFunc(ctx, p)
	if err != nil {
		return res, err
	}
	for i := range res.Metrics {
		if res.Metrics[i].Dir != "" {
			continue
		}
		if d, ok := s.MetricDirs[res.Metrics[i].Name]; ok {
			res.Metrics[i].Dir = d
		}
	}
	return res, nil
}
