package harness

import (
	"context"
	"errors"
)

// ResultCache is the read/write surface CachingExecutor needs from a
// result cache. repro/internal/cache implements it on disk; tests use
// in-memory fakes. Get must treat every failure as a miss; Put failures
// are tolerated (the run already has the result in hand).
type ResultCache interface {
	// Get returns the cached Result of one workload point and whether
	// one was found.
	Get(workloadID string, p Params, version string) (Result, bool)
	// Put records the Result of one workload point.
	Put(workloadID string, p Params, version string, res Result) error
}

// CachingExecutor serves sweep jobs from a ResultCache and delegates only
// the misses to the wrapped executor, which may be the in-process pool or
// a process-sharding executor — the cache layer is transport-agnostic. A
// hit costs one file read instead of a simulation (or a worker-process
// round trip), so a warm cache re-renders a full report in milliseconds.
//
// Both hits and misses flow through the shared in-order assembler, so the
// Executor contract holds unchanged: results return in job order, emit
// fires in strictly ascending index order as the completed prefix grows,
// and output is byte-identical to an uncached run. Results are assumed to
// be pure functions of (workload ID, Params, kernel version) — true for
// every registered workload; see VersionOf for how versions invalidate.
type CachingExecutor struct {
	// Inner runs the cache misses. Required.
	Inner Executor
	// Cache serves hits and records misses. Required.
	Cache ResultCache

	// Statistics of the most recent Execute call, for diagnostics. They
	// are written single-threadedly during Execute; read them only after
	// it returns.
	Hits, Misses int
	// PutErrors counts results that ran but could not be recorded. A
	// write failure never fails the run: the result is already in hand,
	// and the next miss simply recomputes it.
	PutErrors int
}

// Execute implements Executor. Cached jobs complete immediately; the rest
// are forwarded to the inner executor in their original relative order,
// with results mapped back to their original indices (including the index
// inside a returned *JobError).
func (e *CachingExecutor) Execute(ctx context.Context, jobs []Job, emit func(int, Result)) ([]Result, error) {
	if e.Inner == nil {
		return nil, errors.New("harness: caching executor has no inner executor")
	}
	if e.Cache == nil {
		return e.Inner.Execute(ctx, jobs, emit)
	}
	if len(jobs) == 0 {
		return nil, nil
	}
	e.Hits, e.Misses, e.PutErrors = 0, 0, 0

	asm := newAssembler(len(jobs), emit)
	var missJobs []Job
	var missIdx []int
	for i, job := range jobs {
		// Nil workloads are forwarded so the inner executor reports them
		// with its usual JobError instead of the cache layer inventing a
		// second failure shape.
		if job.Workload != nil {
			res, ok := e.Cache.Get(job.Workload.ID(), job.Params, VersionOf(job.Workload))
			if ok {
				if res.WorkloadID == "" {
					res.WorkloadID = job.Workload.ID()
				}
				e.Hits++
				asm.complete(i, res)
				continue
			}
		}
		e.Misses++
		missJobs = append(missJobs, job)
		missIdx = append(missIdx, i)
	}
	if len(missJobs) == 0 {
		return asm.completed(), nil
	}

	_, err := e.Inner.Execute(ctx, missJobs, func(sub int, r Result) {
		job := missJobs[sub]
		if job.Workload != nil {
			if perr := e.Cache.Put(job.Workload.ID(), job.Params, VersionOf(job.Workload), r); perr != nil {
				e.PutErrors++
			}
		}
		asm.complete(missIdx[sub], r)
	})
	if err != nil {
		var je *JobError
		if errors.As(err, &je) && je.Index >= 0 && je.Index < len(missIdx) {
			err = &JobError{Index: missIdx[je.Index], WorkloadID: je.WorkloadID, Panic: je.Panic, Err: je.Err}
		}
	}
	// The assembler's completed prefix is exactly the contract: hits past
	// a failed miss are buffered but not surfaced, so no slot ever holds
	// a result whose predecessors are unknown.
	return asm.completed(), err
}
