package harness

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// memCache is an in-memory ResultCache for executor tests.
type memCache struct {
	mu      sync.Mutex
	m       map[string]Result
	puts    int
	putFail bool
}

func ckey(id string, p Params, v string) string { return id + "\x00" + p.Canonical() + "\x00" + v }

func (c *memCache) Get(id string, p Params, v string) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[ckey(id, p, v)]
	return r, ok
}

func (c *memCache) Put(id string, p Params, v string, r Result) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	if c.putFail {
		return errors.New("disk full")
	}
	if c.m == nil {
		c.m = make(map[string]Result)
	}
	c.m[ckey(id, p, v)] = r
	return nil
}

// countingWorkload counts Run invocations so tests can prove hits skip it.
type countingWorkload struct {
	id      string
	version string
	mu      sync.Mutex
	runs    int
	fail    bool
}

func (w *countingWorkload) ID() string              { return w.id }
func (w *countingWorkload) Description() string     { return "counting " + w.id }
func (w *countingWorkload) ParamSpace() []Param     { return nil }
func (w *countingWorkload) WorkloadVersion() string { return w.version }
func (w *countingWorkload) Run(_ context.Context, p Params) (Result, error) {
	w.mu.Lock()
	w.runs++
	w.mu.Unlock()
	if w.fail {
		return Result{}, errors.New("kernel exploded")
	}
	return Result{WorkloadID: w.id, Text: w.id + " at " + p.Canonical() + "\n"}, nil
}

func (w *countingWorkload) runCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.runs
}

func cachingExec(c ResultCache) *CachingExecutor {
	return &CachingExecutor{Inner: LocalExecutor{Workers: 4}, Cache: c}
}

func TestCachingExecutorMissThenHit(t *testing.T) {
	ws := make([]*countingWorkload, 5)
	jobs := make([]Job, 5)
	for i := range ws {
		ws[i] = &countingWorkload{id: fmt.Sprintf("w%d", i), version: "v1"}
		jobs[i] = Job{Workload: ws[i], Params: Params{Seed: int64(i)}}
	}
	c := &memCache{}
	ex := cachingExec(c)

	cold, err := ex.Execute(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Hits != 0 || ex.Misses != 5 {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/5", ex.Hits, ex.Misses)
	}
	warm, err := ex.Execute(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Hits != 5 || ex.Misses != 0 {
		t.Fatalf("warm run: hits=%d misses=%d, want 5/0", ex.Hits, ex.Misses)
	}
	for i, w := range ws {
		if n := w.runCount(); n != 1 {
			t.Fatalf("workload %d ran %d times, want 1 (hit must not re-run)", i, n)
		}
		if cold[i].Text != warm[i].Text || cold[i].WorkloadID != warm[i].WorkloadID {
			t.Fatalf("warm result %d differs from cold: %+v vs %+v", i, warm[i], cold[i])
		}
	}
}

// TestCachingExecutorEmitOrder: emits must arrive in strictly ascending
// index order with hits and misses interleaved arbitrarily in the job
// list.
func TestCachingExecutorEmitOrder(t *testing.T) {
	c := &memCache{}
	// Pre-warm the even jobs only, so odd jobs are misses.
	n := 8
	jobs := make([]Job, n)
	for i := range jobs {
		w := &countingWorkload{id: fmt.Sprintf("w%d", i), version: "v1"}
		jobs[i] = Job{Workload: w, Params: Params{}}
		if i%2 == 0 {
			if err := c.Put(w.id, Params{}, "v1", Result{WorkloadID: w.id, Text: "cached\n"}); err != nil {
				t.Fatal(err)
			}
		}
	}
	var order []int
	results, err := cachingExec(c).Execute(context.Background(), jobs, func(i int, r Result) {
		order = append(order, i)
		if r.WorkloadID != fmt.Sprintf("w%d", i) {
			t.Errorf("emit %d carried result for %s", i, r.WorkloadID)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n || len(order) != n {
		t.Fatalf("got %d results, %d emits, want %d", len(results), len(order), n)
	}
	for i, idx := range order {
		if idx != i {
			t.Fatalf("emit order %v is not strictly ascending", order)
		}
	}
}

// TestCachingExecutorErrorIndexRemap: a failing miss must surface with
// its original job index, and only the longest fully-completed prefix of
// results may return.
func TestCachingExecutorErrorIndexRemap(t *testing.T) {
	c := &memCache{}
	good := &countingWorkload{id: "good", version: "v1"}
	bad := &countingWorkload{id: "bad", version: "v1", fail: true}
	if err := c.Put("good", Params{}, "v1", Result{WorkloadID: "good", Text: "cached\n"}); err != nil {
		t.Fatal(err)
	}
	// jobs: 0 hit, 1 hit, 2 failing miss, 3 hit (buffered, must not leak).
	jobs := []Job{
		{Workload: good, Params: Params{}},
		{Workload: good, Params: Params{}},
		{Workload: bad, Params: Params{}},
		{Workload: good, Params: Params{}},
	}
	results, err := cachingExec(c).Execute(context.Background(), jobs, nil)
	if err == nil {
		t.Fatal("failing miss did not fail the sweep")
	}
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("error %v is not a *JobError", err)
	}
	if je.Index != 2 || je.WorkloadID != "bad" {
		t.Fatalf("JobError index=%d workload=%s, want 2/bad (original indices)", je.Index, je.WorkloadID)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results past a failure at index 2, want 2", len(results))
	}
}

// TestCachingExecutorPutFailureDoesNotFailRun: a cache write error is a
// statistic, not a sweep failure.
func TestCachingExecutorPutFailureDoesNotFailRun(t *testing.T) {
	c := &memCache{putFail: true}
	w := &countingWorkload{id: "w", version: "v1"}
	ex := cachingExec(c)
	results, err := ex.Execute(context.Background(), []Job{{Workload: w}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}
	if ex.PutErrors != 1 {
		t.Fatalf("PutErrors=%d, want 1", ex.PutErrors)
	}
}

// TestCachingExecutorVersionBump: bumping the workload version must force
// a re-run even with a warm cache for the old version.
func TestCachingExecutorVersionBump(t *testing.T) {
	c := &memCache{}
	w := &countingWorkload{id: "w", version: "v1"}
	ex := cachingExec(c)
	if _, err := ex.Execute(context.Background(), []Job{{Workload: w}}, nil); err != nil {
		t.Fatal(err)
	}
	w.version = "v2"
	if _, err := ex.Execute(context.Background(), []Job{{Workload: w}}, nil); err != nil {
		t.Fatal(err)
	}
	if ex.Misses != 1 {
		t.Fatalf("version bump run: misses=%d, want 1", ex.Misses)
	}
	if n := w.runCount(); n != 2 {
		t.Fatalf("workload ran %d times across a version bump, want 2", n)
	}
}

// TestCachingExecutorNilCacheDelegates: a nil cache degrades to the inner
// executor untouched.
func TestCachingExecutorNilCacheDelegates(t *testing.T) {
	w := &countingWorkload{id: "w", version: "v1"}
	ex := &CachingExecutor{Inner: LocalExecutor{Workers: 1}}
	results, err := ex.Execute(context.Background(), []Job{{Workload: w}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || w.runCount() != 1 {
		t.Fatalf("nil-cache delegation broke: %d results, %d runs", len(results), w.runCount())
	}
}

func TestSpecVersionOf(t *testing.T) {
	s := Spec{WorkloadID: "w", Version: "lu-v2", RunFunc: func(context.Context, Params) (Result, error) { return Result{}, nil }}
	if got := VersionOf(s); got != "lu-v2" {
		t.Fatalf("VersionOf(Spec) = %q, want lu-v2", got)
	}
	if got := VersionOf(Spec{}); got != "" {
		t.Fatalf("VersionOf(zero Spec) = %q, want empty", got)
	}
}
