package harness

// A deterministic fault-injection transport for the remote executor.
// chaosConn sits between RemoteExecutor and a real connection and
// mangles whole wire frames — drop, delay, duplicate, truncate,
// reorder, close-mid-sweep — under a seeded RNG, so every failure mode
// the fleet manager claims to survive can be replayed exactly in tests.
// The invariant under test is always the same: whatever the transport
// does, assembled sweep output stays byte-identical to LocalExecutor,
// because a stranded job index is re-dispatched and a corrupted stream
// evicts the worker rather than completing the wrong slot.
//
// This is test infrastructure, but it lives in the package proper so
// the CLI gates in CI (and future transports) can reuse it.
//
//lint:file-ignore hpccwire chaosConn is a transparent net.Conn shim: the raw error must pass through unwrapped so net.Error and sentinel checks reach the real caller

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrChaosDrop is the error a chaos connection fails with when it
// swallows a frame: a dropped frame with a live connection would stall
// the sweep forever behind heartbeats, so dropping kills the link and
// forces the eviction path.
var ErrChaosDrop = errors.New("harness: chaos dropped a wire frame")

// ErrChaosRefused is the error a chaos dial fails with when the plan
// refuses the connection outright — the executor sees it exactly where
// a real ECONNREFUSED would land, before any byte moves.
var ErrChaosRefused = errors.New("harness: chaos refused the dial")

// ChaosPlan is a seeded recipe of per-frame misbehavior. Probabilities
// are per frame and independent; zero values inject nothing.
type ChaosPlan struct {
	// Seed makes every run of the plan identical.
	Seed int64
	// DropFrame is the probability a frame is swallowed; the connection
	// dies with it (see ErrChaosDrop).
	DropFrame float64
	// TruncateFrame is the probability a frame is cut in half and the
	// stream ends mid-line — the receiver sees ErrTruncatedFrame.
	TruncateFrame float64
	// DuplicateFrame is the probability a frame is delivered twice —
	// the receiver's responseTracker must flag the duplicate index.
	DuplicateFrame float64
	// ReorderFrame is the probability an inbound frame is held and
	// delivered after its successor (benign: completion order is not
	// protocol). It applies only to the read side: inbound streams carry
	// heartbeats, so a successor frame always arrives to release the
	// held one — an outbound stream has no such guarantee, and holding
	// its final frame would stall the sweep forever.
	ReorderFrame float64
	// Delay, when > 0, sleeps a seeded random duration in [0, Delay]
	// before each frame.
	Delay time.Duration
	// CloseAfterFrames, when > 0, delivers that many inbound frames and
	// then ends the stream cleanly (io.EOF) — a worker vanishing
	// mid-sweep without even a torn line.
	CloseAfterFrames int
	// RefuseDials fails the first N dial attempts per address with
	// ErrChaosRefused before anything is dialed — a worker that is not
	// up yet, the case the redial/backoff loop exists for. Counted per
	// address, deterministically, no RNG involved.
	RefuseDials int
	// DropHandshakes kills the next N connections per address
	// immediately after the dial succeeds, before the hello exchange can
	// complete — a worker that accepts and dies, the half-up state
	// between refused and healthy.
	DropHandshakes int
}

// DialFunc matches RemoteExecutor.Dial.
type DialFunc func(ctx context.Context, addr string) (net.Conn, error)

// ChaosDial wraps dial (nil means plain TCP) so connections to the
// listed addrs run through a chaosConn with plan. With no addrs, every
// connection is wrapped. Each connection gets its own RNG derived from
// plan.Seed and a connection counter, so a test run is reproducible
// frame for frame.
func ChaosDial(dial DialFunc, plan ChaosPlan, addrs ...string) DialFunc {
	if dial == nil {
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	faulty := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		faulty[a] = true
	}
	var conns atomic.Int64
	// Dial-time fates are counted per address (not rolled), so "the
	// worker is down for its first N dials" replays exactly across runs
	// and across the executor's backoff schedule.
	var mu sync.Mutex
	refused := make(map[string]int)
	dropped := make(map[string]int)
	return func(ctx context.Context, addr string) (net.Conn, error) {
		wrapped := len(faulty) == 0 || faulty[addr]
		if wrapped && plan.RefuseDials > 0 {
			mu.Lock()
			n := refused[addr]
			if n < plan.RefuseDials {
				refused[addr] = n + 1
				mu.Unlock()
				return nil, fmt.Errorf("%w (dial %d of %d to %s)", ErrChaosRefused, n+1, plan.RefuseDials, addr)
			}
			mu.Unlock()
		}
		conn, err := dial(ctx, addr)
		if err != nil {
			return nil, err
		}
		if !wrapped {
			return conn, nil
		}
		if plan.DropHandshakes > 0 {
			mu.Lock()
			n := dropped[addr]
			if n < plan.DropHandshakes {
				dropped[addr] = n + 1
				mu.Unlock()
				// The listener saw a connection come and go; the dialer's
				// hello fails on the closed socket — exactly a worker that
				// accepts and dies before speaking.
				conn.Close()
				return conn, nil
			}
			mu.Unlock()
		}
		return newChaosConn(conn, plan, plan.Seed*1000003+conns.Add(1)), nil
	}
}

// NewChaosExecutor returns a copy of e whose transport to faultyAddrs
// (all addresses when empty) runs through plan.
func NewChaosExecutor(e *RemoteExecutor, plan ChaosPlan, faultyAddrs ...string) *RemoteExecutor {
	c := *e
	c.Dial = ChaosDial(e.Dial, plan, faultyAddrs...)
	return &c
}

// chaosConn applies a ChaosPlan to both directions of a connection.
// Frames are newline-delimited, exactly as the wire protocol writes
// them; the read side reassembles frames from the raw stream, the write
// side relies on EncodeWire issuing one complete frame per Write call.
// Deadlines and the rest of net.Conn pass through to the wrapped
// connection.
type chaosConn struct {
	net.Conn
	r *chaosReader
	w *chaosWriter
}

func newChaosConn(conn net.Conn, plan ChaosPlan, seed int64) *chaosConn {
	return &chaosConn{
		Conn: conn,
		r:    &chaosReader{conn: conn, plan: plan, rng: rand.New(rand.NewSource(seed*2 + 1))},
		w:    &chaosWriter{conn: conn, plan: plan, rng: rand.New(rand.NewSource(seed * 2))},
	}
}

func (c *chaosConn) Read(p []byte) (int, error)  { return c.r.Read(p) }
func (c *chaosConn) Write(p []byte) (int, error) { return c.w.Write(p) }

// chaosReader mangles inbound frames. It accumulates raw bytes until a
// frame boundary, rolls the frame's fate, and serves the resulting
// bytes; once a fate kills the stream, the remaining buffered bytes
// drain first and then every Read fails with the recorded error.
type chaosReader struct {
	conn   net.Conn
	plan   ChaosPlan
	rng    *rand.Rand
	buf    []byte // processed bytes ready for the caller
	raw    []byte // partial frame still being accumulated
	held   []byte // frame held back by a reorder fate
	frames int
	dead   error
	tmp    [4096]byte
}

func (s *chaosReader) Read(p []byte) (int, error) {
	for len(s.buf) == 0 {
		if s.dead != nil {
			return 0, s.dead
		}
		n, err := s.conn.Read(s.tmp[:])
		s.raw = append(s.raw, s.tmp[:n]...)
		for {
			nl := bytes.IndexByte(s.raw, '\n')
			if nl < 0 {
				break
			}
			frame := append([]byte(nil), s.raw[:nl+1]...)
			s.raw = s.raw[nl+1:]
			s.deliver(frame)
			if s.dead != nil {
				break
			}
		}
		if err != nil && s.dead == nil {
			// Genuine end of stream: flush what chaos was holding, pass
			// any torn tail through untouched, then surface the error.
			if s.held != nil {
				s.buf = append(s.buf, s.held...)
				s.held = nil
			}
			s.buf = append(s.buf, s.raw...)
			s.raw = nil
			s.dead = err
		}
	}
	n := copy(p, s.buf)
	s.buf = s.buf[n:]
	return n, nil
}

// deliver rolls one frame's fate and appends the outcome to buf.
func (s *chaosReader) deliver(frame []byte) {
	s.frames++
	if s.plan.CloseAfterFrames > 0 && s.frames > s.plan.CloseAfterFrames {
		s.dead = io.EOF
		return
	}
	if s.plan.Delay > 0 {
		time.Sleep(time.Duration(s.rng.Int63n(int64(s.plan.Delay) + 1)))
	}
	switch {
	case s.rng.Float64() < s.plan.DropFrame:
		s.dead = ErrChaosDrop
	case s.rng.Float64() < s.plan.TruncateFrame:
		s.buf = append(s.buf, frame[:len(frame)/2]...)
		s.dead = io.EOF // mid-line EOF: the reader reports ErrTruncatedFrame
	case s.rng.Float64() < s.plan.DuplicateFrame:
		s.buf = append(s.buf, frame...)
		s.buf = append(s.buf, frame...)
		if s.held != nil {
			s.buf = append(s.buf, s.held...)
			s.held = nil
		}
	case s.rng.Float64() < s.plan.ReorderFrame && s.held == nil:
		s.held = frame
	default:
		s.buf = append(s.buf, frame...)
		if s.held != nil {
			s.buf = append(s.buf, s.held...)
			s.held = nil
		}
	}
}

// chaosWriter mangles outbound frames. EncodeWire writes one complete
// newline-terminated frame per call, so each Write is treated as one
// frame; writes that are not whole frames pass through untouched.
type chaosWriter struct {
	conn   net.Conn
	plan   ChaosPlan
	rng    *rand.Rand
	frames int
	dead   error
}

func (s *chaosWriter) Write(p []byte) (int, error) {
	if s.dead != nil {
		return 0, s.dead
	}
	if len(p) == 0 || p[len(p)-1] != '\n' {
		return s.conn.Write(p)
	}
	s.frames++
	if s.plan.Delay > 0 {
		time.Sleep(time.Duration(s.rng.Int63n(int64(s.plan.Delay) + 1)))
	}
	switch {
	case s.rng.Float64() < s.plan.DropFrame:
		s.dead = ErrChaosDrop
		return 0, s.dead
	case s.rng.Float64() < s.plan.TruncateFrame:
		s.conn.Write(p[:len(p)/2])
		s.conn.Close() // the receiver sees the tear as ErrTruncatedFrame
		s.dead = ErrTruncatedFrame
		return 0, s.dead
	case s.rng.Float64() < s.plan.DuplicateFrame:
		if _, err := s.conn.Write(p); err != nil {
			return 0, err
		}
		if _, err := s.conn.Write(p); err != nil {
			return 0, err
		}
		return len(p), nil
	default:
		if _, err := s.conn.Write(p); err != nil {
			return 0, err
		}
		return len(p), nil
	}
}
