package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Registry maps workload IDs to workloads. The zero value is ready to use;
// all methods are safe for concurrent callers.
type Registry struct {
	mu sync.RWMutex
	m  map[string]Workload
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds w; it fails if the ID is empty or already taken.
func (r *Registry) Register(w Workload) error {
	id := w.ID()
	if strings.TrimSpace(id) == "" {
		return fmt.Errorf("harness: workload with empty ID (%q)", w.Description())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = make(map[string]Workload)
	}
	if _, dup := r.m[id]; dup {
		return fmt.Errorf("harness: workload %q already registered", id)
	}
	r.m[id] = w
	return nil
}

// Lookup finds a workload by ID (case-insensitive). The error lists the
// known IDs so a CLI typo is self-correcting.
func (r *Registry) Lookup(id string) (Workload, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if w, ok := r.m[id]; ok {
		return w, nil
	}
	// Sorted order, not map order: with two IDs differing only in case,
	// every lookup must resolve to the same one.
	for _, k := range r.idsLocked() {
		if strings.EqualFold(k, id) {
			return r.m[k], nil
		}
	}
	return nil, fmt.Errorf("harness: unknown workload %q (have %s)",
		id, strings.Join(r.idsLocked(), ", "))
}

// IDs returns all registered IDs sorted with exhibit order first: bare
// "En" experiment IDs sort numerically ahead of namespaced IDs, which sort
// lexically. The order is deterministic and is the order `hpcc list` and
// full sweeps use.
func (r *Registry) IDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.idsLocked()
}

func (r *Registry) idsLocked() []string {
	ids := make([]string, 0, len(r.m))
	for id := range r.m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return idLess(ids[i], ids[j]) })
	return ids
}

// idLess orders exhibit IDs ("E1".."E7", numerically) before namespaced
// workload IDs (lexically).
func idLess(a, b string) bool {
	an, aok := exhibitNum(a)
	bn, bok := exhibitNum(b)
	switch {
	case aok && bok:
		return an < bn
	case aok:
		return true
	case bok:
		return false
	default:
		return a < b
	}
}

// exhibitNum parses "E<digits>" IDs.
func exhibitNum(id string) (int, bool) {
	if len(id) < 2 || (id[0] != 'E' && id[0] != 'e') {
		return 0, false
	}
	n := 0
	for _, c := range id[1:] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// All returns every registered workload in IDs() order.
func (r *Registry) All() []Workload {
	ids := r.IDs()
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Workload, len(ids))
	for i, id := range ids {
		out[i] = r.m[id]
	}
	return out
}

// Versions maps every registered workload ID to its declared kernel
// version ("" for unversioned workloads) — the identity the remote
// handshake exchanges, so a version mismatch can be reported naming the
// workload and both versions.
func (r *Registry) Versions() map[string]string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m := make(map[string]string, len(r.m))
	for id, w := range r.m {
		m[id] = VersionOf(w)
	}
	return m
}

// Fingerprint condenses the registry contents — every workload ID and
// kernel version, in deterministic order — into a short stable hash.
// Two processes with equal fingerprints resolve every workload ID to
// the same kernel at the same version, which is what lets a sweep trust
// results computed by a remote worker.
func (r *Registry) Fingerprint() string {
	ids := r.IDs()
	r.mu.RLock()
	defer r.mu.RUnlock()
	h := sha256.New()
	for _, id := range ids {
		io.WriteString(h, id)
		h.Write([]byte{0})
		io.WriteString(h, VersionOf(r.m[id]))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Len reports the number of registered workloads.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}

// Default is the process-wide registry that package init functions feed.
var Default = NewRegistry()

// Register adds w to the default registry.
func Register(w Workload) error { return Default.Register(w) }

// MustRegister adds w to the default registry and panics on error — for
// init-time registration, where a duplicate ID is a programming error.
func MustRegister(w Workload) {
	if err := Default.Register(w); err != nil {
		panic(err)
	}
}

// Lookup finds a workload in the default registry.
func Lookup(id string) (Workload, error) { return Default.Lookup(id) }

// IDs lists the default registry in deterministic order.
func IDs() []string { return Default.IDs() }

// All lists the default registry's workloads in deterministic order.
func All() []Workload { return Default.All() }
