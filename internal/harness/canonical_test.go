package harness

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// TestParamsCanonicalShuffledInsertion is the store-key regression test:
// however the Values map is populated, the canonical encoding (and hence
// the store key derived from it) must come out identical.
func TestParamsCanonicalShuffledInsertion(t *testing.T) {
	pairs := [][2]string{
		{"n", "512"}, {"nb", "16"}, {"procs", "64"},
		{"pattern", "transpose"}, {"bytes", "1024"}, {"alpha", "0.5"},
	}
	want := ""
	rng := rand.New(rand.NewSource(1992))
	for trial := 0; trial < 20; trial++ {
		order := rng.Perm(len(pairs))
		p := Params{Quick: true, Seed: 7}
		for _, i := range order {
			p = p.WithValue(pairs[i][0], pairs[i][1])
		}
		got := p.Canonical()
		if trial == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("trial %d (insertion order %v): canonical %q != %q", trial, order, got, want)
		}
	}
	if want == "" {
		t.Fatal("canonical encoding is empty")
	}
}

// TestParamsCanonicalDistinguishes checks injectivity on the cases a naive
// "join k=v with separators" encoding would conflate.
func TestParamsCanonicalDistinguishes(t *testing.T) {
	cases := [][2]Params{
		{{Values: map[string]string{"a": "1;b=2"}}, {Values: map[string]string{"a": "1", "b": "2"}}},
		{{Values: map[string]string{"a=b": "c"}}, {Values: map[string]string{"a": "b=c"}}},
		{{Quick: true}, {Quick: false}},
		{{Seed: 1}, {Seed: 0}},
		{{Values: map[string]string{"n": "1"}}, {Values: map[string]string{"n": "10"}}},
	}
	for i, c := range cases {
		if a, b := c[0].Canonical(), c[1].Canonical(); a == b {
			t.Errorf("case %d: distinct params canonicalize identically: %q", i, a)
		}
	}
}

// TestParamsCanonicalEmptyValues: a nil map and an empty map are the same
// parameter point.
func TestParamsCanonicalEmptyValues(t *testing.T) {
	a := Params{Quick: true}
	b := Params{Quick: true, Values: map[string]string{}}
	if a.Canonical() != b.Canonical() {
		t.Errorf("nil vs empty Values: %q != %q", a.Canonical(), b.Canonical())
	}
}

// TestResultJSONStable: marshaling the same Result twice yields identical
// bytes (the store's byte-identity round trip depends on it).
func TestResultJSONStable(t *testing.T) {
	r := Result{WorkloadID: "app/x", Title: "T", Text: "body\n"}
	r.AddMetric("gflops", 13.9, "GFLOPS")
	r.AddMetric("simulated-s", 0.25, "s")
	a, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("unstable Result JSON:\n%s\n%s", a, b)
	}
	m, ok := r.Metric("simulated-s")
	if !ok || m.Value != 0.25 || m.Unit != "s" {
		t.Errorf("Metric lookup: got %+v, %v", m, ok)
	}
	if _, ok := r.Metric("missing"); ok {
		t.Error("Metric found a metric that does not exist")
	}
}
