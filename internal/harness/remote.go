package harness

// RemoteExecutor fans sweep jobs out over TCP to `hpcc worker -listen`
// processes — the fleet manager for the paper's many-machines-one-
// program model over commodity networking. It speaks the same JSONL
// wire as ShardExecutor but pipelines a small window of jobs per
// connection, so the per-message handshake latency the PC-cluster work
// identifies as the real cost is paid once per connection, not once per
// job.
//
// Failure model: workers are expendable, jobs are not. Any transport
// fault — dial failure, refused handshake, torn frame, protocol breach,
// missed heartbeat — evicts the worker, and the jobs it stranded
// (dispatched-but-unanswered plus still-queued) are re-dispatched to
// survivors, up to a bounded number of send attempts per job. Workload
// errors are the opposite: deterministic kernels fail the same way
// everywhere, so a job that *answered* with an error is never retried —
// it fails the sweep exactly as it would under LocalExecutor. Results
// reassemble through the same write-once assembler as every other
// executor, which is what keeps remote output byte-identical.
//
// Eviction is not forever: an evicted address enters a jittered
// exponential-backoff redial loop (bounded per address per sweep) that
// re-dials through the same Dial seam, re-runs the full handshake, and
// readmits the worker into the dispatch/work-stealing pool mid-sweep —
// so a worker that was restarted, rescheduled, or briefly partitioned
// rejoins instead of leaving the fleet one node down for the rest of
// the sweep. While every address is down but at least one is still
// redialing, stranded jobs park rather than fail; the sweep only dies
// when no address can ever come back.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Redial defaults: four attempts at 250ms doubling toward a 4s cap
// covers a worker process restart (the common crash-loop case) without
// holding a hopeless sweep hostage for long.
const (
	DefaultRedialAttempts   = 4
	DefaultRedialBackoff    = 250 * time.Millisecond
	DefaultRedialMaxBackoff = 4 * time.Second
)

// RemoteExecutor implements Executor across remote worker processes.
// Addrs is the only required field.
type RemoteExecutor struct {
	// Addrs are the worker addresses (host:port) to dial.
	Addrs []string
	// Registry resolves workload IDs and provides the handshake
	// identity; nil means the Default registry.
	Registry *Registry
	// MaxAttempts bounds how many times one job may be *sent* before a
	// worker death fails it for good; < 1 means 3.
	MaxAttempts int
	// Window is the per-worker pipeline depth; < 1 means 2.
	Window int
	// HeartbeatTimeout is how long a silent connection (no result, no
	// heartbeat) lives before eviction; <= 0 means
	// DefaultHeartbeatTimeout.
	HeartbeatTimeout time.Duration
	// HandshakeTimeout bounds dial-to-hello; <= 0 means
	// DefaultHandshakeTimeout.
	HandshakeTimeout time.Duration
	// Dial overrides the transport; nil means plain TCP. Tests inject
	// fault-laden connections here (see chaos.go).
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// Token, when non-empty, is the shared fleet auth token sent (in
	// digest form) in the hello; it must match the workers' -token.
	Token string
	// RedialAttempts bounds how many reconnection attempts one evicted
	// address gets across the whole sweep; 0 means
	// DefaultRedialAttempts, < 0 disables redial (an evicted address
	// stays dead, the pre-readmission behavior).
	RedialAttempts int
	// RedialBackoff is the base delay before the first reconnection
	// attempt; it doubles per attempt (with deterministic per-address
	// jitter) up to RedialMaxBackoff. <= 0 means the defaults.
	RedialBackoff    time.Duration
	RedialMaxBackoff time.Duration
	// Sleep overrides how the redial loop waits out a backoff — tests
	// inject a virtual clock here to replay schedules deterministically.
	// A non-nil error aborts the redial. Nil sleeps on the real clock,
	// honoring ctx.
	Sleep func(ctx context.Context, d time.Duration) error
	// Stderr receives eviction/readmission notes; nil discards them.
	Stderr io.Writer
}

func (e *RemoteExecutor) reg() *Registry {
	if e.Registry != nil {
		return e.Registry
	}
	return Default
}

func (e *RemoteExecutor) maxAttempts() int {
	if e.MaxAttempts >= 1 {
		return e.MaxAttempts
	}
	return 3
}

func (e *RemoteExecutor) window() int {
	if e.Window >= 1 {
		return e.Window
	}
	return 2
}

func (e *RemoteExecutor) heartbeatTimeout() time.Duration {
	if e.HeartbeatTimeout > 0 {
		return e.HeartbeatTimeout
	}
	return DefaultHeartbeatTimeout
}

func (e *RemoteExecutor) handshakeTimeout() time.Duration {
	if e.HandshakeTimeout > 0 {
		return e.HandshakeTimeout
	}
	return DefaultHandshakeTimeout
}

func (e *RemoteExecutor) redialAttempts() int {
	if e.RedialAttempts < 0 {
		return 0
	}
	if e.RedialAttempts == 0 {
		return DefaultRedialAttempts
	}
	return e.RedialAttempts
}

func (e *RemoteExecutor) redialBackoff() time.Duration {
	if e.RedialBackoff > 0 {
		return e.RedialBackoff
	}
	return DefaultRedialBackoff
}

func (e *RemoteExecutor) redialMaxBackoff() time.Duration {
	if e.RedialMaxBackoff > 0 {
		return e.RedialMaxBackoff
	}
	return DefaultRedialMaxBackoff
}

// remoteSweep is one Execute call's shared state. One mutex guards all
// of it; workers block on cond when they have neither queued work nor
// outstanding responses to wait for.
type remoteSweep struct {
	mu   sync.Mutex
	cond *sync.Cond

	ctx    context.Context
	cancel context.CancelFunc

	jobs  []Job
	addrs []string

	queues    [][]int // per-worker job queues: pop front to run, steal from back
	attempts  []int   // sends so far, per job
	done      []bool  // completed or failed for good
	errs      []error // per-job root causes, sweepErr picks the winner
	remaining int     // jobs not yet done

	// A worker address is in exactly one of three states: live (in the
	// dispatch pool), redialing (down, but its redial loop may still
	// readmit it — its queue holds parked jobs), or dead for good.
	live           []bool
	liveCount      int
	redialing      []bool
	redialingCount int

	asm         *assembler
	stderr      io.Writer
	maxAttempts int
}

// Execute implements Executor across the remote fleet. Jobs start
// round-robin across workers; idle workers steal queued jobs from the
// back of the longest surviving queue, so a slow node sheds work it has
// not yet been sent.
func (e *RemoteExecutor) Execute(ctx context.Context, jobs []Job, emit func(int, Result)) ([]Result, error) {
	if len(e.Addrs) == 0 {
		return nil, errors.New("harness: remote executor has no worker addresses")
	}
	if len(jobs) == 0 {
		return nil, nil
	}
	// The inner context is the sweep's own teardown lever: job failures
	// cancel it, and so does the last job landing — which is what frees
	// redialers sleeping out a backoff. The caller's ctx stays the
	// arbiter of whether the sweep as a whole was cancelled.
	inner, cancel := context.WithCancel(ctx)
	defer cancel()

	s := &remoteSweep{
		ctx:         inner,
		cancel:      cancel,
		jobs:        jobs,
		addrs:       e.Addrs,
		queues:      make([][]int, len(e.Addrs)),
		attempts:    make([]int, len(jobs)),
		done:        make([]bool, len(jobs)),
		errs:        make([]error, len(jobs)),
		remaining:   len(jobs),
		live:        make([]bool, len(e.Addrs)),
		liveCount:   len(e.Addrs),
		redialing:   make([]bool, len(e.Addrs)),
		asm:         newAssembler(len(jobs), emit),
		stderr:      e.Stderr,
		maxAttempts: e.maxAttempts(),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := range jobs {
		w := i % len(e.Addrs)
		s.queues[w] = append(s.queues[w], i)
	}
	for w := range s.live {
		s.live[w] = true
	}
	// Cancellation must wake workers parked in cond.Wait.
	stop := context.AfterFunc(inner, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()

	var wg sync.WaitGroup
	for w := range e.Addrs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e.runWorker(inner, s, w)
		}(w)
	}
	wg.Wait()

	return s.asm.completed(), sweepErr(ctx, s.errs, nil)
}

// connect dials addr and performs the hello exchange. A worker whose
// registry fingerprint or kernel versions disagree is refused here, at
// connect time, before any job is risked on it.
func (e *RemoteExecutor) connect(ctx context.Context, addr string) (net.Conn, *frameReader, error) {
	dial := e.Dial
	if dial == nil {
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	conn, err := dial(ctx, addr)
	if err != nil {
		return nil, nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	conn.SetDeadline(time.Now().Add(e.handshakeTimeout())) //lint:ignore hpccdet socket deadlines are wall-clock I/O plumbing, not simulated time
	local := HelloFor(e.reg(), RoleExecutor)
	local.TokenDigest = TokenDigest(e.Token)
	if err := EncodeWire(conn, local); err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("%s: send hello: %w", addr, err)
	}
	// The frame reader buffers, so the handshake and everything after it
	// must come through the same instance.
	fr := newFrameReader(conn)
	line, err := fr.next()
	if err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("%s: read hello: %w", addr, err)
	}
	remote, err := DecodeWireHello(line)
	if err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("%s: %w", addr, err)
	}
	if err := CheckHello(local, remote); err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("worker %s refused: %w", addr, err)
	}
	conn.SetDeadline(time.Time{})
	return conn, fr, nil
}

// takeAction is what take tells a worker to do next.
type takeAction int

const (
	takeJob   takeAction = iota // run the returned job index
	takeDrain                   // nothing to send; wait for outstanding responses
	takeDone                    // sweep over (or cancelled); exit cleanly
)

// take hands worker w its next job index: the front of its own queue,
// else stolen from the back of the longest surviving queue. With no
// queued work anywhere it drains (if w still has responses in flight)
// or waits until either work appears or the sweep ends. Taking a job
// charges one send attempt.
func (s *remoteSweep) take(w int, outstanding int) (int, takeAction) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.ctx.Err() != nil || s.remaining == 0 {
			return 0, takeDone
		}
		if len(s.queues[w]) > 0 {
			i := s.queues[w][0]
			s.queues[w] = s.queues[w][1:]
			s.attempts[i]++
			return i, takeJob
		}
		// Steal from the back of the longest queue that still has an
		// owner — live, or down-but-redialing (whose queue holds parked
		// jobs a readmission would otherwise have to wait for). A worker
		// dead for good always has an empty queue: eviction and
		// retirement drain it.
		victim, max := -1, 0
		for v := range s.queues {
			if v != w && (s.live[v] || s.redialing[v]) && len(s.queues[v]) > max {
				victim, max = v, len(s.queues[v])
			}
		}
		if victim >= 0 {
			q := s.queues[victim]
			i := q[len(q)-1]
			s.queues[victim] = q[:len(q)-1]
			s.attempts[i]++
			return i, takeJob
		}
		if outstanding > 0 {
			return 0, takeDrain
		}
		s.cond.Wait()
	}
}

// fail records a permanent per-job failure (workload error, nil
// workload, exhausted retries) and cancels the sweep, exactly as the
// other executors do.
func (s *remoteSweep) fail(i int, workloadID string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failLocked(i, workloadID, err)
	s.cond.Broadcast()
}

func (s *remoteSweep) failLocked(i int, workloadID string, err error) {
	if s.done[i] {
		return
	}
	s.errs[i] = &JobError{Index: i, WorkloadID: workloadID, Err: err}
	s.done[i] = true
	s.remaining--
	s.cancel()
}

// failContained records a contained workload panic without cancelling
// the sweep: the slot is marked failed in the assembler so later results
// still emit, the remaining jobs keep running, and the typed
// JobError{Panic: true} becomes the sweep's error only once everything
// else has finished.
func (s *remoteSweep) failContained(i int, workloadID string, err error) {
	s.mu.Lock()
	if s.done[i] {
		s.mu.Unlock()
		return
	}
	s.errs[i] = &JobError{Index: i, WorkloadID: workloadID, Panic: true, Err: err}
	s.done[i] = true
	s.remaining--
	if s.remaining == 0 {
		s.cancel()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.asm.fail(i)
}

// complete lands job i's result. The last result cancels the sweep's
// inner context: that is what releases redialers sleeping out a backoff
// and sessions parked on heartbeat reads, so Execute's wait never rides
// out their timers after the work is done.
func (s *remoteSweep) complete(i int, res Result) {
	s.mu.Lock()
	if s.done[i] {
		s.mu.Unlock()
		return
	}
	s.done[i] = true
	s.remaining--
	if s.remaining == 0 {
		s.cancel()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.asm.complete(i, res)
}

// evict takes worker w out of the dispatch pool after cause and
// re-dispatches every job it stranded: the responses it still owed
// (tracker's outstanding set) plus its unsent queue. With willRedial the
// address stays eligible for readmission — jobs park rather than fail
// while it is the only hope left. A job out of send attempts, or
// stranded with no worker that could ever run it, fails for good.
func (s *remoteSweep) evict(w int, tracker *responseTracker, cause error, willRedial bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.live[w] {
		return
	}
	s.live[w] = false
	s.liveCount--
	if willRedial {
		s.redialing[w] = true
		s.redialingCount++
	}
	orphans := append(tracker.pending(), s.queues[w]...)
	s.queues[w] = nil
	defer s.cond.Broadcast()
	if s.ctx.Err() != nil {
		// The sweep is already being torn down; transport errors here are
		// victims of the cancellation, not root causes.
		return
	}
	if s.stderr != nil {
		note := "address abandoned"
		if willRedial {
			note = "redial pending"
		}
		fmt.Fprintf(s.stderr, "hpcc remote: worker %s evicted (%v); re-dispatching %d job(s), %s\n",
			s.addrs[w], cause, len(orphans), note)
	}
	s.redistributeLocked(orphans, w, cause)
}

// readmit returns a redialing worker to the dispatch pool after a
// successful reconnect and handshake.
func (s *remoteSweep) readmit(w int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.redialing[w] {
		return
	}
	s.redialing[w] = false
	s.redialingCount--
	s.live[w] = true
	s.liveCount++
	if s.ctx.Err() == nil && s.stderr != nil {
		fmt.Fprintf(s.stderr, "hpcc remote: worker %s reconnected; readmitted to the pool\n", s.addrs[w])
	}
	s.cond.Broadcast()
}

// retire gives up on a redialing worker for good — its reconnect budget
// is exhausted or the failure cannot heal — and redistributes whatever
// parked on its queue while it was down.
func (s *remoteSweep) retire(w int, attempts int, cause error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.redialing[w] {
		return
	}
	s.redialing[w] = false
	s.redialingCount--
	orphans := s.queues[w]
	s.queues[w] = nil
	defer s.cond.Broadcast()
	if s.ctx.Err() != nil {
		return
	}
	if s.stderr != nil {
		fmt.Fprintf(s.stderr, "hpcc remote: worker %s abandoned after %d redial attempt(s) (%v)\n",
			s.addrs[w], attempts, cause)
	}
	s.redistributeLocked(orphans, w, cause)
}

// redistributeLocked re-homes jobs stranded by worker w: requeued at the
// front of the shortest live queue so retried jobs run ahead of fresh
// ones; with every worker down but some still redialing, parked on the
// shortest redialing queue for a readmission (or a steal) to pick up.
// Callers hold s.mu.
func (s *remoteSweep) redistributeLocked(orphans []int, w int, cause error) {
	for _, i := range orphans {
		if s.done[i] {
			continue
		}
		wid := ""
		if s.jobs[i].Workload != nil {
			wid = s.jobs[i].Workload.ID()
		}
		switch {
		case s.attempts[i] >= s.maxAttempts:
			s.failLocked(i, wid, fmt.Errorf("re-dispatch budget exhausted after %d attempts (last worker %s: %w)",
				s.attempts[i], s.addrs[w], cause))
		case s.liveCount == 0 && s.redialingCount == 0:
			s.failLocked(i, wid, fmt.Errorf("no live workers remain (worker %s: %w)", s.addrs[w], cause))
		default:
			best, bestLen := -1, 0
			for v := range s.queues {
				if s.live[v] && (best < 0 || len(s.queues[v]) < bestLen) {
					best, bestLen = v, len(s.queues[v])
				}
			}
			if best < 0 {
				for v := range s.queues {
					if s.redialing[v] && (best < 0 || len(s.queues[v]) < bestLen) {
						best, bestLen = v, len(s.queues[v])
					}
				}
			}
			s.queues[best] = append([]int{i}, s.queues[best]...)
		}
	}
}

// runWorker owns one address for the life of the sweep. It serves
// connection sessions; when a session dies the address is evicted (its
// stranded jobs re-dispatch immediately) and, redial budget permitting,
// runWorker holds it in a jittered exponential-backoff reconnect loop:
// dial through the same seam, re-run the full handshake, and readmit
// the worker into the pool mid-sweep. The budget is per address per
// sweep — a flapping worker cannot consume the fleet's patience twice
// by briefly coming back.
func (e *RemoteExecutor) runWorker(ctx context.Context, s *remoteSweep, w int) {
	budget := e.redialAttempts()
	base, maxBackoff := e.redialBackoff(), e.redialMaxBackoff()
	// Jitter is seeded by worker slot, so a schedule replays exactly
	// under an injected Sleep clock.
	rng := rand.New(rand.NewSource(int64(w)*6364136223846793005 + 1442695040888963407))
	used := 0

	tracker := newResponseTracker(len(s.jobs))
	cause := e.serveAddr(ctx, s, w, tracker)
	for {
		if cause == nil {
			return // sweep complete
		}
		// An auth refusal will not heal with time; everything else might
		// (crashed process restarted, partition healed, fingerprint fixed
		// by a redeploy).
		willRedial := used < budget && ctx.Err() == nil && !errors.Is(cause, ErrTokenMismatch)
		s.evict(w, tracker, cause, willRedial)
		if !willRedial {
			return
		}
		for {
			used++
			if !e.redialWait(ctx, redialBackoffFor(base, maxBackoff, used, rng)) {
				s.retire(w, used-1, cause)
				return
			}
			conn, fr, err := e.connect(ctx, s.addrs[w])
			if err == nil {
				s.readmit(w)
				tracker = newResponseTracker(len(s.jobs))
				cause = e.runSession(ctx, s, w, conn, fr, tracker)
				break
			}
			cause = err
			if errors.Is(err, ErrTokenMismatch) || used >= budget {
				s.retire(w, used, cause)
				return
			}
		}
	}
}

// serveAddr runs one connection lifetime against address w: dial,
// handshake, session. A nil return means the sweep completed; any error
// is the cause the connection died with.
func (e *RemoteExecutor) serveAddr(ctx context.Context, s *remoteSweep, w int, tracker *responseTracker) error {
	conn, fr, err := e.connect(ctx, s.addrs[w])
	if err != nil {
		return err
	}
	return e.runSession(ctx, s, w, conn, fr, tracker)
}

// redialWait sleeps out one backoff. It returns false when the sweep
// ended (cancelled, failed, or every job landed — all of which cancel
// the sweep context) while waiting, which tells the redial loop to stop.
func (e *RemoteExecutor) redialWait(ctx context.Context, d time.Duration) bool {
	if fn := e.Sleep; fn != nil {
		if err := fn(ctx, d); err != nil {
			return false
		}
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// redialBackoffFor computes attempt k's delay: base doubling per
// attempt toward max, jittered uniformly over the upper half of the
// interval so a fleet of redialers does not stampede the same instant.
func redialBackoffFor(base, max time.Duration, attempt int, rng *rand.Rand) time.Duration {
	d := max
	if shift := attempt - 1; shift < 30 {
		if scaled := base << shift; scaled < max {
			d = scaled
		}
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// runSession drives one live connection: top up the pipeline window,
// then block for one frame (result or heartbeat) and react. A nil
// return means the sweep is over; any error is the session's cause of
// death, with tracker still holding the stranded outstanding set for
// the eviction that follows.
func (e *RemoteExecutor) runSession(ctx context.Context, s *remoteSweep, w int, conn net.Conn, fr *frameReader, tracker *responseTracker) error {
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	window := e.window()
	hbTimeout := e.heartbeatTimeout()
	for {
		// Top up the window.
		for len(tracker.outstanding) < window {
			i, act := s.take(w, len(tracker.outstanding))
			if act == takeDone {
				return nil
			}
			if act == takeDrain {
				break
			}
			job := s.jobs[i]
			if job.Workload == nil {
				s.fail(i, "", errors.New("nil workload"))
				continue
			}
			tracker.sent(i)
			wj := WireJob{Index: i, WorkloadID: job.Workload.ID(), Params: job.Params}
			if err := EncodeWire(conn, wj); err != nil {
				return fmt.Errorf("send job %d: %w", i, err)
			}
		}
		if len(tracker.outstanding) == 0 {
			continue
		}

		// Wait for one frame; worker heartbeats arrive every
		// DefaultHeartbeatInterval, so a silent connection is a dead one.
		conn.SetReadDeadline(time.Now().Add(hbTimeout)) //lint:ignore hpccdet socket deadlines are wall-clock I/O plumbing, not simulated time
		line, err := fr.next()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				err = fmt.Errorf("no heartbeat within %v", hbTimeout)
			}
			return fmt.Errorf("awaiting %v: %w", tracker.pending(), err)
		}
		resp, err := DecodeWireResponse(line)
		if err != nil {
			return err
		}
		if resp.Heartbeat {
			continue
		}
		if err := tracker.answer(resp.Index); err != nil {
			return err
		}
		i := resp.Index
		if resp.Error != "" {
			if resp.Panic {
				s.failContained(i, s.jobs[i].Workload.ID(), errors.New(resp.Error))
				continue
			}
			s.fail(i, s.jobs[i].Workload.ID(), errors.New(resp.Error))
			continue
		}
		res := *resp.Result
		if res.WorkloadID == "" {
			res.WorkloadID = s.jobs[i].Workload.ID()
		}
		s.complete(i, res)
	}
}
