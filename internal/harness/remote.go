package harness

// RemoteExecutor fans sweep jobs out over TCP to `hpcc worker -listen`
// processes — the fleet manager for the paper's many-machines-one-
// program model over commodity networking. It speaks the same JSONL
// wire as ShardExecutor but pipelines a small window of jobs per
// connection, so the per-message handshake latency the PC-cluster work
// identifies as the real cost is paid once per connection, not once per
// job.
//
// Failure model: workers are expendable, jobs are not. Any transport
// fault — dial failure, refused handshake, torn frame, protocol breach,
// missed heartbeat — evicts the worker, and the jobs it stranded
// (dispatched-but-unanswered plus still-queued) are re-dispatched to
// survivors, up to a bounded number of send attempts per job. Workload
// errors are the opposite: deterministic kernels fail the same way
// everywhere, so a job that *answered* with an error is never retried —
// it fails the sweep exactly as it would under LocalExecutor. Results
// reassemble through the same write-once assembler as every other
// executor, which is what keeps remote output byte-identical.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// RemoteExecutor implements Executor across remote worker processes.
// Addrs is the only required field.
type RemoteExecutor struct {
	// Addrs are the worker addresses (host:port) to dial.
	Addrs []string
	// Registry resolves workload IDs and provides the handshake
	// identity; nil means the Default registry.
	Registry *Registry
	// MaxAttempts bounds how many times one job may be *sent* before a
	// worker death fails it for good; < 1 means 3.
	MaxAttempts int
	// Window is the per-worker pipeline depth; < 1 means 2.
	Window int
	// HeartbeatTimeout is how long a silent connection (no result, no
	// heartbeat) lives before eviction; <= 0 means
	// DefaultHeartbeatTimeout.
	HeartbeatTimeout time.Duration
	// HandshakeTimeout bounds dial-to-hello; <= 0 means
	// DefaultHandshakeTimeout.
	HandshakeTimeout time.Duration
	// Dial overrides the transport; nil means plain TCP. Tests inject
	// fault-laden connections here (see chaos.go).
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// Stderr receives eviction notes; nil discards them.
	Stderr io.Writer
}

func (e *RemoteExecutor) reg() *Registry {
	if e.Registry != nil {
		return e.Registry
	}
	return Default
}

func (e *RemoteExecutor) maxAttempts() int {
	if e.MaxAttempts >= 1 {
		return e.MaxAttempts
	}
	return 3
}

func (e *RemoteExecutor) window() int {
	if e.Window >= 1 {
		return e.Window
	}
	return 2
}

func (e *RemoteExecutor) heartbeatTimeout() time.Duration {
	if e.HeartbeatTimeout > 0 {
		return e.HeartbeatTimeout
	}
	return DefaultHeartbeatTimeout
}

func (e *RemoteExecutor) handshakeTimeout() time.Duration {
	if e.HandshakeTimeout > 0 {
		return e.HandshakeTimeout
	}
	return DefaultHandshakeTimeout
}

// remoteSweep is one Execute call's shared state. One mutex guards all
// of it; workers block on cond when they have neither queued work nor
// outstanding responses to wait for.
type remoteSweep struct {
	mu   sync.Mutex
	cond *sync.Cond

	ctx    context.Context
	cancel context.CancelFunc

	jobs  []Job
	addrs []string

	queues    [][]int // per-worker job queues: pop front to run, steal from back
	attempts  []int   // sends so far, per job
	done      []bool  // completed or failed for good
	errs      []error // per-job root causes, sweepErr picks the winner
	remaining int     // jobs not yet done
	live      []bool
	liveCount int

	asm         *assembler
	stderr      io.Writer
	maxAttempts int
}

// Execute implements Executor across the remote fleet. Jobs start
// round-robin across workers; idle workers steal queued jobs from the
// back of the longest surviving queue, so a slow node sheds work it has
// not yet been sent.
func (e *RemoteExecutor) Execute(ctx context.Context, jobs []Job, emit func(int, Result)) ([]Result, error) {
	if len(e.Addrs) == 0 {
		return nil, errors.New("harness: remote executor has no worker addresses")
	}
	if len(jobs) == 0 {
		return nil, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	s := &remoteSweep{
		ctx:         ctx,
		cancel:      cancel,
		jobs:        jobs,
		addrs:       e.Addrs,
		queues:      make([][]int, len(e.Addrs)),
		attempts:    make([]int, len(jobs)),
		done:        make([]bool, len(jobs)),
		errs:        make([]error, len(jobs)),
		remaining:   len(jobs),
		live:        make([]bool, len(e.Addrs)),
		liveCount:   len(e.Addrs),
		asm:         newAssembler(len(jobs), emit),
		stderr:      e.Stderr,
		maxAttempts: e.maxAttempts(),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := range jobs {
		w := i % len(e.Addrs)
		s.queues[w] = append(s.queues[w], i)
	}
	for w := range s.live {
		s.live[w] = true
	}
	// Cancellation must wake workers parked in cond.Wait.
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()

	var wg sync.WaitGroup
	for w := range e.Addrs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e.runWorker(ctx, s, w)
		}(w)
	}
	wg.Wait()

	return s.asm.completed(), sweepErr(ctx, s.errs, nil)
}

// connect dials addr and performs the hello exchange. A worker whose
// registry fingerprint or kernel versions disagree is refused here, at
// connect time, before any job is risked on it.
func (e *RemoteExecutor) connect(ctx context.Context, addr string) (net.Conn, *frameReader, error) {
	dial := e.Dial
	if dial == nil {
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	conn, err := dial(ctx, addr)
	if err != nil {
		return nil, nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	conn.SetDeadline(time.Now().Add(e.handshakeTimeout())) //lint:ignore hpccdet socket deadlines are wall-clock I/O plumbing, not simulated time
	local := HelloFor(e.reg(), RoleExecutor)
	if err := EncodeWire(conn, local); err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("%s: send hello: %w", addr, err)
	}
	// The frame reader buffers, so the handshake and everything after it
	// must come through the same instance.
	fr := newFrameReader(conn)
	line, err := fr.next()
	if err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("%s: read hello: %w", addr, err)
	}
	remote, err := DecodeWireHello(line)
	if err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("%s: %w", addr, err)
	}
	if err := CheckHello(local, remote); err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("worker %s refused: %w", addr, err)
	}
	conn.SetDeadline(time.Time{})
	return conn, fr, nil
}

// takeAction is what take tells a worker to do next.
type takeAction int

const (
	takeJob   takeAction = iota // run the returned job index
	takeDrain                   // nothing to send; wait for outstanding responses
	takeDone                    // sweep over (or cancelled); exit cleanly
)

// take hands worker w its next job index: the front of its own queue,
// else stolen from the back of the longest surviving queue. With no
// queued work anywhere it drains (if w still has responses in flight)
// or waits until either work appears or the sweep ends. Taking a job
// charges one send attempt.
func (s *remoteSweep) take(w int, outstanding int) (int, takeAction) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.ctx.Err() != nil || s.remaining == 0 {
			return 0, takeDone
		}
		if len(s.queues[w]) > 0 {
			i := s.queues[w][0]
			s.queues[w] = s.queues[w][1:]
			s.attempts[i]++
			return i, takeJob
		}
		// Steal from the back of the longest live queue.
		victim, max := -1, 0
		for v := range s.queues {
			if v != w && s.live[v] && len(s.queues[v]) > max {
				victim, max = v, len(s.queues[v])
			}
		}
		if victim >= 0 {
			q := s.queues[victim]
			i := q[len(q)-1]
			s.queues[victim] = q[:len(q)-1]
			s.attempts[i]++
			return i, takeJob
		}
		if outstanding > 0 {
			return 0, takeDrain
		}
		s.cond.Wait()
	}
}

// fail records a permanent per-job failure (workload error, nil
// workload, exhausted retries) and cancels the sweep, exactly as the
// other executors do.
func (s *remoteSweep) fail(i int, workloadID string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failLocked(i, workloadID, err)
	s.cond.Broadcast()
}

func (s *remoteSweep) failLocked(i int, workloadID string, err error) {
	if s.done[i] {
		return
	}
	s.errs[i] = &JobError{Index: i, WorkloadID: workloadID, Err: err}
	s.done[i] = true
	s.remaining--
	s.cancel()
}

// complete lands job i's result.
func (s *remoteSweep) complete(i int, res Result) {
	s.mu.Lock()
	if s.done[i] {
		s.mu.Unlock()
		return
	}
	s.done[i] = true
	s.remaining--
	s.cond.Broadcast()
	s.mu.Unlock()
	s.asm.complete(i, res)
}

// evict retires worker w after cause and re-dispatches every job it
// stranded: the responses it still owed (tracker's outstanding set)
// plus its unsent queue. A job out of send attempts, or stranded with
// no surviving workers, fails for good instead.
func (s *remoteSweep) evict(w int, tracker *responseTracker, cause error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.live[w] {
		return
	}
	s.live[w] = false
	s.liveCount--
	orphans := append(tracker.pending(), s.queues[w]...)
	s.queues[w] = nil
	defer s.cond.Broadcast()
	if s.ctx.Err() != nil {
		// The sweep is already being torn down; transport errors here are
		// victims of the cancellation, not root causes.
		return
	}
	if s.stderr != nil {
		fmt.Fprintf(s.stderr, "hpcc remote: worker %s evicted (%v); re-dispatching %d job(s)\n",
			s.addrs[w], cause, len(orphans))
	}
	for _, i := range orphans {
		if s.done[i] {
			continue
		}
		wid := ""
		if s.jobs[i].Workload != nil {
			wid = s.jobs[i].Workload.ID()
		}
		switch {
		case s.attempts[i] >= s.maxAttempts:
			s.failLocked(i, wid, fmt.Errorf("re-dispatch budget exhausted after %d attempts (last worker %s: %v)",
				s.attempts[i], s.addrs[w], cause))
		case s.liveCount == 0:
			s.failLocked(i, wid, fmt.Errorf("no live workers remain (worker %s: %v)", s.addrs[w], cause))
		default:
			// Requeue at the front of the shortest surviving queue so
			// retried jobs run ahead of fresh ones.
			best, bestLen := -1, 0
			for v := range s.queues {
				if s.live[v] && (best < 0 || len(s.queues[v]) < bestLen) {
					best, bestLen = v, len(s.queues[v])
				}
			}
			s.queues[best] = append([]int{i}, s.queues[best]...)
		}
	}
}

// runWorker owns one connection for the life of the sweep: top up the
// pipeline window, then block for one frame (result or heartbeat) and
// react. Every exit path other than clean completion goes through
// evict, so no job index is ever lost with the connection.
func (e *RemoteExecutor) runWorker(ctx context.Context, s *remoteSweep, w int) {
	tracker := newResponseTracker(len(s.jobs))
	conn, fr, err := e.connect(ctx, s.addrs[w])
	if err != nil {
		s.evict(w, tracker, err)
		return
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	window := e.window()
	hbTimeout := e.heartbeatTimeout()
	for {
		// Top up the window.
		for len(tracker.outstanding) < window {
			i, act := s.take(w, len(tracker.outstanding))
			if act == takeDone {
				return
			}
			if act == takeDrain {
				break
			}
			job := s.jobs[i]
			if job.Workload == nil {
				s.fail(i, "", errors.New("nil workload"))
				continue
			}
			tracker.sent(i)
			wj := WireJob{Index: i, WorkloadID: job.Workload.ID(), Params: job.Params}
			if err := EncodeWire(conn, wj); err != nil {
				s.evict(w, tracker, fmt.Errorf("send job %d: %w", i, err))
				return
			}
		}
		if len(tracker.outstanding) == 0 {
			continue
		}

		// Wait for one frame; worker heartbeats arrive every
		// DefaultHeartbeatInterval, so a silent connection is a dead one.
		conn.SetReadDeadline(time.Now().Add(hbTimeout)) //lint:ignore hpccdet socket deadlines are wall-clock I/O plumbing, not simulated time
		line, err := fr.next()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				err = fmt.Errorf("no heartbeat within %v", hbTimeout)
			}
			s.evict(w, tracker, fmt.Errorf("awaiting %v: %w", tracker.pending(), err))
			return
		}
		resp, err := DecodeWireResponse(line)
		if err != nil {
			s.evict(w, tracker, err)
			return
		}
		if resp.Heartbeat {
			continue
		}
		if err := tracker.answer(resp.Index); err != nil {
			s.evict(w, tracker, err)
			return
		}
		i := resp.Index
		if resp.Error != "" {
			s.fail(i, s.jobs[i].Workload.ID(), errors.New(resp.Error))
			continue
		}
		res := *resp.Result
		if res.WorkloadID == "" {
			res.WorkloadID = s.jobs[i].Workload.ID()
		}
		s.complete(i, res)
	}
}
