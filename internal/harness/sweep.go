package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Job is one point of a sweep: a workload plus the parameters to run it
// with.
type Job struct {
	Workload Workload
	Params   Params
}

// JobError wraps a failed sweep point with its position and workload ID.
type JobError struct {
	Index      int
	WorkloadID string
	Err        error
}

// Error implements error.
func (e *JobError) Error() string {
	return fmt.Sprintf("harness: job %d (%s): %v", e.Index, e.WorkloadID, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// DefaultWorkers is the sweep engine's default parallelism: one worker per
// host core.
func DefaultWorkers() int { return runtime.NumCPU() }

// Sweep executes the jobs on a pool of `workers` goroutines and returns
// results in job order — assembly is deterministic, so parallel output is
// byte-identical to a sequential run regardless of completion order.
//
// workers < 1 means DefaultWorkers(). On the first failure the engine
// cancels the remaining jobs' context, drains the pool, and returns the
// lowest-indexed error; results then holds only the jobs that completed.
// Cancelling ctx stops dispatch and returns ctx.Err().
func Sweep(ctx context.Context, jobs []Job, workers int) ([]Result, error) {
	if workers < 1 {
		workers = DefaultWorkers()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if len(jobs) == 0 {
		return nil, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]Result, len(jobs))
	errs := make([]error, len(jobs))
	feed := make(chan int)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				job := jobs[i]
				if job.Workload == nil {
					errs[i] = &JobError{Index: i, WorkloadID: "", Err: fmt.Errorf("nil workload")}
					cancel()
					continue
				}
				res, err := job.Workload.Run(ctx, job.Params)
				if err != nil {
					errs[i] = &JobError{Index: i, WorkloadID: job.Workload.ID(), Err: err}
					cancel()
					continue
				}
				if res.WorkloadID == "" {
					res.WorkloadID = job.Workload.ID()
				}
				results[i] = res
			}
		}()
	}

	var dispatchErr error
dispatch:
	for i := range jobs {
		select {
		case feed <- i:
		case <-ctx.Done():
			dispatchErr = ctx.Err()
			break dispatch
		}
	}
	close(feed)
	wg.Wait()

	// Report the lowest-indexed root-cause failure: once one job fails,
	// the engine cancels the rest, so later slots may hold cancellation
	// victims rather than the error that triggered the cancellation.
	// Prefer the first non-cancellation error; fall back to the first
	// cancellation, then to the context error.
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return results, err
		}
	}
	if firstErr != nil {
		return results, firstErr
	}
	if dispatchErr != nil {
		return results, dispatchErr
	}
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, nil
}

// SweepWorkloads runs each workload once with the same base params —
// the "run the whole portfolio" case — returning results in the given
// order.
func SweepWorkloads(ctx context.Context, ws []Workload, base Params, workers int) ([]Result, error) {
	jobs := make([]Job, len(ws))
	for i, w := range ws {
		jobs[i] = Job{Workload: w, Params: base}
	}
	return Sweep(ctx, jobs, workers)
}

// ValueJobs expands one workload over successive overrides of a single
// parameter into sweep jobs. It is the one place that derives the
// per-point Params, so callers that persist results (the run store) see
// exactly the parameters each job ran with.
func ValueJobs(w Workload, base Params, name string, values []string) []Job {
	jobs := make([]Job, len(values))
	for i, v := range values {
		jobs[i] = Job{Workload: w, Params: base.WithValue(name, v)}
	}
	return jobs
}

// SweepValues expands one workload over successive overrides of a single
// parameter and runs the points concurrently: the classic
// "GFLOPS vs block size" sweep.
func SweepValues(ctx context.Context, w Workload, base Params, name string, values []string, workers int) ([]Result, error) {
	return Sweep(ctx, ValueJobs(w, base, name, values), workers)
}
