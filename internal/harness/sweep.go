package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Job is one point of a sweep: a workload plus the parameters to run it
// with.
type Job struct {
	Workload Workload
	Params   Params
}

// JobError wraps a failed sweep point with its position and workload ID.
type JobError struct {
	Index      int
	WorkloadID string
	Err        error
}

// Error implements error.
func (e *JobError) Error() string {
	return fmt.Sprintf("harness: job %d (%s): %v", e.Index, e.WorkloadID, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// DefaultWorkers is the sweep engine's default parallelism: one worker per
// host core.
func DefaultWorkers() int { return runtime.NumCPU() }

// Sweep executes the jobs on a pool of `workers` goroutines and returns
// results in job order — assembly is deterministic, so parallel output is
// byte-identical to a sequential run regardless of completion order.
//
// workers < 1 means DefaultWorkers(). On the first failure the engine
// cancels the remaining jobs' context, drains the pool, and returns the
// lowest-indexed error; results then holds only the longest
// fully-completed prefix of the jobs, so every returned Result is real —
// no slot ever holds a zero-value placeholder for a job that failed or
// never ran. Cancelling ctx stops dispatch and returns ctx.Err().
func Sweep(ctx context.Context, jobs []Job, workers int) ([]Result, error) {
	return sweepEmit(ctx, jobs, workers, nil)
}

// sweepEmit is Sweep with an optional streaming callback: emit, when
// non-nil, receives each result in strictly ascending index order as the
// completed prefix grows (the Executor.Execute contract).
func sweepEmit(ctx context.Context, jobs []Job, workers int, emit func(int, Result)) ([]Result, error) {
	if workers < 1 {
		workers = DefaultWorkers()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if len(jobs) == 0 {
		return nil, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	asm := newAssembler(len(jobs), emit)
	errs := make([]error, len(jobs))
	feed := make(chan int)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				job := jobs[i]
				if job.Workload == nil {
					errs[i] = &JobError{Index: i, WorkloadID: "", Err: fmt.Errorf("nil workload")}
					cancel()
					continue
				}
				res, err := job.Workload.Run(ctx, job.Params)
				if err != nil {
					errs[i] = &JobError{Index: i, WorkloadID: job.Workload.ID(), Err: err}
					cancel()
					continue
				}
				if res.WorkloadID == "" {
					res.WorkloadID = job.Workload.ID()
				}
				asm.complete(i, res)
			}
		}()
	}

	var dispatchErr error
dispatch:
	for i := range jobs {
		select {
		case feed <- i:
		case <-ctx.Done():
			dispatchErr = ctx.Err()
			break dispatch
		}
	}
	close(feed)
	wg.Wait()

	return asm.completed(), sweepErr(ctx, errs, dispatchErr)
}

// sweepErr picks the error a sweep reports: the lowest-indexed
// root-cause failure. Once one job fails the engine cancels the rest, so
// later slots may hold cancellation victims rather than the error that
// triggered the cancellation. Prefer the first non-cancellation error;
// fall back to the first cancellation, then to the context error.
func sweepErr(ctx context.Context, errs []error, dispatchErr error) error {
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if dispatchErr != nil {
		return dispatchErr
	}
	return ctx.Err()
}

// WorkloadJobs pairs each workload with the same base params — the "run
// the whole portfolio" case. Callers hand the jobs to any Executor (or
// Sweep) and, when persisting, read each job's Params back by index.
func WorkloadJobs(ws []Workload, base Params) []Job {
	jobs := make([]Job, len(ws))
	for i, w := range ws {
		jobs[i] = Job{Workload: w, Params: base}
	}
	return jobs
}

// ValueJobs expands one workload over successive overrides of a single
// parameter into sweep jobs. It is the one place that derives the
// per-point Params, so callers that persist results (the run store) see
// exactly the parameters each job ran with.
func ValueJobs(w Workload, base Params, name string, values []string) []Job {
	jobs := make([]Job, len(values))
	for i, v := range values {
		jobs[i] = Job{Workload: w, Params: base.WithValue(name, v)}
	}
	return jobs
}

// SweepValues expands one workload over successive overrides of a single
// parameter and runs the points concurrently: the classic
// "GFLOPS vs block size" sweep.
func SweepValues(ctx context.Context, w Workload, base Params, name string, values []string, workers int) ([]Result, error) {
	return Sweep(ctx, ValueJobs(w, base, name, values), workers)
}
