package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Job is one point of a sweep: a workload plus the parameters to run it
// with.
type Job struct {
	Workload Workload
	Params   Params
}

// JobError wraps a failed sweep point with its position and workload ID.
type JobError struct {
	Index      int
	WorkloadID string
	// Panic reports that the workload did not return an error but
	// panicked. The panic is contained: the executor recovers it, the
	// rest of the sweep proceeds, and Err carries the recovered value
	// and stack (a *PanicError locally; a flattened message when the
	// panic happened in a worker process and crossed the wire).
	Panic bool
	Err   error
}

// Error implements error.
func (e *JobError) Error() string {
	return fmt.Sprintf("harness: job %d (%s): %v", e.Index, e.WorkloadID, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// PanicError is what a recovered Workload.Run panic becomes: the panic
// value plus the goroutine stack at the recovery point. It reaches
// callers wrapped in a JobError with Panic set.
type PanicError struct {
	Value string
	Stack string
}

// Error implements error, carrying the stack so a contained panic stays
// debuggable wherever the message lands (a terminal, a wire frame, a
// journal hint).
func (e *PanicError) Error() string {
	return fmt.Sprintf("workload panicked: %s\n%s", e.Value, e.Stack)
}

// safeRun invokes w.Run with panic containment: a panicking workload
// comes back as a *PanicError instead of unwinding the pool goroutine
// (which would kill the whole process — or a whole fleet worker — over
// one bad job).
func safeRun(ctx context.Context, w Workload, p Params) (res Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: fmt.Sprint(v), Stack: string(debug.Stack())}
		}
	}()
	return w.Run(ctx, p)
}

// DefaultWorkers is the sweep engine's default parallelism: one worker per
// host core.
func DefaultWorkers() int { return runtime.NumCPU() }

// Sweep executes the jobs on a pool of `workers` goroutines and returns
// results in job order — assembly is deterministic, so parallel output is
// byte-identical to a sequential run regardless of completion order.
//
// workers < 1 means DefaultWorkers(). On the first failure the engine
// cancels the remaining jobs' context, drains the pool, and returns the
// lowest-indexed error; results then holds only the longest
// fully-completed prefix of the jobs, so every returned Result is real —
// no slot ever holds a zero-value placeholder for a job that failed or
// never ran. Cancelling ctx stops dispatch and returns ctx.Err().
func Sweep(ctx context.Context, jobs []Job, workers int) ([]Result, error) {
	return sweepEmit(ctx, jobs, workers, nil, nil)
}

// sweepEmit is Sweep with an optional streaming callback and an optional
// drain channel: emit, when non-nil, receives each result in strictly
// ascending index order as the completed prefix grows (the
// Executor.Execute contract); drain, when it closes, stops dispatch
// without cancelling in-flight jobs (the graceful-shutdown contract).
func sweepEmit(ctx context.Context, jobs []Job, workers int, drain <-chan struct{}, emit func(int, Result)) ([]Result, error) {
	if workers < 1 {
		workers = DefaultWorkers()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if len(jobs) == 0 {
		return nil, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	asm := newAssembler(len(jobs), emit)
	errs := make([]error, len(jobs))
	feed := make(chan int)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				job := jobs[i]
				if job.Workload == nil {
					errs[i] = &JobError{Index: i, WorkloadID: "", Err: fmt.Errorf("nil workload")}
					cancel()
					continue
				}
				res, err := safeRun(ctx, job.Workload, job.Params)
				if err != nil {
					var pe *PanicError
					if errors.As(err, &pe) {
						// A panic is contained, not fatal: record the typed
						// failure, mark the slot failed so later results
						// still emit, and let the rest of the sweep proceed.
						errs[i] = &JobError{Index: i, WorkloadID: job.Workload.ID(), Panic: true, Err: err}
						asm.fail(i)
						continue
					}
					errs[i] = &JobError{Index: i, WorkloadID: job.Workload.ID(), Err: err}
					cancel()
					continue
				}
				if res.WorkloadID == "" {
					res.WorkloadID = job.Workload.ID()
				}
				asm.complete(i, res)
			}
		}()
	}

	var dispatchErr error
dispatch:
	for i := range jobs {
		select {
		case feed <- i:
		case <-ctx.Done():
			dispatchErr = ctx.Err()
			break dispatch
		case <-drain:
			// A drain stops dispatch only: jobs already feeding stay
			// live under ctx, and the completed prefix remains valid.
			dispatchErr = ErrDrained
			break dispatch
		}
	}
	close(feed)
	wg.Wait()

	return asm.completed(), sweepErr(ctx, errs, dispatchErr)
}

// sweepErr picks the error a sweep reports: the lowest-indexed
// root-cause failure. Once one job fails the engine cancels the rest, so
// later slots may hold cancellation victims rather than the error that
// triggered the cancellation. Prefer the first non-cancellation error;
// fall back to the first cancellation, then to the context error.
func sweepErr(ctx context.Context, errs []error, dispatchErr error) error {
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if dispatchErr != nil {
		return dispatchErr
	}
	return ctx.Err()
}

// WorkloadJobs pairs each workload with the same base params — the "run
// the whole portfolio" case. Callers hand the jobs to any Executor (or
// Sweep) and, when persisting, read each job's Params back by index.
func WorkloadJobs(ws []Workload, base Params) []Job {
	jobs := make([]Job, len(ws))
	for i, w := range ws {
		jobs[i] = Job{Workload: w, Params: base}
	}
	return jobs
}

// ValueJobs expands one workload over successive overrides of a single
// parameter into sweep jobs. It is the one place that derives the
// per-point Params, so callers that persist results (the run store) see
// exactly the parameters each job ran with.
func ValueJobs(w Workload, base Params, name string, values []string) []Job {
	jobs := make([]Job, len(values))
	for i, v := range values {
		jobs[i] = Job{Workload: w, Params: base.WithValue(name, v)}
	}
	return jobs
}

// SweepValues expands one workload over successive overrides of a single
// parameter and runs the points concurrently: the classic
// "GFLOPS vs block size" sweep.
func SweepValues(ctx context.Context, w Workload, base Params, name string, values []string, workers int) ([]Result, error) {
	return Sweep(ctx, ValueJobs(w, base, name, values), workers)
}
